#!/usr/bin/env python3
"""Validates dcy-bench-v1 reports (BENCH_*.json) emitted by bench/harness.cc.

Usage: validate_bench_json.py --expect N [FILE...]
With no FILE arguments, globs BENCH_*.json in the current directory. Used by
both CI bench jobs (smoke and bench-report) so the schema rules live in one
place.
"""
import argparse
import glob
import json
import sys

REQUIRED_CASE_KEYS = ("name", "params", "repeats", "p50_ns", "p95_ns", "throughput")

# The read/write smoke row (bench_table4_tpch --writes=N): every write counter
# the run asserts on must be present, the run must have self-validated, and a
# drained compactor must have left no pending deltas behind.
UPDATES_METRIC_KEYS = (
    "commits", "rows_inserted", "rows_deleted", "deltas_published",
    "deltas_merged", "deltas_folded", "merges", "compactions",
    "current_version", "pending_deltas", "validated",
)


# The wire-compression row (bench_table4_tpch / bench_micro_engine): the
# codec accounting must be present and self-consistent. With compression off
# the frames are the v1 layout verbatim, so encoded/raw must be ~1.0; with it
# on the ratio is workload-dependent (incompressible columns pay one encoding
# byte each), so only positivity is asserted.
BANDWIDTH_METRIC_KEYS = (
    "frames", "raw_bytes", "wire_bytes", "bytes_per_hop",
    "encoded_vs_raw_bytes", "dict_columns", "for_columns", "plain_columns",
    "compression",
)


def validate_bandwidth_case(path: str, case: dict) -> None:
    m = case.get("metrics", {})
    for key in BANDWIDTH_METRIC_KEYS:
        assert key in m, f"{path}: bandwidth row missing metric {key}"
    ratio = m["encoded_vs_raw_bytes"]
    assert ratio > 0, f"{path}: bandwidth row has non-positive ratio {ratio}"
    if m["compression"] == 0:
        assert abs(ratio - 1.0) < 1e-9, \
            f"{path}: compression off but encoded/raw ratio is {ratio}"
        assert m["dict_columns"] == 0 and m["for_columns"] == 0, \
            f"{path}: compression off but codec columns were counted"


def validate_updates_case(path: str, case: dict) -> None:
    m = case.get("metrics", {})
    for key in UPDATES_METRIC_KEYS:
        assert key in m, f"{path}: updates row missing metric {key}"
    assert m["validated"] == 1, f"{path}: updates row failed self-validation"
    assert m["rows_inserted"] > 0, f"{path}: updates row inserted no rows"
    assert m["deltas_published"] > 0, f"{path}: updates row published no deltas"
    assert m["deltas_folded"] > 0, f"{path}: updates row folded no deltas"
    assert m["pending_deltas"] == 0, f"{path}: updates row left pending deltas"


def validate(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "dcy-bench-v1", f"{path}: bad schema {doc.get('schema')}"
    assert doc.get("cases"), f"{path}: no cases"
    for case in doc["cases"]:
        for key in REQUIRED_CASE_KEYS:
            assert key in case, f"{path}: case {case.get('name')} missing {key}"
        assert case["p50_ns"] > 0, f"{path}: case {case['name']} has non-positive p50"
        if case["name"] == "updates":
            validate_updates_case(path, case)
        if case["name"] == "bandwidth":
            validate_bandwidth_case(path, case)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--expect", type=int, default=None,
                        help="exact number of reports required")
    parser.add_argument("files", nargs="*", help="reports (default: ./BENCH_*.json)")
    args = parser.parse_args()
    files = sorted(args.files) if args.files else sorted(glob.glob("BENCH_*.json"))
    if args.expect is not None and len(files) != args.expect:
        print(f"expected {args.expect} reports, got {len(files)}: {files}", file=sys.stderr)
        return 1
    for path in files:
        validate(path)
    print(f"{len(files)} bench reports conform to dcy-bench-v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
