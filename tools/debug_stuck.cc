// Diagnostic: run the §5.1 experiment inline and dump protocol state.
#include <cstdio>
#include "simdc/sim_cluster.h"
#include "simdc/collector.h"
#include "workload/dataset.h"
#include "workload/synthetic.h"
using namespace dcy;
using namespace dcy::simdc;

int main() {
  ClusterOptions copts;
  copts.num_nodes = 10;
  copts.bat_queue_capacity = 20 * kMB;
  copts.link_gbps = 1.0;
  copts.disk_bytes_per_sec = 40e6;
  copts.static_loit = 0.1;
  copts.seed = 42;
  Rng rng(42);
  auto ds = workload::MakeUniformDataset(100, 1*kMB, 10*kMB, 10, &rng);
  ExperimentCollector::Options co; co.num_bats = 100;
  ExperimentCollector col(co);
  SimCluster cluster(copts, &col);
  workload::InstallDataset(ds, &cluster);
  workload::UniformWorkloadOptions w;
  w.rate_per_node = 8; w.duration = 60 * kSecond; w.seed = 1;
  auto per_node = workload::GenerateUniformWorkload(w, ds, 10);
  for (uint32_t n = 0; n < 10; ++n) cluster.driver(n).SubmitWorkload(std::move(per_node[n]));
  cluster.Start();
  ScopedSampling sampling(&col, &cluster.simulator());
  bool ok = cluster.RunUntilQueriesDrain(FromSeconds(400));
  std::printf("drained=%d finished=%llu/%llu t=%.1f drops=%llu lost=%llu\n", ok,
      (unsigned long long)cluster.total_finished(), (unsigned long long)cluster.total_expected(),
      ToSeconds(cluster.simulator().Now()), (unsigned long long)cluster.total_data_drops(),
      (unsigned long long)col.total_presumed_lost());
  std::printf("ring_bats=%llu ring_bytes=%llu\n", (unsigned long long)col.current_ring_bats(),
      (unsigned long long)col.current_ring_bytes());
  for (uint32_t n = 0; n < 10; ++n) {
    auto& dc = cluster.node(n);
    uint64_t blocked = dc.pins().total_blocked();
    size_t s2 = dc.requests().size();
    size_t pending = 0, hot = 0;
    for (auto* b : const_cast<core::OwnedCatalog&>(dc.owned()).Hot()) { (void)b; hot++; }
    for (const auto* b : dc.owned().All()) if (b->state == core::OwnedState::kPending) pending++;
    std::printf("node %u: inflight=%llu s2=%zu blocked=%llu pending=%zu hot=%zu qload=%llu resends=%llu cache=%zu\n",
        n, (unsigned long long)cluster.driver(n).in_flight(), s2,
        (unsigned long long)blocked, pending, hot,
        (unsigned long long)cluster.network().DataQueueBytes(n),
        (unsigned long long)dc.metrics().resends, dc.cache().size());
  }
  // Dump a few stuck entries from node 0.
  for (uint32_t n = 0; n < 10; ++n) {
    int shown = 0;
    for (auto& [bat, e] : cluster.node(n).requests().entries()) {
      if (shown++ >= 3) break;
      const auto* ob_owner = ds.bats[bat].owner < 10 ? &ds.bats[bat] : nullptr;
      auto& owner_dc = cluster.node(ds.bats[bat].owner);
      const auto* ob = owner_dc.owned().Find(bat);
      std::printf("  node %u waits bat %u (owner %u state=%s) sent=%d dispatches=%llu queries=%zu blockedpins=%d\n",
          n, bat, ds.bats[bat].owner, ob ? core::OwnedStateName(ob->state) : "?", e.sent,
          (unsigned long long)e.dispatch_count, e.queries.size(), e.HasBlockedPins());
      (void)ob_owner;
    }
  }
  return 0;
}
