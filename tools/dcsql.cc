// dcsql — interactive shell against a live Data Cyclotron ring.
//
// Loads TPC-H microdata (workload/tpch_data.h) into an in-process ring and
// reads statements from stdin: SQL SELECT/INSERT/DELETE (terminated by ';')
// or MAL function blocks (`function user.x():void;` ... `end x;`). The language is
// auto-detected per statement (runtime::Language::kAuto); each result is
// printed as a typed table with the compute vs ring timing split
// (exec_seconds vs pin_blocked_seconds). Parse and semantic errors render
// the structured caret diagnostic.
//
//   ./dcsql [--scale=0.01] [--nodes=3] [--workers=4] [--max_rows=25] [--budget_mb=0] [--spill_dir=DIR]
//
// Meta commands: \tables (schema + fragment versions and pending deltas),
// \mem (memory tiers), \q (quit). EOF
// exits cleanly, so
// `echo "select ...;" | dcsql` works for scripted smoke runs.
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "common/flags.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"
#include "workload/tpch_data.h"

using namespace dcy;  // NOLINT

namespace {

std::string Trimmed(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWithWord(const std::string& s, const char* word) {
  const std::string t = Trimmed(s);
  const size_t n = std::char_traits<char>::length(word);
  if (t.size() < n || t.compare(0, n, word) != 0) return false;
  return t.size() == n || !std::isalnum(static_cast<unsigned char>(t[n]));
}

void PrintResult(const runtime::QueryResult& r, size_t max_rows) {
  const runtime::ResultSet& rs = r.result;
  if (rs.has_table()) {
    for (size_t c = 0; c < rs.num_columns(); ++c) {
      std::printf("%s%s", c > 0 ? "\t" : "", rs.column(c).name.c_str());
    }
    std::printf("\n");
    const size_t rows = rs.num_rows();
    const size_t shown = max_rows > 0 && rows > max_rows ? max_rows : rows;
    for (size_t row = 0; row < shown; ++row) {
      for (size_t c = 0; c < rs.num_columns(); ++c) {
        std::printf("%s%s", c > 0 ? "\t" : "", rs.ValueAt(row, c).ToString().c_str());
      }
      std::printf("\n");
    }
    if (shown < rows) std::printf("... (%zu of %zu rows shown)\n", shown, rows);
    std::printf("%zu row%s", rows, rows == 1 ? "" : "s");
  } else {
    std::printf("result: %s\n0 rows", mal::DatumToString(rs.scalar()).c_str());
  }
  // pin_blocked sums concurrent pin waits, so it can exceed exec time;
  // clamp the derived compute share at zero.
  const double compute =
      std::max(0.0, r.timing.exec_seconds - r.timing.pin_blocked_seconds);
  std::printf("  --  %.2f ms compute, %.2f ms ring-blocked\n", 1e3 * compute,
              1e3 * r.timing.pin_blocked_seconds);
}

/// Runs one statement; false when it failed (parse, compile, or execution),
/// so scripted runs can surface a non-zero exit code.
bool RunStatement(runtime::Session& session, const std::string& text, size_t max_rows) {
  ParseError perr;
  runtime::PrepareOptions popts;
  popts.parse_error = &perr;
  auto prepared = session.Prepare(text, popts);
  if (!prepared.ok()) {
    if (perr.set()) {
      std::printf("error: %s\n", perr.Render().c_str());
    } else {
      std::printf("error: %s\n", prepared.status().message().c_str());
    }
    return false;
  }
  auto result = session.Execute(*prepared);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().message().c_str());
    return false;
  }
  PrintResult(*result, max_rows);
  return true;
}

void PrintSchema(const runtime::RingCluster& ring) {
  const sql::Schema& schema = ring.SqlSchema();
  // Write-subsystem state per table: which base version the fragments carry,
  // the newest commit touching the table, and how many delta BATs the
  // compactor has yet to fold.
  std::map<std::string, write::TableVersionInfo> versions;
  for (auto& v : ring.TableVersions()) versions.emplace(v.table, std::move(v));
  for (const auto& table : schema.TableNames()) {
    std::printf("%s (", table.c_str());
    const auto& cols = schema.TableColumns(table);
    for (size_t i = 0; i < cols.size(); ++i) {
      std::printf("%s%s %s", i > 0 ? ", " : "", cols[i].name.c_str(),
                  bat::ValTypeName(cols[i].type));
    }
    std::printf(")");
    const auto it = versions.find("sys." + table);
    if (it != versions.end()) {
      const auto& v = it->second;
      std::printf("  -- base v%llu, current v%llu, %llu pending delta%s",
                  static_cast<unsigned long long>(v.base_version),
                  static_cast<unsigned long long>(v.current_version),
                  static_cast<unsigned long long>(v.pending_deltas),
                  v.pending_deltas == 1 ? "" : "s");
      if (v.pending_delta_bytes > 0) {
        std::printf(" (%.1f KiB)", v.pending_delta_bytes / 1024.0);
      }
    }
    std::printf("\n");
  }
}

/// \mem: the two-tier store per node (resident/spilled split, eviction and
/// promotion counters) plus the cluster resilience summary.
void PrintMemory(const runtime::RingCluster& ring, uint32_t nodes) {
  std::printf(
      "node     budget_mb  resident_mb   spilled_mb  evict  spill  promote"
      "  reject  shed\n");
  for (uint32_t n = 0; n < nodes; ++n) {
    const storage::MemoryMetrics m = ring.NodeMemory(n);
    std::printf("%-8u %9.1f  %11.2f  %11.2f  %5llu  %5llu  %7llu  %6llu  %4llu\n", n,
                m.budget_bytes / (1024.0 * 1024.0), m.resident_bytes / (1024.0 * 1024.0),
                m.spilled_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(m.evictions),
                static_cast<unsigned long long>(m.spills),
                static_cast<unsigned long long>(m.promotions),
                static_cast<unsigned long long>(m.admission_rejections),
                static_cast<unsigned long long>(m.pressure_sheds));
  }
  const storage::MemoryMetrics total = ring.Memory();
  std::printf(
      "total: %.2f MiB resident, %.2f MiB spilled, %llu spill writes "
      "(%llu corrupt files, %llu recovered from disk, %llu refetched from ring)\n",
      total.resident_bytes / (1024.0 * 1024.0), total.spilled_bytes / (1024.0 * 1024.0),
      static_cast<unsigned long long>(total.spills),
      static_cast<unsigned long long>(total.corrupt_spill_files),
      static_cast<unsigned long long>(total.recovered_from_disk),
      static_cast<unsigned long long>(total.refetched_from_ring));
  const auto res = ring.Resilience();
  std::printf(
      "resilience: %llu retransmits, %llu link resets, %llu heartbeats missed, "
      "%llu resplices, %llu crashed / %llu restarted\n",
      static_cast<unsigned long long>(res.retransmits),
      static_cast<unsigned long long>(res.link_resets),
      static_cast<unsigned long long>(res.heartbeats_missed),
      static_cast<unsigned long long>(res.ring_resplices),
      static_cast<unsigned long long>(res.nodes_crashed),
      static_cast<unsigned long long>(res.nodes_restarted));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.01);
  const uint32_t nodes = static_cast<uint32_t>(flags.GetInt("nodes", 3));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));
  const size_t max_rows = static_cast<size_t>(flags.GetInt("max_rows", 25));
  const uint64_t budget_mb = static_cast<uint64_t>(flags.GetInt("budget_mb", 0));
  const std::string spill_dir = flags.GetString("spill_dir", "");

  runtime::RingCluster::Options opts;
  opts.num_nodes = nodes;
  opts.plan_workers = workers;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  if (budget_mb > 0) {
    // Two-tier store: a per-node budget below the working set spills cold
    // fragments to disk; \mem shows the tier split live.
    opts.memory.budget_bytes = budget_mb * 1024 * 1024;
    opts.spill_dir = spill_dir;  // empty -> private temp dir
  }
  runtime::RingCluster ring(opts);

  const workload::TpchData data = workload::GenerateTpchData(scale);
  {
    core::NodeId owner = 0;
    for (auto& [name, b] : workload::TpchBats(data)) {
      DCY_CHECK_OK(ring.LoadBat(owner, name, std::move(b)));
      owner = (owner + 1) % nodes;
    }
  }
  ring.Start();
  auto session = ring.OpenSession(0);
  DCY_CHECK_OK(session.status());

  std::printf("dcsql: TPC-H scale %.3f on a %u-node ring (%zu lineitem rows)\n", scale,
              nodes, data.lineitem.rows());
  std::printf("SQL ends with ';', MAL blocks with 'end ...;'; \\tables, \\mem, \\q.\n");

  std::string buffer;
  std::string line;
  bool in_mal = false;
  uint64_t errors = 0;
  std::printf("dcsql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    const std::string t = Trimmed(line);
    if (buffer.empty()) {
      if (t.empty()) {
        std::printf("dcsql> ");
        std::fflush(stdout);
        continue;
      }
      if (t == "\\q" || t == "quit" || t == "exit") break;
      if (t == "\\tables") {
        PrintSchema(ring);
        std::printf("dcsql> ");
        std::fflush(stdout);
        continue;
      }
      if (t == "\\mem") {
        PrintMemory(ring, nodes);
        std::printf("dcsql> ");
        std::fflush(stdout);
        continue;
      }
      in_mal = StartsWithWord(t, "function");
    }
    buffer += line;
    buffer += '\n';
    // A MAL block runs at its `end` line; anything else runs at ';'.
    const bool complete = in_mal ? StartsWithWord(t, "end")
                                 : (!t.empty() && t.back() == ';');
    if (complete) {
      if (!RunStatement(*session, buffer, max_rows)) ++errors;
      buffer.clear();
      in_mal = false;
      std::printf("dcsql> ");
      std::fflush(stdout);
    }
  }
  if (!Trimmed(buffer).empty() && !RunStatement(*session, buffer, max_rows)) ++errors;
  std::printf("\n");
  // Scripted use (piped stdin): any failed statement fails the run, so CI
  // smoke scripts notice broken queries. Interactive sessions still exit 0
  // — a typo at the prompt is not a process failure.
  const bool interactive = isatty(fileno(stdin)) != 0;
  return !interactive && errors > 0 ? 1 : 0;
}
