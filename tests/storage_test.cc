// The two-tier fragment store (ISSUE-8): spill-file format hardening (every
// byte flip and truncation must decode to Corruption, never to data) and the
// budgeted FragmentStore — admission backpressure with numbers, LOI-ranked
// eviction, pin protection, promotion on fault-in, and crash-safe recovery.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "bat/column.h"
#include "core/loi.h"
#include "storage/fragment_store.h"
#include "storage/spill_file.h"

namespace dcy::storage {
namespace {

namespace fs = std::filesystem;

bat::BatPtr IntBat(std::vector<int32_t> values) {
  return bat::Bat::MakeColumn(bat::MakeIntColumn(std::move(values)));
}

bat::BatPtr IntBatOfSize(size_t n, int32_t seed = 0) {
  std::vector<int32_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = seed + static_cast<int32_t>(i);
  return IntBat(std::move(v));
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Spill-file format
// ---------------------------------------------------------------------------

TEST(SpillFileTest, RoundTripPreservesDataAndIdentity) {
  const auto bat = IntBat({7, -3, 42, 0, 1 << 20});
  const std::string image = EncodeSpillFile(11, "sys.t.id", *bat);

  SpillInfo info;
  auto decoded = DecodeSpillFile(image, &info);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(info.id, 11u);
  EXPECT_EQ(info.name, "sys.t.id");
  EXPECT_EQ((*decoded)->size(), 5u);
  EXPECT_EQ((*decoded)->tail()->GetInt64(2), 42);
}

TEST(SpillFileTest, WriteAndReadBackThroughDisk) {
  const std::string dir = FreshDir("spill_file_io");
  const auto bat = IntBatOfSize(1000);
  const std::string path = dir + "/" + SpillFileName(5);
  ASSERT_TRUE(WriteSpillFile(path, EncodeSpillFile(5, "a.b.c", *bat)).ok());

  SpillInfo info;
  auto read = ReadSpillFile(path, &info);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(info.id, 5u);
  EXPECT_EQ((*read)->size(), 1000u);

  auto missing = ReadSpillFile(dir + "/absent.frag", nullptr);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// The decode-fuzz contract: EVERY single-byte flip anywhere in the image and
// every truncation length must yield Status::Corruption — a damaged spill
// file can never be served as data.
TEST(SpillFileTest, EveryByteFlipYieldsCorruption) {
  const auto bat = IntBat({1, 2, 3, 4, 5, 6, 7, 8});
  const std::string image = EncodeSpillFile(3, "sys.t.id", *bat);

  for (size_t i = 0; i < image.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string damaged = image;
      damaged[i] = static_cast<char>(static_cast<unsigned char>(damaged[i]) ^ mask);
      auto decoded = DecodeSpillFile(damaged, nullptr);
      ASSERT_FALSE(decoded.ok()) << "byte " << i << " mask " << int(mask);
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << "byte " << i << ": " << decoded.status().ToString();
    }
  }
}

TEST(SpillFileTest, EveryTruncationYieldsCorruption) {
  const auto bat = IntBat({1, 2, 3});
  const std::string image = EncodeSpillFile(9, "s.t.c", *bat);
  for (size_t len = 0; len < image.size(); ++len) {
    auto decoded = DecodeSpillFile(image.substr(0, len), nullptr);
    ASSERT_FALSE(decoded.ok()) << "length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption) << "length " << len;
  }
}

TEST(SpillFileTest, TrailingGarbageYieldsCorruption) {
  const auto bat = IntBat({1, 2, 3});
  std::string image = EncodeSpillFile(9, "s.t.c", *bat);
  image += "junk";
  auto decoded = DecodeSpillFile(image, nullptr);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// InterestTracker (eviction-ranking input)
// ---------------------------------------------------------------------------

TEST(InterestTrackerTest, ScoresDecayWithHalfLife) {
  core::InterestTracker::Options opts;
  opts.half_life_seconds = 2.0;
  core::InterestTracker tracker(opts);
  tracker.Touch(1, /*now_seconds=*/0.0);
  EXPECT_DOUBLE_EQ(tracker.Score(1, 0.0), 1.0);
  EXPECT_NEAR(tracker.Score(1, 2.0), 0.5, 1e-9);
  EXPECT_NEAR(tracker.Score(1, 4.0), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(tracker.Score(2, 0.0), 0.0);  // unknown
}

TEST(InterestTrackerTest, RecentActivityOutranksOldBursts) {
  core::InterestTracker tracker({/*half_life_seconds=*/1.0});
  // Fragment 1: a burst of 5 touches at t=0. Fragment 2: one touch at t=6.
  for (int i = 0; i < 5; ++i) tracker.Touch(1, 0.0);
  tracker.Touch(2, 6.0);
  EXPECT_LT(tracker.Score(1, 6.0), tracker.Score(2, 6.0));
  tracker.Forget(2);
  EXPECT_DOUBLE_EQ(tracker.Score(2, 6.0), 0.0);
}

// ---------------------------------------------------------------------------
// FragmentStore
// ---------------------------------------------------------------------------

/// Synchronous store (async_spill = false) with proactive watermark spill
/// disabled (watermarks at 1.0): evictions spill inline and only on actual
/// budget overflow, so every assertion sees a deterministic tier assignment.
FragmentStoreOptions SyncOptions(uint64_t budget, const std::string& dir) {
  FragmentStoreOptions opts;
  opts.budget_bytes = budget;
  opts.spill_dir = dir;
  opts.async_spill = false;
  opts.spill_high_watermark = 1.0;
  opts.spill_low_watermark = 1.0;
  return opts;
}

TEST(FragmentStoreTest, UnlimitedStoreActsAsPlainCatalog) {
  FragmentStore store(FragmentStoreOptions{});
  ASSERT_TRUE(store.Admit(1, "sys.t.id", IntBat({1, 2}), /*durable=*/true).ok());
  EXPECT_EQ(store.Admit(1, "other", IntBat({3}), true).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Admit(2, "sys.t.id", IntBat({3}), true).code(),
            StatusCode::kAlreadyExists);
  auto by_name = store.GetByName("sys.t.id");
  ASSERT_TRUE(by_name.ok());
  auto by_id = store.GetById(1);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_name->get(), by_id->get());
  EXPECT_EQ(store.GetByName("absent").status().code(), StatusCode::kNotFound);
}

TEST(FragmentStoreTest, OverBudgetAdmissionFailsTypedWithNumbers) {
  const auto bat = IntBatOfSize(1000);  // ~4KB payload
  // No spill dir: nothing can be evicted to disk, and pinning the only
  // frame leaves nothing droppable either.
  FragmentStore store(SyncOptions(bat->ByteSize() + 512, ""));
  ASSERT_TRUE(store.Admit(1, "a.b.c", bat, true, /*initial_pins=*/1).ok());

  Status refused = store.Admit(2, "d.e.f", IntBatOfSize(1000), true);
  ASSERT_EQ(refused.code(), StatusCode::kResourceExhausted);
  // The message carries the numbers an operator needs: requested bytes,
  // budget, resident bytes, and the spill queue depth.
  EXPECT_NE(refused.message().find("requested"), std::string::npos) << refused.message();
  EXPECT_NE(refused.message().find("budget " +
                                   std::to_string(store.options().budget_bytes)),
            std::string::npos)
      << refused.message();
  EXPECT_NE(refused.message().find("resident"), std::string::npos) << refused.message();
  EXPECT_NE(refused.message().find("spill queue"), std::string::npos)
      << refused.message();
  EXPECT_EQ(store.Metrics().admission_rejections, 1u);
}

TEST(FragmentStoreTest, EvictionSpillsColdestAndPinProtectsHottest) {
  const std::string dir = FreshDir("store_evict");
  const auto a = IntBatOfSize(1000, 0);
  const auto b = IntBatOfSize(1000, 1000);
  const uint64_t one = a->ByteSize();
  FragmentStore store(SyncOptions(2 * one + 256, dir));

  ASSERT_TRUE(store.Admit(1, "s.t.a", a, true).ok());
  ASSERT_TRUE(store.Admit(2, "s.t.b", b, true).ok());
  // Touch 2 so 1 is the coldest; admitting 3 must spill 1.
  ASSERT_TRUE(store.Pin(2).ok());
  store.Unpin(2);
  ASSERT_TRUE(store.Admit(3, "s.t.c", IntBatOfSize(1000, 2000), true).ok());

  EXPECT_TRUE(store.IsSpilled(1));
  EXPECT_FALSE(store.IsSpilled(2));
  EXPECT_FALSE(store.IsSpilled(3));
  EXPECT_TRUE(fs::exists(dir + "/" + SpillFileName(1)));

  const auto m = store.Metrics();
  EXPECT_GE(m.spills, 1u);
  EXPECT_GE(m.evictions, 1u);
  EXPECT_LE(m.resident_bytes, store.options().budget_bytes);
}

TEST(FragmentStoreTest, PinFaultsSpilledFragmentBackIn) {
  const std::string dir = FreshDir("store_promote");
  const auto a = IntBatOfSize(1000, 7);
  FragmentStore store(SyncOptions(2 * a->ByteSize() + 256, dir));
  ASSERT_TRUE(store.Admit(1, "s.t.a", a, true).ok());
  ASSERT_TRUE(store.Admit(2, "s.t.b", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.Admit(3, "s.t.c", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.IsSpilled(1));

  auto pinned = store.Pin(1);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_FALSE(store.IsSpilled(1));
  EXPECT_EQ((*pinned)->tail()->GetInt64(0), 7);
  const auto m = store.Metrics();
  EXPECT_GE(m.promotions, 1u);
  EXPECT_GT(m.promotion_bytes, 0u);
  store.Unpin(1);
}

TEST(FragmentStoreTest, NonDurableFramesDropWithoutDisk) {
  const auto a = IntBatOfSize(1000);
  // No spill dir: only droppable (non-durable, unpinned) frames make room.
  FragmentStore store(SyncOptions(2 * a->ByteSize() + 256, ""));
  ASSERT_TRUE(store.Admit(1, "", a, /*durable=*/false).ok());
  ASSERT_TRUE(store.Admit(2, "", IntBatOfSize(1000), false).ok());
  ASSERT_TRUE(store.Admit(3, "", IntBatOfSize(1000), false).ok());
  // Frame 1 was dropped outright (no disk tier), not spilled.
  EXPECT_FALSE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));
  EXPECT_TRUE(store.Contains(3));
  EXPECT_GE(store.Metrics().evictions, 1u);
  EXPECT_EQ(store.Metrics().spills, 0u);
}

TEST(FragmentStoreTest, CorruptSpillFileFailsPinTypedAndIsDeleted) {
  const std::string dir = FreshDir("store_corrupt");
  const auto a = IntBatOfSize(1000);
  FragmentStore store(SyncOptions(2 * a->ByteSize() + 256, dir));
  ASSERT_TRUE(store.Admit(1, "s.t.a", a, true).ok());
  ASSERT_TRUE(store.Admit(2, "s.t.b", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.Admit(3, "s.t.c", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.IsSpilled(1));

  // Flip one payload byte on disk.
  const std::string path = dir + "/" + SpillFileName(1);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char c;
    f.seekg(64);
    f.get(c);
    f.seekp(64);
    f.put(static_cast<char>(c ^ 0x40));
  }

  auto pinned = store.Pin(1);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), StatusCode::kCorruption);
  // The damaged file is deleted and the frame forgotten: the caller
  // re-homes from the ring and re-admits.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_GE(store.Metrics().corrupt_spill_files, 1u);
}

TEST(FragmentStoreTest, RecoverReloadsValidFilesAndDeletesCorruptOnes) {
  const std::string dir = FreshDir("store_recover");
  const auto a = IntBatOfSize(500, 1);
  const auto b = IntBatOfSize(500, 2);
  ASSERT_TRUE(
      WriteSpillFile(dir + "/" + SpillFileName(1), EncodeSpillFile(1, "s.t.a", *a))
          .ok());
  ASSERT_TRUE(
      WriteSpillFile(dir + "/" + SpillFileName(2), EncodeSpillFile(2, "s.t.b", *b))
          .ok());
  {
    // File 3 is garbage from a torn write.
    std::ofstream bad(dir + "/" + SpillFileName(3), std::ios::binary);
    bad << "definitely not a spill file";
  }

  FragmentStore store(SyncOptions(0, dir));
  const auto report = store.Recover();
  EXPECT_EQ(report.recovered.size(), 2u);
  EXPECT_EQ(report.corrupt_files, 1u);
  EXPECT_FALSE(fs::exists(dir + "/" + SpillFileName(3)));

  // Recovered frames are registered spilled; a pin faults them in.
  EXPECT_TRUE(store.IsSpilled(1));
  auto by_name = store.GetByName("s.t.b");
  ASSERT_TRUE(by_name.ok()) << by_name.status().ToString();
  EXPECT_EQ((*by_name)->tail()->GetInt64(0), 2);
  const auto m = store.Metrics();
  EXPECT_EQ(m.recovered_from_disk, 2u);
  EXPECT_EQ(m.corrupt_spill_files, 1u);
}

TEST(FragmentStoreTest, ForgetAllForCrashKeepsDiskTier) {
  const std::string dir = FreshDir("store_crash");
  const auto a = IntBatOfSize(1000);
  FragmentStore store(SyncOptions(2 * a->ByteSize() + 256, dir));
  ASSERT_TRUE(store.Admit(1, "s.t.a", a, true).ok());
  ASSERT_TRUE(store.Admit(2, "s.t.b", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.Admit(3, "s.t.c", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.IsSpilled(1));

  store.ForgetAllForCrash();
  EXPECT_FALSE(store.Contains(1));
  EXPECT_FALSE(store.Contains(2));
  EXPECT_EQ(store.Metrics().resident_bytes, 0u);
  // The spilled frame's file survived the crash and recovery finds it.
  EXPECT_TRUE(fs::exists(dir + "/" + SpillFileName(1)));
  const auto report = store.Recover();
  EXPECT_EQ(report.recovered.size(), 1u);
  EXPECT_TRUE(store.Contains(1));
}

TEST(FragmentStoreTest, DropRemovesFrameAndSpillFile) {
  const std::string dir = FreshDir("store_drop");
  const auto a = IntBatOfSize(1000);
  FragmentStore store(SyncOptions(2 * a->ByteSize() + 256, dir));
  ASSERT_TRUE(store.Admit(1, "s.t.a", a, true).ok());
  ASSERT_TRUE(store.Admit(2, "s.t.b", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.Admit(3, "s.t.c", IntBatOfSize(1000), true).ok());
  ASSERT_TRUE(store.IsSpilled(1));

  store.Drop(1);
  EXPECT_FALSE(store.Contains(1));
  EXPECT_FALSE(fs::exists(dir + "/" + SpillFileName(1)));
  // The name is free again.
  EXPECT_TRUE(store.Admit(4, "s.t.a", IntBat({1}), true).ok());
}

TEST(FragmentStoreTest, UnderPressureTracksWatermarkWithoutDiskTier) {
  const auto a = IntBatOfSize(1000);
  FragmentStoreOptions opts = SyncOptions(2 * a->ByteSize() + 256, "");
  opts.spill_high_watermark = 0.9;  // pressure is a watermark condition
  FragmentStore store(opts);
  EXPECT_FALSE(store.UnderPressure());
  // Pinned frames fill the budget past the high watermark with no disk
  // tier to absorb the overhang.
  ASSERT_TRUE(store.Admit(1, "", a, false, /*initial_pins=*/1).ok());
  ASSERT_TRUE(store.Admit(2, "", IntBatOfSize(1000), false, 1).ok());
  EXPECT_TRUE(store.UnderPressure());
  store.Unpin(1);
  store.Unpin(2);
}

}  // namespace
}  // namespace dcy::storage
