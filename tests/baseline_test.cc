// Tests for the baseline comparators (A4): both must drain the workload,
// and their known weaknesses must show on a skewed access pattern.
#include <gtest/gtest.h>

#include "baseline/baselines.h"
#include "workload/synthetic.h"

namespace dcy::baseline {
namespace {

struct Scenario {
  workload::Dataset dataset;
  workload::NodeWorkloads workloads;
  LinkModel link;

  explicit Scenario(double stddev_frac = 0.05) {
    Rng rng(42);
    dataset = workload::MakeUniformDataset(100, 1 * kMB, 10 * kMB, 10, &rng);
    workload::GaussianWorkloadOptions w;
    w.rate_per_node = 8;
    w.duration = 20 * kSecond;
    w.mean = 50;
    w.stddev = 100 * stddev_frac;
    w.seed = 7;
    workloads = workload::GenerateGaussianWorkload(w, dataset, 10);
    link.bandwidth_bytes_per_sec = GbpsToBytesPerSec(1.0);
    link.disk_bytes_per_sec = 40e6;
  }
};

TEST(BaselineTest, StickyDrainsEverything) {
  Scenario s;
  auto r = RunStickyBaseline(s.dataset, s.workloads, s.link, FromSeconds(4000));
  uint64_t expected = 0;
  for (const auto& n : s.workloads) expected += n.size();
  EXPECT_EQ(r.finished, expected);
  EXPECT_GT(r.lifetime_sec.mean(), 0.0);
  EXPECT_GE(r.p95_lifetime_sec, r.lifetime_sec.mean() * 0.5);
}

TEST(BaselineTest, BroadcastDrainsEverything) {
  Scenario s;
  auto r = RunBroadcastBaseline(s.dataset, s.workloads, s.link, FromSeconds(4000));
  uint64_t expected = 0;
  for (const auto& n : s.workloads) expected += n.size();
  EXPECT_EQ(r.finished, expected);
}

TEST(BaselineTest, BroadcastLatencyBoundedByCycleTime) {
  Scenario s;
  auto r = RunBroadcastBaseline(s.dataset, s.workloads, s.link, FromSeconds(4000));
  // Cycle = total bytes / bandwidth; each of <=5 steps waits at most one
  // cycle plus processing (~0.2 s): a hard upper bound on the mean.
  const double cycle =
      static_cast<double>(s.dataset.total_bytes()) / s.link.bandwidth_bytes_per_sec;
  EXPECT_LT(r.lifetime_sec.mean(), 5 * (cycle + 0.25));
  EXPECT_GT(r.lifetime_sec.mean(), 0.2);  // can't beat processing time
}

TEST(BaselineTest, StickySuffersOnHotOwners) {
  // Concentrating the access distribution makes the hot owner's NIC the
  // bottleneck: sticky latency must degrade as skew sharpens.
  Scenario broad(0.50);
  Scenario sharp(0.02);
  auto relaxed = RunStickyBaseline(broad.dataset, broad.workloads, broad.link,
                                   FromSeconds(4000));
  auto contended = RunStickyBaseline(sharp.dataset, sharp.workloads, sharp.link,
                                     FromSeconds(4000));
  EXPECT_GT(contended.lifetime_sec.mean(), relaxed.lifetime_sec.mean());
}

TEST(BaselineTest, DeterministicForSameInputs) {
  Scenario s;
  auto a = RunStickyBaseline(s.dataset, s.workloads, s.link, FromSeconds(4000));
  auto b = RunStickyBaseline(s.dataset, s.workloads, s.link, FromSeconds(4000));
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_DOUBLE_EQ(a.lifetime_sec.mean(), b.lifetime_sec.mean());
  EXPECT_EQ(a.last_finish, b.last_finish);
}

}  // namespace
}  // namespace dcy::baseline
