// Integration tests: a complete simulated ring executing synthetic
// workloads end-to-end, including determinism, conservation invariants,
// query drain, loss recovery, and the CPU scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "simdc/collector.h"
#include "simdc/experiments.h"
#include "simdc/sim_cluster.h"
#include "workload/dataset.h"
#include "workload/synthetic.h"

namespace dcy::simdc {
namespace {

using workload::Dataset;
using workload::GenerateUniformWorkload;
using workload::InstallDataset;
using workload::MakeUniformDataset;
using workload::UniformWorkloadOptions;

ClusterOptions SmallCluster(uint32_t nodes = 4) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.bat_queue_capacity = 20 * kMB;
  opts.static_loit = 0.5;
  opts.disk_bytes_per_sec = 400e6;
  opts.seed = 99;
  return opts;
}

struct Harness {
  explicit Harness(ClusterOptions copts, uint32_t num_bats = 60,
                   uint64_t min_size = 100 * kKiB, uint64_t max_size = 1 * kMB) {
    Rng rng(copts.seed);
    dataset = MakeUniformDataset(num_bats, min_size, max_size, copts.num_nodes, &rng);
    ExperimentCollector::Options copts2;
    copts2.num_bats = num_bats;
    collector = std::make_unique<ExperimentCollector>(copts2);
    cluster = std::make_unique<SimCluster>(copts, collector.get());
    InstallDataset(dataset, cluster.get());
  }

  void SubmitUniform(double rate, SimTime duration, uint64_t seed = 5) {
    UniformWorkloadOptions wopts;
    wopts.rate_per_node = rate;
    wopts.duration = duration;
    wopts.shape.min_proc = FromMillis(10);
    wopts.shape.max_proc = FromMillis(20);
    wopts.seed = seed;
    auto per_node = GenerateUniformWorkload(wopts, dataset, cluster->num_nodes());
    for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
      cluster->driver(n).SubmitWorkload(std::move(per_node[n]));
    }
  }

  Dataset dataset;
  std::unique_ptr<ExperimentCollector> collector;
  std::unique_ptr<SimCluster> cluster;
};

TEST(SimClusterTest, AllQueriesFinish) {
  Harness h(SmallCluster());
  h.SubmitUniform(/*rate=*/20, /*duration=*/5 * kSecond);
  h.cluster->Start();
  // Declared after `h`: unwinds first, so the sampler is released while the
  // simulator is still alive even when an ASSERT below returns early.
  ScopedSampling sampling(h.collector.get(), &h.cluster->simulator());
  ASSERT_TRUE(h.cluster->RunUntilQueriesDrain(FromSeconds(300)));
  EXPECT_EQ(h.cluster->total_expected(), 4u * 100u);
  EXPECT_EQ(h.cluster->total_finished(), h.cluster->total_expected());
  EXPECT_EQ(h.cluster->total_failed(), 0u);
}

TEST(SimClusterTest, DeterministicForSeed) {
  auto run = [] {
    Harness h(SmallCluster());
    h.SubmitUniform(20, 5 * kSecond);
    h.cluster->Start();
    h.cluster->RunUntilQueriesDrain(FromSeconds(300));
    return std::make_tuple(h.cluster->last_finish_time(), h.cluster->total_finished(),
                           h.collector->total_loads(), h.collector->total_unloads(),
                           h.cluster->simulator().total_fired());
  };
  EXPECT_EQ(run(), run());
}

TEST(SimClusterTest, ConservationOfHotBats) {
  Harness h(SmallCluster());
  h.SubmitUniform(20, 5 * kSecond);
  h.cluster->Start();
  ASSERT_TRUE(h.cluster->RunUntilQueriesDrain(FromSeconds(300)));
  // Every load is matched by an unload, a loss write-off, or the BAT is
  // still hot in the ring.
  EXPECT_EQ(h.collector->total_loads(),
            h.collector->total_unloads() + h.collector->total_presumed_lost() +
                h.collector->current_ring_bats());
  // With lossless links nothing may be presumed lost.
  EXPECT_EQ(h.collector->total_presumed_lost(), 0u);
  EXPECT_EQ(h.cluster->total_data_drops(), 0u);
}

TEST(SimClusterTest, RingEmptiesAfterWorkloadEnds) {
  Harness h(SmallCluster());
  h.SubmitUniform(20, 3 * kSecond);
  h.cluster->Start();
  ASSERT_TRUE(h.cluster->RunUntilQueriesDrain(FromSeconds(300)));
  // Keep simulating: with no interest every BAT's LOI decays below any
  // threshold and the owners pull them out.
  h.cluster->RunUntil(h.cluster->simulator().Now() + FromSeconds(120));
  EXPECT_EQ(h.collector->current_ring_bats(), 0u);
  EXPECT_EQ(h.collector->current_ring_bytes(), 0u);
}

TEST(SimClusterTest, QueriesForMissingBatFail) {
  Harness h(SmallCluster());
  // One query asking for a BAT that does not exist anywhere.
  QuerySpec spec;
  spec.id = 1;
  spec.arrival = kSecond;
  spec.steps.push_back(QueryStep{9999, FromMillis(10)});
  h.cluster->driver(0).SubmitWorkload({spec});
  h.cluster->Start();
  ASSERT_TRUE(h.cluster->RunUntilQueriesDrain(FromSeconds(60)));
  EXPECT_EQ(h.cluster->total_failed(), 1u);
  EXPECT_EQ(h.cluster->total_finished(), 0u);
}

TEST(SimClusterTest, RecoverFromWireLoss) {
  ClusterOptions opts = SmallCluster();
  opts.loss_probability = 0.02;  // 2% of messages vanish on the wire
  opts.node.min_resend_timeout = FromMillis(100);
  opts.node.initial_rotation_estimate = FromMillis(100);
  Harness h(opts);
  h.SubmitUniform(10, 3 * kSecond, /*seed=*/11);
  h.cluster->Start();
  // Resend + lost-BAT detection must still drain every query.
  ASSERT_TRUE(h.cluster->RunUntilQueriesDrain(FromSeconds(600)));
  EXPECT_EQ(h.cluster->total_finished(), h.cluster->total_expected());
}

TEST(SimClusterTest, ThroughputScalesWithLoit) {
  // The §5.1 headline at 1/10 scale through the real experiment runner:
  // with the hot set far above ring capacity, a high LOIT must yield more
  // finished queries at a mid-run checkpoint and a lower mean life time
  // than a very low LOIT (paper Figs. 6a/6b).
  auto run = [](double loit) {
    UniformExperimentOptions opts;
    opts.loit = loit;
    opts.scale = 0.1;
    return RunUniformExperiment(opts);
  };
  const ExperimentResult low = run(0.1);
  const ExperimentResult high = run(1.1);
  const auto& low_fin = low.collector->query_series().all().at("finished");
  const auto& high_fin = high.collector->query_series().all().at("finished");
  EXPECT_GT(high_fin.At(50.0), low_fin.At(50.0));
  EXPECT_LT(high.collector->lifetime_stat().mean(), low.collector->lifetime_stat().mean());
  EXPECT_EQ(high.finished + high.failed, high.registered);
}

TEST(CpuSchedulerTest, UnboundedRunsConcurrently) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 0);
  int done = 0;
  for (int i = 0; i < 10; ++i) cpu.Submit(100, [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(sim.Now(), 100);  // all in parallel
  EXPECT_EQ(cpu.busy_time(), 1000);
}

TEST(CpuSchedulerTest, BoundedCoresQueueWork) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) cpu.Submit(100, [&] { completions.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], 100);
  EXPECT_EQ(completions[1], 100);
  EXPECT_EQ(completions[2], 200);  // waited for a core
  EXPECT_EQ(completions[3], 200);
}

TEST(CpuSchedulerTest, ZeroDurationTasksComplete) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 1);
  bool ran = false;
  cpu.Submit(0, [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace dcy::simdc
