// Unit tests for the simulated network: serialization timing, FIFO queueing,
// DropTail, loss injection, and the ring topology wiring.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "net/link.h"
#include "net/ring_network.h"

namespace dcy::net {
namespace {

SimplexLink::Options FastLink() {
  SimplexLink::Options o;
  o.bandwidth_bytes_per_sec = 1e9;  // 1 GB/s => 1 ns per byte
  o.propagation_delay = 1000;       // 1 us
  o.queue_capacity_bytes = 0;
  return o;
}

TEST(SimplexLinkTest, DeliveryTimeIsSerializationPlusDelay) {
  sim::Simulator sim;
  SimplexLink link(&sim, FastLink());
  SimTime delivered_at = -1;
  link.Send(1000, [&] { delivered_at = sim.Now(); });
  sim.Run();
  // 1000 B at 1 GB/s = 1000 ns serialization + 1000 ns delay.
  EXPECT_EQ(delivered_at, 2000);
}

TEST(SimplexLinkTest, BackToBackMessagesSerialize) {
  sim::Simulator sim;
  SimplexLink link(&sim, FastLink());
  std::vector<SimTime> deliveries;
  link.Send(1000, [&] { deliveries.push_back(sim.Now()); });
  link.Send(1000, [&] { deliveries.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 2000);
  EXPECT_EQ(deliveries[1], 3000);  // second waits for the wire
}

TEST(SimplexLinkTest, QueueDrainsAsBytesLeave) {
  sim::Simulator sim;
  SimplexLink link(&sim, FastLink());
  link.Send(1000, [] {});
  link.Send(500, [] {});
  EXPECT_EQ(link.queued_bytes(), 1500u);
  sim.RunUntil(1000);  // first message fully serialized
  EXPECT_EQ(link.queued_bytes(), 500u);
  sim.Run();
  EXPECT_EQ(link.queued_bytes(), 0u);
}

TEST(SimplexLinkTest, DropTailRejectsWhenFull) {
  sim::Simulator sim;
  auto opts = FastLink();
  opts.queue_capacity_bytes = 1200;
  SimplexLink link(&sim, opts);
  EXPECT_TRUE(link.Send(1000, [] {}));
  EXPECT_FALSE(link.Send(500, [] {}));  // 1500 > 1200
  EXPECT_TRUE(link.Send(200, [] {}));   // fits exactly
  EXPECT_EQ(link.stats().messages_dropped_queue, 1u);
  sim.Run();
  EXPECT_EQ(link.stats().messages_delivered, 2u);
}

TEST(SimplexLinkTest, LossInjectionDropsOnWire) {
  sim::Simulator sim;
  auto opts = FastLink();
  opts.loss_probability = 1.0;
  Rng rng(3);
  SimplexLink link(&sim, opts, &rng);
  bool delivered = false;
  EXPECT_TRUE(link.Send(100, [&] { delivered = true; }));  // sender cannot tell
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.stats().messages_lost_wire, 1u);
  EXPECT_EQ(link.queued_bytes(), 0u);  // bytes still drained from the queue
}

TEST(SimplexLinkTest, StatsAccumulate) {
  sim::Simulator sim;
  SimplexLink link(&sim, FastLink());
  for (int i = 0; i < 5; ++i) link.Send(100, [] {});
  sim.Run();
  EXPECT_EQ(link.stats().messages_sent, 5u);
  EXPECT_EQ(link.stats().messages_delivered, 5u);
  EXPECT_EQ(link.stats().bytes_delivered, 500u);
  EXPECT_EQ(link.stats().busy_time, 500);
}

RingNetwork::Options SmallRing(uint32_t n) {
  RingNetwork::Options o;
  o.num_nodes = n;
  o.data.bandwidth_bytes_per_sec = 1e9;
  o.data.propagation_delay = 1000;
  o.data.queue_capacity_bytes = 0;
  o.request = o.data;
  return o;
}

TEST(RingNetworkTest, SuccessorPredecessorWrap) {
  sim::Simulator sim;
  RingNetwork ring(&sim, SmallRing(4));
  EXPECT_EQ(ring.Successor(0), 1u);
  EXPECT_EQ(ring.Successor(3), 0u);
  EXPECT_EQ(ring.Predecessor(0), 3u);
  EXPECT_EQ(ring.Predecessor(2), 1u);
}

TEST(RingNetworkTest, DataTravelsClockwise) {
  sim::Simulator sim;
  RingNetwork ring(&sim, SmallRing(3));
  bool arrived = false;
  ring.SendData(2, 100, [&] { arrived = true; });
  // Message occupies node 2's outgoing data queue until serialized.
  EXPECT_EQ(ring.DataQueueBytes(2), 100u);
  EXPECT_EQ(ring.DataQueueBytes(0), 0u);
  sim.Run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(ring.TotalDataQueueBytes(), 0u);
}

TEST(RingNetworkTest, RequestChannelIndependentOfData) {
  sim::Simulator sim;
  RingNetwork ring(&sim, SmallRing(3));
  // Saturate node 0's data channel; requests must still flow immediately.
  ring.SendData(0, 1000000, [] {});
  SimTime request_at = -1;
  ring.SendRequest(0, 64, [&] { request_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(request_at, 64 + 1000);  // unaffected by the 1 MB data transfer
}

TEST(RingNetworkTest, IdleHopTime) {
  sim::Simulator sim;
  RingNetwork ring(&sim, SmallRing(3));
  EXPECT_EQ(ring.IdleHopTime(1000), 1000 + 1000);
}

TEST(RingNetworkTest, RejectsSingleNodeRing) {
  sim::Simulator sim;
  EXPECT_DEATH({ RingNetwork ring(&sim, SmallRing(1)); }, "at least two");
}

}  // namespace
}  // namespace dcy::net
