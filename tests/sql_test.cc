// Tests of the SQL front end (lexer -> parser -> analyzer -> plan builder):
// golden SQL -> MAL lowering shapes, structured ParseError diagnostics for
// parse and semantic failures in both front ends, language auto-detection
// and the dialect-keyed plan cache, and differential runs of SQL against
// hand-written MAL on a live ring at 1 and 8 plan workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <variant>
#include <vector>

#include "bat/operators.h"
#include "mal/program.h"
#include "opt/dc_optimizer.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"
#include "sql/compiler.h"
#include "sql/schema.h"
#include "workload/tpch_data.h"

namespace dcy::sql {
namespace {

/// t(a lng, b dbl, s str) and u(id lng, v lng) — the fixture schema the
/// golden and error tests resolve names against.
Schema TestSchema() {
  Schema schema;
  schema.AddColumn("t", "a", bat::ValType::kLng);
  schema.AddColumn("t", "b", bat::ValType::kDbl);
  schema.AddColumn("t", "s", bat::ValType::kStr);
  schema.AddColumn("u", "id", bat::ValType::kLng);
  schema.AddColumn("u", "v", bat::ValType::kLng);
  return schema;
}

std::vector<std::string> Ops(const mal::Program& p) {
  std::vector<std::string> ops;
  ops.reserve(p.instructions.size());
  for (const auto& ins : p.instructions) ops.push_back(ins.FullName());
  return ops;
}

/// True when `want` appears in `ops` in order (not necessarily adjacent).
bool InOrder(const std::vector<std::string>& ops, const std::vector<std::string>& want) {
  size_t at = 0;
  for (const auto& op : ops) {
    if (at < want.size() && op == want[at]) ++at;
  }
  return at == want.size();
}

std::vector<std::string> CompileOps(const std::string& sql) {
  auto program = Compile(sql, TestSchema());
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) return {};
  return Ops(program.value());
}

std::string Joined(const std::vector<std::string>& ops) {
  std::string s;
  for (const auto& op : ops) {
    s += op;
    s += ' ';
  }
  return s;
}

// ---------------------------------------------------------------------------
// Golden lowering shapes.
// ---------------------------------------------------------------------------

TEST(SqlGolden, ProjectionBindsAndExports) {
  const auto ops = CompileOps("select a from t");
  EXPECT_TRUE(InOrder(ops, {"sql.bind", "sql.resultSet", "sql.rsCol", "io.stdout",
                            "sql.exportResult"}))
      << Joined(ops);
}

TEST(SqlGolden, WhereLowersToSelectMirrorGather) {
  const auto ops = CompileOps("select a from t where a > 2");
  EXPECT_TRUE(InOrder(ops, {"sql.bind", "algebra.thetaselect", "bat.mirror",
                            "algebra.markT", "bat.reverse", "algebra.leftjoin",
                            "sql.resultSet"}))
      << Joined(ops);
}

TEST(SqlGolden, EqualityUsesPointSelect) {
  const auto ops = CompileOps("select a from t where s = 'x'");
  EXPECT_TRUE(InOrder(ops, {"sql.bind", "algebra.select", "bat.mirror"})) << Joined(ops);
}

TEST(SqlGolden, TopLevelAndAppliesConjunctsSequentially) {
  // Top-level conjuncts are split and each filter narrows the rowset before
  // the next runs (select -> gather -> select), with no semijoin.
  const auto ops = CompileOps("select a from t where a > 1 and b < 4.0");
  EXPECT_TRUE(InOrder(ops, {"algebra.thetaselect", "bat.mirror", "algebra.leftjoin",
                            "algebra.thetaselect", "bat.mirror"}))
      << Joined(ops);
}

TEST(SqlGolden, NestedAndIntersectsWithSemijoin) {
  // Under an OR the AND cannot be split: both sides evaluate to position
  // mirrors and intersect via semijoin.
  const auto ops = CompileOps("select a from t where (a > 1 and b < 4.0) or a = 6");
  EXPECT_TRUE(InOrder(ops, {"algebra.semijoin", "algebra.kunion", "algebra.sort"}))
      << Joined(ops);
}

TEST(SqlGolden, OrUnionsCandidates) {
  const auto ops = CompileOps("select a from t where a > 5 or b < 1.0");
  EXPECT_TRUE(InOrder(ops, {"algebra.kunion", "algebra.sort"})) << Joined(ops);
}

TEST(SqlGolden, InnerJoinReversesTheRightSide) {
  const auto ops = CompileOps("select u.v from t, u where t.a = u.id");
  EXPECT_TRUE(InOrder(ops, {"sql.bind", "bat.reverse", "algebra.join"})) << Joined(ops);
}

TEST(SqlGolden, GroupByEmitsGroupingAndPerGroupAggregates) {
  const auto ops = CompileOps("select s, sum(b), count(*) from t group by s");
  EXPECT_TRUE(InOrder(ops, {"group.id", "group.extents", "aggr.count",
                            "aggr.sumPerGroup", "aggr.countPerGroup"}))
      << Joined(ops);
}

TEST(SqlGolden, ScalarAggregateUsesSingleGroup) {
  const auto ops = CompileOps("select sum(b) from t");
  // No GROUP BY: every row is projected into group 0 and aggregated per-group.
  EXPECT_TRUE(InOrder(ops, {"algebra.project", "aggr.sumPerGroup"})) << Joined(ops);
}

TEST(SqlGolden, AvgIsSumOverCount) {
  const auto ops = CompileOps("select s, avg(b) from t group by s");
  EXPECT_TRUE(InOrder(ops, {"aggr.sumPerGroup", "aggr.countPerGroup", "batcalc.div"}))
      << Joined(ops);
}

TEST(SqlGolden, OrderByDescNegatesTheKey) {
  const auto ops = CompileOps("select a from t order by a desc");
  EXPECT_TRUE(InOrder(ops, {"batcalc.mul", "algebra.sort", "algebra.markT",
                            "bat.reverse", "algebra.leftjoin"}))
      << Joined(ops);
}

TEST(SqlGolden, LimitSlices) {
  const auto ops = CompileOps("select a from t order by a limit 2");
  EXPECT_TRUE(InOrder(ops, {"algebra.sort", "algebra.slice", "sql.resultSet"}))
      << Joined(ops);
}

TEST(SqlGolden, ArithmeticLowersToBatcalc) {
  const auto ops = CompileOps("select sum(b * (1.0 - b)) from t");
  EXPECT_TRUE(InOrder(ops, {"batcalc.sub", "batcalc.mul", "aggr.sumPerGroup"}))
      << Joined(ops);
}

// ---- writes (ISSUE-9): INSERT/DELETE lowering shapes ----------------------

TEST(SqlGolden, InsertLowersToPerColumnAppendsThenCommit) {
  const auto ops = CompileOps("insert into u values (4, 40)");
  // One wappend per column, then the commit that consumes their tokens; the
  // commit is the last assigned value (the rows-affected scalar).
  EXPECT_TRUE(InOrder(ops, {"sql.wappend", "sql.wappend", "sql.wcommit"}))
      << Joined(ops);
  EXPECT_EQ(std::count(ops.begin(), ops.end(), "sql.wappend"), 2);
}

TEST(SqlGolden, InsertAcceptsColumnListAndMultipleRows) {
  const auto ops = CompileOps("insert into u (v, id) values (40, 4), (50, 5)");
  EXPECT_TRUE(InOrder(ops, {"sql.wappend", "sql.wappend", "sql.wcommit"}))
      << Joined(ops);
}

TEST(SqlGolden, DeleteLowersPredicateToPositionsThenWdelete) {
  const auto ops = CompileOps("delete from u where id = 2");
  EXPECT_TRUE(InOrder(ops, {"sql.bind", "algebra.select", "bat.mirror",
                            "sql.wdelete"}))
      << Joined(ops);
}

TEST(SqlGolden, DeleteWithoutWhereMirrorsEveryPosition) {
  const auto ops = CompileOps("delete from u");
  EXPECT_TRUE(InOrder(ops, {"sql.bind", "bat.mirror", "sql.wdelete"})) << Joined(ops);
}

/// The emitted program must be valid MAL text: regenerating it and feeding
/// it back through the MAL parser yields a structurally identical plan.
TEST(SqlGolden, EmittedProgramRoundTripsThroughMalParser) {
  const auto program = Compile("select s, sum(b) from t where a > 1 group by s "
                               "order by s limit 3",
                               TestSchema());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto reparsed = mal::ParseProgram(program->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  std::string why;
  EXPECT_TRUE(mal::AlphaEquivalent(*program, *reparsed, &why)) << why;
}

/// All five Table-4 TPC-H queries compile against the generated schema and
/// round-trip through the MAL parser.
TEST(SqlGolden, TpchQueriesCompile) {
  const workload::TpchData data = workload::GenerateTpchData(0.001);
  std::map<std::string, bat::ValType> columns;
  for (auto& [name, b] : workload::TpchBats(data)) {
    columns[name] = b->tail()->type();
  }
  const Schema schema = Schema::FromQualifiedColumns(columns);
  for (int q : workload::TpchSqlQueries()) {
    ParseError error;
    auto program = Compile(workload::TpchQuerySql(q), schema, &error);
    ASSERT_TRUE(program.ok()) << "Q" << q << ": " << program.status().ToString();
    auto reparsed = mal::ParseProgram(program->ToString());
    EXPECT_TRUE(reparsed.ok()) << "Q" << q << ": " << reparsed.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Language detection and dialect-keyed plan cache.
// ---------------------------------------------------------------------------

TEST(SqlDetect, LooksLikeSql) {
  EXPECT_TRUE(LooksLikeSql("select a from t"));
  EXPECT_TRUE(LooksLikeSql("  SELECT 1"));
  EXPECT_TRUE(LooksLikeSql("-- comment\nselect a from t"));
  EXPECT_FALSE(LooksLikeSql("function user.q():void;\nend q;"));
  EXPECT_FALSE(LooksLikeSql("X1 := sql.bind(\"sys\",\"t\",\"a\",0);"));
  EXPECT_FALSE(LooksLikeSql("selector := foo.bar();"));  // prefix, not the word
  EXPECT_TRUE(LooksLikeSql("insert into u values (1, 2)"));
  EXPECT_TRUE(LooksLikeSql("  DELETE from u where id = 1"));
  EXPECT_FALSE(LooksLikeSql("insertion := foo.bar();"));
}

TEST(SqlDetect, PlanCacheKeySeparatesDialects) {
  const std::string text = "select a from t";
  EXPECT_NE(opt::PlanCacheKey(text, true, {}, "sql"), opt::PlanCacheKey(text, true, {}, "mal"));
  EXPECT_EQ(opt::PlanCacheKey(text, true, {}, "sql"), opt::PlanCacheKey(text, true, {}, "sql"));
  EXPECT_EQ(opt::PlanCacheKey(text, true).rfind("mal-", 0), 0u);  // default dialect
}

// ---------------------------------------------------------------------------
// Structured diagnostics.
// ---------------------------------------------------------------------------

void ExpectCompileError(const std::string& sql, const std::string& message_substr) {
  ParseError error;
  auto program = Compile(sql, TestSchema(), &error);
  ASSERT_FALSE(program.ok()) << sql;
  EXPECT_TRUE(error.set()) << sql;
  EXPECT_GE(error.line, 1) << sql;
  EXPECT_GE(error.column, 1) << sql;
  EXPECT_NE(error.snippet.find('^'), std::string::npos) << sql;
  EXPECT_NE(error.message.find(message_substr), std::string::npos)
      << sql << " -> " << error.message;
  // The Status carries the same rendered diagnostic.
  EXPECT_NE(program.status().message().find(message_substr), std::string::npos);
}

TEST(SqlErrors, ParseErrors) {
  ExpectCompileError("select from t", "expected");
  ExpectCompileError("select a t", "expected");
  ExpectCompileError("select a from t where s = 'oops", "string");
}

TEST(SqlErrors, SemanticErrors) {
  ExpectCompileError("select a from nosuch", "unknown table");
  ExpectCompileError("select nosuch from t", "unknown column");
  ExpectCompileError("select u.v from t, u where t.nosuch = u.id", "unknown column");
  ExpectCompileError("select a from t where s > 3", "type mismatch in comparison");
  ExpectCompileError("select a, sum(b) from t group by s",
                     "must appear in GROUP BY or an aggregate");
  ExpectCompileError("select a from t where sum(a) > 3", "aggregate not allowed here");
  ExpectCompileError("select sum(s) from t", "non-numeric");
}

TEST(SqlErrors, WriteStatementErrors) {
  ExpectCompileError("insert into nosuch values (1)", "unknown table");
  ExpectCompileError("insert into u (id) values (1)", "must cover every column");
  ExpectCompileError("insert into u (id, id) values (1, 2)", "duplicate column");
  ExpectCompileError("insert into u values (1)", "VALUES row has");
  ExpectCompileError("insert into u values", "expected '('");
  ExpectCompileError("delete from nosuch", "unknown table");
  ExpectCompileError("delete from u where nosuch = 1", "unknown column");
}

TEST(SqlErrors, PositionsPointAtTheOffendingToken) {
  ParseError error;
  auto program = Compile("select nosuch from t", TestSchema(), &error);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(error.line, 1);
  EXPECT_EQ(error.column, 8);
  EXPECT_EQ(error.token, "nosuch");
}

TEST(SqlErrors, SecondLineErrorsCarryTheRightLine) {
  ParseError error;
  auto program = Compile("select a\nfrom t where nosuch = 1", TestSchema(), &error);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(error.line, 2);
  EXPECT_EQ(error.token, "nosuch");
}

TEST(MalErrors, ParserFillsStructuredError) {
  ParseError error;
  auto program = mal::ParseProgram("X1 := sql.bind(\"sys\",\"t\"\n", &error);
  ASSERT_FALSE(program.ok());
  EXPECT_TRUE(error.set());
  EXPECT_GE(error.line, 1);
  EXPECT_GE(error.column, 1);
  EXPECT_NE(error.snippet.find('^'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential: SQL vs hand-written MAL on a live ring, workers {1, 8}.
// ---------------------------------------------------------------------------

class SqlDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::RingCluster::Options opts;
    opts.num_nodes = 3;
    opts.node.load_all_period = FromMillis(2);
    opts.node.maintenance_period = FromMillis(10);
    opts.node.adapt_period = FromMillis(10);
    opts.node.initial_rotation_estimate = FromMillis(5);
    opts.node.min_resend_timeout = FromMillis(20);
    cluster = std::make_unique<runtime::RingCluster>(opts);
    Load(0, "sys.t.a", bat::MakeLngColumn({1, 2, 3, 4, 5, 6}));
    Load(1, "sys.t.b", bat::MakeDblColumn({0.5, 1.5, 2.5, 3.5, 4.5, 5.5}));
    Load(2, "sys.t.s", bat::MakeStrColumn({"x", "y", "x", "y", "x", "y"}));
    Load(0, "sys.u.id", bat::MakeLngColumn({1, 2, 3}));
    Load(1, "sys.u.v", bat::MakeLngColumn({10, 20, 30}));
    cluster->Start();
  }

  void Load(core::NodeId node, const std::string& name, bat::ColumnPtr tail) {
    ASSERT_TRUE(
        cluster->LoadBat(node, name, bat::Bat::MakeColumn(std::move(tail))).ok());
  }

  Result<runtime::QueryResult> Run(const std::string& text, size_t workers) {
    auto session = cluster->OpenSession(0);
    if (!session.ok()) return session.status();
    runtime::SubmitOptions submit;
    submit.plan_workers = workers;
    return session->Execute(text, submit);
  }

  static std::vector<std::vector<std::string>> Rows(const runtime::ResultSet& rs) {
    std::vector<std::vector<std::string>> rows;
    for (size_t r = 0; r < rs.num_rows(); ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < rs.num_columns(); ++c) {
        row.push_back(rs.ValueAt(r, c).ToString());
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }

  /// Runs the SQL text and the hand-written MAL plan at `workers` and
  /// compares the exported tables (`ordered` = false compares as multisets,
  /// for plans whose row order is not pinned by an ORDER BY).
  void ExpectSameTable(const std::string& sql, const std::string& mal, size_t workers,
                       bool ordered = true) {
    auto sql_result = Run(sql, workers);
    ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
    auto mal_result = Run(mal, workers);
    ASSERT_TRUE(mal_result.ok()) << mal_result.status().ToString();
    auto got = Rows(sql_result->result);
    auto want = Rows(mal_result->result);
    if (!ordered) {
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
    }
    EXPECT_EQ(got, want) << "workers=" << workers;
  }

  std::unique_ptr<runtime::RingCluster> cluster;
};

constexpr const char* kFilterMal = R"(
function user.d1():void;
    X1 := sql.bind("sys","t","a",0);
    X2 := algebra.thetaselect(X1, 2, ">");
    X3 := bat.mirror(X2);
    X4 := algebra.markT(X3, 0@0);
    X5 := bat.reverse(X4);
    X6 := algebra.leftjoin(X5, X1);
    X7 := sql.resultSet(1, 1, X6);
    sql.rsCol(X7, "sys.t", "a", "lng", 64, 0, X6);
    X8 := io.stdout();
    sql.exportResult(X8, X7);
end d1;
)";

constexpr const char* kJoinMal = R"(
function user.d2():void;
    X1 := sql.bind("sys","t","a",0);
    X2 := sql.bind("sys","u","id",0);
    X3 := sql.bind("sys","u","v",0);
    X4 := bat.reverse(X2);
    X5 := algebra.join(X1, X4);
    X6 := algebra.leftjoin(X5, X3);
    X7 := sql.resultSet(1, 1, X6);
    sql.rsCol(X7, "sys.u", "v", "lng", 64, 0, X6);
    X8 := io.stdout();
    sql.exportResult(X8, X7);
end d2;
)";

TEST_F(SqlDifferential, FilterMatchesHandWrittenMal) {
  for (size_t workers : {size_t{1}, size_t{8}}) {
    ExpectSameTable("select a from t where a > 2", kFilterMal, workers);
  }
}

TEST_F(SqlDifferential, JoinMatchesHandWrittenMal) {
  for (size_t workers : {size_t{1}, size_t{8}}) {
    ExpectSameTable("select u.v from t, u where t.a = u.id", kJoinMal, workers,
                    /*ordered=*/false);
  }
}

TEST_F(SqlDifferential, ScalarSumMatchesMalAggregate) {
  for (size_t workers : {size_t{1}, size_t{8}}) {
    auto sql_result = Run("select sum(a) from t", workers);
    ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
    const runtime::ResultSet& rs = sql_result->result;
    ASSERT_TRUE(rs.has_table());
    ASSERT_EQ(rs.num_rows(), 1u);

    auto mal_result =
        Run("X1 := sql.bind(\"sys\",\"t\",\"a\",0);\nX2 := aggr.sum(X1);\n", workers);
    ASSERT_TRUE(mal_result.ok()) << mal_result.status().ToString();
    const mal::Datum& scalar = mal_result->result.scalar();
    ASSERT_TRUE(std::holds_alternative<int64_t>(scalar));
    EXPECT_DOUBLE_EQ(rs.DoubleAt(0, 0), static_cast<double>(std::get<int64_t>(scalar)));
  }
}

TEST_F(SqlDifferential, GroupByOrderByMatchesExpectedTable) {
  for (size_t workers : {size_t{1}, size_t{8}}) {
    auto result = Run("select s, count(*), sum(a) from t group by s order by s", workers);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const runtime::ResultSet& rs = result->result;
    // a = 1..6, s alternates x,y,x,y,x,y: x -> {1,3,5}, y -> {2,4,6}.
    ASSERT_EQ(rs.num_rows(), 2u) << "workers=" << workers;
    ASSERT_EQ(rs.num_columns(), 3u);
    EXPECT_EQ(rs.StringAt(0, 0), "x");
    EXPECT_EQ(rs.Int64At(0, 1), 3);
    EXPECT_DOUBLE_EQ(rs.DoubleAt(0, 2), 9.0);
    EXPECT_EQ(rs.StringAt(1, 0), "y");
    EXPECT_EQ(rs.Int64At(1, 1), 3);
    EXPECT_DOUBLE_EQ(rs.DoubleAt(1, 2), 12.0);
  }
}

TEST_F(SqlDifferential, AutoDetectionRoutesBothLanguages) {
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());

  auto sql_prepared = session->Prepare("select a from t where a > 2");
  ASSERT_TRUE(sql_prepared.ok()) << sql_prepared.status().ToString();
  EXPECT_EQ((*sql_prepared)->cache_key().rfind("sql-", 0), 0u);

  auto mal_prepared = session->Prepare(kFilterMal);
  ASSERT_TRUE(mal_prepared.ok()) << mal_prepared.status().ToString();
  EXPECT_EQ((*mal_prepared)->cache_key().rfind("mal-", 0), 0u);

  // Same text again: shared-plan-cache hit returns the same object.
  auto again = session->Prepare("select a from t where a > 2");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), sql_prepared.value());
}

TEST_F(SqlDifferential, PrepareSurfacesSqlDiagnostics) {
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  ParseError error;
  runtime::PrepareOptions options;
  options.parse_error = &error;
  auto prepared = session->Prepare("select nosuch from t", options);
  ASSERT_FALSE(prepared.ok());
  EXPECT_TRUE(error.set());
  EXPECT_EQ(error.token, "nosuch");
  EXPECT_NE(error.message.find("unknown column"), std::string::npos);
}

TEST_F(SqlDifferential, ExplicitLanguageOverridesDetection) {
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  runtime::PrepareOptions options;
  options.language = runtime::Language::kMAL;
  // SQL text forced through the MAL parser must fail, not silently reroute.
  EXPECT_FALSE(session->Prepare("select a from t", options).ok());
}

}  // namespace
}  // namespace dcy::sql
