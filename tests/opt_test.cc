// DcOptimizer tests: the headline is the literal reproduction of the
// paper's Table 1 -> Table 2 rewrite.
#include <gtest/gtest.h>

#include "mal/program.h"
#include "opt/dc_optimizer.h"

namespace dcy::opt {
namespace {

using mal::AlphaEquivalent;
using mal::ParseProgram;
using mal::Program;

constexpr const char* kTable1 = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

// The paper's Table 2 — the expected DcOptimizer output, verbatim.
constexpr const char* kTable2 = R"(
function user.s1_2():void;
    X2 := datacyclotron.request("sys","t","id",0);
    X3 := datacyclotron.request("sys","c","t_id",0);
    X6 := datacyclotron.pin(X3);
    X9 := bat.reverse(X6);
    X1 := datacyclotron.pin(X2);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
    datacyclotron.unpin(X6);
    datacyclotron.unpin(X1);
end s1_2;
)";

TEST(DcOptimizerTest, ReproducesPaperTable2) {
  auto input = ParseProgram(kTable1);
  auto expected = ParseProgram(kTable2);
  ASSERT_TRUE(input.ok() && expected.ok());

  auto rewritten = DcOptimize(*input);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  std::string why;
  EXPECT_TRUE(AlphaEquivalent(*expected, *rewritten, &why))
      << "rewritten plan differs from the paper's Table 2: " << why << "\n"
      << rewritten->ToString();
}

TEST(DcOptimizerTest, PinInjectedBeforeFirstUseOnly) {
  auto input = *ParseProgram(R"(
X1 := sql.bind("s","t","a",0);
X2 := bat.reverse(X1);
X3 := algebra.join(X2, X1);
)");
  auto out = *DcOptimize(input);
  // request, pin, reverse, join, unpin.
  ASSERT_EQ(out.instructions.size(), 5u);
  EXPECT_EQ(out.instructions[0].FullName(), "datacyclotron.request");
  EXPECT_EQ(out.instructions[1].FullName(), "datacyclotron.pin");
  EXPECT_EQ(out.instructions[1].ret, "X1");  // pin reuses the bind's variable
  EXPECT_EQ(out.instructions[2].FullName(), "bat.reverse");
  EXPECT_EQ(out.instructions[3].FullName(), "algebra.join");
  EXPECT_EQ(out.instructions[4].FullName(), "datacyclotron.unpin");
  EXPECT_EQ(out.instructions[4].args[0].var, "X1");
}

TEST(DcOptimizerTest, AfterLastUsePlacement) {
  auto input = *ParseProgram(R"(
X1 := sql.bind("s","t","a",0);
X2 := sql.bind("s","t","b",0);
X3 := bat.reverse(X1);
X4 := algebra.join(X3, X2);
X5 := aggr.count(X4);
)");
  DcOptimizerOptions opts;
  opts.unpin_placement = DcOptimizerOptions::UnpinPlacement::kAfterLastUse;
  auto out = *DcOptimize(input, opts);
  // X1's last use is the reverse; its unpin must come right after it and
  // before the join.
  std::vector<std::string> calls;
  for (const auto& ins : out.instructions) calls.push_back(ins.FullName());
  const std::vector<std::string> expected = {
      "datacyclotron.request", "datacyclotron.request",
      "datacyclotron.pin",     "bat.reverse",
      "datacyclotron.unpin",  // X1 released before the join runs
      "datacyclotron.pin",     "algebra.join",
      "datacyclotron.unpin",   "aggr.count",
  };
  EXPECT_EQ(calls, expected) << out.ToString();
}

TEST(DcOptimizerTest, PlanWithoutBindsUnchanged) {
  auto input = *ParseProgram("X1 := io.stdout();");
  auto out = *DcOptimize(input);
  EXPECT_TRUE(AlphaEquivalent(input, out));
}

TEST(DcOptimizerTest, RequestsKeepBindArgumentsAndOrder) {
  auto input = *ParseProgram(R"(
X1 := sql.bind("s1","t1","c1",0);
X2 := sql.bind("s2","t2","c2",1);
X3 := algebra.join(X1, X2);
)");
  auto out = *DcOptimize(input);
  EXPECT_EQ(out.instructions[0].FullName(), "datacyclotron.request");
  EXPECT_EQ(std::get<std::string>(out.instructions[0].args[1].literal), "t1");
  EXPECT_EQ(out.instructions[1].FullName(), "datacyclotron.request");
  EXPECT_EQ(std::get<std::string>(out.instructions[1].args[1].literal), "t2");
  EXPECT_EQ(std::get<int64_t>(out.instructions[1].args[3].literal), 1);
}

TEST(DcOptimizerTest, FreshVariablesDoNotCollide) {
  auto input = *ParseProgram(R"(
X1 := sql.bind("s","t","a",0);
X99 := bat.reverse(X1);
)");
  auto out = *DcOptimize(input);
  // The fresh request variable must be above the plan's max (X99).
  EXPECT_EQ(out.instructions[0].ret, "X100");
}

TEST(DcOptimizerTest, UnusedBindStillRequestedAndUnpinnedNever) {
  auto input = *ParseProgram(R"(
X1 := sql.bind("s","t","a",0);
X2 := io.stdout();
)");
  auto out = *DcOptimize(input);
  // A bind nobody uses: request emitted (prefetch), but no pin/unpin pair.
  int pins = 0, unpins = 0, requests = 0;
  for (const auto& ins : out.instructions) {
    if (ins.FullName() == "datacyclotron.pin") ++pins;
    if (ins.FullName() == "datacyclotron.unpin") ++unpins;
    if (ins.FullName() == "datacyclotron.request") ++requests;
  }
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(pins, 0);
  EXPECT_EQ(unpins, 0);
}

TEST(DcOptimizerTest, IdempotentOnRewrittenPlans) {
  auto input = *ParseProgram(kTable1);
  auto once = *DcOptimize(input);
  auto twice = *DcOptimize(once);
  EXPECT_TRUE(AlphaEquivalent(once, twice));
}

TEST(PlanCacheKeyTest, StableAndDiscriminating) {
  const std::string text = kTable1;
  // Deterministic: same inputs, same key.
  EXPECT_EQ(PlanCacheKey(text, true), PlanCacheKey(text, true));
  // The optimize flag, the optimizer options, and the text all discriminate.
  EXPECT_NE(PlanCacheKey(text, true), PlanCacheKey(text, false));
  DcOptimizerOptions after_last_use;
  after_last_use.unpin_placement = DcOptimizerOptions::UnpinPlacement::kAfterLastUse;
  EXPECT_NE(PlanCacheKey(text, true), PlanCacheKey(text, true, after_last_use));
  EXPECT_NE(PlanCacheKey(text, true), PlanCacheKey(text + " ", true));
}

}  // namespace
}  // namespace dcy::opt
