// Tests of the write subsystem (ISSUE-9): the delta BAT wire frame and its
// decode-fuzz contract, the WriteLog commit/snapshot/fold semantics, the
// fresh-merged-columns regression (IsSorted memoization survives version
// bumps), and end-to-end SQL INSERT/DELETE over a live ring with snapshot
// replay and background compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bat/bat.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"
#include "write/delta.h"
#include "write/write_log.h"

namespace dcy {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::shared_ptr<const std::vector<uint64_t>> Ids(std::vector<uint64_t> v) {
  return std::make_shared<const std::vector<uint64_t>>(std::move(v));
}

// ---------------------------------------------------------------------------
// Delta wire frame.
// ---------------------------------------------------------------------------

write::DeltaBat FuzzTargetDelta() {
  write::DeltaBat d;
  d.fragment = 7;
  d.version = 42;
  d.inserts = bat::MakeLngColumn({10, 20, 30});
  d.insert_row_ids = Ids({5, 6, 9});
  d.deletes = Ids({1, 3});
  return d;
}

TEST(DeltaWire, RoundTripPreservesEveryField) {
  const write::DeltaBat d = FuzzTargetDelta();
  const std::string frame = write::SerializeDelta(d);
  EXPECT_EQ(frame.size(), write::EncodedDeltaSize(d));

  auto decoded = write::DeserializeDelta(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const write::DeltaBat& r = **decoded;
  EXPECT_EQ(r.fragment, 7u);
  EXPECT_EQ(r.version, 42u);
  ASSERT_EQ(r.inserts->size(), 3u);
  EXPECT_EQ(r.inserts->GetInt64(0), 10);
  EXPECT_EQ(r.inserts->GetInt64(2), 30);
  EXPECT_EQ(*r.insert_row_ids, (std::vector<uint64_t>{5, 6, 9}));
  EXPECT_EQ(*r.deletes, (std::vector<uint64_t>{1, 3}));
}

TEST(DeltaWire, DeleteOnlyAndStringDeltasRoundTrip) {
  write::DeltaBat del;
  del.fragment = 3;
  del.version = 9;
  del.inserts = bat::MakeLngColumn({});
  del.insert_row_ids = Ids({});
  del.deletes = Ids({0, 2, 4});
  auto decoded = write::DeserializeDelta(write::SerializeDelta(del));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->inserts->size(), 0u);
  EXPECT_EQ(*(*decoded)->deletes, (std::vector<uint64_t>{0, 2, 4}));

  write::DeltaBat str;
  str.fragment = 11;
  str.version = 4;
  str.inserts = bat::MakeStrColumn({"alpha", "", "a longer string payload"});
  str.insert_row_ids = Ids({100, 101, 102});
  str.deletes = Ids({});
  auto sdec = write::DeserializeDelta(write::SerializeDelta(str));
  ASSERT_TRUE(sdec.ok()) << sdec.status().ToString();
  ASSERT_EQ((*sdec)->inserts->size(), 3u);
  EXPECT_EQ((*sdec)->inserts->GetString(0), "alpha");
  EXPECT_EQ((*sdec)->inserts->GetString(2), "a longer string payload");
}

// Satellite: the wire frame's corruption contract mirrors bat/serialize.h —
// any single-byte flip or truncation decodes to a typed Corruption, never to
// garbage or a crash (ASan-clean by construction of the whole-frame CRC).
TEST(DeltaWire, EveryByteFlipIsCorruption) {
  const std::string frame = write::SerializeDelta(FuzzTargetDelta());
  for (size_t i = 0; i < frame.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80}) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      auto decoded = write::DeserializeDelta(mutated);
      ASSERT_FALSE(decoded.ok()) << "flip at byte " << i << " decoded cleanly";
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << decoded.status().ToString();
    }
  }
}

TEST(DeltaWire, EveryTruncationIsCorruption) {
  const std::string frame = write::SerializeDelta(FuzzTargetDelta());
  for (size_t len = 0; len < frame.size(); ++len) {
    auto decoded = write::DeserializeDelta(std::string_view(frame).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded cleanly";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// WriteLog: commits, snapshots, views, folds.
// ---------------------------------------------------------------------------

class WriteLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = bat::Bat::MakeColumn(bat::MakeLngColumn({1, 2, 3}));
    b_ = bat::Bat::MakeColumn(bat::MakeDblColumn({1.5, 2.5, 3.5}));
    ASSERT_TRUE(log_.RegisterFragment(1, "sys.w", "a", a_).ok());
    ASSERT_TRUE(log_.RegisterFragment(2, "sys.w", "b", b_).ok());
  }

  Result<write::CommitResult> Insert(int64_t av, double bv) {
    return log_.CommitInsert(
        "sys.w", {{"a", {bat::Value::MakeLng(av)}}, {"b", {bat::Value::MakeDbl(bv)}}});
  }

  std::vector<int64_t> ViewA(uint64_t snapshot) {
    auto view = log_.ResolveView(1, a_, snapshot);
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    std::vector<int64_t> out;
    if (!view.ok()) return out;
    for (size_t i = 0; i < (*view)->size(); ++i) {
      out.push_back((*view)->tail()->GetInt64(i));
    }
    return out;
  }

  write::WriteLog log_;
  bat::BatPtr a_, b_;
};

TEST_F(WriteLogTest, RegisterFragmentRejectsRowCountMismatch) {
  write::WriteLog log;
  ASSERT_TRUE(log.RegisterFragment(1, "sys.x", "a",
                                   bat::Bat::MakeColumn(bat::MakeLngColumn({1, 2, 3})))
                  .ok());
  auto bad = log.RegisterFragment(2, "sys.x", "b",
                                  bat::Bat::MakeColumn(bat::MakeLngColumn({1, 2})));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST_F(WriteLogTest, CommitInsertAppendsAndCoerces) {
  // Column order in the statement is free; ints widen into double columns.
  auto cr = log_.CommitInsert(
      "sys.w", {{"b", {bat::Value::MakeLng(4)}}, {"a", {bat::Value::MakeLng(4)}}});
  ASSERT_TRUE(cr.ok()) << cr.status().ToString();
  EXPECT_EQ(cr->version, 1u);
  EXPECT_EQ(cr->rows, 1);
  EXPECT_EQ(cr->published.size(), 2u);  // one delta per column

  EXPECT_EQ(ViewA(1), (std::vector<int64_t>{1, 2, 3, 4}));
  auto vb = log_.ResolveView(2, b_, 1);
  ASSERT_TRUE(vb.ok());
  ASSERT_EQ((*vb)->size(), 4u);
  EXPECT_DOUBLE_EQ((*vb)->tail()->GetDouble(3), 4.0);
  // The pre-commit snapshot still reads the untouched base.
  EXPECT_EQ(ViewA(0), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(WriteLogTest, CommitInsertRejectsBadShapesAndTypes) {
  // Narrowing double -> lng is refused.
  auto narrowing = log_.CommitInsert(
      "sys.w", {{"a", {bat::Value::MakeDbl(1.5)}}, {"b", {bat::Value::MakeDbl(1.5)}}});
  EXPECT_EQ(narrowing.status().code(), StatusCode::kInvalidArgument);
  // Strings never coerce.
  auto strval = log_.CommitInsert(
      "sys.w", {{"a", {bat::Value::MakeStr("x")}}, {"b", {bat::Value::MakeDbl(1.0)}}});
  EXPECT_EQ(strval.status().code(), StatusCode::kInvalidArgument);
  // Missing, duplicate and ragged column lists.
  auto missing = log_.CommitInsert("sys.w", {{"a", {bat::Value::MakeLng(1)}}});
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  auto dup = log_.CommitInsert(
      "sys.w", {{"a", {bat::Value::MakeLng(1)}}, {"a", {bat::Value::MakeLng(2)}}});
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  auto ragged = log_.CommitInsert(
      "sys.w", {{"a", {bat::Value::MakeLng(1), bat::Value::MakeLng(2)}},
                {"b", {bat::Value::MakeDbl(1.0)}}});
  EXPECT_EQ(ragged.status().code(), StatusCode::kInvalidArgument);
  // Nothing committed by any of the failures.
  EXPECT_EQ(log_.CurrentVersion(), 0u);
  EXPECT_EQ(ViewA(0), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(WriteLogTest, DeleteAtResolvesPositionsAgainstTheSnapshotView) {
  // Position 1 in the v0 view [1 2 3] is row id 1 (value 2).
  auto d1 = log_.CommitDeleteAt("sys.w", {1}, 0);
  ASSERT_TRUE(d1.ok()) << d1.status().ToString();
  EXPECT_EQ(d1->rows, 1);
  EXPECT_EQ(ViewA(1), (std::vector<int64_t>{1, 3}));

  // The same position at the same old snapshot maps to the same (already
  // deleted) row: skipped, a no-op commit.
  auto again = log_.CommitDeleteAt("sys.w", {1}, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows, 0);
  EXPECT_TRUE(again->published.empty());

  // At the newer snapshot the view is [1 3]: position 1 now means value 3.
  auto d2 = log_.CommitDeleteAt("sys.w", {1}, 1);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->rows, 1);
  EXPECT_EQ(ViewA(d2->version), (std::vector<int64_t>{1}));

  auto oob = log_.CommitDeleteAt("sys.w", {5}, 0);
  EXPECT_EQ(oob.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WriteLogTest, SnapshotsPinTheVersionReadersSee) {
  auto ahead = log_.AcquireSnapshotAt(log_.CurrentVersion() + 1);
  EXPECT_EQ(ahead.status().code(), StatusCode::kInvalidArgument);

  const uint64_t snap0 = log_.AcquireSnapshot();
  EXPECT_EQ(snap0, 0u);
  ASSERT_TRUE(Insert(4, 4.0).ok());

  // At the pinned old snapshot the untouched base is served by identity --
  // the merge path is never entered.
  auto old_view = log_.ResolveView(1, a_, snap0);
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(old_view->get(), a_.get());
  EXPECT_EQ(ViewA(log_.CurrentVersion()), (std::vector<int64_t>{1, 2, 3, 4}));
  log_.ReleaseSnapshot(snap0);
}

TEST_F(WriteLogTest, FoldIsBoundedByActiveSnapshotsAndRetiresDeltas) {
  const uint64_t snap0 = log_.AcquireSnapshot();
  ASSERT_TRUE(Insert(4, 4.0).ok());

  // The active snapshot at version 0 pins the fold bound: nothing folds.
  auto noop = log_.FoldTable("sys.w", {});
  ASSERT_TRUE(noop.ok()) << noop.status().ToString();
  EXPECT_TRUE(noop->rebased.empty());
  EXPECT_EQ(log_.BaseVersionOf(1), 0u);

  log_.ReleaseSnapshot(snap0);
  auto folded = log_.FoldTable("sys.w", {});
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded->new_version, 1u);
  EXPECT_EQ(folded->deltas_folded, 2u);
  ASSERT_EQ(folded->rebased.size(), 2u);
  EXPECT_EQ(std::get<2>(folded->rebased[0])->size(), 4u);
  EXPECT_EQ(log_.BaseVersionOf(1), 1u);
  EXPECT_EQ(log_.BaseVersionOf(2), 1u);

  // Readers at or past the fold see the new base; a reader that held no
  // snapshot pin across the fold is rejected typed, not served garbage.
  EXPECT_EQ(ViewA(1), (std::vector<int64_t>{1, 2, 3, 4}));
  auto stale = log_.ResolveView(1, a_, 0);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  const auto m = log_.Metrics();
  EXPECT_EQ(m.compactions, 1u);
  EXPECT_EQ(m.deltas_folded, 2u);
  EXPECT_EQ(m.snapshots_rejected, 1u);
  EXPECT_EQ(m.pending_deltas, 0u);
}

TEST_F(WriteLogTest, FoldCommitGuardAbandonsAtomically) {
  ASSERT_TRUE(Insert(4, 4.0).ok());
  auto aborted = log_.FoldTable("sys.w", [] { return false; });
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kAborted);
  EXPECT_EQ(log_.Metrics().compactions_abandoned, 1u);
  // The log is untouched: the delta is still pending and folds later.
  EXPECT_EQ(log_.BaseVersionOf(1), 0u);
  EXPECT_GT(log_.Metrics().pending_deltas, 0u);
  auto folded = log_.FoldTable("sys.w", [] { return true; });
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(folded->new_version, 1u);
  EXPECT_EQ(ViewA(1), (std::vector<int64_t>{1, 2, 3, 4}));
}

// Satellite regression: merged views are built from fresh Column objects, so
// the IsSorted() memoization can never serve a stale answer across a version
// bump, and older views stay frozen.
TEST(WriteLogFreshColumns, MergedViewsNeverReuseMemoizedColumns) {
  write::WriteLog log;
  auto base = bat::Bat::MakeColumn(bat::MakeLngColumn({1, 2, 3}));
  ASSERT_TRUE(log.RegisterFragment(1, "sys.s", "a", base).ok());
  ASSERT_TRUE(base->tail()->IsSorted());
  ASSERT_TRUE(base->tail()->SortednessKnown());

  // Commit a row that breaks sortedness.
  ASSERT_TRUE(log.CommitInsert("sys.s", {{"a", {bat::Value::MakeLng(0)}}}).ok());
  auto view = log.ResolveView(1, base, 1);
  ASSERT_TRUE(view.ok());
  ASSERT_NE(view->get(), base.get());
  ASSERT_NE((*view)->tail().get(), base->tail().get());
  // The fresh column has no inherited memoization and answers correctly.
  EXPECT_FALSE((*view)->tail()->SortednessKnown());
  EXPECT_FALSE((*view)->tail()->IsSorted());
  // The base fragment's memoized answer is untouched.
  EXPECT_TRUE(base->tail()->IsSorted());

  // Re-resolving the same snapshot serves the cached view (same memoized
  // column -- valid, it is the same version)...
  auto view2 = log.ResolveView(1, base, 1);
  ASSERT_TRUE(view2.ok());
  EXPECT_EQ(view2->get(), view->get());
  EXPECT_GE(log.Metrics().merge_cache_hits, 1u);

  // ...but the next version bump yields a fresh column again, leaving the
  // older view frozen.
  ASSERT_TRUE(log.CommitInsert("sys.s", {{"a", {bat::Value::MakeLng(9)}}}).ok());
  auto view3 = log.ResolveView(1, base, 2);
  ASSERT_TRUE(view3.ok());
  EXPECT_NE(view3->get(), view->get());
  EXPECT_NE((*view3)->tail().get(), (*view)->tail().get());
  EXPECT_FALSE((*view3)->tail()->SortednessKnown());
  EXPECT_EQ((*view)->size(), 4u);
  EXPECT_EQ((*view3)->size(), 5u);
}

// ---------------------------------------------------------------------------
// End to end: SQL INSERT/DELETE over a live ring.
// ---------------------------------------------------------------------------

class WriteRing : public ::testing::Test {
 protected:
  static runtime::RingCluster::Options FastOptions() {
    runtime::RingCluster::Options opts;
    opts.num_nodes = 3;
    opts.node.load_all_period = FromMillis(2);
    opts.node.maintenance_period = FromMillis(10);
    opts.node.adapt_period = FromMillis(10);
    opts.node.initial_rotation_estimate = FromMillis(5);
    opts.node.min_resend_timeout = FromMillis(20);
    return opts;
  }

  void StartCluster(runtime::RingCluster::Options opts) {
    cluster = std::make_unique<runtime::RingCluster>(opts);
    Load(0, "sys.u.id", bat::MakeLngColumn({1, 2, 3}));
    Load(1, "sys.u.v", bat::MakeLngColumn({10, 20, 30}));
    cluster->Start();
  }

  void Load(core::NodeId node, const std::string& name, bat::ColumnPtr tail) {
    ASSERT_TRUE(
        cluster->LoadBat(node, name, bat::Bat::MakeColumn(std::move(tail))).ok());
  }

  Result<runtime::QueryResult> Run(const std::string& text,
                                   runtime::SubmitOptions submit = {}) {
    auto session = cluster->OpenSession(0);
    if (!session.ok()) return session.status();
    return session->Execute(text, submit);
  }

  std::multiset<int64_t> SelectV(runtime::SubmitOptions submit = {},
                                 const std::string& sql = "select v from u") {
    std::multiset<int64_t> got;
    auto result = Run(sql, submit);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return got;
    const runtime::ResultSet& rs = result->result;
    for (size_t r = 0; r < rs.num_rows(); ++r) got.insert(rs.Int64At(r, 0));
    return got;
  }

  bool WaitUntil(const std::function<bool()>& pred, milliseconds timeout) {
    const auto deadline = steady_clock::now() + timeout;
    while (steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(milliseconds(5));
    }
    return pred();
  }

  std::unique_ptr<runtime::RingCluster> cluster;
};

TEST_F(WriteRing, InsertIsVisibleToSubsequentReadsAndCirculates) {
  auto opts = FastOptions();
  opts.compaction.enable = false;  // keep the merge path exercised
  StartCluster(opts);

  auto ins = Run("insert into u values (4, 40)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(std::get<int64_t>(ins->result.scalar()), 1);
  EXPECT_EQ(ins->commit_version, 1u);

  EXPECT_EQ(SelectV({}, "select v from u where id = 4"),
            (std::multiset<int64_t>{40}));
  EXPECT_EQ(SelectV(), (std::multiset<int64_t>{10, 20, 30, 40}));

  const auto m = cluster->Writes();
  EXPECT_EQ(m.commits, 1u);
  EXPECT_EQ(m.rows_inserted, 1u);
  EXPECT_EQ(m.deltas_published, 2u);
  EXPECT_GT(m.merges, 0u);
  EXPECT_GT(m.deltas_merged, 0u);

  // The published deltas circulate the ring: the two non-origin nodes each
  // forward them once before the frame returns home.
  EXPECT_TRUE(WaitUntil(
      [&] { return cluster->Writes().delta_frames_forwarded >= 1; },
      milliseconds(3000)));
}

TEST_F(WriteRing, DeleteRemovesMatchingRows) {
  auto opts = FastOptions();
  opts.compaction.enable = false;
  StartCluster(opts);

  auto del = Run("delete from u where id = 2");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(std::get<int64_t>(del->result.scalar()), 1);
  EXPECT_EQ(SelectV(), (std::multiset<int64_t>{10, 30}));
  EXPECT_EQ(cluster->Writes().rows_deleted, 1u);

  // Insert after delete: both deltas apply in version order.
  ASSERT_TRUE(Run("insert into u values (5, 50)").ok());
  EXPECT_EQ(SelectV(), (std::multiset<int64_t>{10, 30, 50}));
}

TEST_F(WriteRing, PinnedSnapshotsReplayThePast) {
  auto opts = FastOptions();
  opts.compaction.enable = false;
  StartCluster(opts);

  const uint64_t snap = cluster->PinWriteSnapshot();
  ASSERT_TRUE(Run("insert into u values (4, 40)").ok());

  runtime::SubmitOptions at_snap;
  at_snap.snapshot_version = snap;
  auto past = Run("select v from u", at_snap);
  ASSERT_TRUE(past.ok()) << past.status().ToString();
  EXPECT_EQ(past->snapshot_version, snap);
  EXPECT_EQ(past->result.num_rows(), 3u);

  EXPECT_EQ(SelectV(), (std::multiset<int64_t>{10, 20, 30, 40}));
  cluster->UnpinWriteSnapshot(snap);

  // A snapshot ahead of the current version is refused at submit.
  runtime::SubmitOptions ahead;
  ahead.snapshot_version = cluster->CurrentWriteVersion() + 5;
  auto bad = Run("select v from u", ahead);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WriteRing, BackgroundCompactionFoldsAndReadsStayCorrect) {
  auto opts = FastOptions();
  opts.compaction.max_delta_count = 1;  // fold after every commit
  opts.compaction.interval = FromMillis(5);
  StartCluster(opts);

  ASSERT_TRUE(Run("insert into u values (4, 40)").ok());
  ASSERT_TRUE(Run("insert into u values (5, 50)").ok());
  ASSERT_TRUE(Run("delete from u where id = 1").ok());

  ASSERT_TRUE(WaitUntil(
      [&] {
        const auto m = cluster->Writes();
        return m.compactions >= 1 && m.pending_deltas == 0;
      },
      milliseconds(10000)))
      << "compactor never folded the pending deltas";

  EXPECT_EQ(SelectV(), (std::multiset<int64_t>{20, 30, 40, 50}));
  const auto m = cluster->Writes();
  EXPECT_GT(m.deltas_published, 0u);
  EXPECT_GT(m.deltas_folded, 0u);

  bool found = false;
  for (const auto& info : cluster->TableVersions()) {
    if (info.table != "sys.u") continue;
    found = true;
    EXPECT_GE(info.base_version, 1u);
    EXPECT_EQ(info.pending_deltas, 0u);
  }
  EXPECT_TRUE(found);

  // Writes after a fold start a new delta generation.
  ASSERT_TRUE(Run("insert into u values (6, 60)").ok());
  EXPECT_EQ(SelectV(), (std::multiset<int64_t>{20, 30, 40, 50, 60}));
}

TEST_F(WriteRing, WritesToUnknownTablesFailAtPrepare) {
  StartCluster(FastOptions());
  auto bad = Run("insert into nosuch values (1)");
  EXPECT_FALSE(bad.ok());
  auto bad_col = Run("delete from u where nosuch = 1");
  EXPECT_FALSE(bad_col.ok());
}

}  // namespace
}  // namespace dcy
