// Protocol unit tests for DcNode against a scripted environment: every
// outcome of Request Propagation (Fig. 3), BAT Propagation (Fig. 4),
// hot-set management (Fig. 5), loadAll(), resend(), and lost-BAT recovery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dc_node.h"

namespace dcy::core {
namespace {

/// Scripted DcEnv recording every action the protocol takes.
class FakeEnv : public DcEnv {
 public:
  SimTime Now() override { return now; }
  void SendRequestMsg(const RequestMsg& msg) override { requests.push_back(msg); }
  void SendBatMsg(const BatHeader& header, bool is_load) override {
    bats.emplace_back(header, is_load);
    queue_load += header.bat_size;  // sending occupies the local BAT queue
  }
  void DeliverToQuery(QueryId query, BatId bat) override {
    deliveries.emplace_back(query, bat);
  }
  void FailQuery(QueryId query, BatId bat) override { failures.emplace_back(query, bat); }
  uint64_t BatQueueLoadBytes() override { return queue_load; }
  uint64_t BatQueueCapacityBytes() override { return queue_capacity; }

  SimTime now = 0;
  uint64_t queue_load = 0;
  uint64_t queue_capacity = 1000;
  std::vector<RequestMsg> requests;
  std::vector<std::pair<BatHeader, bool>> bats;
  std::vector<std::pair<QueryId, BatId>> deliveries;
  std::vector<std::pair<QueryId, BatId>> failures;
};

class DcNodeTest : public ::testing::Test {
 protected:
  DcNodeTest() { Recreate(DcNodeOptions{}); }

  void Recreate(DcNodeOptions opts) {
    opts.node_id = 3;
    opts.ring_size = 10;
    loit_ = std::make_unique<StaticLoit>(loit_value_);
    node_ = std::make_unique<DcNode>(opts, &env_, loit_.get());
  }

  void SetLoit(double v) {
    loit_value_ = v;
    Recreate(DcNodeOptions{});
  }

  BatHeader MakeHeader(BatId bat, NodeId owner, uint64_t size = 100) {
    BatHeader h;
    h.owner = owner;
    h.bat_id = bat;
    h.bat_size = size;
    return h;
  }

  FakeEnv env_;
  double loit_value_ = 0.5;
  std::unique_ptr<StaticLoit> loit_;
  std::unique_ptr<DcNode> node_;
};

// ---- request() / pin() / unpin() (§4.1-§4.2.1) ----------------------------

TEST_F(DcNodeTest, RequestForRemoteBatDispatchesOnce) {
  node_->Request(1, 42);
  ASSERT_EQ(env_.requests.size(), 1u);
  EXPECT_EQ(env_.requests[0].origin, 3u);
  EXPECT_EQ(env_.requests[0].bat_id, 42u);

  node_->Request(2, 42);  // second query joins the same entry
  EXPECT_EQ(env_.requests.size(), 1u);
  EXPECT_EQ(node_->requests().Find(42)->queries.size(), 2u);
}

TEST_F(DcNodeTest, RequestForOwnedBatStaysLocal) {
  node_->AddOwnedBat(7, 100);
  node_->Request(1, 7);
  EXPECT_TRUE(env_.requests.empty());
  EXPECT_FALSE(node_->requests().Contains(7));
  EXPECT_TRUE(node_->Pin(1, 7));  // served from disk/local memory
}

TEST_F(DcNodeTest, PinBlocksUntilBatPasses) {
  node_->Request(1, 42);
  EXPECT_FALSE(node_->Pin(1, 42));
  EXPECT_TRUE(node_->pins().HasBlocked(42));
  EXPECT_EQ(node_->metrics().pins_blocked, 1u);

  env_.now = 500;
  node_->OnBatMsg(MakeHeader(42, /*owner=*/0));
  ASSERT_EQ(env_.deliveries.size(), 1u);
  EXPECT_EQ(env_.deliveries[0], (std::pair<QueryId, BatId>{1, 42}));
  EXPECT_FALSE(node_->pins().HasBlocked(42));
}

TEST_F(DcNodeTest, PinHitsCacheWhileAnotherQueryHoldsIt) {
  node_->Request(1, 42);
  node_->Pin(1, 42);
  node_->OnBatMsg(MakeHeader(42, 0));  // delivers to query 1, caches the BAT

  node_->Request(2, 42);
  EXPECT_TRUE(node_->Pin(2, 42));  // cache hit: no blocking
  EXPECT_EQ(node_->metrics().pins_local_hit, 1u);

  node_->Unpin(1, 42);
  node_->Unpin(2, 42);
  EXPECT_FALSE(node_->cache().Contains(42));  // last unpin frees the region
}

TEST_F(DcNodeTest, PinWithoutRequestIsTolerated) {
  EXPECT_FALSE(node_->Pin(1, 42));
  EXPECT_EQ(env_.requests.size(), 1u);  // implicit request dispatched
  EXPECT_TRUE(node_->pins().HasBlocked(42));
}

TEST_F(DcNodeTest, UnpinOfBlockedQueryCleansState) {
  node_->Request(1, 42);
  node_->Pin(1, 42);
  node_->Unpin(1, 42);  // aborting query
  EXPECT_FALSE(node_->pins().HasBlocked(42));
  // Entry is retired by the next BAT pass or maintenance GC.
  node_->OnMaintenanceTimer();
  EXPECT_FALSE(node_->requests().Contains(42));
}

// ---- Request Propagation (Fig. 3) -----------------------------------------

TEST_F(DcNodeTest, Outcome1_ReturnedToOriginFailsQueries) {
  node_->Request(1, 42);
  node_->Pin(1, 42);
  node_->OnRequestMsg(RequestMsg{3, 42});  // back at origin (we are node 3)
  ASSERT_EQ(env_.failures.size(), 1u);
  EXPECT_EQ(env_.failures[0], (std::pair<QueryId, BatId>{1, 42}));
  EXPECT_FALSE(node_->requests().Contains(42));
  EXPECT_FALSE(node_->pins().HasBlocked(42));
  EXPECT_EQ(node_->metrics().requests_returned_origin, 1u);
}

TEST_F(DcNodeTest, Outcome2_OwnerIgnoresRequestForHotBat) {
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});  // loads it (outcome 4)
  ASSERT_EQ(env_.bats.size(), 1u);
  node_->OnRequestMsg(RequestMsg{6, 7});  // already hot: ignored
  EXPECT_EQ(env_.bats.size(), 1u);
  EXPECT_TRUE(env_.requests.empty());  // not forwarded either
}

TEST_F(DcNodeTest, Outcome3_FullRingTagsPending) {
  node_->AddOwnedBat(7, 100);
  env_.queue_load = 950;  // 950 + 100 > 1000
  env_.now = 123;
  node_->OnRequestMsg(RequestMsg{5, 7});
  EXPECT_TRUE(env_.bats.empty());
  const OwnedBat* ob = node_->owned().Find(7);
  EXPECT_EQ(ob->state, OwnedState::kPending);
  EXPECT_EQ(ob->pending_since, 123);
  EXPECT_EQ(node_->metrics().bats_pending_tagged, 1u);
  // A second request while pending does not retag (pending_since kept).
  env_.now = 456;
  node_->OnRequestMsg(RequestMsg{6, 7});
  EXPECT_EQ(node_->owned().Find(7)->pending_since, 123);
  EXPECT_EQ(node_->metrics().bats_pending_tagged, 1u);
}

TEST_F(DcNodeTest, Outcome4_OwnerLoadsWhenRingHasRoom) {
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});
  ASSERT_EQ(env_.bats.size(), 1u);
  const auto& [header, is_load] = env_.bats[0];
  EXPECT_TRUE(is_load);
  EXPECT_EQ(header.owner, 3u);
  EXPECT_EQ(header.bat_id, 7u);
  EXPECT_EQ(header.bat_size, 100u);
  EXPECT_EQ(header.loi, 0.0);
  EXPECT_EQ(header.cycles, 0u);
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kHot);
  EXPECT_EQ(node_->owned().Find(7)->loads, 1u);
}

TEST_F(DcNodeTest, Outcome5_DuplicateRequestAbsorbed) {
  node_->Request(1, 42);  // we already want BAT 42
  env_.requests.clear();
  node_->OnRequestMsg(RequestMsg{8, 42});  // someone else's request arrives
  EXPECT_TRUE(env_.requests.empty());      // absorbed: not forwarded
  EXPECT_EQ(node_->metrics().requests_absorbed, 1u);
}

TEST_F(DcNodeTest, Outcome5_DisabledByAblationSwitch) {
  DcNodeOptions opts;
  opts.combine_requests = false;
  Recreate(opts);
  node_->Request(1, 42);
  env_.requests.clear();
  node_->OnRequestMsg(RequestMsg{8, 42});
  ASSERT_EQ(env_.requests.size(), 1u);  // forwarded despite local interest
  EXPECT_EQ(env_.requests[0].origin, 8u);
}

TEST_F(DcNodeTest, Outcome6_UnrelatedRequestForwarded) {
  node_->OnRequestMsg(RequestMsg{8, 99});
  ASSERT_EQ(env_.requests.size(), 1u);
  EXPECT_EQ(env_.requests[0].origin, 8u);  // origin preserved
  EXPECT_EQ(env_.requests[0].bat_id, 99u);
  EXPECT_EQ(node_->metrics().request_msgs_forwarded, 1u);
}

// ---- BAT Propagation (Fig. 4) ----------------------------------------------

TEST_F(DcNodeTest, PropagationIncrementsHops) {
  node_->OnBatMsg(MakeHeader(42, 0));
  ASSERT_EQ(env_.bats.size(), 1u);
  EXPECT_EQ(env_.bats[0].first.hops, 1u);
  EXPECT_EQ(env_.bats[0].first.copies, 0u);  // nobody here wanted it
  EXPECT_FALSE(env_.bats[0].second);
}

TEST_F(DcNodeTest, PropagationIncrementsCopiesOnlyWithPinCalls) {
  node_->Request(1, 42);  // interest but no pin yet
  node_->OnBatMsg(MakeHeader(42, 0));
  EXPECT_EQ(env_.bats[0].first.copies, 0u);  // Fig. 4: needs pin calls
  EXPECT_TRUE(env_.deliveries.empty());

  node_->Request(2, 43);
  node_->Pin(2, 43);  // blocked pin
  node_->OnBatMsg(MakeHeader(43, 0));
  EXPECT_EQ(env_.bats[1].first.copies, 1u);
  EXPECT_EQ(env_.deliveries.size(), 1u);
}

TEST_F(DcNodeTest, HeldPinsCountAsCopiesUntilUnpin) {
  // A pin lives in S3 from pin() to unpin() (§4.2.1): while a query holds
  // the BAT, each pass renews the node's interest.
  node_->Request(1, 42);
  node_->Pin(1, 42);
  node_->OnBatMsg(MakeHeader(42, 0));  // delivers; query 1 now holds it
  EXPECT_EQ(env_.bats[0].first.copies, 1u);

  node_->OnBatMsg(MakeHeader(42, 0));  // still held: counts again
  EXPECT_EQ(env_.bats[1].first.copies, 1u);

  node_->Unpin(1, 42);
  node_->OnBatMsg(MakeHeader(42, 0));  // released: no interest anymore
  EXPECT_EQ(env_.bats[2].first.copies, 0u);
}

TEST_F(DcNodeTest, EntryRetiredOnlyWhenAllQueriesPinned) {
  node_->Request(1, 42);
  node_->Request(2, 42);
  node_->Pin(1, 42);  // query 2 has not pinned yet
  node_->OnBatMsg(MakeHeader(42, 0));
  // Query 1 got data; query 2 still outstanding => entry must survive
  // ("A request is only removed if all its queries pinned it", §5.3).
  EXPECT_TRUE(node_->requests().Contains(42));

  EXPECT_TRUE(node_->Pin(2, 42));  // cache hit (query 1 still holds it)
  node_->OnBatMsg(MakeHeader(42, 0));
  EXPECT_FALSE(node_->requests().Contains(42));  // now everyone is served
}

TEST_F(DcNodeTest, MarksRequestSentWhenBatPasses) {
  node_->Request(1, 42);
  node_->requests().Find(42);
  node_->OnBatMsg(MakeHeader(42, 0));
  EXPECT_TRUE(node_->requests().Find(42)->sent);
}

// ---- Hot-set management (Fig. 5) -------------------------------------------

TEST_F(DcNodeTest, OwnerUnloadsBelowThreshold) {
  SetLoit(0.5);
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});  // load
  env_.bats.clear();

  // The BAT returns having interested 2 of 9 nodes: newLOI = 0/1 + 2/9 < 0.5.
  BatHeader h = MakeHeader(7, 3);
  h.copies = 2;
  h.hops = 9;
  h.cycles = 0;
  env_.now = 1000;
  node_->OnBatMsg(h);
  EXPECT_TRUE(env_.bats.empty());  // not forwarded
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kCold);
  EXPECT_EQ(node_->metrics().bats_unloaded, 1u);
}

TEST_F(DcNodeTest, OwnerForwardsAboveThresholdWithResetCounters) {
  SetLoit(0.5);
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});
  env_.bats.clear();

  BatHeader h = MakeHeader(7, 3);
  h.copies = 9;
  h.hops = 9;
  h.cycles = 0;
  node_->OnBatMsg(h);
  ASSERT_EQ(env_.bats.size(), 1u);
  const BatHeader& fwd = env_.bats[0].first;
  EXPECT_DOUBLE_EQ(fwd.loi, 1.0);  // 0/1 + 9/9
  EXPECT_EQ(fwd.copies, 0u);       // reset each cycle
  EXPECT_EQ(fwd.hops, 0u);
  EXPECT_EQ(fwd.cycles, 1u);
  EXPECT_EQ(node_->owned().Find(7)->cycles, 1u);
  EXPECT_EQ(node_->metrics().cycles_completed, 1u);
}

TEST_F(DcNodeTest, AgedUnusedBatEventuallyDropped) {
  SetLoit(0.1);
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});
  env_.bats.clear();

  // Popular first cycle, then unused: LOI decays below 0.1 within a few
  // cycles even at the lowest threshold.
  BatHeader h = MakeHeader(7, 3);
  h.copies = 9;
  h.hops = 9;
  int cycles_survived = 0;
  for (int i = 0; i < 10; ++i) {
    env_.bats.clear();
    node_->OnBatMsg(h);
    if (env_.bats.empty()) break;  // unloaded
    ++cycles_survived;
    h = env_.bats[0].first;
    h.hops = 9;
    h.copies = 0;  // no further interest
  }
  EXPECT_GE(cycles_survived, 1);
  EXPECT_LE(cycles_survived, 5);
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kCold);
}

TEST_F(DcNodeTest, DeletedBatIsSwallowedByOwner) {
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});
  env_.bats.clear();
  node_->RemoveOwnedBat(7);
  node_->OnBatMsg(MakeHeader(7, 3));
  EXPECT_TRUE(env_.bats.empty());  // swallowed, not forwarded
}

// ---- loadAll() (§4.2.3) -----------------------------------------------------

TEST_F(DcNodeTest, LoadAllLoadsOldestFirstAndSkipsNonFitting) {
  node_->AddOwnedBat(1, 400);
  node_->AddOwnedBat(2, 700);
  node_->AddOwnedBat(3, 300);
  env_.queue_load = 1000;  // force pending
  env_.now = 10;
  node_->OnRequestMsg(RequestMsg{5, 2});  // big, oldest
  env_.now = 20;
  node_->OnRequestMsg(RequestMsg{5, 1});
  env_.now = 30;
  node_->OnRequestMsg(RequestMsg{5, 3});

  // Room opens up, but only 800 bytes: BAT 2 (700) fits; then BAT 1 no
  // longer fits behind it; BAT 3 does not fit either.
  env_.queue_load = 200;
  env_.bats.clear();
  node_->OnLoadAllTimer();
  ASSERT_EQ(env_.bats.size(), 1u);
  EXPECT_EQ(env_.bats[0].first.bat_id, 2u);
  EXPECT_EQ(node_->owned().Find(1)->state, OwnedState::kPending);
  EXPECT_EQ(node_->owned().Find(3)->state, OwnedState::kPending);
  EXPECT_EQ(node_->metrics().pending_loads, 1u);
}

TEST_F(DcNodeTest, LoadAllSkipsBigAndLoadsSmall) {
  node_->AddOwnedBat(1, 900);
  node_->AddOwnedBat(2, 100);
  env_.queue_load = 1000;
  env_.now = 10;
  node_->OnRequestMsg(RequestMsg{5, 1});  // oldest: big
  env_.now = 20;
  node_->OnRequestMsg(RequestMsg{5, 2});

  env_.queue_load = 850;  // only 150 free: the small one fits
  env_.bats.clear();
  node_->OnLoadAllTimer();
  ASSERT_EQ(env_.bats.size(), 1u);
  EXPECT_EQ(env_.bats[0].first.bat_id, 2u);  // skipped the non-fitting head
}

TEST_F(DcNodeTest, LoadAllFifoAblationBlocksBehindHead) {
  DcNodeOptions opts;
  opts.pending_fit_check = false;
  Recreate(opts);
  node_->AddOwnedBat(1, 900);
  node_->AddOwnedBat(2, 100);
  env_.queue_load = 1000;
  env_.now = 10;
  node_->OnRequestMsg(RequestMsg{5, 1});
  env_.now = 20;
  node_->OnRequestMsg(RequestMsg{5, 2});

  env_.queue_load = 850;
  env_.bats.clear();
  node_->OnLoadAllTimer();
  EXPECT_TRUE(env_.bats.empty());  // strict FIFO: head does not fit, stop
}

// ---- resend() and lost-BAT recovery (§4.2.3) --------------------------------

TEST_F(DcNodeTest, ResendAfterTimeout) {
  node_->Request(1, 42);
  node_->Pin(1, 42);
  EXPECT_EQ(env_.requests.size(), 1u);

  env_.now = FromMillis(100);
  node_->OnMaintenanceTimer();  // too early
  EXPECT_EQ(env_.requests.size(), 1u);

  env_.now = FromSeconds(10);
  node_->OnMaintenanceTimer();
  EXPECT_EQ(env_.requests.size(), 2u);  // re-sent
  EXPECT_EQ(node_->metrics().resends, 1u);
}

TEST_F(DcNodeTest, ResendSkipsRecentlySeenOrDispatchedEntries) {
  node_->Request(1, 42);  // dispatched at t=0
  env_.now = FromMillis(100);
  node_->OnBatMsg(MakeHeader(42, 0));  // passes (query 1 not pinned yet)
  ASSERT_TRUE(node_->requests().Contains(42));

  // Seen 100 ms ago, dispatched 1 s ago: not overdue.
  env_.now = FromSeconds(1);
  node_->OnMaintenanceTimer();
  EXPECT_EQ(env_.requests.size(), 1u);

  // Much later the entry is still unserved (the owner may have unloaded the
  // BAT): the resend must fire even though no pin is blocked, otherwise a
  // stale absorbing entry could starve downstream requesters.
  env_.now = FromSeconds(10);
  node_->OnMaintenanceTimer();
  EXPECT_EQ(env_.requests.size(), 2u);
}

TEST_F(DcNodeTest, StaleAbsorbingEntryRedispatchesOwnRequest) {
  node_->Request(1, 42);
  ASSERT_EQ(env_.requests.size(), 1u);
  node_->OnBatMsg(MakeHeader(42, 0));  // our request was served; not in flight

  // A foreign request arrives; our entry absorbs it, but because our own
  // request is no longer live we must re-signal the owner ourselves.
  node_->OnRequestMsg(RequestMsg{8, 42});
  ASSERT_EQ(env_.requests.size(), 2u);
  EXPECT_EQ(env_.requests[1].origin, 3u);  // our own request, not a forward
  EXPECT_EQ(node_->metrics().requests_absorbed, 1u);

  // While it is in flight, further duplicates are absorbed silently.
  node_->OnRequestMsg(RequestMsg{9, 42});
  EXPECT_EQ(env_.requests.size(), 2u);
  EXPECT_EQ(node_->metrics().requests_absorbed, 2u);
}

TEST_F(DcNodeTest, BlockedPinOnStaleEntryRequestsImmediately) {
  node_->Request(1, 42);
  node_->Request(2, 42);
  node_->Pin(1, 42);
  env_.now = FromMillis(100);
  node_->OnBatMsg(MakeHeader(42, 0));  // serves query 1; entry stays for 2
  node_->Unpin(1, 42);                 // cache emptied
  ASSERT_TRUE(node_->requests().Contains(42));
  ASSERT_EQ(env_.requests.size(), 1u);

  // Query 2 pins long after the last sighting: the BAT is probably gone
  // from the ring; pin() re-requests without waiting for the resend timer.
  env_.now = FromSeconds(30);
  EXPECT_FALSE(node_->Pin(2, 42));
  EXPECT_EQ(env_.requests.size(), 2u);
}

TEST_F(DcNodeTest, ResendDisabledByOption) {
  DcNodeOptions opts;
  opts.enable_resend = false;
  Recreate(opts);
  node_->Request(1, 42);
  node_->Pin(1, 42);
  env_.now = FromSeconds(60);
  node_->OnMaintenanceTimer();
  EXPECT_EQ(env_.requests.size(), 1u);
}

TEST_F(DcNodeTest, OwnerPresumesHotBatLostAfterTimeout) {
  node_->AddOwnedBat(7, 100);
  node_->OnRequestMsg(RequestMsg{5, 7});
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kHot);

  env_.now = FromSeconds(60);
  node_->OnMaintenanceTimer();
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kCold);
  EXPECT_EQ(node_->metrics().bats_presumed_lost, 1u);

  // If it shows up after all, the owner re-adopts it; hot-set management
  // then keeps it because it still carries interest.
  BatHeader back = MakeHeader(7, 3);
  back.copies = 9;
  back.hops = 9;
  node_->OnBatMsg(back);
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kHot);

  // A re-adopted BAT returning with no interest is immediately cooled down.
  env_.now = FromSeconds(120);
  node_->OnMaintenanceTimer();
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kCold);
  BatHeader stale = MakeHeader(7, 3);
  stale.cycles = 1;
  node_->OnBatMsg(stale);  // copies 0 / hops 0 -> LOI below threshold
  EXPECT_EQ(node_->owned().Find(7)->state, OwnedState::kCold);
}

TEST_F(DcNodeTest, MaintenanceGarbageCollectsServedEntries) {
  node_->Request(1, 42);
  node_->Pin(1, 42);
  node_->OnBatMsg(MakeHeader(42, 0));
  // Entry retired during the pass itself (all queries pinned).
  EXPECT_FALSE(node_->requests().Contains(42));

  // Entry whose only query got data via cache is GC'ed by maintenance.
  node_->Request(2, 42);
  node_->Pin(2, 42);  // cache hit: delivered without a pass
  EXPECT_TRUE(node_->requests().Contains(42));
  node_->OnMaintenanceTimer();
  EXPECT_FALSE(node_->requests().Contains(42));
}

// ---- LOIT adaptation --------------------------------------------------------

TEST(DcNodeAdaptTest, FeedsQueueFractionToPolicy) {
  FakeEnv env;
  env.queue_capacity = 1000;
  AdaptiveLoit loit(AdaptiveLoit::Options{});
  DcNodeOptions opts;
  opts.node_id = 0;
  opts.ring_size = 4;
  DcNode node(opts, &env, &loit);

  env.queue_load = 900;  // 90% > 80% watermark
  node.OnAdaptTimer();
  EXPECT_DOUBLE_EQ(node.loit(), 0.6);
  node.OnAdaptTimer();
  EXPECT_DOUBLE_EQ(node.loit(), 1.1);
  env.queue_load = 100;  // 10% < 40% watermark
  node.OnAdaptTimer();
  node.OnAdaptTimer();
  EXPECT_DOUBLE_EQ(node.loit(), 0.1);
}

}  // namespace
}  // namespace dcy::core
