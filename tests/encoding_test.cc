// Tests of the wire-compression layer (bat/encoding.h + the v2 frame format
// in bat/serialize.cc): bit-pack round trips at every width, dictionary and
// FOR codec round trips across types and shapes, v1 backward compatibility,
// SIMD-vs-scalar differential checks of every encoding-aware kernel, codec
// accounting, and the same byte-flip / truncation decode fuzz the v1 format
// passes (every mutation must fail typed as Corruption, never crash).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bat/encoding.h"
#include "bat/kernels.h"
#include "bat/operators.h"
#include "bat/serialize.h"
#include "common/random.h"

namespace dcy::bat {
namespace {

// ---- bit packing -------------------------------------------------------------

TEST(BitPackTest, RoundTripsEveryWidth) {
  Rng rng(42);
  for (unsigned bits = 0; bits <= enc::kMaxPackBits; ++bits) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64}, size_t{257}}) {
      const uint64_t mask = (uint64_t{1} << bits) - 1;  // bits <= 57
      std::vector<uint64_t> vals(n);
      for (auto& v : vals) v = rng.UniformU64(0, ~uint64_t{0} >> 1) & mask;
      std::vector<uint8_t> packed(enc::PackedBytes(n, bits) + 8);  // +slack
      enc::PackBits(n, bits, packed.data(), [&](size_t i) { return vals[i]; });
      for (bool force : {false, true}) {
        enc::ScopedForceScalar scoped(force);
        std::vector<uint64_t> out(n);
        ASSERT_TRUE(enc::UnpackBits64(packed.data(), packed.size(), n, bits,
                                      /*ref=*/1000, out.data()))
            << "bits=" << bits << " n=" << n;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], vals[i] + 1000)
              << "bits=" << bits << " n=" << n << " i=" << i
              << " force_scalar=" << force;
        }
        if (bits <= 32) {
          std::vector<uint32_t> out32(n);
          ASSERT_TRUE(enc::UnpackBits32(packed.data(), packed.size(), n, bits,
                                        out32.data()));
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(out32[i], static_cast<uint32_t>(vals[i]))
                << "bits=" << bits << " i=" << i << " force_scalar=" << force;
          }
        }
      }
    }
  }
}

TEST(BitPackTest, RejectsShortBuffersAndWideValues) {
  std::vector<uint8_t> packed(enc::PackedBytes(10, 13));
  enc::PackBits(10, 13, packed.data(), [](size_t i) { return uint64_t{i}; });
  std::vector<uint64_t> out(10);
  EXPECT_FALSE(enc::UnpackBits64(packed.data(), packed.size() - 1, 10, 13, 0,
                                 out.data()));
  EXPECT_FALSE(enc::UnpackBits64(packed.data(), packed.size(), 10,
                                 enc::kMaxPackBits + 1, 0, out.data()));
  std::vector<uint32_t> out32(10);
  EXPECT_FALSE(enc::UnpackBits32(packed.data(), packed.size(), 10, 33,
                                 out32.data()));
  EXPECT_TRUE(enc::UnpackBits64(packed.data(), packed.size(), 10, 13, 0,
                                out.data()));
}

// ---- SIMD kernels vs scalar --------------------------------------------------

/// Runs `fn` under both dispatch modes and asserts identical selection
/// vectors. fn appends to the vector it is handed.
template <typename Fn>
void ExpectSameSelection(Fn fn, const std::string& ctx) {
  std::vector<uint32_t> simd, scalar;
  {
    enc::ScopedForceScalar off(false);
    fn(&simd);
  }
  {
    enc::ScopedForceScalar on(true);
    fn(&scalar);
  }
  ASSERT_EQ(simd, scalar) << ctx;
}

TEST(SimdKernelTest, SelectionsMatchScalarAcrossSpansAndKeys) {
  Rng rng(7);
  // Sizes straddle the 8-lane (epi32) and 4-lane (epi64) vector widths.
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                   size_t{31}, size_t{100}, size_t{1000}}) {
    std::vector<uint32_t> u32(n);
    std::vector<int32_t> i32(n);
    std::vector<int64_t> i64(n);
    std::vector<double> f64(n);
    for (size_t i = 0; i < n; ++i) {
      u32[i] = static_cast<uint32_t>(rng.UniformU64(0, 16));
      i32[i] = static_cast<int32_t>(rng.UniformInt(-16, 16));
      i64[i] = rng.UniformInt(-16, 16) * 1000000007LL;
      f64[i] = static_cast<double>(rng.UniformInt(-8, 8)) / 2.0;
    }
    if (n >= 2) f64[1] = std::numeric_limits<double>::quiet_NaN();
    // Unaligned spans: begin offsets that are not multiples of a vector.
    for (size_t begin : {size_t{0}, std::min(n, size_t{3})}) {
      const std::string ctx = "n=" + std::to_string(n) + " begin=" + std::to_string(begin);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) { enc::SelectEqU32(u32.data(), begin, n, 5, s); },
          "equ32 " + ctx);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) {
            enc::SelectRangeU32(u32.data(), begin, n, 3, 9, s);
          },
          "rangeu32 " + ctx);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) { enc::SelectEqI32(i32.data(), begin, n, -5, s); },
          "eqi32 " + ctx);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) {
            enc::SelectRangeI32(i32.data(), begin, n, -9, 3, s);
          },
          "rangei32 " + ctx);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) {
            enc::SelectEqI64(i64.data(), begin, n, 5 * 1000000007LL, s);
          },
          "eqi64 " + ctx);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) {
            enc::SelectRangeI64(i64.data(), begin, n, -3 * 1000000007LL,
                                9 * 1000000007LL, s);
          },
          "rangei64 " + ctx);
      // Doubles, including the NaN planted above: NaN never matches eq or
      // range, under either dispatch.
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) { enc::SelectEqF64(f64.data(), begin, n, 1.5, s); },
          "eqf64 " + ctx);
      ExpectSameSelection(
          [&](std::vector<uint32_t>* s) {
            enc::SelectRangeF64(f64.data(), begin, n, -2.5, 2.5, s);
          },
          "rangef64 " + ctx);
    }
  }
}

TEST(SimdKernelTest, GatherMatchesScalar) {
  Rng rng(11);
  for (size_t n : {size_t{1}, size_t{8}, size_t{100}, size_t{4097}}) {
    std::vector<uint32_t> src(n);
    for (auto& v : src) v = static_cast<uint32_t>(rng.UniformU64(0, 1u << 30));
    std::vector<uint32_t> idx(n + 3);
    for (auto& v : idx) v = static_cast<uint32_t>(rng.UniformU64(0, n - 1));
    std::vector<uint32_t> simd(idx.size()), scalar(idx.size());
    {
      enc::ScopedForceScalar off(false);
      enc::GatherU32(src.data(), idx.data(), idx.size(), simd.data());
    }
    {
      enc::ScopedForceScalar on(true);
      enc::GatherU32(src.data(), idx.data(), idx.size(), scalar.data());
    }
    ASSERT_EQ(simd, scalar) << "n=" << n;
  }
}

// ---- codec round trips -------------------------------------------------------

void ExpectSameRows(const BatPtr& got, const BatPtr& want, const std::string& ctx) {
  ASSERT_EQ(got->size(), want->size()) << ctx;
  ASSERT_EQ(got->tail_type(), want->tail_type()) << ctx;
  for (size_t i = 0; i < want->size(); ++i) {
    ASSERT_TRUE(got->head()->GetValue(i) == want->head()->GetValue(i)) << ctx << " row " << i;
    ASSERT_TRUE(got->tail()->GetValue(i) == want->tail()->GetValue(i)) << ctx << " row " << i;
  }
}

BatPtr LowCardStrings(size_t n, uint64_t seed, size_t cardinality = 16) {
  Rng rng(seed);
  ColumnBuilder b(ValType::kStr);
  for (size_t i = 0; i < n; ++i) {
    b.AppendString("value-" + std::to_string(rng.UniformU64(0, cardinality - 1)));
  }
  return Bat::MakeColumn(b.Finish());
}

BatPtr SortedInts(ValType t, size_t n, uint64_t seed) {
  Rng rng(seed);
  ColumnBuilder b(t);
  int64_t acc = t == ValType::kOid ? 1000 : -500;
  for (size_t i = 0; i < n; ++i) {
    acc += rng.UniformInt(0, 9);
    b.AppendInt64(acc);
  }
  return Bat::MakeColumn(b.Finish());
}

TEST(CodecRoundTripTest, DictionaryColumnsRoundTripAndShrink) {
  enc::ScopedWireCompression on(true);
  auto b = LowCardStrings(500, 1);
  const FrameEncoder fe(*b);
  EXPECT_EQ(fe.stats().dict_columns, 1u);
  // The acceptance bar: a low-cardinality string fragment shrinks by an
  // integer factor, not a few percent.
  EXPECT_LE(fe.stats().wire_bytes * 2, fe.stats().raw_bytes);
  const std::string frame = Serialize(*b);
  EXPECT_EQ(frame.size(), fe.stats().wire_bytes);
  auto restored = Deserialize(frame);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->tail()->kind(), ColumnKind::kDict);
  ExpectSameRows(*restored, b, "dict roundtrip");
  // The decoded dictionary column re-serializes borrowing its dict verbatim.
  auto again = Deserialize(Serialize(**restored));
  ASSERT_TRUE(again.ok());
  ExpectSameRows(*again, b, "dict re-roundtrip");
}

TEST(CodecRoundTripTest, ForColumnsRoundTripAndShrink) {
  enc::ScopedWireCompression on(true);
  for (ValType t : {ValType::kOid, ValType::kInt, ValType::kLng, ValType::kDate}) {
    auto b = SortedInts(t, 500, 2 + static_cast<uint64_t>(t));
    ASSERT_TRUE(b->tail()->IsSorted());  // memoizes: the FOR trigger
    const FrameEncoder fe(*b);
    EXPECT_EQ(fe.stats().for_columns, 1u) << ValTypeName(t);
    EXPECT_LE(fe.stats().wire_bytes * 2, fe.stats().raw_bytes) << ValTypeName(t);
    auto restored = Deserialize(Serialize(*b));
    ASSERT_TRUE(restored.ok()) << ValTypeName(t) << ": " << restored.status().ToString();
    ExpectSameRows(*restored, b, std::string("for roundtrip ") + ValTypeName(t));
    // Satellite: the sender's memoized sortedness crosses the wire, so the
    // receiver's IsSorted() is free (and true) without a rescan.
    EXPECT_TRUE((*restored)->tail()->IsSorted()) << ValTypeName(t);
  }
}

TEST(CodecRoundTripTest, UnsortedColumnsStayPlain) {
  enc::ScopedWireCompression on(true);
  Rng rng(3);
  std::vector<int64_t> v(300);
  for (auto& x : v) x = static_cast<int64_t>(rng.UniformU64(0, ~uint64_t{0} >> 1));
  auto b = Bat::MakeColumn(MakeLngColumn(std::move(v)));
  const FrameEncoder fe(*b);
  EXPECT_EQ(fe.stats().for_columns, 0u);
  EXPECT_EQ(fe.stats().dict_columns, 0u);
  // Incompressible data pays at most the per-column encoding byte.
  EXPECT_LE(fe.stats().wire_bytes, fe.stats().raw_bytes + 2);
  auto restored = Deserialize(Serialize(*b));
  ASSERT_TRUE(restored.ok());
  ExpectSameRows(*restored, b, "plain roundtrip");
}

TEST(CodecRoundTripTest, HighCardinalityStringsStayPlain) {
  enc::ScopedWireCompression on(true);
  ColumnBuilder sb(ValType::kStr);
  for (size_t i = 0; i < 300; ++i) sb.AppendString("unique-" + std::to_string(i));
  auto b = Bat::MakeColumn(sb.Finish());
  const FrameEncoder fe(*b);
  EXPECT_EQ(fe.stats().dict_columns, 0u);
  auto restored = Deserialize(Serialize(*b));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->tail()->kind(), ColumnKind::kStr);
  ExpectSameRows(*restored, b, "high-card roundtrip");
}

TEST(CodecRoundTripTest, DenseHeadsAndAllTypesRoundTrip) {
  enc::ScopedWireCompression on(true);
  Rng rng(4);
  for (ValType t : {ValType::kOid, ValType::kInt, ValType::kLng, ValType::kDbl,
                    ValType::kStr, ValType::kDate}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{257}}) {
      ColumnBuilder b(t);
      for (size_t i = 0; i < n; ++i) {
        switch (t) {
          case ValType::kOid: b.AppendInt64(static_cast<int64_t>(rng.UniformU64(0, 1u << 20))); break;
          case ValType::kDbl: b.AppendDouble(static_cast<double>(rng.UniformInt(-50, 50)) / 4.0); break;
          case ValType::kStr: b.AppendString("s" + std::to_string(rng.UniformU64(0, 8))); break;
          default: b.AppendInt64(rng.UniformInt(-1000, 1000)); break;
        }
      }
      auto bat = Bat::MakeColumn(b.Finish());
      auto restored = Deserialize(Serialize(*bat));
      ASSERT_TRUE(restored.ok())
          << ValTypeName(t) << " n=" << n << ": " << restored.status().ToString();
      ExpectSameRows(*restored, bat,
                     std::string(ValTypeName(t)) + " n=" + std::to_string(n));
      EXPECT_EQ((*restored)->head()->kind(), ColumnKind::kDense);
    }
  }
}

TEST(CodecRoundTripTest, V1FramesStillDecodeAndDictColumnsDowngrade) {
  // A frame produced with compression off is the v1 layout; it must decode
  // with compression on (receivers never assume the sender's setting).
  auto b = LowCardStrings(200, 5);
  std::string v1_frame;
  {
    enc::ScopedWireCompression off(false);
    v1_frame = Serialize(*b);
  }
  enc::ScopedWireCompression on(true);
  auto restored = Deserialize(v1_frame);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->tail()->kind(), ColumnKind::kStr);
  ExpectSameRows(*restored, b, "v1 decode");
  // And an in-memory dictionary column serialized with compression OFF must
  // re-materialize the plain v1 string body (old receivers know no codecs).
  auto dict_bat = Deserialize(Serialize(*b));
  ASSERT_TRUE(dict_bat.ok());
  ASSERT_EQ((*dict_bat)->tail()->kind(), ColumnKind::kDict);
  std::string downgraded;
  {
    enc::ScopedWireCompression off(false);
    downgraded = Serialize(**dict_bat);
  }
  EXPECT_EQ(downgraded, v1_frame);
}

TEST(CodecRoundTripTest, EncoderPlansOnceForSizeAndBytes) {
  enc::ScopedWireCompression on(true);
  auto b = LowCardStrings(300, 6);
  const FrameEncoder fe(*b);
  std::string out;
  fe.SerializeInto(&out);
  EXPECT_EQ(out.size(), fe.encoded_size());
  EXPECT_EQ(out, Serialize(*b));  // free functions plan identically
}

TEST(SortednessSeedTest, FirstWriterWins) {
  auto c = MakeLngColumn({5, 1, 9});  // actually unsorted
  c->SeedSortedness(true);
  EXPECT_TRUE(c->IsSorted());  // seeded answer, no rescan
  c->SeedSortedness(false);    // loses: already seeded
  EXPECT_TRUE(c->IsSorted());
  auto d = MakeLngColumn({1, 2, 3});
  EXPECT_TRUE(d->IsSorted());   // scanned + memoized
  d->SeedSortedness(false);     // loses: cache already holds the scan result
  EXPECT_TRUE(d->IsSorted());
}

// ---- operators on ring-delivered dictionary columns --------------------------

TEST(DictOperatorTest, GroupIdAndJoinRunOnCodes) {
  enc::ScopedWireCompression on(true);
  auto plain = LowCardStrings(400, 7, /*cardinality=*/8);
  auto encoded = Deserialize(Serialize(*plain));
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ((*encoded)->tail()->kind(), ColumnKind::kDict);

  // GroupId must issue identical first-appearance gids from codes.
  auto want = GroupId(plain);
  auto got = GroupId(*encoded);
  ASSERT_TRUE(want.ok() && got.ok());
  ExpectSameRows(*got, *want, "dict groupid");

  // Same-dictionary join: probe codes resolve without any binary search.
  auto r = Reverse(*encoded);
  auto got_join = Join(*encoded, r);
  auto want_join = Join(plain, Reverse(plain));
  ASSERT_TRUE(got_join.ok() && want_join.ok());
  ExpectSameRows(*got_join, *want_join, "same-dict join");

  // Cross-dictionary join (independent frames -> distinct dict objects).
  auto other = Deserialize(Serialize(*LowCardStrings(150, 8, 8)));
  ASSERT_TRUE(other.ok());
  auto got_x = Join(*encoded, Reverse(*other));
  auto want_x = Join(plain, Reverse(*other));
  ASSERT_TRUE(got_x.ok() && want_x.ok());
  ExpectSameRows(*got_x, *want_x, "cross-dict join");
}

// ---- decode fuzz on encoded frames -------------------------------------------

std::vector<std::pair<std::string, std::string>> EncodedFuzzFrames() {
  enc::ScopedWireCompression on(true);
  std::vector<std::pair<std::string, std::string>> frames;
  frames.emplace_back("dict", Serialize(*LowCardStrings(64, 9)));
  frames.emplace_back("for", Serialize(*SortedInts(ValType::kLng, 64, 10)));
  frames.emplace_back("for-int", Serialize(*SortedInts(ValType::kInt, 64, 11)));
  return frames;
}

TEST(EncodedDecodeFuzzTest, EveryByteFlipIsCorruption) {
  for (const auto& [name, frame] : EncodedFuzzFrames()) {
    ASSERT_TRUE(Deserialize(frame).ok()) << name;
    for (size_t i = 0; i < frame.size(); ++i) {
      for (unsigned char mask : {0x01, 0x80, 0x10}) {
        std::string mutated = frame;
        mutated[i] = static_cast<char>(mutated[i] ^ mask);
        auto decoded = Deserialize(mutated);
        ASSERT_FALSE(decoded.ok())
            << name << ": flip at byte " << i << " mask " << int(mask)
            << " decoded cleanly";
        EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
            << name << ": " << decoded.status().ToString();
      }
    }
  }
}

TEST(EncodedDecodeFuzzTest, EveryTruncationIsCorruption) {
  for (const auto& [name, frame] : EncodedFuzzFrames()) {
    for (size_t len = 0; len < frame.size(); ++len) {
      auto decoded = Deserialize(std::string_view(frame).substr(0, len));
      ASSERT_FALSE(decoded.ok()) << name << ": prefix of " << len << " bytes";
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

}  // namespace
}  // namespace dcy::bat
