// End-to-end tests of the session-based query API (ISSUE-4): prepared plans
// shared through the cluster plan cache, asynchronous Submit with
// Wait/TryWait/deadline/Cancel, typed ResultSet access, per-node FIFO
// admission control with backpressure, and the ExecuteMal compatibility
// wrapper's parity with the legacy behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bat/operators.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"

namespace dcy::runtime {
namespace {

using std::chrono::milliseconds;

constexpr const char* kTable1Plan = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

constexpr const char* kSumPlan = R"(
X1 := sql.bind("sys","t","id",0);
X2 := aggr.sum(X1);
)";

RingCluster::Options FastOptions(uint32_t nodes = 3) {
  RingCluster::Options opts;
  opts.num_nodes = nodes;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  opts.node.min_resend_timeout = FromMillis(20);
  return opts;
}

class SessionApi : public ::testing::Test {
 protected:
  void SetUpCluster(RingCluster::Options opts) {
    cluster = std::make_unique<RingCluster>(opts);
    ASSERT_TRUE(cluster
                    ->LoadBat(1 % opts.num_nodes, "sys.t.id",
                              bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4})))
                    .ok());
    ASSERT_TRUE(cluster
                    ->LoadBat(2 % opts.num_nodes, "sys.c.t_id",
                              bat::Bat::MakeColumn(bat::MakeIntColumn({2, 3, 3, 5})))
                    .ok());
    cluster->Start();
  }

  /// A cluster whose owner may never load anything into the ring
  /// (admission headroom 0): every remote pin blocks forever, which is the
  /// deterministic stage for Cancel() / deadline tests.
  void SetUpStuckCluster() {
    auto opts = FastOptions();
    opts.node.load_admission_headroom = 0.0;
    SetUpCluster(opts);
  }

  std::unique_ptr<RingCluster> cluster;
};

// ---------------------------------------------------------------------------
// Typed results.
// ---------------------------------------------------------------------------

TEST_F(SessionApi, TypedResultSetExposesNamedTypedColumns) {
  SetUpCluster(FastOptions());
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  auto result = session->Execute(kTable1Plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const ResultSet& rs = result->result;
  ASSERT_TRUE(rs.has_table());
  ASSERT_EQ(rs.num_columns(), 1u);
  EXPECT_EQ(rs.column(0).table, "sys.c");
  EXPECT_EQ(rs.column(0).name, "t_id");
  EXPECT_EQ(rs.column(0).decl_type, "int");
  EXPECT_EQ(rs.column(0).type, bat::ValType::kInt);
  EXPECT_EQ(rs.FindColumn("t_id"), 0);
  EXPECT_EQ(rs.FindColumn("sys.c.t_id"), 0);
  EXPECT_EQ(rs.FindColumn("nope"), -1);

  ASSERT_EQ(rs.num_rows(), 3u);
  std::multiset<int64_t> got;
  for (size_t r = 0; r < rs.num_rows(); ++r) got.insert(rs.Int64At(r, 0));
  EXPECT_EQ(got, (std::multiset<int64_t>{2, 3, 3}));

  // Span access over the fixed-width payload.
  auto span = rs.FixedValues<int32_t>(0);
  ASSERT_EQ(span.size, 3u);

  // The text rendering carries the legacy printed format.
  EXPECT_NE(rs.ToText().find("sys.c.t_id"), std::string::npos);
}

TEST_F(SessionApi, ScalarPlansReturnScalarAndNoTable) {
  SetUpCluster(FastOptions());
  auto session = cluster->OpenSession(1);
  ASSERT_TRUE(session.ok());
  auto result = session->Execute(kSumPlan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->result.has_table());
  EXPECT_EQ(std::get<int64_t>(result->result.scalar()), 10);
  EXPECT_EQ(result->result.ToText(), "");
}

// ---------------------------------------------------------------------------
// Prepared plans + plan cache.
// ---------------------------------------------------------------------------

TEST_F(SessionApi, PreparedPlanCompilesExactlyOnce) {
  SetUpCluster(FastOptions());
  auto s0 = *cluster->OpenSession(0);
  auto s1 = *cluster->OpenSession(1);

  auto prepared = s0.Prepare(kTable1Plan);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(cluster->plan_cache_stats().misses, 1u);

  // N executions across two sessions: zero further compilations.
  constexpr int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(s0.Execute(*prepared).ok());
    ASSERT_TRUE(s1.Execute(*prepared).ok());
  }
  EXPECT_EQ(cluster->plan_cache_stats().misses, 1u);

  // Re-preparing the same text is a cache hit sharing the same plan.
  auto again = s1.Prepare(kTable1Plan);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), prepared->get());
  const auto stats = cluster->plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // An uncached Prepare compiles afresh without touching the cache counters.
  auto uncached = cluster->Prepare(kTable1Plan, /*optimize=*/true, /*use_cache=*/false);
  ASSERT_TRUE(uncached.ok());
  EXPECT_NE(uncached->get(), prepared->get());
  EXPECT_EQ(cluster->plan_cache_stats().misses, 1u);
}

TEST_F(SessionApi, PlanCacheEvictsOldestBeyondCapacity) {
  auto opts = FastOptions();
  opts.plan_cache_capacity = 2;
  SetUpCluster(opts);
  // Three distinct texts: the first insertion is evicted at the third.
  ASSERT_TRUE(cluster->Prepare("X1 := io.stdout();").ok());
  ASSERT_TRUE(cluster->Prepare("X2 := io.stdout();").ok());
  ASSERT_TRUE(cluster->Prepare("X3 := io.stdout();").ok());
  auto stats = cluster->plan_cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.misses, 3u);
  // The evicted text recompiles; the resident ones still hit.
  ASSERT_TRUE(cluster->Prepare("X1 := io.stdout();").ok());
  EXPECT_EQ(cluster->plan_cache_stats().misses, 4u);
  ASSERT_TRUE(cluster->Prepare("X3 := io.stdout();").ok());
  EXPECT_EQ(cluster->plan_cache_stats().hits, 1u);
}

TEST_F(SessionApi, ParameterBindingPerSubmission) {
  SetUpCluster(FastOptions());
  auto session = *cluster->OpenSession(1);
  auto prepared = session.Prepare(R"(
X1 := sql.bind("sys","t","id",0);
X2 := algebra.select(X1, LO, HI);
X3 := aggr.count(X2);
)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  SubmitOptions narrow;
  narrow.params["LO"] = mal::Datum(int64_t{2});
  narrow.params["HI"] = mal::Datum(int64_t{3});
  auto r1 = session.Execute(*prepared, narrow);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(std::get<int64_t>(r1->result.scalar()), 2);  // ids 2,3

  SubmitOptions wide;
  wide.params["LO"] = mal::Datum(int64_t{1});
  wide.params["HI"] = mal::Datum(int64_t{4});
  auto r2 = session.Execute(*prepared, wide);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(std::get<int64_t>(r2->result.scalar()), 4);

  // One compile served both parameterizations.
  EXPECT_EQ(cluster->plan_cache_stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Async submission.
// ---------------------------------------------------------------------------

TEST_F(SessionApi, SubmitIsAsynchronousAndWaitable) {
  SetUpCluster(FastOptions());
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  auto handle = session.Submit(prepared);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(handle->valid());
  EXPECT_GT(handle->query_id(), 0u);

  // TryWait polls; Wait blocks until terminal.
  Result<QueryResult> polled = Status(StatusCode::kUnknown, "");
  while (!handle->TryWait(&polled)) std::this_thread::yield();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  auto waited = handle->Wait();
  ASSERT_TRUE(waited.ok());
  EXPECT_EQ(waited->query_id, polled->query_id);
  EXPECT_GT(waited->timing.wall_seconds, 0.0);
  EXPECT_GT(waited->timing.exec_seconds, 0.0);
  EXPECT_GE(waited->timing.wall_seconds,
            waited->timing.exec_seconds + waited->timing.queued_seconds - 1e-6);
}

TEST_F(SessionApi, PinBlockedTimeIsReportedSeparately) {
  SetUpCluster(FastOptions());
  auto session = *cluster->OpenSession(0);
  // Both fragments are remote to node 0: the first execution must block in
  // pin at least once, and that wait must be visible in the timing split.
  auto result = session.Execute(kTable1Plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->timing.pin_blocked_seconds, 0.0);
  EXPECT_GT(result->timing.exec_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST_F(SessionApi, BurstDegradesToQueuingBoundedByAdmissionCap) {
  auto opts = FastOptions();
  opts.admission.max_concurrent = 2;
  SetUpCluster(opts);
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  // A burst of 4xC submissions from many threads.
  constexpr int kBurst = 8;
  std::vector<QueryHandle> handles(kBurst);
  std::vector<std::thread> submitters;
  std::atomic<int> failures{0};
  for (int i = 0; i < kBurst; ++i) {
    submitters.emplace_back([&, i] {
      auto h = session.Submit(prepared);
      if (h.ok()) {
        handles[i] = *h;
      } else {
        ++failures;
      }
    });
  }
  for (auto& t : submitters) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (auto& h : handles) ASSERT_TRUE(h.Wait().ok());

  const auto metrics = cluster->NodeAdmissionMetrics(0);
  EXPECT_EQ(metrics.submitted, static_cast<uint64_t>(kBurst));
  EXPECT_EQ(metrics.admitted, static_cast<uint64_t>(kBurst));
  EXPECT_EQ(metrics.completed, static_cast<uint64_t>(kBurst));
  EXPECT_LE(metrics.peak_running, 2u);  // never more than C in flight
  EXPECT_EQ(metrics.running, 0u);
  EXPECT_EQ(metrics.queued, 0u);
  EXPECT_EQ(metrics.rejected, 0u);
}

TEST_F(SessionApi, AdmissionIsFifoPerNode) {
  auto opts = FastOptions();
  opts.admission.max_concurrent = 1;
  SetUpCluster(opts);
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  constexpr int kQueries = 6;
  std::vector<QueryHandle> handles;
  for (int i = 0; i < kQueries; ++i) {
    auto h = session.Submit(prepared);
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  uint64_t last_seq = 0;
  for (int i = 0; i < kQueries; ++i) {
    auto r = handles[i].Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (i > 0) {
      EXPECT_GT(r->admitted_seq, last_seq) << "FIFO order violated at " << i;
    }
    last_seq = r->admitted_seq;
  }
}

TEST_F(SessionApi, FullQueueAppliesBackpressure) {
  auto opts = FastOptions();
  opts.node.load_admission_headroom = 0.0;  // pins block forever
  opts.admission.max_concurrent = 1;
  opts.admission.max_queued = 2;
  SetUpCluster(opts);
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  // First query occupies the single slot (blocked in pin), two more fill
  // the queue; everything beyond bounces with ResourceExhausted.
  auto running = session.Submit(prepared);
  ASSERT_TRUE(running.ok());
  // Wait until it actually occupies the execution slot.
  while (cluster->NodeAdmissionMetrics(0).running == 0) std::this_thread::yield();

  std::vector<QueryHandle> queued;
  for (int i = 0; i < 2; ++i) {
    auto h = session.Submit(prepared);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    queued.push_back(*h);
  }
  auto rejected = session.Submit(prepared);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_GE(cluster->NodeAdmissionMetrics(0).rejected, 1u);
  EXPECT_EQ(cluster->NodeAdmissionMetrics(0).peak_queued, 2u);

  // Unwind: cancel everything and let the cluster drain.
  running->Cancel();
  for (auto& h : queued) h.Cancel();
  EXPECT_TRUE(running->Wait().status().code() == StatusCode::kAborted);
  for (auto& h : queued) {
    EXPECT_EQ(h.Wait().status().code(), StatusCode::kAborted);
  }
}

// ---------------------------------------------------------------------------
// Cancellation + deadlines.
// ---------------------------------------------------------------------------

TEST_F(SessionApi, CancelUnblocksAPinnedSessionWithoutLeakingRequests) {
  SetUpStuckCluster();
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  auto handle = session.Submit(prepared);
  ASSERT_TRUE(handle.ok());
  // Let the query reach its blocked pin: the S2 request entries appear.
  while (cluster->OutstandingRequestEntries(0) < 2) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_FALSE(handle->TryWait());  // genuinely stuck

  handle->Cancel();
  Result<QueryResult> out = Status(StatusCode::kUnknown, "");
  ASSERT_TRUE(handle->WaitFor(std::chrono::seconds(10), &out))
      << "Cancel() must unblock a session stuck in datacyclotron.pin";
  EXPECT_EQ(out.status().code(), StatusCode::kAborted);

  // The cancelled query's fragment requests retire (maintenance GC):
  // nothing may keep requesting the fragments on its behalf.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster->OutstandingRequestEntries(0) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "cancelled query leaked S2 request entries";
    std::this_thread::sleep_for(milliseconds(5));
  }

  // Cancel is idempotent and terminal.
  handle->Cancel();
  EXPECT_EQ(handle->Wait().status().code(), StatusCode::kAborted);
}

TEST_F(SessionApi, DeadlineExpiresABlockedQuery) {
  SetUpStuckCluster();
  auto session = *cluster->OpenSession(0);
  SubmitOptions opts;
  opts.timeout = milliseconds(100);
  auto handle = session.Submit(*session.Prepare(kTable1Plan), opts);
  ASSERT_TRUE(handle.ok());
  auto result = handle->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimedOut()) << result.status().ToString();
}

TEST_F(SessionApi, DeadlineExpiresWhileStillQueued) {
  auto opts = FastOptions();
  opts.node.load_admission_headroom = 0.0;
  opts.admission.max_concurrent = 1;
  SetUpCluster(opts);
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  auto blocker = session.Submit(prepared);  // occupies the slot forever
  ASSERT_TRUE(blocker.ok());
  while (cluster->NodeAdmissionMetrics(0).running == 0) std::this_thread::yield();

  SubmitOptions timed;
  timed.timeout = milliseconds(50);
  auto doomed = session.Submit(prepared, timed);
  ASSERT_TRUE(doomed.ok());
  auto result = doomed->Wait();
  EXPECT_TRUE(result.status().IsTimedOut()) << result.status().ToString();
  EXPECT_GE(cluster->NodeAdmissionMetrics(0).timed_out_queued, 1u);

  (*blocker).Cancel();
  EXPECT_EQ(blocker->Wait().status().code(), StatusCode::kAborted);
}

TEST_F(SessionApi, CancelBeforeExecutionStartsCountsAsQueuedCancel) {
  auto opts = FastOptions();
  opts.node.load_admission_headroom = 0.0;
  opts.admission.max_concurrent = 1;
  SetUpCluster(opts);
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);

  auto blocker = session.Submit(prepared);
  ASSERT_TRUE(blocker.ok());
  while (cluster->NodeAdmissionMetrics(0).running == 0) std::this_thread::yield();
  auto queued = session.Submit(prepared);
  ASSERT_TRUE(queued.ok());

  queued->Cancel();
  EXPECT_EQ(queued->Wait().status().code(), StatusCode::kAborted);
  EXPECT_GE(cluster->NodeAdmissionMetrics(0).cancelled_queued, 1u);
  blocker->Cancel();
  EXPECT_EQ(blocker->Wait().status().code(), StatusCode::kAborted);
}

// ---------------------------------------------------------------------------
// Legacy wrapper + LoadBat validation.
// ---------------------------------------------------------------------------

TEST_F(SessionApi, ExecuteMalWrapperMatchesSessionPath) {
  SetUpCluster(FastOptions());

  auto legacy = cluster->ExecuteMal(0, kTable1Plan, /*optimize=*/true);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  auto session = *cluster->OpenSession(0);
  auto modern = session.Execute(kTable1Plan);
  ASSERT_TRUE(modern.ok()) << modern.status().ToString();

  // The wrapper's printed text is exactly the typed result's rendering.
  EXPECT_EQ(legacy->printed, modern->result.ToText());
  EXPECT_NE(legacy->printed.find("sys.c.t_id"), std::string::npos);
  EXPECT_GT(legacy->wall_seconds, 0.0);

  // Scalar plans keep returning the raw Datum through the wrapper.
  auto sum = cluster->ExecuteMal(1, kSumPlan);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(std::get<int64_t>(sum->result), 10);

  // Unoptimized local execution still works through the wrapper.
  auto unopt = cluster->ExecuteMal(1, kSumPlan, /*optimize=*/false);
  ASSERT_TRUE(unopt.ok());
  EXPECT_EQ(std::get<int64_t>(unopt->result), 10);

  // Error surfaces are preserved.
  EXPECT_TRUE(cluster->ExecuteMal(9, kSumPlan).status().IsInvalidArgument());
  EXPECT_TRUE(cluster
                  ->ExecuteMal(0, R"(
X1 := sql.bind("sys","ghost","col",0);
X2 := aggr.count(X1);
)")
                  .status()
                  .IsNotFound());
}

TEST_F(SessionApi, LoadBatValidatesQualifiedNamesAndDuplicates) {
  auto opts = FastOptions();
  cluster = std::make_unique<RingCluster>(opts);
  auto bat = [] { return bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3})); };

  // Malformed qualified names are rejected up front.
  for (const char* bad : {"plain", "two.parts", "a.b.c.d", ".b.c", "a..c", "a.b."}) {
    auto status = cluster->LoadBat(0, bad, bat());
    EXPECT_TRUE(status.IsInvalidArgument()) << bad << ": " << status.ToString();
  }
  EXPECT_TRUE(cluster->LoadBat(0, "sys.t.id", nullptr).IsInvalidArgument());

  // A valid registration succeeds once; duplicates are rejected (even on a
  // different owner) without clobbering the original directory entry.
  ASSERT_TRUE(cluster->LoadBat(0, "sys.t.id", bat()).ok());
  EXPECT_EQ(cluster->LoadBat(0, "sys.t.id", bat()).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cluster->LoadBat(1, "sys.t.id", bat()).code(), StatusCode::kAlreadyExists);

  ASSERT_TRUE(cluster->LoadBat(1, "sys.c.t_id", bat()).ok());
  cluster->Start();
  auto outcome = cluster->ExecuteMal(1, kSumPlan);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(std::get<int64_t>(outcome->result), 6);
}

TEST_F(SessionApi, SubmitRequiresARunningCluster) {
  auto opts = FastOptions();
  cluster = std::make_unique<RingCluster>(opts);
  ASSERT_TRUE(cluster->LoadBat(1, "sys.t.id",
                               bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4})))
                  .ok());
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());  // sessions may be opened early...
  auto prepared = session->Prepare(kSumPlan);
  ASSERT_TRUE(prepared.ok());  // ...and plans prepared early,
  auto handle = session->Submit(*prepared);
  ASSERT_FALSE(handle.ok());  // ...but submission needs a started cluster.
  EXPECT_EQ(handle.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cluster->OpenSession(7).ok());
}

TEST_F(SessionApi, StopFailsInFlightQueriesCleanly) {
  SetUpStuckCluster();
  auto session = *cluster->OpenSession(0);
  auto prepared = *session.Prepare(kTable1Plan);
  auto stuck = session.Submit(prepared);
  ASSERT_TRUE(stuck.ok());
  while (cluster->NodeAdmissionMetrics(0).running == 0) std::this_thread::yield();
  auto queued = session.Submit(prepared);
  ASSERT_TRUE(queued.ok());

  cluster->Stop();
  EXPECT_EQ(stuck->Wait().status().code(), StatusCode::kAborted);
  EXPECT_EQ(queued->Wait().status().code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace dcy::runtime
