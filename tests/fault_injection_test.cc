// Unit tests of the fault-tolerance building blocks (ISSUE-7):
//   - rdma::FaultInjector: deterministic seeded schedules, rule windows,
//     firing budgets, link matching.
//   - rdma::Channel under injected faults: drop, duplicate, delay, corrupt.
//   - net::ReliableSender / ReliableReceiver: sequencing, cumulative ACK,
//     NACK-triggered go-back-N retransmission, backoff, epoch resets.
//   - bat decode fuzz: every single-byte flip and every truncation of a
//     serialized BAT frame must surface Status::Corruption — never crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bat/bat.h"
#include "bat/column.h"
#include "bat/serialize.h"
#include "net/reliable.h"
#include "rdma/channel.h"
#include "rdma/fault.h"

namespace dcy {
namespace {

using rdma::FaultDecision;
using rdma::FaultInjector;
using rdma::FaultLink;

// ---------------------------------------------------------------------------
// FaultInjector: determinism and rule matching.
// ---------------------------------------------------------------------------

std::vector<FaultDecision> Draw(FaultInjector* inj, uint32_t src, uint32_t dst,
                                uint32_t channel, int n) {
  std::vector<FaultDecision> out;
  for (int i = 0; i < n; ++i) out.push_back(inj->Decide(src, dst, channel));
  return out;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(42), b(42);
  for (FaultInjector* inj : {&a, &b}) {
    inj->AddRule(FaultInjector::Drop({0, 1, rdma::kFaultChannelData}, 0.3));
    inj->AddRule(FaultInjector::Corrupt({0, 1, rdma::kFaultChannelData}, 0.2));
  }
  const auto da = Draw(&a, 0, 1, rdma::kFaultChannelData, 200);
  const auto db = Draw(&b, 0, 1, rdma::kFaultChannelData, 200);
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(da[i].drop, db[i].drop);
    EXPECT_EQ(da[i].corrupt, db[i].corrupt);
    EXPECT_EQ(da[i].corrupt_seed, db[i].corrupt_seed);
    if (!da[i].clean()) ++fired;
  }
  // A 30% + 20% schedule over 200 frames fires essentially always.
  EXPECT_GT(fired, 20);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(1), b(2);
  a.AddRule(FaultInjector::Drop({0, 1, 0}, 0.5));
  b.AddRule(FaultInjector::Drop({0, 1, 0}, 0.5));
  const auto da = Draw(&a, 0, 1, 0, 256);
  const auto db = Draw(&b, 0, 1, 0, 256);
  int differs = 0;
  for (int i = 0; i < 256; ++i) differs += da[i].drop != db[i].drop;
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, LinksHaveIndependentStreams) {
  // The same rule on two links must not fire in lockstep: each link draws
  // from its own SplitMix64(seed ^ key) stream.
  FaultInjector inj(7);
  inj.AddRule(FaultInjector::Drop({rdma::kAnyEndpoint, rdma::kAnyEndpoint, 0}, 0.5));
  const auto a = Draw(&inj, 0, 1, 0, 256);
  const auto b = Draw(&inj, 1, 2, 0, 256);
  int differs = 0;
  for (int i = 0; i < 256; ++i) differs += a[i].drop != b[i].drop;
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, RuleMatchesOnlyItsLink) {
  FaultInjector inj(3);
  inj.AddRule(FaultInjector::Drop({0, 1, rdma::kFaultChannelData}, 1.0));
  EXPECT_TRUE(inj.Decide(0, 1, rdma::kFaultChannelData).drop);
  EXPECT_FALSE(inj.Decide(1, 0, rdma::kFaultChannelData).drop);   // reverse direction
  EXPECT_FALSE(inj.Decide(0, 1, rdma::kFaultChannelCtrl).drop);   // other channel
  EXPECT_FALSE(inj.Decide(0, 2, rdma::kFaultChannelData).drop);   // other dst
}

TEST(FaultInjectorTest, PartitionWindowIsHalfOpen) {
  FaultInjector inj(5);
  inj.AddRule(FaultInjector::Partition({0, 1, 0}, 2, 5));
  std::vector<bool> dropped;
  for (int i = 0; i < 8; ++i) dropped.push_back(inj.Decide(0, 1, 0).drop);
  EXPECT_EQ(dropped, (std::vector<bool>{false, false, true, true, true, false, false,
                                        false}));
  EXPECT_EQ(inj.FramesSeen(0, 1, 0), 8u);
}

TEST(FaultInjectorTest, MaxCountBudgetsTheRule) {
  FaultInjector inj(5);
  auto rule = FaultInjector::Drop({0, 1, 0}, 1.0);
  rule.max_count = 3;
  inj.AddRule(rule);
  int fired = 0;
  for (int i = 0; i < 50; ++i) fired += inj.Decide(0, 1, 0).drop;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.counters().dropped.load(), 3u);
}

TEST(FaultInjectorTest, DropDominatesStackedRules) {
  FaultInjector inj(9);
  inj.AddRule(FaultInjector::Drop({0, 1, 0}, 1.0));
  inj.AddRule(FaultInjector::Duplicate({0, 1, 0}, 1.0));
  const FaultDecision d = inj.Decide(0, 1, 0);
  EXPECT_TRUE(d.drop);
  EXPECT_TRUE(d.duplicate);  // recorded, but the channel drops first
}

TEST(FaultInjectorTest, ClearRulesKeepsStreamPosition) {
  FaultInjector inj(11);
  inj.AddRule(FaultInjector::Drop({0, 1, 0}, 1.0));
  (void)inj.Decide(0, 1, 0);
  inj.ClearRules();
  EXPECT_TRUE(inj.Decide(0, 1, 0).clean());
  EXPECT_EQ(inj.FramesSeen(0, 1, 0), 2u);
}

// ---------------------------------------------------------------------------
// Channel integration: the injector's verdicts change delivery.
// ---------------------------------------------------------------------------

rdma::Channel::Options SmallChannel() {
  rdma::Channel::Options o;
  o.capacity_bytes = 1 << 20;
  return o;
}

TEST(ChannelFaultTest, DroppedFrameVanishesButSendSucceeds) {
  FaultInjector inj(1);
  inj.AddRule(FaultInjector::Drop({0, 1, 0}, 1.0));
  rdma::Channel ch(SmallChannel());
  ch.SetFaultInjector(&inj, /*dst=*/1, /*channel_class=*/0);
  EXPECT_TRUE(ch.Send(7, rdma::MetaBlob("hdr"), rdma::MakeBuffer("payload"), 0));
  EXPECT_FALSE(ch.TryReceive().has_value());
  EXPECT_EQ(inj.counters().dropped.load(), 1u);
}

TEST(ChannelFaultTest, DuplicateDeliversTwice) {
  FaultInjector inj(1);
  inj.AddRule(FaultInjector::Duplicate({0, 1, 0}, 1.0));
  rdma::Channel ch(SmallChannel());
  ch.SetFaultInjector(&inj, 1, 0);
  EXPECT_TRUE(ch.Send(7, rdma::MetaBlob("hdr"), rdma::MakeBuffer("payload"), 0));
  auto first = ch.TryReceive();
  auto second = ch.TryReceive();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first->payload, *second->payload);
  EXPECT_FALSE(ch.TryReceive().has_value());
}

TEST(ChannelFaultTest, DelayedFrameArrivesAfterItsDue) {
  FaultInjector inj(1);
  inj.AddRule(FaultInjector::Delay({0, 1, 0}, 1.0, FromMillis(30)));
  rdma::Channel ch(SmallChannel());
  ch.SetFaultInjector(&inj, 1, 0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ch.Send(7, rdma::MetaBlob("hdr"), rdma::MakeBuffer("late"), 0));
  EXPECT_FALSE(ch.TryReceive().has_value());  // still held back
  auto msg = ch.Receive();                    // blocks until the due time
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg->payload, "late");
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 25);
}

TEST(ChannelFaultTest, CorruptFlipsExactlyOnePayloadBit) {
  FaultInjector inj(1);
  inj.AddRule(FaultInjector::Corrupt({0, 1, 0}, 1.0));
  rdma::Channel ch(SmallChannel());
  ch.SetFaultInjector(&inj, 1, 0);
  const std::string original(256, 'x');
  EXPECT_TRUE(ch.Send(7, rdma::MetaBlob("hdr"), rdma::MakeBuffer(original), 0));
  auto msg = ch.TryReceive();
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->payload->size(), original.size());
  int bit_diffs = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>((*msg->payload)[i] ^ original[i]);
    while (diff != 0) {
      bit_diffs += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bit_diffs, 1);
  // The header stays intact when a payload is present.
  EXPECT_EQ(msg->meta.view(), "hdr");
}

TEST(ChannelFaultTest, CorruptHitsMetaWhenPayloadEmpty) {
  FaultInjector inj(1);
  inj.AddRule(FaultInjector::Corrupt({0, 1, 0}, 1.0));
  rdma::Channel ch(SmallChannel());
  ch.SetFaultInjector(&inj, 1, 0);
  const std::string original = "control-msg-bytes";
  EXPECT_TRUE(ch.Send(7, rdma::MetaBlob(original), nullptr, 0));
  auto msg = ch.TryReceive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_NE(msg->meta.view(), original);
  EXPECT_EQ(msg->meta.size(), original.size());
}

TEST(ChannelFaultTest, SenderWithoutInjectorIsUnaffected) {
  rdma::Channel ch(SmallChannel());
  EXPECT_TRUE(ch.Send(7, rdma::MetaBlob("hdr"), rdma::MakeBuffer("clean"), 0));
  auto msg = ch.TryReceive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg->payload, "clean");
}

// ---------------------------------------------------------------------------
// ReliableSender / ReliableReceiver.
// ---------------------------------------------------------------------------

net::ReliableOptions FastLink() {
  net::ReliableOptions o;
  o.initial_backoff = FromMillis(1);
  o.max_backoff = FromMillis(4);
  o.jitter = 0.0;
  o.max_attempts = 3;
  o.max_unacked = 8;
  return o;
}

TEST(ReliableSenderTest, HeadersSequenceWithinAnEpoch) {
  net::ReliableSender s;
  s.Init(2, net::kChData, FastLink(), 99);
  const auto h0 = s.NextHeader(0xAB);
  const auto h1 = s.NextHeader(0xCD);
  EXPECT_EQ(h0.sender, 2u);
  EXPECT_EQ(h0.seq, 0u);
  EXPECT_EQ(h1.seq, 1u);
  EXPECT_EQ(h0.epoch, h1.epoch);
  EXPECT_EQ(h0.magic, net::kFrameMagic);
}

TEST(ReliableSenderTest, CumulativeAckShrinksTheWindow) {
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 1);
  for (int i = 0; i < 4; ++i) {
    const auto h = s.NextHeader(0);
    s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, /*now=*/0);
  }
  EXPECT_EQ(s.window_size(), 4u);
  s.OnAck(s.epoch(), 2, 0);
  EXPECT_EQ(s.window_size(), 1u);
  s.OnAck(s.epoch(), 3, 0);
  EXPECT_EQ(s.window_size(), 0u);
}

TEST(ReliableSenderTest, StaleEpochAckIsIgnored) {
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 1);
  const auto h = s.NextHeader(0);
  s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, 0);
  s.OnAck(s.epoch() + 1, 0, 0);
  EXPECT_EQ(s.window_size(), 1u);
}

TEST(ReliableSenderTest, NackRetransmitsFromTheExpectedSeq) {
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 1);
  for (int i = 0; i < 3; ++i) {
    const auto h = s.NextHeader(0);
    s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, 0);
  }
  // Peer expected seq 1: seq 0 implicitly ACKed, 1..2 due immediately.
  s.OnNack(s.epoch(), 1, /*now=*/100);
  const auto* retx = s.CollectRetransmits(100);
  ASSERT_NE(retx, nullptr);
  ASSERT_EQ(retx->size(), 2u);
  EXPECT_EQ((*retx)[0].seq, 1u);
  EXPECT_EQ((*retx)[1].seq, 2u);
  EXPECT_EQ(s.metrics().retransmits, 2u);
}

TEST(ReliableSenderTest, RetransmitWaitsOutTheBackoff) {
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 1);
  const auto h = s.NextHeader(0);
  s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, /*now=*/0);
  // Unacked but the (1ms) timer has not expired yet.
  EXPECT_EQ(s.CollectRetransmits(FromMicros(100)), nullptr);
  EXPECT_NE(s.CollectRetransmits(FromMillis(2)), nullptr);
}

TEST(ReliableSenderTest, ExhaustedAttemptsResetTheLink) {
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 1);  // max_attempts = 3
  const auto h = s.NextHeader(0);
  const uint32_t epoch0 = s.epoch();
  s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, 0);
  SimTime now = 0;
  int rounds = 0;
  while (s.epoch() == epoch0 && rounds < 10) {
    now += FromMillis(50);
    (void)s.CollectRetransmits(now);
    ++rounds;
  }
  EXPECT_EQ(s.epoch(), epoch0 + 1);
  EXPECT_EQ(s.window_size(), 0u);
  EXPECT_EQ(s.next_seq(), 0u);
  EXPECT_EQ(s.metrics().frames_abandoned, 1u);
  EXPECT_EQ(s.metrics().link_resets, 1u);
}

TEST(ReliableSenderTest, WindowOverflowResetsInsteadOfGrowingForever) {
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 1);  // max_unacked = 8
  for (int i = 0; i < 9; ++i) {
    const auto h = s.NextHeader(0);
    s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, 0);
  }
  EXPECT_EQ(s.metrics().link_resets, 1u);
  EXPECT_LE(s.window_size(), 8u);
}

net::FrameHeader Frame(uint32_t sender, uint32_t epoch, uint64_t seq) {
  net::FrameHeader h;
  h.sender = sender;
  h.epoch = epoch;
  h.seq = seq;
  return h;
}

TEST(ReliableReceiverTest, InOrderFramesDeliver) {
  net::ReliableReceiver r;
  for (uint64_t seq = 0; seq < 3; ++seq) {
    const auto out = r.OnFrame(Frame(1, 0, seq), true);
    EXPECT_EQ(out.verdict, net::ReliableReceiver::Verdict::kDeliver);
    EXPECT_FALSE(out.send_nack);
  }
  uint32_t epoch = 0;
  uint64_t seq = 0;
  ASSERT_TRUE(r.CumulativeAck(1, &epoch, &seq));
  EXPECT_EQ(epoch, 0u);
  EXPECT_EQ(seq, 2u);
}

TEST(ReliableReceiverTest, GapNacksOnceUntilProgress) {
  net::ReliableReceiver r;
  (void)r.OnFrame(Frame(1, 0, 0), true);
  auto out = r.OnFrame(Frame(1, 0, 5), true);  // 1..4 missing
  EXPECT_EQ(out.verdict, net::ReliableReceiver::Verdict::kGap);
  EXPECT_TRUE(out.send_nack);
  EXPECT_EQ(out.nack_seq, 1u);
  // The same gap again: dropped, no second NACK (dedupe).
  out = r.OnFrame(Frame(1, 0, 6), true);
  EXPECT_EQ(out.verdict, net::ReliableReceiver::Verdict::kGap);
  EXPECT_FALSE(out.send_nack);
  // Progress re-arms the NACK.
  EXPECT_EQ(r.OnFrame(Frame(1, 0, 1), true).verdict,
            net::ReliableReceiver::Verdict::kDeliver);
  out = r.OnFrame(Frame(1, 0, 7), true);
  EXPECT_TRUE(out.send_nack);
  EXPECT_EQ(out.nack_seq, 2u);
}

TEST(ReliableReceiverTest, DuplicateAndStaleAndInvalidDropSilently) {
  net::ReliableReceiver r;
  (void)r.OnFrame(Frame(1, 1, 0), true);  // adopts epoch 1
  EXPECT_EQ(r.OnFrame(Frame(1, 1, 0), true).verdict,
            net::ReliableReceiver::Verdict::kDuplicate);
  EXPECT_EQ(r.OnFrame(Frame(1, 0, 3), true).verdict,
            net::ReliableReceiver::Verdict::kStale);
  net::FrameHeader bad = Frame(1, 1, 1);
  bad.magic = 0xBAD;
  EXPECT_EQ(r.OnFrame(bad, true).verdict, net::ReliableReceiver::Verdict::kInvalid);
  EXPECT_EQ(r.metrics().frames_duplicate, 1u);
  EXPECT_EQ(r.metrics().frames_stale, 1u);
  EXPECT_EQ(r.metrics().frames_invalid, 1u);
}

TEST(ReliableReceiverTest, CorruptFrameNacksItsOwnSeq) {
  net::ReliableReceiver r;
  const auto out = r.OnFrame(Frame(1, 0, 0), /*crc_ok=*/false);
  EXPECT_EQ(out.verdict, net::ReliableReceiver::Verdict::kCorrupt);
  EXPECT_TRUE(out.send_nack);
  EXPECT_EQ(out.nack_seq, 0u);
  EXPECT_EQ(r.metrics().frames_corrupted, 1u);
  // The retransmission then delivers.
  EXPECT_EQ(r.OnFrame(Frame(1, 0, 0), true).verdict,
            net::ReliableReceiver::Verdict::kDeliver);
}

TEST(ReliableReceiverTest, HigherEpochAdoptsFresh) {
  net::ReliableReceiver r;
  (void)r.OnFrame(Frame(1, 0, 0), true);
  (void)r.OnFrame(Frame(1, 0, 1), true);
  // The sender reset: epoch 1 restarts at seq 0 and must deliver.
  const auto out = r.OnFrame(Frame(1, 1, 0), true);
  EXPECT_EQ(out.verdict, net::ReliableReceiver::Verdict::kDeliver);
  uint32_t epoch = 0;
  uint64_t seq = 0;
  ASSERT_TRUE(r.CumulativeAck(1, &epoch, &seq));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(seq, 0u);
}

TEST(ReliableReceiverTest, CorruptFrameCannotSteerTheEpoch) {
  // A flipped bit in the epoch field must not be adopted as a sender reset:
  // nothing in a corrupt frame is trustworthy, and adopting a huge bogus
  // epoch would make every genuine frame "stale" — a permanent link wedge.
  net::ReliableReceiver r;
  (void)r.OnFrame(Frame(1, 0, 0), true);
  const auto out = r.OnFrame(Frame(1, 0x40000000u, 1), /*crc_ok=*/false);
  EXPECT_EQ(out.verdict, net::ReliableReceiver::Verdict::kCorrupt);
  // The genuine epoch-0 stream still delivers.
  EXPECT_EQ(r.OnFrame(Frame(1, 0, 1), true).verdict,
            net::ReliableReceiver::Verdict::kDeliver);
  uint32_t epoch = 99;
  uint64_t seq = 0;
  ASSERT_TRUE(r.CumulativeAck(1, &epoch, &seq));
  EXPECT_EQ(epoch, 0u);
  EXPECT_EQ(seq, 1u);
}

TEST(ReliableEnvelopeTest, AnyEnvelopeBitFlipFailsVerification) {
  // NextHeader folds EnvelopeCrc(sender, epoch, seq) into payload_crc; the
  // receiver XORs it back out over the *received* fields. Flip any bit of
  // any identity field and verification must fail.
  net::ReliableSender s;
  s.Init(1, net::kChData, FastLink(), 7);
  const uint32_t content_crc = 0xFEEDFACE;
  const net::FrameHeader h = s.NextHeader(content_crc);
  ASSERT_EQ(h.payload_crc ^ net::EnvelopeCrc(h), content_crc);
  const auto verify = [&](const net::FrameHeader& got) {
    return (got.payload_crc ^ net::EnvelopeCrc(got)) == content_crc;
  };
  for (int bit = 0; bit < 32; ++bit) {
    net::FrameHeader flipped = h;
    flipped.sender ^= 1u << bit;
    EXPECT_FALSE(verify(flipped)) << "sender bit " << bit;
    flipped = h;
    flipped.epoch ^= 1u << bit;
    EXPECT_FALSE(verify(flipped)) << "epoch bit " << bit;
  }
  for (int bit = 0; bit < 64; ++bit) {
    net::FrameHeader flipped = h;
    flipped.seq ^= 1ull << bit;
    EXPECT_FALSE(verify(flipped)) << "seq bit " << bit;
  }
}

TEST(ReliableEnvelopeTest, AnyCtrlBitFlipFailsItsChecksum) {
  net::CtrlMsg c;
  c.sender = 2;
  c.channel = net::kChData;
  c.kind = static_cast<uint32_t>(net::CtrlKind::kAck);
  c.epoch = 3;
  c.seq = 41;
  c.crc = net::CtrlCrc(c);
  EXPECT_EQ(c.crc, net::CtrlCrc(c));
  const auto check = [](net::CtrlMsg m) { return m.crc == net::CtrlCrc(m); };
  for (int bit = 0; bit < 32; ++bit) {
    net::CtrlMsg f = c;
    f.sender ^= 1u << bit;
    EXPECT_FALSE(check(f)) << "sender bit " << bit;
    f = c;
    f.channel ^= 1u << bit;
    EXPECT_FALSE(check(f)) << "channel bit " << bit;
    f = c;
    f.kind ^= 1u << bit;
    EXPECT_FALSE(check(f)) << "kind bit " << bit;
    f = c;
    f.epoch ^= 1u << bit;
    EXPECT_FALSE(check(f)) << "epoch bit " << bit;
  }
  for (int bit = 0; bit < 64; ++bit) {
    net::CtrlMsg f = c;
    f.seq ^= 1ull << bit;
    EXPECT_FALSE(check(f)) << "seq bit " << bit;
  }
}

TEST(ReliableLoopTest, LossyLinkConvergesViaNackAndRetransmit) {
  // Sender -> receiver over an imaginary wire that loses every third frame;
  // the NACK/retransmit loop must still deliver 0..N-1 in order.
  net::ReliableSender s;
  s.Init(0, net::kChData, FastLink(), 13);
  net::ReliableReceiver r;
  std::vector<uint64_t> delivered;
  SimTime now = 0;
  int sent = 0;
  for (uint64_t i = 0; i < 6; ++i) {
    const auto h = s.NextHeader(0);
    s.Track(1, rdma::MetaBlob("m"), nullptr, h.seq, now);
    if (++sent % 3 == 0) continue;  // lost on the wire
    const auto out = r.OnFrame(h, true);
    if (out.verdict == net::ReliableReceiver::Verdict::kDeliver) {
      delivered.push_back(h.seq);
    }
    if (out.send_nack) s.OnNack(out.nack_epoch, out.nack_seq, now);
  }
  for (int round = 0; round < 20 && delivered.size() < 6; ++round) {
    now += FromMillis(5);
    const auto* retx = s.CollectRetransmits(now);
    if (retx == nullptr) continue;
    uint64_t acked = 0;
    bool have_ack = false;
    for (const auto& st : *retx) {
      const auto out = r.OnFrame(Frame(0, s.epoch(), st.seq), true);
      if (out.verdict == net::ReliableReceiver::Verdict::kDeliver) {
        delivered.push_back(st.seq);
        acked = st.seq;
        have_ack = true;
      }
    }
    if (have_ack) s.OnAck(s.epoch(), acked, now);
  }
  EXPECT_EQ(delivered, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.window_size(), 0u);
}

// ---------------------------------------------------------------------------
// Decode fuzz: corruption and truncation must fail typed, never crash.
// ---------------------------------------------------------------------------

bat::BatPtr FuzzTargetBat() {
  return bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 5, 8, 13, 21, 34}));
}

TEST(DecodeFuzzTest, EveryByteFlipIsCorruption) {
  const std::string frame = bat::Serialize(*FuzzTargetBat());
  for (size_t i = 0; i < frame.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80}) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      auto decoded = bat::Deserialize(mutated);
      ASSERT_FALSE(decoded.ok()) << "flip at byte " << i << " decoded cleanly";
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
          << decoded.status().ToString();
    }
  }
}

TEST(DecodeFuzzTest, EveryTruncationIsCorruption) {
  const std::string frame = bat::Serialize(*FuzzTargetBat());
  for (size_t len = 0; len < frame.size(); ++len) {
    auto decoded = bat::Deserialize(std::string_view(frame).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded cleanly";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(DecodeFuzzTest, StringColumnSurvivesTheSameFuzz) {
  const auto b = bat::Bat::MakeColumn(
      bat::MakeStrColumn({"alpha", "beta", "", "a longer string payload"}));
  const std::string frame = bat::Serialize(*b);
  // Byte flips across the whole frame, single-bit, both edges of each byte.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string mutated = frame;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    auto decoded = bat::Deserialize(mutated);
    ASSERT_FALSE(decoded.ok()) << "flip at byte " << i;
  }
  // Round-trip still intact.
  auto decoded = bat::Deserialize(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->size(), 4u);
}

}  // namespace
}  // namespace dcy
