// Tests for the MAL layer: parser, dataflow dependency builder, interpreter
// (sequential + parallel), the builtin operators, and the catalog.
#include <gtest/gtest.h>

#include <sstream>

#include "bat/catalog.h"
#include "bat/operators.h"
#include "mal/interpreter.h"
#include "mal/program.h"

namespace dcy::mal {
namespace {

// The literal plan from the paper's Table 1.
constexpr const char* kTable1Plan = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

TEST(ParserTest, ParsesTable1Plan) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->name, "user.s1_2");
  ASSERT_EQ(prog->instructions.size(), 11u);
  EXPECT_EQ(prog->instructions[0].ret, "X1");
  EXPECT_EQ(prog->instructions[0].FullName(), "sql.bind");
  ASSERT_EQ(prog->instructions[0].args.size(), 4u);
  EXPECT_EQ(std::get<std::string>(prog->instructions[0].args[0].literal), "sys");
  EXPECT_EQ(std::get<int64_t>(prog->instructions[0].args[3].literal), 0);

  const auto& markt = prog->instructions[4];
  EXPECT_EQ(markt.FullName(), "algebra.markT");
  EXPECT_TRUE(markt.args[0].is_var());
  EXPECT_EQ(std::get<OidLit>(markt.args[1].literal).value, 0u);

  const auto& rscol = prog->instructions[8];
  EXPECT_TRUE(rscol.ret.empty());
  EXPECT_EQ(rscol.args.size(), 7u);
}

TEST(ParserTest, MaxVarNumber) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->MaxVarNumber(), 22);
}

TEST(ParserTest, RoundTripThroughToString) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  auto again = ParseProgram(prog->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(AlphaEquivalent(*prog, *again));
}

TEST(ParserTest, CommentsAndNegativeNumbers) {
  auto prog = ParseProgram(R"(
# leading comment
X1 := algebra.select(X0, -5, 3.5);  # trailing is not supported mid-line but
X2 := aggr.count(X1);
)");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->instructions.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(prog->instructions[0].args[1].literal), -5);
  EXPECT_DOUBLE_EQ(std::get<double>(prog->instructions[0].args[2].literal), 3.5);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("X1 := nodot(1);").ok());
  EXPECT_FALSE(ParseProgram("X1 := a.b(1").ok());
  EXPECT_FALSE(ParseProgram("X1 := a.b(\"unterminated);").ok());
}

TEST(AlphaEquivalenceTest, DetectsRenamingsAndDifferences) {
  auto a = *ParseProgram("X1 := a.f(1); X2 := a.g(X1);");
  auto b = *ParseProgram("Y9 := a.f(1); Y7 := a.g(Y9);");
  EXPECT_TRUE(AlphaEquivalent(a, b));

  auto c = *ParseProgram("X1 := a.f(1); X2 := a.g(X2);");  // uses wrong var
  std::string why;
  EXPECT_FALSE(AlphaEquivalent(a, c, &why));
  EXPECT_FALSE(why.empty());

  auto d = *ParseProgram("X1 := a.f(2); X2 := a.g(X1);");  // literal differs
  EXPECT_FALSE(AlphaEquivalent(a, d));
}

TEST(DependencyTest, ProducerAndVoidOrdering) {
  auto prog = *ParseProgram(R"(
X1 := a.f(1);
X2 := a.g(X1);
a.touch(X2);
X3 := a.h(X2);
)");
  auto deps = BuildDependencies(prog);
  ASSERT_EQ(deps.size(), 4u);
  EXPECT_TRUE(deps[0].empty());
  EXPECT_EQ(deps[1], (std::vector<size_t>{0}));
  EXPECT_EQ(deps[2], (std::vector<size_t>{1}));
  // The void a.touch(X2) became X2's latest writer: a.h must follow it.
  EXPECT_EQ(deps[3], (std::vector<size_t>{2}));
}

struct EngineFixture : public ::testing::Test {
  EngineFixture() : catalog("") {
    // sys.t(id int): ids 1..4 ; sys.c(t_id int): references 2,3,3,5.
    DCY_CHECK_OK(catalog.Register("sys.t.id", 1,
                                  bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4}))));
    DCY_CHECK_OK(catalog.Register(
        "sys.c.t_id", 2, bat::Bat::MakeColumn(bat::MakeIntColumn({2, 3, 3, 5}))));
    ctx.catalog = &catalog;
    ctx.out = &out;
  }

  bat::BatCatalog catalog;
  std::ostringstream out;
  Context ctx;
};

TEST_F(EngineFixture, ExecutesTable1PlanSequentially) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  Interpreter interp(&Registry::Global(), ctx);
  auto result = interp.Run(*prog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // select c.t_id from t, c where c.t_id = t.id -> {2, 3, 3} (5 has no match).
  const auto& x15 = interp.variables().at("X15");
  const auto& b = std::get<bat::BatPtr>(x15);
  ASSERT_EQ(b->size(), 3u);
  std::multiset<int64_t> got;
  for (size_t i = 0; i < b->size(); ++i) got.insert(b->tail()->GetInt64(i));
  EXPECT_EQ(got, (std::multiset<int64_t>{2, 3, 3}));

  // The exported result was printed.
  EXPECT_NE(out.str().find("sys.c.t_id"), std::string::npos);
}

TEST_F(EngineFixture, DataflowExecutionMatchesSequential) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  Interpreter seq(&Registry::Global(), ctx);
  ASSERT_TRUE(seq.Run(*prog).ok());

  std::ostringstream out2;
  Context ctx2 = ctx;
  ctx2.out = &out2;
  Interpreter par(&Registry::Global(), ctx2);
  auto result = par.RunDataflow(*prog, 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(out.str(), out2.str());
}

TEST_F(EngineFixture, UnknownCallReportsInstruction) {
  auto prog = *ParseProgram("X1 := no.such(1);");
  Interpreter interp(&Registry::Global(), ctx);
  auto result = interp.Run(prog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(EngineFixture, UndefinedVariableFails) {
  auto prog = *ParseProgram("X1 := bat.reverse(X99);");
  Interpreter interp(&Registry::Global(), ctx);
  EXPECT_EQ(interp.Run(prog).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineFixture, BindUnknownColumnFails) {
  auto prog = *ParseProgram(R"(X1 := sql.bind("sys","nope","c",0);)");
  Interpreter interp(&Registry::Global(), ctx);
  EXPECT_TRUE(interp.Run(prog).status().IsNotFound());
}

TEST_F(EngineFixture, AggregationPipeline) {
  auto prog = ParseProgram(R"(
X1 := sql.bind("sys","c","t_id",0);
X2 := group.id(X1);
X3 := group.values(X1);
X4 := aggr.countPerGroup(X2, 3);
X5 := aggr.sum(X1);
X6 := aggr.count(X1);
)");
  Interpreter interp(&Registry::Global(), ctx);
  ASSERT_TRUE(interp.Run(*prog).ok());
  EXPECT_EQ(std::get<int64_t>(interp.variables().at("X5")), 13);  // 2+3+3+5
  EXPECT_EQ(std::get<int64_t>(interp.variables().at("X6")), 4);
  const auto& counts = std::get<bat::BatPtr>(interp.variables().at("X4"));
  EXPECT_EQ(counts->tail()->GetInt64(0), 1);  // value 2
  EXPECT_EQ(counts->tail()->GetInt64(1), 2);  // value 3
}

TEST_F(EngineFixture, TopNBuiltinTakesOptionalDescendingFlag) {
  auto prog = ParseProgram(R"(
X1 := sql.bind("sys","c","t_id",0);
X2 := algebra.topn(X1, 2);
X3 := algebra.topn(X1, 2, 0);
X4 := algebra.topn(X1, 2, 1);
)");
  ASSERT_TRUE(prog.ok());
  Interpreter interp(&Registry::Global(), ctx);
  ASSERT_TRUE(interp.Run(*prog).ok());
  // Two-arg form keeps the historical default: largest first.
  const auto& legacy = std::get<bat::BatPtr>(interp.variables().at("X2"));
  ASSERT_EQ(legacy->size(), 2u);
  EXPECT_GE(legacy->tail()->GetInt64(0), legacy->tail()->GetInt64(1));
  const auto& asc = std::get<bat::BatPtr>(interp.variables().at("X3"));
  ASSERT_EQ(asc->size(), 2u);
  EXPECT_LE(asc->tail()->GetInt64(0), asc->tail()->GetInt64(1));
  const auto& desc = std::get<bat::BatPtr>(interp.variables().at("X4"));
  ASSERT_EQ(desc->size(), 2u);
  EXPECT_GE(desc->tail()->GetInt64(0), desc->tail()->GetInt64(1));
}

TEST_F(EngineFixture, SelectAndArithPipeline) {
  auto prog = ParseProgram(R"(
X1 := sql.bind("sys","c","t_id",0);
X2 := algebra.select(X1, 2, 3);
X3 := batcalc.mul(X2, 10);
X4 := aggr.sum(X3);
)");
  Interpreter interp(&Registry::Global(), ctx);
  ASSERT_TRUE(interp.Run(*prog).ok());
  EXPECT_DOUBLE_EQ(std::get<double>(interp.variables().at("X4")), 80.0);  // (2+3+3)*10
}

TEST_F(EngineFixture, ExportSinkCapturesTypedResult) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  ExportSink sink;
  Context ctx2 = ctx;
  ctx2.exported = &sink;
  Interpreter interp(&Registry::Global(), ctx2);
  ASSERT_TRUE(interp.Run(*prog).ok());
  ASSERT_NE(sink.result, nullptr);
  ASSERT_EQ(sink.result->columns.size(), 1u);
  EXPECT_EQ(sink.result->columns[0].table, "sys.c");
  EXPECT_EQ(sink.result->columns[0].name, "t_id");
  EXPECT_EQ(sink.result->columns[0].values->size(), 3u);
}

TEST_F(EngineFixture, CancelledTokenStopsSequentialExecution) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  CancelToken cancel;
  cancel.Cancel();
  ExecOptions opts;
  opts.cancel = &cancel;
  Interpreter interp(&Registry::Global(), ctx);
  auto result = interp.Execute(*prog, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

TEST_F(EngineFixture, ExpiredDeadlineStopsDataflowExecution) {
  auto prog = ParseProgram(kTable1Plan);
  ASSERT_TRUE(prog.ok());
  CancelToken cancel;
  cancel.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  ExecOptions opts;
  opts.workers = 4;
  opts.cancel = &cancel;
  Interpreter interp(&Registry::Global(), ctx);
  auto result = interp.Execute(*prog, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimedOut());
}

TEST_F(EngineFixture, ParameterBindingSeedsFreeVariables) {
  // LO/HI are parameters: read by the plan, assigned by nobody.
  auto prog = ParseProgram(R"(
X1 := sql.bind("sys","c","t_id",0);
X2 := algebra.select(X1, LO, HI);
X3 := aggr.count(X2);
)");
  ASSERT_TRUE(prog.ok());
  std::unordered_map<std::string, Datum> params;
  params["LO"] = Datum(int64_t{2});
  params["HI"] = Datum(int64_t{3});
  for (size_t workers : {size_t{1}, size_t{4}}) {
    ExecOptions opts;
    opts.workers = workers;
    opts.params = &params;
    Interpreter interp(&Registry::Global(), ctx);
    auto result = interp.Execute(*prog, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(std::get<int64_t>(*result), 3);  // rows 2,3,3
  }
  // Without the bindings the plan has an undefined variable.
  Interpreter interp(&Registry::Global(), ctx);
  EXPECT_EQ(interp.Execute(*prog, ExecOptions{}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngineFixture, DcCallsWithoutRingFail) {
  auto prog = ParseProgram(R"(X1 := datacyclotron.request("sys","t","id",0);)");
  Interpreter interp(&Registry::Global(), ctx);  // ctx.dc == nullptr
  EXPECT_EQ(interp.Run(*prog).status().code(), StatusCode::kFailedPrecondition);
}

TEST(CatalogTest, SpillAndReload) {
  const std::string dir = ::testing::TempDir() + "/dcy_spill";
  bat::BatCatalog catalog(dir);
  auto b = bat::Bat::MakeColumn(bat::MakeIntColumn({7, 8, 9}));
  ASSERT_TRUE(catalog.Register("s.t.c", 5, b).ok());
  EXPECT_GT(catalog.resident_bytes(), 0u);

  ASSERT_TRUE(catalog.Spill(5).ok());
  EXPECT_TRUE(catalog.IsSpilled(5));
  EXPECT_EQ(catalog.resident_bytes(), 0u);

  auto back = catalog.GetById(5);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_FALSE(catalog.IsSpilled(5));
  EXPECT_EQ((*back)->tail()->GetInt64(2), 9);

  EXPECT_EQ(catalog.IdOf("s.t.c").value(), 5u);
  EXPECT_TRUE(catalog.GetByName("s.t.c").ok());
  EXPECT_TRUE(catalog.Register("s.t.c", 6, b).code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.Drop(5).ok());
  EXPECT_TRUE(catalog.GetById(5).status().IsNotFound());
}

}  // namespace
}  // namespace dcy::mal
