// Unit tests for src/common: Status/Result, RNG determinism and
// distributions, histograms, time series, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace dcy {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("bat 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "bat 42");
  EXPECT_EQ(st.ToString(), "NotFound: bat 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnknown); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  DCY_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);

  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

Result<std::string> Describe(int x) {
  DCY_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return std::string("value=") + std::to_string(doubled);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<std::string> good = Describe(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), "value=10");
  EXPECT_FALSE(Describe(-5).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> seen(11, 0);
  for (int i = 0; i < 20000; ++i) ++seen[static_cast<size_t>(rng.UniformInt(0, 10))];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stat.mean(), 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> count(3, 0);
  for (int i = 0; i < 40000; ++i) ++count[rng.WeightedIndex(w)];
  EXPECT_EQ(count[1], 0);
  EXPECT_NEAR(static_cast<double>(count[2]) / count[0], 3.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RunningStatTest, Moments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-3.0);   // clamps into bucket 0
  h.Add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.stat().count(), 4u);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(i % 100);
  const double p50 = h.Percentile(50);
  const double p90 = h.Percentile(90);
  const double p99 = h.Percentile(99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  EXPECT_NEAR(p50, 50.0, 2.0);
}

TEST(TimeSeriesTest, StepInterpolation) {
  TimeSeries ts;
  ts.Add(0.0, 1.0);
  ts.Add(10.0, 5.0);
  EXPECT_EQ(ts.At(-1.0), 0.0);
  EXPECT_EQ(ts.At(0.0), 1.0);
  EXPECT_EQ(ts.At(9.99), 1.0);
  EXPECT_EQ(ts.At(10.0), 5.0);
  EXPECT_EQ(ts.At(100.0), 5.0);
}

TEST(SeriesTableTest, TsvHasHeaderAndRows) {
  SeriesTable t;
  t.Series("a").Add(0.0, 1.0);
  t.Series("b").Add(1.0, 2.0);
  const std::string tsv = t.ToTsv(0.0, 2.0, 1.0);
  EXPECT_NE(tsv.find("time\ta\tb"), std::string::npos);
  // 1 header + 3 sample rows.
  EXPECT_EQ(std::count(tsv.begin(), tsv.end(), '\n'), 4);
}

TEST(FlagsTest, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--nodes=12", "--rate=3.5", "--verbose", "positional",
                        "--name=ring"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("nodes", 0), 12);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 3.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "ring");
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("positional"));
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(FromSeconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(ToSeconds(250 * kMillisecond), 0.25);
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(10.0), 1.25e9);
  EXPECT_EQ(200 * kMB, 200'000'000ULL);
}

}  // namespace
}  // namespace dcy
