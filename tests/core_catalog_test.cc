// Unit tests for the S1/S2/S3 catalog structures and the local BAT cache.
#include <gtest/gtest.h>

#include "core/catalog.h"

namespace dcy::core {
namespace {

TEST(OwnedCatalogTest, AddFindRemove) {
  OwnedCatalog s1;
  EXPECT_TRUE(s1.Add(1, 100));
  EXPECT_TRUE(s1.Add(2, 200));
  EXPECT_FALSE(s1.Add(1, 999));  // duplicate
  EXPECT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1.total_bytes(), 300u);
  ASSERT_NE(s1.Find(1), nullptr);
  EXPECT_EQ(s1.Find(1)->size, 100u);
  EXPECT_TRUE(s1.Remove(1));
  EXPECT_FALSE(s1.Remove(1));
  EXPECT_EQ(s1.total_bytes(), 200u);
  EXPECT_FALSE(s1.Contains(1));
}

TEST(OwnedCatalogTest, HotBytesTracksStateChanges) {
  OwnedCatalog s1;
  s1.Add(1, 100);
  s1.Add(2, 200);
  OwnedBat* a = s1.Find(1);
  OwnedBat* b = s1.Find(2);
  EXPECT_EQ(s1.hot_bytes(), 0u);
  s1.NoteStateChange(a, OwnedState::kHot);
  EXPECT_EQ(s1.hot_bytes(), 100u);
  s1.NoteStateChange(b, OwnedState::kHot);
  EXPECT_EQ(s1.hot_bytes(), 300u);
  s1.NoteStateChange(a, OwnedState::kCold);
  EXPECT_EQ(s1.hot_bytes(), 200u);
  s1.NoteStateChange(b, OwnedState::kPending);  // hot -> pending also leaves
  EXPECT_EQ(s1.hot_bytes(), 0u);
}

TEST(OwnedCatalogTest, RemovingHotBatReleasesHotBytes) {
  OwnedCatalog s1;
  s1.Add(7, 500);
  s1.NoteStateChange(s1.Find(7), OwnedState::kHot);
  EXPECT_EQ(s1.hot_bytes(), 500u);
  s1.Remove(7);
  EXPECT_EQ(s1.hot_bytes(), 0u);
}

TEST(OwnedCatalogTest, PendingOrderedByAgeThenId) {
  OwnedCatalog s1;
  for (BatId id : {5u, 3u, 9u, 1u}) s1.Add(id, 10);
  auto tag = [&](BatId id, SimTime t) {
    OwnedBat* b = s1.Find(id);
    s1.NoteStateChange(b, OwnedState::kPending);
    b->pending_since = t;
  };
  tag(5, 300);
  tag(3, 100);
  tag(9, 100);
  tag(1, 200);
  auto pending = s1.PendingOldestFirst();
  ASSERT_EQ(pending.size(), 4u);
  EXPECT_EQ(pending[0]->id, 3u);  // oldest, lower id first on ties
  EXPECT_EQ(pending[1]->id, 9u);
  EXPECT_EQ(pending[2]->id, 1u);
  EXPECT_EQ(pending[3]->id, 5u);
}

TEST(OwnedCatalogTest, HotEnumeration) {
  OwnedCatalog s1;
  s1.Add(1, 10);
  s1.Add(2, 10);
  s1.Add(3, 10);
  s1.NoteStateChange(s1.Find(1), OwnedState::kHot);
  s1.NoteStateChange(s1.Find(3), OwnedState::kHot);
  auto hot = s1.Hot();
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0]->id, 1u);
  EXPECT_EQ(hot[1]->id, 3u);
}

TEST(RequestTableTest, GetOrCreateIsIdempotent) {
  RequestTable s2;
  RequestEntry* a = s2.GetOrCreate(42, 100);
  RequestEntry* b = s2.GetOrCreate(42, 999);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->first_registered, 100);
  EXPECT_EQ(s2.size(), 1u);
  EXPECT_TRUE(s2.Erase(42));
  EXPECT_FALSE(s2.Erase(42));
}

TEST(RequestEntryTest, AllDeliveredAndBlockedPins) {
  RequestEntry e;
  e.queries[1] = {};
  e.queries[2] = {};
  EXPECT_FALSE(e.AllDelivered());
  EXPECT_FALSE(e.HasBlockedPins());  // nobody pinned yet

  e.queries[1].pin_called = true;
  EXPECT_TRUE(e.HasBlockedPins());  // pinned, not delivered => blocked

  e.queries[1].delivered = true;
  EXPECT_FALSE(e.HasBlockedPins());
  EXPECT_FALSE(e.AllDelivered());  // query 2 still outstanding

  e.queries[2].delivered = true;
  EXPECT_TRUE(e.AllDelivered());
}

TEST(PinTableTest, BlockTakeUnblock) {
  PinTable s3;
  s3.Block(10, 100);
  s3.Block(10, 101);
  s3.Block(20, 102);
  EXPECT_EQ(s3.total_blocked(), 3u);
  EXPECT_EQ(s3.blocked_count(10), 2u);
  EXPECT_TRUE(s3.HasBlocked(20));

  auto taken = s3.TakeBlocked(10);
  EXPECT_EQ(taken, (std::vector<QueryId>{100, 101}));
  EXPECT_FALSE(s3.HasBlocked(10));
  EXPECT_EQ(s3.total_blocked(), 1u);

  EXPECT_TRUE(s3.Unblock(20, 102));
  EXPECT_FALSE(s3.Unblock(20, 102));
  EXPECT_EQ(s3.total_blocked(), 0u);
  EXPECT_TRUE(s3.TakeBlocked(99).empty());
}

TEST(BatCacheTest, RefCountingEvictsAtZero) {
  BatCache cache;
  cache.Insert(5, 1000, 2, 0);  // two pins hold it
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_EQ(cache.cached_bytes(), 1000u);

  EXPECT_TRUE(cache.AddPinIfPresent(5));  // third pin
  EXPECT_TRUE(cache.ReleasePin(5));
  EXPECT_TRUE(cache.ReleasePin(5));
  EXPECT_TRUE(cache.Contains(5));  // one pin left
  EXPECT_TRUE(cache.ReleasePin(5));
  EXPECT_FALSE(cache.Contains(5));
  EXPECT_EQ(cache.cached_bytes(), 0u);
  EXPECT_FALSE(cache.ReleasePin(5));
  EXPECT_FALSE(cache.AddPinIfPresent(5));
}

TEST(BatCacheTest, ReinsertAccumulatesPins) {
  BatCache cache;
  cache.Insert(5, 1000, 1, 0);
  cache.Insert(5, 1000, 2, 10);  // the BAT passed again; 2 more pins
  EXPECT_EQ(cache.cached_bytes(), 1000u);  // size counted once
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(cache.ReleasePin(5));
  EXPECT_FALSE(cache.Contains(5));
}

TEST(OwnedStateTest, Names) {
  EXPECT_STREQ(OwnedStateName(OwnedState::kCold), "cold");
  EXPECT_STREQ(OwnedStateName(OwnedState::kPending), "pending");
  EXPECT_STREQ(OwnedStateName(OwnedState::kHot), "hot");
}

}  // namespace
}  // namespace dcy::core
