// Differential tests for the vectorized kernel engine: every hot operator is
// pitted against the retained scalar reference (bat/scalar_reference.h) over
// randomized inputs covering all ValTypes and degenerate shapes (empty,
// duplicate-heavy, sorted), asserting bit-identical results. Plus direct
// kernel unit tests (FlatTable, gather, selection vectors) and round trips
// through the bulk serializer.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bat/encoding.h"
#include "bat/kernels.h"
#include "bat/operators.h"
#include "bat/scalar_reference.h"
#include "bat/serialize.h"
#include "common/random.h"
#include "exec/executor.h"

namespace dcy::bat {
namespace {

// ---- input generation --------------------------------------------------------

enum class Shape { kEmpty, kRandom, kDupHeavy, kSorted };

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kEmpty: return "empty";
    case Shape::kRandom: return "random";
    case Shape::kDupHeavy: return "dup-heavy";
    case Shape::kSorted: return "sorted";
  }
  return "?";
}

/// Builds a random column of `type` with the given shape. Sorted shapes set
/// the scan-derived properties so operators take the merge paths.
ColumnPtr RandomColumn(ValType type, Shape shape, size_t n, Rng* rng) {
  if (shape == Shape::kEmpty) n = 0;
  const int64_t domain = shape == Shape::kDupHeavy ? 4 : 1000;
  ColumnBuilder b(type);
  std::vector<std::string> strs;
  std::vector<int64_t> ints;
  std::vector<double> dbls;
  for (size_t i = 0; i < n; ++i) {
    ints.push_back(rng->UniformInt(-domain, domain));
    dbls.push_back(static_cast<double>(rng->UniformInt(-domain, domain)) / 2.0);
    strs.push_back("s" + std::to_string(rng->UniformInt(0, domain)));
  }
  if (shape == Shape::kSorted) {
    std::sort(ints.begin(), ints.end());
    std::sort(dbls.begin(), dbls.end());
    std::sort(strs.begin(), strs.end());
  }
  for (size_t i = 0; i < n; ++i) {
    switch (type) {
      case ValType::kOid: b.AppendInt64(ints[i] + domain); break;  // non-negative
      case ValType::kInt:
      case ValType::kDate:
      case ValType::kLng: b.AppendInt64(ints[i]); break;
      case ValType::kDbl: b.AppendDouble(dbls[i]); break;
      case ValType::kStr: b.AppendString(strs[i]); break;
    }
  }
  return b.Finish();
}

BatPtr RandomBat(ValType tail_type, Shape shape, size_t n, Rng* rng,
                 bool scan_props = false) {
  ColumnPtr tail = RandomColumn(tail_type, shape, n, rng);
  ColumnPtr head = MakeDenseOid(rng->UniformU64(0, 100), tail->size());
  if (!scan_props) return Bat::MakeColumn(std::move(tail));
  auto props = Bat::ScanProperties(*head, *tail);
  return std::make_shared<Bat>(std::move(head), std::move(tail), props);
}

/// Bit-identical BAT equality: size, column types, and every row of both
/// columns (boxed compare covers all types exactly).
void ExpectSameBat(const BatPtr& got, const BatPtr& want, const std::string& ctx) {
  ASSERT_EQ(got->size(), want->size()) << ctx;
  ASSERT_EQ(got->head_type(), want->head_type()) << ctx;
  ASSERT_EQ(got->tail_type(), want->tail_type()) << ctx;
  for (size_t i = 0; i < want->size(); ++i) {
    ASSERT_TRUE(got->head()->GetValue(i) == want->head()->GetValue(i))
        << ctx << " head row " << i << ": " << got->head()->GetValue(i).ToString()
        << " vs " << want->head()->GetValue(i).ToString();
    ASSERT_TRUE(got->tail()->GetValue(i) == want->tail()->GetValue(i))
        << ctx << " tail row " << i << ": " << got->tail()->GetValue(i).ToString()
        << " vs " << want->tail()->GetValue(i).ToString();
  }
}

void ExpectSameResult(const Result<BatPtr>& got, const Result<BatPtr>& want,
                      const std::string& ctx) {
  ASSERT_EQ(got.ok(), want.ok()) << ctx;
  if (!want.ok()) return;
  ExpectSameBat(*got, *want, ctx);
}

constexpr ValType kAllTypes[] = {ValType::kOid, ValType::kInt, ValType::kLng,
                                 ValType::kDbl, ValType::kStr, ValType::kDate};
constexpr Shape kAllShapes[] = {Shape::kEmpty, Shape::kRandom, Shape::kDupHeavy,
                                Shape::kSorted};

// ---- differential sweeps -----------------------------------------------------

class KernelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelDifferentialTest, SelectMatchesScalar) {
  Rng rng(GetParam() * 1315423911ULL + 1);
  for (ValType t : kAllTypes) {
    for (Shape s : kAllShapes) {
      const std::string ctx =
          std::string("select ") + ValTypeName(t) + " " + ShapeName(s);
      auto b = RandomBat(t, s, 1 + rng.UniformU64(0, 200), &rng);
      // Probe a value likely present plus one likely absent.
      for (int probe = 0; probe < 2; ++probe) {
        Value v;
        switch (t) {
          case ValType::kOid: v = Value::MakeOid(probe == 0 ? 3 : 99999); break;
          case ValType::kDbl: v = Value::MakeDbl(probe == 0 ? 1.5 : 1e12); break;
          case ValType::kStr: v = Value::MakeStr(probe == 0 ? "s1" : "zzz"); break;
          case ValType::kDate: v = Value::MakeDate(probe == 0 ? 2 : 99999); break;
          default: v = Value::MakeLng(probe == 0 ? 2 : 99999); break;
        }
        ExpectSameResult(Select(b, v), scalar::Select(b, v), ctx);
      }
      // Range select, including inverted (empty) and double-bound mixes.
      if (t == ValType::kStr) {
        ExpectSameResult(SelectRange(b, Value::MakeStr("s1"), Value::MakeStr("s5")),
                         scalar::SelectRange(b, Value::MakeStr("s1"), Value::MakeStr("s5")),
                         ctx);
      } else {
        ExpectSameResult(SelectRange(b, Value::MakeLng(-3), Value::MakeLng(4)),
                         scalar::SelectRange(b, Value::MakeLng(-3), Value::MakeLng(4)), ctx);
        ExpectSameResult(SelectRange(b, Value::MakeLng(4), Value::MakeLng(-3)),
                         scalar::SelectRange(b, Value::MakeLng(4), Value::MakeLng(-3)), ctx);
        ExpectSameResult(
            SelectRange(b, Value::MakeDbl(-2.5), Value::MakeLng(3)),
            scalar::SelectRange(b, Value::MakeDbl(-2.5), Value::MakeLng(3)), ctx);
      }
    }
  }
}

TEST_P(KernelDifferentialTest, JoinMatchesScalar) {
  Rng rng(GetParam() * 2654435761ULL + 7);
  for (ValType t : kAllTypes) {
    for (Shape s : kAllShapes) {
      const std::string ctx = std::string("join ") + ValTypeName(t) + " " + ShapeName(s);
      // Hash path: unsorted flags.
      auto l = RandomBat(t, s, 1 + rng.UniformU64(0, 150), &rng);
      auto r = Reverse(RandomBat(t, s, 1 + rng.UniformU64(0, 150), &rng));
      ExpectSameResult(Join(l, r), scalar::Join(l, r), ctx + " hash");

      // Merge path: sorted tails/heads with scanned properties.
      auto ls = RandomBat(t, Shape::kSorted, 1 + rng.UniformU64(0, 150), &rng,
                          /*scan_props=*/true);
      auto rs = Reverse(RandomBat(t, Shape::kSorted, 1 + rng.UniformU64(0, 150), &rng,
                                  /*scan_props=*/true));
      ASSERT_TRUE(ls->props().tsorted && rs->props().hsorted);
      ExpectSameResult(Join(ls, rs), scalar::Join(ls, rs), ctx + " merge");
    }
  }
}

TEST_P(KernelDifferentialTest, SemiJoinKDiffKUnionMatchScalar) {
  Rng rng(GetParam() * 40503ULL + 11);
  for (ValType t : kAllTypes) {
    for (Shape s : kAllShapes) {
      const std::string ctx = std::string("headset ") + ValTypeName(t) + " " + ShapeName(s);
      // Heads of type t: build [t-head, lng-tail] BATs via Reverse.
      auto l = Reverse(RandomBat(t, s, 1 + rng.UniformU64(0, 150), &rng));
      auto r = Reverse(RandomBat(t, s, 1 + rng.UniformU64(0, 150), &rng));
      ExpectSameResult(SemiJoin(l, r), scalar::SemiJoin(l, r), ctx + " semijoin");
      ExpectSameResult(KDiff(l, r), scalar::KDiff(l, r), ctx + " kdiff");
      ExpectSameResult(KUnion(l, r), scalar::KUnion(l, r), ctx + " kunion");
    }
  }
}

TEST_P(KernelDifferentialTest, SortMatchesScalar) {
  Rng rng(GetParam() * 69069ULL + 13);
  for (ValType t : kAllTypes) {
    for (Shape s : kAllShapes) {
      const std::string ctx = std::string("sort ") + ValTypeName(t) + " " + ShapeName(s);
      auto b = RandomBat(t, s, 1 + rng.UniformU64(0, 200), &rng);
      ExpectSameResult(Sort(b), scalar::Sort(b), ctx);
    }
  }
}

TEST_P(KernelDifferentialTest, TopNMatchesScalar) {
  Rng rng(GetParam() * 48271ULL + 17);
  for (ValType t : kAllTypes) {
    for (Shape s : kAllShapes) {
      const std::string ctx = std::string("topn ") + ValTypeName(t) + " " + ShapeName(s);
      auto b = RandomBat(t, s, 1 + rng.UniformU64(0, 200), &rng);
      for (size_t k : {size_t{0}, size_t{1}, size_t{7}, b->size(), b->size() + 5}) {
        for (bool desc : {false, true}) {
          ExpectSameResult(TopN(b, k, desc), scalar::TopN(b, k, desc),
                           ctx + " k" + std::to_string(k) + (desc ? " desc" : " asc"));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- kernel unit tests -------------------------------------------------------

TEST(FlatTableTest, DirectModeOnCompactDomain) {
  std::vector<int64_t> keys = {5, 3, 5, 9, 3, 5};
  kernels::FlatTable t(keys);
  EXPECT_TRUE(t.is_direct());
  // Chains walk ascending rows.
  std::vector<uint32_t> rows;
  for (uint32_t r = t.Find(5); r != kernels::FlatTable::kNone; r = t.Next(r)) {
    rows.push_back(r);
  }
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 2, 5}));
  EXPECT_EQ(t.Find(4), kernels::FlatTable::kNone);
  EXPECT_EQ(t.Find(-1), kernels::FlatTable::kNone);
  EXPECT_EQ(t.Find(1000000), kernels::FlatTable::kNone);
}

TEST(FlatTableTest, OpenAddressingOnSparseDomain) {
  std::vector<int64_t> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(static_cast<int64_t>(i) * 1000000007LL - 50);
  keys.push_back(keys[7]);  // one duplicate
  kernels::FlatTable t(keys);
  EXPECT_FALSE(t.is_direct());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.Find(keys[static_cast<size_t>(i)]),
              static_cast<uint32_t>(i));
  }
  EXPECT_EQ(t.Next(7), 100u);  // duplicate chains to the later row
  EXPECT_EQ(t.Find(12345), kernels::FlatTable::kNone);
}

TEST(FlatTableTest, EmptyKeys) {
  std::vector<int64_t> keys;
  kernels::FlatTable t(keys);
  EXPECT_EQ(t.Find(0), kernels::FlatTable::kNone);
}

TEST(GatherTest, DenseSourceCollapsesContiguousRuns) {
  auto dense = MakeDenseOid(100, 10);
  SelVec run = {3, 4, 5};
  auto sliced = kernels::Gather(*dense, run.data(), run.size());
  EXPECT_EQ(sliced->kind(), ColumnKind::kDense);
  EXPECT_EQ(sliced->GetInt64(0), 103);
  SelVec scattered = {1, 5, 2};
  auto gathered = kernels::Gather(*dense, scattered.data(), scattered.size());
  EXPECT_EQ(gathered->kind(), ColumnKind::kFixed);
  EXPECT_EQ(gathered->GetInt64(2), 102);
}

TEST(GatherTest, StringGatherRebuildsHeap) {
  auto c = MakeStrColumn({"aa", "", "cccc", "d"});
  SelVec idx = {3, 0, 0, 2};
  auto g = kernels::Gather(*c, idx.data(), idx.size());
  ASSERT_EQ(g->size(), 4u);
  EXPECT_EQ(g->GetString(0), "d");
  EXPECT_EQ(g->GetString(1), "aa");
  EXPECT_EQ(g->GetString(2), "aa");
  EXPECT_EQ(g->GetString(3), "cccc");
}

TEST(ColumnBuilderTest, BulkAppendsMatchRowAppends) {
  // AppendSpan / AppendColumnRange / AppendGather against per-row appends.
  auto src = MakeLngColumn({10, 20, 30, 40});
  ColumnBuilder bulk(ValType::kLng);
  bulk.AppendSpan(src->FixedData<int64_t>());
  bulk.AppendColumnRange(*src, 1, 2);
  SelVec idx = {3, 0};
  bulk.AppendGather(*src, idx.data(), idx.size());
  auto got = bulk.Finish();
  std::vector<int64_t> want = {10, 20, 30, 40, 20, 30, 40, 10};
  ASSERT_EQ(got->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got->GetInt64(i), want[i]);
}

TEST(ColumnBuilderTest, StrAndDenseColumnRange) {
  auto sc = MakeStrColumn({"x", "yy", "zzz"});
  ColumnBuilder b(ValType::kStr);
  b.AppendColumnRange(*sc, 1, 2);
  auto got = b.Finish();
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ(got->GetString(0), "yy");
  EXPECT_EQ(got->GetString(1), "zzz");

  auto dense = MakeDenseOid(7, 5);
  ColumnBuilder ob(ValType::kOid);
  ob.AppendColumnRange(*dense, 2, 3);
  auto oids = ob.Finish();
  ASSERT_EQ(oids->size(), 3u);
  EXPECT_EQ(oids->GetInt64(0), 9);
  EXPECT_EQ(oids->GetInt64(2), 11);
}

TEST(ColumnBuilderTest, StrBuilderIsReusableAfterFinish) {
  ColumnBuilder b(ValType::kStr);
  b.AppendString("a");
  auto first = b.Finish();
  b.AppendString("bc");
  auto second = b.Finish();
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ(second->GetString(0), "bc");
  EXPECT_EQ(first->GetString(0), "a");
}

TEST(OperatorPropsTest, DescendingTopNIsNotMarkedSorted) {
  auto sorted = Sort(Bat::MakeColumn(MakeIntColumn({3, 1, 2})));
  ASSERT_TRUE(sorted.ok() && (*sorted)->props().tsorted);
  auto desc = TopN(*sorted, 2, /*descending=*/true);
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE((*desc)->props().tsorted);  // 3,2 is descending
  auto asc = TopN(*sorted, 2, /*descending=*/false);
  ASSERT_TRUE(asc.ok());
  EXPECT_TRUE((*asc)->props().tsorted);
}

TEST(OperatorPropsTest, DoubleGidsTruncateLikeGetInt64) {
  // batcalc arithmetic emits dbl; grouped aggregates must truncate gids the
  // way the scalar GetInt64 accessor did, not bit-cast them.
  auto values = Bat::MakeColumn(MakeIntColumn({10, 20, 30}));
  auto gids = Bat::MakeColumn(MakeDblColumn({0.0, 1.0, 1.0}));
  auto sums = SumPerGroup(values, gids, 2);
  ASSERT_TRUE(sums.ok()) << sums.status().ToString();
  EXPECT_DOUBLE_EQ((*sums)->tail()->GetDouble(0), 10.0);
  EXPECT_DOUBLE_EQ((*sums)->tail()->GetDouble(1), 50.0);
  auto counts = CountPerGroup(gids, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)->tail()->GetInt64(1), 2);
}

// ---- parallel kernel differential sweeps -------------------------------------
//
// Re-runs the operator-vs-scalar differential checks with the morsel engine
// forced on: policy workers in {1, 2, 8} with a tiny morsel size and
// fallback threshold so the input sizes straddle the parallel cutoff
// (below it the sequential kernels must run unchanged; at or above it the
// stitched parallel output must stay bit-identical). Floating-point sums
// re-associate per morsel, so those compare to tolerance instead.

exec::ExecPolicy TinyMorselPolicy(size_t workers) {
  exec::ExecPolicy p;
  p.workers = workers;
  p.morsel_rows = 64;
  p.min_parallel_rows = 128;
  return p;
}

constexpr size_t kParallelWorkerCounts[] = {1, 2, 8};
// Straddles min_parallel_rows = 128 (and morsel boundaries at 64).
constexpr size_t kStraddleSizes[] = {90, 127, 128, 129, 1000};

class ParallelKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelKernelTest, SelectMatchesScalarAcrossWorkerCounts) {
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    Rng rng(GetParam() * 7919ULL + workers);
    for (ValType t : kAllTypes) {
      for (Shape s : kAllShapes) {
        for (size_t n : kStraddleSizes) {
          const std::string ctx = std::string("par-select w") + std::to_string(workers) +
                                  " n" + std::to_string(n) + " " + ValTypeName(t) + " " +
                                  ShapeName(s);
          auto b = RandomBat(t, s, n, &rng);
          Value v = t == ValType::kStr ? Value::MakeStr("s1")
                                       : (t == ValType::kDbl ? Value::MakeDbl(1.5)
                                                             : Value::MakeLng(2));
          ExpectSameResult(Select(b, v), scalar::Select(b, v), ctx);
          if (t == ValType::kStr) {
            ExpectSameResult(SelectRange(b, Value::MakeStr("s1"), Value::MakeStr("s7")),
                             scalar::SelectRange(b, Value::MakeStr("s1"), Value::MakeStr("s7")),
                             ctx);
          } else {
            ExpectSameResult(SelectRange(b, Value::MakeLng(-5), Value::MakeLng(5)),
                             scalar::SelectRange(b, Value::MakeLng(-5), Value::MakeLng(5)),
                             ctx);
            ExpectSameResult(
                SelectRange(b, Value::MakeDbl(-2.5), Value::MakeLng(3)),
                scalar::SelectRange(b, Value::MakeDbl(-2.5), Value::MakeLng(3)), ctx);
          }
        }
      }
    }
  }
}

TEST_P(ParallelKernelTest, JoinAndMembershipMatchScalarAcrossWorkerCounts) {
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    Rng rng(GetParam() * 2718281ULL + workers);
    for (ValType t : kAllTypes) {
      for (Shape s : kAllShapes) {
        for (size_t n : kStraddleSizes) {
          const std::string ctx = std::string("par-join w") + std::to_string(workers) +
                                  " n" + std::to_string(n) + " " + ValTypeName(t) + " " +
                                  ShapeName(s);
          // Hash join: probe side `n` rows straddles the parallel cutoff.
          auto l = RandomBat(t, s, n, &rng);
          auto r = Reverse(RandomBat(t, s, 1 + rng.UniformU64(0, 150), &rng));
          ExpectSameResult(Join(l, r), scalar::Join(l, r), ctx + " hash");
          // Membership probes (semijoin / kdiff) over the same shapes.
          auto lh = Reverse(l);
          auto rh = Reverse(RandomBat(t, s, 1 + rng.UniformU64(0, 150), &rng));
          ExpectSameResult(SemiJoin(lh, rh), scalar::SemiJoin(lh, rh), ctx + " semijoin");
          ExpectSameResult(KDiff(lh, rh), scalar::KDiff(lh, rh), ctx + " kdiff");
        }
      }
    }
  }
}

TEST_P(ParallelKernelTest, SortAndTopNMatchScalarAcrossWorkerCounts) {
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    Rng rng(GetParam() * 16807ULL + workers);
    for (ValType t : kAllTypes) {
      for (Shape s : kAllShapes) {
        for (size_t n : kStraddleSizes) {
          const std::string ctx = std::string("par-sort w") + std::to_string(workers) +
                                  " n" + std::to_string(n) + " " + ValTypeName(t) + " " +
                                  ShapeName(s);
          auto b = RandomBat(t, s, n, &rng);
          // Morsel sorts + loser-tree merge must reproduce the stable order
          // exactly, dup-heavy shapes included.
          ExpectSameResult(Sort(b), scalar::Sort(b), ctx);
          // TopN k values straddle the morsel size (64) and the total
          // (k = 0 regression: must not touch the parallel heap path).
          for (size_t k : {size_t{0}, size_t{1}, size_t{64}, n}) {
            for (bool desc : {false, true}) {
              ExpectSameResult(TopN(b, k, desc), scalar::TopN(b, k, desc),
                               ctx + " k" + std::to_string(k) + (desc ? " desc" : ""));
            }
          }
        }
      }
    }
  }
}

TEST_P(ParallelKernelTest, PartitionedBuildMatchesScalarAcrossWorkerCounts) {
  // The radix-partitioned hash build engages when the BUILD side crosses
  // min_parallel_rows (the probe sweeps above straddle the probe side);
  // dup-heavy builds exercise the cross-partition duplicate chains.
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    Rng rng(GetParam() * 1664525ULL + workers);
    for (ValType t : kAllTypes) {
      for (Shape s : {Shape::kRandom, Shape::kDupHeavy}) {
        for (size_t build_n : kStraddleSizes) {
          const std::string ctx = std::string("par-build w") + std::to_string(workers) +
                                  " build_n" + std::to_string(build_n) + " " +
                                  ValTypeName(t) + " " + ShapeName(s);
          auto l = RandomBat(t, s, 1 + rng.UniformU64(0, 300), &rng);
          auto r = Reverse(RandomBat(t, s, build_n, &rng));
          ExpectSameResult(Join(l, r), scalar::Join(l, r), ctx + " join");
          auto lh = Reverse(RandomBat(t, s, 1 + rng.UniformU64(0, 300), &rng));
          auto rh = Reverse(RandomBat(t, s, build_n, &rng));
          ExpectSameResult(SemiJoin(lh, rh), scalar::SemiJoin(lh, rh), ctx + " semijoin");
          ExpectSameResult(KDiff(lh, rh), scalar::KDiff(lh, rh), ctx + " kdiff");
        }
      }
    }
  }
}

TEST_P(ParallelKernelTest, StringGatherTwoPassMatchesSequential) {
  Rng rng(GetParam() * 22695477ULL + 3);
  // Strings of varying length (empties included) gathered with repeats and
  // back-references; sizes straddle the parallel cutoff.
  std::vector<std::string> pool;
  for (int i = 0; i < 40; ++i) {
    pool.push_back(std::string(static_cast<size_t>(rng.UniformInt(0, 12)),
                               static_cast<char>('a' + (i % 26))));
  }
  for (size_t n : kStraddleSizes) {
    std::vector<std::string> src_rows;
    for (size_t i = 0; i < n; ++i) {
      src_rows.push_back(pool[static_cast<size_t>(rng.UniformInt(0, 39))]);
    }
    auto src = MakeStrColumn(src_rows);
    SelVec idx(n);
    for (auto& x : idx) x = static_cast<uint32_t>(rng.UniformU64(0, n - 1));
    // Oracle: the order-carrying sequential heap append.
    ColumnBuilder seq(ValType::kStr);
    seq.AppendGather(*src, idx.data(), idx.size());
    auto want = seq.Finish();
    for (size_t workers : kParallelWorkerCounts) {
      exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
      auto got = kernels::Gather(*src, idx.data(), idx.size());
      const std::string ctx =
          "str-gather w" + std::to_string(workers) + " n" + std::to_string(n);
      ASSERT_EQ(got->size(), want->size()) << ctx;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got->GetString(i), want->GetString(i)) << ctx << " row " << i;
      }
      // Bit-identical heaps, not just equal views.
      const auto& gs = static_cast<const StrColumn&>(*got);
      const auto& ws = static_cast<const StrColumn&>(*want);
      EXPECT_EQ(gs.heap(), ws.heap()) << ctx;
      EXPECT_EQ(gs.offsets(), ws.offsets()) << ctx;
    }
  }
}

TEST(ParallelKernelTest, PartitionedTableMatchesFlatTableAndChainsAscend) {
  exec::ScopedExecPolicy scoped(TinyMorselPolicy(8));
  Rng rng(99);
  // Above the 128-row cutoff with a sparse domain: partitioned open
  // addressing. Duplicate-heavy so chains cross morsel boundaries.
  std::vector<int64_t> keys(1000);
  for (auto& k : keys) k = rng.UniformInt(-20, 20) * 1000000007LL;
  kernels::PartitionedTable pt(keys.data(), keys.size());
  EXPECT_TRUE(pt.is_partitioned());
  kernels::FlatTable ft(keys);
  for (int64_t probe = -25; probe <= 25; ++probe) {
    const int64_t key = probe * 1000000007LL;
    std::vector<uint32_t> want, got;
    for (uint32_t r = ft.Find(key); r != kernels::FlatTable::kNone; r = ft.Next(r)) {
      want.push_back(r);
    }
    for (uint32_t r = pt.Find(key); r != kernels::PartitionedTable::kNone;
         r = pt.Next(r)) {
      got.push_back(r);
    }
    EXPECT_EQ(got, want) << "key " << key;
    for (size_t i = 1; i < got.size(); ++i) EXPECT_LT(got[i - 1], got[i]);
    EXPECT_EQ(pt.Contains(key), ft.Contains(key));
  }
}

TEST(ParallelKernelTest, PartitionedTableFallsBackToSingleBelowThreshold) {
  exec::ScopedExecPolicy scoped(TinyMorselPolicy(8));
  std::vector<int64_t> keys = {5, 3, 5, 9};  // below min_parallel_rows = 128
  kernels::PartitionedTable t(keys.data(), keys.size());
  EXPECT_FALSE(t.is_partitioned());
  EXPECT_EQ(t.partitions(), 1u);
  std::vector<uint32_t> rows;
  for (uint32_t r = t.Find(5); r != kernels::PartitionedTable::kNone; r = t.Next(r)) {
    rows.push_back(r);
  }
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 2}));
  EXPECT_FALSE(t.Contains(4));
}

TEST(ParallelKernelTest, ParallelOperatorsSpawnNoThreads) {
  // Same contract runtime_test asserts for whole plans: steady-state kernel
  // traffic executes on the shared pool — zero threads created per call.
  exec::Executor::Default().workers();  // force pool construction
  exec::ScopedExecPolicy scoped(TinyMorselPolicy(8));
  Rng rng(7);
  auto b = RandomBat(ValType::kLng, Shape::kDupHeavy, 1000, &rng);
  auto strs = RandomBat(ValType::kStr, Shape::kRandom, 1000, &rng);
  auto build = Reverse(RandomBat(ValType::kLng, Shape::kDupHeavy, 1000, &rng));
  const auto before = exec::Executor::Default().metrics();
  ASSERT_TRUE(Sort(b).ok());
  ASSERT_TRUE(TopN(b, 10, true).ok());
  ASSERT_TRUE(Join(b, build).ok());
  ASSERT_TRUE(Sort(strs).ok());
  const auto after = exec::Executor::Default().metrics();
  EXPECT_EQ(after.threads_created, before.threads_created);
  // (No assertion on tasks_executed: ParallelFor's caller participates, so
  // on a small pool it may drain every morsel before a helper task runs —
  // the helpers can still be queued when the operator returns.)
}

TEST(FlatTableTest, SpanConstructorMatchesVectorConstructor) {
  const std::vector<int64_t> keys = {7, -3, 7, 1000000007LL, -3};
  kernels::FlatTable from_vec(keys);
  kernels::FlatTable from_ptr(keys.data(), keys.size());
  Span<int64_t> span{keys.data(), keys.size()};
  kernels::FlatTable from_span(span);
  for (int64_t k : {int64_t{7}, int64_t{-3}, int64_t{1000000007LL}, int64_t{42}}) {
    EXPECT_EQ(from_ptr.Find(k), from_vec.Find(k));
    EXPECT_EQ(from_span.Find(k), from_vec.Find(k));
  }
  kernels::FlatTable empty;
  EXPECT_EQ(empty.Find(0), kernels::FlatTable::kNone);
  EXPECT_FALSE(empty.Contains(7));
}

TEST_P(ParallelKernelTest, AggregatesMatchSequentialAcrossWorkerCounts) {
  Rng rng(GetParam() * 6700417ULL + 5);
  for (ValType t : {ValType::kInt, ValType::kLng, ValType::kOid, ValType::kDbl}) {
    for (size_t n : kStraddleSizes) {
      auto b = RandomBat(t, Shape::kRandom, n, &rng);
      constexpr size_t kGroups = 17;
      std::vector<int32_t> gid_rows(b->size());
      for (auto& g : gid_rows) {
        g = static_cast<int32_t>(rng.UniformInt(0, kGroups - 1));
      }
      auto gids = Bat::MakeColumn(MakeIntColumn(std::move(gid_rows)));

      // Oracle: the sequential path (workers = 1 forces it).
      exec::ScopedExecPolicy seq(TinyMorselPolicy(1));
      const auto sum_seq = Sum(b);
      const auto avg_seq = Avg(b);
      const auto per_group_seq = SumPerGroup(b, gids, kGroups);
      const auto counts_seq = CountPerGroup(gids, kGroups);

      for (size_t workers : {size_t{2}, size_t{8}}) {
        exec::ScopedExecPolicy par(TinyMorselPolicy(workers));
        const std::string ctx = std::string("par-agg w") + std::to_string(workers) +
                                " n" + std::to_string(n) + " " + ValTypeName(t);
        const auto sum_par = Sum(b);
        ASSERT_EQ(sum_par.ok(), sum_seq.ok()) << ctx;
        if (sum_seq.ok()) {
          if (t == ValType::kDbl) {
            // Morsel partials re-associate the FP sum; tolerance, not bits.
            EXPECT_NEAR(sum_par->AsDouble(), sum_seq->AsDouble(),
                        1e-9 * (1.0 + std::abs(sum_seq->AsDouble())))
                << ctx;
          } else {
            EXPECT_EQ(sum_par->AsInt64(), sum_seq->AsInt64()) << ctx;  // exact
          }
        }
        const auto avg_par = Avg(b);
        ASSERT_EQ(avg_par.ok(), avg_seq.ok()) << ctx;
        if (avg_seq.ok()) {
          EXPECT_NEAR(avg_par->AsDouble(), avg_seq->AsDouble(),
                      1e-9 * (1.0 + std::abs(avg_seq->AsDouble())))
              << ctx;
        }
        const auto per_group_par = SumPerGroup(b, gids, kGroups);
        ASSERT_EQ(per_group_par.ok(), per_group_seq.ok()) << ctx;
        if (per_group_seq.ok()) {
          ASSERT_EQ((*per_group_par)->size(), (*per_group_seq)->size()) << ctx;
          for (size_t g = 0; g < kGroups; ++g) {
            const double want = (*per_group_seq)->tail()->GetDouble(g);
            EXPECT_NEAR((*per_group_par)->tail()->GetDouble(g), want,
                        1e-9 * (1.0 + std::abs(want)))
                << ctx << " group " << g;
          }
        }
        const auto counts_par = CountPerGroup(gids, kGroups);
        ASSERT_TRUE(counts_par.ok() && counts_seq.ok()) << ctx;
        ExpectSameBat(*counts_par, *counts_seq, ctx + " counts");
      }
    }
  }
}

TEST(ParallelKernelTest, GroupedAggregateRejectsOutOfRangeGidsInParallel) {
  exec::ScopedExecPolicy scoped(TinyMorselPolicy(8));
  std::vector<int32_t> gids_rows(1000, 0);
  gids_rows[700] = 99;  // out of range, discovered mid-morsel
  auto values = Bat::MakeColumn(MakeIntColumn(std::vector<int32_t>(1000, 1)));
  auto gids = Bat::MakeColumn(MakeIntColumn(std::move(gids_rows)));
  EXPECT_EQ(SumPerGroup(values, gids, 4).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CountPerGroup(gids, 4).status().code(), StatusCode::kOutOfRange);
}

TEST(ParallelKernelTest, StitchSelVecsPreservesOrderAndAppends) {
  SelVec sel = {7};
  std::vector<SelVec> parts = {{1, 2}, {}, {3}, {4, 5, 6}};
  EXPECT_EQ(kernels::StitchSelVecs(parts, &sel), 6u);
  EXPECT_EQ(sel, (SelVec{7, 1, 2, 3, 4, 5, 6}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelKernelTest, ::testing::Values(1, 2, 3, 5));

// ---- bulk serializer round trips ---------------------------------------------

class BulkSerializeTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkSerializeTest, RoundTripAllLayouts) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  for (ValType t : kAllTypes) {
    for (Shape s : kAllShapes) {
      const std::string ctx =
          std::string("serialize ") + ValTypeName(t) + " " + ShapeName(s);
      // Dense-head BAT.
      auto dense_head = RandomBat(t, s, rng.UniformU64(0, 100), &rng);
      // Materialized-head BAT (reverse puts the typed column at the head).
      auto mat_head = Reverse(dense_head);
      for (const BatPtr& b : {dense_head, mat_head}) {
        const std::string wire = Serialize(*b);
        EXPECT_EQ(wire.size(), EncodedSize(*b)) << ctx;
        auto restored = Deserialize(wire);
        ASSERT_TRUE(restored.ok()) << ctx << ": " << restored.status().ToString();
        ExpectSameBat(*restored, b, ctx);
        EXPECT_EQ((*restored)->HasDenseHead(), b->HasDenseHead()) << ctx;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkSerializeTest, ::testing::Range(0, 6));

TEST(BulkSerializeTest, DenseTailEncodesAsMaterializedOids) {
  // uselect produces a dense tail; the wire format materializes it.
  auto b = Bat::MakeColumn(MakeIntColumn({5, 3, 5}));
  auto u = USelect(b, Value::MakeInt(5));
  ASSERT_TRUE(u.ok());
  ASSERT_EQ((*u)->tail()->kind(), ColumnKind::kDense);
  const std::string wire = Serialize(**u);
  EXPECT_EQ(wire.size(), EncodedSize(**u));
  auto restored = Deserialize(wire);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameBat(*restored, *u, "dense tail");
}

TEST(BulkSerializeTest, SerializeIntoReusesFrameCapacity) {
  auto b = Bat::MakeColumn(MakeLngColumn(std::vector<int64_t>(1000, 42)));
  std::string frame;
  SerializeInto(*b, &frame);
  const size_t size1 = frame.size();
  const void* data1 = frame.data();
  SerializeInto(*b, &frame);  // same BAT: no reallocation on reuse
  EXPECT_EQ(frame.size(), size1);
  EXPECT_EQ(frame.data(), data1);
  auto restored = Deserialize(frame);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->size(), 1000u);
}

TEST(BulkSerializeTest, CorruptionStillDetected) {
  auto b = Bat::MakeColumn(MakeDblColumn({1.5, -2.5, 3.5}));
  std::string wire = Serialize(*b);
  wire[wire.size() / 2] ^= 0x5A;
  EXPECT_EQ(Deserialize(wire).status().code(), StatusCode::kCorruption);
}

// ---- encoded-column differential sweeps --------------------------------------
//
// Ring-delivered fragments arrive encoded: low-cardinality strings decode to
// dictionary columns (operators run on the codes), sorted integers decode
// from FOR with sortedness pre-seeded. Every operator that grew an encoded
// fast path is re-run here against the scalar reference evaluated on the
// plain twin of the same data — across worker counts and with the SIMD
// dispatch forced off, so the scalar fallbacks get the same sweep.

/// Round trips `b` through the v2 wire format and returns the decoded BAT
/// (dictionary/FOR columns materialize as their encoded in-memory forms).
BatPtr EncodeViaWire(const BatPtr& b) {
  enc::ScopedWireCompression on(true);
  auto restored = Deserialize(Serialize(*b));
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  return *restored;
}

class EncodedColumnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodedColumnTest, DictSelectSortTopNMatchScalar) {
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    for (bool force_scalar : {false, true}) {
      enc::ScopedForceScalar forced(force_scalar);
      Rng rng(GetParam() * 48271ULL + workers * 2 + force_scalar);
      for (size_t n : kStraddleSizes) {
        const std::string ctx = std::string("dict w") + std::to_string(workers) +
                                (force_scalar ? " scalar" : " simd") + " n" +
                                std::to_string(n);
        auto plain = RandomBat(ValType::kStr, Shape::kDupHeavy, n, &rng);
        auto encoded = EncodeViaWire(plain);
        // Dup-heavy strings (5 distinct values) always clear the dict bar.
        ASSERT_EQ(encoded->tail()->kind(), ColumnKind::kDict) << ctx;
        for (const char* probe : {"s2", "zzz"}) {
          ExpectSameResult(Select(encoded, Value::MakeStr(probe)),
                           scalar::Select(plain, Value::MakeStr(probe)),
                           ctx + " eq " + probe);
        }
        // In-dict, straddling, and inverted (empty) code ranges.
        ExpectSameResult(SelectRange(encoded, Value::MakeStr("s1"), Value::MakeStr("s3")),
                         scalar::SelectRange(plain, Value::MakeStr("s1"), Value::MakeStr("s3")),
                         ctx + " range");
        ExpectSameResult(SelectRange(encoded, Value::MakeStr("a"), Value::MakeStr("s2")),
                         scalar::SelectRange(plain, Value::MakeStr("a"), Value::MakeStr("s2")),
                         ctx + " range-straddle");
        ExpectSameResult(SelectRange(encoded, Value::MakeStr("s3"), Value::MakeStr("s1")),
                         scalar::SelectRange(plain, Value::MakeStr("s3"), Value::MakeStr("s1")),
                         ctx + " range-inverted");
        // Order-by on codes (sorted dict: code order == lexicographic order).
        ExpectSameResult(Sort(encoded), scalar::Sort(plain), ctx + " sort");
        for (bool desc : {false, true}) {
          ExpectSameResult(TopN(encoded, std::min(n, size_t{64}), desc),
                           scalar::TopN(plain, std::min(n, size_t{64}), desc),
                           ctx + (desc ? " topn-desc" : " topn"));
        }
        // GroupId has no scalar oracle; the plain-column operator is one.
        ExpectSameResult(GroupId(encoded), GroupId(plain), ctx + " groupid");
      }
    }
  }
}

TEST_P(EncodedColumnTest, DictJoinsMatchScalar) {
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    for (bool force_scalar : {false, true}) {
      enc::ScopedForceScalar forced(force_scalar);
      Rng rng(GetParam() * 69621ULL + workers * 2 + force_scalar);
      for (size_t n : kStraddleSizes) {
        const std::string ctx = std::string("dict-join w") + std::to_string(workers) +
                                (force_scalar ? " scalar" : " simd") + " n" +
                                std::to_string(n);
        auto plain = RandomBat(ValType::kStr, Shape::kDupHeavy, n, &rng);
        auto other = RandomBat(ValType::kStr, Shape::kDupHeavy,
                               1 + rng.UniformU64(0, 150), &rng);
        auto encoded = EncodeViaWire(plain);
        auto other_enc = EncodeViaWire(other);
        // Same dictionary on both sides: probe codes map 1:1, no lookups.
        ExpectSameResult(Join(encoded, Reverse(encoded)),
                         scalar::Join(plain, Reverse(plain)), ctx + " same-dict");
        // Distinct dictionaries: probe values resolve via binary search.
        ExpectSameResult(Join(encoded, Reverse(other_enc)),
                         scalar::Join(plain, Reverse(other)), ctx + " cross-dict");
        // Mixed: plain probe against a dictionary build side, and vice versa.
        ExpectSameResult(Join(plain, Reverse(other_enc)),
                         scalar::Join(plain, Reverse(other)), ctx + " plain-probe");
        ExpectSameResult(Join(encoded, Reverse(other)),
                         scalar::Join(plain, Reverse(other)), ctx + " plain-build");
        // Membership kernels ride the virtual string accessor.
        ExpectSameResult(SemiJoin(Reverse(encoded), Reverse(other_enc)),
                         scalar::SemiJoin(Reverse(plain), Reverse(other)),
                         ctx + " semijoin");
        ExpectSameResult(KDiff(Reverse(encoded), Reverse(other_enc)),
                         scalar::KDiff(Reverse(plain), Reverse(other)), ctx + " kdiff");
      }
    }
  }
}

TEST_P(EncodedColumnTest, ForDecodedColumnsMatchScalar) {
  // Sorted integer tails cross the wire as FOR; they decode to plain fixed
  // columns with sortedness pre-seeded, so the merge paths engage without a
  // rescan and must still agree with the scalar reference.
  for (size_t workers : kParallelWorkerCounts) {
    exec::ScopedExecPolicy scoped(TinyMorselPolicy(workers));
    for (bool force_scalar : {false, true}) {
      enc::ScopedForceScalar forced(force_scalar);
      Rng rng(GetParam() * 14142ULL + workers * 2 + force_scalar);
      for (ValType t : {ValType::kOid, ValType::kInt, ValType::kLng, ValType::kDate}) {
        for (size_t n : kStraddleSizes) {
          const std::string ctx = std::string("for w") + std::to_string(workers) +
                                  (force_scalar ? " scalar" : " simd") + " " +
                                  ValTypeName(t) + " n" + std::to_string(n);
          auto plain = RandomBat(t, Shape::kSorted, n, &rng);
          ASSERT_TRUE(plain->tail()->IsSorted());  // memoize: the FOR trigger
          auto encoded = EncodeViaWire(plain);
          EXPECT_TRUE(encoded->tail()->IsSorted()) << ctx;
          ExpectSameResult(Select(encoded, Value::MakeLng(2)),
                           scalar::Select(plain, Value::MakeLng(2)), ctx + " eq");
          ExpectSameResult(SelectRange(encoded, Value::MakeLng(-5), Value::MakeLng(5)),
                           scalar::SelectRange(plain, Value::MakeLng(-5), Value::MakeLng(5)),
                           ctx + " range");
          auto r = Reverse(RandomBat(t, Shape::kRandom, 1 + rng.UniformU64(0, 150), &rng));
          ExpectSameResult(Join(encoded, r), scalar::Join(plain, r), ctx + " join");
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodedColumnTest, ::testing::Values(1, 2));

}  // namespace
}  // namespace dcy::bat
