// Unit tests for the workload generators (§5.1-§5.4 parameters).
#include <gtest/gtest.h>

#include <set>

#include "workload/dataset.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace dcy::workload {
namespace {

TEST(DatasetTest, UniformDatasetMatchesPaperSetup) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(1000, 1 * kMB, 10 * kMB, 10, &rng);
  EXPECT_EQ(ds.num_bats(), 1000u);
  // "8 GB composed of 1000 BATs with sizes varying from 1 MB to 10 MB":
  // the expected total is 5.5 GB * ~1000; allow the statistical spread.
  EXPECT_GT(ds.total_bytes(), 5 * kGB);
  EXPECT_LT(ds.total_bytes(), 6 * kGB);
  for (const auto& b : ds.bats) {
    EXPECT_GE(b.size, 1 * kMB);
    EXPECT_LE(b.size, 10 * kMB);
    EXPECT_LT(b.owner, 10u);
  }
  // "about 0.8 GB of data per node": every node owns something substantial.
  std::vector<uint64_t> per_node(10, 0);
  for (const auto& b : ds.bats) per_node[b.owner] += b.size;
  for (uint64_t bytes : per_node) EXPECT_GT(bytes, 300 * kMB);
}

TEST(UniformWorkloadTest, RateAndShape) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(100, kMB, kMB, 4, &rng);
  UniformWorkloadOptions opts;
  opts.rate_per_node = 80;
  opts.duration = 10 * kSecond;
  opts.seed = 2;
  auto per_node = GenerateUniformWorkload(opts, ds, 4);
  ASSERT_EQ(per_node.size(), 4u);
  std::set<core::QueryId> ids;
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(per_node[n].size(), 800u);  // 80 q/s x 10 s
    for (const auto& q : per_node[n]) {
      ids.insert(q.id);
      EXPECT_LT(q.arrival, opts.duration);
      EXPECT_GE(q.steps.size(), 1u);
      EXPECT_LE(q.steps.size(), 5u);
      std::set<core::BatId> bats;
      for (const auto& s : q.steps) {
        bats.insert(s.bat);
        EXPECT_NE(ds.owner_of(s.bat), n) << "workload must touch remote BATs only";
        EXPECT_GE(s.cpu_after, FromMillis(100));
        EXPECT_LE(s.cpu_after, FromMillis(200));
      }
      EXPECT_EQ(bats.size(), q.steps.size()) << "duplicate BATs in one query";
    }
  }
  EXPECT_EQ(ids.size(), 3200u);  // globally unique
}

TEST(UniformWorkloadTest, DeterministicForSeed) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(50, kMB, kMB, 2, &rng);
  UniformWorkloadOptions opts;
  opts.rate_per_node = 10;
  opts.duration = kSecond;
  auto a = GenerateUniformWorkload(opts, ds, 2);
  auto b = GenerateUniformWorkload(opts, ds, 2);
  ASSERT_EQ(a[0].size(), b[0].size());
  for (size_t i = 0; i < a[0].size(); ++i) {
    EXPECT_EQ(a[0][i].steps.size(), b[0][i].steps.size());
    for (size_t s = 0; s < a[0][i].steps.size(); ++s) {
      EXPECT_EQ(a[0][i].steps[s].bat, b[0][i].steps[s].bat);
    }
  }
}

TEST(GaussianWorkloadTest, AccessConcentratesAroundMean) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(1000, kMB, kMB, 10, &rng);
  GaussianWorkloadOptions opts;
  opts.rate_per_node = 40;
  opts.duration = 10 * kSecond;
  opts.seed = 3;
  auto per_node = GenerateGaussianWorkload(opts, ds, 10);
  uint64_t in_vogue = 0, far_tail = 0, total = 0;
  for (const auto& node : per_node) {
    for (const auto& q : node) {
      for (const auto& s : q.steps) {
        ++total;
        // Paper: the in-vogue group is BAT ids ~350..600 (within ~3 sigma).
        if (s.bat >= 350 && s.bat <= 650) ++in_vogue;
        if (s.bat < 200 || s.bat > 800) ++far_tail;
      }
    }
  }
  EXPECT_GT(total, 1000u);
  // ~90% Gaussian bulk plus the ~10% uniform background the paper's
  // Fig. 9 implies ("less than 20 touches" for the unpopular BATs).
  const double in_vogue_frac = static_cast<double>(in_vogue) / static_cast<double>(total);
  EXPECT_GT(in_vogue_frac, 0.88);
  EXPECT_LT(in_vogue_frac, 0.97);
  EXPECT_GT(far_tail, 0u);  // the background reaches the whole id range
}

TEST(GaussianWorkloadTest, PureGaussianWithoutBackground) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(1000, kMB, kMB, 10, &rng);
  GaussianWorkloadOptions opts;
  opts.rate_per_node = 40;
  opts.duration = 10 * kSecond;
  opts.background_uniform_fraction = 0.0;
  opts.seed = 3;
  auto per_node = GenerateGaussianWorkload(opts, ds, 10);
  uint64_t in_vogue = 0, total = 0;
  for (const auto& node : per_node) {
    for (const auto& q : node) {
      for (const auto& s : q.steps) {
        ++total;
        if (s.bat >= 350 && s.bat <= 650) ++in_vogue;
      }
    }
  }
  EXPECT_GT(static_cast<double>(in_vogue) / static_cast<double>(total), 0.99);
}

TEST(GaussianWorkloadTest, TotalRateSpreadsOverNodes) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(1000, kMB, kMB, 5, &rng);
  GaussianWorkloadOptions opts;
  opts.total_rate = 100;  // pulsating-ring mode: constant system load
  opts.duration = 10 * kSecond;
  auto per_node = GenerateGaussianWorkload(opts, ds, 5);
  uint64_t total = 0;
  for (const auto& node : per_node) total += node.size();
  EXPECT_EQ(total, 1000u);  // 100 q/s x 10 s regardless of node count
}

TEST(SkewedWorkloadTest, Table3Parameters) {
  SkewedWorkloadOptions opts;
  ASSERT_EQ(opts.subs.size(), 4u);
  EXPECT_EQ(opts.subs[0].skew, 3u);
  EXPECT_EQ(opts.subs[1].skew, 5u);
  EXPECT_EQ(opts.subs[2].skew, 7u);
  EXPECT_EQ(opts.subs[3].skew, 9u);
  EXPECT_EQ(opts.subs[1].start, 15 * kSecond);
  EXPECT_EQ(opts.subs[3].end, FromMillis(97500));
  EXPECT_DOUBLE_EQ(opts.subs[3].total_rate, 500.0);
}

TEST(SkewedWorkloadTest, QueriesRespectSubsets) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(1000, kMB, kMB, 10, &rng);
  SkewedWorkloadOptions opts;
  opts.seed = 4;
  auto per_node = GenerateSkewedWorkload(opts, ds, 10);
  uint64_t per_tag[5] = {0, 0, 0, 0, 0};
  for (uint32_t n = 0; n < 10; ++n) {
    for (const auto& q : per_node[n]) {
      ASSERT_GE(q.tag, 1u);
      ASSERT_LE(q.tag, 4u);
      ++per_tag[q.tag];
      const uint32_t skew = opts.subs[q.tag - 1].skew;
      for (const auto& s : q.steps) {
        EXPECT_EQ(s.bat % skew, 0u) << "SW" << q.tag << " escaped its subset D_i";
      }
      EXPECT_GE(q.arrival, opts.subs[q.tag - 1].start);
      EXPECT_LT(q.arrival, opts.subs[q.tag - 1].end);
    }
  }
  // Table 3: 30 s x 200/s, 30 s x 300/s, 30 s x 400/s, 30 s x 500/s.
  EXPECT_EQ(per_tag[1], 6000u);
  EXPECT_EQ(per_tag[2], 9000u);
  EXPECT_EQ(per_tag[3], 12000u);
  EXPECT_EQ(per_tag[4], 15000u);
}

TEST(SkewedWorkloadTest, DisjointHotSetTags) {
  SkewedWorkloadOptions opts;
  // 15 = 3*5 is shared between SW1 and SW2: no disjoint tag.
  EXPECT_EQ(SkewedBatTag(opts, 15), 0u);
  // 3 is divisible only by 3 -> DH1.
  EXPECT_EQ(SkewedBatTag(opts, 3), 1u);
  EXPECT_EQ(SkewedBatTag(opts, 25), 2u);   // 5^2: only SW2
  EXPECT_EQ(SkewedBatTag(opts, 49), 3u);   // 7^2: only SW3
  // 9 is divisible by 9 and necessarily by 3: the paper's "DH4 contained in
  // DH1" case -> tag 4.
  EXPECT_EQ(SkewedBatTag(opts, 9), 4u);
  EXPECT_EQ(SkewedBatTag(opts, 99), 4u);   // 9*11
  EXPECT_EQ(SkewedBatTag(opts, 45), 0u);   // 9*5: shared with SW2
  EXPECT_EQ(SkewedBatTag(opts, 4), 0u);    // in no subset
  EXPECT_EQ(SkewedBatTag(opts, 0), 0u);    // divisible by everything: shared
}

TEST(SkewedWorkloadTest, ArrivalsSortedPerNode) {
  Rng rng(1);
  Dataset ds = MakeUniformDataset(100, kMB, kMB, 4, &rng);
  SkewedWorkloadOptions opts;
  auto per_node = GenerateSkewedWorkload(opts, ds, 4);
  for (const auto& node : per_node) {
    for (size_t i = 1; i < node.size(); ++i) {
      EXPECT_LE(node[i - 1].arrival, node[i].arrival);
    }
  }
}

TEST(TpchWorkloadTest, TemplatesCoverAll22Queries) {
  const auto& templates = TpchTemplates();
  ASSERT_EQ(templates.size(), 22u);
  std::set<std::string> names;
  for (const auto& t : templates) {
    names.insert(t.name);
    EXPECT_FALSE(t.columns.empty());
    EXPECT_GT(t.relative_cost, 0.0);
  }
  EXPECT_EQ(names.size(), 22u);
}

TEST(TpchWorkloadTest, TemplatesReferenceKnownColumns) {
  std::set<std::string> catalog;
  for (const auto& c : TpchColumns()) catalog.insert(c.name);
  for (const auto& t : TpchTemplates()) {
    for (const auto& col : t.columns) {
      EXPECT_TRUE(catalog.count(col)) << t.name << " references unknown " << col;
    }
  }
}

TEST(TpchWorkloadTest, PartitioningRespectsCap) {
  TpchOptions opts;
  opts.max_bat_bytes = 50 * kMB;
  TpchWorkload wl = GenerateTpchWorkload(opts, 4);
  for (const auto& b : wl.dataset.bats) {
    EXPECT_LE(b.size, opts.max_bat_bytes);
    EXPECT_GT(b.size, 0u);
  }
  // SF-5 lineitem columns (240 MB) must split into multiple partitions.
  EXPECT_GT(wl.dataset.num_bats(), TpchColumns().size());
}

TEST(TpchWorkloadTest, CalibrationHitsTargetMeanCpu) {
  TpchOptions opts;
  opts.queries_per_node = 2000;
  TpchWorkload wl = GenerateTpchWorkload(opts, 1);
  const double mean_cpu = wl.useful_cpu_seconds / 2000.0;
  // The Gaussian rank pick is stochastic; stay within 15% of the target.
  EXPECT_NEAR(mean_cpu, opts.target_mean_cpu_sec, 0.15 * opts.target_mean_cpu_sec);
}

TEST(TpchWorkloadTest, RegistrationRateMatchesPaper) {
  TpchOptions opts;
  opts.queries_per_node = 1200;
  opts.registration_rate = 8.0;
  TpchWorkload wl = GenerateTpchWorkload(opts, 2);
  ASSERT_EQ(wl.queries.size(), 2u);
  EXPECT_EQ(wl.queries[0].size(), 1200u);
  // "it takes 150 seconds to register all queries".
  EXPECT_EQ(wl.queries[0].back().arrival, FromSeconds(1199.0 / 8.0));
}

TEST(TpchWorkloadTest, QueryCpuSplitAcrossSteps) {
  TpchOptions opts;
  opts.queries_per_node = 50;
  TpchWorkload wl = GenerateTpchWorkload(opts, 1);
  for (const auto& q : wl.queries[0]) {
    EXPECT_GT(q.cpu_before, 0);
    SimTime total = q.cpu_before;
    for (const auto& s : q.steps) {
      EXPECT_GE(s.cpu_after, 0);
      total += s.cpu_after;
    }
    EXPECT_GT(total, 0);
  }
}

TEST(TpchWorkloadTest, InflationScalesStepTimesNotUsefulWork) {
  TpchOptions base;
  base.queries_per_node = 100;
  TpchOptions inflated = base;
  inflated.cpu_inflation = 2.0;
  TpchWorkload a = GenerateTpchWorkload(base, 1);
  TpchWorkload b = GenerateTpchWorkload(inflated, 1);
  EXPECT_NEAR(a.useful_cpu_seconds, b.useful_cpu_seconds, 1e-6);
  SimTime ta = 0, tb = 0;
  for (const auto& q : a.queries[0]) {
    ta += q.cpu_before;
    for (const auto& s : q.steps) ta += s.cpu_after;
  }
  for (const auto& q : b.queries[0]) {
    tb += q.cpu_before;
    for (const auto& s : q.steps) tb += s.cpu_after;
  }
  EXPECT_NEAR(static_cast<double>(tb) / static_cast<double>(ta), 2.0, 0.01);
}

}  // namespace
}  // namespace dcy::workload
