// End-to-end tests of the live multi-threaded ring: real MAL plans rewritten
// by the DcOptimizer, real BAT payloads circulating over the RDMA-emulating
// channels, results identical to single-node execution.
//
// These tests intentionally keep driving the deprecated ExecuteMal wrapper:
// it must stay behaviour-identical while routing through the session path
// (plan cache + admission queue). The session API itself is covered in
// session_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bat/operators.h"
#include "exec/executor.h"
#include "runtime/ring_cluster.h"

namespace dcy::runtime {
namespace {

constexpr const char* kTable1Plan = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

RingCluster::Options FastOptions(uint32_t nodes = 3) {
  RingCluster::Options opts;
  opts.num_nodes = nodes;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(10);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  opts.node.min_resend_timeout = FromMillis(20);
  return opts;
}

class RuntimeRing : public ::testing::Test {
 protected:
  void SetUpCluster(RingCluster::Options opts) {
    cluster = std::make_unique<RingCluster>(opts);
    // sys.t(id) on node 1, sys.c(t_id) on node 2: both remote for node 0.
    ASSERT_TRUE(cluster
                    ->LoadBat(1 % opts.num_nodes, "sys.t.id",
                              bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4})))
                    .ok());
    ASSERT_TRUE(cluster
                    ->LoadBat(2 % opts.num_nodes, "sys.c.t_id",
                              bat::Bat::MakeColumn(bat::MakeIntColumn({2, 3, 3, 5})))
                    .ok());
    cluster->Start();
  }

  void ExpectTable1Result(const QueryOutcome& outcome) {
    EXPECT_NE(outcome.printed.find("sys.c.t_id"), std::string::npos);
    // Rows {2, 3, 3} in some order.
    EXPECT_NE(outcome.printed.find("2"), std::string::npos);
    EXPECT_NE(outcome.printed.find("3"), std::string::npos);
    EXPECT_EQ(outcome.printed.find("5"), std::string::npos);
  }

  std::unique_ptr<RingCluster> cluster;
};

TEST_F(RuntimeRing, ExecutesPaperPlanOverTheRing) {
  SetUpCluster(FastOptions());
  auto outcome = cluster->ExecuteMal(0, kTable1Plan, /*optimize=*/true);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ExpectTable1Result(*outcome);

  // Both fragments were remote: the ring must actually have moved data.
  EXPECT_GT(cluster->TotalDataBytesMoved(), 0u);
  const auto m0 = cluster->NodeMetrics(0);
  EXPECT_GE(m0.requests_registered, 2u);
  EXPECT_GE(m0.deliveries + m0.pins_local_hit, 2u);
}

TEST_F(RuntimeRing, LocalExecutionOnOwnerNeedsNoRing) {
  SetUpCluster(FastOptions());
  // Node 1 owns sys.t.id; a plan touching only that BAT pins locally.
  auto outcome = cluster->ExecuteMal(1, R"(
X1 := sql.bind("sys","t","id",0);
X2 := aggr.sum(X1);
)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(std::get<int64_t>(outcome->result), 10);  // 1+2+3+4
  EXPECT_EQ(cluster->NodeMetrics(1).pins_blocked, 0u);
}

TEST_F(RuntimeRing, UnoptimizedPlanOnOwnerUsesSqlBindDirectly) {
  SetUpCluster(FastOptions());
  auto outcome = cluster->ExecuteMal(1, R"(
X1 := sql.bind("sys","t","id",0);
X2 := aggr.count(X1);
)", /*optimize=*/false);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(std::get<int64_t>(outcome->result), 4);
}

TEST_F(RuntimeRing, EveryNodeCanRunTheSameQuery) {
  SetUpCluster(FastOptions(4));
  for (core::NodeId n = 0; n < 4; ++n) {
    auto outcome = cluster->ExecuteMal(n, kTable1Plan);
    ASSERT_TRUE(outcome.ok()) << "node " << n << ": " << outcome.status().ToString();
    ExpectTable1Result(*outcome);
  }
}

TEST_F(RuntimeRing, ConcurrentQueriesFromMultipleNodes) {
  SetUpCluster(FastOptions(4));
  constexpr int kQueriesPerNode = 5;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (core::NodeId n = 0; n < 4; ++n) {
    clients.emplace_back([&, n] {
      for (int q = 0; q < kQueriesPerNode; ++q) {
        auto outcome = cluster->ExecuteMal(n, kTable1Plan);
        if (!outcome.ok() ||
            outcome->printed.find("sys.c.t_id") == std::string::npos) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RuntimeRing, SteadyStateQueryTrafficCreatesZeroThreads) {
  SetUpCluster(FastOptions());
  // Warm-up: the first query may lazily construct the shared executor (its
  // fixed pool spawns exactly once per process).
  ASSERT_TRUE(cluster->ExecuteMal(0, kTable1Plan).ok());
  const auto warm = exec::Executor::Default().metrics();

  // Concurrent load from every node: plans run as tasks on the shared pool,
  // not on per-query thread pools.
  constexpr int kQueriesPerNode = 4;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (core::NodeId n = 0; n < 3; ++n) {
    clients.emplace_back([&, n] {
      for (int q = 0; q < kQueriesPerNode; ++q) {
        if (!cluster->ExecuteMal(n, kTable1Plan).ok()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  const auto after = exec::Executor::Default().metrics();
  EXPECT_EQ(after.threads_created, warm.threads_created)
      << "steady-state queries must not spawn threads";
  EXPECT_GT(after.tasks_executed, warm.tasks_executed)
      << "plans should have executed as shared-pool tasks";
}

TEST_F(RuntimeRing, ExecPolicyRidesOptionsIntoTheProcessPolicy) {
  // RAII restore: Start() overwrites the process policy below, and an early
  // ASSERT return must not leak it into later tests.
  exec::ScopedExecPolicy restore(exec::GetExecPolicy());
  auto opts = FastOptions();
  opts.exec_policy.workers = 2;
  opts.exec_policy.morsel_rows = 4096;
  opts.exec_policy.min_parallel_rows = 8192;
  SetUpCluster(opts);
  const auto policy = exec::GetExecPolicy();
  EXPECT_EQ(policy.workers, 2u);
  EXPECT_EQ(policy.morsel_rows, 4096u);
  EXPECT_EQ(policy.min_parallel_rows, 8192u);
  // Queries still work under the custom policy.
  auto outcome = cluster->ExecuteMal(0, kTable1Plan);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ExpectTable1Result(*outcome);
}

TEST_F(RuntimeRing, MissingFragmentFailsTheQuery) {
  SetUpCluster(FastOptions());
  auto outcome = cluster->ExecuteMal(0, R"(
X1 := sql.bind("sys","ghost","col",0);
X2 := aggr.count(X1);
)");
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotFound());
}

TEST_F(RuntimeRing, ResultsMatchAcrossTransferModes) {
  for (auto mode : {rdma::TransferMode::kZeroCopy, rdma::TransferMode::kNicOffload,
                    rdma::TransferMode::kLegacy}) {
    auto opts = FastOptions();
    opts.mode = mode;
    SetUpCluster(opts);
    auto outcome = cluster->ExecuteMal(0, kTable1Plan);
    ASSERT_TRUE(outcome.ok())
        << rdma::TransferModeName(mode) << ": " << outcome.status().ToString();
    ExpectTable1Result(*outcome);
    cluster->Stop();
  }
}

TEST_F(RuntimeRing, RepeatedQueriesReuseTheHotSet) {
  SetUpCluster(FastOptions());
  ASSERT_TRUE(cluster->ExecuteMal(0, kTable1Plan).ok());
  const auto first = cluster->NodeMetrics(1);  // owner of sys.t.id
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cluster->ExecuteMal(0, kTable1Plan).ok());
  const auto later = cluster->NodeMetrics(1);
  // The fragment stays hot between queries: few (if any) additional loads.
  EXPECT_LE(later.bats_loaded - first.bats_loaded, 3u);
}

}  // namespace
}  // namespace dcy::runtime
