// Tests for the RDMA-emulating channel: ordering, blocking, close
// semantics, and the per-mode copy cost model behind Figure 1.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rdma/channel.h"

namespace dcy::rdma {
namespace {

Channel::Options Opts(TransferMode mode) {
  Channel::Options o;
  o.mode = mode;
  o.capacity_bytes = 1 << 20;
  o.segment_bytes = 1024;
  return o;
}

TEST(ChannelTest, InOrderDelivery) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  for (int i = 0; i < 10; ++i) {
    ch.Send(static_cast<uint32_t>(i), MakeBuffer(std::to_string(i)));
  }
  for (int i = 0; i < 10; ++i) {
    auto m = ch.TryReceive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->opcode, static_cast<uint32_t>(i));
    EXPECT_EQ(*m->payload, std::to_string(i));
  }
  EXPECT_FALSE(ch.TryReceive().has_value());
}

TEST(ChannelTest, MetaTravelsWithPayload) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  ch.Send(7, "header-bytes", MakeBuffer("bulk"));
  auto m = ch.Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->meta, "header-bytes");
  EXPECT_EQ(*m->payload, "bulk");
}

TEST(ChannelTest, ZeroCopySharesTheBuffer) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  Buffer original = MakeBuffer(std::string(4096, 'x'));
  ch.Send(1, original);
  auto m = ch.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get(), original.get());  // same registered region
  EXPECT_EQ(ch.stats().bytes_copied.load(), 0u);
}

TEST(ChannelTest, NicOffloadCopiesOnce) {
  Channel ch(Opts(TransferMode::kNicOffload));
  Buffer original = MakeBuffer(std::string(4096, 'x'));
  ch.Send(1, original);
  auto m = ch.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_NE(m->payload.get(), original.get());
  EXPECT_EQ(*m->payload, *original);
  EXPECT_EQ(ch.stats().bytes_copied.load(), 4096u);
}

TEST(ChannelTest, LegacyCopiesTwiceAndYields) {
  Channel ch(Opts(TransferMode::kLegacy));
  Buffer original = MakeBuffer(std::string(4096, 'x'));
  ch.Send(1, original);
  auto m = ch.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->payload, *original);
  EXPECT_EQ(ch.stats().bytes_copied.load(), 2u * 4096u);
  EXPECT_EQ(ch.stats().yields.load(), 4u);  // 4096 / 1024 segments
}

TEST(ChannelTest, QueuedBytesTrackOccupancy) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  ch.Send(1, MakeBuffer(std::string(100, 'a')));
  ch.Send(1, MakeBuffer(std::string(50, 'b')));
  EXPECT_EQ(ch.queued_bytes(), 150u);
  ch.TryReceive();
  EXPECT_EQ(ch.queued_bytes(), 50u);
}

TEST(ChannelTest, ReceiveBlocksUntilSend) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Send(42, MakeBuffer("late"));
  });
  auto m = ch.Receive();  // blocks
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->opcode, 42u);
}

TEST(ChannelTest, CloseWakesReceivers) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Close();
  });
  auto m = ch.Receive();
  closer.join();
  EXPECT_FALSE(m.has_value());
  EXPECT_FALSE(ch.Send(1, MakeBuffer("after close")));
}

TEST(ChannelTest, BackpressureBlocksSender) {
  auto opts = Opts(TransferMode::kZeroCopy);
  opts.capacity_bytes = 100;
  Channel ch(opts);
  ch.Send(1, MakeBuffer(std::string(100, 'x')));  // fills the channel
  std::atomic<bool> second_sent{false};
  std::thread sender([&] {
    ch.Send(2, MakeBuffer(std::string(100, 'y')));  // must wait
    second_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  ch.TryReceive();  // frees capacity
  sender.join();
  EXPECT_TRUE(second_sent.load());
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Send(static_cast<uint32_t>(p), MakeBuffer("m"));
      }
    });
  }
  int received = 0;
  while (received < 4 * kPerProducer) {
    if (ch.Receive().has_value()) ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.stats().messages.load(), 800u);
}

}  // namespace
}  // namespace dcy::rdma
