// Tests for the RDMA-emulating channel: ordering, blocking, close
// semantics, and the per-mode copy cost model behind Figure 1.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rdma/channel.h"

namespace dcy::rdma {
namespace {

Channel::Options Opts(TransferMode mode) {
  Channel::Options o;
  o.mode = mode;
  o.capacity_bytes = 1 << 20;
  o.segment_bytes = 1024;
  return o;
}

TEST(ChannelTest, InOrderDelivery) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  for (int i = 0; i < 10; ++i) {
    ch.Send(static_cast<uint32_t>(i), MakeBuffer(std::to_string(i)));
  }
  for (int i = 0; i < 10; ++i) {
    auto m = ch.TryReceive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->opcode, static_cast<uint32_t>(i));
    EXPECT_EQ(*m->payload, std::to_string(i));
  }
  EXPECT_FALSE(ch.TryReceive().has_value());
}

TEST(ChannelTest, MetaTravelsWithPayload) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  ch.Send(7, MetaBlob("header-bytes"), MakeBuffer("bulk"));
  auto m = ch.Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->meta, "header-bytes");
  EXPECT_EQ(*m->payload, "bulk");
}

TEST(ChannelTest, ZeroCopySharesTheBuffer) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  Buffer original = MakeBuffer(std::string(4096, 'x'));
  ch.Send(1, original);
  auto m = ch.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get(), original.get());  // same registered region
  EXPECT_EQ(ch.stats().bytes_copied.load(), 0u);
}

TEST(ChannelTest, NicOffloadCopiesOnce) {
  Channel ch(Opts(TransferMode::kNicOffload));
  Buffer original = MakeBuffer(std::string(4096, 'x'));
  ch.Send(1, original);
  auto m = ch.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_NE(m->payload.get(), original.get());
  EXPECT_EQ(*m->payload, *original);
  EXPECT_EQ(ch.stats().bytes_copied.load(), 4096u);
}

TEST(ChannelTest, LegacyCopiesTwiceAndYields) {
  Channel ch(Opts(TransferMode::kLegacy));
  Buffer original = MakeBuffer(std::string(4096, 'x'));
  ch.Send(1, original);
  auto m = ch.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->payload, *original);
  EXPECT_EQ(ch.stats().bytes_copied.load(), 2u * 4096u);
  EXPECT_EQ(ch.stats().yields.load(), 4u);  // 4096 / 1024 segments
}

TEST(ChannelTest, QueuedBytesTrackOccupancy) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  ch.Send(1, MakeBuffer(std::string(100, 'a')));
  ch.Send(1, MakeBuffer(std::string(50, 'b')));
  EXPECT_EQ(ch.queued_bytes(), 150u);
  ch.TryReceive();
  EXPECT_EQ(ch.queued_bytes(), 50u);
}

TEST(ChannelTest, ReceiveBlocksUntilSend) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Send(42, MakeBuffer("late"));
  });
  auto m = ch.Receive();  // blocks
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->opcode, 42u);
}

TEST(ChannelTest, CloseWakesReceivers) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Close();
  });
  auto m = ch.Receive();
  closer.join();
  EXPECT_FALSE(m.has_value());
  EXPECT_FALSE(ch.Send(1, MakeBuffer("after close")));
}

TEST(ChannelTest, BackpressureBlocksSender) {
  auto opts = Opts(TransferMode::kZeroCopy);
  opts.capacity_bytes = 100;
  Channel ch(opts);
  ch.Send(1, MakeBuffer(std::string(100, 'x')));  // fills the channel
  std::atomic<bool> second_sent{false};
  std::thread sender([&] {
    ch.Send(2, MakeBuffer(std::string(100, 'y')));  // must wait
    second_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  ch.TryReceive();  // frees capacity
  sender.join();
  EXPECT_TRUE(second_sent.load());
}

TEST(BufferPoolTest, ReusesFramesAndClearsThem) {
  BufferPool pool(4);
  auto f1 = pool.Acquire(64);
  std::string* raw = f1.get();
  f1->assign("hello");
  f1.reset();  // parks the frame in the freelist
  EXPECT_EQ(pool.idle_frames(), 1u);
  auto f2 = pool.Acquire();
  EXPECT_EQ(f2.get(), raw);  // same storage handed back out
  EXPECT_TRUE(f2->empty());  // cleared on acquire
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST(BufferPoolTest, FreelistIsBounded) {
  BufferPool pool(1);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  EXPECT_EQ(pool.allocations(), 2u);
  a.reset();
  b.reset();
  EXPECT_EQ(pool.idle_frames(), 1u);  // surplus frame freed, not parked
}

TEST(BufferPoolTest, OversizedFramesAreNotParked) {
  BufferPool pool(4, /*max_frame_bytes=*/1024);
  auto f = pool.Acquire();
  f->assign(std::string(4096, 'x'));  // balloons past the byte bound
  f.reset();
  EXPECT_EQ(pool.idle_frames(), 0u);  // freed, not pinned in the freelist
}

TEST(BufferPoolTest, FramesOutliveThePool) {
  Buffer in_flight;
  {
    BufferPool pool(2);
    auto f = pool.Acquire();
    f->assign("still alive");
    in_flight = std::move(f);
  }
  EXPECT_EQ(*in_flight, "still alive");  // deleter frees, no dangling pool
}

TEST(MetaBlobTest, RoundTripsHeaderStructs) {
  struct Header {
    uint32_t owner;
    uint64_t size;
    double loi;
  };
  const Header h{3, 1 << 20, 0.75};
  MetaBlob blob = MetaBlob::Of(h);
  EXPECT_EQ(blob.size(), sizeof(Header));
  const auto back = blob.As<Header>();
  EXPECT_EQ(back.owner, h.owner);
  EXPECT_EQ(back.size, h.size);
  EXPECT_EQ(back.loi, h.loi);
  EXPECT_EQ(MetaBlob(std::string_view("abc")).view(), "abc");
  EXPECT_TRUE(MetaBlob().empty());
}

TEST(ChannelTest, CopyModesReusePooledReceiveFrames) {
  Channel ch(Opts(TransferMode::kNicOffload));
  for (int i = 0; i < 5; ++i) {
    ch.Send(1, MakeBuffer(std::string(2048, 'x')));
    auto m = ch.TryReceive();
    ASSERT_TRUE(m.has_value());
    m.reset();  // releases the receive frame back to the channel pool
  }
  // Steady state: one receive frame cycles through the pool.
  EXPECT_EQ(ch.pool().allocations(), 1u);
}

TEST(ChannelTest, TryReceiveAllDrainsTheBacklogInOrder) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  for (int i = 0; i < 5; ++i) {
    ch.Send(static_cast<uint32_t>(i), MakeBuffer(std::to_string(i)));
  }
  std::vector<Message> out;
  EXPECT_EQ(ch.TryReceiveAll(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].opcode, static_cast<uint32_t>(i));
    EXPECT_EQ(*out[static_cast<size_t>(i)].payload, std::to_string(i));
  }
  EXPECT_EQ(ch.queued_bytes(), 0u);
  EXPECT_EQ(ch.TryReceiveAll(&out), 0u);  // empty queue: no-op
  EXPECT_EQ(out.size(), 5u);              // and the batch is appended, not replaced
}

TEST(ChannelTest, ReceiveAllBlocksUntilTrafficThenDrains) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (int i = 0; i < 3; ++i) ch.Send(1, MakeBuffer("m"));
  });
  std::vector<Message> out;
  size_t total = 0;
  while (total < 3) total += ch.ReceiveAll(&out);  // first call blocks
  producer.join();
  EXPECT_EQ(total, 3u);
  ch.Close();
  out.clear();
  EXPECT_EQ(ch.ReceiveAll(&out), 0u);  // closed and drained
}

TEST(ChannelTest, TryReceiveAllWakesBlockedSenders) {
  auto opts = Opts(TransferMode::kZeroCopy);
  opts.capacity_bytes = 100;
  Channel ch(opts);
  ch.Send(1, MakeBuffer(std::string(100, 'x')));  // fills the channel
  std::atomic<int> sent{0};
  std::vector<std::thread> senders;
  for (int i = 0; i < 2; ++i) {
    senders.emplace_back([&] {
      ch.Send(2, MakeBuffer(std::string(40, 'y')));  // must wait
      sent.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sent.load(), 0);
  std::vector<Message> out;
  EXPECT_EQ(ch.TryReceiveAll(&out), 1u);  // frees the whole backlog at once
  for (auto& t : senders) t.join();
  EXPECT_EQ(sent.load(), 2);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel ch(Opts(TransferMode::kZeroCopy));
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Send(static_cast<uint32_t>(p), MakeBuffer("m"));
      }
    });
  }
  int received = 0;
  while (received < 4 * kPerProducer) {
    if (ch.Receive().has_value()) ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.stats().messages.load(), 800u);
}

}  // namespace
}  // namespace dcy::rdma
