// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, run-until semantics, periodic timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace dcy::sim {
namespace {

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.Schedule(5, [&order, i] { order.push_back(i); });
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime inner_fired_at = -1;
  sim.Schedule(10, [&] { sim.Schedule(5, [&] { inner_fired_at = sim.Now(); }); });
  sim.Run();
  EXPECT_EQ(inner_fired_at, 15);
}

TEST(SimulatorTest, ZeroDelayRunsAtSameTime) {
  Simulator sim;
  SimTime t = -1;
  sim.Schedule(7, [&] { sim.Schedule(0, [&] { t = sim.Now(); }); });
  sim.Run();
  EXPECT_EQ(t, 7);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1, [&] { order.push_back(1); });
  EventId id = sim.Schedule(2, [&] { order.push_back(2); });
  sim.Schedule(3, [&] { order.push_back(3); });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 100; t += 10) sim.ScheduleAt(t, [&, t] { fired.push_back(t); });
  sim.RunUntil(50);
  EXPECT_EQ(fired.size(), 5u);  // 10..50 inclusive
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] { ++count; });
  sim.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, CountsFiredEvents) {
  Simulator sim;
  for (int i = 0; i < 42; ++i) sim.Schedule(i, [] {});
  EXPECT_EQ(sim.Run(), 42u);
  EXPECT_EQ(sim.total_fired(), 42u);
}

TEST(PeriodicTimerTest, TicksAtPeriod) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(&sim, 100, [&] { ticks.push_back(sim.Now()); });
  timer.Start();
  sim.RunUntil(350);
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 300}));
  timer.Stop();
  sim.RunUntil(1000);
  EXPECT_EQ(ticks.size(), 3u);
}

TEST(PeriodicTimerTest, StopInsideCallback) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer* handle = nullptr;
  PeriodicTimer timer(&sim, 10, [&] {
    if (++ticks == 3) handle->Stop();
  });
  handle = &timer;
  timer.Start();
  sim.RunUntil(1000);
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimerTest, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(&sim, 10, [&] { ++ticks; });
  timer.Start();
  sim.RunUntil(25);
  timer.Stop();
  sim.RunUntil(100);
  EXPECT_EQ(ticks, 2);
  timer.Start();
  sim.RunUntil(125);
  EXPECT_EQ(ticks, 4);  // ticks at 110, 120
}

}  // namespace
}  // namespace dcy::sim
