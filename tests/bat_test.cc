// Unit + property tests for the BAT engine: columns, properties, the
// algebra operators, and serialization round-trips.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bat/bat.h"
#include "bat/operators.h"
#include "bat/serialize.h"
#include "common/random.h"

namespace dcy::bat {
namespace {

BatPtr IntBat(std::vector<int32_t> tail, Oid seqbase = 0) {
  return Bat::MakeColumn(MakeIntColumn(std::move(tail)), seqbase);
}

TEST(ColumnTest, FixedColumnsRoundTrip) {
  auto c = MakeLngColumn({10, -20, 30});
  EXPECT_EQ(c->type(), ValType::kLng);
  EXPECT_EQ(c->size(), 3u);
  EXPECT_EQ(c->GetInt64(1), -20);
  EXPECT_DOUBLE_EQ(c->GetDouble(2), 30.0);
  EXPECT_EQ(c->ByteSize(), 24u);
}

TEST(ColumnTest, DenseOidIsVirtual) {
  auto c = MakeDenseOid(100, 5);
  EXPECT_EQ(c->GetInt64(0), 100);
  EXPECT_EQ(c->GetInt64(4), 104);
  EXPECT_EQ(c->ByteSize(), 0u);  // no materialized storage
  EXPECT_TRUE(c->IsSorted());
}

TEST(ColumnTest, IsSortedIsMemoizedAndAppendsGetFreshCaches) {
  // The O(n) sortedness scan runs once per column and is cached; columns
  // are immutable, so the cache can never go stale.
  auto sorted = MakeLngColumn({1, 2, 2, 3});
  EXPECT_FALSE(sorted->SortednessKnown());
  EXPECT_TRUE(sorted->IsSorted());
  EXPECT_TRUE(sorted->SortednessKnown());
  EXPECT_TRUE(sorted->IsSorted());  // served from the cache

  auto unsorted = MakeLngColumn({3, 1, 2});
  EXPECT_FALSE(unsorted->IsSorted());
  EXPECT_TRUE(unsorted->SortednessKnown());
  EXPECT_FALSE(unsorted->IsSorted());

  // Regression: appending happens through a builder, and a builder reused
  // after Finish produces a *new* column whose cache starts unknown — the
  // sorted verdict of a prefix must never leak into the appended column.
  ColumnBuilder b(ValType::kLng);
  b.AppendInt64(1);
  b.AppendInt64(2);
  auto first = b.Finish();
  EXPECT_TRUE(first->IsSorted());
  b.AppendInt64(5);
  b.AppendInt64(4);  // appended rows break sortedness
  auto second = b.Finish();
  EXPECT_FALSE(second->SortednessKnown());
  EXPECT_FALSE(second->IsSorted());
  EXPECT_TRUE(first->IsSorted());  // the finished column is unaffected

  // Degenerate shapes: empty and single-row columns are trivially sorted.
  EXPECT_TRUE(MakeLngColumn({})->IsSorted());
  EXPECT_TRUE(MakeLngColumn({7})->IsSorted());
  auto strs = MakeStrColumn({"a", "b", "b"});
  EXPECT_TRUE(strs->IsSorted());
  EXPECT_TRUE(strs->SortednessKnown());
}

TEST(ColumnTest, StringColumn) {
  auto c = MakeStrColumn({"alpha", "", "gamma"});
  EXPECT_EQ(c->size(), 3u);
  EXPECT_EQ(c->GetString(0), "alpha");
  EXPECT_EQ(c->GetString(1), "");
  EXPECT_EQ(c->GetString(2), "gamma");
}

TEST(ColumnTest, BuilderMatchesConstructors) {
  ColumnBuilder b(ValType::kDbl);
  b.AppendDouble(1.5);
  b.AppendDouble(-2.5);
  auto c = b.Finish();
  EXPECT_EQ(c->size(), 2u);
  EXPECT_DOUBLE_EQ(c->GetDouble(1), -2.5);
}

TEST(ColumnTest, CompareRowsAcrossTypes) {
  auto a = MakeIntColumn({1, 5});
  auto d = MakeDblColumn({2.5});
  EXPECT_LT(CompareRows(*a, 0, *d, 0), 0);
  EXPECT_GT(CompareRows(*a, 1, *d, 0), 0);
  auto s1 = MakeStrColumn({"abc"});
  auto s2 = MakeStrColumn({"abd"});
  EXPECT_LT(CompareRows(*s1, 0, *s2, 0), 0);
}

TEST(BatTest, MakeColumnHasDenseHead) {
  auto b = IntBat({7, 8, 9}, 100);
  EXPECT_TRUE(b->HasDenseHead());
  EXPECT_EQ(b->HeadSeqbase(), 100u);
  EXPECT_TRUE(b->props().hsorted);
  EXPECT_TRUE(b->props().hkey);
  EXPECT_EQ(b->size(), 3u);
}

TEST(BatTest, SizeMismatchIsFatal) {
  EXPECT_DEATH(Bat(MakeDenseOid(0, 3), MakeIntColumn({1})), "mismatch");
}

TEST(BatTest, ScanProperties) {
  auto sorted = IntBat({1, 2, 2, 3});
  auto p = Bat::ScanProperties(*sorted->head(), *sorted->tail());
  EXPECT_TRUE(p.tsorted);
  EXPECT_FALSE(p.tkey);  // duplicate 2
  auto keyed = IntBat({1, 2, 3});
  p = Bat::ScanProperties(*keyed->head(), *keyed->tail());
  EXPECT_TRUE(p.tkey);
}

TEST(OperatorTest, ReverseSwapsColumns) {
  auto b = IntBat({5, 6, 7});
  auto r = Reverse(b);
  EXPECT_EQ(r->head_type(), ValType::kInt);
  EXPECT_EQ(r->tail_type(), ValType::kOid);
  EXPECT_EQ(r->head()->GetInt64(1), 6);
  EXPECT_EQ(r->tail()->GetInt64(1), 1);
  // Double reverse is identity.
  auto rr = Reverse(r);
  EXPECT_EQ(rr->head().get(), b->head().get());
  EXPECT_EQ(rr->tail().get(), b->tail().get());
}

TEST(OperatorTest, MarkTProducesDenseTail) {
  auto b = IntBat({5, 6, 7});
  auto m = MarkT(b, 100);
  EXPECT_EQ(m->head().get(), b->head().get());
  EXPECT_EQ(m->tail()->GetInt64(0), 100);
  EXPECT_EQ(m->tail()->GetInt64(2), 102);
  EXPECT_TRUE(m->props().tkey);
}

TEST(OperatorTest, HashJoinMatchesTailToHead) {
  // l: [oid, int id], r: [int id, str name]
  auto l = IntBat({10, 20, 30});
  auto r = std::make_shared<Bat>(MakeIntColumn({20, 30, 40}),
                                 MakeStrColumn({"b", "c", "d"}));
  auto out = Join(l, BatPtr(r));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ((*out)->size(), 2u);
  EXPECT_EQ((*out)->head()->GetInt64(0), 1);  // oid of l row with tail 20
  EXPECT_EQ((*out)->tail()->GetString(0), "b");
  EXPECT_EQ((*out)->head()->GetInt64(1), 2);
  EXPECT_EQ((*out)->tail()->GetString(1), "c");
}

TEST(OperatorTest, JoinEmitsAllPairsOnDuplicates) {
  auto l = IntBat({1, 1});
  auto r = std::make_shared<Bat>(MakeIntColumn({1, 1}), MakeLngColumn({100, 200}));
  auto out = Join(l, BatPtr(r));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->size(), 4u);  // 2 x 2 cross product of the match group
}

TEST(OperatorTest, MergeAndHashJoinAgree) {
  Rng rng(21);
  // Sorted inputs trigger the merge path; scrambled ones the hash path.
  std::vector<int32_t> keys_l, keys_r;
  for (int i = 0; i < 200; ++i) keys_l.push_back(static_cast<int32_t>(rng.UniformInt(0, 50)));
  for (int i = 0; i < 100; ++i) keys_r.push_back(static_cast<int32_t>(rng.UniformInt(0, 50)));
  std::sort(keys_l.begin(), keys_l.end());
  std::sort(keys_r.begin(), keys_r.end());

  auto l_sorted = std::make_shared<Bat>(MakeDenseOid(0, keys_l.size()),
                                        MakeIntColumn(std::vector<int32_t>(keys_l)));
  auto lp = Bat::ScanProperties(*l_sorted->head(), *l_sorted->tail());
  auto l1 = std::make_shared<Bat>(l_sorted->head(), l_sorted->tail(), lp);

  auto r_sorted = std::make_shared<Bat>(MakeIntColumn(std::vector<int32_t>(keys_r)),
                                        MakeDenseOid(1000, keys_r.size()));
  auto rp = Bat::ScanProperties(*r_sorted->head(), *r_sorted->tail());
  auto r1 = std::make_shared<Bat>(r_sorted->head(), r_sorted->tail(), rp);

  ASSERT_TRUE(l1->props().tsorted && r1->props().hsorted);  // merge path
  auto merged = Join(BatPtr(l1), BatPtr(r1));
  ASSERT_TRUE(merged.ok());

  // Same data without the sorted flags => hash path.
  auto l2 = std::make_shared<Bat>(l_sorted->head(), l_sorted->tail());
  auto r2 = std::make_shared<Bat>(r_sorted->head(), r_sorted->tail());
  auto hashed = Join(BatPtr(l2), BatPtr(r2));
  ASSERT_TRUE(hashed.ok());

  ASSERT_EQ((*merged)->size(), (*hashed)->size());
  // Compare as multisets of (head, tail) pairs.
  std::multiset<std::pair<int64_t, int64_t>> a, b;
  for (size_t i = 0; i < (*merged)->size(); ++i) {
    a.emplace((*merged)->head()->GetInt64(i), (*merged)->tail()->GetInt64(i));
    b.emplace((*hashed)->head()->GetInt64(i), (*hashed)->tail()->GetInt64(i));
  }
  EXPECT_EQ(a, b);
}

TEST(OperatorTest, JoinTypeMismatchFails) {
  auto l = std::make_shared<Bat>(MakeDenseOid(0, 1), MakeStrColumn({"x"}));
  auto r = IntBat({1});
  EXPECT_FALSE(Join(BatPtr(l), r).ok());
}

TEST(OperatorTest, SelectAndRange) {
  auto b = IntBat({5, 3, 9, 3, 7});
  auto eq = Select(b, Value::MakeInt(3));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ((*eq)->size(), 2u);
  EXPECT_EQ((*eq)->head()->GetInt64(0), 1);
  EXPECT_EQ((*eq)->head()->GetInt64(1), 3);

  auto range = SelectRange(b, Value::MakeInt(4), Value::MakeInt(8));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ((*range)->size(), 2u);  // 5 and 7
}

TEST(OperatorTest, USelectDropsTail) {
  auto b = IntBat({5, 3, 5});
  auto u = USelect(b, Value::MakeInt(5));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->size(), 2u);
  EXPECT_EQ((*u)->tail_type(), ValType::kOid);
}

TEST(OperatorTest, SemiJoinKDiffPartitionTheRows) {
  auto l = IntBat({1, 2, 3, 4}, 0);  // heads 0..3
  auto r = std::make_shared<Bat>(MakeOidColumn({1, 3}), MakeDenseOid(0, 2));
  auto in = SemiJoin(l, BatPtr(r));
  auto out = KDiff(l, BatPtr(r));
  ASSERT_TRUE(in.ok() && out.ok());
  EXPECT_EQ((*in)->size() + (*out)->size(), l->size());
  EXPECT_EQ((*in)->head()->GetInt64(0), 1);
  EXPECT_EQ((*out)->head()->GetInt64(0), 0);
}

TEST(OperatorTest, KUnionDeduplicatesByHead) {
  auto l = std::make_shared<Bat>(MakeOidColumn({0, 1}), MakeIntColumn({10, 11}));
  auto r = std::make_shared<Bat>(MakeOidColumn({1, 2}), MakeIntColumn({99, 12}));
  auto u = KUnion(BatPtr(l), BatPtr(r));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->size(), 3u);
  EXPECT_EQ((*u)->tail()->GetInt64(1), 11);  // l wins on head 1
  EXPECT_EQ((*u)->tail()->GetInt64(2), 12);
}

TEST(OperatorTest, GroupAndAggregate) {
  auto b = IntBat({5, 3, 5, 3, 5});
  auto gids = GroupId(b);
  ASSERT_TRUE(gids.ok());
  EXPECT_EQ((*gids)->tail()->GetInt64(0), 0);  // first value => group 0
  EXPECT_EQ((*gids)->tail()->GetInt64(1), 1);
  EXPECT_EQ((*gids)->tail()->GetInt64(2), 0);

  auto values = GroupValues(b);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ((*values)->size(), 2u);
  EXPECT_EQ((*values)->tail()->GetInt64(0), 5);
  EXPECT_EQ((*values)->tail()->GetInt64(1), 3);

  auto sums = SumPerGroup(b, *gids, 2);
  ASSERT_TRUE(sums.ok());
  EXPECT_DOUBLE_EQ((*sums)->tail()->GetDouble(0), 15.0);  // 5+5+5
  EXPECT_DOUBLE_EQ((*sums)->tail()->GetDouble(1), 6.0);   // 3+3

  auto counts = CountPerGroup(*gids, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)->tail()->GetInt64(0), 3);
  EXPECT_EQ((*counts)->tail()->GetInt64(1), 2);
}

TEST(OperatorTest, ScalarAggregates) {
  auto b = IntBat({4, 1, 3});
  EXPECT_EQ(Count(b), 3u);
  EXPECT_EQ(Sum(b)->AsInt64(), 8);
  EXPECT_EQ(Min(b)->AsInt64(), 1);
  EXPECT_EQ(Max(b)->AsInt64(), 4);
  EXPECT_DOUBLE_EQ(Avg(b)->AsDouble(), 8.0 / 3.0);
  auto s = std::make_shared<Bat>(MakeDenseOid(0, 1), MakeStrColumn({"x"}));
  EXPECT_FALSE(Sum(BatPtr(s)).ok());
  EXPECT_FALSE(Min(IntBat({})).ok());  // empty
}

TEST(OperatorTest, SortAndTopN) {
  auto b = IntBat({4, 1, 3, 2});
  auto sorted = Sort(b);
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE((*sorted)->props().tsorted);
  for (size_t i = 1; i < (*sorted)->size(); ++i) {
    EXPECT_LE((*sorted)->tail()->GetInt64(i - 1), (*sorted)->tail()->GetInt64(i));
  }
  auto top2 = TopN(b, 2, /*descending=*/true);
  ASSERT_TRUE(top2.ok());
  EXPECT_EQ((*top2)->tail()->GetInt64(0), 4);
  EXPECT_EQ((*top2)->tail()->GetInt64(1), 3);
  EXPECT_EQ((*TopN(b, 99, true))->size(), 4u);  // n > size clamps
}

TEST(OperatorTest, ArithAlignedAndConst) {
  auto a = IntBat({1, 2, 3});
  auto b = IntBat({10, 20, 30});
  auto sum = Arith(a, b, ArithOp::kAdd);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)->tail()->GetDouble(2), 33.0);
  auto scaled = ArithConst(a, Value::MakeDbl(0.5), ArithOp::kMul);
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ((*scaled)->tail()->GetDouble(1), 1.0);
  EXPECT_FALSE(Arith(a, IntBat({1}), ArithOp::kAdd).ok());       // size mismatch
  EXPECT_FALSE(ArithConst(a, Value::MakeInt(0), ArithOp::kDiv).ok());  // div by zero
}

TEST(OperatorTest, SliceBounds) {
  auto b = IntBat({1, 2, 3, 4});
  auto s = Slice(b, 1, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->size(), 2u);
  EXPECT_EQ((*s)->tail()->GetInt64(0), 2);
  EXPECT_FALSE(Slice(b, 3, 2).ok());
  EXPECT_FALSE(Slice(b, 0, 5).ok());
}

// Property sweep: join result size equals the sum over keys of
// count_l(key) * count_r(key), for random inputs.
class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, SizeMatchesKeyHistogramProduct) {
  Rng rng(GetParam());
  std::vector<int32_t> lk, rk;
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 300));
  const int m = 1 + static_cast<int>(rng.UniformInt(0, 300));
  const int domain = 1 + static_cast<int>(rng.UniformInt(0, 40));
  for (int i = 0; i < n; ++i) lk.push_back(static_cast<int32_t>(rng.UniformInt(0, domain)));
  for (int i = 0; i < m; ++i) rk.push_back(static_cast<int32_t>(rng.UniformInt(0, domain)));

  std::map<int32_t, size_t> lh, rh;
  for (int32_t k : lk) ++lh[k];
  for (int32_t k : rk) ++rh[k];
  size_t expected = 0;
  for (const auto& [k, c] : lh) {
    auto it = rh.find(k);
    if (it != rh.end()) expected += c * it->second;
  }

  auto l = IntBat(std::move(lk));
  auto r = std::make_shared<Bat>(MakeIntColumn(std::move(rk)), MakeDenseOid(0, m));
  auto out = Join(l, BatPtr(r));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Property sweep: serialization round-trips preserve every row and the
// properties byte.
class SerializePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializePropertyTest, RoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const int n = static_cast<int>(rng.UniformInt(0, 200));
  BatPtr original;
  switch (GetParam() % 4) {
    case 0: {  // dense head + int tail
      std::vector<int32_t> v;
      for (int i = 0; i < n; ++i) v.push_back(static_cast<int32_t>(rng.UniformInt(-100, 100)));
      original = IntBat(std::move(v), rng.UniformU64(0, 1000));
      break;
    }
    case 1: {  // materialized oid head + dbl tail
      std::vector<Oid> h;
      std::vector<double> t;
      for (int i = 0; i < n; ++i) {
        h.push_back(rng.UniformU64(0, 1000));
        t.push_back(rng.UniformDouble(-1e6, 1e6));
      }
      original = std::make_shared<Bat>(MakeOidColumn(std::move(h)),
                                       MakeDblColumn(std::move(t)));
      break;
    }
    case 2: {  // str tail
      std::vector<std::string> t;
      for (int i = 0; i < n; ++i) {
        t.push_back(std::string(static_cast<size_t>(rng.UniformInt(0, 12)), 'a' + i % 26));
      }
      original = Bat::MakeColumn(MakeStrColumn(t));
      break;
    }
    default: {  // lng tail with properties
      std::vector<int64_t> t;
      for (int i = 0; i < n; ++i) t.push_back(i);
      const size_t rows = t.size();  // t is moved below; size first
      Bat::Properties p;
      p.tsorted = p.tkey = p.hsorted = p.hkey = true;
      original = std::make_shared<Bat>(MakeDenseOid(0, rows),
                                       MakeLngColumn(std::move(t)), p);
      break;
    }
  }

  const std::string wire = Serialize(*original);
  auto restored = Deserialize(wire);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ((*restored)->size(), original->size());
  EXPECT_EQ((*restored)->props().tsorted, original->props().tsorted);
  EXPECT_EQ((*restored)->props().hkey, original->props().hkey);
  for (size_t i = 0; i < original->size(); ++i) {
    EXPECT_TRUE((*restored)->head()->GetValue(i) == original->head()->GetValue(i));
    EXPECT_TRUE((*restored)->tail()->GetValue(i) == original->tail()->GetValue(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, SerializePropertyTest, ::testing::Range(0, 12));

TEST(SerializeTest, DetectsCorruption) {
  auto b = IntBat({1, 2, 3});
  std::string wire = Serialize(*b);
  wire[10] ^= 0x5A;
  EXPECT_TRUE(Deserialize(wire).status().code() == StatusCode::kCorruption);
  EXPECT_TRUE(Deserialize("short").status().code() == StatusCode::kCorruption);
}

TEST(SerializeTest, Crc32KnownVector) {
  // CRC32("123456789") == 0xCBF43926 (IEEE reference value).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace dcy::bat
