// Property sweeps over the experiment runners: for a range of seeds and
// configurations, every paper scenario must drain, conserve hot-set
// accounting, and be reproducible.
#include <gtest/gtest.h>

#include "simdc/experiments.h"

namespace dcy::simdc {
namespace {

class UniformSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniformSweep, DrainsAndConserves) {
  UniformExperimentOptions opts;
  opts.scale = 0.05;
  opts.loit = 0.3 + 0.1 * static_cast<double>(GetParam() % 5);
  opts.data_seed = GetParam();
  opts.workload_seed = GetParam() * 31 + 7;
  ExperimentResult r = RunUniformExperiment(opts);

  EXPECT_TRUE(r.drained) << "seed " << GetParam();
  EXPECT_EQ(r.finished + r.failed, r.registered);
  EXPECT_EQ(r.failed, 0u);
  // Hot-set conservation: loads = unloads + lost + still-hot.
  EXPECT_EQ(r.collector->total_loads(),
            r.collector->total_unloads() + r.collector->total_presumed_lost() +
                r.collector->current_ring_bats());
  // Lossless links: nothing presumed lost, nothing dropped.
  EXPECT_EQ(r.data_drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ExperimentRunnerTest, UniformDeterministicAcrossRuns) {
  UniformExperimentOptions opts;
  opts.scale = 0.05;
  auto a = RunUniformExperiment(opts);
  auto b = RunUniformExperiment(opts);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.last_finish, b.last_finish);
  EXPECT_EQ(a.collector->total_loads(), b.collector->total_loads());
  EXPECT_EQ(a.collector->total_dispatches(), b.collector->total_dispatches());
}

TEST(ExperimentRunnerTest, SkewedDrainsWithAdaptiveAndStatic) {
  for (bool adaptive : {true, false}) {
    SkewedExperimentOptions opts;
    opts.scale = 0.05;
    opts.adaptive_loit = adaptive;
    opts.static_loit = 0.6;
    ExperimentResult r = RunSkewedExperiment(opts);
    EXPECT_TRUE(r.drained) << (adaptive ? "adaptive" : "static");
    EXPECT_EQ(r.finished, r.registered);
  }
}

TEST(ExperimentRunnerTest, GaussianDrains) {
  GaussianExperimentOptions opts;
  opts.scale = 0.05;
  ExperimentResult r = RunGaussianExperiment(opts);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.finished, r.registered);
  // Touch mass concentrates on the in-vogue ids.
  const auto& touches = r.collector->touches();
  uint64_t center = 0, total = 0;
  const double mean = 500 * opts.scale, sigma = 50 * opts.scale;
  for (size_t b = 0; b < touches.size(); ++b) {
    total += touches[b];
    if (std::abs(static_cast<double>(b) - mean) <= 3 * sigma) center += touches[b];
  }
  EXPECT_GT(total, 0u);
  // At tiny scale the 10 % uniform background carries more relative mass.
  EXPECT_GT(static_cast<double>(center) / static_cast<double>(total), 0.7);
}

TEST(ExperimentRunnerTest, TpchSingleNodeHitsCalibration) {
  TpchExperimentOptions opts;
  opts.num_nodes = 1;
  opts.tpch.queries_per_node = 150;
  TpchRow row = RunTpchExperiment(opts);
  EXPECT_TRUE(row.drained);
  // Single node, all data local: CPU utilization must be near-perfect and
  // throughput ≈ cores / mean-cpu-per-query ≈ 3.8 q/s (paper row 1).
  EXPECT_GT(row.cpu_percent, 95.0);
  EXPECT_NEAR(row.throughput, 3.8, 0.6);
}

TEST(ExperimentRunnerTest, TpchScaleOutShape) {
  auto run = [](uint32_t nodes) {
    TpchExperimentOptions opts;
    opts.num_nodes = nodes;
    opts.tpch.queries_per_node = 150;
    return RunTpchExperiment(opts);
  };
  TpchRow one = run(1);
  TpchRow three = run(3);
  ASSERT_TRUE(one.drained && three.drained);
  // Aggregate throughput scales up; per-node throughput does not exceed the
  // single-node rate; CPU% decays with ring latency.
  EXPECT_GT(three.throughput, 2.0 * one.throughput);
  EXPECT_LE(three.throughput_per_node, one.throughput_per_node * 1.02);
  EXPECT_LT(three.cpu_percent, one.cpu_percent);
}

}  // namespace
}  // namespace dcy::simdc
