// Unit tests for the LOI formula (paper Eq. 1 / Fig. 5) and the LOIT
// threshold policies (§4.4, §5.2).
#include <gtest/gtest.h>

#include "core/loi.h"

namespace dcy::core {
namespace {

TEST(LoiTest, FirstCycleEqualsCavg) {
  // loi=0, cycles=1: newLOI = 0/1 + copies/hops.
  EXPECT_DOUBLE_EQ(ComputeNewLoi(0.0, 9, 9, 1), 1.0);
  EXPECT_DOUBLE_EQ(ComputeNewLoi(0.0, 3, 9, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ComputeNewLoi(0.0, 0, 9, 1), 0.0);
}

TEST(LoiTest, MatchesFigure5Expression) {
  // Fig. 5 line 04: (loi + (copies/hops)*cycles)/cycles.
  const double loi = 0.7;
  const uint32_t copies = 4, hops = 9, cycles = 3;
  const double expected =
      (loi + (static_cast<double>(copies) / hops) * cycles) / cycles;
  EXPECT_DOUBLE_EQ(ComputeNewLoi(loi, copies, hops, cycles), expected);
}

TEST(LoiTest, HistoryDecaysWithAge) {
  // "Old BATs carry a low level of interest, unless re-newed in each pass."
  double loi = 1.0;
  for (uint32_t cycle = 2; cycle <= 10; ++cycle) {
    const double next = ComputeNewLoi(loi, 0, 9, cycle);
    EXPECT_LT(next, loi);  // unused BATs decay monotonically
    loi = next;
  }
  EXPECT_LT(loi, 0.01);
}

TEST(LoiTest, FullInterestConvergesTowardsOne) {
  // A BAT pinned by every node each cycle: newLOI -> 1 from above.
  double loi = 0.0;
  for (uint32_t cycle = 1; cycle <= 200; ++cycle) loi = ComputeNewLoi(loi, 9, 9, cycle);
  EXPECT_NEAR(loi, 1.0, 0.02);
}

TEST(LoiTest, LatestCycleWeighsMost) {
  // Same history, different last cycle: more copies => higher LOI.
  const double busy = ComputeNewLoi(0.5, 8, 9, 4);
  const double idle = ComputeNewLoi(0.5, 1, 9, 4);
  EXPECT_GT(busy, idle);
}

TEST(LoiTest, ZeroHopsGuard) {
  EXPECT_DOUBLE_EQ(ComputeNewLoi(0.6, 0, 0, 2), 0.3);
}

TEST(StaticLoitTest, IgnoresUpdates) {
  StaticLoit loit(0.5);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.5);
  loit.Update(0.99);
  loit.Update(0.01);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.5);
}

TEST(AdaptiveLoitTest, StepsUpAboveHighWatermark) {
  AdaptiveLoit loit(AdaptiveLoit::Options{});
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.1);
  loit.Update(0.85);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.6);
  loit.Update(0.85);
  EXPECT_DOUBLE_EQ(loit.threshold(), 1.1);
}

TEST(AdaptiveLoitTest, SaturatesAtTopLevel) {
  AdaptiveLoit loit(AdaptiveLoit::Options{});
  for (int i = 0; i < 10; ++i) loit.Update(0.95);
  EXPECT_DOUBLE_EQ(loit.threshold(), 1.1);
}

TEST(AdaptiveLoitTest, StepsDownBelowLowWatermark) {
  AdaptiveLoit::Options opts;
  opts.initial_level = 2;
  AdaptiveLoit loit(opts);
  EXPECT_DOUBLE_EQ(loit.threshold(), 1.1);
  loit.Update(0.3);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.6);
  loit.Update(0.39);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.1);
  loit.Update(0.0);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.1);  // floor
}

TEST(AdaptiveLoitTest, HysteresisBandHolds) {
  AdaptiveLoit::Options opts;
  opts.initial_level = 1;
  AdaptiveLoit loit(opts);
  // Between the watermarks nothing moves.
  for (double f : {0.41, 0.5, 0.6, 0.7, 0.79, 0.8}) loit.Update(f);
  EXPECT_DOUBLE_EQ(loit.threshold(), 0.6);
  EXPECT_EQ(loit.transitions(), 0u);
}

TEST(AdaptiveLoitTest, CountsTransitions) {
  AdaptiveLoit loit(AdaptiveLoit::Options{});
  loit.Update(0.9);
  loit.Update(0.1);
  loit.Update(0.9);
  EXPECT_EQ(loit.transitions(), 3u);
}

}  // namespace
}  // namespace dcy::core
