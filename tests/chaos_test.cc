// Chaos suite (ISSUE-7): the live ring under scripted fault schedules and
// node failures. Every scenario asserts the graceful-degradation contract —
// queries either return bit-correct results or fail with a typed status
// (Unavailable / TimedOut / Aborted), never hang, and never leak ring
// request entries.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bat/operators.h"
#include "rdma/fault.h"
#include "runtime/ring_cluster.h"
#include "runtime/session.h"

namespace dcy::runtime {
namespace {

using std::chrono::milliseconds;

constexpr const char* kJoinPlan = R"(
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
)";

constexpr const char* kSumPlan = R"(
X1 := sql.bind("sys","t","id",0);
X2 := aggr.sum(X1);
)";

/// Fast protocol timers + aggressive failure detection, so crash->recovery
/// completes in tens of milliseconds instead of the production seconds.
RingCluster::Options ChaosOptions(uint32_t nodes = 3) {
  RingCluster::Options opts;
  opts.num_nodes = nodes;
  opts.node.load_all_period = FromMillis(2);
  opts.node.maintenance_period = FromMillis(5);
  opts.node.adapt_period = FromMillis(10);
  opts.node.initial_rotation_estimate = FromMillis(5);
  opts.node.min_resend_timeout = FromMillis(20);
  opts.resilience.heartbeat_period = FromMillis(5);
  opts.resilience.heartbeat_miss_threshold = 4;
  opts.resilience.link.initial_backoff = FromMillis(1);
  opts.resilience.link.max_backoff = FromMillis(10);
  return opts;
}

bool Eventually(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

class ChaosTest : public ::testing::Test {
 protected:
  /// Injector for fault-schedule tests. A fixture member declared before
  /// `cluster` so it outlives the ring even when an ASSERT exits the test
  /// body early — channels hold a bare pointer to it until Stop().
  rdma::FaultInjector* MakeInjector(uint64_t seed) {
    fault_ = std::make_unique<rdma::FaultInjector>(seed);
    return fault_.get();
  }

  /// t.id on node 1, c.t_id on node 2 — crashing either owner starves the
  /// join plan in a known way.
  void SetUpCluster(RingCluster::Options opts) {
    cluster = std::make_unique<RingCluster>(opts);
    ASSERT_TRUE(cluster
                    ->LoadBat(1 % opts.num_nodes, "sys.t.id",
                              bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4})))
                    .ok());
    ASSERT_TRUE(cluster
                    ->LoadBat(2 % opts.num_nodes, "sys.c.t_id",
                              bat::Bat::MakeColumn(bat::MakeIntColumn({2, 3, 3, 5})))
                    .ok());
    cluster->Start();
  }

  void ExpectSumCorrect(Session* session, const SubmitOptions& options = {}) {
    auto result = session->Execute(kSumPlan, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(std::get<int64_t>(result->result.scalar()), 10);
  }

  std::unique_ptr<rdma::FaultInjector> fault_;  ///< before cluster: outlives it
  std::unique_ptr<RingCluster> cluster;
};

// ---------------------------------------------------------------------------
// Lossy fabric: queries stay correct, the hop layer absorbs the faults.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, LossyScheduleStillReturnsCorrectAnswers) {
  rdma::FaultInjector& fault = *MakeInjector(0xC0FFEE);
  const rdma::FaultLink all;  // every link, every channel
  fault.AddRule(rdma::FaultInjector::Drop(all, 0.05));
  fault.AddRule(rdma::FaultInjector::Duplicate(all, 0.02));
  fault.AddRule(rdma::FaultInjector::Corrupt(all, 0.02));
  fault.AddRule(rdma::FaultInjector::Delay(all, 0.02, FromMillis(1)));

  auto opts = ChaosOptions();
  opts.fault = &fault;
  SetUpCluster(opts);
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());

  for (int i = 0; i < 25; ++i) {
    auto result = session->Execute(kJoinPlan);
    ASSERT_TRUE(result.ok()) << "query " << i << ": " << result.status().ToString();
    ASSERT_EQ(result->result.num_rows(), 3u) << "query " << i;
    ExpectSumCorrect(&*session);
  }

  // The schedule actually bit, and the reliability layer actually worked.
  EXPECT_GT(fault.counters().dropped.load(), 0u);
  const auto res = cluster->Resilience();
  EXPECT_GT(res.retransmits + res.frames_gap + res.frames_corrupted +
                res.frames_duplicate + res.link_resets,
            0u);
}

TEST_F(ChaosTest, PartitionedLinkHealsAndQueriesResume) {
  rdma::FaultInjector& fault = *MakeInjector(0xBEEF);
  // Blackout of 30 consecutive data frames on the 1 -> 2 hop; the sender
  // retransmits through the hole (or resets and the DC resend recovers).
  fault.AddRule(
      rdma::FaultInjector::Partition({1, 2, rdma::kFaultChannelData}, 5, 35));

  auto opts = ChaosOptions();
  opts.fault = &fault;
  SetUpCluster(opts);
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());

  for (int i = 0; i < 15; ++i) {
    auto result = session->Execute(kJoinPlan);
    ASSERT_TRUE(result.ok()) << "query " << i << ": " << result.status().ToString();
    ASSERT_EQ(result->result.num_rows(), 3u);
  }
  EXPECT_GT(fault.counters().dropped.load(), 0u);
}

// ---------------------------------------------------------------------------
// Node crash: detection, re-splice, fragment re-homing.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, CrashedOwnerIsDetectedAndRingResplices) {
  SetUpCluster(ChaosOptions());
  ASSERT_TRUE(cluster->CrashNode(1).ok());
  EXPECT_FALSE(cluster->IsNodeAlive(1));
  EXPECT_TRUE(cluster->degraded());

  // Heartbeat silence (4 x 5ms) makes a neighbour report the crash.
  EXPECT_TRUE(Eventually([&] { return cluster->Resilience().ring_resplices >= 1; }))
      << "ring never respliced around the dead node";
  const auto res = cluster->Resilience();
  EXPECT_GE(res.nodes_crashed, 1u);
  EXPECT_GE(res.heartbeats_missed, 1u);
  EXPECT_GT(res.last_recovery_seconds, 0.0);
  EXPECT_LT(res.last_recovery_seconds, 5.0);
}

TEST_F(ChaosTest, FragmentsRehomeToTheHeirAndQueriesSucceed) {
  SetUpCluster(ChaosOptions());  // auto_rehome defaults on
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  ExpectSumCorrect(&*session);  // warm path before the crash

  ASSERT_TRUE(cluster->CrashNode(1).ok());  // owner of sys.t.id
  ASSERT_TRUE(Eventually([&] { return cluster->Resilience().rehomed_fragments >= 1; }))
      << "fragments were never re-homed";

  // The heir now owns and serves the dead node's fragment: same answer.
  for (int i = 0; i < 5; ++i) ExpectSumCorrect(&*session);
  const auto res = cluster->Resilience();
  EXPECT_GE(res.ring_resplices, 1u);
  EXPECT_GE(res.rehomed_fragments, 1u);
}

TEST_F(ChaosTest, WithoutRehomingPinsFailTypedUnavailable) {
  auto opts = ChaosOptions();
  opts.resilience.auto_rehome = false;
  SetUpCluster(opts);
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  ExpectSumCorrect(&*session);

  ASSERT_TRUE(cluster->CrashNode(1).ok());  // owner of sys.t.id
  ASSERT_TRUE(Eventually([&] { return cluster->Resilience().ring_resplices >= 1; }));

  // Queries needing the dead node's fragment fail typed — and fast, not by
  // hanging until a deadline.
  auto result = session->Execute(kSumPlan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_GT(cluster->Resilience().unavailable_failures, 0u);
  // No ring request entries leak from the failed query.
  EXPECT_TRUE(Eventually([&] { return cluster->OutstandingRequestEntries(0) == 0; }));
}

TEST_F(ChaosTest, SubmitToACrashedNodeFailsImmediately) {
  SetUpCluster(ChaosOptions());
  ASSERT_TRUE(cluster->CrashNode(2).ok());
  auto session = cluster->OpenSession(2);
  ASSERT_TRUE(session.ok());  // the session object itself is just a handle
  auto result = session->Execute(kSumPlan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
}

TEST_F(ChaosTest, CrashingTheLastAliveNodeIsRefused) {
  SetUpCluster(ChaosOptions(2));
  ASSERT_TRUE(cluster->CrashNode(0).ok());
  EXPECT_FALSE(cluster->CrashNode(1).ok());
  EXPECT_TRUE(cluster->IsNodeAlive(1));
}

TEST_F(ChaosTest, DegradedAdmissionShedsLoad) {
  auto opts = ChaosOptions();
  opts.admission.degraded_max_queued = 0;  // shed everything while degraded
  SetUpCluster(opts);
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  ExpectSumCorrect(&*session);  // healthy ring admits normally

  ASSERT_TRUE(cluster->CrashNode(2).ok());
  auto result = session->Execute(kSumPlan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_GT(cluster->Resilience().shed_degraded, 0u);
}

// ---------------------------------------------------------------------------
// Restart and re-admission.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, RestartedNodeRejoinsAndServesItsFragments) {
  auto opts = ChaosOptions();
  opts.resilience.auto_rehome = false;  // fragments stay with the owner
  SetUpCluster(opts);
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(cluster->CrashNode(1).ok());
  ASSERT_TRUE(Eventually([&] { return cluster->Resilience().ring_resplices >= 1; }));
  ASSERT_TRUE(cluster->RestartNode(1).ok());
  EXPECT_TRUE(cluster->IsNodeAlive(1));
  EXPECT_FALSE(cluster->degraded());

  // The restarted owner reloads sys.t.id; queries come back bit-correct.
  ASSERT_TRUE(Eventually([&] {
    auto result = session->Execute(kSumPlan);
    return result.ok() && std::get<int64_t>(result->result.scalar()) == 10;
  })) << "restarted node never served its fragment again";
  EXPECT_GE(cluster->Resilience().nodes_restarted, 1u);
  EXPECT_FALSE(cluster->RestartNode(1).ok());  // not crashed: refused
}

TEST_F(ChaosTest, RetryPolicyRidesOutACrashRestartCycle) {
  auto opts = ChaosOptions();
  opts.resilience.auto_rehome = false;
  SetUpCluster(opts);
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(cluster->CrashNode(1).ok());
  ASSERT_TRUE(Eventually([&] { return cluster->Resilience().ring_resplices >= 1; }));

  std::thread healer([&] {
    std::this_thread::sleep_for(milliseconds(100));
    ASSERT_TRUE(cluster->RestartNode(1).ok());
  });

  SubmitOptions options;
  options.retry.max_attempts = 20;
  options.retry.initial_backoff = milliseconds(10);
  options.retry.max_backoff = milliseconds(50);
  auto result = session->Execute(kSumPlan, options);
  healer.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<int64_t>(result->result.scalar()), 10);
  EXPECT_GE(result->attempts, 2u);  // at least one Unavailable was retried
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation while the ring is degraded (no failure
// detection: pins genuinely block, the client contract must still hold).
// ---------------------------------------------------------------------------

class DegradedBlockingTest : public ChaosTest {
 protected:
  void SetUpBlockedRing() {
    auto opts = ChaosOptions();
    // No heartbeats: the crash is never detected, the ring never resplices,
    // requests for the dead owner's fragment silently vanish. This is the
    // worst case: pins block until the client's deadline/cancel fires.
    opts.resilience.enable_heartbeats = false;
    SetUpCluster(opts);
    session = std::make_unique<Session>(*cluster->OpenSession(0));
    ASSERT_TRUE(cluster->CrashNode(1).ok());  // owner of sys.t.id
    ASSERT_TRUE(cluster->degraded());
  }

  std::unique_ptr<Session> session;
};

TEST_F(DegradedBlockingTest, DeadlineExpiresBlockedPinWithoutLeaks) {
  SetUpBlockedRing();
  SubmitOptions options;
  options.timeout = milliseconds(150);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = session->Execute(kSumPlan, options);
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimedOut)
      << result.status().ToString();
  // It timed out, it did not hang.
  EXPECT_LT(std::chrono::duration_cast<milliseconds>(waited).count(), 5000);
  // The expired query's ring request entries drain — nothing leaks.
  EXPECT_TRUE(Eventually([&] { return cluster->OutstandingRequestEntries(0) == 0; }));
}

TEST_F(DegradedBlockingTest, CancelUnblocksAPinStuckOnADeadOwner) {
  SetUpBlockedRing();
  auto handle = session->Submit(kSumPlan);
  ASSERT_TRUE(handle.ok());
  // Let the query reach its blocked pin, then cancel.
  std::this_thread::sleep_for(milliseconds(50));
  handle->Cancel();
  auto result = handle->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted) << result.status().ToString();
  EXPECT_TRUE(Eventually([&] { return cluster->OutstandingRequestEntries(0) == 0; }));
}

// ---------------------------------------------------------------------------
// Memory pressure: the two-tier fragment store under crash and churn
// (ISSUE-8). Queries must stay bit-correct while fragments spill, promote,
// and recover from disk across a node failure.
// ---------------------------------------------------------------------------

bat::BatPtr FillerBat(int32_t value) {
  return bat::Bat::MakeColumn(
      bat::MakeIntColumn(std::vector<int32_t>(1000, value)));
}

constexpr const char* kF1SumPlan = R"(
X1 := sql.bind("sys","f1","v",0);
X2 := aggr.sum(X1);
)";

constexpr const char* kF2SumPlan = R"(
X1 := sql.bind("sys","f2","v",0);
X2 := aggr.sum(X1);
)";

constexpr const char* kF3SumPlan = R"(
X1 := sql.bind("sys","f3","v",0);
X2 := aggr.sum(X1);
)";

TEST_F(ChaosTest, RestartRecoversSpilledFragmentsAndRehomesCorruptOnes) {
  namespace fs = std::filesystem;
  const auto f1 = FillerBat(1);
  auto opts = ChaosOptions();
  opts.resilience.auto_rehome = false;  // fragments stay with their owner
  opts.spill_dir = ::testing::TempDir() + "/chaos_spill_recover";
  fs::remove_all(opts.spill_dir);
  // Budget holds one filler plus change: loading the second filler pushes
  // t.id and the first filler to disk. Inline spill with watermarks off
  // keeps the tier assignment deterministic.
  opts.memory.budget_bytes = f1->ByteSize() + 512;
  opts.memory.async_spill = false;
  opts.memory.spill_high_watermark = 1.0;
  opts.memory.spill_low_watermark = 1.0;
  cluster = std::make_unique<RingCluster>(opts);
  ASSERT_TRUE(cluster
                  ->LoadBat(1, "sys.t.id",
                            bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4})))
                  .ok());
  ASSERT_TRUE(cluster->LoadBat(1, "sys.f1.v", f1).ok());
  ASSERT_TRUE(cluster->LoadBat(1, "sys.f2.v", FillerBat(2)).ok());
  cluster->Start();
  ASSERT_GE(cluster->NodeMemory(1).spills, 2u);  // t.id and f1 are on disk

  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());
  ExpectSumCorrect(&*session);  // faults sys.t.id back in from disk

  ASSERT_TRUE(cluster->CrashNode(1).ok());
  ASSERT_TRUE(Eventually([&] { return cluster->Resilience().ring_resplices >= 1; }));

  // Damage one surviving spill file while the node is down — a torn write
  // the crash left behind.
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(opts.spill_dir + "/node1")) {
    if (entry.path().extension() == ".frag") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 2u);
  {
    const auto mid = static_cast<std::streamoff>(fs::file_size(files[0]) / 2);
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(mid);
    char c;
    f.get(c);
    f.seekp(mid);
    f.put(static_cast<char>(c ^ 0x01));
  }

  const auto before = cluster->NodeMemory(1);
  ASSERT_TRUE(cluster->RestartNode(1).ok());
  const auto after = cluster->NodeMemory(1);
  // Checksum-valid files came back from disk; the damaged one was deleted
  // and its fragment re-homed from the ring.
  EXPECT_GE(after.recovered_from_disk, before.recovered_from_disk + 1);
  EXPECT_GE(after.corrupt_spill_files, before.corrupt_spill_files + 1);
  EXPECT_GE(after.refetched_from_ring, before.refetched_from_ring + 1);

  ASSERT_TRUE(Eventually([&] {
    auto result = session->Execute(kSumPlan);
    return result.ok() && std::get<int64_t>(result->result.scalar()) == 10;
  })) << "queries never recovered after restart";
}

TEST_F(ChaosTest, QueriesStayCorrectUnderMemoryPressure) {
  namespace fs = std::filesystem;
  const auto f1 = FillerBat(1);
  auto opts = ChaosOptions();
  opts.spill_dir = ::testing::TempDir() + "/chaos_spill_pressure";
  fs::remove_all(opts.spill_dir);
  // Budget holds two of the three fillers; alternating queries churn the
  // tier assignment through the production async-spill path.
  opts.memory.budget_bytes = 2 * f1->ByteSize() + 1024;
  cluster = std::make_unique<RingCluster>(opts);
  ASSERT_TRUE(cluster
                  ->LoadBat(1, "sys.t.id",
                            bat::Bat::MakeColumn(bat::MakeIntColumn({1, 2, 3, 4})))
                  .ok());
  ASSERT_TRUE(cluster->LoadBat(1, "sys.f1.v", f1).ok());
  ASSERT_TRUE(cluster->LoadBat(1, "sys.f2.v", FillerBat(2)).ok());
  ASSERT_TRUE(cluster->LoadBat(1, "sys.f3.v", FillerBat(3)).ok());
  cluster->Start();
  auto session = cluster->OpenSession(0);
  ASSERT_TRUE(session.ok());

  // Memory-pressure refusals are typed retryable; the client retry policy
  // must ride them out without ever seeing a wrong answer.
  SubmitOptions options;
  options.retry.max_attempts = 20;
  options.retry.initial_backoff = milliseconds(5);
  options.retry.max_backoff = milliseconds(50);

  const struct {
    const char* plan;
    int64_t expect;
  } queries[] = {{kSumPlan, 10},
                 {kF1SumPlan, 1000},
                 {kF2SumPlan, 2000},
                 {kF3SumPlan, 3000}};
  for (int round = 0; round < 6; ++round) {
    for (const auto& q : queries) {
      auto result = session->Execute(q.plan, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(std::get<int64_t>(result->result.scalar()), q.expect);
    }
  }

  const auto m = cluster->Memory();
  EXPECT_GT(m.spills, 0u);
  EXPECT_GT(m.evictions, 0u);
  EXPECT_GT(m.promotions, 0u);
  EXPECT_EQ(m.spill_failures, 0u);
  EXPECT_EQ(m.corrupt_spill_files, 0u);
}

// ---------------------------------------------------------------------------
// Writes under chaos (ISSUE-9): concurrent writers and readers over a lossy
// ring, with the fold owner crashed mid-compaction. Every acknowledged write
// survives, and every successful read validates bit-identically against a
// plain-C++ reference model at the read's snapshot version.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, AcknowledgedWritesSurviveCrashMidCompaction) {
  rdma::FaultInjector& fault = *MakeInjector(0xD17AD17A);
  const rdma::FaultLink all;
  fault.AddRule(rdma::FaultInjector::Drop(all, 0.03));
  fault.AddRule(rdma::FaultInjector::Duplicate(all, 0.02));
  fault.AddRule(rdma::FaultInjector::Delay(all, 0.02, FromMillis(1)));

  auto opts = ChaosOptions(3);
  opts.fault = &fault;
  opts.compaction.max_delta_count = 6;  // fold while the writers are active
  opts.compaction.interval = FromMillis(5);
  cluster = std::make_unique<RingCluster>(opts);
  // Both columns of sys.u live on node 1: its compactor owns the fold, and
  // crashing it re-homes the table onto an heir whose compactor takes over.
  ASSERT_TRUE(cluster
                  ->LoadBat(1, "sys.u.id",
                            bat::Bat::MakeColumn(bat::MakeLngColumn({1, 2, 3})))
                  .ok());
  ASSERT_TRUE(cluster
                  ->LoadBat(1, "sys.u.v",
                            bat::Bat::MakeColumn(bat::MakeLngColumn({10, 20, 30})))
                  .ok());

  // Reference model: id -> (value, insert version, delete version or 0).
  struct Row {
    int64_t v = 0;
    uint64_t born = 0;
    uint64_t died = 0;
  };
  std::mutex model_mu;
  std::map<int64_t, Row> model = {{1, {10, 0, 0}}, {2, {20, 0, 0}}, {3, {30, 0, 0}}};

  // Crash the fold owner exactly once, mid-fold: after the merge work, before
  // the commit. The commit guard then rejects the fold (Aborted) and the log
  // stands untouched — no acknowledged write rides on the abandoned fold.
  std::atomic<bool> crashed{false};
  std::atomic<bool> crash_ok{false};
  cluster->write_log().SetFoldHookForTest([&](const std::string& table) {
    if (table == "sys.u" && !crashed.exchange(true)) {
      crash_ok.store(cluster->CrashNode(1).ok());
    }
  });
  cluster->Start();

  SubmitOptions write_opts;
  write_opts.retry.max_attempts = 20;
  write_opts.retry.initial_backoff = milliseconds(2);
  write_opts.retry.max_backoff = milliseconds(20);

  // Two writers on the surviving nodes. Insert plans carry no ring pins, so
  // with admission retries every statement must eventually be acknowledged.
  auto writer = [&](core::NodeId node, int64_t first_id) {
    auto session = cluster->OpenSession(node);
    ASSERT_TRUE(session.ok());
    for (int64_t i = 0; i < 12; ++i) {
      const int64_t id = first_id + i;
      auto r = session->Execute("insert into u values (" + std::to_string(id) + ", " +
                                    std::to_string(id * 10) + ")",
                                write_opts);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(std::get<int64_t>(r->result.scalar()), 1);
      std::lock_guard<std::mutex> lock(model_mu);
      model[id] = {id * 10, r->commit_version, 0};
    }
  };

  // Readers record (snapshot version, observed multiset) pairs; during the
  // crash window a read may fail typed (Unavailable / TimedOut), never wrong.
  std::mutex obs_mu;
  std::vector<std::pair<uint64_t, std::multiset<int64_t>>> observations;
  std::atomic<bool> stop_readers{false};
  auto reader = [&](core::NodeId node) {
    auto session = cluster->OpenSession(node);
    ASSERT_TRUE(session.ok());
    SubmitOptions read_opts;
    read_opts.retry.max_attempts = 4;
    while (!stop_readers.load()) {
      auto r = session->Execute("select v from u", read_opts);
      if (r.ok()) {
        std::multiset<int64_t> got;
        for (size_t i = 0; i < r->result.num_rows(); ++i) {
          got.insert(r->result.Int64At(i, 0));
        }
        std::lock_guard<std::mutex> lock(obs_mu);
        observations.emplace_back(r->snapshot_version, std::move(got));
      }
      std::this_thread::sleep_for(milliseconds(2));
    }
  };

  std::thread w0(writer, 0, 100), w2(writer, 2, 200);
  std::thread r0(reader, 0), r2(reader, 2);
  w0.join();
  w2.join();

  // One delete, concurrent with the readers; it pins the table's columns, so
  // it rides the retry machinery across the re-homing window.
  {
    auto session = cluster->OpenSession(2);
    ASSERT_TRUE(session.ok());
    SubmitOptions del_opts = write_opts;
    uint64_t delete_version = 0;
    ASSERT_TRUE(Eventually(
        [&] {
          auto r = session->Execute("delete from u where id = 2", del_opts);
          if (!r.ok()) return false;
          EXPECT_EQ(std::get<int64_t>(r->result.scalar()), 1);
          delete_version = r->commit_version;
          return true;
        },
        15000));
    std::lock_guard<std::mutex> lock(model_mu);
    model[2].died = delete_version;
  }

  // The owner's first fold fires the hook (crash), the guard abandons that
  // fold, and after the re-homing the heir's compactor folds every pending
  // delta under the next base version.
  EXPECT_TRUE(Eventually([&] { return crashed.load(); }, 10000));
  EXPECT_TRUE(Eventually(
      [&] { return cluster->Writes().compactions_abandoned >= 1; }, 10000));
  EXPECT_TRUE(Eventually(
      [&] {
        const auto m = cluster->Writes();
        return m.compactions >= 1 && m.pending_deltas == 0;
      },
      20000));
  EXPECT_TRUE(crash_ok.load());

  stop_readers.store(true);
  r0.join();
  r2.join();

  // Reference view at snapshot s.
  const auto expect_at = [&](uint64_t s) {
    std::multiset<int64_t> want;
    for (const auto& [id, row] : model) {
      if (row.born <= s && (row.died == 0 || row.died > s)) want.insert(row.v);
    }
    return want;
  };

  // Every successful read was bit-identical to the reference at its snapshot.
  ASSERT_FALSE(observations.empty());
  for (const auto& [s, got] : observations) {
    EXPECT_EQ(got, expect_at(s)) << "read at snapshot " << s;
  }

  // Every acknowledged write survived the crash and the fold.
  {
    auto session = cluster->OpenSession(0);
    ASSERT_TRUE(session.ok());
    auto r = session->Execute("select v from u", write_opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::multiset<int64_t> final_rows;
    for (size_t i = 0; i < r->result.num_rows(); ++i) {
      final_rows.insert(r->result.Int64At(i, 0));
    }
    EXPECT_EQ(final_rows, expect_at(cluster->CurrentWriteVersion()));
  }

  const auto m = cluster->Writes();
  EXPECT_EQ(m.rows_inserted, 24u);
  EXPECT_EQ(m.rows_deleted, 1u);
  EXPECT_GT(m.deltas_published, 0u);
  EXPECT_GT(m.deltas_merged, 0u);
  EXPECT_GT(m.deltas_folded, 0u);
}

// ---------------------------------------------------------------------------
// Heartbeat accounting.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, HeartbeatsFlowOnAHealthyRing) {
  SetUpCluster(ChaosOptions());
  ASSERT_TRUE(Eventually([&] {
    const auto res = cluster->Resilience();
    return res.heartbeats_sent > 0 && res.heartbeats_received > 0;
  }));
  // A healthy ring never suspects anyone.
  EXPECT_EQ(cluster->Resilience().ring_resplices, 0u);
}

}  // namespace
}  // namespace dcy::runtime
