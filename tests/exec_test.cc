// Tests for the process-wide work-stealing executor: ParallelFor coverage,
// cross-worker stealing, the blocking-task escape hatch, the exactly-once
// shutdown contract, and policy plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "exec/executor.h"

namespace dcy::exec {
namespace {

TEST(ExecPolicyTest, SetAndGetRoundTrip) {
  const ExecPolicy saved = GetExecPolicy();
  ExecPolicy p;
  p.workers = 7;
  p.morsel_rows = 1234;
  p.min_parallel_rows = 999;
  p.join_partitions = 32;
  SetExecPolicy(p);
  const ExecPolicy got = GetExecPolicy();
  EXPECT_EQ(got.workers, 7u);
  EXPECT_EQ(got.morsel_rows, 1234u);
  EXPECT_EQ(got.min_parallel_rows, 999u);
  EXPECT_EQ(got.join_partitions, 32u);
  SetExecPolicy(saved);
}

TEST(PartitionedReduceTest, SumsEveryPartitionExactlyOnce) {
  for (size_t workers : {size_t{1}, size_t{4}}) {
    const size_t parts = 37;
    const int64_t got = PartitionedReduce<int64_t>(
        parts, int64_t{100},
        [](size_t p) { return static_cast<int64_t>(p); },
        [](int64_t& acc, int64_t& partial) { acc += partial; }, workers);
    EXPECT_EQ(got, 100 + 37 * 36 / 2) << "workers=" << workers;
  }
}

TEST(PartitionedReduceTest, FoldsInAscendingPartitionOrder) {
  // The fold must see partition 0 first however the maps were scheduled —
  // the property order-carrying merges (chains, morsel stitches) rely on.
  const size_t parts = 19;
  std::vector<size_t> order = PartitionedReduce<std::vector<size_t>>(
      parts, std::vector<size_t>{},
      [](size_t p) { return std::vector<size_t>{p}; },
      [](std::vector<size_t>& acc, std::vector<size_t>& partial) {
        acc.insert(acc.end(), partial.begin(), partial.end());
      },
      /*max_workers=*/4);
  ASSERT_EQ(order.size(), parts);
  for (size_t p = 0; p < parts; ++p) EXPECT_EQ(order[p], p);
}

TEST(PartitionedReduceTest, ZeroPartsReturnsInit) {
  const int got = PartitionedReduce<int>(
      0, 42, [](size_t) { return 1; }, [](int& acc, int& p) { acc += p; });
  EXPECT_EQ(got, 42);
}

TEST(ExecPolicyTest, ScopedOverrideRestores) {
  const ExecPolicy before = GetExecPolicy();
  {
    ExecPolicy p;
    p.workers = 3;
    ScopedExecPolicy scoped(p);
    EXPECT_EQ(GetExecPolicy().workers, 3u);
  }
  EXPECT_EQ(GetExecPolicy().workers, before.workers);
}

TEST(ExecutorTest, ThreadsAreCreatedOnceUpFront) {
  Executor e(3);
  EXPECT_EQ(e.workers(), 3u);
  // 3 primaries + 3 parked reserves, all from the constructor.
  EXPECT_EQ(e.metrics().threads_created, 6u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    e.Submit([&] { ran.fetch_add(1); });
  }
  while (ran.load() < 50) std::this_thread::yield();
  EXPECT_EQ(e.metrics().threads_created, 6u);  // steady state: zero spawns
  EXPECT_GE(e.metrics().tasks_executed, 50u);
}

TEST(ExecutorTest, ParallelForCoversEveryRowExactlyOnce) {
  Executor e(4);
  constexpr size_t kRows = 100000;
  std::vector<std::atomic<int>> hits(kRows);
  for (auto& h : hits) h.store(0);
  e.ParallelFor(kRows, 1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "row " << i;
  }
}

TEST(ExecutorTest, ParallelForWorksFromExternalAndNestedContexts) {
  Executor e(4);
  // External caller (this thread is not a pool member).
  std::atomic<int64_t> total{0};
  e.ParallelFor(1000, 10, [&](size_t b, size_t end) {
    int64_t s = 0;
    for (size_t i = b; i < end; ++i) s += static_cast<int64_t>(i);
    total.fetch_add(s);
  });
  EXPECT_EQ(total.load(), 999 * 1000 / 2);

  // Nested: a pool task launches its own ParallelFor.
  std::promise<int64_t> done;
  e.Submit([&] {
    std::atomic<int64_t> inner{0};
    e.ParallelFor(1000, 10, [&](size_t b, size_t end) {
      int64_t s = 0;
      for (size_t i = b; i < end; ++i) s += static_cast<int64_t>(i);
      inner.fetch_add(s);
    });
    done.set_value(inner.load());
  });
  EXPECT_EQ(done.get_future().get(), 999 * 1000 / 2);
}

TEST(ExecutorTest, ParallelForSequentialWhenCappedToOneWorker) {
  Executor e(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  std::mutex mu;
  e.ParallelFor(
      10000, 100,
      [&](size_t, size_t) {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      /*max_workers=*/1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);  // ran inline, no pool involvement
}

TEST(ExecutorTest, SiblingsStealFromABusyWorkersDeque) {
  // State outlives the executor (declared first): the executor's destructor
  // joins every worker before these are torn down.
  std::atomic<int> children_done{0};
  std::promise<void> parent_release;
  std::shared_future<void> released = parent_release.get_future().share();
  std::promise<void> flooded;
  Executor e(4);
  const auto before = e.metrics();
  // One task floods its own deque with children, then camps on its thread;
  // the children can only finish if siblings steal them.
  e.Submit([&, released] {  // shared_future copied: thread-safe waiting
    for (int i = 0; i < 64; ++i) {
      e.Submit([&] { children_done.fetch_add(1); });
    }
    flooded.set_value();
    released.wait();  // occupy this worker until the children are stolen
  });
  flooded.get_future().wait();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (children_done.load() < 64 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(children_done.load(), 64);
  EXPECT_GT(e.metrics().tasks_stolen, before.tasks_stolen);
  parent_release.set_value();
}

TEST(ExecutorTest, BlockingScopeLetsReservesRunTheBacklog) {
  // State outlives the executor (declared first): its destructor joins the
  // workers before any of this is torn down.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> blocked_entered{0};
  std::atomic<int> ran{0};
  Executor e(2);
  // Park both primaries inside blocking sections.
  for (int i = 0; i < 2; ++i) {
    e.Submit([&, released] {  // shared_future copied: thread-safe waiting
      Executor::BlockingScope scope(e);
      blocked_entered.fetch_add(1);
      released.wait();
    });
  }
  while (blocked_entered.load() < 2) std::this_thread::yield();
  // Runnable work must still flow: the reserves take over.
  for (int i = 0; i < 16; ++i) {
    e.Submit([&] { ran.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 16) << "runnable tasks starved behind blocked ones";
  EXPECT_GE(e.metrics().blocking_sections, 2u);
  release.set_value();
}

TEST(ExecutorTest, DestructorRunsEveryQueuedTaskExactlyOnce) {
  std::atomic<int> ran{0};
  {
    Executor e(2);
    for (int i = 0; i < 200; ++i) {
      e.Submit([&] { ran.fetch_add(1); });
    }
    // Destruct immediately: whatever is still queued must run, not drop.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ExecutorTest, ShutdownRacesWithConcurrentSubmitters) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    {
      Executor e(2);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 3; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 50; ++i) {
            e.Submit([&] { ran.fetch_add(1); });
          }
        });
      }
      for (auto& t : submitters) t.join();
    }
    ASSERT_EQ(ran.load(), 150) << "round " << round;
  }
}

TEST(ExecutorTest, ParallelForZeroAndTinyInputs) {
  Executor e(2);
  int calls = 0;
  e.ParallelFor(0, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> rows{0};
  e.ParallelFor(3, 16, [&](size_t b, size_t end) {
    rows.fetch_add(static_cast<int>(end - b));
  });
  EXPECT_EQ(rows.load(), 3);
}

TEST(ExecutorTest, DefaultExecutorIsSharedAndAlive) {
  Executor& a = Executor::Default();
  Executor& b = Executor::Default();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.workers(), 1u);
  std::promise<void> done;
  a.Submit([&] { done.set_value(); });
  done.get_future().wait();
}

}  // namespace
}  // namespace dcy::exec
