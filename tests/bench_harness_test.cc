// Tests for the shared bench harness: percentile math, warmup/repeat
// accounting, metric averaging, and the BENCH_*.json schema round-trip.
#include "bench/harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace dcy::bench {
namespace {

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(ExactPercentileTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(ExactPercentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(ExactPercentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactPercentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(ExactPercentile({7.0}, 100.0), 7.0);
}

TEST(ExactPercentileTest, InterpolatesBetweenOrderStatistics) {
  // Sorted: 10 20 30 40 50. rank(p50) = 2 -> 30; rank(p95) = 3.8 -> 48.
  const std::vector<double> s = {50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(ExactPercentile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(s, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(s, 95.0), 48.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(s, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(s, 25.0), 20.0);
}

TEST(ExactPercentileTest, ClampsOutOfRangeP) {
  const std::vector<double> s = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ExactPercentile(s, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactPercentile(s, 250.0), 3.0);
}

TEST(HarnessTest, WarmupAndRepeatAccounting) {
  std::vector<std::string> args = {"prog", "--repeat=4", "--warmup=2", "--quiet"};
  auto argv = Argv(args);
  Harness h("unit", static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(h.repeats(), 4);
  EXPECT_EQ(h.warmup(), 2);

  int calls = 0;
  const CaseResult& r = h.Run("case_a", {{"k", "v"}}, [&] {
    ++calls;
    RepResult rep;
    rep.items = 10.0;
    rep.metrics["finished"] = calls;  // varies per call: checks mean over measured reps
    return rep;
  });
  // 2 warmup (untimed, unrecorded) + 4 measured calls.
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(r.repeats, 4);
  EXPECT_EQ(r.warmup, 2);
  EXPECT_DOUBLE_EQ(r.total_items, 40.0);
  // Metrics average over the measured reps only: calls 3,4,5,6 -> mean 4.5.
  EXPECT_DOUBLE_EQ(r.metrics.at("finished"), 4.5);
  EXPECT_GT(r.p50_ns, 0.0);
  EXPECT_LE(r.min_ns, r.p50_ns);
  EXPECT_LE(r.p50_ns, r.p95_ns);
  EXPECT_LE(r.p95_ns, r.max_ns);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(HarnessTest, DefaultsAndSpaceSeparatedFlagForms) {
  std::vector<std::string> args = {"prog", "--repeat", "7", "--json", "out.json"};
  auto argv = Argv(args);
  Harness h("unit", static_cast<int>(argv.size()), argv.data(), 3, 1);
  EXPECT_EQ(h.repeats(), 7);
  EXPECT_EQ(h.warmup(), 1);
  EXPECT_EQ(h.json_path(), "out.json");

  std::vector<std::string> bare = {"prog", "--json"};
  auto bargv = Argv(bare);
  Harness hb("fig6_loit", static_cast<int>(bargv.size()), bargv.data());
  EXPECT_EQ(hb.json_path(), "BENCH_fig6_loit.json");

  std::vector<std::string> none = {"prog"};
  auto nargv = Argv(none);
  Harness hn("unit", static_cast<int>(nargv.size()), nargv.data(), 5, 2);
  EXPECT_EQ(hn.repeats(), 5);
  EXPECT_EQ(hn.warmup(), 2);
  EXPECT_TRUE(hn.json_path().empty());
}

TEST(JsonTest, QuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonQuote("a\fb"), "\"a\\u000cb\"");
}

TEST(JsonTest, ControlCharactersRoundTrip) {
  // The emitter writes \u00XX for control chars; the parser must read them
  // back (plus general \uXXXX as UTF-8).
  bool ok = false;
  JsonValue v = JsonValue::Parse(JsonQuote("a\fb\x01"), &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v.str(), "a\fb\x01");
  v = JsonValue::Parse("\"\\u0041\\u00e9\\u20ac\"", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v.str(), "A\xc3\xa9\xe2\x82\xac");  // A, é, €
  JsonValue::Parse("\"\\u12g4\"", &ok);
  EXPECT_FALSE(ok);
  JsonValue::Parse("\"\\u12\"", &ok);
  EXPECT_FALSE(ok);
}

TEST(JsonTest, ParsesScalarsObjectsArrays) {
  bool ok = false;
  JsonValue v = JsonValue::Parse(
      R"({"s": "x\ty", "n": -2.5e3, "b": true, "z": null, "a": [1, 2, 3], "o": {"k": 1}})",
      &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v["s"].str(), "x\ty");
  EXPECT_DOUBLE_EQ(v["n"].number(), -2500.0);
  EXPECT_TRUE(v["b"].boolean());
  EXPECT_TRUE(v["z"].is_null());
  ASSERT_EQ(v["a"].array().size(), 3u);
  EXPECT_DOUBLE_EQ(v["a"].array()[1].number(), 2.0);
  EXPECT_DOUBLE_EQ(v["o"]["k"].number(), 1.0);
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "{\"a\": 1} trailing", "\"open"}) {
    bool ok = true;
    JsonValue v = JsonValue::Parse(bad, &ok);
    EXPECT_FALSE(ok) << bad;
    EXPECT_TRUE(v.is_null()) << bad;
  }
}

TEST(JsonTest, SchemaRoundTrip) {
  CaseResult a;
  a.name = "loit_0.5";
  a.params = {{"loit", "0.5"}, {"scale", "0.20"}};
  a.warmup = 1;
  a.repeats = 3;
  a.p50_ns = 1.25e9;
  a.p95_ns = 1.5e9;
  a.mean_ns = 1.3e9;
  a.min_ns = 1.2e9;
  a.max_ns = 1.6e9;
  a.total_items = 2988.0;
  a.throughput = 830.25;
  a.metrics = {{"finished", 996.0}, {"loads", 12345.0}};
  CaseResult b;
  b.name = "empty \"quoted\"";
  b.repeats = 1;

  const std::string doc = Harness::ToJson("fig6_loit", 3, 1, {a, b});
  bool ok = false;
  JsonValue parsed = JsonValue::Parse(doc, &ok);
  ASSERT_TRUE(ok) << doc;
  EXPECT_EQ(parsed["benchmark"].str(), "fig6_loit");
  EXPECT_EQ(parsed["schema"].str(), "dcy-bench-v1");
  EXPECT_DOUBLE_EQ(parsed["repeats"].number(), 3.0);

  std::vector<CaseResult> cases;
  ASSERT_TRUE(CasesFromJson(parsed, &cases));
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].name, a.name);
  EXPECT_EQ(cases[0].params, a.params);
  EXPECT_EQ(cases[0].repeats, a.repeats);
  EXPECT_EQ(cases[0].warmup, a.warmup);
  EXPECT_DOUBLE_EQ(cases[0].p50_ns, a.p50_ns);
  EXPECT_DOUBLE_EQ(cases[0].p95_ns, a.p95_ns);
  EXPECT_DOUBLE_EQ(cases[0].mean_ns, a.mean_ns);
  EXPECT_DOUBLE_EQ(cases[0].min_ns, a.min_ns);
  EXPECT_DOUBLE_EQ(cases[0].max_ns, a.max_ns);
  EXPECT_DOUBLE_EQ(cases[0].total_items, a.total_items);
  EXPECT_DOUBLE_EQ(cases[0].throughput, a.throughput);
  EXPECT_EQ(cases[0].metrics, a.metrics);
  EXPECT_EQ(cases[1].name, b.name);
  EXPECT_TRUE(cases[1].params.empty());
  EXPECT_TRUE(cases[1].metrics.empty());
}

TEST(JsonTest, CasesFromJsonRejectsWrongSchema) {
  bool ok = false;
  std::vector<CaseResult> cases;
  JsonValue wrong = JsonValue::Parse(R"({"schema": "other", "cases": []})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(CasesFromJson(wrong, &cases));
  JsonValue missing = JsonValue::Parse(
      R"({"schema": "dcy-bench-v1", "cases": [{"name": "x"}]})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(CasesFromJson(missing, &cases));
}

}  // namespace
}  // namespace dcy::bench
