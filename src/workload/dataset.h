// Dataset construction: the paper's base data set is "8 GB composed of 1000
// BATs with sizes varying from 1 MB to 10 MB ... uniformly distributed over
// all nodes" (§5 Setup).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/types.h"
#include "simdc/sim_cluster.h"

namespace dcy::workload {

/// \brief Static description of the distributed database: every BAT's size
/// and owning node.
struct Dataset {
  struct BatSpec {
    core::BatId id = core::kInvalidBat;
    uint64_t size = 0;
    core::NodeId owner = core::kInvalidNode;
  };

  std::vector<BatSpec> bats;  // indexed by BatId

  uint32_t num_bats() const { return static_cast<uint32_t>(bats.size()); }
  uint64_t total_bytes() const;
  core::NodeId owner_of(core::BatId id) const { return bats[id].owner; }
  uint64_t size_of(core::BatId id) const { return bats[id].size; }
};

/// Builds the §5 dataset: `num_bats` BATs with uniform sizes in
/// [min_size, max_size], owners assigned uniformly at random.
Dataset MakeUniformDataset(uint32_t num_bats, uint64_t min_size, uint64_t max_size,
                           uint32_t num_nodes, Rng* rng);

/// Registers every BAT of `dataset` with its owner node in the cluster.
void InstallDataset(const Dataset& dataset, simdc::SimCluster* cluster);

}  // namespace dcy::workload
