#include "workload/tpch_data.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bat/column.h"
#include "common/random.h"

namespace dcy::workload {

namespace {

// ---- calendar helpers (Howard Hinnant's civil-days algorithms) -------------

int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

/// Days-since-epoch -> the int64 yyyymmdd encoding all date columns use.
int64_t Yyyymmdd(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  return (y + (m <= 2)) * 10000 + m * 100 + d;
}

// The spec's fixed nation/region tables (25 nations across 5 regions).
constexpr const char* kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                         "MIDDLE EAST"};
struct NationSpec {
  const char* name;
  int64_t region;
};
constexpr NationSpec kNations[25] = {
    {"ALGERIA", 0},   {"ARGENTINA", 1}, {"BRAZIL", 1},     {"CANADA", 1},
    {"EGYPT", 4},     {"ETHIOPIA", 0},  {"FRANCE", 3},     {"GERMANY", 3},
    {"INDIA", 2},     {"INDONESIA", 2}, {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},     {"JORDAN", 4},    {"KENYA", 0},      {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},{"PERU", 1},      {"CHINA", 2},      {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "MACHINERY", "HOUSEHOLD"};
constexpr const char* kWords[8] = {"carefully", "quickly", "furious", "pending",
                                   "express",   "regular", "ironic",  "deposits"};

std::string RandomWords(Rng& rng, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng.UniformInt(0, 7)];
  }
  return out;
}

}  // namespace

TpchData GenerateTpchData(double scale_factor, uint64_t seed) {
  TpchData t;
  Rng rng(seed);
  const auto scaled = [&](double base) {
    return static_cast<size_t>(std::max(1.0, std::floor(base * scale_factor)));
  };
  const size_t customers = scaled(150000);
  const size_t suppliers = scaled(10000);
  const size_t orders = scaled(1500000);

  for (int64_t r = 0; r < 5; ++r) {
    t.region.regionkey.push_back(r);
    t.region.name.push_back(kRegionNames[r]);
  }
  for (int64_t n = 0; n < 25; ++n) {
    t.nation.nationkey.push_back(n);
    t.nation.regionkey.push_back(kNations[n].region);
    t.nation.name.push_back(kNations[n].name);
  }

  for (size_t s = 1; s <= suppliers; ++s) {
    t.supplier.suppkey.push_back(static_cast<int64_t>(s));
    t.supplier.nationkey.push_back(rng.UniformInt(0, 24));
  }

  char buf[64];
  for (size_t c = 1; c <= customers; ++c) {
    const int64_t nation = rng.UniformInt(0, 24);
    t.customer.custkey.push_back(static_cast<int64_t>(c));
    t.customer.nationkey.push_back(nation);
    // Cent-quantized balances, like dbgen's -999.99 .. 9999.99 domain.
    t.customer.acctbal.push_back(static_cast<double>(rng.UniformInt(-99999, 999999)) /
                                 100.0);
    std::snprintf(buf, sizeof(buf), "Customer#%09zu", c);
    t.customer.name.push_back(buf);
    t.customer.address.push_back(RandomWords(rng, 2));
    std::snprintf(buf, sizeof(buf), "%02lld-%03lld-%03lld-%04lld",
                  static_cast<long long>(10 + nation),
                  static_cast<long long>(rng.UniformInt(100, 999)),
                  static_cast<long long>(rng.UniformInt(100, 999)),
                  static_cast<long long>(rng.UniformInt(1000, 9999)));
    t.customer.phone.push_back(buf);
    t.customer.mktsegment.push_back(kSegments[rng.UniformInt(0, 4)]);
    t.customer.comment.push_back(RandomWords(rng, 3));
  }

  const int64_t start_day = DaysFromCivil(1992, 1, 1);
  const int64_t end_day = DaysFromCivil(1998, 8, 2);
  const int64_t flag_cutoff = Yyyymmdd(DaysFromCivil(1995, 6, 17));
  for (size_t o = 1; o <= orders; ++o) {
    const int64_t order_day = rng.UniformInt(start_day, end_day);
    t.orders.orderkey.push_back(static_cast<int64_t>(o));
    t.orders.custkey.push_back(rng.UniformInt(1, static_cast<int64_t>(customers)));
    t.orders.orderdate.push_back(Yyyymmdd(order_day));
    t.orders.shippriority.push_back(0);

    const int64_t lines = rng.UniformInt(1, 7);  // mean 4 -> ~6M lines at SF-1
    for (int64_t l = 0; l < lines; ++l) {
      const int64_t shipdate = Yyyymmdd(order_day + rng.UniformInt(1, 121));
      t.lineitem.orderkey.push_back(static_cast<int64_t>(o));
      t.lineitem.suppkey.push_back(rng.UniformInt(1, static_cast<int64_t>(suppliers)));
      t.lineitem.shipdate.push_back(shipdate);
      t.lineitem.quantity.push_back(static_cast<double>(rng.UniformInt(1, 50)));
      t.lineitem.extendedprice.push_back(
          static_cast<double>(rng.UniformInt(90100, 10495000)) / 100.0);
      // Whole-percent discounts/taxes: the k/100.0 doubles equal the parsed
      // 0.0k SQL literals bit for bit, so band predicates are exact.
      t.lineitem.discount.push_back(static_cast<double>(rng.UniformInt(0, 10)) / 100.0);
      t.lineitem.tax.push_back(static_cast<double>(rng.UniformInt(0, 8)) / 100.0);
      t.lineitem.returnflag.push_back(
          shipdate <= flag_cutoff ? (rng.Bernoulli(0.5) ? "R" : "A") : "N");
      t.lineitem.linestatus.push_back(shipdate > flag_cutoff ? "O" : "F");
    }
  }
  return t;
}

std::vector<std::pair<std::string, bat::BatPtr>> TpchBats(const TpchData& d) {
  std::vector<std::pair<std::string, bat::BatPtr>> out;
  auto lng = [&out](const char* name, std::vector<int64_t> v) {
    out.emplace_back(name, bat::Bat::MakeColumn(bat::MakeLngColumn(std::move(v))));
  };
  auto dbl = [&out](const char* name, std::vector<double> v) {
    out.emplace_back(name, bat::Bat::MakeColumn(bat::MakeDblColumn(std::move(v))));
  };
  auto str = [&out](const char* name, const std::vector<std::string>& v) {
    out.emplace_back(name, bat::Bat::MakeColumn(bat::MakeStrColumn(v)));
  };
  lng("sys.lineitem.l_orderkey", d.lineitem.orderkey);
  lng("sys.lineitem.l_suppkey", d.lineitem.suppkey);
  lng("sys.lineitem.l_shipdate", d.lineitem.shipdate);
  dbl("sys.lineitem.l_quantity", d.lineitem.quantity);
  dbl("sys.lineitem.l_extendedprice", d.lineitem.extendedprice);
  dbl("sys.lineitem.l_discount", d.lineitem.discount);
  dbl("sys.lineitem.l_tax", d.lineitem.tax);
  str("sys.lineitem.l_returnflag", d.lineitem.returnflag);
  str("sys.lineitem.l_linestatus", d.lineitem.linestatus);
  lng("sys.orders.o_orderkey", d.orders.orderkey);
  lng("sys.orders.o_custkey", d.orders.custkey);
  lng("sys.orders.o_orderdate", d.orders.orderdate);
  lng("sys.orders.o_shippriority", d.orders.shippriority);
  lng("sys.customer.c_custkey", d.customer.custkey);
  lng("sys.customer.c_nationkey", d.customer.nationkey);
  dbl("sys.customer.c_acctbal", d.customer.acctbal);
  str("sys.customer.c_name", d.customer.name);
  str("sys.customer.c_address", d.customer.address);
  str("sys.customer.c_phone", d.customer.phone);
  str("sys.customer.c_mktsegment", d.customer.mktsegment);
  str("sys.customer.c_comment", d.customer.comment);
  lng("sys.supplier.s_suppkey", d.supplier.suppkey);
  lng("sys.supplier.s_nationkey", d.supplier.nationkey);
  lng("sys.nation.n_nationkey", d.nation.nationkey);
  lng("sys.nation.n_regionkey", d.nation.regionkey);
  str("sys.nation.n_name", d.nation.name);
  lng("sys.region.r_regionkey", d.region.regionkey);
  str("sys.region.r_name", d.region.name);
  return out;
}

const std::vector<int>& TpchSqlQueries() {
  static const std::vector<int> kQueries = {1, 3, 5, 6, 10};
  return kQueries;
}

const char* TpchQuerySql(int q) {
  switch (q) {
    case 1:
      return R"(select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus)";
    case 3:
      return R"(select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10)";
    case 5:
      return R"(select n_name,
       sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01'
  and o_orderdate <= date '1994-12-31'
group by n_name
order by revenue desc)";
    case 6:
      return R"(select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01'
  and l_shipdate <= date '1994-12-31'
  and l_discount >= 0.05 and l_discount <= 0.07
  and l_quantity < 24)";
    case 10:
      return R"(select c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
from customer, orders, lineitem, nation
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate >= date '1993-10-01'
  and o_orderdate <= date '1993-12-31'
  and l_returnflag = 'R'
  and c_nationkey = n_nationkey
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
order by revenue desc
limit 20)";
    default:
      return nullptr;
  }
}

// ---- reference answers -----------------------------------------------------

namespace {

using bat::Value;

TpchAnswer RefQ1(const TpchData& d) {
  struct Acc {
    double qty = 0, base = 0, disc_price = 0, charge = 0, disc = 0;
    int64_t count = 0;
  };
  std::map<std::pair<std::string, std::string>, Acc> groups;  // ordered = ORDER BY
  for (size_t i = 0; i < d.lineitem.rows(); ++i) {
    if (d.lineitem.shipdate[i] > 19980902) continue;
    Acc& a = groups[{d.lineitem.returnflag[i], d.lineitem.linestatus[i]}];
    const double price = d.lineitem.extendedprice[i];
    const double disc = d.lineitem.discount[i];
    a.qty += d.lineitem.quantity[i];
    a.base += price;
    a.disc_price += price * (1 - disc);
    a.charge += price * (1 - disc) * (1 + d.lineitem.tax[i]);
    a.disc += disc;
    ++a.count;
  }
  TpchAnswer out;
  out.names = {"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
               "sum_disc_price", "sum_charge", "avg_qty", "avg_price",
               "avg_disc", "count_order"};
  for (const auto& [key, a] : groups) {
    const double n = static_cast<double>(a.count);
    out.rows.push_back({Value::MakeStr(key.first), Value::MakeStr(key.second),
                        Value::MakeDbl(a.qty), Value::MakeDbl(a.base),
                        Value::MakeDbl(a.disc_price), Value::MakeDbl(a.charge),
                        Value::MakeDbl(a.qty / n), Value::MakeDbl(a.base / n),
                        Value::MakeDbl(a.disc / n), Value::MakeLng(a.count)});
  }
  return out;
}

TpchAnswer RefQ3(const TpchData& d) {
  // Orderkeys are dense 1..N, so index by key directly.
  std::vector<bool> building(d.customer.rows() + 1, false);
  for (size_t i = 0; i < d.customer.rows(); ++i) {
    building[d.customer.custkey[i]] = d.customer.mktsegment[i] == "BUILDING";
  }
  std::vector<int64_t> odate(d.orders.rows() + 1, -1);  // -1 = not qualifying
  for (size_t i = 0; i < d.orders.rows(); ++i) {
    if (d.orders.orderdate[i] < 19950315 && building[d.orders.custkey[i]]) {
      odate[d.orders.orderkey[i]] = d.orders.orderdate[i];
    }
  }
  struct Row {
    int64_t orderkey, orderdate;
    double revenue = 0;
  };
  std::map<int64_t, Row> groups;
  for (size_t i = 0; i < d.lineitem.rows(); ++i) {
    const int64_t ok = d.lineitem.orderkey[i];
    if (d.lineitem.shipdate[i] <= 19950315 || odate[ok] < 0) continue;
    Row& r = groups[ok];
    r.orderkey = ok;
    r.orderdate = odate[ok];
    r.revenue += d.lineitem.extendedprice[i] * (1 - d.lineitem.discount[i]);
  }
  std::vector<Row> rows;
  for (const auto& [key, r] : groups) rows.push_back(r);
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return a.orderdate < b.orderdate;
  });
  if (rows.size() > 10) rows.resize(10);
  TpchAnswer out;
  out.names = {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"};
  for (const auto& r : rows) {
    out.rows.push_back({Value::MakeLng(r.orderkey), Value::MakeDbl(r.revenue),
                        Value::MakeLng(r.orderdate), Value::MakeLng(0)});
  }
  return out;
}

TpchAnswer RefQ5(const TpchData& d) {
  std::vector<bool> asia_nation(25, false);
  for (size_t i = 0; i < d.nation.rows(); ++i) {
    asia_nation[d.nation.nationkey[i]] =
        d.region.name[d.nation.regionkey[i]] == "ASIA";
  }
  std::vector<int64_t> cust_nation(d.customer.rows() + 1, -1);
  for (size_t i = 0; i < d.customer.rows(); ++i) {
    cust_nation[d.customer.custkey[i]] = d.customer.nationkey[i];
  }
  std::vector<int64_t> supp_nation(d.supplier.rows() + 1, -1);
  for (size_t i = 0; i < d.supplier.rows(); ++i) {
    supp_nation[d.supplier.suppkey[i]] = d.supplier.nationkey[i];
  }
  std::vector<int64_t> order_cust(d.orders.rows() + 1, -1);  // -1 = out of window
  for (size_t i = 0; i < d.orders.rows(); ++i) {
    if (d.orders.orderdate[i] >= 19940101 && d.orders.orderdate[i] <= 19941231) {
      order_cust[d.orders.orderkey[i]] = d.orders.custkey[i];
    }
  }
  std::map<int64_t, double> by_nation;
  for (size_t i = 0; i < d.lineitem.rows(); ++i) {
    const int64_t cust = order_cust[d.lineitem.orderkey[i]];
    if (cust < 0) continue;
    const int64_t sn = supp_nation[d.lineitem.suppkey[i]];
    if (sn != cust_nation[cust] || !asia_nation[sn]) continue;
    by_nation[sn] += d.lineitem.extendedprice[i] * (1 - d.lineitem.discount[i]);
  }
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& [nk, rev] : by_nation) rows.emplace_back(d.nation.name[nk], rev);
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  TpchAnswer out;
  out.names = {"n_name", "revenue"};
  for (const auto& [name, rev] : rows) {
    out.rows.push_back({Value::MakeStr(name), Value::MakeDbl(rev)});
  }
  return out;
}

TpchAnswer RefQ6(const TpchData& d) {
  double revenue = 0;
  for (size_t i = 0; i < d.lineitem.rows(); ++i) {
    if (d.lineitem.shipdate[i] < 19940101 || d.lineitem.shipdate[i] > 19941231) continue;
    if (d.lineitem.discount[i] < 0.05 || d.lineitem.discount[i] > 0.07) continue;
    if (d.lineitem.quantity[i] >= 24) continue;
    revenue += d.lineitem.extendedprice[i] * d.lineitem.discount[i];
  }
  TpchAnswer out;
  out.names = {"revenue"};
  out.rows.push_back({Value::MakeDbl(revenue)});
  return out;
}

TpchAnswer RefQ10(const TpchData& d) {
  std::vector<int64_t> order_cust(d.orders.rows() + 1, -1);
  for (size_t i = 0; i < d.orders.rows(); ++i) {
    if (d.orders.orderdate[i] >= 19931001 && d.orders.orderdate[i] <= 19931231) {
      order_cust[d.orders.orderkey[i]] = d.orders.custkey[i];
    }
  }
  std::map<int64_t, double> by_cust;
  for (size_t i = 0; i < d.lineitem.rows(); ++i) {
    if (d.lineitem.returnflag[i] != "R") continue;
    const int64_t cust = order_cust[d.lineitem.orderkey[i]];
    if (cust < 0) continue;
    by_cust[cust] += d.lineitem.extendedprice[i] * (1 - d.lineitem.discount[i]);
  }
  std::vector<std::pair<int64_t, double>> rows(by_cust.begin(), by_cust.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (rows.size() > 20) rows.resize(20);
  TpchAnswer out;
  out.names = {"c_custkey", "c_name", "revenue", "c_acctbal",
               "n_name",    "c_address", "c_phone", "c_comment"};
  for (const auto& [cust, rev] : rows) {
    const size_t c = static_cast<size_t>(cust - 1);  // custkeys are dense 1..N
    out.rows.push_back({Value::MakeLng(cust), Value::MakeStr(d.customer.name[c]),
                        Value::MakeDbl(rev), Value::MakeDbl(d.customer.acctbal[c]),
                        Value::MakeStr(d.nation.name[d.customer.nationkey[c]]),
                        Value::MakeStr(d.customer.address[c]),
                        Value::MakeStr(d.customer.phone[c]),
                        Value::MakeStr(d.customer.comment[c])});
  }
  return out;
}

}  // namespace

TpchAnswer TpchReferenceAnswer(const TpchData& data, int q) {
  switch (q) {
    case 1: return RefQ1(data);
    case 3: return RefQ3(data);
    case 5: return RefQ5(data);
    case 6: return RefQ6(data);
    case 10: return RefQ10(data);
    default: return {};
  }
}

}  // namespace dcy::workload
