#include "workload/tpch.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/logging.h"

namespace dcy::workload {

namespace {

// Row counts at SF-1 (TPC-H specification).
constexpr uint64_t kLineitemRows = 6001215;
constexpr uint64_t kOrdersRows = 1500000;
constexpr uint64_t kPartsuppRows = 800000;
constexpr uint64_t kCustomerRows = 150000;
constexpr uint64_t kPartRows = 200000;
constexpr uint64_t kSupplierRows = 10000;
constexpr uint64_t kNationRows = 25;
constexpr uint64_t kRegionRows = 5;

std::vector<TpchColumn> BuildColumns() {
  std::vector<TpchColumn> cols = {
      // lineitem
      {"lineitem.l_orderkey", kLineitemRows}, {"lineitem.l_partkey", kLineitemRows},
      {"lineitem.l_suppkey", kLineitemRows}, {"lineitem.l_quantity", kLineitemRows},
      {"lineitem.l_extendedprice", kLineitemRows}, {"lineitem.l_discount", kLineitemRows},
      {"lineitem.l_tax", kLineitemRows}, {"lineitem.l_returnflag", kLineitemRows},
      {"lineitem.l_linestatus", kLineitemRows}, {"lineitem.l_shipdate", kLineitemRows},
      {"lineitem.l_commitdate", kLineitemRows}, {"lineitem.l_receiptdate", kLineitemRows},
      {"lineitem.l_shipmode", kLineitemRows}, {"lineitem.l_shipinstruct", kLineitemRows},
      // orders
      {"orders.o_orderkey", kOrdersRows}, {"orders.o_custkey", kOrdersRows},
      {"orders.o_orderdate", kOrdersRows}, {"orders.o_totalprice", kOrdersRows},
      {"orders.o_orderstatus", kOrdersRows}, {"orders.o_orderpriority", kOrdersRows},
      {"orders.o_comment", kOrdersRows},
      // partsupp
      {"partsupp.ps_partkey", kPartsuppRows}, {"partsupp.ps_suppkey", kPartsuppRows},
      {"partsupp.ps_availqty", kPartsuppRows}, {"partsupp.ps_supplycost", kPartsuppRows},
      // customer
      {"customer.c_custkey", kCustomerRows}, {"customer.c_nationkey", kCustomerRows},
      {"customer.c_acctbal", kCustomerRows}, {"customer.c_mktsegment", kCustomerRows},
      {"customer.c_phone", kCustomerRows},
      // part
      {"part.p_partkey", kPartRows}, {"part.p_brand", kPartRows},
      {"part.p_type", kPartRows}, {"part.p_size", kPartRows},
      {"part.p_container", kPartRows}, {"part.p_name", kPartRows},
      // supplier
      {"supplier.s_suppkey", kSupplierRows}, {"supplier.s_nationkey", kSupplierRows},
      {"supplier.s_acctbal", kSupplierRows}, {"supplier.s_comment", kSupplierRows},
      // nation / region (tiny)
      {"nation.n_nationkey", kNationRows}, {"nation.n_regionkey", kNationRows},
      {"region.r_regionkey", kRegionRows},
      // FK join indexes ("the indexes created for the TPC-H tables to speed
      // up foreign key processing", §5.4)
      {"idx.lineitem_orders", kLineitemRows}, {"idx.lineitem_part", kLineitemRows},
      {"idx.lineitem_supplier", kLineitemRows}, {"idx.orders_customer", kOrdersRows},
      {"idx.partsupp_part", kPartsuppRows}, {"idx.partsupp_supplier", kPartsuppRows},
      {"idx.customer_nation", kCustomerRows}, {"idx.supplier_nation", kSupplierRows},
  };
  return cols;
}

std::vector<TpchTemplate> BuildTemplates() {
  // Column footprints follow the query text; relative costs follow the
  // typical MonetDB execution-time profile of the 22 queries (heavy
  // full-lineitem aggregations Q1/Q9/Q18/Q21 vs. catalog-sized Q2/Q11).
  std::vector<TpchTemplate> t = {
      {"Q1",
       {"lineitem.l_shipdate", "lineitem.l_returnflag", "lineitem.l_linestatus",
        "lineitem.l_quantity", "lineitem.l_extendedprice", "lineitem.l_discount",
        "lineitem.l_tax"},
       5.0},
      {"Q2",
       {"part.p_partkey", "part.p_size", "part.p_type", "partsupp.ps_partkey",
        "partsupp.ps_supplycost", "supplier.s_suppkey", "supplier.s_acctbal",
        "idx.partsupp_part", "idx.partsupp_supplier", "idx.supplier_nation",
        "nation.n_regionkey", "region.r_regionkey"},
       0.4},
      {"Q3",
       {"customer.c_mktsegment", "orders.o_orderdate", "orders.o_custkey",
        "lineitem.l_orderkey", "lineitem.l_extendedprice", "lineitem.l_discount",
        "lineitem.l_shipdate", "idx.lineitem_orders", "idx.orders_customer"},
       1.2},
      {"Q4",
       {"orders.o_orderdate", "orders.o_orderpriority", "lineitem.l_commitdate",
        "lineitem.l_receiptdate", "idx.lineitem_orders"},
       0.8},
      {"Q5",
       {"customer.c_nationkey", "orders.o_orderdate", "lineitem.l_extendedprice",
        "lineitem.l_discount", "supplier.s_nationkey", "idx.lineitem_orders",
        "idx.orders_customer", "idx.lineitem_supplier", "nation.n_regionkey",
        "region.r_regionkey"},
       1.5},
      {"Q6",
       {"lineitem.l_shipdate", "lineitem.l_discount", "lineitem.l_quantity",
        "lineitem.l_extendedprice"},
       0.5},
      {"Q7",
       {"supplier.s_nationkey", "customer.c_nationkey", "lineitem.l_shipdate",
        "lineitem.l_extendedprice", "lineitem.l_discount", "idx.lineitem_supplier",
        "idx.lineitem_orders", "idx.orders_customer", "nation.n_nationkey"},
       1.6},
      {"Q8",
       {"part.p_type", "lineitem.l_extendedprice", "lineitem.l_discount",
        "orders.o_orderdate", "customer.c_nationkey", "supplier.s_nationkey",
        "idx.lineitem_part", "idx.lineitem_supplier", "idx.lineitem_orders",
        "idx.orders_customer", "nation.n_regionkey", "region.r_regionkey"},
       1.3},
      {"Q9",
       {"part.p_name", "lineitem.l_extendedprice", "lineitem.l_discount",
        "lineitem.l_quantity", "partsupp.ps_supplycost", "orders.o_orderdate",
        "supplier.s_nationkey", "idx.lineitem_part", "idx.lineitem_supplier",
        "idx.lineitem_orders", "nation.n_nationkey"},
       4.0},
      {"Q10",
       {"customer.c_custkey", "customer.c_acctbal", "customer.c_nationkey",
        "orders.o_orderdate", "lineitem.l_returnflag", "lineitem.l_extendedprice",
        "lineitem.l_discount", "idx.lineitem_orders", "idx.orders_customer",
        "nation.n_nationkey"},
       1.2},
      {"Q11",
       {"partsupp.ps_availqty", "partsupp.ps_supplycost", "supplier.s_nationkey",
        "idx.partsupp_supplier", "nation.n_nationkey"},
       0.5},
      {"Q12",
       {"lineitem.l_shipmode", "lineitem.l_commitdate", "lineitem.l_receiptdate",
        "lineitem.l_shipdate", "orders.o_orderpriority", "idx.lineitem_orders"},
       0.9},
      {"Q13",
       {"customer.c_custkey", "orders.o_custkey", "orders.o_comment",
        "idx.orders_customer"},
       1.8},
      {"Q14",
       {"lineitem.l_shipdate", "lineitem.l_extendedprice", "lineitem.l_discount",
        "part.p_type", "idx.lineitem_part"},
       0.7},
      {"Q15",
       {"lineitem.l_shipdate", "lineitem.l_extendedprice", "lineitem.l_discount",
        "lineitem.l_suppkey", "supplier.s_suppkey"},
       0.8},
      {"Q16",
       {"partsupp.ps_partkey", "part.p_brand", "part.p_type", "part.p_size",
        "supplier.s_comment", "idx.partsupp_part"},
       0.9},
      {"Q17",
       {"lineitem.l_quantity", "lineitem.l_extendedprice", "part.p_brand",
        "part.p_container", "idx.lineitem_part"},
       1.4},
      {"Q18",
       {"customer.c_custkey", "orders.o_orderdate", "orders.o_totalprice",
        "lineitem.l_quantity", "idx.lineitem_orders", "idx.orders_customer"},
       3.0},
      {"Q19",
       {"lineitem.l_quantity", "lineitem.l_extendedprice", "lineitem.l_discount",
        "lineitem.l_shipinstruct", "lineitem.l_shipmode", "part.p_brand",
        "part.p_container", "part.p_size", "idx.lineitem_part"},
       1.0},
      {"Q20",
       {"lineitem.l_shipdate", "lineitem.l_quantity", "partsupp.ps_availqty",
        "part.p_name", "supplier.s_nationkey", "idx.partsupp_part",
        "idx.partsupp_supplier", "nation.n_nationkey"},
       1.1},
      {"Q21",
       {"supplier.s_nationkey", "lineitem.l_receiptdate", "lineitem.l_commitdate",
        "orders.o_orderstatus", "idx.lineitem_supplier", "idx.lineitem_orders",
        "nation.n_nationkey"},
       3.5},
      {"Q22",
       {"customer.c_phone", "customer.c_acctbal", "orders.o_custkey",
        "idx.orders_customer"},
       0.6},
  };
  return t;
}

}  // namespace

const std::vector<TpchColumn>& TpchColumns() {
  static const std::vector<TpchColumn> cols = BuildColumns();
  return cols;
}

const std::vector<TpchTemplate>& TpchTemplates() {
  static const std::vector<TpchTemplate> templates = BuildTemplates();
  return templates;
}

TpchWorkload GenerateTpchWorkload(const TpchOptions& options, uint32_t num_nodes) {
  DCY_CHECK(num_nodes >= 1);
  Rng rng(options.seed);
  TpchWorkload out;

  // --- 1. Partition every logical column into ring BATs. -------------------
  std::map<std::string, std::vector<core::BatId>> column_parts;
  core::BatId next_bat = 0;
  uint32_t owner_rr = 0;
  for (const TpchColumn& col : TpchColumns()) {
    const uint64_t bytes =
        col.rows_at_sf1 * options.scale_factor * static_cast<uint64_t>(col.width);
    const uint64_t parts =
        std::max<uint64_t>(1, (bytes + options.max_bat_bytes - 1) / options.max_bat_bytes);
    const uint64_t per_part = (bytes + parts - 1) / parts;
    for (uint64_t p = 0; p < parts; ++p) {
      const uint64_t size = std::min(per_part, bytes - p * per_part);
      Dataset::BatSpec spec;
      spec.id = next_bat++;
      spec.size = std::max<uint64_t>(size, 1);
      spec.owner = owner_rr++ % num_nodes;
      out.dataset.bats.push_back(spec);
      out.bat_names.push_back(col.name + "#" + std::to_string(p));
      column_parts[col.name].push_back(spec.id);
    }
  }

  // --- 2. Rank templates by cost and calibrate the cost unit. --------------
  const auto& templates = TpchTemplates();
  std::vector<size_t> rank(templates.size());  // rank -> template index
  std::iota(rank.begin(), rank.end(), size_t{0});
  std::sort(rank.begin(), rank.end(), [&](size_t a, size_t b) {
    return templates[a].relative_cost < templates[b].relative_cost;  // fastest first
  });

  // Probability of each rank under the paper's Gaussian(mean, stddev) pick.
  std::vector<double> rank_weight(templates.size());
  for (size_t r = 0; r < rank_weight.size(); ++r) {
    const double z = (static_cast<double>(r + 1) - options.sched_mean) / options.sched_stddev;
    rank_weight[r] = std::exp(-0.5 * z * z);
  }
  double expected_rel_cost = 0.0;
  double weight_sum = 0.0;
  for (size_t r = 0; r < rank_weight.size(); ++r) {
    expected_rel_cost += rank_weight[r] * templates[rank[r]].relative_cost;
    weight_sum += rank_weight[r];
  }
  expected_rel_cost /= weight_sum;
  // cost unit so that E[cpu per query] == target_mean_cpu_sec.
  const double cost_unit = options.target_mean_cpu_sec / expected_rel_cost;

  // --- 3. Emit per-node query streams. --------------------------------------
  out.queries.resize(num_nodes);
  const SimTime interval = static_cast<SimTime>(1e9 / options.registration_rate);
  core::QueryId next_id = 1;
  for (uint32_t node = 0; node < num_nodes; ++node) {
    for (uint32_t q = 0; q < options.queries_per_node; ++q) {
      // Paper: "scheduling of the queries follows a Gaussian distribution
      // with mean 10 and standard deviation 2. On this distribution the
      // fastest queries are the ones with higher probability."
      const size_t r = rng.WeightedIndex(rank_weight);
      const TpchTemplate& tpl = templates[rank[r]];

      simdc::QuerySpec spec;
      spec.id = next_id++;
      spec.arrival = static_cast<SimTime>(q) * interval;
      spec.tag = static_cast<uint32_t>(rank[r]);  // template index

      // Expand the template's columns into partition pins; queries touch
      // remote and local partitions alike here (locality is whatever the
      // round-robin ownership yields, as with the paper's random spread).
      std::vector<core::BatId> bats;
      for (const std::string& col : tpl.columns) {
        const auto it = column_parts.find(col);
        DCY_CHECK(it != column_parts.end()) << "unknown column " << col;
        bats.insert(bats.end(), it->second.begin(), it->second.end());
      }

      const double total_cpu_sec = tpl.relative_cost * cost_unit * options.cpu_inflation;
      out.useful_cpu_seconds += tpl.relative_cost * cost_unit;
      const SimTime total_cpu = FromSeconds(total_cpu_sec);
      const SimTime pre = static_cast<SimTime>(options.pre_pin_fraction *
                                               static_cast<double>(total_cpu));
      const SimTime per_step = (total_cpu - pre) / static_cast<SimTime>(bats.size());
      spec.cpu_before = pre;
      spec.steps.reserve(bats.size());
      for (size_t i = 0; i < bats.size(); ++i) {
        // Give the remainder to the last step so the total is exact.
        const SimTime cpu = i + 1 == bats.size()
                                ? total_cpu - pre - per_step * static_cast<SimTime>(bats.size() - 1)
                                : per_step;
        spec.steps.push_back(simdc::QueryStep{bats[i], cpu});
      }
      out.queries[node].push_back(std::move(spec));
    }
  }
  return out;
}

}  // namespace dcy::workload
