// TPC-H trace-driven workload (§5.4 / Table 4).
//
// The paper calibrated its simulator with operator traces of MonetDB
// running TPC-H SF-5: per query, the BATs (columns + foreign-key join
// indexes) it touches, a pin-call schedule, and inter-pin operator times.
// We do not have those proprietary traces; this module synthesizes
// equivalent ones (see DESIGN.md, substitution table):
//   * the 22 query templates with realistic column footprints,
//   * SF-scaled column sizes, partitioned into ring-friendly BATs
//     ("a uniform partition scheme can be used to break non-uniform BATs
//     into uniform BATs", §5.3),
//   * per-template CPU costs auto-calibrated so the single-node total
//     matches the paper's Table 4 row 1 (317 s on 4 cores at 99.7 %),
//   * the paper's scheduling: 8 queries/s per node, 1200 queries per node,
//     template choice by a Gaussian(10, 2) over the speed rank with the
//     fastest queries most likely.
#pragma once

#include <string>
#include <vector>

#include "workload/dataset.h"
#include "workload/synthetic.h"

namespace dcy::workload {

/// One of the 22 TPC-H query templates.
struct TpchTemplate {
  std::string name;                       ///< "Q1" .. "Q22"
  std::vector<std::string> columns;       ///< logical BATs touched
  double relative_cost = 1.0;             ///< CPU cost relative to the mix
};

/// A logical column (or FK join index) of the TPC-H schema.
struct TpchColumn {
  std::string name;       ///< e.g. "lineitem.l_shipdate"
  uint64_t rows_at_sf1;   ///< rows at scale factor 1
  uint32_t width = 8;     ///< bytes per value (MonetDB fixed-width tail)
};

struct TpchOptions {
  uint32_t scale_factor = 5;              // paper: SF-5
  uint64_t max_bat_bytes = 50 * kMB;      // partition cap for ring BATs
  uint32_t queries_per_node = 1200;       // paper §5.4
  double registration_rate = 8.0;         // paper: 8 q/s per node
  double sched_mean = 10.0;               // paper: Gaussian mean 10
  double sched_stddev = 2.0;              // paper: stddev 2
  /// Calibration target: mean useful CPU seconds per query. The paper's
  /// single-node row implies 317 s x 4 cores x 0.997 / 1200 = 1.053 s.
  double target_mean_cpu_sec = 1.053;
  /// Emulates the real-DBMS inefficiency of the paper's "MonetDB" row
  /// (threads + context switches): operator times are inflated by this
  /// factor but only the useful (uninflated) part counts as utilization.
  double cpu_inflation = 1.0;
  /// Fraction of a query's CPU spent before its first pin.
  double pre_pin_fraction = 0.1;
  uint64_t seed = 7;
};

/// Everything a Table-4 run needs.
struct TpchWorkload {
  Dataset dataset;                 ///< all column partitions as BATs
  NodeWorkloads queries;           ///< per-node arrival lists
  double useful_cpu_seconds = 0;   ///< uninflated CPU total (CPU% numerator)
  std::vector<std::string> bat_names;  ///< BatId -> "column#part"
};

/// The 22 templates (column footprints + relative costs).
const std::vector<TpchTemplate>& TpchTemplates();

/// The logical column catalog (columns + FK join indexes).
const std::vector<TpchColumn>& TpchColumns();

/// Builds dataset + per-node query streams for an `num_nodes`-node ring.
TpchWorkload GenerateTpchWorkload(const TpchOptions& options, uint32_t num_nodes);

}  // namespace dcy::workload
