// Synthetic workload generators reproducing the paper's three simulation
// scenarios:
//   §5.1 uniform access      -> GenerateUniformWorkload (Figs. 6, 7)
//   §5.2 skewed hot sets     -> GenerateSkewedWorkload (Fig. 8, Table 3)
//   §5.3 Gaussian access     -> GenerateGaussianWorkload (Figs. 9, 10, 11)
//
// All generators emit, per node, a list of QuerySpec: queries requesting
// 1-5 BATs, each scored with a 100-200 ms processing time (§5.1).
#pragma once

#include <functional>
#include <vector>

#include "common/random.h"
#include "simdc/query_model.h"
#include "workload/dataset.h"

namespace dcy::workload {

/// Shape of a synthetic query (§5.1 defaults).
struct QueryShape {
  uint32_t min_bats = 1;
  uint32_t max_bats = 5;
  SimTime min_proc = FromMillis(100);
  SimTime max_proc = FromMillis(200);
};

/// Per-node query streams: result[node] is that node's arrival list.
using NodeWorkloads = std::vector<std::vector<simdc::QuerySpec>>;

/// \brief §5.1: `rate_per_node` queries/s fired on each node over
/// [0, duration), uniform BAT choice. Queries never touch BATs owned by
/// their own node ("queries that access remote BATs only").
struct UniformWorkloadOptions {
  double rate_per_node = 80.0;           // paper: 80 q/s on each of 10 nodes
  SimTime duration = 60 * kSecond;       // paper: 60 s => 48 000 queries
  QueryShape shape;
  uint64_t seed = 1;
};
NodeWorkloads GenerateUniformWorkload(const UniformWorkloadOptions& options,
                                      const Dataset& dataset, uint32_t num_nodes);

/// \brief §5.3: same as §5.1 but BAT access follows a Gaussian centred on
/// BAT id 500 with standard deviation 50; all nodes share the distribution.
struct GaussianWorkloadOptions {
  double rate_per_node = 80.0;
  SimTime duration = 60 * kSecond;
  double mean = 500.0;   // paper: centred around BAT id 500
  double stddev = 50.0;  // paper: standard deviation 50
  /// Fraction of accesses drawn uniformly over the whole database. The
  /// paper's Fig. 9 shows the unpopular BATs (far outside 3 sigma) with
  /// "less than 20 touches" and non-zero load counts across the full id
  /// range, which a pure Gaussian cannot produce: ~10 % uniform background
  /// over 144 000 draws yields exactly that ~14 touches/BAT floor.
  double background_uniform_fraction = 0.1;
  QueryShape shape;
  uint64_t seed = 1;
  /// When set, the *total* arrival rate is `total_rate` spread over all
  /// nodes instead of rate_per_node each — used by the §6.3 pulsating-ring
  /// experiment, which keeps the workload constant while the ring grows.
  double total_rate = 0.0;
};
NodeWorkloads GenerateGaussianWorkload(const GaussianWorkloadOptions& options,
                                       const Dataset& dataset, uint32_t num_nodes);

/// \brief §5.2 / Table 3: four skewed workloads with disjoint hot sets.
///
/// SW_i draws uniformly from D_i = { b : b mod skew_i == 0 }; the disjoint
/// hot set DH_i is the part of D_i shared with no other workload (DH_4,
/// with skew 9, is naturally contained in DH_1, skew 3 — as in the paper).
struct SkewedSubWorkload {
  uint32_t skew = 3;
  SimTime start = 0;
  SimTime end = 30 * kSecond;
  double total_rate = 200.0;  // queries/s across the whole ring (Table 3)
};
struct SkewedWorkloadOptions {
  std::vector<SkewedSubWorkload> subs = {
      {3, 0, 30 * kSecond, 200.0},                          // SW1
      {5, 15 * kSecond, 45 * kSecond, 300.0},               // SW2
      {7, FromMillis(37500), FromMillis(67500), 400.0},     // SW3
      {9, FromMillis(67500), FromMillis(97500), 500.0},     // SW4
  };
  QueryShape shape;
  uint64_t seed = 1;
};
NodeWorkloads GenerateSkewedWorkload(const SkewedWorkloadOptions& options,
                                     const Dataset& dataset, uint32_t num_nodes);

/// Tags a BAT with the disjoint hot set it belongs to: 1..4 for DH_1..DH_4,
/// 0 for BATs in no DH (shared or unused). Matches the Fig. 8a series.
uint32_t SkewedBatTag(const SkewedWorkloadOptions& options, core::BatId bat);

/// True if `bat` is in D_i (accessible by sub-workload i, 1-based).
bool InSkewedSubset(const SkewedWorkloadOptions& options, uint32_t sub_index,
                    core::BatId bat);

}  // namespace dcy::workload
