#include "workload/dataset.h"

#include "common/logging.h"

namespace dcy::workload {

uint64_t Dataset::total_bytes() const {
  uint64_t total = 0;
  for (const auto& b : bats) total += b.size;
  return total;
}

Dataset MakeUniformDataset(uint32_t num_bats, uint64_t min_size, uint64_t max_size,
                           uint32_t num_nodes, Rng* rng) {
  DCY_CHECK(num_bats > 0);
  DCY_CHECK(min_size <= max_size);
  DCY_CHECK(num_nodes > 0);
  Dataset ds;
  ds.bats.resize(num_bats);
  for (uint32_t i = 0; i < num_bats; ++i) {
    ds.bats[i].id = i;
    ds.bats[i].size = rng->UniformU64(min_size, max_size);
    ds.bats[i].owner = static_cast<core::NodeId>(rng->UniformU64(0, num_nodes - 1));
  }
  return ds;
}

void InstallDataset(const Dataset& dataset, simdc::SimCluster* cluster) {
  for (const auto& b : dataset.bats) cluster->AddBat(b.id, b.size, b.owner);
}

}  // namespace dcy::workload
