// Tuple-level TPC-H microdata for the live SQL path (as opposed to
// workload/tpch.h, which synthesizes *traces* for the simulator).
//
// GenerateTpchData builds value-bearing columns for the six tables the
// supported query set touches (lineitem, orders, customer, supplier,
// nation, region), shaped like dbgen output: TPC-H row ratios per scale
// factor, the spec's 25 nations / 5 regions, dates over 1992-1998, and
// value domains chosen so the classic predicates (shipdate windows,
// discount bands, 'BUILDING' / 'ASIA' / 'R' selections) hit realistic
// fractions. Columns stay plain std::vectors so reference answers can be
// computed independently of the engine; TpchBats wraps them as BATs under
// the "sys.<table>.<column>" names the SQL front end resolves.
//
// Dates are encoded as int64 yyyymmdd (order-isomorphic to real dates, so
// range predicates translate 1:1); the SQL front end lowers
// date 'YYYY-MM-DD' literals to the same encoding.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bat/bat.h"

namespace dcy::workload {

struct TpchData {
  struct Lineitem {
    std::vector<int64_t> orderkey, suppkey, shipdate;
    std::vector<double> quantity, extendedprice, discount, tax;
    std::vector<std::string> returnflag, linestatus;
    size_t rows() const { return orderkey.size(); }
  } lineitem;

  struct Orders {
    std::vector<int64_t> orderkey, custkey, orderdate, shippriority;
    size_t rows() const { return orderkey.size(); }
  } orders;

  struct Customer {
    std::vector<int64_t> custkey, nationkey;
    std::vector<double> acctbal;
    std::vector<std::string> name, address, phone, mktsegment, comment;
    size_t rows() const { return custkey.size(); }
  } customer;

  struct Supplier {
    std::vector<int64_t> suppkey, nationkey;
    size_t rows() const { return suppkey.size(); }
  } supplier;

  struct Nation {
    std::vector<int64_t> nationkey, regionkey;
    std::vector<std::string> name;
    size_t rows() const { return nationkey.size(); }
  } nation;

  struct Region {
    std::vector<int64_t> regionkey;
    std::vector<std::string> name;
    size_t rows() const { return regionkey.size(); }
  } region;
};

/// Builds all six tables at `scale_factor` (1.0 = TPC-H SF-1 row counts:
/// ~6M lineitem, 1.5M orders, 150k customers). Deterministic per seed.
TpchData GenerateTpchData(double scale_factor, uint64_t seed = 42);

/// Every column as a [dense, value] BAT under its qualified name
/// ("sys.lineitem.l_quantity", ...), ready for RingCluster::LoadBat.
std::vector<std::pair<std::string, bat::BatPtr>> TpchBats(const TpchData& data);

/// The query numbers covered by the SQL suite (1, 3, 5, 6, 10).
const std::vector<int>& TpchSqlQueries();

/// SQL text of TPC-H query `q` in the dialect the front end supports
/// (BETWEEN spelled as >=/<=, date literals); nullptr for unsupported q.
const char* TpchQuerySql(int q);

/// One independently computed answer (plain C++ loops over TpchData, no
/// engine code). Rows are in the query's ORDER BY order; LIMIT applied.
struct TpchAnswer {
  std::vector<std::string> names;              ///< output column names
  std::vector<std::vector<bat::Value>> rows;   ///< row-major values
};
TpchAnswer TpchReferenceAnswer(const TpchData& data, int q);

}  // namespace dcy::workload
