#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dcy::workload {

namespace {

/// Draws `k` distinct BATs via `sample()`, skipping BATs owned by `node`
/// (the paper's workloads touch remote BATs only), and scores each with a
/// uniform processing time from `shape`.
std::vector<simdc::QueryStep> MakeSteps(const QueryShape& shape, const Dataset& dataset,
                                        core::NodeId node, Rng* rng,
                                        const std::function<core::BatId()>& sample) {
  const uint32_t k =
      static_cast<uint32_t>(rng->UniformU64(shape.min_bats, shape.max_bats));
  std::vector<simdc::QueryStep> steps;
  steps.reserve(k);
  std::vector<core::BatId> chosen;
  int attempts = 0;
  while (steps.size() < k && attempts < 1000) {
    ++attempts;
    const core::BatId bat = sample();
    if (dataset.owner_of(bat) == node) continue;
    if (std::find(chosen.begin(), chosen.end(), bat) != chosen.end()) continue;
    chosen.push_back(bat);
    steps.push_back(simdc::QueryStep{
        bat, rng->UniformInt(shape.min_proc, shape.max_proc)});
  }
  DCY_CHECK(!steps.empty()) << "could not sample any remote BAT for node " << node;
  return steps;
}

/// Number of arrivals of a `rate`/s process over `duration`, exact.
uint64_t ArrivalCount(double rate, SimTime duration) {
  return static_cast<uint64_t>(std::llround(rate * ToSeconds(duration)));
}

/// Arrival time of the i-th of `count` evenly spaced arrivals in
/// [start, start+duration).
SimTime ArrivalTime(SimTime start, SimTime duration, uint64_t i, uint64_t count) {
  return start + static_cast<SimTime>(static_cast<double>(duration) *
                                      static_cast<double>(i) / static_cast<double>(count));
}

}  // namespace

NodeWorkloads GenerateUniformWorkload(const UniformWorkloadOptions& options,
                                      const Dataset& dataset, uint32_t num_nodes) {
  Rng rng(options.seed);
  NodeWorkloads out(num_nodes);
  const uint64_t count = ArrivalCount(options.rate_per_node, options.duration);
  core::QueryId next_id = 1;
  for (uint32_t node = 0; node < num_nodes; ++node) {
    for (uint64_t i = 0; i < count; ++i) {
      simdc::QuerySpec spec;
      spec.id = next_id++;
      spec.arrival = ArrivalTime(0, options.duration, i, count);
      spec.steps = MakeSteps(options.shape, dataset, node, &rng, [&] {
        return static_cast<core::BatId>(rng.UniformU64(0, dataset.num_bats() - 1));
      });
      out[node].push_back(std::move(spec));
    }
  }
  return out;
}

NodeWorkloads GenerateGaussianWorkload(const GaussianWorkloadOptions& options,
                                       const Dataset& dataset, uint32_t num_nodes) {
  Rng rng(options.seed);
  NodeWorkloads out(num_nodes);
  const double per_node_rate =
      options.total_rate > 0 ? options.total_rate / num_nodes : options.rate_per_node;
  const uint64_t count = ArrivalCount(per_node_rate, options.duration);
  core::QueryId next_id = 1;
  const auto sample_gaussian = [&]() -> core::BatId {
    if (options.background_uniform_fraction > 0 &&
        rng.Bernoulli(options.background_uniform_fraction)) {
      return static_cast<core::BatId>(rng.UniformU64(0, dataset.num_bats() - 1));
    }
    const double draw = rng.Gaussian(options.mean, options.stddev);
    const int64_t id = std::llround(draw);
    const int64_t max_id = static_cast<int64_t>(dataset.num_bats()) - 1;
    return static_cast<core::BatId>(std::clamp<int64_t>(id, 0, max_id));
  };
  for (uint32_t node = 0; node < num_nodes; ++node) {
    for (uint64_t i = 0; i < count; ++i) {
      simdc::QuerySpec spec;
      spec.id = next_id++;
      spec.arrival = ArrivalTime(0, options.duration, i, count);
      spec.steps = MakeSteps(options.shape, dataset, node, &rng, sample_gaussian);
      out[node].push_back(std::move(spec));
    }
  }
  return out;
}

bool InSkewedSubset(const SkewedWorkloadOptions& options, uint32_t sub_index,
                    core::BatId bat) {
  DCY_CHECK(sub_index >= 1 && sub_index <= options.subs.size());
  const uint32_t skew = options.subs[sub_index - 1].skew;
  return bat % skew == 0;
}

uint32_t SkewedBatTag(const SkewedWorkloadOptions& options, core::BatId bat) {
  // Membership bitmap over sub-workloads.
  uint32_t members = 0;
  for (uint32_t i = 0; i < options.subs.size(); ++i) {
    if (bat % options.subs[i].skew == 0) members |= 1u << i;
  }
  if (members == 0) return 0;
  // DH_4 (skew 9) is naturally inside D_1 (skew 3): a BAT divisible by 9 and
  // by 3 only belongs to the disjoint set of SW4 (paper §5.2).
  if (options.subs.size() >= 4 && members == ((1u << 0) | (1u << 3))) return 4;
  // Otherwise "disjoint" means: member of exactly one D_i.
  for (uint32_t i = 0; i < options.subs.size(); ++i) {
    if (members == (1u << i)) return i + 1;
  }
  return 0;  // shared between several hot sets
}

NodeWorkloads GenerateSkewedWorkload(const SkewedWorkloadOptions& options,
                                     const Dataset& dataset, uint32_t num_nodes) {
  Rng rng(options.seed);
  NodeWorkloads out(num_nodes);
  core::QueryId next_id = 1;
  for (uint32_t si = 0; si < options.subs.size(); ++si) {
    const SkewedSubWorkload& sw = options.subs[si];
    // Pre-compute D_i (the accessible subset) once.
    std::vector<core::BatId> subset;
    for (core::BatId b = 0; b < dataset.num_bats(); ++b) {
      if (b % sw.skew == 0) subset.push_back(b);
    }
    DCY_CHECK(!subset.empty());
    // Table 3 rates are system-wide: spread arrivals round-robin over nodes.
    const uint64_t count = ArrivalCount(sw.total_rate, sw.end - sw.start);
    for (uint64_t i = 0; i < count; ++i) {
      const uint32_t node = static_cast<uint32_t>(i % num_nodes);
      simdc::QuerySpec spec;
      spec.id = next_id++;
      spec.arrival = ArrivalTime(sw.start, sw.end - sw.start, i, count);
      spec.tag = si + 1;
      spec.steps = MakeSteps(options.shape, dataset, node, &rng, [&] {
        return subset[rng.UniformU64(0, subset.size() - 1)];
      });
      out[node].push_back(std::move(spec));
    }
  }
  // Arrival lists must be time-ordered per node for readability; the
  // simulator does not require it but tests do.
  for (auto& v : out) {
    std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      return a.arrival < b.arrival;
    });
  }
  return out;
}

}  // namespace dcy::workload
