#include "baseline/baselines.h"

#include <algorithm>

#include "common/logging.h"

namespace dcy::baseline {

namespace {

/// Shared sequential-step query walker: `fetch(bat, node, done)` arranges
/// for `done` to run when the fragment is available at `node`.
struct Walker {
  sim::Simulator sim;
  RunningStat lifetime;
  Histogram hist{0.0, 400.0, 4000};
  uint64_t finished = 0;
  SimTime last_finish = 0;

  template <typename Fetch>
  void Run(const workload::NodeWorkloads& workloads, Fetch fetch, SimTime deadline) {
    struct Active {
      simdc::QuerySpec spec;
      size_t step = 0;
    };
    auto step_done = std::make_shared<std::function<void(Active)>>();
    *step_done = [this, fetch, step_done](Active aq) {
      if (aq.step >= aq.spec.steps.size()) {
        ++finished;
        last_finish = sim.Now();
        const double life = ToSeconds(sim.Now() - aq.spec.arrival);
        lifetime.Add(life);
        hist.Add(life);
        return;
      }
      const auto& step = aq.spec.steps[aq.step];
      const uint32_t node = static_cast<uint32_t>(aq.spec.id % 1000007 % 64);
      (void)node;
      fetch(step.bat, aq.spec, [this, aq, step_done]() mutable {
        const SimTime proc = aq.spec.steps[aq.step].cpu_after;
        ++aq.step;
        sim.Schedule(proc, [aq = std::move(aq), step_done] { (*step_done)(aq); });
      });
    };
    for (uint32_t n = 0; n < workloads.size(); ++n) {
      for (const auto& spec : workloads[n]) {
        sim.ScheduleAt(spec.arrival, [spec, step_done] { (*step_done)(Active{spec, 0}); });
      }
    }
    sim.RunUntil(deadline);
    // The continuation captures its own shared_ptr; break the cycle or the
    // whole closure graph (and every captured QuerySpec) leaks.
    *step_done = nullptr;
  }
};

}  // namespace

BaselineResult RunStickyBaseline(const workload::Dataset& dataset,
                                 const workload::NodeWorkloads& workloads,
                                 const LinkModel& link, SimTime deadline) {
  Walker w;
  // Each owner's outgoing NIC serves fetches FIFO.
  std::vector<SimTime> owner_busy_until(64, 0);
  const uint32_t num_nodes = static_cast<uint32_t>(workloads.size());

  auto fetch = [&](core::BatId bat, const simdc::QuerySpec& spec,
                   std::function<void()> done) {
    const auto& b = dataset.bats[bat];
    const uint32_t requester = static_cast<uint32_t>(spec.id % num_nodes);
    const uint32_t dist =
        (b.owner + num_nodes - requester) % num_nodes;  // hops on the fabric
    const SimTime rtt = 2 * link.hop_delay * std::max<uint32_t>(dist, 1);
    const SimTime disk =
        static_cast<SimTime>(static_cast<double>(b.size) / link.disk_bytes_per_sec * 1e9);
    const SimTime tx =
        static_cast<SimTime>(static_cast<double>(b.size) / link.bandwidth_bytes_per_sec * 1e9);
    // FIFO at the owner: service begins when the NIC frees up.
    SimTime& busy = owner_busy_until[b.owner % owner_busy_until.size()];
    const SimTime start = std::max(w.sim.Now() + rtt / 2, busy);
    busy = start + tx;
    const SimTime ready = start + tx + disk + rtt / 2;
    w.sim.ScheduleAt(ready, std::move(done));
  };
  w.Run(workloads, fetch, deadline);

  BaselineResult r;
  r.name = "sticky-data";
  r.finished = w.finished;
  r.last_finish = w.last_finish;
  r.lifetime_sec = w.lifetime;
  r.p95_lifetime_sec = w.hist.Percentile(95);
  return r;
}

BaselineResult RunBroadcastBaseline(const workload::Dataset& dataset,
                                    const workload::NodeWorkloads& workloads,
                                    const LinkModel& link, SimTime deadline) {
  Walker w;
  // Precompute each fragment's offset in the broadcast cycle.
  std::vector<uint64_t> offset(dataset.bats.size(), 0);
  uint64_t total = 0;
  for (size_t i = 0; i < dataset.bats.size(); ++i) {
    offset[i] = total;
    total += dataset.bats[i].size;
  }
  const double bw = link.bandwidth_bytes_per_sec;
  const SimTime cycle = static_cast<SimTime>(static_cast<double>(total) / bw * 1e9);

  auto fetch = [&](core::BatId bat, const simdc::QuerySpec&, std::function<void()> done) {
    // The pump is at byte position (now mod cycle) * bw; wait until the
    // fragment's slot comes around, then receive it.
    const SimTime now = w.sim.Now();
    const SimTime slot_start =
        static_cast<SimTime>(static_cast<double>(offset[bat]) / bw * 1e9);
    const SimTime phase = now % cycle;
    SimTime wait = slot_start - phase;
    if (wait < 0) wait += cycle;
    const SimTime tx =
        static_cast<SimTime>(static_cast<double>(dataset.bats[bat].size) / bw * 1e9);
    w.sim.Schedule(wait + tx + link.hop_delay, std::move(done));
  };
  w.Run(workloads, fetch, deadline);

  BaselineResult r;
  r.name = "broadcast-pump";
  r.finished = w.finished;
  r.last_finish = w.last_finish;
  r.lifetime_sec = w.lifetime;
  r.p95_lifetime_sec = w.hist.Percentile(95);
  return r;
}

}  // namespace dcy::baseline
