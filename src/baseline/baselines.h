// Baseline comparators for the Data Cyclotron, used by the A4 bench:
//
//  * Sticky-data / function-shipping: the classic distributed design the
//    paper argues against (§1 "Sticky Data"). Data is statically
//    partitioned; a query fetches each remote fragment directly from its
//    owner over a point-to-point link, queueing at the owner's NIC — hot
//    owners become hot spots.
//
//  * DataCycle-style broadcast pump (§7 related work): one central pump
//    broadcasts the *entire* database cyclically; a query waits until its
//    fragment next passes on the shared channel. The cycle time over the
//    full database — not the hot set — bounds latency.
//
// Both run on the same discrete-event kernel and consume the same
// QuerySpec workloads as the Data Cyclotron experiments.
#pragma once

#include "common/stats.h"
#include "sim/simulator.h"
#include "simdc/query_model.h"
#include "workload/synthetic.h"
#include "workload/dataset.h"

namespace dcy::baseline {

struct BaselineResult {
  std::string name;
  uint64_t finished = 0;
  SimTime last_finish = 0;
  RunningStat lifetime_sec;
  double p95_lifetime_sec = 0.0;
};

struct LinkModel {
  double bandwidth_bytes_per_sec = GbpsToBytesPerSec(10.0);
  SimTime hop_delay = FromMicros(350);
  double disk_bytes_per_sec = 400e6;
};

/// Sticky-data baseline: per-owner FIFO serving of fragment fetches.
BaselineResult RunStickyBaseline(const workload::Dataset& dataset,
                                 const workload::NodeWorkloads& workloads,
                                 const LinkModel& link, SimTime deadline);

/// Broadcast-pump baseline: fragments arrive when their slot in the
/// database-wide broadcast cycle passes.
BaselineResult RunBroadcastBaseline(const workload::Dataset& dataset,
                                    const workload::NodeWorkloads& workloads,
                                    const LinkModel& link, SimTime deadline);

}  // namespace dcy::baseline
