// The storage-ring fabric: N nodes joined by duplex links. Per the paper
// (§4, footnote 2): BATs flow clockwise on one channel, BAT requests flow
// anti-clockwise on the other, so data and requests never compete for
// bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link.h"

namespace dcy::net {

using NodeIndex = uint32_t;

/// \brief Ring of simulated duplex links with a clockwise data channel and
/// an anti-clockwise request channel.
///
/// This class is payload-agnostic: senders pass a byte size (for timing and
/// queue accounting) plus a closure that the receiving node runs on
/// delivery. The Data Cyclotron layer closes over its typed messages.
class RingNetwork {
 public:
  struct Options {
    uint32_t num_nodes = 10;
    /// Data (clockwise) channel; the paper: 10 Gb/s, 350 us, 200 MB queue.
    SimplexLink::Options data;
    /// Request (anti-clockwise) channel; requests are tiny, so the paper
    /// never saturates it. Default: same wire, 4 MB queue.
    SimplexLink::Options request;
  };

  RingNetwork(sim::Simulator* sim, Options options, Rng* rng = nullptr);

  uint32_t num_nodes() const { return static_cast<uint32_t>(data_links_.size()); }

  NodeIndex Successor(NodeIndex n) const { return (n + 1) % num_nodes(); }
  NodeIndex Predecessor(NodeIndex n) const { return (n + num_nodes() - 1) % num_nodes(); }

  /// Sends a data message from `from` to its successor. `deliver` runs when
  /// the message fully arrives there. Returns false on DropTail rejection.
  bool SendData(NodeIndex from, uint64_t size_bytes, std::function<void()> deliver);

  /// Sends a request message from `from` to its predecessor.
  bool SendRequest(NodeIndex from, uint64_t size_bytes, std::function<void()> deliver);

  /// Bytes buffered on `node`'s outgoing data channel — the quantity the
  /// paper calls the node's BAT queue load.
  uint64_t DataQueueBytes(NodeIndex node) const { return data_links_[node]->queued_bytes(); }

  uint64_t DataQueueCapacity() const { return options_.data.queue_capacity_bytes; }

  /// Sum of all nodes' data-channel buffers (ring occupancy lower bound).
  uint64_t TotalDataQueueBytes() const;

  const SimplexLink& data_link(NodeIndex node) const { return *data_links_[node]; }
  const SimplexLink& request_link(NodeIndex node) const { return *request_links_[node]; }

  /// Time for one message of `size_bytes` to traverse a single hop when the
  /// ring is otherwise idle (serialization + propagation).
  SimTime IdleHopTime(uint64_t size_bytes) const;

 private:
  Options options_;
  // data_links_[i]: i -> i+1 (clockwise); request_links_[i]: i -> i-1.
  std::vector<std::unique_ptr<SimplexLink>> data_links_;
  std::vector<std::unique_ptr<SimplexLink>> request_links_;
};

}  // namespace dcy::net
