#include "net/link.h"

#include <algorithm>

#include "common/logging.h"

namespace dcy::net {

bool SimplexLink::Send(uint64_t size_bytes, std::function<void()> on_delivered) {
  if (options_.queue_capacity_bytes != 0 &&
      queued_bytes_ + size_bytes > options_.queue_capacity_bytes) {
    ++stats_.messages_dropped_queue;
    return false;
  }
  ++stats_.messages_sent;
  queued_bytes_ += size_bytes;

  const SimTime start = std::max(sim_->Now(), busy_until_);
  const SimTime tx = SerializationTime(size_bytes);
  const SimTime tx_end = start + tx;
  busy_until_ = tx_end;
  stats_.busy_time += tx;

  // Last byte leaves the sender buffer at tx_end.
  sim_->ScheduleAt(tx_end, [this, size_bytes] {
    DCY_DCHECK(queued_bytes_ >= size_bytes);
    queued_bytes_ -= size_bytes;
  });

  const bool lost = options_.loss_probability > 0.0 && rng_ != nullptr &&
                    rng_->Bernoulli(options_.loss_probability);
  if (lost) {
    ++stats_.messages_lost_wire;
    return true;  // sender cannot tell; the message just never arrives
  }

  sim_->ScheduleAt(tx_end + options_.propagation_delay,
                   [this, size_bytes, cb = std::move(on_delivered)] {
                     ++stats_.messages_delivered;
                     stats_.bytes_delivered += size_bytes;
                     cb();
                   });
  return true;
}

}  // namespace dcy::net
