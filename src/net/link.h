// Simulated point-to-point links, modelled the way the paper configures
// NS-2 (§5 Setup): duplex links with a bandwidth, a propagation delay, and
// a DropTail (tail-drop on full queue) buffer policy.
#pragma once

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dcy::net {

/// \brief One direction of a link: serializes messages FIFO at the link
/// bandwidth, then delivers them after the propagation delay.
///
/// Queue accounting: a message occupies the sender-side buffer from Send()
/// until its last byte has been serialized onto the wire. `queued_bytes()`
/// is therefore the quantity the paper calls the node's "BAT queue load"
/// when this link is the node's clockwise data channel.
class SimplexLink {
 public:
  struct Options {
    /// Serialization rate. The paper's setup: 10 Gb/s = 1.25e9 B/s.
    double bandwidth_bytes_per_sec = GbpsToBytesPerSec(10.0);
    /// One-way propagation delay. The paper's setup: 350 us.
    SimTime propagation_delay = FromMicros(350);
    /// DropTail threshold in bytes; 0 disables the limit.
    uint64_t queue_capacity_bytes = 0;
    /// Fault injection: probability that a message is silently lost on the
    /// wire (after serialization). 0 in all paper-faithful experiments.
    double loss_probability = 0.0;
  };

  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t messages_dropped_queue = 0;  // DropTail
    uint64_t messages_lost_wire = 0;      // fault injection
    uint64_t bytes_delivered = 0;
    SimTime busy_time = 0;  // total serialization time
  };

  /// `rng` may be null when loss_probability == 0.
  SimplexLink(sim::Simulator* sim, Options options, Rng* rng = nullptr)
      : sim_(sim), options_(options), rng_(rng) {}

  /// Enqueues a message of `size_bytes`; `on_delivered` runs at the receiver
  /// when the last byte arrives. Returns false if DropTail rejected it.
  bool Send(uint64_t size_bytes, std::function<void()> on_delivered);

  /// Bytes buffered at the sender (waiting + currently serializing).
  uint64_t queued_bytes() const { return queued_bytes_; }

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }

  /// Time to push `size_bytes` onto the wire at this link's bandwidth.
  SimTime SerializationTime(uint64_t size_bytes) const {
    return static_cast<SimTime>(static_cast<double>(size_bytes) /
                                options_.bandwidth_bytes_per_sec * 1e9);
  }

 private:
  sim::Simulator* sim_;
  Options options_;
  Rng* rng_;
  Stats stats_;
  uint64_t queued_bytes_ = 0;
  SimTime busy_until_ = 0;
};

}  // namespace dcy::net
