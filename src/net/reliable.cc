#include "net/reliable.h"

#include <algorithm>

namespace dcy::net {

void ReliableSender::Track(uint32_t opcode, const rdma::MetaBlob& meta,
                           rdma::Buffer payload, uint64_t seq, SimTime now) {
  if (unacked_.size() >= opts_.max_unacked) {
    // Window full: the peer has not acknowledged anything for a long time.
    // Abandon and reset rather than grow without bound.
    Reset(now);
    return;
  }
  const bool was_empty = unacked_.empty();
  unacked_.push_back(Stored{opcode, meta, std::move(payload), seq});
  if (was_empty) {
    head_attempts_ = 0;
    next_retx_ = now + RetxDelay(0);
  }
}

void ReliableSender::OnAck(uint32_t epoch, uint64_t seq, SimTime now) {
  if (epoch != epoch_) return;  // stale (pre-reset) acknowledgement
  bool advanced = false;
  while (!unacked_.empty() && unacked_.front().seq <= seq) {
    unacked_.pop_front();
    advanced = true;
  }
  if (advanced) {
    head_attempts_ = 0;
    next_retx_ = unacked_.empty() ? 0 : now + RetxDelay(0);
  }
}

void ReliableSender::OnNack(uint32_t epoch, uint64_t seq, SimTime now) {
  if (epoch != epoch_) return;
  while (!unacked_.empty() && unacked_.front().seq < seq) {
    unacked_.pop_front();  // implicitly acknowledged by the NACK point
    head_attempts_ = 0;
  }
  if (!unacked_.empty()) next_retx_ = now;  // retransmit on the next pump
}

const std::deque<ReliableSender::Stored>* ReliableSender::CollectRetransmits(
    SimTime now) {
  if (unacked_.empty() || now < next_retx_) return nullptr;
  if (head_attempts_ + 1 >= opts_.max_attempts) {
    // The head frame is not getting through; go-back-N cannot skip it
    // without leaving the receiver gapped forever, so flap the whole link.
    Reset(now);
    return nullptr;
  }
  ++head_attempts_;
  metrics_.retransmits += unacked_.size();
  next_retx_ = now + RetxDelay(head_attempts_);
  return &unacked_;
}

void ReliableSender::Reset(SimTime now) {
  metrics_.frames_abandoned += unacked_.size();
  ++metrics_.link_resets;
  unacked_.clear();
  ++epoch_;
  next_seq_ = 0;
  head_attempts_ = 0;
  next_retx_ = now;
}

SimTime ReliableSender::RetxDelay(uint32_t attempts) {
  SimTime base = opts_.initial_backoff;
  for (uint32_t i = 0; i < attempts && base < opts_.max_backoff; ++i) base *= 2;
  base = std::min(base, opts_.max_backoff);
  const double scale = 1.0 + opts_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  return std::max<SimTime>(1, static_cast<SimTime>(static_cast<double>(base) * scale));
}

ReliableReceiver::Outcome ReliableReceiver::OnFrame(const FrameHeader& h,
                                                    bool crc_ok) {
  Outcome out;
  if (h.magic != kFrameMagic || h.sender == core::kInvalidNode) {
    ++metrics_.frames_invalid;
    out.verdict = Verdict::kInvalid;
    return out;
  }
  PeerState& peer = peers_[h.sender];
  if (!crc_ok) {
    // Nothing in a corrupt frame can be trusted — its epoch/seq may be the
    // very bits that flipped — so classify before any state is adopted. The
    // NACK names what *we* expect in the epoch we believe in; if the frame
    // was genuinely from a newer epoch the retransmit timer re-delivers it
    // intact and the adoption happens then.
    ++metrics_.frames_corrupted;
    out.verdict = Verdict::kCorrupt;
    if (peer.last_nacked != peer.expected) {
      peer.last_nacked = peer.expected;
      out.send_nack = true;
      out.nack_seq = peer.expected;
      out.nack_epoch = peer.epoch;
      ++metrics_.nacks_sent;
    }
    return out;
  }
  if (h.epoch < peer.epoch) {
    ++metrics_.frames_stale;
    out.verdict = Verdict::kStale;
    return out;
  }
  if (h.epoch > peer.epoch) {
    // The sender reset (restart / re-splice / flap): adopt the new epoch.
    peer.epoch = h.epoch;
    peer.expected = 0;
    peer.last_nacked = UINT64_MAX;
  }
  if (h.seq < peer.expected) {
    ++metrics_.frames_duplicate;
    out.verdict = Verdict::kDuplicate;
    return out;
  }
  if (h.seq > peer.expected) {
    ++metrics_.frames_gap;
    out.verdict = Verdict::kGap;
    if (peer.last_nacked != peer.expected) {
      peer.last_nacked = peer.expected;
      out.send_nack = true;
      out.nack_seq = peer.expected;
      out.nack_epoch = peer.epoch;
      ++metrics_.nacks_sent;
    }
    return out;
  }
  ++peer.expected;
  peer.last_nacked = UINT64_MAX;  // progress re-arms the NACK dedupe
  out.verdict = Verdict::kDeliver;
  return out;
}

bool ReliableReceiver::CumulativeAck(uint32_t sender, uint32_t* epoch,
                                     uint64_t* seq) const {
  auto it = peers_.find(sender);
  if (it == peers_.end() || it->second.expected == 0) return false;
  *epoch = it->second.epoch;
  *seq = it->second.expected - 1;
  return true;
}

}  // namespace dcy::net
