#include "net/ring_network.h"

#include "common/logging.h"

namespace dcy::net {

RingNetwork::RingNetwork(sim::Simulator* sim, Options options, Rng* rng)
    : options_(options) {
  DCY_CHECK(options.num_nodes >= 2) << "a ring needs at least two nodes";
  data_links_.reserve(options.num_nodes);
  request_links_.reserve(options.num_nodes);
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    data_links_.push_back(std::make_unique<SimplexLink>(sim, options.data, rng));
    request_links_.push_back(std::make_unique<SimplexLink>(sim, options.request, rng));
  }
}

bool RingNetwork::SendData(NodeIndex from, uint64_t size_bytes,
                           std::function<void()> deliver) {
  DCY_DCHECK(from < num_nodes());
  return data_links_[from]->Send(size_bytes, std::move(deliver));
}

bool RingNetwork::SendRequest(NodeIndex from, uint64_t size_bytes,
                              std::function<void()> deliver) {
  DCY_DCHECK(from < num_nodes());
  return request_links_[from]->Send(size_bytes, std::move(deliver));
}

uint64_t RingNetwork::TotalDataQueueBytes() const {
  uint64_t total = 0;
  for (const auto& l : data_links_) total += l->queued_bytes();
  return total;
}

SimTime RingNetwork::IdleHopTime(uint64_t size_bytes) const {
  return data_links_[0]->SerializationTime(size_bytes) + options_.data.propagation_delay;
}

}  // namespace dcy::net
