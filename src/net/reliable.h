// Hop-level reliability for the live ring transport: framing, sequence
// numbers, CRC verification, cumulative ACK / NACK, and go-back-N
// retransmission with exponential backoff.
//
// Each directed neighbour link (data clockwise, requests anti-clockwise)
// gets a ReliableSender at the sending node and a ReliableReceiver slot at
// the receiving node. Every frame carries a FrameHeader {sender, epoch,
// seq, payload_crc, magic}; the receiver verifies the CRC, delivers
// in-order frames, and answers gaps or corruption with a NACK naming the
// sequence it expected. The sender keeps un-ACKed frames in a window and
// retransmits from the NACKed (or timed-out) frame onward — classic
// go-back-N, which preserves the ring's FIFO contract.
//
// Epochs make restarts safe: whenever a sender resets (node restart, ring
// re-splice, or an exhausted retransmit budget abandoning the window), it
// bumps its epoch and restarts seq at 0. A receiver that sees a higher
// epoch adopts it fresh; frames and ACKs from older epochs are stale and
// dropped, so no NACK loop can form across a reset.
//
// This layer is deliberately transport-agnostic: it never touches a
// channel. The ring runtime owns the wiring — it stamps outgoing frames
// via NextHeader/Track, feeds incoming control messages to OnAck/OnNack,
// and sends whatever CollectRetransmits returns.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/random.h"
#include "common/units.h"
#include "core/types.h"
#include "rdma/channel.h"

namespace dcy::net {

/// Sanity marker; a corrupted meta whose magic mismatches is counted and
/// dropped without consulting any per-sender state.
constexpr uint32_t kFrameMagic = 0xDC7F5EEDu;

/// Logical channel classes, shared with rdma::FaultLink::channel.
constexpr uint32_t kChData = 0;
constexpr uint32_t kChRequest = 1;
constexpr uint32_t kChCtrl = 2;

/// \brief Per-frame reliability envelope, prepended (inline, in the
/// MetaBlob) to the application header.
struct FrameHeader {
  uint32_t sender = core::kInvalidNode;
  uint32_t epoch = 0;
  uint64_t seq = 0;
  /// CRC32 over application header bytes XOR CRC32 over the payload bytes
  /// (0 for payload-less frames). The payload half is computed once at load
  /// and forwarded hop to hop; the receiver recomputes it for verification.
  uint32_t payload_crc = 0;
  uint32_t magic = kFrameMagic;
};
static_assert(sizeof(FrameHeader) == 24);

/// Mixes the envelope's identity fields (sender, epoch, seq) into a 32-bit
/// checksum that NextHeader folds into payload_crc. Without it a bit flip in
/// the epoch field reads as a legitimate sender reset: the receiver adopts
/// the bogus (usually huge) epoch, every genuine frame is then "stale", and
/// the link wedges permanently — the sender's epoch++ resets never catch up.
inline uint32_t EnvelopeCrc(uint32_t sender, uint32_t epoch, uint64_t seq) {
  SplitMix64 mix(seq ^ (static_cast<uint64_t>(epoch) << 32) ^
                 (static_cast<uint64_t>(sender) * 0x9E3779B97F4A7C15ull));
  const uint64_t z = mix.Next();
  return static_cast<uint32_t>(z) ^ static_cast<uint32_t>(z >> 32);
}

inline uint32_t EnvelopeCrc(const FrameHeader& h) {
  return EnvelopeCrc(h.sender, h.epoch, h.seq);
}

/// \brief A data-channel frame: reliability envelope + BAT admin header.
/// Exactly fills the 64-byte inline meta budget.
struct DataFrame {
  FrameHeader frame;
  core::BatHeader bat;
};
static_assert(sizeof(DataFrame) == 64);
static_assert(sizeof(DataFrame) <= rdma::MetaBlob::kCapacity);

/// \brief A request-channel frame: reliability envelope + ring request.
struct RequestFrame {
  FrameHeader frame;
  core::RequestMsg req;
};
static_assert(sizeof(RequestFrame) <= rdma::MetaBlob::kCapacity);

enum class CtrlKind : uint32_t { kAck = 1, kNack = 2, kHeartbeat = 3 };

/// \brief Control-channel message (ACK/NACK/heartbeat); meta-only.
struct CtrlMsg {
  uint32_t sender = core::kInvalidNode;
  uint32_t channel = kChData;  ///< which link the ack/nack refers to
  uint32_t kind = 0;           ///< CtrlKind
  uint32_t epoch = 0;
  /// kAck: highest in-order seq received (cumulative). kNack: the seq the
  /// receiver expected (retransmit from here). kHeartbeat: unused.
  uint64_t seq = 0;
  uint32_t magic = kFrameMagic;
  uint32_t crc = 0;  ///< CtrlCrc over the fields above
};
static_assert(sizeof(CtrlMsg) <= rdma::MetaBlob::kCapacity);

/// Checksum over a control message's content. ACK/NACK frames steer the
/// sender's window, so a flipped seq bit in an ACK would falsely retire
/// frames the receiver never saw; a checksummed ctrl frame is dropped
/// instead (loss-tolerant: a later cumulative ACK or the retransmit timer
/// covers it).
inline uint32_t CtrlCrc(const CtrlMsg& c) {
  // One odd multiplier per field: each is a bijection mod 2^64, so a bit
  // flip in any single field always changes the XOR-combined seed.
  SplitMix64 mix(c.seq ^ (static_cast<uint64_t>(c.epoch) << 32) ^
                 (static_cast<uint64_t>(c.sender) * 0x9E3779B97F4A7C15ull) ^
                 (static_cast<uint64_t>(c.channel) * 0xBF58476D1CE4E5B9ull) ^
                 (static_cast<uint64_t>(c.kind) * 0x94D049BB133111EBull));
  const uint64_t z = mix.Next();
  return static_cast<uint32_t>(z) ^ static_cast<uint32_t>(z >> 32);
}

/// \brief Tunables for one reliable link.
struct ReliableOptions {
  /// Retransmission attempts for the window head before the sender declares
  /// the link flapped and resets (new epoch, window abandoned).
  uint32_t max_attempts = 10;
  SimTime initial_backoff = FromMillis(2);
  SimTime max_backoff = FromMillis(100);
  /// Backoff jitter fraction: each delay is scaled by 1 + jitter*U(-1,1).
  double jitter = 0.25;
  /// Un-ACKed frames the sender will hold before resetting the link
  /// (back-pressure of last resort; the channel's byte capacity usually
  /// throttles first).
  size_t max_unacked = 1024;
  /// Recompute and verify payload CRCs at every hop's receiver. Costs one
  /// pass over the payload per hop; disable for raw-throughput benches.
  bool verify_crc = true;
};

/// \brief Counters for one node's reliability state (both directions).
struct ReliableMetrics {
  uint64_t retransmits = 0;        ///< frames re-sent after NACK/timeout
  uint64_t frames_abandoned = 0;   ///< dropped with a link reset
  uint64_t link_resets = 0;        ///< epoch bumps (flaps + restarts)
  uint64_t frames_corrupted = 0;   ///< CRC mismatches detected on receive
  uint64_t frames_duplicate = 0;   ///< already-delivered seqs discarded
  uint64_t frames_gap = 0;         ///< out-of-order arrivals NACKed/dropped
  uint64_t frames_stale = 0;       ///< frames from a superseded epoch
  uint64_t frames_invalid = 0;     ///< bad magic / nonsense sender
  uint64_t nacks_sent = 0;
  uint64_t acks_sent = 0;
};

/// \brief Sending half of one directed link. Single-threaded: owned by the
/// node service thread that also owns the outgoing channel.
class ReliableSender {
 public:
  void Init(uint32_t self, uint32_t channel, const ReliableOptions& opts,
            uint64_t seed) {
    self_ = self;
    channel_ = channel;
    opts_ = opts;
    rng_.Seed(SplitMix64(seed ^ ((static_cast<uint64_t>(self) << 8) | channel)).Next());
  }

  /// Stamps the envelope for the next outgoing frame. The envelope's own
  /// identity fields are folded into payload_crc, so verification covers the
  /// whole frame: XOR EnvelopeCrc back out to recover the content CRC.
  FrameHeader NextHeader(uint32_t payload_crc) {
    FrameHeader h;
    h.sender = self_;
    h.epoch = epoch_;
    h.seq = next_seq_++;
    h.payload_crc = payload_crc ^ EnvelopeCrc(h);
    return h;
  }

  /// Records a sent frame in the retransmit window. Call right after the
  /// channel Send with the same seq NextHeader issued.
  void Track(uint32_t opcode, const rdma::MetaBlob& meta, rdma::Buffer payload,
             uint64_t seq, SimTime now);

  /// Cumulative acknowledgement: everything <= seq (in this epoch) is done.
  void OnAck(uint32_t epoch, uint64_t seq, SimTime now);

  /// The peer expected `seq`: frames < seq are implicitly ACKed, the rest
  /// retransmit immediately.
  void OnNack(uint32_t epoch, uint64_t seq, SimTime now);

  /// A frame to retransmit per entry, in order, or nullptr when nothing is
  /// due. On the head frame exhausting its attempt budget the whole window
  /// is abandoned with a link reset (go-back-N cannot skip one frame
  /// without leaving the receiver gapped forever).
  struct Stored {
    uint32_t opcode = 0;
    rdma::MetaBlob meta;
    rdma::Buffer payload;
    uint64_t seq = 0;
  };
  const std::deque<Stored>* CollectRetransmits(SimTime now);

  /// Bumps the epoch, restarts seq at 0, abandons the window. Used on node
  /// restart, ring re-splice, and retransmit exhaustion.
  void Reset(SimTime now);

  uint32_t epoch() const { return epoch_; }
  uint64_t next_seq() const { return next_seq_; }
  size_t window_size() const { return unacked_.size(); }
  const ReliableMetrics& metrics() const { return metrics_; }

 private:
  SimTime RetxDelay(uint32_t attempts);

  uint32_t self_ = core::kInvalidNode;
  uint32_t channel_ = kChData;
  ReliableOptions opts_;
  Rng rng_;
  uint32_t epoch_ = 0;
  uint64_t next_seq_ = 0;
  std::deque<Stored> unacked_;
  uint32_t head_attempts_ = 0;
  SimTime next_retx_ = 0;
  ReliableMetrics metrics_;
};

/// \brief Receiving half: in-order delivery decisions per sending peer.
/// Single-threaded (node service thread).
class ReliableReceiver {
 public:
  enum class Verdict {
    kDeliver,    ///< in order and intact: hand to the application
    kDuplicate,  ///< seq below expected: drop silently
    kGap,        ///< seq above expected: drop, NACK the expected seq
    kCorrupt,    ///< CRC mismatch: drop, NACK this seq
    kStale,      ///< superseded epoch: drop
    kInvalid,    ///< bad magic / unknown sender: drop, no NACK
  };

  struct Outcome {
    Verdict verdict = Verdict::kInvalid;
    bool send_nack = false;
    uint64_t nack_seq = 0;
    uint32_t nack_epoch = 0;
  };

  /// Classifies one arriving frame. `crc_ok` is the caller's verification
  /// result (the receiver does not see payload bytes).
  Outcome OnFrame(const FrameHeader& h, bool crc_ok);

  /// Highest in-order seq accepted from `sender` in its current epoch, for
  /// the coalesced per-drain cumulative ACK; false when nothing to ack yet.
  bool CumulativeAck(uint32_t sender, uint32_t* epoch, uint64_t* seq) const;

  const ReliableMetrics& metrics() const { return metrics_; }
  ReliableMetrics* mutable_metrics() { return &metrics_; }

 private:
  struct PeerState {
    uint32_t epoch = 0;
    uint64_t expected = 0;  ///< next seq to deliver
    /// NACK dedupe: one NACK per gap event, re-armed when expected moves.
    uint64_t last_nacked = UINT64_MAX;
  };

  std::unordered_map<uint32_t, PeerState> peers_;
  ReliableMetrics metrics_;
};

}  // namespace dcy::net
