#include "sim/simulator.h"

#include "common/logging.h"

namespace dcy::sim {

EventId Simulator::ScheduleAt(SimTime when, Callback fn) {
  DCY_CHECK(when >= now_) << "cannot schedule into the past: " << when << " < " << now_;
  const uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as the id; both are unique
  queue_.push(Entry{when, seq, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::PopRunnable(Entry* out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    *out = e;
    return true;
  }
  return false;
}

bool Simulator::Step() {
  Entry e;
  if (!PopRunnable(&e)) return false;
  now_ = e.when;
  auto it = callbacks_.find(e.id);
  DCY_DCHECK(it != callbacks_.end());
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  ++fired_;
  fn();
  return true;
}

uint64_t Simulator::Run() {
  uint64_t n = 0;
  while (Step()) ++n;
  return n;
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t n = 0;
  Entry e;
  while (PopRunnable(&e)) {
    if (e.when > deadline) {
      // Put it back; it stays pending for a later Run call.
      queue_.push(e);
      break;
    }
    now_ = e.when;
    auto it = callbacks_.find(e.id);
    DCY_DCHECK(it != callbacks_.end());
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++fired_;
    ++n;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

void PeriodicTimer::Start() {
  if (in_tick_) {
    stop_requested_ = false;  // restart requested from within the callback
    return;
  }
  if (running()) return;
  pending_ = sim_->Schedule(period_, [this] { Tick(); });
}

void PeriodicTimer::Stop() {
  if (in_tick_) {
    stop_requested_ = true;  // honoured after the callback returns
    return;
  }
  if (!running()) return;
  sim_->Cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTimer::Tick() {
  pending_ = kInvalidEvent;
  in_tick_ = true;
  fn_();
  in_tick_ = false;
  if (stop_requested_) {
    stop_requested_ = false;
    return;
  }
  pending_ = sim_->Schedule(period_, [this] { Tick(); });
}

}  // namespace dcy::sim
