// Deterministic discrete-event simulation kernel.
//
// This is the repo's substitute for NS-2, which the paper used to evaluate
// the Data Cyclotron protocols (§5). It provides exactly what the paper
// needed from NS-2: a virtual clock, scheduled callbacks, and deterministic
// ordering — nothing network-specific lives here (see src/net for links).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace dcy::sim {

/// Opaque handle used to cancel a scheduled event.
using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

/// \brief Priority-queue driven event loop with a virtual nanosecond clock.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO by
/// sequence number), which makes every simulation reproducible for a fixed
/// seed regardless of platform.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now. Requires delay >= 0.
  EventId Schedule(SimTime delay, Callback fn) { return ScheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `when`. Requires when >= Now().
  EventId ScheduleAt(SimTime when, Callback fn);

  /// Cancels a pending event; returns false if it already ran/was cancelled.
  bool Cancel(EventId id);

  /// Runs until the event queue empties. Returns the number of events fired.
  uint64_t Run();

  /// Runs until the queue empties or virtual time would exceed `deadline`.
  /// Events at exactly `deadline` do fire.
  uint64_t RunUntil(SimTime deadline);

  /// Fires exactly one event if any is pending; returns false when idle.
  bool Step();

  /// Number of events waiting (including cancelled-but-not-popped ones).
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  uint64_t total_fired() const { return fired_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    // Ordered as a min-heap: earliest time first, then FIFO by seq.
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  bool PopRunnable(Entry* out);

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Callbacks stored aside so cancel() can drop them without heap surgery.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

/// \brief Re-arms itself every `period` ns until Stop(); convenience for the
/// protocol timers (loadAll, LOIT adaptation, resend scans).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator* sim, SimTime period, Simulator::Callback fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { Stop(); }

  /// Starts ticking; the first tick fires one period from now.
  void Start();
  void Stop();
  bool running() const { return pending_ != kInvalidEvent; }

 private:
  void Tick();

  Simulator* sim_;
  SimTime period_;
  Simulator::Callback fn_;
  EventId pending_ = kInvalidEvent;
  bool in_tick_ = false;
  bool stop_requested_ = false;
};

}  // namespace dcy::sim
