// Observer interface for protocol events. The experiment collectors in
// src/simdc implement this to build the per-BAT series of Figures 9-11
// without the protocol code knowing about any experiment.
#pragma once

#include "common/units.h"
#include "core/types.h"

namespace dcy::core {

/// \brief Protocol event observer; all callbacks have empty defaults so
/// embedders override only what they measure.
class StatsSink {
 public:
  virtual ~StatsSink() = default;

  /// A request message entered the ring (first dispatch or resend).
  virtual void OnRequestDispatched(NodeId /*node*/, BatId /*bat*/, bool /*resend*/) {}
  /// A fresh S2 entry was registered at a node. This is the quantity the
  /// paper's Figure 9a plots as "number of requests": persistent entries
  /// for in-vogue BATs are counted once however many queries they serve
  /// ("the requests stay longer in the node", §5.3).
  virtual void OnRequestEntryCreated(NodeId /*node*/, BatId /*bat*/) {}
  /// A BAT passed a node where it satisfied `blocked_pins` blocked pins
  /// (a "touch"; copies++ happened iff blocked_pins > 0, Fig. 4).
  virtual void OnBatTouched(NodeId /*node*/, BatId /*bat*/, uint32_t /*blocked_pins*/) {}
  /// Owner loaded the BAT into the ring.
  virtual void OnBatLoaded(NodeId /*owner*/, BatId /*bat*/, uint64_t /*size*/) {}
  /// Owner removed the BAT from the ring after `cycles` cycles; `loi` is the
  /// level of interest that fell below the threshold.
  virtual void OnBatUnloaded(NodeId /*owner*/, BatId /*bat*/, uint64_t /*size*/,
                             uint32_t /*cycles*/, double /*loi*/) {}
  /// Owner observed a completed cycle (header.cycles after increment).
  virtual void OnCycleCompleted(NodeId /*owner*/, BatId /*bat*/, uint32_t /*cycles*/,
                                SimTime /*rotation_time*/) {}
  /// A query's pin was satisfied `wait` after the pin call blocked
  /// (wait == 0 for cache/local hits).
  virtual void OnPinSatisfied(NodeId /*node*/, QueryId /*query*/, BatId /*bat*/,
                              SimTime /*wait*/) {}
  /// Data handed to a query `latency` after request registration — the
  /// quantity maximised per BAT in the paper's Figure 10.
  virtual void OnRequestSatisfied(NodeId /*node*/, BatId /*bat*/, SimTime /*latency*/) {}
  /// The BAT was tagged pending at the owner (load postponed, ring full).
  virtual void OnBatPending(NodeId /*owner*/, BatId /*bat*/) {}
  /// Lost-BAT detection fired at the owner (fault injection runs only).
  virtual void OnBatPresumedLost(NodeId /*owner*/, BatId /*bat*/) {}
  /// A request returned to its origin: the BAT does not exist (Fig. 3,
  /// first outcome). The associated queries received errors.
  virtual void OnRequestReturnedToOrigin(NodeId /*node*/, BatId /*bat*/) {}
};

}  // namespace dcy::core
