#include "core/loi.h"

#include "common/logging.h"

namespace dcy::core {

double ComputeNewLoi(double loi, uint32_t copies, uint32_t hops, uint32_t cycles) {
  DCY_DCHECK(cycles >= 1);
  const double cavg = hops == 0 ? 0.0 : static_cast<double>(copies) / static_cast<double>(hops);
  // Algebraically identical to Fig. 5 line 04:
  //   (loi + (copies/hops) * cycles) / cycles == loi/cycles + cavg
  return loi / static_cast<double>(cycles) + cavg;
}

AdaptiveLoit::AdaptiveLoit(Options options) : options_(std::move(options)) {
  DCY_CHECK(!options_.levels.empty());
  DCY_CHECK(options_.low_watermark < options_.high_watermark);
  level_ = options_.initial_level < options_.levels.size() ? options_.initial_level : 0;
}

void AdaptiveLoit::Update(double queue_load_fraction) {
  if (queue_load_fraction > options_.high_watermark) {
    if (level_ + 1 < options_.levels.size()) {
      ++level_;
      ++transitions_;
    }
  } else if (queue_load_fraction < options_.low_watermark) {
    if (level_ > 0) {
      --level_;
      ++transitions_;
    }
  }
}

}  // namespace dcy::core
