#include "core/loi.h"

#include <cmath>

#include "common/logging.h"

namespace dcy::core {

double ComputeNewLoi(double loi, uint32_t copies, uint32_t hops, uint32_t cycles) {
  DCY_DCHECK(cycles >= 1);
  const double cavg = hops == 0 ? 0.0 : static_cast<double>(copies) / static_cast<double>(hops);
  // Algebraically identical to Fig. 5 line 04:
  //   (loi + (copies/hops) * cycles) / cycles == loi/cycles + cavg
  return loi / static_cast<double>(cycles) + cavg;
}

InterestTracker::InterestTracker() : InterestTracker(Options()) {}

InterestTracker::InterestTracker(Options options) : options_(options) {
  DCY_CHECK(options_.half_life_seconds > 0.0);
}

double InterestTracker::DecayFactor(double dt_seconds) const {
  if (dt_seconds <= 0.0) return 1.0;
  // 2^(-dt / half_life): the score halves once per half-life of silence.
  return std::exp2(-dt_seconds / options_.half_life_seconds);
}

void InterestTracker::Touch(BatId id, double now_seconds, double weight) {
  State& s = state_[id];
  s.score = s.score * DecayFactor(now_seconds - s.at) + weight;
  s.at = now_seconds;
}

double InterestTracker::Score(BatId id, double now_seconds) const {
  const auto it = state_.find(id);
  if (it == state_.end()) return 0.0;
  return it->second.score * DecayFactor(now_seconds - it->second.at);
}

void InterestTracker::Forget(BatId id) { state_.erase(id); }

AdaptiveLoit::AdaptiveLoit(Options options) : options_(std::move(options)) {
  DCY_CHECK(!options_.levels.empty());
  DCY_CHECK(options_.low_watermark < options_.high_watermark);
  level_ = options_.initial_level < options_.levels.size() ? options_.initial_level : 0;
}

void AdaptiveLoit::Update(double queue_load_fraction) {
  if (queue_load_fraction > options_.high_watermark) {
    if (level_ + 1 < options_.levels.size()) {
      ++level_;
      ++transitions_;
    }
  } else if (queue_load_fraction < options_.low_watermark) {
    if (level_ > 0) {
      --level_;
      ++transitions_;
    }
  }
}

}  // namespace dcy::core
