// The three catalog structures of the Data Cyclotron layer (paper §4.2,
// Figure 2):
//   S1 — BATs owned by the local data loader (cold on disk / pending / hot),
//   S2 — outstanding requests for all active queries, keyed by BAT id,
//   S3 — pins: BATs needed *urgently*, i.e. queries blocked in pin().
// Plus the local BAT cache that pin() consults before blocking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "core/types.h"

namespace dcy::core {

/// Lifecycle of an owned BAT with respect to the storage ring.
enum class OwnedState {
  kCold,     ///< on the owner's local disk, not circulating
  kPending,  ///< requested, but the load was postponed (ring full)
  kHot,      ///< circulating in the storage ring
};

const char* OwnedStateName(OwnedState s);

/// \brief S1 entry: one BAT administered by the local DC data loader.
struct OwnedBat {
  BatId id = kInvalidBat;
  uint64_t size = 0;
  OwnedState state = OwnedState::kCold;
  /// When the BAT was tagged pending (drives loadAll age priority).
  SimTime pending_since = 0;
  /// When the BAT last entered the ring.
  SimTime loaded_at = 0;
  /// Owner-side copy of the header bookkeeping while hot.
  double loi = 0.0;
  uint32_t cycles = 0;
  /// Last time the BAT completed a cycle at the owner (lost-BAT detection).
  SimTime last_cycle_at = 0;
  /// Total times this BAT entered the ring (paper Fig. 9b "loads").
  uint64_t loads = 0;
  uint64_t unloads = 0;
};

/// \brief S1: catalog of BATs owned by this node.
class OwnedCatalog {
 public:
  /// Registers a BAT with this node as owner. Returns false on duplicate.
  bool Add(BatId id, uint64_t size);
  /// Removes a BAT entirely (deletion). Returns false if absent.
  bool Remove(BatId id);

  bool Contains(BatId id) const { return bats_.count(id) > 0; }
  OwnedBat* Find(BatId id);
  const OwnedBat* Find(BatId id) const;

  size_t size() const { return bats_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }
  /// Bytes of owned BATs currently in OwnedState::kHot.
  uint64_t hot_bytes() const { return hot_bytes_; }

  /// Called by DcNode on every state transition to keep hot_bytes in sync.
  void NoteStateChange(OwnedBat* bat, OwnedState next);

  /// Pending BATs ordered oldest-first (the loadAll scan order, §4.2.3).
  std::vector<OwnedBat*> PendingOldestFirst();

  /// All currently hot (circulating) BATs, id order.
  std::vector<OwnedBat*> Hot();

  /// All owned BATs in id order (deterministic iteration for tests).
  std::vector<const OwnedBat*> All() const;

 private:
  std::map<BatId, OwnedBat> bats_;  // ordered => deterministic scans
  uint64_t total_bytes_ = 0;
  uint64_t hot_bytes_ = 0;
};

/// \brief S2 entry: the outstanding request for one BAT, shared by all local
/// queries interested in it. "A request is only removed if all its queries
/// pinned it" (§5.3).
struct RequestEntry {
  BatId bat_id = kInvalidBat;
  /// True once the request message was dispatched into the ring (or
  /// suppressed because the BAT passed first — Fig. 4 line 04).
  bool sent = false;
  /// True while this node's own request message is travelling towards the
  /// owner and the BAT has not passed since. Only a *live* request may
  /// absorb duplicates (Fig. 3 outcome 5): a stale entry absorbing for a
  /// BAT the owner has meanwhile unloaded would starve downstream nodes.
  bool in_flight = false;
  SimTime first_registered = 0;
  /// Last time a request message for this entry was dispatched (resend).
  SimTime last_dispatch = 0;
  /// Last time the BAT passed this node (0 = never seen).
  SimTime last_seen = 0;
  uint64_t dispatch_count = 0;

  struct PerQuery {
    bool pin_called = false;  ///< query reached its pin() for this BAT
    bool delivered = false;   ///< data handed to the query
    SimTime registered_at = 0;
    SimTime pin_called_at = 0;
  };
  std::map<QueryId, PerQuery> queries;  // ordered => deterministic delivery

  /// Fig. 4 `request_is_pinned_all`: every associated query got its data.
  bool AllDelivered() const;
  /// Fig. 4 `request_has_pin_calls`: at least one query is blocked in pin().
  bool HasBlockedPins() const;
};

/// \brief S2: outstanding requests keyed by BAT id.
class RequestTable {
 public:
  /// Finds or creates the entry for `bat`; new entries get timestamps `now`.
  RequestEntry* GetOrCreate(BatId bat, SimTime now);
  RequestEntry* Find(BatId bat);
  const RequestEntry* Find(BatId bat) const;
  bool Erase(BatId bat);
  bool Contains(BatId bat) const { return entries_.count(bat) > 0; }
  size_t size() const { return entries_.size(); }

  std::map<BatId, RequestEntry>& entries() { return entries_; }
  const std::map<BatId, RequestEntry>& entries() const { return entries_; }

 private:
  std::map<BatId, RequestEntry> entries_;
};

/// \brief S3: queries blocked in pin(), keyed by the BAT they wait for.
class PinTable {
 public:
  void Block(BatId bat, QueryId query);
  /// Removes and returns all queries blocked on `bat` (delivery).
  std::vector<QueryId> TakeBlocked(BatId bat);
  /// Removes one query from one BAT's wait list (unpin of a never-delivered
  /// pin, e.g. on query abort). Returns true if it was present.
  bool Unblock(BatId bat, QueryId query);
  bool HasBlocked(BatId bat) const;
  size_t blocked_count(BatId bat) const;
  size_t total_blocked() const { return total_; }

 private:
  std::unordered_map<BatId, std::vector<QueryId>> waiting_;
  size_t total_ = 0;
};

/// \brief The node-local cache pin() consults: BATs recently delivered and
/// still pinned by at least one query ("The pin() request checks the local
/// cache for availability", §4.2.1). Reference-counted; the memory-mapped
/// region is freed when the last unpin drops the count to zero.
class BatCache {
 public:
  /// Inserts (or refreshes) a cached BAT with `pins` initial references.
  void Insert(BatId bat, uint64_t size, uint32_t pins, SimTime now);
  /// If cached, takes one more reference and returns true (pin cache hit).
  bool AddPinIfPresent(BatId bat);
  /// Releases one reference; evicts at zero. Returns true if it was cached.
  bool ReleasePin(BatId bat);
  bool Contains(BatId bat) const { return entries_.count(bat) > 0; }
  uint64_t cached_bytes() const { return cached_bytes_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t size = 0;
    uint32_t pin_count = 0;
    SimTime inserted_at = 0;
  };
  std::unordered_map<BatId, Entry> entries_;
  uint64_t cached_bytes_ = 0;
};

}  // namespace dcy::core
