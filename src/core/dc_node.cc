#include "core/dc_node.h"

#include <algorithm>

#include "common/logging.h"

namespace dcy::core {

DcNode::DcNode(DcNodeOptions options, DcEnv* env, LoitPolicy* loit, StatsSink* sink)
    : options_(options), env_(env), loit_(loit), sink_(sink) {
  DCY_CHECK(env_ != nullptr);
  DCY_CHECK(loit_ != nullptr);
}

bool DcNode::AddOwnedBat(BatId bat, uint64_t size) { return owned_.Add(bat, size); }

bool DcNode::RemoveOwnedBat(BatId bat) { return owned_.Remove(bat); }

// ---------------------------------------------------------------------------
// The three injected calls (§4.1).
// ---------------------------------------------------------------------------

void DcNode::Request(QueryId query, BatId bat) {
  ++metrics_.requests_registered;
  if (owned_.Contains(bat)) {
    // Owned locally: "retrieved from disk or local memory and put into the
    // DBMS space" (§4.2.1) — no ring involvement, pin() will succeed.
    return;
  }
  const bool existed = requests_.Contains(bat);
  RequestEntry* entry = requests_.GetOrCreate(bat, env_->Now());
  if (!existed && sink_ != nullptr) sink_->OnRequestEntryCreated(options_.node_id, bat);
  auto [it, inserted] = entry->queries.try_emplace(query);
  if (inserted) it->second.registered_at = env_->Now();
  if (!entry->sent) DispatchRequest(entry, /*resend=*/false);
  // Queries joining an already-served entry do not re-request here: if the
  // BAT is still hot it will pass again anyway (§5.3), and if it was
  // unloaded, the pin() path below re-requests as soon as it blocks.
}

bool DcNode::Pin(QueryId query, BatId bat) {
  ++metrics_.pins_total;
  const SimTime now = env_->Now();

  if (owned_.Contains(bat)) {
    ++metrics_.pins_local_hit;
    if (sink_ != nullptr) sink_->OnPinSatisfied(options_.node_id, query, bat, 0);
    return true;
  }

  RequestEntry* entry = requests_.Find(bat);
  if (entry == nullptr || entry->queries.count(query) == 0) {
    // pin() without a preceding request(): tolerate it (defensive; the
    // DcOptimizer always emits the request) by registering interest now.
    Request(query, bat);
    entry = requests_.Find(bat);
    DCY_CHECK(entry != nullptr);
  }
  RequestEntry::PerQuery& pq = entry->queries[query];
  pq.pin_called = true;
  pq.pin_called_at = now;

  if (pq.delivered) {
    ++metrics_.pins_local_hit;
    if (sink_ != nullptr) sink_->OnPinSatisfied(options_.node_id, query, bat, 0);
    return true;
  }
  if (cache_.AddPinIfPresent(bat)) {
    // "The pin() request checks the local cache for availability" (§4.2.1).
    pq.delivered = true;
    ++metrics_.pins_local_hit;
    if (sink_ != nullptr) {
      sink_->OnPinSatisfied(options_.node_id, query, bat, 0);
      sink_->OnRequestSatisfied(options_.node_id, bat, now - pq.registered_at);
    }
    return true;
  }

  pins_.Block(bat, query);
  ++metrics_.pins_blocked;
  // Urgency signal: if no request of ours is in flight and the BAT has not
  // passed for over a rotation, it was likely unloaded by its owner —
  // re-request it now instead of waiting for the resend timeout.
  if (!entry->in_flight) {
    const SimTime rot = rotation_estimate_ != 0 ? rotation_estimate_
                                                : options_.initial_rotation_estimate;
    const SimTime stale_after = static_cast<SimTime>(1.5 * static_cast<double>(rot));
    if (entry->last_seen == 0 || now - entry->last_seen > stale_after) {
      DispatchRequest(entry, /*resend=*/false);
    }
  }
  return false;
}

void DcNode::Unpin(QueryId query, BatId bat) {
  if (owned_.Contains(bat)) return;  // owned BATs are not cache-managed
  // Only a pin that was actually served holds a cache reference; an aborted
  // query unpinning a still-blocked pin must not steal another holder's.
  bool was_delivered = true;  // entry already retired => the pin was served
  if (RequestEntry* entry = requests_.Find(bat)) {
    auto it = entry->queries.find(query);
    if (it != entry->queries.end()) {
      was_delivered = it->second.delivered;
      // Mark it delivered so the entry can retire (the query is done with it).
      it->second.delivered = true;
    }
  }
  if (was_delivered) {
    // Release the memory-mapped region reference (§4.2.2).
    cache_.ReleasePin(bat);
  }
  // If the query aborted while still blocked, clear its S3 entry.
  pins_.Unblock(bat, query);
}

void DcNode::FailBat(BatId bat) {
  if (RequestEntry* entry = requests_.Find(bat)) {
    for (auto& [query, st] : entry->queries) {
      if (!st.delivered) {
        ++metrics_.queries_failed;
        env_->FailQuery(query, bat);
      }
    }
    pins_.TakeBlocked(bat);
    requests_.Erase(bat);
  }
}

// ---------------------------------------------------------------------------
// Request Propagation (Fig. 3).
// ---------------------------------------------------------------------------

void DcNode::OnRequestMsg(const RequestMsg& msg) {
  const SimTime now = env_->Now();

  // First outcome: the request is back at its origin — the BAT does not
  // exist (anymore); the associated queries raise an exception.
  if (msg.origin == options_.node_id) {
    ++metrics_.requests_returned_origin;
    if (sink_ != nullptr) sink_->OnRequestReturnedToOrigin(options_.node_id, msg.bat_id);
    if (RequestEntry* entry = requests_.Find(msg.bat_id)) {
      for (auto& [query, st] : entry->queries) {
        if (!st.delivered) {
          ++metrics_.queries_failed;
          env_->FailQuery(query, msg.bat_id);
        }
      }
      pins_.TakeBlocked(msg.bat_id);
      requests_.Erase(msg.bat_id);
    }
    return;
  }

  // Second to fourth outcome: this node owns the BAT.
  if (OwnedBat* ob = owned_.Find(msg.bat_id)) {
    if (ob->state == OwnedState::kHot) return;  // already (re-)loaded: ignore
    if (CanLoadNow(ob->size)) {
      LoadOwnedBat(ob, /*from_pending=*/ob->state == OwnedState::kPending);
    } else if (ob->state != OwnedState::kPending) {
      // Ring full: postpone until hot-set adjustment frees space.
      owned_.NoteStateChange(ob, OwnedState::kPending);
      ob->pending_since = now;
      ++metrics_.bats_pending_tagged;
      if (sink_ != nullptr) sink_->OnBatPending(options_.node_id, msg.bat_id);
    }
    return;
  }

  // Fifth outcome: the same request is outstanding locally — absorb it.
  // Absorption is only safe while our own request is live (in flight): a
  // request that was already served does not guarantee the owner still has
  // the BAT in the ring, so we take over responsibility by re-dispatching
  // our own request in the absorbed one's stead (Fig. 3 lines 22-26).
  if (options_.combine_requests) {
    if (RequestEntry* entry = requests_.Find(msg.bat_id)) {
      ++metrics_.requests_absorbed;
      if (!entry->in_flight) DispatchRequest(entry, /*resend=*/false);
      return;
    }
  }

  // Sixth outcome: just forward it (origin preserved).
  ++metrics_.request_msgs_forwarded;
  env_->SendRequestMsg(msg);
}

// ---------------------------------------------------------------------------
// BAT Propagation (Fig. 4) and Hot-set Management (Fig. 5).
// ---------------------------------------------------------------------------

void DcNode::OnBatMsg(const BatHeader& header) {
  ++metrics_.bat_passes;
  if (header.owner == options_.node_id) {
    OwnerHandleReturn(header);
  } else {
    PropagateBat(header);
  }
}

void DcNode::OwnerHandleReturn(BatHeader header) {
  OwnedBat* ob = owned_.Find(header.bat_id);
  if (ob == nullptr) return;  // deleted while circulating: swallow it

  bool readopted = false;
  if (ob->state != OwnedState::kHot) {
    // It was presumed lost (or re-tagged) but is actually still circulating:
    // re-adopt it as hot.
    owned_.NoteStateChange(ob, OwnedState::kHot);
    readopted = true;
  }

  const SimTime now = env_->Now();
  const uint32_t cycles = header.cycles + 1;
  const SimTime rotation = now - ob->last_cycle_at;
  ob->last_cycle_at = now;
  // A rotation measured across a presumed-loss gap would poison the EMA the
  // lost-BAT timeout derives from; only clean cycles feed the estimate.
  if (rotation > 0 && !readopted) {
    rotation_estimate_ = rotation_estimate_ == 0
                             ? rotation
                             : (rotation_estimate_ * 4 + rotation) / 5;  // EMA 0.2
  }
  ++metrics_.cycles_completed;

  const double new_loi = ComputeNewLoi(header.loi, header.copies, header.hops, cycles);
  if (sink_ != nullptr) {
    sink_->OnCycleCompleted(options_.node_id, header.bat_id, cycles, rotation);
  }

  ob->loi = new_loi;
  ob->cycles = cycles;

  if (new_loi < loit_->threshold()) {
    // Below the minimum level of interest: pull it out of the hot set.
    owned_.NoteStateChange(ob, OwnedState::kCold);
    ++ob->unloads;
    ++metrics_.bats_unloaded;
    if (sink_ != nullptr) {
      sink_->OnBatUnloaded(options_.node_id, header.bat_id, header.bat_size, cycles, new_loi);
    }
    return;
  }

  BatHeader fwd = header;
  fwd.loi = new_loi;
  fwd.copies = 0;
  fwd.hops = 0;
  fwd.cycles = cycles;
  env_->SendBatMsg(fwd, /*is_load=*/false);
}

void DcNode::PropagateBat(BatHeader header) {
  ++header.hops;

  // A pin lives in S3 from pin() until unpin() (§4.2.1), so this node "uses"
  // the BAT if queries are blocked waiting for it *or* still hold it from an
  // earlier delivery (the cache reference count is exactly the held pins).
  const bool held = cache_.Contains(header.bat_id);
  uint32_t delivered = 0;
  if (RequestEntry* entry = requests_.Find(header.bat_id)) {
    entry->sent = true;  // Fig. 4 line 04: the BAT made it here
    entry->in_flight = false;  // our request was served
    entry->last_seen = env_->Now();
    if (entry->HasBlockedPins()) {
      delivered = DeliverToBlockedPins(header.bat_id, header.bat_size);
    }
    if (entry->AllDelivered()) {
      requests_.Erase(header.bat_id);  // Fig. 4 lines 09-10
    }
  }
  const bool used = held || delivered > 0;
  if (used) ++header.copies;  // Fig. 4 lines 06-07
  if (sink_ != nullptr) {
    sink_->OnBatTouched(options_.node_id, header.bat_id, delivered + (held ? 1 : 0));
  }

  env_->SendBatMsg(header, /*is_load=*/false);
}

uint32_t DcNode::DeliverToBlockedPins(BatId bat, uint64_t size) {
  const std::vector<QueryId> waiters = pins_.TakeBlocked(bat);
  if (waiters.empty()) return 0;
  const SimTime now = env_->Now();

  // The BAT is handed over "as a pointer to a memory mapped region"
  // (§4.2.2): one cached copy, one pin reference per waiting query.
  cache_.Insert(bat, size, static_cast<uint32_t>(waiters.size()), now);

  RequestEntry* entry = requests_.Find(bat);
  for (QueryId query : waiters) {
    if (entry != nullptr) {
      auto it = entry->queries.find(query);
      if (it != entry->queries.end()) {
        it->second.delivered = true;
        if (sink_ != nullptr) {
          sink_->OnRequestSatisfied(options_.node_id, bat, now - it->second.registered_at);
          sink_->OnPinSatisfied(options_.node_id, query, bat, now - it->second.pin_called_at);
        }
      }
    }
    ++metrics_.deliveries;
    env_->DeliverToQuery(query, bat);
  }
  return static_cast<uint32_t>(waiters.size());
}

// ---------------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------------

void DcNode::OnLoadAllTimer() {
  // §4.2.3 loadAll(): "Every T msec, it starts the load for the oldest ones.
  // If a BAT does not fit in the BAT queue, it tries the next one and so on
  // until it fills up the queue. The leftovers stay for the next call."
  for (OwnedBat* ob : owned_.PendingOldestFirst()) {
    if (CanLoadNow(ob->size)) {
      LoadOwnedBat(ob, /*from_pending=*/true);
    } else if (!options_.pending_fit_check) {
      break;  // ablation: strict FIFO head-of-line blocking
    }
    // else: skip and try the next (smaller) one — the paper's behaviour.
  }
}

void DcNode::OnMaintenanceTimer() {
  const SimTime now = env_->Now();

  // Requester side: garbage-collect retired entries; re-send requests whose
  // BAT is overdue (§4.2.3 resend(), "indicates a package loss"). The resend
  // covers every entry with undelivered queries, not only blocked pins:
  // an entry whose request was absorbed upstream must eventually re-signal,
  // otherwise chains of absorbing-but-stale entries can starve the whole
  // ring of a BAT its owner has unloaded. An entry is overdue only when
  // neither a dispatch nor a BAT sighting happened within the timeout, so
  // hot BATs (seen every rotation) never trigger it.
  auto& entries = requests_.entries();
  for (auto it = entries.begin(); it != entries.end();) {
    RequestEntry& entry = it->second;
    if (!entry.queries.empty() && entry.AllDelivered()) {
      it = entries.erase(it);
      continue;
    }
    const SimTime last_activity = std::max(entry.last_dispatch, entry.last_seen);
    if (options_.enable_resend && !entry.AllDelivered() &&
        now - last_activity >= ResendTimeout()) {
      DispatchRequest(&entry, /*resend=*/true);
    }
    ++it;
  }

  // Owner side: a hot BAT that has not completed a cycle for much longer
  // than the rotation estimate was dropped somewhere — return it to cold so
  // a future request can re-load it.
  if (options_.enable_lost_detection) {
    for (OwnedBat* ob : owned_.Hot()) {
      if (now - ob->last_cycle_at >= LostTimeout()) {
        owned_.NoteStateChange(ob, OwnedState::kCold);
        ++metrics_.bats_presumed_lost;
        if (sink_ != nullptr) sink_->OnBatPresumedLost(options_.node_id, ob->id);
      }
    }
  }
}

void DcNode::OnAdaptTimer() {
  const uint64_t cap = env_->BatQueueCapacityBytes();
  if (cap == 0) return;
  loit_->Update(static_cast<double>(env_->BatQueueLoadBytes()) / static_cast<double>(cap));
}

// ---------------------------------------------------------------------------
// Internals.
// ---------------------------------------------------------------------------

bool DcNode::CanLoadNow(uint64_t size) {
  const uint64_t cap = env_->BatQueueCapacityBytes();
  if (cap == 0) return true;
  const double limit = options_.load_admission_headroom * static_cast<double>(cap);
  return static_cast<double>(env_->BatQueueLoadBytes() + size) <= limit;
}

void DcNode::LoadOwnedBat(OwnedBat* ob, bool from_pending) {
  owned_.NoteStateChange(ob, OwnedState::kHot);
  const SimTime now = env_->Now();
  ob->loaded_at = now;
  ob->last_cycle_at = now;
  ob->loi = 0.0;
  ob->cycles = 0;
  ++ob->loads;
  ++metrics_.bats_loaded;
  if (from_pending) ++metrics_.pending_loads;
  if (sink_ != nullptr) sink_->OnBatLoaded(options_.node_id, ob->id, ob->size);

  BatHeader header;
  header.owner = options_.node_id;
  header.bat_id = ob->id;
  header.bat_size = ob->size;
  env_->SendBatMsg(header, /*is_load=*/true);
}

void DcNode::DispatchRequest(RequestEntry* entry, bool resend) {
  entry->sent = true;
  entry->in_flight = true;
  entry->last_dispatch = env_->Now();
  ++entry->dispatch_count;
  ++metrics_.request_msgs_sent;
  if (resend) ++metrics_.resends;
  if (sink_ != nullptr) sink_->OnRequestDispatched(options_.node_id, entry->bat_id, resend);
  env_->SendRequestMsg(RequestMsg{options_.node_id, entry->bat_id});
}

SimTime DcNode::ResendTimeout() const {
  const SimTime rot = rotation_estimate_ != 0 ? rotation_estimate_
                                              : options_.initial_rotation_estimate;
  return std::max(options_.min_resend_timeout,
                  static_cast<SimTime>(options_.resend_factor * static_cast<double>(rot)));
}

SimTime DcNode::LostTimeout() const {
  const SimTime rot = std::max(rotation_estimate_, options_.initial_rotation_estimate);
  return std::max<SimTime>(options_.min_resend_timeout * 2,
                           static_cast<SimTime>(options_.lost_factor * static_cast<double>(rot)));
}

}  // namespace dcy::core
