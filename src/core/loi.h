// Level-of-interest arithmetic (paper Eq. 1 / Fig. 5) and the LOIT_n
// threshold policies: a static threshold for the §5.1 sweep and the
// buffer-load-adaptive policy of §5.2 (levels 0.1/0.6/1.1 with 80 %/40 %
// hysteresis).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace dcy::core {

/// \brief New level of interest computed by the owner once per completed
/// cycle (paper Fig. 5 line 04 / Eq. 1):
///
///   CAVG    = copies / hops
///   newLOI  = LOI / cycles + CAVG
///
/// `cycles` must already include the cycle being closed (>= 1). When a BAT
/// completed a cycle without travelling (hops == 0 cannot happen on a ring
/// of >= 2 nodes, but guard anyway) CAVG is 0.
double ComputeNewLoi(double loi, uint32_t copies, uint32_t hops, uint32_t cycles);

/// \brief Interface for the per-node minimum level of interest LOIT_n.
///
/// "Each node has its own LOIT_n and its value is derived from the local
/// BAT queue load" (§4.4).
class LoitPolicy {
 public:
  virtual ~LoitPolicy() = default;

  /// Current threshold: BATs whose new LOI falls below it are unloaded.
  virtual double threshold() const = 0;

  /// Feeds the current local BAT-queue load fraction (0..1); adaptive
  /// policies move their level, static policies ignore it.
  virtual void Update(double queue_load_fraction) = 0;

  /// Human-readable name for experiment logs.
  virtual const char* name() const = 0;
};

/// \brief Fixed LOIT_n, as swept in §5.1 (0.1 … 1.1).
class StaticLoit final : public LoitPolicy {
 public:
  explicit StaticLoit(double threshold) : threshold_(threshold) {}
  double threshold() const override { return threshold_; }
  void Update(double) override {}
  const char* name() const override { return "static"; }

 private:
  double threshold_;
};

/// \brief Windowed-decay interest per fragment: each access adds `weight`
/// and the accumulated score halves every `half_life_seconds`, so a burst of
/// pins counts for more than the same number spread over minutes. The score
/// is the eviction-ranking input of the two-tier fragment store — the paper's
/// level-of-interest idea applied to local memory residency instead of ring
/// circulation (the ring LOI of Eq. 1 stays per-cycle and owner-computed).
///
/// Not thread-safe; callers (the fragment store) serialize access.
class InterestTracker {
 public:
  struct Options {
    /// Time for an untouched fragment's score to halve.
    double half_life_seconds = 5.0;
  };

  InterestTracker();
  explicit InterestTracker(Options options);

  /// Records one access at `now_seconds` (any monotonic clock).
  void Touch(BatId id, double now_seconds, double weight = 1.0);

  /// Decayed score as of `now_seconds`; 0 for unknown fragments.
  double Score(BatId id, double now_seconds) const;

  /// Drops all state for `id` (fragment removed from the store).
  void Forget(BatId id);

  size_t size() const { return state_.size(); }

 private:
  double DecayFactor(double dt_seconds) const;

  struct State {
    double score = 0.0;
    double at = 0.0;  ///< when `score` was last folded
  };

  Options options_;
  std::unordered_map<BatId, State> state_;
};

/// \brief The §5.2 adaptive policy: a ladder of levels; one step up when the
/// local BAT queue exceeds the high watermark, one step down when it falls
/// below the low watermark.
class AdaptiveLoit final : public LoitPolicy {
 public:
  struct Options {
    std::vector<double> levels = {0.1, 0.6, 1.1};  // paper §5.2
    double high_watermark = 0.8;                   // "above 80% of capacity"
    double low_watermark = 0.4;                    // "below the 40%"
    size_t initial_level = 0;
  };

  explicit AdaptiveLoit(Options options);

  double threshold() const override { return options_.levels[level_]; }
  void Update(double queue_load_fraction) override;
  const char* name() const override { return "adaptive"; }

  size_t level_index() const { return level_; }
  /// Number of level changes so far (ablation metric).
  uint64_t transitions() const { return transitions_; }

 private:
  Options options_;
  size_t level_;
  uint64_t transitions_ = 0;
};

}  // namespace dcy::core
