// DcNode: the Data Cyclotron layer of one ring node (paper §4.2-§4.4).
//
// This is a *pure state machine*: all I/O (timers, network sends, query
// unblocking, buffer introspection) goes through the DcEnv interface, so the
// identical protocol code runs inside the discrete-event simulator
// (src/simdc) and inside the live multi-threaded runtime (src/runtime).
//
// Implemented algorithms, by paper figure:
//   Fig. 3  Request Propagation  -> OnRequestMsg()
//   Fig. 4  BAT Propagation      -> OnBatMsg() non-owner branch
//   Fig. 5  Hot-set management   -> OnBatMsg() owner branch
//   §4.2.3  loadAll()            -> OnLoadAllTimer()
//   §4.2.3  resend()             -> OnMaintenanceTimer()
//   §4.4/§5.2 LOIT adaptation    -> OnAdaptTimer() via LoitPolicy
#pragma once

#include <memory>
#include <vector>

#include "common/units.h"
#include "core/catalog.h"
#include "core/loi.h"
#include "core/stats_sink.h"
#include "core/types.h"

namespace dcy::core {

/// \brief Environment a DcNode runs in; implemented by the simulator and by
/// the live runtime.
class DcEnv {
 public:
  virtual ~DcEnv() = default;

  /// Current time (virtual in the simulator, steady clock in the runtime).
  virtual SimTime Now() = 0;

  /// Dispatches a request message anti-clockwise (to the predecessor).
  virtual void SendRequestMsg(const RequestMsg& msg) = 0;

  /// Forwards / injects a BAT clockwise (to the successor). `is_load` is
  /// true when the owner injects it from cold storage (the embedder may
  /// model disk latency for loads).
  virtual void SendBatMsg(const BatHeader& header, bool is_load) = 0;

  /// Unblocks a query whose pin() was waiting for `bat`.
  virtual void DeliverToQuery(QueryId query, BatId bat) = 0;

  /// Reports that `bat` does not exist; the query must raise an exception
  /// (Fig. 3, first outcome).
  virtual void FailQuery(QueryId query, BatId bat) = 0;

  /// Local BAT-queue occupancy in bytes (network-layer data buffer).
  virtual uint64_t BatQueueLoadBytes() = 0;
  /// Local BAT-queue capacity in bytes.
  virtual uint64_t BatQueueCapacityBytes() = 0;
};

/// \brief Tunables of the protocol; defaults follow the paper where it
/// specifies values, and are conservative where it does not.
struct DcNodeOptions {
  NodeId node_id = 0;
  uint32_t ring_size = 0;  ///< number of nodes; 0 = unknown (disables heuristics)

  /// loadAll() period T (§4.2.3: "Every T msec"); paper leaves T open.
  SimTime load_all_period = FromMillis(50);

  /// Maintenance scan period (resend + lost-BAT + garbage collection).
  SimTime maintenance_period = FromMillis(250);

  /// LOIT adaptation period (§5.2 reacts to buffer load continuously; we
  /// evaluate on a short timer plus after every load/unload).
  SimTime adapt_period = FromMillis(100);

  /// A requested BAT not delivered within `resend_factor` x the expected
  /// rotation time triggers a request re-send (§4.2.3 resend()).
  double resend_factor = 3.0;
  /// Fallback expected rotation before any cycle was observed.
  SimTime initial_rotation_estimate = FromMillis(500);
  /// Lower bound so EMA noise cannot cause resend storms.
  SimTime min_resend_timeout = FromMillis(200);

  /// Owner declares a hot BAT lost after `lost_factor` x expected rotation
  /// without completing a cycle, returning it to cold state. Deliberately
  /// sluggish: rotation times vary several-fold under saturation and a
  /// false positive costs accounting churn, while a true loss only occurs
  /// on lossy channels where a slow recovery is acceptable.
  double lost_factor = 20.0;

  /// Admission: a load is allowed while queue_load + size <= headroom x
  /// capacity. 1.0 reproduces the paper's "ring is full" check.
  double load_admission_headroom = 1.0;

  /// Ablation switches (all true = paper behaviour).
  bool combine_requests = true;   ///< Fig. 3 outcome 5 (absorb duplicates)
  bool pending_fit_check = true;  ///< loadAll skips BATs that do not fit
  bool enable_resend = true;      ///< §4.2.3 resend()
  bool enable_lost_detection = true;
};

/// \brief Aggregate per-node protocol counters (cheap, always on).
struct DcNodeMetrics {
  uint64_t requests_registered = 0;   ///< local request() calls
  uint64_t request_msgs_sent = 0;     ///< messages dispatched (incl. resends)
  uint64_t request_msgs_forwarded = 0;
  uint64_t requests_absorbed = 0;     ///< Fig. 3 outcome 5
  uint64_t requests_returned_origin = 0;
  uint64_t resends = 0;
  uint64_t pins_total = 0;
  uint64_t pins_local_hit = 0;        ///< owned-BAT or cache hit
  uint64_t pins_blocked = 0;
  uint64_t deliveries = 0;
  uint64_t bat_passes = 0;            ///< BATs seen on the data channel
  uint64_t bats_loaded = 0;
  uint64_t bats_unloaded = 0;
  uint64_t bats_pending_tagged = 0;
  uint64_t pending_loads = 0;         ///< loads performed by loadAll()
  uint64_t cycles_completed = 0;
  uint64_t bats_presumed_lost = 0;
  uint64_t queries_failed = 0;
};

/// \brief One node's Data Cyclotron layer. Not thread-safe: the simulator is
/// single-threaded and the live runtime serializes per-node protocol work on
/// the node's service thread.
class DcNode {
 public:
  /// `env`, `loit` and (optional) `sink` must outlive the node.
  DcNode(DcNodeOptions options, DcEnv* env, LoitPolicy* loit, StatsSink* sink = nullptr);

  // ---- data loader (owner) interface -------------------------------------

  /// Registers a BAT owned by this node (initially cold on disk).
  bool AddOwnedBat(BatId bat, uint64_t size);
  /// Deletes an owned BAT; future requests for it will fail at the origin.
  bool RemoveOwnedBat(BatId bat);

  // ---- the three calls injected into query plans (§4.1) ------------------

  /// datacyclotron.request(): announces interest of `query` in `bat`.
  void Request(QueryId query, BatId bat);

  /// datacyclotron.pin(): returns true if the BAT is available right now
  /// (owned locally or cached); otherwise the query blocks — the embedder
  /// suspends it until DcEnv::DeliverToQuery fires.
  bool Pin(QueryId query, BatId bat);

  /// datacyclotron.unpin(): releases the query's reference on the BAT.
  void Unpin(QueryId query, BatId bat);

  /// Declares `bat` unobtainable (its owner died and the fragment was not
  /// re-homed): fails every undelivered query waiting on it and retires the
  /// request entry, exactly as a request returning to its origin would.
  void FailBat(BatId bat);

  // ---- network-facing entry points (§4.3) ---------------------------------

  /// A request message arrived from the successor (anti-clockwise flow).
  void OnRequestMsg(const RequestMsg& msg);
  /// A BAT arrived from the predecessor (clockwise flow).
  void OnBatMsg(const BatHeader& header);

  // ---- timers --------------------------------------------------------------

  /// §4.2.3 loadAll(): starts postponed loads, oldest first, best fit.
  void OnLoadAllTimer();
  /// resend() + lost-BAT detection + completed-entry garbage collection.
  void OnMaintenanceTimer();
  /// Feeds the LOIT policy with the current queue load fraction.
  void OnAdaptTimer();

  // ---- introspection --------------------------------------------------------

  NodeId node_id() const { return options_.node_id; }
  double loit() const { return loit_->threshold(); }
  const DcNodeMetrics& metrics() const { return metrics_; }
  const OwnedCatalog& owned() const { return owned_; }          // S1
  const RequestTable& requests() const { return requests_; }    // S2
  const PinTable& pins() const { return pins_; }                // S3
  const BatCache& cache() const { return cache_; }
  const DcNodeOptions& options() const { return options_; }
  /// Owner-side estimate of the current ring rotation time (EMA).
  SimTime rotation_estimate() const { return rotation_estimate_; }

 private:
  /// True if `size` more bytes fit into the local BAT queue (admission).
  bool CanLoadNow(uint64_t size);
  /// Loads an owned cold/pending BAT into the ring (Fig. 3 outcome 4).
  void LoadOwnedBat(OwnedBat* bat, bool from_pending);
  /// Owner branch of OnBatMsg: Fig. 5 hot-set management.
  void OwnerHandleReturn(BatHeader header);
  /// Non-owner branch of OnBatMsg: Fig. 4 BAT propagation.
  void PropagateBat(BatHeader header);
  /// Dispatches this node's own request message for `entry`.
  void DispatchRequest(RequestEntry* entry, bool resend);
  /// Delivers `bat` to every query blocked on it; returns how many.
  uint32_t DeliverToBlockedPins(BatId bat, uint64_t size);
  SimTime ResendTimeout() const;
  SimTime LostTimeout() const;

  DcNodeOptions options_;
  DcEnv* env_;
  LoitPolicy* loit_;
  StatsSink* sink_;
  DcNodeMetrics metrics_;

  OwnedCatalog owned_;     // S1
  RequestTable requests_;  // S2
  PinTable pins_;          // S3
  BatCache cache_;

  /// EMA of observed rotation times at this owner.
  SimTime rotation_estimate_ = 0;
};

}  // namespace dcy::core
