// Shared protocol types: BAT identity, the administrative header that
// travels with every BAT (paper §4.3), and the request message.
#pragma once

#include <cstdint>
#include <limits>

#include "common/units.h"

namespace dcy::core {

/// Identifier of a data fragment (a BAT) in the distributed database.
using BatId = uint32_t;
/// Identifier of a ring node.
using NodeId = uint32_t;
/// Identifier of a query, unique across the whole ring.
using QueryId = uint64_t;

constexpr BatId kInvalidBat = std::numeric_limits<BatId>::max();
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr QueryId kInvalidQuery = std::numeric_limits<QueryId>::max();

/// \brief Administrative header carried by a BAT through the storage ring
/// (paper §4.3): "BAT messages contain the fields owner, bat_id, bat_size,
/// loi, copies, hops, and cycles."
struct BatHeader {
  /// The node that loaded the BAT into the ring and owns its cold copy.
  NodeId owner = kInvalidNode;
  BatId bat_id = kInvalidBat;
  /// Payload size in bytes (drives serialization time and queue load).
  uint64_t bat_size = 0;
  /// Level of interest accumulated over previous cycles (Eq. 1).
  double loi = 0.0;
  /// Nodes that used the BAT for query processing since the last owner pass.
  uint32_t copies = 0;
  /// Hops travelled since the last owner pass (age within the cycle).
  uint32_t hops = 0;
  /// Completed ring cycles since the BAT was loaded.
  uint32_t cycles = 0;
};

/// \brief A BAT request travelling anti-clockwise towards the owner
/// (paper §4.3): "BAT request messages contain the variables owner and
/// bat_id" — `origin` is the requesting node (the paper overloads "owner").
struct RequestMsg {
  /// The node where the request originated. A request arriving back at its
  /// origin means the BAT does not exist (Fig. 3, first outcome).
  NodeId origin = kInvalidNode;
  BatId bat_id = kInvalidBat;
};

/// Wire size of a request message (header-only traffic).
constexpr uint64_t kRequestWireBytes = 64;
/// Wire overhead added to a BAT payload for its administrative header.
constexpr uint64_t kBatHeaderWireBytes = 64;

}  // namespace dcy::core
