#include "core/catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace dcy::core {

const char* OwnedStateName(OwnedState s) {
  switch (s) {
    case OwnedState::kCold: return "cold";
    case OwnedState::kPending: return "pending";
    case OwnedState::kHot: return "hot";
  }
  return "?";
}

bool OwnedCatalog::Add(BatId id, uint64_t size) {
  auto [it, inserted] = bats_.try_emplace(id);
  if (!inserted) return false;
  it->second.id = id;
  it->second.size = size;
  it->second.state = OwnedState::kCold;
  total_bytes_ += size;
  return true;
}

bool OwnedCatalog::Remove(BatId id) {
  auto it = bats_.find(id);
  if (it == bats_.end()) return false;
  if (it->second.state == OwnedState::kHot) hot_bytes_ -= it->second.size;
  total_bytes_ -= it->second.size;
  bats_.erase(it);
  return true;
}

OwnedBat* OwnedCatalog::Find(BatId id) {
  auto it = bats_.find(id);
  return it == bats_.end() ? nullptr : &it->second;
}

const OwnedBat* OwnedCatalog::Find(BatId id) const {
  auto it = bats_.find(id);
  return it == bats_.end() ? nullptr : &it->second;
}

void OwnedCatalog::NoteStateChange(OwnedBat* bat, OwnedState next) {
  if (bat->state == OwnedState::kHot && next != OwnedState::kHot) hot_bytes_ -= bat->size;
  if (bat->state != OwnedState::kHot && next == OwnedState::kHot) hot_bytes_ += bat->size;
  bat->state = next;
}

std::vector<OwnedBat*> OwnedCatalog::PendingOldestFirst() {
  std::vector<OwnedBat*> pending;
  for (auto& [id, bat] : bats_) {
    if (bat.state == OwnedState::kPending) pending.push_back(&bat);
  }
  std::stable_sort(pending.begin(), pending.end(), [](const OwnedBat* a, const OwnedBat* b) {
    if (a->pending_since != b->pending_since) return a->pending_since < b->pending_since;
    return a->id < b->id;
  });
  return pending;
}

std::vector<OwnedBat*> OwnedCatalog::Hot() {
  std::vector<OwnedBat*> hot;
  for (auto& [id, bat] : bats_) {
    if (bat.state == OwnedState::kHot) hot.push_back(&bat);
  }
  return hot;
}

std::vector<const OwnedBat*> OwnedCatalog::All() const {
  std::vector<const OwnedBat*> out;
  out.reserve(bats_.size());
  for (const auto& [id, bat] : bats_) out.push_back(&bat);
  return out;
}

bool RequestEntry::AllDelivered() const {
  for (const auto& [q, st] : queries) {
    if (!st.delivered) return false;
  }
  return true;
}

bool RequestEntry::HasBlockedPins() const {
  for (const auto& [q, st] : queries) {
    if (st.pin_called && !st.delivered) return true;
  }
  return false;
}

RequestEntry* RequestTable::GetOrCreate(BatId bat, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(bat);
  if (inserted) {
    it->second.bat_id = bat;
    it->second.first_registered = now;
  }
  return &it->second;
}

RequestEntry* RequestTable::Find(BatId bat) {
  auto it = entries_.find(bat);
  return it == entries_.end() ? nullptr : &it->second;
}

const RequestEntry* RequestTable::Find(BatId bat) const {
  auto it = entries_.find(bat);
  return it == entries_.end() ? nullptr : &it->second;
}

bool RequestTable::Erase(BatId bat) { return entries_.erase(bat) > 0; }

void PinTable::Block(BatId bat, QueryId query) {
  waiting_[bat].push_back(query);
  ++total_;
}

std::vector<QueryId> PinTable::TakeBlocked(BatId bat) {
  auto it = waiting_.find(bat);
  if (it == waiting_.end()) return {};
  std::vector<QueryId> out = std::move(it->second);
  total_ -= out.size();
  waiting_.erase(it);
  return out;
}

bool PinTable::Unblock(BatId bat, QueryId query) {
  auto it = waiting_.find(bat);
  if (it == waiting_.end()) return false;
  auto& v = it->second;
  auto pos = std::find(v.begin(), v.end(), query);
  if (pos == v.end()) return false;
  v.erase(pos);
  --total_;
  if (v.empty()) waiting_.erase(it);
  return true;
}

bool PinTable::HasBlocked(BatId bat) const {
  auto it = waiting_.find(bat);
  return it != waiting_.end() && !it->second.empty();
}

size_t PinTable::blocked_count(BatId bat) const {
  auto it = waiting_.find(bat);
  return it == waiting_.end() ? 0 : it->second.size();
}

void BatCache::Insert(BatId bat, uint64_t size, uint32_t pins, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(bat);
  if (inserted) {
    it->second.size = size;
    cached_bytes_ += size;
  }
  it->second.pin_count += pins;
  it->second.inserted_at = now;
}

bool BatCache::AddPinIfPresent(BatId bat) {
  auto it = entries_.find(bat);
  if (it == entries_.end()) return false;
  ++it->second.pin_count;
  return true;
}

bool BatCache::ReleasePin(BatId bat) {
  auto it = entries_.find(bat);
  if (it == entries_.end()) return false;
  DCY_DCHECK(it->second.pin_count > 0);
  if (--it->second.pin_count == 0) {
    cached_bytes_ -= it->second.size;
    entries_.erase(it);
  }
  return true;
}

}  // namespace dcy::core
