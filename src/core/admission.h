// Per-node query admission control: the runtime bounds how many query
// sessions execute concurrently on one ring node, queuing the rest FIFO so a
// burst of submissions degrades to waiting instead of oversubscribing the
// shared executor (the communication-cost argument: keep the ring's
// bandwidth spent on data, not on thrashing control work).
#pragma once

#include <cstdint>

namespace dcy::core {

/// \brief Tunables of one node's admission queue.
struct AdmissionOptions {
  /// C: queries of this node executing at once. Submissions beyond C wait
  /// in a FIFO queue until a slot frees up.
  uint32_t max_concurrent = 4;
  /// Queue depth bound; a submission arriving with `max_queued` queries
  /// already waiting is rejected with ResourceExhausted (backpressure).
  uint32_t max_queued = 1024;
  /// Tighter queue bound that replaces `max_queued` while the ring is
  /// degraded (a node is down): shed load early instead of queueing work
  /// behind a ring that is busy recovering. Rejections under this bound
  /// return Unavailable (retryable) rather than ResourceExhausted.
  uint32_t degraded_max_queued = 64;
};

/// \brief Queue-depth metrics of one node's admission queue: monotonic
/// counters plus an occupancy snapshot. Cheap, always on.
struct AdmissionMetrics {
  uint64_t submitted = 0;         ///< Submit() calls accepted into the queue
  uint64_t admitted = 0;          ///< queries that started executing
  uint64_t completed = 0;         ///< queries that reached a terminal state
  uint64_t rejected = 0;          ///< submissions bounced off a full queue
  uint64_t shed_degraded = 0;     ///< submissions shed while the ring was degraded
  uint64_t cancelled_queued = 0;  ///< cancelled before execution started
  uint64_t timed_out_queued = 0;  ///< deadline expired while still queued
  uint32_t running = 0;           ///< snapshot: executing right now
  uint32_t queued = 0;            ///< snapshot: waiting in the FIFO
  uint32_t peak_running = 0;      ///< high-water mark of `running`
  uint32_t peak_queued = 0;       ///< high-water mark of `queued`
};

}  // namespace dcy::core
