// RDMA-flavoured intra-process transport: point-to-point channels between
// node threads with three transfer modes that reproduce the cost structure
// of the paper's Figure 1:
//   kZeroCopy   — direct data placement: the registered buffer is handed
//                 over by reference; no CPU touches the payload (RDMA).
//   kNicOffload — network stack on the NIC but one copy into application
//                 memory at the receiver.
//   kLegacy     — kernel TCP/IP path: copy out at the sender and copy in at
//                 the receiver, in MTU-sized segments, with a scheduler
//                 yield per segment standing in for context switches.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "rdma/fault.h"

namespace dcy::rdma {

/// Registered (pinned) memory region; payloads are immutable once posted.
using Buffer = std::shared_ptr<const std::string>;

inline Buffer MakeBuffer(std::string data) {
  return std::make_shared<const std::string>(std::move(data));
}

/// \brief Freelist of registered frames. Acquire hands out a mutable
/// std::string whose deleter returns the storage to the pool, so steady-state
/// ring traffic reuses grown frames instead of allocating per hop. The handle
/// converts implicitly to (const) Buffer once filled; the pool may be dropped
/// while frames are in flight (they then free normally). Thread-safe.
class BufferPool {
 public:
  /// `max_frames` bounds the freelist; surplus returns are freed.
  /// `max_frame_bytes` keeps burst-sized frames from pinning their capacity:
  /// a returning frame above the bound is freed instead of parked.
  explicit BufferPool(size_t max_frames = 16, size_t max_frame_bytes = 64u << 20)
      : state_(std::make_shared<State>(max_frames, max_frame_bytes)) {}

  /// A pooled frame, cleared, with at least `reserve` bytes of capacity.
  std::shared_ptr<std::string> Acquire(size_t reserve = 0);

  /// Frames currently parked in the freelist.
  size_t idle_frames() const;
  /// Total frames ever allocated fresh (reuse diagnostics).
  uint64_t allocations() const { return state_->allocations.load(std::memory_order_relaxed); }

 private:
  struct State {
    State(size_t m, size_t b) : max_frames(m), max_frame_bytes(b) {}
    std::mutex mu;
    std::vector<std::unique_ptr<std::string>> free;
    size_t max_frames;
    size_t max_frame_bytes;
    std::atomic<uint64_t> allocations{0};
  };

  std::shared_ptr<State> state_;
};

// CHECK-lite for the inline MetaBlob methods; keeps this header free of the
// logging dependency.
#define DCY_META_CHECK(cond) \
  do {                       \
    if (!(cond)) abort();    \
  } while (0)

/// \brief Fixed-capacity inline control header. BAT admin headers and ring
/// requests fit the paper's 64-byte wire budget (core::kBatHeaderWireBytes),
/// so per-message sends never touch the allocator.
class MetaBlob {
 public:
  static constexpr size_t kCapacity = 64;

  MetaBlob() = default;
  // Explicit: the 64-byte capacity is a hard contract (overflow aborts), so
  // conversions from unbounded strings must be visible at the call site.
  explicit MetaBlob(const void* data, size_t n) : len_(static_cast<uint8_t>(n)) {
    DCY_META_CHECK(n <= kCapacity);
    std::memcpy(bytes_.data(), data, n);
  }
  explicit MetaBlob(std::string_view s) : MetaBlob(s.data(), s.size()) {}

  /// Encodes a trivially copyable header struct.
  template <typename T>
  static MetaBlob Of(const T& v) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= kCapacity);
    return MetaBlob(&v, sizeof(T));
  }

  /// Decodes back into the header struct (size-checked).
  template <typename T>
  T As() const {
    static_assert(std::is_trivially_copyable_v<T>);
    DCY_META_CHECK(len_ >= sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data(), sizeof(T));
    return v;
  }

  const char* data() const { return bytes_.data(); }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::string_view view() const { return {bytes_.data(), len_}; }

  friend bool operator==(const MetaBlob& a, std::string_view b) { return a.view() == b; }

 private:
  std::array<char, kCapacity> bytes_{};
  uint8_t len_ = 0;
};
#undef DCY_META_CHECK

enum class TransferMode { kZeroCopy, kNicOffload, kLegacy };
const char* TransferModeName(TransferMode m);

/// \brief A message as delivered to the receiver.
struct Message {
  uint32_t opcode = 0;   ///< application-defined discriminator
  MetaBlob meta;         ///< small inline control header (always copied)
  Buffer payload;        ///< bulk data (zero-copy in kZeroCopy mode)
};

/// \brief In-order point-to-point channel (the ring uses one per direction
/// per neighbour pair; RDMA wants point-to-point connections, §2.3).
///
/// Thread-safe MPSC: several producers may Send, one consumer Receives.
class Channel {
 public:
  struct Options {
    TransferMode mode = TransferMode::kZeroCopy;
    /// Soft capacity in payload bytes; Send blocks while exceeded
    /// (credit-based flow control, as an RDMA fabric would).
    uint64_t capacity_bytes = 256 * 1024 * 1024;
    /// Segment size for the copying modes (per-segment costs).
    size_t segment_bytes = 64 * 1024;
  };

  struct Stats {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> payload_bytes{0};
    std::atomic<uint64_t> bytes_copied{0};  ///< CPU copy volume (Fig. 1)
    std::atomic<uint64_t> yields{0};        ///< simulated context switches
  };

  explicit Channel(Options options) : options_(options) {}

  /// Posts a message; blocks while the channel is over capacity. Returns
  /// false if the channel was closed.
  bool Send(uint32_t opcode, Buffer payload) {
    return Send(opcode, MetaBlob(), std::move(payload));
  }

  /// Posts a message with a small inline control header (e.g. the BAT's
  /// administrative header) ahead of the bulk payload. The header is copied
  /// by value — no allocation on the send path.
  bool Send(uint32_t opcode, const MetaBlob& meta, Buffer payload) {
    return Send(opcode, meta, std::move(payload), kAnyEndpoint);
  }

  /// Send with the sending endpoint identified for fault matching: the
  /// installed FaultInjector (if any) decides per frame whether to deliver,
  /// drop, delay, duplicate, or corrupt. A dropped frame still returns true
  /// — on a lossy fabric the sender cannot tell.
  bool Send(uint32_t opcode, const MetaBlob& meta, Buffer payload, uint32_t fault_src);

  /// Installs the shared fault injector and this channel's endpoint identity
  /// (destination id + logical channel class) for rule matching. Call before
  /// traffic starts; `injector` may be nullptr to disable. Not owned.
  void SetFaultInjector(FaultInjector* injector, uint32_t dst, uint32_t channel_class);

  /// Blocks until a message arrives or the channel closes (nullopt).
  std::optional<Message> Receive();

  /// Non-blocking variant.
  std::optional<Message> TryReceive();

  /// Drains the whole queued backlog into *out (appended, in order) under a
  /// single lock acquisition — one mutex round-trip per ring-hop burst
  /// instead of one per message. Returns the number of messages moved (0
  /// when the queue is empty).
  size_t TryReceiveAll(std::vector<Message>* out);

  /// Blocking drain: waits until at least one message is queued (or the
  /// channel closes — returns 0), then moves the entire backlog like
  /// TryReceiveAll.
  size_t ReceiveAll(std::vector<Message>* out);

  /// Wakes all blocked senders/receivers; subsequent Sends fail.
  void Close();

  /// Reverses Close() for node-restart scenarios: discards everything still
  /// queued (including delayed frames) and accepts traffic again.
  void Reopen();

  /// Bytes currently queued (the DC layer's BAT-queue-load reading).
  uint64_t queued_bytes() const { return queued_bytes_.load(std::memory_order_relaxed); }

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Receive-side frame pool used by the copying transfer modes (and
  /// available to senders that frame payloads per message).
  BufferPool& pool() { return pool_; }

 private:
  /// A frame held back by a kDelay fault until its release time.
  struct DelayedMessage {
    Message msg;
    uint64_t size = 0;
    std::chrono::steady_clock::time_point due;
  };

  /// Applies the transfer-mode cost model and returns the receiver-side
  /// payload (same buffer for zero-copy, a pooled copy otherwise).
  Buffer TransferPayload(const Buffer& payload);

  /// Enqueues one (or, for duplicates, two) copies of the message after the
  /// capacity wait; the unlocked tail of Send.
  bool EnqueueReady(Message msg, uint64_t size, int copies);

  /// Moves delayed frames whose release time passed into the live queue.
  /// Caller holds mu_.
  void FlushDelayedLocked(std::chrono::steady_clock::time_point now);

  /// Earliest release time among delayed frames. Caller holds mu_ and
  /// guarantees delayed_ is non-empty.
  std::chrono::steady_clock::time_point NextDueLocked() const;

  /// Wakes blocked senders after a dequeue freed capacity. notify_all by
  /// design: senders wait on per-message size predicates, so a single
  /// wakeup could strand peers whose payloads now fit. Elided entirely
  /// while still over capacity (no sender predicate can hold).
  void NotifySenders();

  /// Appends a swapped-out backlog to *out (outside the lock) and wakes all
  /// senders; returns the number of messages moved.
  size_t FinishDrain(std::deque<Message>* batch, std::vector<Message>* out);

  Options options_;
  Stats stats_;
  BufferPool pool_;
  FaultInjector* fault_ = nullptr;  ///< not owned; shared across channels
  uint32_t fault_dst_ = kAnyEndpoint;
  uint32_t fault_channel_ = kAnyEndpoint;
  mutable std::mutex mu_;
  std::condition_variable can_send_;
  std::condition_variable can_recv_;
  std::deque<Message> queue_;
  std::vector<DelayedMessage> delayed_;  ///< guarded by mu_
  std::atomic<uint64_t> queued_bytes_{0};
  bool closed_ = false;
};

}  // namespace dcy::rdma
