// RDMA-flavoured intra-process transport: point-to-point channels between
// node threads with three transfer modes that reproduce the cost structure
// of the paper's Figure 1:
//   kZeroCopy   — direct data placement: the registered buffer is handed
//                 over by reference; no CPU touches the payload (RDMA).
//   kNicOffload — network stack on the NIC but one copy into application
//                 memory at the receiver.
//   kLegacy     — kernel TCP/IP path: copy out at the sender and copy in at
//                 the receiver, in MTU-sized segments, with a scheduler
//                 yield per segment standing in for context switches.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace dcy::rdma {

/// Registered (pinned) memory region; payloads are immutable once posted.
using Buffer = std::shared_ptr<const std::string>;

inline Buffer MakeBuffer(std::string data) {
  return std::make_shared<const std::string>(std::move(data));
}

enum class TransferMode { kZeroCopy, kNicOffload, kLegacy };
const char* TransferModeName(TransferMode m);

/// \brief A message as delivered to the receiver.
struct Message {
  uint32_t opcode = 0;   ///< application-defined discriminator
  std::string meta;      ///< small control header (always copied)
  Buffer payload;        ///< bulk data (zero-copy in kZeroCopy mode)
};

/// \brief In-order point-to-point channel (the ring uses one per direction
/// per neighbour pair; RDMA wants point-to-point connections, §2.3).
///
/// Thread-safe MPSC: several producers may Send, one consumer Receives.
class Channel {
 public:
  struct Options {
    TransferMode mode = TransferMode::kZeroCopy;
    /// Soft capacity in payload bytes; Send blocks while exceeded
    /// (credit-based flow control, as an RDMA fabric would).
    uint64_t capacity_bytes = 256 * 1024 * 1024;
    /// Segment size for the copying modes (per-segment costs).
    size_t segment_bytes = 64 * 1024;
  };

  struct Stats {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> payload_bytes{0};
    std::atomic<uint64_t> bytes_copied{0};  ///< CPU copy volume (Fig. 1)
    std::atomic<uint64_t> yields{0};        ///< simulated context switches
  };

  explicit Channel(Options options) : options_(options) {}

  /// Posts a message; blocks while the channel is over capacity. Returns
  /// false if the channel was closed.
  bool Send(uint32_t opcode, Buffer payload) { return Send(opcode, "", std::move(payload)); }

  /// Posts a message with a small control header (e.g. the BAT's
  /// administrative header) ahead of the bulk payload.
  bool Send(uint32_t opcode, std::string meta, Buffer payload);

  /// Blocks until a message arrives or the channel closes (nullopt).
  std::optional<Message> Receive();

  /// Non-blocking variant.
  std::optional<Message> TryReceive();

  /// Wakes all blocked senders/receivers; subsequent Sends fail.
  void Close();

  /// Bytes currently queued (the DC layer's BAT-queue-load reading).
  uint64_t queued_bytes() const { return queued_bytes_.load(std::memory_order_relaxed); }

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  /// Applies the transfer-mode cost model and returns the receiver-side
  /// payload (same buffer for zero-copy, a fresh copy otherwise).
  Buffer TransferPayload(const Buffer& payload);

  Options options_;
  Stats stats_;
  mutable std::mutex mu_;
  std::condition_variable can_send_;
  std::condition_variable can_recv_;
  std::deque<Message> queue_;
  std::atomic<uint64_t> queued_bytes_{0};
  bool closed_ = false;
};

}  // namespace dcy::rdma
