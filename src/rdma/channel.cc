#include "rdma/channel.h"

#include <cstring>
#include <thread>

namespace dcy::rdma {

const char* TransferModeName(TransferMode m) {
  switch (m) {
    case TransferMode::kZeroCopy: return "rdma-zero-copy";
    case TransferMode::kNicOffload: return "nic-offload";
    case TransferMode::kLegacy: return "legacy-tcp";
  }
  return "?";
}

std::shared_ptr<std::string> BufferPool::Acquire(size_t reserve) {
  std::unique_ptr<std::string> frame;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->free.empty()) {
      frame = std::move(state_->free.back());
      state_->free.pop_back();
    }
  }
  if (frame == nullptr) {
    frame = std::make_unique<std::string>();
    state_->allocations.fetch_add(1, std::memory_order_relaxed);
  }
  frame->clear();
  if (reserve > 0) frame->reserve(reserve);
  // The deleter parks the frame back in the freelist; if the pool died while
  // the frame was in flight, it simply frees.
  std::weak_ptr<State> weak_state = state_;
  std::string* raw = frame.release();
  return std::shared_ptr<std::string>(raw, [weak_state](std::string* s) {
    if (auto state = weak_state.lock()) {
      // Park unless the freelist is full or the frame ballooned past the
      // byte bound (burst payloads should not pin their capacity).
      if (s->capacity() <= state->max_frame_bytes) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->free.size() < state->max_frames) {
          state->free.emplace_back(s);
          return;
        }
      }
    }
    delete s;
  });
}

size_t BufferPool::idle_frames() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->free.size();
}

Buffer Channel::TransferPayload(const Buffer& payload) {
  if (payload == nullptr || options_.mode == TransferMode::kZeroCopy) {
    // Direct data placement: the RNIC wrote straight into the registered
    // region; neither host CPU touches the bytes (§2.2).
    return payload;
  }
  const size_t n = payload->size();
  const size_t seg = options_.segment_bytes;
  // Application receive buffer comes from the channel's frame pool, so
  // steady-state traffic stops allocating once frames reach working size.
  std::shared_ptr<std::string> received = pool_.Acquire(n);
  received->resize(n);
  if (options_.mode == TransferMode::kLegacy) {
    // Sender-side copy into "socket buffers", segment by segment, with a
    // context switch per segment. The socket buffer is thread-local scratch,
    // reused across sends.
    thread_local std::string wire;
    wire.resize(n);
    for (size_t off = 0; off < n; off += seg) {
      const size_t len = std::min(seg, n - off);
      std::memcpy(wire.data() + off, payload->data() + off, len);
      stats_.bytes_copied.fetch_add(len, std::memory_order_relaxed);
      stats_.yields.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    // Receiver-side copy from the socket buffer into application memory.
    for (size_t off = 0; off < n; off += seg) {
      const size_t len = std::min(seg, n - off);
      std::memcpy(received->data() + off, wire.data() + off, len);
      stats_.bytes_copied.fetch_add(len, std::memory_order_relaxed);
    }
    // Don't let one burst payload pin its capacity for the thread lifetime.
    if (wire.capacity() > (4u << 20)) {
      wire.clear();
      wire.shrink_to_fit();
    }
  } else {  // kNicOffload: the NIC handles the stack; one copy remains.
    for (size_t off = 0; off < n; off += seg) {
      const size_t len = std::min(seg, n - off);
      std::memcpy(received->data() + off, payload->data() + off, len);
      stats_.bytes_copied.fetch_add(len, std::memory_order_relaxed);
    }
  }
  return received;
}

bool Channel::Send(uint32_t opcode, const MetaBlob& meta, Buffer payload) {
  const uint64_t size = payload != nullptr ? payload->size() : 0;
  Buffer delivered = TransferPayload(payload);
  {
    std::unique_lock<std::mutex> lock(mu_);
    can_send_.wait(lock, [&] {
      return closed_ || queued_bytes_.load(std::memory_order_relaxed) + size <=
                            options_.capacity_bytes || queue_.empty();
    });
    if (closed_) return false;
    queue_.push_back(Message{opcode, meta, std::move(delivered)});
    queued_bytes_.fetch_add(size, std::memory_order_relaxed);
  }
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  stats_.payload_bytes.fetch_add(size, std::memory_order_relaxed);
  can_recv_.notify_one();
  return true;
}

std::optional<Message> Channel::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  can_recv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message m = std::move(queue_.front());
  queue_.pop_front();
  const uint64_t size = m.payload != nullptr ? m.payload->size() : 0;
  queued_bytes_.fetch_sub(size, std::memory_order_relaxed);
  lock.unlock();
  NotifySenders();
  return m;
}

std::optional<Message> Channel::TryReceive() {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  const uint64_t size = m.payload != nullptr ? m.payload->size() : 0;
  queued_bytes_.fetch_sub(size, std::memory_order_relaxed);
  lock.unlock();
  NotifySenders();
  return m;
}

void Channel::NotifySenders() {
  // notify_one would be wrong here: senders wait on per-message predicates
  // (their own payload size against the remaining capacity), so one dequeue
  // can unblock several small senders at once and a single wakeup would
  // strand the rest until the next dequeue. What we *can* elide is the
  // whole notification while the channel is still over capacity — no
  // sender's predicate can hold, so waking them is pure stampede. A stale
  // read here only ever errs toward a harmless extra notify_all.
  if (queued_bytes_.load(std::memory_order_relaxed) <= options_.capacity_bytes) {
    can_send_.notify_all();
  }
}

size_t Channel::FinishDrain(std::deque<Message>* batch, std::vector<Message>* out) {
  // The whole backlog is gone: arbitrary capacity freed, so every blocked
  // sender may proceed; the message moves happen outside the lock.
  if (batch->empty()) return 0;
  can_send_.notify_all();
  out->reserve(out->size() + batch->size());
  for (Message& m : *batch) out->push_back(std::move(m));
  return batch->size();
}

size_t Channel::TryReceiveAll(std::vector<Message>* out) {
  std::deque<Message> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(queue_);
    // All byte mutations happen under mu_, so zeroing here is exact.
    queued_bytes_.store(0, std::memory_order_relaxed);
  }
  return FinishDrain(&batch, out);
}

size_t Channel::ReceiveAll(std::vector<Message>* out) {
  std::deque<Message> batch;
  {
    // Swap under the wait's own lock: no window for another consumer to
    // empty the queue between wakeup and drain, so 0 really means closed.
    std::unique_lock<std::mutex> lock(mu_);
    can_recv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    batch.swap(queue_);
    queued_bytes_.store(0, std::memory_order_relaxed);
  }
  return FinishDrain(&batch, out);
}

void Channel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  can_send_.notify_all();
  can_recv_.notify_all();
}

}  // namespace dcy::rdma
