#include "rdma/channel.h"

#include <cstring>
#include <thread>

namespace dcy::rdma {

const char* TransferModeName(TransferMode m) {
  switch (m) {
    case TransferMode::kZeroCopy: return "rdma-zero-copy";
    case TransferMode::kNicOffload: return "nic-offload";
    case TransferMode::kLegacy: return "legacy-tcp";
  }
  return "?";
}

std::shared_ptr<std::string> BufferPool::Acquire(size_t reserve) {
  std::unique_ptr<std::string> frame;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->free.empty()) {
      frame = std::move(state_->free.back());
      state_->free.pop_back();
    }
  }
  if (frame == nullptr) {
    frame = std::make_unique<std::string>();
    state_->allocations.fetch_add(1, std::memory_order_relaxed);
  }
  frame->clear();
  if (reserve > 0) frame->reserve(reserve);
  // The deleter parks the frame back in the freelist; if the pool died while
  // the frame was in flight, it simply frees.
  std::weak_ptr<State> weak_state = state_;
  std::string* raw = frame.release();
  return std::shared_ptr<std::string>(raw, [weak_state](std::string* s) {
    if (auto state = weak_state.lock()) {
      // Park unless the freelist is full or the frame ballooned past the
      // byte bound (burst payloads should not pin their capacity).
      if (s->capacity() <= state->max_frame_bytes) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->free.size() < state->max_frames) {
          state->free.emplace_back(s);
          return;
        }
      }
    }
    delete s;
  });
}

size_t BufferPool::idle_frames() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->free.size();
}

Buffer Channel::TransferPayload(const Buffer& payload) {
  if (payload == nullptr || options_.mode == TransferMode::kZeroCopy) {
    // Direct data placement: the RNIC wrote straight into the registered
    // region; neither host CPU touches the bytes (§2.2).
    return payload;
  }
  const size_t n = payload->size();
  const size_t seg = options_.segment_bytes;
  // Application receive buffer comes from the channel's frame pool, so
  // steady-state traffic stops allocating once frames reach working size.
  std::shared_ptr<std::string> received = pool_.Acquire(n);
  received->resize(n);
  if (options_.mode == TransferMode::kLegacy) {
    // Sender-side copy into "socket buffers", segment by segment, with a
    // context switch per segment. The socket buffer is thread-local scratch,
    // reused across sends.
    thread_local std::string wire;
    wire.resize(n);
    for (size_t off = 0; off < n; off += seg) {
      const size_t len = std::min(seg, n - off);
      std::memcpy(wire.data() + off, payload->data() + off, len);
      stats_.bytes_copied.fetch_add(len, std::memory_order_relaxed);
      stats_.yields.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    // Receiver-side copy from the socket buffer into application memory.
    for (size_t off = 0; off < n; off += seg) {
      const size_t len = std::min(seg, n - off);
      std::memcpy(received->data() + off, wire.data() + off, len);
      stats_.bytes_copied.fetch_add(len, std::memory_order_relaxed);
    }
    // Don't let one burst payload pin its capacity for the thread lifetime.
    if (wire.capacity() > (4u << 20)) {
      wire.clear();
      wire.shrink_to_fit();
    }
  } else {  // kNicOffload: the NIC handles the stack; one copy remains.
    for (size_t off = 0; off < n; off += seg) {
      const size_t len = std::min(seg, n - off);
      std::memcpy(received->data() + off, payload->data() + off, len);
      stats_.bytes_copied.fetch_add(len, std::memory_order_relaxed);
    }
  }
  return received;
}

void Channel::SetFaultInjector(FaultInjector* injector, uint32_t dst,
                               uint32_t channel_class) {
  fault_ = injector;
  fault_dst_ = dst;
  fault_channel_ = channel_class;
}

namespace {

/// Flips one deterministic bit of the payload (private copy; the original
/// buffer may be shared zero-copy with other hops) — or of the inline meta
/// header when there is no payload to damage.
void CorruptFrame(MetaBlob* meta, Buffer* payload, uint64_t seed) {
  if (*payload != nullptr && !(*payload)->empty()) {
    auto damaged = std::make_shared<std::string>(**payload);
    const uint64_t bit = seed % (damaged->size() * 8);
    (*damaged)[bit / 8] = static_cast<char>((*damaged)[bit / 8] ^ (1u << (bit % 8)));
    *payload = std::move(damaged);
    return;
  }
  if (meta->empty()) return;
  std::array<char, MetaBlob::kCapacity> bytes{};
  std::memcpy(bytes.data(), meta->data(), meta->size());
  const uint64_t bit = seed % (meta->size() * 8);
  bytes[bit / 8] = static_cast<char>(bytes[bit / 8] ^ (1u << (bit % 8)));
  *meta = MetaBlob(bytes.data(), meta->size());
}

}  // namespace

bool Channel::Send(uint32_t opcode, const MetaBlob& meta, Buffer payload,
                   uint32_t fault_src) {
  MetaBlob framed = meta;
  int copies = 1;
  SimTime delay = 0;
  if (fault_ != nullptr) {
    const FaultDecision d = fault_->Decide(fault_src, fault_dst_, fault_channel_);
    if (d.drop) return true;  // swallowed by the "network"; sender can't tell
    if (d.corrupt) CorruptFrame(&framed, &payload, d.corrupt_seed);
    if (d.duplicate) copies = 2;
    delay = d.delay;
  }

  const uint64_t size = payload != nullptr ? payload->size() : 0;
  Buffer delivered = TransferPayload(payload);

  if (delay > 0) {
    // Delayed frames sit outside the live queue (they are "on the wire"):
    // they bypass the capacity wait and do not count into queued_bytes until
    // released, mirroring latency rather than buffer occupancy.
    const auto due = std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      for (int i = 0; i < copies; ++i) {
        delayed_.push_back(DelayedMessage{Message{opcode, framed, delivered}, size, due});
      }
    }
    stats_.messages.fetch_add(static_cast<uint64_t>(copies), std::memory_order_relaxed);
    stats_.payload_bytes.fetch_add(size * static_cast<uint64_t>(copies),
                                   std::memory_order_relaxed);
    can_recv_.notify_one();  // a blocked receiver re-arms its timed wait
    return true;
  }
  return EnqueueReady(Message{opcode, framed, std::move(delivered)}, size, copies);
}

bool Channel::EnqueueReady(Message msg, uint64_t size, int copies) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    can_send_.wait(lock, [&] {
      return closed_ || queued_bytes_.load(std::memory_order_relaxed) + size <=
                            options_.capacity_bytes || queue_.empty();
    });
    if (closed_) return false;
    for (int i = 1; i < copies; ++i) queue_.push_back(msg);
    queue_.push_back(std::move(msg));
    queued_bytes_.fetch_add(size * static_cast<uint64_t>(copies),
                            std::memory_order_relaxed);
  }
  stats_.messages.fetch_add(static_cast<uint64_t>(copies), std::memory_order_relaxed);
  stats_.payload_bytes.fetch_add(size * static_cast<uint64_t>(copies),
                                 std::memory_order_relaxed);
  can_recv_.notify_one();
  return true;
}

void Channel::FlushDelayedLocked(std::chrono::steady_clock::time_point now) {
  if (delayed_.empty()) return;
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->due <= now) {
      queued_bytes_.fetch_add(it->size, std::memory_order_relaxed);
      queue_.push_back(std::move(it->msg));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

std::chrono::steady_clock::time_point Channel::NextDueLocked() const {
  auto due = delayed_.front().due;
  for (const DelayedMessage& d : delayed_) due = std::min(due, d.due);
  return due;
}

std::optional<Message> Channel::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    FlushDelayedLocked(std::chrono::steady_clock::now());
    if (closed_ || !queue_.empty()) break;
    if (!delayed_.empty()) {
      can_recv_.wait_until(lock, NextDueLocked());
    } else {
      can_recv_.wait(lock,
                     [&] { return closed_ || !queue_.empty() || !delayed_.empty(); });
    }
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message m = std::move(queue_.front());
  queue_.pop_front();
  const uint64_t size = m.payload != nullptr ? m.payload->size() : 0;
  queued_bytes_.fetch_sub(size, std::memory_order_relaxed);
  lock.unlock();
  NotifySenders();
  return m;
}

std::optional<Message> Channel::TryReceive() {
  std::unique_lock<std::mutex> lock(mu_);
  FlushDelayedLocked(std::chrono::steady_clock::now());
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  const uint64_t size = m.payload != nullptr ? m.payload->size() : 0;
  queued_bytes_.fetch_sub(size, std::memory_order_relaxed);
  lock.unlock();
  NotifySenders();
  return m;
}

void Channel::NotifySenders() {
  // notify_one would be wrong here: senders wait on per-message predicates
  // (their own payload size against the remaining capacity), so one dequeue
  // can unblock several small senders at once and a single wakeup would
  // strand the rest until the next dequeue. What we *can* elide is the
  // whole notification while the channel is still over capacity — no
  // sender's predicate can hold, so waking them is pure stampede. A stale
  // read here only ever errs toward a harmless extra notify_all.
  if (queued_bytes_.load(std::memory_order_relaxed) <= options_.capacity_bytes) {
    can_send_.notify_all();
  }
}

size_t Channel::FinishDrain(std::deque<Message>* batch, std::vector<Message>* out) {
  // The whole backlog is gone: arbitrary capacity freed, so every blocked
  // sender may proceed; the message moves happen outside the lock.
  if (batch->empty()) return 0;
  can_send_.notify_all();
  out->reserve(out->size() + batch->size());
  for (Message& m : *batch) out->push_back(std::move(m));
  return batch->size();
}

size_t Channel::TryReceiveAll(std::vector<Message>* out) {
  std::deque<Message> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlushDelayedLocked(std::chrono::steady_clock::now());
    batch.swap(queue_);
    // All byte mutations happen under mu_, so zeroing here is exact.
    queued_bytes_.store(0, std::memory_order_relaxed);
  }
  return FinishDrain(&batch, out);
}

size_t Channel::ReceiveAll(std::vector<Message>* out) {
  std::deque<Message> batch;
  {
    // Swap under the wait's own lock: no window for another consumer to
    // empty the queue between wakeup and drain, so 0 really means closed.
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      FlushDelayedLocked(std::chrono::steady_clock::now());
      if (closed_ || !queue_.empty()) break;
      if (!delayed_.empty()) {
        can_recv_.wait_until(lock, NextDueLocked());
      } else {
        can_recv_.wait(lock,
                       [&] { return closed_ || !queue_.empty() || !delayed_.empty(); });
      }
    }
    batch.swap(queue_);
    queued_bytes_.store(0, std::memory_order_relaxed);
  }
  return FinishDrain(&batch, out);
}

void Channel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    delayed_.clear();  // frames in flight die with the link
  }
  can_send_.notify_all();
  can_recv_.notify_all();
}

void Channel::Reopen() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    queue_.clear();
    delayed_.clear();
    queued_bytes_.store(0, std::memory_order_relaxed);
  }
  can_send_.notify_all();
}

}  // namespace dcy::rdma
