// Deterministic fault injection for the RDMA-emulating transport.
//
// A FaultInjector holds a scripted schedule of FaultRules and is consulted by
// rdma::Channel on every Send. Each rule matches a directed link — (source
// endpoint, destination endpoint, logical channel) with wildcards — over a
// half-open window of that link's frame indices, and fires a fault action
// with a given probability, at most `max_count` times:
//
//   kDrop       the frame vanishes (Send still reports success, as a lossy
//               fabric would)
//   kDelay      delivery is deferred by `delay` (reordering across frames)
//   kDuplicate  the frame is delivered twice
//   kCorrupt    a pseudo-random bit of the payload (or of the inline meta
//               header for payload-less frames) is flipped in a private copy
//
// Determinism: every decision is drawn from a per-link RNG stream seeded as
// SplitMix64(seed ^ link key), indexed by the link's own frame counter. A
// link has a single sender thread in the ring runtime, so the frame order —
// and therefore the whole fault schedule — is reproducible for a fixed seed
// and rule list. Add all rules before traffic starts; AddRule during traffic
// is thread-safe but shifts the RNG consumption of in-flight links.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace dcy::rdma {

/// Wildcard endpoint / channel id in a FaultLink.
constexpr uint32_t kAnyEndpoint = 0xFFFFFFFFu;

/// Logical channel classes of the ring runtime (FaultLink::channel values).
constexpr uint32_t kFaultChannelData = 0;     ///< clockwise BAT frames
constexpr uint32_t kFaultChannelRequest = 1;  ///< anti-clockwise requests
constexpr uint32_t kFaultChannelCtrl = 2;     ///< ACK/NACK/heartbeat traffic

/// \brief A directed hop: frames from `src` into `dst`'s `channel` queue.
/// kAnyEndpoint / kAnyEndpoint / kAnyEndpoint matches everything.
struct FaultLink {
  uint32_t src = kAnyEndpoint;
  uint32_t dst = kAnyEndpoint;
  uint32_t channel = kAnyEndpoint;
};

enum class FaultType { kDrop, kDelay, kDuplicate, kCorrupt };

const char* FaultTypeName(FaultType t);

/// \brief One scripted fault: where, what, how often, and for how long.
struct FaultRule {
  FaultLink link;
  FaultType type = FaultType::kDrop;
  /// Probability per matching frame, drawn from the link's seeded stream.
  double probability = 1.0;
  /// Half-open window [from_frame, to_frame) on the link's frame index;
  /// the defaults cover the link's whole lifetime.
  uint64_t from_frame = 0;
  uint64_t to_frame = UINT64_MAX;
  /// Total firing budget of this rule across all links it matches.
  uint64_t max_count = UINT64_MAX;
  /// Added latency for kDelay rules.
  SimTime delay = FromMillis(1);
};

/// \brief The combined verdict for one frame (multiple rules can stack;
/// drop dominates).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  SimTime delay = 0;
  /// Seed for the corrupting bit flip (which bit, drawn deterministically).
  uint64_t corrupt_seed = 0;

  bool clean() const { return !drop && !duplicate && !corrupt && delay == 0; }
};

/// \brief Seeded, scripted fault schedule; shared by every channel of a
/// cluster. Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xDCC1C107u) : seed_(seed) {}

  void AddRule(const FaultRule& rule);
  /// Drops all rules (per-link frame counters and RNG streams persist).
  void ClearRules();

  // Convenience rule builders for the common schedules.
  static FaultRule Drop(FaultLink link, double probability);
  static FaultRule Delay(FaultLink link, double probability, SimTime delay);
  static FaultRule Duplicate(FaultLink link, double probability);
  static FaultRule Corrupt(FaultLink link, double probability);
  /// Total blackout of a link over a frame-index window (a partition).
  static FaultRule Partition(FaultLink link, uint64_t from_frame, uint64_t to_frame);

  /// The verdict for the next frame on (src -> dst, channel). Called by
  /// Channel::Send; advances the link's frame counter.
  FaultDecision Decide(uint32_t src, uint32_t dst, uint32_t channel);

  /// Frames on the link so far (diagnostics; the index Decide consumed next).
  uint64_t FramesSeen(uint32_t src, uint32_t dst, uint32_t channel) const;

  struct Counters {
    std::atomic<uint64_t> frames_seen{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> delayed{0};
    std::atomic<uint64_t> duplicated{0};
    std::atomic<uint64_t> corrupted{0};
  };
  const Counters& counters() const { return counters_; }

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t fired = 0;
  };
  struct LinkState {
    explicit LinkState(uint64_t seed) : rng(seed) {}
    uint64_t frame_index = 0;
    Rng rng;
  };

  static uint64_t LinkKey(uint32_t src, uint32_t dst, uint32_t channel);
  static bool Matches(const FaultLink& pattern, uint32_t src, uint32_t dst,
                      uint32_t channel);

  uint64_t seed_;
  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
  std::unordered_map<uint64_t, LinkState> links_;
  Counters counters_;
};

}  // namespace dcy::rdma
