#include "rdma/fault.h"

namespace dcy::rdma {

const char* FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kDrop: return "drop";
    case FaultType::kDelay: return "delay";
    case FaultType::kDuplicate: return "duplicate";
    case FaultType::kCorrupt: return "corrupt";
  }
  return "?";
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(RuleState{rule, 0});
}

void FaultInjector::ClearRules() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

FaultRule FaultInjector::Drop(FaultLink link, double probability) {
  FaultRule r;
  r.link = link;
  r.type = FaultType::kDrop;
  r.probability = probability;
  return r;
}

FaultRule FaultInjector::Delay(FaultLink link, double probability, SimTime delay) {
  FaultRule r;
  r.link = link;
  r.type = FaultType::kDelay;
  r.probability = probability;
  r.delay = delay;
  return r;
}

FaultRule FaultInjector::Duplicate(FaultLink link, double probability) {
  FaultRule r;
  r.link = link;
  r.type = FaultType::kDuplicate;
  r.probability = probability;
  return r;
}

FaultRule FaultInjector::Corrupt(FaultLink link, double probability) {
  FaultRule r;
  r.link = link;
  r.type = FaultType::kCorrupt;
  r.probability = probability;
  return r;
}

FaultRule FaultInjector::Partition(FaultLink link, uint64_t from_frame,
                                   uint64_t to_frame) {
  FaultRule r;
  r.link = link;
  r.type = FaultType::kDrop;
  r.probability = 1.0;
  r.from_frame = from_frame;
  r.to_frame = to_frame;
  return r;
}

uint64_t FaultInjector::LinkKey(uint32_t src, uint32_t dst, uint32_t channel) {
  // 24 bits each of src/dst plus the channel class: collision-free for any
  // realistic ring size.
  return (static_cast<uint64_t>(src & 0xFFFFFFu) << 40) |
         (static_cast<uint64_t>(dst & 0xFFFFFFu) << 16) |
         static_cast<uint64_t>(channel & 0xFFFFu);
}

bool FaultInjector::Matches(const FaultLink& pattern, uint32_t src, uint32_t dst,
                            uint32_t channel) {
  return (pattern.src == kAnyEndpoint || pattern.src == src) &&
         (pattern.dst == kAnyEndpoint || pattern.dst == dst) &&
         (pattern.channel == kAnyEndpoint || pattern.channel == channel);
}

FaultDecision FaultInjector::Decide(uint32_t src, uint32_t dst, uint32_t channel) {
  FaultDecision d;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = LinkKey(src, dst, channel);
  auto [it, inserted] = links_.try_emplace(key, SplitMix64(seed_ ^ key).Next());
  LinkState& link = it->second;
  const uint64_t index = link.frame_index++;
  counters_.frames_seen.fetch_add(1, std::memory_order_relaxed);

  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (!Matches(r.link, src, dst, channel)) continue;
    if (index < r.from_frame || index >= r.to_frame) continue;
    if (rs.fired >= r.max_count) continue;
    // One Bernoulli draw per matching rule, always consumed, so the stream
    // position depends only on the rule list and the frame index.
    if (!link.rng.Bernoulli(r.probability)) continue;
    ++rs.fired;
    switch (r.type) {
      case FaultType::kDrop:
        d.drop = true;
        counters_.dropped.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultType::kDelay:
        d.delay = std::max<SimTime>(d.delay, r.delay);
        counters_.delayed.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultType::kDuplicate:
        d.duplicate = true;
        counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
        break;
      case FaultType::kCorrupt:
        d.corrupt = true;
        d.corrupt_seed = link.rng.Next();
        counters_.corrupted.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  return d;
}

uint64_t FaultInjector::FramesSeen(uint32_t src, uint32_t dst, uint32_t channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(LinkKey(src, dst, channel));
  return it == links_.end() ? 0 : it->second.frame_index;
}

}  // namespace dcy::rdma
