// Vectorized kernels for the BAT algebra hot path: selection vectors, raw
// gather loops, int64 key extraction, and a flat open-addressing hash table
// (MonetDB hash-heap style). Operators in bat/operators.cc compose these
// instead of walking rows through virtual GetValue/AppendValue boxing; the
// retained row-at-a-time implementations in bat/scalar_reference.h are the
// differential-test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "bat/column.h"
#include "exec/executor.h"

namespace dcy::bat {

/// Row-position selection vector produced by the filter kernels. uint32
/// positions keep it cache-resident; BAT fragments are far below 4G rows.
using SelVec = std::vector<uint32_t>;

namespace kernels {

// ---- morsel-driven parallelism ----------------------------------------------
//
// The adaptive kernels below (gather, selection, key extraction) partition
// inputs at or above ExecPolicy::min_parallel_rows into morsel_rows-sized
// spans executed on exec::Executor::Default(), stitching per-morsel results
// in morsel order so the output is bit-identical to the sequential pass.
// Smaller inputs run the sequential loops unchanged — zero overhead for the
// point queries that dominate ring traffic. Operators (bat/operators.cc)
// drive their own morsel loops (hash-join probe, partial aggregation) with
// PlanMorsels / ForEachMorsel / StitchSelVecs.

/// \brief Partitioning decision for one adaptive kernel invocation under the
/// process ExecPolicy.
struct MorselPlan {
  bool parallel = false;  ///< false: take the sequential path
  size_t workers = 1;     ///< participant cap for ParallelFor
  size_t grain = 1;       ///< rows per morsel
  size_t morsels = 1;
};

/// Sequential when n < min_parallel_rows or only one worker would join.
MorselPlan PlanMorsels(size_t n);

/// Runs fn(morsel, begin, end) for every morsel of `plan` over [0, n) on the
/// shared executor; the calling thread participates, so a saturated pool
/// degrades to sequential execution instead of deadlocking.
void ForEachMorsel(const MorselPlan& plan, size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn);

// ---- gather -----------------------------------------------------------------

/// out[i] = c[idx[i]] via type-specialized tight loops. A dense oid source
/// gathered with a contiguous index run collapses back to a dense column
/// (slices stay materialization-free). Large gathers run morsel-parallel;
/// strings take a two-pass build (parallel size prefix-sum, then parallel
/// splice into a preallocated heap) whose bytes are identical to the
/// sequential heap append.
ColumnPtr Gather(const Column& c, const uint32_t* idx, size_t n);

/// True if idx is a contiguous ascending run (idx[i] == idx[0] + i).
bool IsContiguous(const uint32_t* idx, size_t n);

// ---- selection --------------------------------------------------------------

/// Appends to *sel the positions with lo <= c[i] <= hi, reproducing the
/// scalar ValueLE semantics exactly (string bounds compare lexicographically;
/// a double column or double bound compares in the double domain; integer
/// families compare as int64). Returns the number of positions appended.
/// Adaptive: large materialized columns are filtered morsel-parallel.
size_t SelectRange(const Column& c, const Value& lo, const Value& hi, SelVec* sel);

/// Appends to *sel the positions with c[i] == v (scalar ValueEQ semantics).
/// Adaptive like SelectRange.
size_t SelectEq(const Column& c, const Value& v, SelVec* sel);

/// Stitches per-morsel selection vectors into *sel in morsel order (the
/// order-preserving merge every parallel filter/probe uses); parallelizes
/// the copy itself for large results. Returns rows appended.
size_t StitchSelVecs(const std::vector<SelVec>& parts, SelVec* sel);

// ---- join keys --------------------------------------------------------------

/// Materializes the canonical int64 hash/equality key of every row: integer
/// families widen, doubles bit-cast (equality-by-bit-pattern, matching the
/// scalar hash join), dense ranges iota. Strings are not representable here;
/// callers dispatch them to the string paths. Adaptive: large extractions
/// split into parallel morsels (output is positionally deterministic).
void ExtractInt64Keys(const Column& c, std::vector<int64_t>* keys);

/// Materializes doubles (order-preserving, for merge join on dbl columns).
/// Adaptive like ExtractInt64Keys.
void ExtractDoubleKeys(const Column& c, std::vector<double>* keys);

/// Borrowed int64 key view of `c` for hash builds and probes: 8-byte
/// integer columns (lng, oid) alias their payload directly — no key vector
/// materialization — and everything else extracts into *scratch with
/// ExtractInt64Keys semantics (widening, dbl bit-cast, dense iota). The
/// view is valid while both `c` and *scratch are alive.
Span<int64_t> Int64KeySpan(const Column& c, std::vector<int64_t>* scratch);

// ---- flat hash table --------------------------------------------------------

/// Shared hash of the flat/partitioned tables. Partitioning consumes the
/// high bits and open-addressing slots the low bits, so one partition's
/// keys do not cluster in its bucket array.
inline uint64_t HashInt64Key(int64_t key) {
  const uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
  return h ^ (h >> 32);
}

/// \brief Flat multimap from int64 key to the rows holding it, with two
/// layouts picked at build time:
///  - direct addressing when the key range is small relative to the row
///    count (the common FK-join shape): one array load per probe;
///  - open addressing (linear probe, power-of-two capacity, <= 50% load)
///    with keys stored inline in the bucket array, so a probe touches one
///    cache line instead of chasing into the key column.
/// Buckets store the first row of a key; duplicates chain through next_ in
/// ascending row order, so probing emits matches in the same order as the
/// scalar reference join.
class FlatTable {
 public:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  /// Empty table: every Find misses. Placeholder until a real build is
  /// move-assigned in (PartitionedTable's partition slots).
  FlatTable() = default;

  /// Builds over keys[0, n) (borrowed for the build only).
  FlatTable(const int64_t* keys, size_t n);
  explicit FlatTable(const std::vector<int64_t>& keys)
      : FlatTable(keys.data(), keys.size()) {}
  explicit FlatTable(Span<int64_t> keys) : FlatTable(keys.data, keys.size) {}

  /// First row whose key equals `key`, or kNone.
  uint32_t Find(int64_t key) const {
    if (direct_) {
      // Unsigned wrap maps key < min to a huge offset: one bounds check.
      const uint64_t off = static_cast<uint64_t>(key) - static_cast<uint64_t>(min_);
      return off < bucket_rows_.size() ? bucket_rows_[off] : kNone;
    }
    uint64_t slot = Hash(key) & mask_;
    while (true) {
      const uint32_t row = bucket_rows_[slot];
      if (row == kNone) return kNone;
      if (bucket_keys_[slot] == key) return row;
      slot = (slot + 1) & mask_;
    }
  }

  /// Next row with the same key after `row`, or kNone.
  uint32_t Next(uint32_t row) const { return next_[row]; }

  bool Contains(int64_t key) const { return Find(key) != kNone; }

  bool is_direct() const { return direct_; }

 private:
  static uint64_t Hash(int64_t key) { return HashInt64Key(key); }

  // direct_ defaults true so a default-constructed table takes the bounds
  // check against the empty bucket array and misses — no probe loop on
  // empty storage.
  bool direct_ = true;
  int64_t min_ = 0;
  uint64_t mask_ = 0;
  std::vector<uint32_t> bucket_rows_;
  std::vector<int64_t> bucket_keys_;  // open addressing only
  std::vector<uint32_t> next_;
};

// ---- radix-partitioned hash table -------------------------------------------

/// \brief Radix-partitioned flat multimap: the parallel build of the
/// hash-join / membership table. Keys split by the high bits of
/// HashInt64Key into P partitions (P from ExecPolicy::join_partitions,
/// derived from the worker count when 0): a parallel histogram + scatter
/// pass routes (key, row) pairs to their partition in ascending row order,
/// then every partition builds its own FlatTable concurrently on the shared
/// executor and splices its duplicate chains into one global next_ array.
/// Probes hash to a partition first, so Find/Next still emit build rows in
/// ascending order — bit-identical probe output to the single-table build.
/// Below ExecPolicy::min_parallel_rows (or at one partition/worker) the
/// build collapses to a single sequential FlatTable with zero indirection.
class PartitionedTable {
 public:
  static constexpr uint32_t kNone = FlatTable::kNone;

  /// Builds over keys[0, n) (borrowed for the build only); partition count
  /// and parallelism come from the process ExecPolicy.
  PartitionedTable(const int64_t* keys, size_t n);
  explicit PartitionedTable(Span<int64_t> keys)
      : PartitionedTable(keys.data, keys.size) {}

  /// First (lowest) build row whose key equals `key`, or kNone.
  uint32_t Find(int64_t key) const {
    const Part& p = parts_[parts_.size() == 1 ? 0 : PartitionOf(key)];
    const uint32_t local = p.table.Find(key);
    if (local == kNone) return kNone;
    return p.rows.empty() ? local : p.rows[local];
  }

  /// Next build row with the same key after `row` (ascending), or kNone.
  uint32_t Next(uint32_t row) const {
    return next_.empty() ? parts_[0].table.Next(row) : next_[row];
  }

  bool Contains(int64_t key) const { return Find(key) != kNone; }

  size_t partitions() const { return parts_.size(); }
  bool is_partitioned() const { return parts_.size() > 1; }

 private:
  struct Part {
    std::vector<uint32_t> rows;  ///< local -> original row (ascending); empty = identity
    FlatTable table;             ///< over the partition's local key order
  };

  size_t PartitionOf(int64_t key) const { return HashInt64Key(key) >> shift_; }

  unsigned shift_ = 63;        ///< 64 - log2(partitions); unused when single
  std::vector<Part> parts_;
  std::vector<uint32_t> next_;  ///< global duplicate chains (partitioned only)
};

}  // namespace kernels
}  // namespace dcy::bat
