#include "bat/scalar_reference.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace dcy::bat::scalar {

namespace {

bool IsIntegerFamily(ValType t) {
  return t == ValType::kOid || t == ValType::kInt || t == ValType::kLng ||
         t == ValType::kDate;
}

Status CheckJoinable(ValType a, ValType b) {
  if (IsIntegerFamily(a) && IsIntegerFamily(b)) return Status::OK();
  if (a == b) return Status::OK();
  return Status::InvalidArgument(std::string("join type mismatch: ") + ValTypeName(a) +
                                 " vs " + ValTypeName(b));
}

Bat::Properties HeadOrderedProps(const Bat& l) {
  Bat::Properties p;
  p.hsorted = l.props().hsorted;
  return p;
}

/// Emits [l.head[i], r.tail[j]] pairs for matches of l.tail[i] == r.head[j],
/// probing l in order (stable on l).
template <typename Key, typename LKey, typename RKey>
BatPtr HashJoinImpl(const Bat& l, const Bat& r, LKey lkey, RKey rkey) {
  std::unordered_map<Key, std::vector<size_t>> build;
  build.reserve(r.size());
  for (size_t j = 0; j < r.size(); ++j) build[rkey(j)].push_back(j);

  ColumnBuilder head_out(l.head_type());
  ColumnBuilder tail_out(r.tail_type());
  for (size_t i = 0; i < l.size(); ++i) {
    auto it = build.find(lkey(i));
    if (it == build.end()) continue;
    for (size_t j : it->second) {
      head_out.AppendValue(l.head()->GetValue(i));
      tail_out.AppendValue(r.tail()->GetValue(j));
    }
  }
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), HeadOrderedProps(l)));
}

BatPtr MergeJoinImpl(const Bat& l, const Bat& r) {
  ColumnBuilder head_out(l.head_type());
  ColumnBuilder tail_out(r.tail_type());
  size_t i = 0, j = 0;
  while (i < l.size() && j < r.size()) {
    const int cmp = CompareRows(*l.tail(), i, *r.head(), j);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      size_t j_end = j;
      while (j_end < r.size() && CompareRows(*l.tail(), i, *r.head(), j_end) == 0) ++j_end;
      size_t i_end = i;
      while (i_end < l.size() && CompareRows(*l.tail(), i_end, *r.head(), j) == 0) ++i_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          head_out.AppendValue(l.head()->GetValue(a));
          tail_out.AppendValue(r.tail()->GetValue(b));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), HeadOrderedProps(l)));
}

/// Set of the head values of r, for semijoin/kdiff/kunion. Integer members
/// use GetInt64 (doubles truncate), mirroring the engine's membership
/// semantics.
struct HeadSet {
  std::unordered_set<int64_t> ints;
  std::unordered_set<std::string_view> strs;
  bool is_str = false;

  explicit HeadSet(const Bat& r) {
    is_str = r.head_type() == ValType::kStr;
    for (size_t j = 0; j < r.size(); ++j) {
      if (is_str) {
        strs.insert(r.head()->GetString(j));
      } else {
        ints.insert(r.head()->GetInt64(j));
      }
    }
  }

  bool Contains(const Column& head, size_t i) const {
    if (is_str) return strs.count(head.GetString(i)) > 0;
    return ints.count(head.GetInt64(i)) > 0;
  }
};

BatPtr FilterByPositions(const Bat& b, const std::vector<size_t>& keep) {
  ColumnBuilder head_out(b.head_type());
  ColumnBuilder tail_out(b.tail_type());
  for (size_t i : keep) {
    head_out.AppendValue(b.head()->GetValue(i));
    tail_out.AppendValue(b.tail()->GetValue(i));
  }
  Bat::Properties p;
  p.hsorted = b.props().hsorted;  // positional filters keep order
  p.tsorted = b.props().tsorted;
  p.hkey = b.props().hkey;
  p.tkey = b.props().tkey;
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), p));
}

bool ValueLE(const Value& a, const Value& b) {
  if (a.type == ValType::kStr) return a.s <= b.s;
  if (a.type == ValType::kDbl || b.type == ValType::kDbl) return a.AsDouble() <= b.AsDouble();
  return a.AsInt64() <= b.AsInt64();
}

bool ValueEQ(const Column& c, size_t i, const Value& v) {
  if (c.type() == ValType::kStr) return c.GetString(i) == v.s;
  if (c.type() == ValType::kDbl || v.type == ValType::kDbl) {
    return c.GetDouble(i) == v.AsDouble();
  }
  return c.GetInt64(i) == v.AsInt64();
}

}  // namespace

Result<BatPtr> Select(const BatPtr& b, const Value& v) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < b->size(); ++i) {
    if (ValueEQ(*b->tail(), i, v)) keep.push_back(i);
  }
  return FilterByPositions(*b, keep);
}

Result<BatPtr> SelectRange(const BatPtr& b, const Value& lo, const Value& hi) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < b->size(); ++i) {
    const Value x = b->tail()->GetValue(i);
    if (ValueLE(lo, x) && ValueLE(x, hi)) keep.push_back(i);
  }
  return FilterByPositions(*b, keep);
}

Result<BatPtr> Join(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->tail_type(), r->head_type()));
  if (l->props().tsorted && r->props().hsorted) {
    return MergeJoinImpl(*l, *r);
  }
  if (l->tail_type() == ValType::kStr) {
    return HashJoinImpl<std::string>(
        *l, *r, [&](size_t i) { return std::string(l->tail()->GetString(i)); },
        [&](size_t j) { return std::string(r->head()->GetString(j)); });
  }
  if (l->tail_type() == ValType::kDbl) {
    return HashJoinImpl<int64_t>(
        *l, *r,
        [&](size_t i) {
          double d = l->tail()->GetDouble(i);
          int64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          return bits;
        },
        [&](size_t j) {
          double d = r->head()->GetDouble(j);
          int64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          return bits;
        });
  }
  return HashJoinImpl<int64_t>(
      *l, *r, [&](size_t i) { return l->tail()->GetInt64(i); },
      [&](size_t j) { return r->head()->GetInt64(j); });
}

Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  HeadSet set(*r);
  std::vector<size_t> keep;
  for (size_t i = 0; i < l->size(); ++i) {
    if (set.Contains(*l->head(), i)) keep.push_back(i);
  }
  return FilterByPositions(*l, keep);
}

Result<BatPtr> KDiff(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  HeadSet set(*r);
  std::vector<size_t> keep;
  for (size_t i = 0; i < l->size(); ++i) {
    if (!set.Contains(*l->head(), i)) keep.push_back(i);
  }
  return FilterByPositions(*l, keep);
}

Result<BatPtr> KUnion(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  if (l->tail_type() != r->tail_type()) {
    return Status::InvalidArgument("kunion tail type mismatch");
  }
  HeadSet set(*l);
  ColumnBuilder head_out(l->head_type());
  ColumnBuilder tail_out(l->tail_type());
  for (size_t i = 0; i < l->size(); ++i) {
    head_out.AppendValue(l->head()->GetValue(i));
    tail_out.AppendValue(l->tail()->GetValue(i));
  }
  for (size_t j = 0; j < r->size(); ++j) {
    if (!set.Contains(*r->head(), j)) {
      head_out.AppendValue(r->head()->GetValue(j));
      tail_out.AppendValue(r->tail()->GetValue(j));
    }
  }
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), Bat::Properties{}));
}

Result<BatPtr> Sort(const BatPtr& b) {
  std::vector<size_t> idx(b->size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t c) {
    return CompareRows(*b->tail(), a, *b->tail(), c) < 0;
  });
  BatPtr out = FilterByPositions(*b, idx);
  Bat::Properties p = out->props();
  p.tsorted = true;
  p.hsorted = false;
  return BatPtr(std::make_shared<Bat>(out->head(), out->tail(), p));
}

Result<BatPtr> TopN(const BatPtr& b, size_t n, bool descending) {
  std::vector<size_t> idx(b->size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t c) {
    const int cmp = CompareRows(*b->tail(), a, *b->tail(), c);
    return descending ? cmp > 0 : cmp < 0;
  });
  idx.resize(std::min(n, idx.size()));
  BatPtr out = FilterByPositions(*b, idx);
  Bat::Properties p = out->props();
  p.hsorted = false;
  p.tsorted = !descending;
  return BatPtr(std::make_shared<Bat>(out->head(), out->tail(), p));
}

}  // namespace dcy::bat::scalar
