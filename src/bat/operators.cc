#include "bat/operators.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "bat/kernels.h"
#include "common/logging.h"

// The operators compose the vectorized kernels in bat/kernels.h: filters
// produce selection vectors over raw arrays, joins probe a flat
// open-addressing table on materialized int64 keys, and outputs are built by
// bulk gather/append — no per-row Value boxing anywhere on the hot path. The
// pre-vectorization row-at-a-time implementations live on as the
// differential-test oracle in bat/scalar_reference.h.
//
// Large inputs run morsel-parallel on the shared exec::Executor (see the
// MorselPlan machinery in bat/kernels.h): hash-join probes and membership
// filters emit per-morsel match vectors stitched in morsel order (output
// bit-identical to the sequential pass), hash builds radix-partition into
// per-partition FlatTables (kernels::PartitionedTable), Sort/TopN run
// per-morsel sorts/bounded heaps merged under a stable total order, and
// aggregates accumulate thread-local partials merged at the end (integer
// aggregates exact; floating-point sums associate per-morsel,
// deterministically for a fixed policy). Inputs below
// ExecPolicy::min_parallel_rows take the sequential loops unchanged.

namespace dcy::bat {

namespace {

using kernels::FlatTable;
using kernels::MorselPlan;
using kernels::PartitionedTable;

/// Integer family (oid/int/lng/date) members are join-compatible.
bool IsIntegerFamily(ValType t) {
  return t == ValType::kOid || t == ValType::kInt || t == ValType::kLng ||
         t == ValType::kDate;
}

Status CheckJoinable(ValType a, ValType b) {
  if (IsIntegerFamily(a) && IsIntegerFamily(b)) return Status::OK();
  if (a == b) return Status::OK();
  return Status::InvalidArgument(std::string("join type mismatch: ") + ValTypeName(a) +
                                 " vs " + ValTypeName(b));
}

Bat::Properties HeadOrderedProps(const Bat& l) {
  Bat::Properties p;
  p.hsorted = l.props().hsorted;
  return p;
}

/// Gathers the rows in `sel` out of both columns (order-preserving filter).
BatPtr FilterBySel(const Bat& b, const SelVec& sel) {
  Bat::Properties p;
  p.hsorted = b.props().hsorted;  // positional filters keep order
  p.tsorted = b.props().tsorted;
  p.hkey = b.props().hkey;
  p.tkey = b.props().tkey;
  return BatPtr(std::make_shared<Bat>(kernels::Gather(*b.head(), sel.data(), sel.size()),
                                      kernels::Gather(*b.tail(), sel.data(), sel.size()),
                                      p));
}

/// Like Int64KeySpan but doubles convert by value truncation (the GetInt64
/// semantics HeadSet membership and grouped aggregates use), not by bit
/// pattern. Valid while `c` and *scratch are alive.
Span<int64_t> CastInt64KeySpan(const Column& c, std::vector<int64_t>* scratch) {
  if (c.kind() == ColumnKind::kFixed && c.type() == ValType::kDbl) {
    const size_t n = c.size();
    scratch->resize(n);
    const auto* d = static_cast<const double*>(c.RawData());
    for (size_t i = 0; i < n; ++i) (*scratch)[i] = static_cast<int64_t>(d[i]);
    return {scratch->data(), n};
  }
  return kernels::Int64KeySpan(c, scratch);
}

/// Three-way compare that treats NaN pairs as equal, exactly like
/// CompareRows; keeps the vectorized merge loop in lockstep with the scalar
/// reference (and guarantees forward progress on NaN runs).
template <typename K>
int Cmp3(K a, K b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// Sorted-input merge emitting (l-row, r-row) match pairs; identical
/// emission order to the scalar MergeJoinImpl.
template <typename K>
void MergeLoop(const K* lk, size_t ln, const K* rk, size_t rn, SelVec* li, SelVec* ri) {
  size_t i = 0, j = 0;
  while (i < ln && j < rn) {
    const int cmp = Cmp3(lk[i], rk[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      size_t j_end = j;
      while (j_end < rn && Cmp3(lk[i], rk[j_end]) == 0) ++j_end;
      size_t i_end = i;
      while (i_end < ln && Cmp3(lk[i_end], rk[j]) == 0) ++i_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          li->push_back(static_cast<uint32_t>(a));
          ri->push_back(static_cast<uint32_t>(b));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
}

BatPtr EmitJoin(const Bat& l, const Bat& r, const SelVec& li, const SelVec& ri) {
  return BatPtr(std::make_shared<Bat>(kernels::Gather(*l.head(), li.data(), li.size()),
                                      kernels::Gather(*r.tail(), ri.data(), ri.size()),
                                      HeadOrderedProps(l)));
}

BatPtr MergeJoinImpl(const Bat& l, const Bat& r) {
  SelVec li, ri;
  if (l.tail_type() == ValType::kStr) {
    // String merge: compare string views directly (no per-row boxing); the
    // virtual GetString serves plain heaps and dictionary columns alike.
    const Column& lt = *l.tail();
    const Column& rh = *r.head();
    size_t i = 0, j = 0;
    while (i < l.size() && j < r.size()) {
      const int cmp = lt.GetString(i).compare(rh.GetString(j));
      if (cmp < 0) {
        ++i;
      } else if (cmp > 0) {
        ++j;
      } else {
        size_t j_end = j;
        while (j_end < r.size() && lt.GetString(i) == rh.GetString(j_end)) ++j_end;
        size_t i_end = i;
        while (i_end < l.size() && lt.GetString(i_end) == rh.GetString(j)) ++i_end;
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            li.push_back(static_cast<uint32_t>(a));
            ri.push_back(static_cast<uint32_t>(b));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
  } else if (l.tail_type() == ValType::kDbl || r.head_type() == ValType::kDbl) {
    // Order-preserving double keys (CompareRows compares mixed dbl pairs in
    // the double domain).
    std::vector<double> lk, rk;
    kernels::ExtractDoubleKeys(*l.tail(), &lk);
    kernels::ExtractDoubleKeys(*r.head(), &rk);
    MergeLoop(lk.data(), lk.size(), rk.data(), rk.size(), &li, &ri);
  } else {
    std::vector<int64_t> lk, rk;
    kernels::ExtractInt64Keys(*l.tail(), &lk);
    kernels::ExtractInt64Keys(*r.head(), &rk);
    MergeLoop(lk.data(), lk.size(), rk.data(), rk.size(), &li, &ri);
  }
  return EmitJoin(l, r, li, ri);
}

BatPtr HashJoinImpl(const Bat& l, const Bat& r) {
  SelVec li, ri;
  if (l.tail_type() == ValType::kStr) {
    const size_t rn = r.size();
    if (r.head()->kind() == ColumnKind::kDict) {
      // Dictionary build side: the dict is the hash table. Chain duplicate
      // codes through next[] (reverse insertion keeps chains ascending);
      // probes resolve to a code either for free (shared dict) or with one
      // binary search, never hashing a string.
      const auto& bd = static_cast<const DictStrColumn&>(*r.head());
      const uint32_t* bc = bd.codes().data();
      std::vector<uint32_t> head(bd.dict_size(), FlatTable::kNone);
      std::vector<uint32_t> next(rn, FlatTable::kNone);
      for (size_t j = rn; j-- > 0;) {
        next[j] = head[bc[j]];
        head[bc[j]] = static_cast<uint32_t>(j);
      }
      const auto* pd = l.tail()->kind() == ColumnKind::kDict
                           ? static_cast<const DictStrColumn*>(l.tail().get())
                           : nullptr;
      const bool same_dict = pd != nullptr && pd->dict() == bd.dict();
      for (size_t i = 0; i < l.size(); ++i) {
        const uint32_t code = same_dict ? pd->codes()[i]
                                        : bd.FindCode(l.tail()->GetString(i));
        if (code == DictStrColumn::kNoCode) continue;
        for (uint32_t j = head[code]; j != FlatTable::kNone; j = next[j]) {
          li.push_back(static_cast<uint32_t>(i));
          ri.push_back(j);
        }
      }
      return EmitJoin(l, r, li, ri);
    }
    // String build side: chain duplicate keys through next[] so probes emit
    // ascending build rows; string_view keys borrow the heap (no per-row
    // std::string allocation).
    std::unordered_map<std::string_view, uint32_t> first;
    first.reserve(rn);
    std::vector<uint32_t> next(rn, FlatTable::kNone);
    for (size_t j = rn; j-- > 0;) {
      auto [it, inserted] =
          first.try_emplace(r.head()->GetString(j), static_cast<uint32_t>(j));
      if (!inserted) {
        next[j] = it->second;
        it->second = static_cast<uint32_t>(j);
      }
    }
    for (size_t i = 0; i < l.size(); ++i) {
      auto it = first.find(l.tail()->GetString(i));
      if (it == first.end()) continue;
      for (uint32_t j = it->second; j != FlatTable::kNone; j = next[j]) {
        li.push_back(static_cast<uint32_t>(i));
        ri.push_back(j);
      }
    }
    return EmitJoin(l, r, li, ri);
  }
  // Int64 keys: integer families widen, doubles bit-cast (same equality the
  // scalar reference hash join uses). 8-byte key columns alias their payload
  // (no key materialization); the build radix-partitions across the executor
  // at or above min_parallel_rows.
  std::vector<int64_t> rk_scratch;
  const PartitionedTable table(kernels::Int64KeySpan(*r.head(), &rk_scratch));
  std::vector<int64_t> lk_scratch;
  const Span<int64_t> lk = kernels::Int64KeySpan(*l.tail(), &lk_scratch);
  const MorselPlan plan = kernels::PlanMorsels(lk.size);
  if (!plan.parallel) {
    li.reserve(lk.size);  // FK-join guess: ~one match per probe row
    ri.reserve(lk.size);
    for (size_t i = 0; i < lk.size; ++i) {
      for (uint32_t j = table.Find(lk[i]); j != PartitionedTable::kNone;
           j = table.Next(j)) {
        li.push_back(static_cast<uint32_t>(i));
        ri.push_back(j);
      }
    }
    return EmitJoin(l, r, li, ri);
  }
  // Parallel probe: the table is immutable now, so morsels of probe rows
  // scan it concurrently; stitching the per-morsel match vectors in morsel
  // order reproduces the sequential probe order exactly.
  std::vector<SelVec> lparts(plan.morsels), rparts(plan.morsels);
  kernels::ForEachMorsel(plan, lk.size, [&](size_t m, size_t b, size_t e) {
    SelVec& lp = lparts[m];
    SelVec& rp = rparts[m];
    lp.reserve(e - b);
    rp.reserve(e - b);
    for (size_t i = b; i < e; ++i) {
      for (uint32_t j = table.Find(lk[i]); j != PartitionedTable::kNone;
           j = table.Next(j)) {
        lp.push_back(static_cast<uint32_t>(i));
        rp.push_back(j);
      }
    }
  });
  kernels::StitchSelVecs(lparts, &li);
  kernels::StitchSelVecs(rparts, &ri);
  return EmitJoin(l, r, li, ri);
}

Status CheckNumeric(const Bat& b, const char* op) {
  if (b.tail_type() == ValType::kStr) {
    return Status::InvalidArgument(std::string(op) + " on string tail");
  }
  return Status::OK();
}

/// Membership filter for semijoin/kdiff: sel <- positions of l.head whose
/// membership in r's head set equals `want`.
Result<SelVec> HeadMembershipSel(const Bat& l, const Bat& r, bool want) {
  SelVec sel;
  if (l.head_type() == ValType::kStr) {
    std::unordered_set<std::string_view> set;
    set.reserve(r.size());
    for (size_t j = 0; j < r.size(); ++j) set.insert(r.head()->GetString(j));
    for (size_t i = 0; i < l.size(); ++i) {
      if ((set.count(l.head()->GetString(i)) > 0) == want) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    return sel;
  }
  std::vector<int64_t> rk_scratch;
  const PartitionedTable table(CastInt64KeySpan(*r.head(), &rk_scratch));
  std::vector<int64_t> lk_scratch;
  const Span<int64_t> lk = CastInt64KeySpan(*l.head(), &lk_scratch);
  const MorselPlan plan = kernels::PlanMorsels(lk.size);
  if (!plan.parallel) {
    for (size_t i = 0; i < lk.size; ++i) {
      if (table.Contains(lk[i]) == want) sel.push_back(static_cast<uint32_t>(i));
    }
    return sel;
  }
  std::vector<SelVec> parts(plan.morsels);
  kernels::ForEachMorsel(plan, lk.size, [&](size_t m, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (table.Contains(lk[i]) == want) parts[m].push_back(static_cast<uint32_t>(i));
    }
  });
  kernels::StitchSelVecs(parts, &sel);
  return sel;
}

}  // namespace

BatPtr Reverse(const BatPtr& b) {
  Bat::Properties p;
  p.hsorted = b->props().tsorted;
  p.hkey = b->props().tkey;
  p.tsorted = b->props().hsorted;
  p.tkey = b->props().hkey;
  return BatPtr(std::make_shared<Bat>(b->tail(), b->head(), p));
}

BatPtr MarkT(const BatPtr& b, Oid base) {
  Bat::Properties p;
  p.hsorted = b->props().hsorted;
  p.hkey = b->props().hkey;
  p.tsorted = true;
  p.tkey = true;
  return BatPtr(std::make_shared<Bat>(b->head(), MakeDenseOid(base, b->size()), p));
}

BatPtr MarkH(const BatPtr& b, Oid base) {
  Bat::Properties p;
  p.hsorted = true;
  p.hkey = true;
  p.tsorted = b->props().tsorted;
  p.tkey = b->props().tkey;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(base, b->size()), b->tail(), p));
}

BatPtr Mirror(const BatPtr& b) {
  Bat::Properties p;
  p.hsorted = p.tsorted = b->props().hsorted;
  p.hkey = p.tkey = b->props().hkey;
  return BatPtr(std::make_shared<Bat>(b->head(), b->head(), p));
}

Result<BatPtr> Slice(const BatPtr& b, size_t lo, size_t hi) {
  if (lo > hi || hi > b->size()) {
    return Status::OutOfRange("slice [" + std::to_string(lo) + "," + std::to_string(hi) +
                              ") of " + std::to_string(b->size()));
  }
  SelVec keep(hi - lo);
  std::iota(keep.begin(), keep.end(), static_cast<uint32_t>(lo));
  return FilterBySel(*b, keep);
}

Result<BatPtr> Join(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->tail_type(), r->head_type()));
  if (l->props().tsorted && r->props().hsorted) {
    return MergeJoinImpl(*l, *r);
  }
  return HashJoinImpl(*l, *r);
}

Result<BatPtr> LeftJoin(const BatPtr& l, const BatPtr& r) {
  // Our hash join probes l in order already; merge join also preserves l
  // order for key-unique r.
  return Join(l, r);
}

Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  DCY_ASSIGN_OR_RETURN(SelVec keep, HeadMembershipSel(*l, *r, /*want=*/true));
  return FilterBySel(*l, keep);
}

Result<BatPtr> KDiff(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  DCY_ASSIGN_OR_RETURN(SelVec keep, HeadMembershipSel(*l, *r, /*want=*/false));
  return FilterBySel(*l, keep);
}

Result<BatPtr> KUnion(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  if (l->tail_type() != r->tail_type()) {
    return Status::InvalidArgument("kunion tail type mismatch");
  }
  DCY_ASSIGN_OR_RETURN(SelVec fresh, HeadMembershipSel(*r, *l, /*want=*/false));

  ColumnBuilder head_out(l->head_type());
  ColumnBuilder tail_out(l->tail_type());
  head_out.Reserve(l->size() + fresh.size());
  tail_out.Reserve(l->size() + fresh.size());
  head_out.AppendColumnRange(*l->head(), 0, l->size());
  tail_out.AppendColumnRange(*l->tail(), 0, l->size());
  if (r->head_type() == l->head_type()) {
    head_out.AppendGather(*r->head(), fresh.data(), fresh.size());
  } else {
    // Mixed integer-family heads (e.g. int vs lng): widen row-wise.
    for (uint32_t j : fresh) head_out.AppendInt64(r->head()->GetInt64(j));
  }
  tail_out.AppendGather(*r->tail(), fresh.data(), fresh.size());
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), Bat::Properties{}));
}

Result<BatPtr> Select(const BatPtr& b, const Value& v) {
  SelVec keep;
  kernels::SelectEq(*b->tail(), v, &keep);
  return FilterBySel(*b, keep);
}

Result<BatPtr> SelectRange(const BatPtr& b, const Value& lo, const Value& hi) {
  SelVec keep;
  kernels::SelectRange(*b->tail(), lo, hi, &keep);
  return FilterBySel(*b, keep);
}

Result<BatPtr> USelect(const BatPtr& b, const Value& v) {
  DCY_ASSIGN_OR_RETURN(BatPtr selected, Select(b, v));
  // Head-only result: the tail carries no information (void/dense 0).
  Bat::Properties p;
  p.hsorted = selected->props().hsorted;
  p.hkey = selected->props().hkey;
  p.tsorted = true;
  return BatPtr(std::make_shared<Bat>(selected->head(), MakeDenseOid(0, selected->size()), p));
}

namespace {

template <typename Get, typename Pred>
void ThetaLoop(size_t n, const Get& get, const Pred& pred, SelVec* sel) {
  for (size_t i = 0; i < n; ++i) {
    if (pred(get(i))) sel->push_back(static_cast<uint32_t>(i));
  }
}

/// One pass per predicate shape, branch hoisted out of the loop.
template <typename T, typename Get>
void ThetaDispatch(size_t n, CmpOp op, const T& pivot, const Get& get, SelVec* sel) {
  switch (op) {
    case CmpOp::kEq:
      ThetaLoop(n, get, [&](const auto& x) { return x == pivot; }, sel);
      break;
    case CmpOp::kNe:
      ThetaLoop(n, get, [&](const auto& x) { return x != pivot; }, sel);
      break;
    case CmpOp::kLt:
      ThetaLoop(n, get, [&](const auto& x) { return x < pivot; }, sel);
      break;
    case CmpOp::kLe:
      ThetaLoop(n, get, [&](const auto& x) { return x <= pivot; }, sel);
      break;
    case CmpOp::kGt:
      ThetaLoop(n, get, [&](const auto& x) { return x > pivot; }, sel);
      break;
    case CmpOp::kGe:
      ThetaLoop(n, get, [&](const auto& x) { return x >= pivot; }, sel);
      break;
  }
}

}  // namespace

Result<BatPtr> ThetaSelect(const BatPtr& b, const Value& v, CmpOp op) {
  if (op == CmpOp::kEq) return Select(b, v);  // adaptive equality kernel
  const size_t n = b->size();
  const Column& t = *b->tail();
  SelVec keep;
  if (t.type() == ValType::kStr) {
    if (v.type != ValType::kStr) {
      return Status::InvalidArgument("thetaselect: string column vs non-string value");
    }
    const std::string_view pivot = v.s;
    ThetaDispatch(n, op, pivot, [&](size_t i) { return t.GetString(i); }, &keep);
  } else if (v.type == ValType::kStr) {
    return Status::InvalidArgument("thetaselect: numeric column vs string value");
  } else if (t.type() != ValType::kDbl && v.type != ValType::kDbl) {
    const int64_t pivot = v.AsInt64();
    ThetaDispatch(n, op, pivot, [&](size_t i) { return t.GetInt64(i); }, &keep);
  } else {
    const double pivot = v.AsDouble();
    ThetaDispatch(n, op, pivot, [&](size_t i) { return t.GetDouble(i); }, &keep);
  }
  return FilterBySel(*b, keep);
}

Result<BatPtr> GroupId(const BatPtr& b) {
  const size_t n = b->size();
  std::vector<Oid> gids(n);
  if (b->tail_type() == ValType::kStr) {
    if (b->tail()->kind() == ColumnKind::kDict) {
      // Equal strings share a code (the dict is unique), so grouping is a
      // flat code -> gid table; gids still issue in first-appearance order.
      const auto& dc = static_cast<const DictStrColumn&>(*b->tail());
      const uint32_t* codes = dc.codes().data();
      constexpr Oid kUnseen = ~Oid{0};
      std::vector<Oid> code_gid(dc.dict_size(), kUnseen);
      Oid issued = 0;
      for (size_t i = 0; i < n; ++i) {
        Oid& g = code_gid[codes[i]];
        if (g == kUnseen) g = issued++;
        gids[i] = g;
      }
    } else {
      std::unordered_map<std::string_view, Oid> groups;
      groups.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        auto [it, _] =
            groups.try_emplace(b->tail()->GetString(i), static_cast<Oid>(groups.size()));
        gids[i] = it->second;
      }
    }
  } else {
    // Bit-cast keys (doubles by pattern), one flat array pass; 8-byte key
    // columns alias their payload.
    std::vector<int64_t> scratch;
    const Span<int64_t> keys = kernels::Int64KeySpan(*b->tail(), &scratch);
    std::unordered_map<int64_t, Oid> groups;
    groups.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto [it, _] = groups.try_emplace(keys[i], static_cast<Oid>(groups.size()));
      gids[i] = it->second;
    }
  }
  Bat::Properties p;
  p.hsorted = b->props().hsorted;
  p.hkey = b->props().hkey;
  return BatPtr(std::make_shared<Bat>(
      b->head(), std::make_shared<OidColumn>(ValType::kOid, std::move(gids)), p));
}

Result<BatPtr> GroupValues(const BatPtr& b) {
  DCY_ASSIGN_OR_RETURN(BatPtr gids, GroupId(b));
  // First row of each group provides the representative value.
  const auto gid_span = gids->tail()->FixedData<Oid>();
  size_t num_groups = 0;
  for (size_t i = 0; i < gid_span.size; ++i) {
    num_groups = std::max<size_t>(num_groups, static_cast<size_t>(gid_span[i]) + 1);
  }
  std::vector<uint32_t> first(num_groups, 0);
  std::vector<bool> seen(num_groups, false);
  for (size_t i = 0; i < gid_span.size; ++i) {
    const size_t g = static_cast<size_t>(gid_span[i]);
    if (!seen[g]) {
      seen[g] = true;
      first[g] = static_cast<uint32_t>(i);
    }
  }
  // Representative-value materialization through the adaptive gather: large
  // string group domains take the two-pass parallel heap build.
  ColumnPtr values = kernels::Gather(*b->tail(), first.data(), first.size());
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(0, num_groups), std::move(values), p));
}

Result<BatPtr> GroupRefine(const BatPtr& col, const BatPtr& gids) {
  const size_t n = col->size();
  if (gids->size() != n) {
    return Status::InvalidArgument("refine: col/gids not aligned");
  }
  std::vector<int64_t> g_scratch;
  // GetInt64 semantics: dbl gids truncate.
  const Span<int64_t> g = CastInt64KeySpan(*gids->tail(), &g_scratch);
  std::vector<Oid> out(n);
  if (col->tail_type() == ValType::kStr) {
    struct Hash {
      size_t operator()(const std::pair<int64_t, std::string_view>& p) const {
        uint64_t h = static_cast<uint64_t>(p.first) * 0x9e3779b97f4a7c15ULL;
        h ^= std::hash<std::string_view>{}(p.second) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
        return static_cast<size_t>(h);
      }
    };
    std::unordered_map<std::pair<int64_t, std::string_view>, Oid, Hash> groups;
    groups.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto [it, _] = groups.try_emplace({g[i], col->tail()->GetString(i)},
                                        static_cast<Oid>(groups.size()));
      out[i] = it->second;
    }
  } else {
    struct Hash {
      size_t operator()(const std::pair<int64_t, int64_t>& p) const {
        uint64_t h = static_cast<uint64_t>(p.first) * 0x9e3779b97f4a7c15ULL;
        h ^= static_cast<uint64_t>(p.second) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return static_cast<size_t>(h);
      }
    };
    // Bit-cast keys (doubles by pattern), as GroupId.
    std::vector<int64_t> scratch;
    const Span<int64_t> keys = kernels::Int64KeySpan(*col->tail(), &scratch);
    std::unordered_map<std::pair<int64_t, int64_t>, Oid, Hash> groups;
    groups.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto [it, _] = groups.try_emplace({g[i], keys[i]}, static_cast<Oid>(groups.size()));
      out[i] = it->second;
    }
  }
  Bat::Properties p;
  p.hsorted = col->props().hsorted;
  p.hkey = col->props().hkey;
  return BatPtr(std::make_shared<Bat>(
      col->head(), std::make_shared<OidColumn>(ValType::kOid, std::move(out)), p));
}

Result<BatPtr> GroupExtents(const BatPtr& gids) {
  const size_t n = gids->size();
  std::vector<int64_t> g_scratch;
  const Span<int64_t> g = CastInt64KeySpan(*gids->tail(), &g_scratch);
  size_t num_groups = 0;
  for (size_t i = 0; i < n; ++i) {
    if (g[i] < 0) return Status::InvalidArgument("extents: negative group id");
    num_groups = std::max(num_groups, static_cast<size_t>(g[i]) + 1);
  }
  std::vector<Oid> first(num_groups, 0);
  std::vector<bool> seen(num_groups, false);
  for (size_t i = 0; i < n; ++i) {
    const auto gi = static_cast<size_t>(g[i]);
    if (!seen[gi]) {
      seen[gi] = true;
      first[gi] = static_cast<Oid>(gids->head()->GetInt64(i));
    }
  }
  for (size_t gi = 0; gi < num_groups; ++gi) {
    if (!seen[gi]) return Status::InvalidArgument("extents: group ids not dense");
  }
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(
      MakeDenseOid(0, num_groups),
      std::make_shared<OidColumn>(ValType::kOid, std::move(first)), p));
}

uint64_t Count(const BatPtr& b) { return b->size(); }

namespace {

/// Fused sum of rows [begin, end) in the accumulator type Acc, without
/// materializing a key vector.
template <typename Acc>
Acc FusedSumSpan(const Column& t, size_t begin, size_t end) {
  Acc s = 0;
  switch (t.type()) {
    case ValType::kOid: {
      const auto* d = static_cast<const Oid*>(t.RawData());
      for (size_t i = begin; i < end; ++i) {
        s += static_cast<Acc>(static_cast<int64_t>(d[i]));
      }
      break;
    }
    case ValType::kInt:
    case ValType::kDate: {
      const auto* d = static_cast<const int32_t*>(t.RawData());
      for (size_t i = begin; i < end; ++i) s += static_cast<Acc>(d[i]);
      break;
    }
    case ValType::kLng: {
      const auto* d = static_cast<const int64_t*>(t.RawData());
      for (size_t i = begin; i < end; ++i) s += static_cast<Acc>(d[i]);
      break;
    }
    case ValType::kDbl: {
      const auto* d = static_cast<const double*>(t.RawData());
      for (size_t i = begin; i < end; ++i) s += static_cast<Acc>(d[i]);
      break;
    }
    case ValType::kStr: DCY_FATAL() << "sum on string column";
  }
  return s;
}

/// Single fused pass over the whole column (dense ranges in closed form).
/// Large materialized columns sum thread-local morsel partials merged in
/// morsel order: exact for integer accumulators, deterministic per-policy
/// association for doubles.
template <typename Acc>
Acc FusedSum(const Column& t) {
  const size_t n = t.size();
  if (t.kind() == ColumnKind::kDense) {
    const auto seq =
        static_cast<int64_t>(static_cast<const DenseOidColumn&>(t).seqbase());
    // n*seq + 0+1+...+(n-1)
    return static_cast<Acc>(seq) * static_cast<Acc>(n) +
           static_cast<Acc>(n) * static_cast<Acc>(n - (n > 0 ? 1 : 0)) / 2;
  }
  const MorselPlan plan = kernels::PlanMorsels(n);
  if (!plan.parallel) return FusedSumSpan<Acc>(t, 0, n);
  return exec::PartitionedReduce<Acc>(
      plan.morsels, Acc{0},
      [&](size_t m) {
        const size_t b = m * plan.grain;
        return FusedSumSpan<Acc>(t, b, std::min(n, b + plan.grain));
      },
      [](Acc& acc, Acc& partial) { acc += partial; }, plan.workers);
}

/// Grouped aggregates materialize one partial array per morsel; cap the
/// fan-out so wide group domains cannot blow up memory (beyond the cap the
/// sequential loop wins anyway — the merge would dominate).
MorselPlan GroupedAggPlan(size_t rows, size_t num_groups) {
  MorselPlan plan = kernels::PlanMorsels(rows);
  if (plan.parallel && plan.morsels * num_groups > (size_t{1} << 22)) {
    return MorselPlan{};
  }
  return plan;
}

}  // namespace

Result<Value> Sum(const BatPtr& b) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "sum"));
  const Column& t = *b->tail();
  if (t.type() == ValType::kDbl) return Value::MakeDbl(FusedSum<double>(t));
  return Value::MakeLng(FusedSum<int64_t>(t));
}

namespace {

template <typename T>
size_t ArgExtreme(const T* d, size_t n, bool max) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (max ? d[i] > d[best] : d[i] < d[best]) best = i;
  }
  return best;
}

Result<Value> Extreme(const BatPtr& b, bool max, const char* op) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, op));
  if (b->size() == 0) return Status::InvalidArgument(std::string(op) + " of empty BAT");
  const Column& t = *b->tail();
  size_t best = 0;
  switch (t.kind()) {
    case ColumnKind::kDense:
      best = max ? t.size() - 1 : 0;
      break;
    case ColumnKind::kFixed:
      switch (t.type()) {
        case ValType::kOid:
          best = ArgExtreme(static_cast<const Oid*>(t.RawData()), t.size(), max);
          break;
        case ValType::kInt:
        case ValType::kDate:
          best = ArgExtreme(static_cast<const int32_t*>(t.RawData()), t.size(), max);
          break;
        case ValType::kLng:
          best = ArgExtreme(static_cast<const int64_t*>(t.RawData()), t.size(), max);
          break;
        case ValType::kDbl:
          best = ArgExtreme(static_cast<const double*>(t.RawData()), t.size(), max);
          break;
        default: break;
      }
      break;
    case ColumnKind::kStr:
    case ColumnKind::kDict: break;  // excluded by CheckNumeric
  }
  return t.GetValue(best);
}

}  // namespace

Result<Value> Min(const BatPtr& b) { return Extreme(b, /*max=*/false, "min"); }

Result<Value> Max(const BatPtr& b) { return Extreme(b, /*max=*/true, "max"); }

Result<Value> Avg(const BatPtr& b) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "avg"));
  if (b->size() == 0) return Status::InvalidArgument("avg of empty BAT");
  return Value::MakeDbl(FusedSum<double>(*b->tail()) / static_cast<double>(b->size()));
}

Result<BatPtr> SumPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups) {
  DCY_RETURN_NOT_OK(CheckNumeric(*values, "sumPerGroup"));
  if (values->size() != gids->size()) {
    return Status::InvalidArgument("sumPerGroup: values/gids not aligned");
  }
  std::vector<int64_t> g_scratch;
  // GetInt64 semantics: dbl gids truncate.
  const Span<int64_t> g = CastInt64KeySpan(*gids->tail(), &g_scratch);
  std::vector<double> v;
  kernels::ExtractDoubleKeys(*values->tail(), &v);
  std::vector<double> sums(num_groups, 0.0);
  const MorselPlan plan = GroupedAggPlan(v.size(), num_groups);
  if (!plan.parallel) {
    for (size_t i = 0; i < v.size(); ++i) {
      const auto gi = static_cast<uint64_t>(g[i]);
      if (gi >= num_groups) return Status::OutOfRange("group id out of range");
      sums[gi] += v[i];
    }
  } else {
    // Thread-local partial sums per morsel, merged in morsel order
    // (deterministic association for a fixed policy).
    std::atomic<bool> out_of_range{false};
    sums = exec::PartitionedReduce<std::vector<double>>(
        plan.morsels, std::move(sums),
        [&](size_t m) {
          const size_t b = m * plan.grain, e = std::min(v.size(), b + plan.grain);
          std::vector<double> part(num_groups, 0.0);
          for (size_t i = b; i < e; ++i) {
            const auto gi = static_cast<uint64_t>(g[i]);
            if (gi >= num_groups) {
              out_of_range.store(true, std::memory_order_relaxed);
              break;
            }
            part[gi] += v[i];
          }
          return part;
        },
        [&](std::vector<double>& acc, std::vector<double>& part) {
          for (size_t gi = 0; gi < num_groups; ++gi) acc[gi] += part[gi];
        },
        plan.workers);
    if (out_of_range.load()) return Status::OutOfRange("group id out of range");
  }
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(
      MakeDenseOid(0, num_groups),
      std::make_shared<DblColumn>(ValType::kDbl, std::move(sums)), p));
}

Result<BatPtr> CountPerGroup(const BatPtr& gids, size_t num_groups) {
  std::vector<int64_t> g_scratch;
  // GetInt64 semantics: dbl gids truncate.
  const Span<int64_t> g = CastInt64KeySpan(*gids->tail(), &g_scratch);
  std::vector<int64_t> counts(num_groups, 0);
  const MorselPlan plan = GroupedAggPlan(g.size, num_groups);
  if (!plan.parallel) {
    for (size_t i = 0; i < g.size; ++i) {
      const auto gi = static_cast<uint64_t>(g[i]);
      if (gi >= num_groups) return Status::OutOfRange("group id out of range");
      ++counts[gi];
    }
  } else {
    std::atomic<bool> out_of_range{false};
    counts = exec::PartitionedReduce<std::vector<int64_t>>(
        plan.morsels, std::move(counts),
        [&](size_t m) {
          const size_t b = m * plan.grain, e = std::min(g.size, b + plan.grain);
          std::vector<int64_t> part(num_groups, 0);
          for (size_t i = b; i < e; ++i) {
            const auto gi = static_cast<uint64_t>(g[i]);
            if (gi >= num_groups) {
              out_of_range.store(true, std::memory_order_relaxed);
              break;
            }
            ++part[gi];
          }
          return part;
        },
        [&](std::vector<int64_t>& acc, std::vector<int64_t>& part) {
          for (size_t gi = 0; gi < num_groups; ++gi) acc[gi] += part[gi];
        },
        plan.workers);
    if (out_of_range.load()) return Status::OutOfRange("group id out of range");
  }
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(
      MakeDenseOid(0, num_groups),
      std::make_shared<LngColumn>(ValType::kLng, std::move(counts)), p));
}

namespace {

/// Shared Min/MaxPerGroup body. One sequential pass: per-group extremes are
/// cheap next to the rest of a grouped plan, and the extreme of extremes
/// merge would not pay for the per-morsel partial arrays.
template <typename T, typename Out, typename Get>
Result<BatPtr> ExtremePerGroupTyped(const Span<int64_t>& g, size_t num_groups, bool max,
                                    const char* op, ValType out_type, const Get& get) {
  std::vector<T> best(num_groups, T{});
  std::vector<bool> seen(num_groups, false);
  for (size_t i = 0; i < g.size; ++i) {
    const auto gi = static_cast<uint64_t>(g[i]);
    if (gi >= num_groups) return Status::OutOfRange("group id out of range");
    const T x = get(i);
    if (!seen[gi]) {
      seen[gi] = true;
      best[gi] = x;
    } else if (max ? x > best[gi] : x < best[gi]) {
      best[gi] = x;
    }
  }
  for (size_t gi = 0; gi < num_groups; ++gi) {
    if (!seen[gi]) return Status::InvalidArgument(std::string(op) + " of empty group");
  }
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(0, num_groups),
                                      std::make_shared<Out>(out_type, std::move(best)), p));
}

Result<BatPtr> ExtremePerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups,
                               bool max, const char* op) {
  DCY_RETURN_NOT_OK(CheckNumeric(*values, op));
  if (values->size() != gids->size()) {
    return Status::InvalidArgument(std::string(op) + ": values/gids not aligned");
  }
  std::vector<int64_t> g_scratch;
  // GetInt64 semantics: dbl gids truncate.
  const Span<int64_t> g = CastInt64KeySpan(*gids->tail(), &g_scratch);
  const Column& t = *values->tail();
  if (t.type() == ValType::kDbl) {
    return ExtremePerGroupTyped<double, DblColumn>(
        g, num_groups, max, op, ValType::kDbl, [&](size_t i) { return t.GetDouble(i); });
  }
  return ExtremePerGroupTyped<int64_t, LngColumn>(
      g, num_groups, max, op, ValType::kLng, [&](size_t i) { return t.GetInt64(i); });
}

}  // namespace

Result<BatPtr> MinPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups) {
  return ExtremePerGroup(values, gids, num_groups, /*max=*/false, "minPerGroup");
}

Result<BatPtr> MaxPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups) {
  return ExtremePerGroup(values, gids, num_groups, /*max=*/true, "maxPerGroup");
}

namespace {

// ---- parallel stable sort ----------------------------------------------------
//
// Sort and TopN run on the executor like the other kernels: per-morsel
// sorts (or bounded heaps) under a *total* order — the key order with ties
// broken by ascending position, which is exactly the stable sort order —
// merged back deterministically. Total ordering is what makes the parallel
// output bit-identical to std::stable_sort and to the scalar reference.

/// Key order `less` extended with the ascending-position tie-break.
template <typename Less>
auto WithPositionTieBreak(const Less& less) {
  return [less](uint32_t a, uint32_t b) {
    if (less(a, b)) return true;
    if (less(b, a)) return false;
    return a < b;
  };
}

/// K-way merge of the per-morsel sorted runs of `idx` (run m spans
/// [m*grain, min(n, (m+1)*grain))) with a loser tree: one comparison per
/// tree level per emitted position. `total` must be a total order, so the
/// merge has a unique result — the globally stable order.
template <typename TotalLess>
SelVec MergeSortedRuns(const SelVec& idx, size_t grain, const TotalLess& total) {
  const size_t n = idx.size();
  const size_t runs = (n + grain - 1) / grain;
  size_t cap = 1;
  while (cap < runs) cap <<= 1;
  const size_t ghost = cap;  // shared "exhausted" leaf padding [runs, cap)
  std::vector<size_t> cur(cap + 1, 0), end(cap + 1, 0);
  for (size_t m = 0; m < runs; ++m) {
    cur[m] = m * grain;
    end[m] = std::min(n, cur[m] + grain);
  }
  // Does run a's head precede run b's? Exhausted runs lose to everything.
  auto run_wins = [&](size_t a, size_t b) {
    if (cur[a] == end[a]) return false;
    if (cur[b] == end[b]) return true;
    return total(idx[cur[a]], idx[cur[b]]);
  };
  // Build the bracket bottom-up: internal node t keeps the loser of its
  // subtrees, the winner moves up; loser[0] holds the champion.
  std::vector<size_t> loser(cap, ghost);
  {
    std::vector<size_t> winner(2 * cap, ghost);
    for (size_t m = 0; m < runs; ++m) winner[cap + m] = m;
    for (size_t t = cap - 1; t >= 1; --t) {
      const size_t a = winner[2 * t], b = winner[2 * t + 1];
      const bool b_wins = run_wins(b, a);
      winner[t] = b_wins ? b : a;
      loser[t] = b_wins ? a : b;
    }
    loser[0] = winner[1];
  }
  SelVec out(n);
  for (size_t o = 0; o < n; ++o) {
    const size_t w = loser[0];
    out[o] = idx[cur[w]++];
    // Replay w's path: the climber meets exactly the opponents it has to.
    size_t s = w;
    for (size_t t = (w + cap) >> 1; t >= 1; t >>= 1) {
      if (run_wins(loser[t], s)) std::swap(s, loser[t]);
    }
    loser[0] = s;
  }
  return out;
}

/// Stable argsort of positions [0, n) under the key order `less`: morsel
/// sorts on the executor + loser-tree merge at or above the policy
/// threshold, std::stable_sort below. The position tie-break makes the
/// per-morsel sort order the stable order, so both paths are bit-identical.
template <typename Less>
SelVec ArgSortStable(size_t n, const Less& less) {
  SelVec idx(n);
  std::iota(idx.begin(), idx.end(), uint32_t{0});
  const MorselPlan plan = kernels::PlanMorsels(n);
  if (!plan.parallel) {
    std::stable_sort(idx.begin(), idx.end(), less);
    return idx;
  }
  const auto total = WithPositionTieBreak(less);
  kernels::ForEachMorsel(plan, n, [&](size_t, size_t b, size_t e) {
    std::sort(idx.begin() + static_cast<ptrdiff_t>(b),
              idx.begin() + static_cast<ptrdiff_t>(e), total);
  });
  if (plan.morsels <= 1) return idx;
  return MergeSortedRuns(idx, plan.grain, total);
}

/// First k positions of the stable argsort under `less` (the TopN
/// contract): a sequential partial_sort below the threshold, per-morsel
/// bounded heaps merged with one final partial_sort above it — identical
/// output either way, because both orders are the same total order.
template <typename Less>
SelVec TopKPositions(size_t n, size_t k, const Less& less) {
  const auto total = WithPositionTieBreak(less);
  const MorselPlan plan = kernels::PlanMorsels(n);
  // k == 0 must take this branch too: the heap path below peeks at
  // heap.front() once k candidates are held, which never happens at k = 0.
  if (!plan.parallel || plan.morsels <= 1 || k == 0 || k >= n) {
    SelVec idx(n);
    std::iota(idx.begin(), idx.end(), uint32_t{0});
    const size_t take = std::min(k, n);
    std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(take),
                      idx.end(), total);
    idx.resize(take);
    return idx;
  }
  // Each morsel keeps its k best in a max-heap (worst at the front); the
  // union of per-morsel winners is a superset of the global top k.
  SelVec cands = exec::PartitionedReduce<SelVec>(
      plan.morsels, SelVec{},
      [&](size_t m) {
        const size_t b = m * plan.grain, e = std::min(n, b + plan.grain);
        SelVec heap;
        heap.reserve(std::min(k, e - b));
        for (size_t i = b; i < e; ++i) {
          const auto pos = static_cast<uint32_t>(i);
          if (heap.size() < k) {
            heap.push_back(pos);
            std::push_heap(heap.begin(), heap.end(), total);
          } else if (total(pos, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), total);
            heap.back() = pos;
            std::push_heap(heap.begin(), heap.end(), total);
          }
        }
        return heap;
      },
      [](SelVec& acc, SelVec& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      },
      plan.workers);
  const size_t take = std::min(k, cands.size());
  std::partial_sort(cands.begin(), cands.begin() + static_cast<ptrdiff_t>(take),
                    cands.end(), total);
  cands.resize(take);
  return cands;
}

/// Stable argsort of the tail on raw keys; ascending CompareRows order.
SelVec SortedPositions(const Column& tail) {
  const size_t n = tail.size();
  if (tail.kind() == ColumnKind::kDense) {
    // Already ascending.
    SelVec idx(n);
    std::iota(idx.begin(), idx.end(), uint32_t{0});
    return idx;
  }
  if (tail.type() == ValType::kStr) {
    if (tail.kind() == ColumnKind::kDict) {
      // Sorted dictionary: code order is string order, so the sort never
      // touches the heap.
      const uint32_t* kd =
          static_cast<const DictStrColumn&>(tail).codes().data();
      return ArgSortStable(n, [kd](uint32_t a, uint32_t c) { return kd[a] < kd[c]; });
    }
    const auto& sc = static_cast<const StrColumn&>(tail);
    return ArgSortStable(
        n, [&sc](uint32_t a, uint32_t c) { return sc.GetString(a) < sc.GetString(c); });
  }
  if (tail.type() == ValType::kDbl) {
    std::vector<double> keys;
    kernels::ExtractDoubleKeys(tail, &keys);
    const double* kd = keys.data();
    return ArgSortStable(n, [kd](uint32_t a, uint32_t c) { return kd[a] < kd[c]; });
  }
  std::vector<int64_t> scratch;
  const Span<int64_t> keys = kernels::Int64KeySpan(tail, &scratch);
  const int64_t* kd = keys.data;
  return ArgSortStable(n, [kd](uint32_t a, uint32_t c) { return kd[a] < kd[c]; });
}

}  // namespace

Result<BatPtr> Sort(const BatPtr& b) {
  SelVec idx = SortedPositions(*b->tail());
  BatPtr out = FilterBySel(*b, idx);
  Bat::Properties p = out->props();
  p.tsorted = true;
  p.hsorted = false;
  return BatPtr(std::make_shared<Bat>(out->head(), out->tail(), p));
}

Result<BatPtr> TopN(const BatPtr& b, size_t n, bool descending) {
  const size_t k = std::min(n, b->size());
  const Column& tail = *b->tail();
  SelVec idx;
  // The key order per type; ties always break by ascending position (the
  // stable order), so sequential, parallel, and scalar-reference TopN agree
  // on duplicate keys.
  if (tail.type() == ValType::kStr) {
    if (tail.kind() == ColumnKind::kDict) {
      // Sorted dictionary: compare codes instead of heap strings.
      const uint32_t* kd =
          static_cast<const DictStrColumn&>(tail).codes().data();
      idx = TopKPositions(b->size(), k, [kd, descending](uint32_t a, uint32_t c) {
        return descending ? kd[c] < kd[a] : kd[a] < kd[c];
      });
    } else {
      const auto& sc = static_cast<const StrColumn&>(tail);
      idx = TopKPositions(b->size(), k, [&sc, descending](uint32_t a, uint32_t c) {
        const int cmp = sc.GetString(a).compare(sc.GetString(c));
        return descending ? cmp > 0 : cmp < 0;
      });
    }
  } else if (tail.type() == ValType::kDbl) {
    std::vector<double> keys;
    kernels::ExtractDoubleKeys(tail, &keys);
    const double* kd = keys.data();
    idx = TopKPositions(b->size(), k, [kd, descending](uint32_t a, uint32_t c) {
      return descending ? kd[c] < kd[a] : kd[a] < kd[c];
    });
  } else {
    std::vector<int64_t> scratch;
    const Span<int64_t> keys = kernels::Int64KeySpan(tail, &scratch);
    const int64_t* kd = keys.data;
    idx = TopKPositions(b->size(), k, [kd, descending](uint32_t a, uint32_t c) {
      return descending ? kd[c] < kd[a] : kd[a] < kd[c];
    });
  }
  BatPtr out = FilterBySel(*b, idx);
  // Top-n permutes rows: the inherited order flags no longer hold.
  // Ascending top-n is genuinely tail-sorted; descending is not.
  Bat::Properties p = out->props();
  p.hsorted = false;
  p.tsorted = !descending;
  return BatPtr(std::make_shared<Bat>(out->head(), out->tail(), p));
}

namespace {

Result<ColumnPtr> ArithKernel(const std::vector<double>& x, const std::vector<double>& y,
                              ArithOp op) {
  std::vector<double> out(x.size());
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * y[i];
      break;
    case ArithOp::kDiv:
      for (size_t i = 0; i < x.size(); ++i) {
        if (y[i] == 0) return Status::InvalidArgument("division by zero");
        out[i] = x[i] / y[i];
      }
      break;
  }
  return ColumnPtr(std::make_shared<DblColumn>(ValType::kDbl, std::move(out)));
}

}  // namespace

Result<BatPtr> Arith(const BatPtr& a, const BatPtr& b, ArithOp op) {
  DCY_RETURN_NOT_OK(CheckNumeric(*a, "arith"));
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "arith"));
  if (a->size() != b->size()) return Status::InvalidArgument("arith: size mismatch");
  std::vector<double> x, y;
  kernels::ExtractDoubleKeys(*a->tail(), &x);
  kernels::ExtractDoubleKeys(*b->tail(), &y);
  DCY_ASSIGN_OR_RETURN(ColumnPtr out, ArithKernel(x, y, op));
  Bat::Properties p;
  p.hsorted = a->props().hsorted;
  p.hkey = a->props().hkey;
  return BatPtr(std::make_shared<Bat>(a->head(), std::move(out), p));
}

Result<BatPtr> ArithConst(const BatPtr& a, const Value& v, ArithOp op) {
  DCY_RETURN_NOT_OK(CheckNumeric(*a, "arithConst"));
  const double y = v.AsDouble();
  if (op == ArithOp::kDiv && y == 0) return Status::InvalidArgument("division by zero");
  std::vector<double> x;
  kernels::ExtractDoubleKeys(*a->tail(), &x);
  std::vector<double> out(x.size());
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y;
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y;
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * y;
      break;
    case ArithOp::kDiv:
      for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] / y;
      break;
  }
  Bat::Properties p;
  p.hsorted = a->props().hsorted;
  p.hkey = a->props().hkey;
  return BatPtr(std::make_shared<Bat>(
      a->head(), std::make_shared<DblColumn>(ValType::kDbl, std::move(out)), p));
}

BatPtr ProjectConst(const BatPtr& b, const Value& v) {
  const size_t n = b->size();
  ColumnPtr tail;
  switch (v.type) {
    case ValType::kOid:
      tail = std::make_shared<OidColumn>(
          ValType::kOid, std::vector<Oid>(n, static_cast<Oid>(v.i)));
      break;
    case ValType::kInt:
    case ValType::kDate:
      tail = std::make_shared<IntColumn>(
          v.type, std::vector<int32_t>(n, static_cast<int32_t>(v.i)));
      break;
    case ValType::kLng:
      tail = std::make_shared<LngColumn>(ValType::kLng, std::vector<int64_t>(n, v.i));
      break;
    case ValType::kDbl:
      tail = std::make_shared<DblColumn>(ValType::kDbl, std::vector<double>(n, v.d));
      break;
    case ValType::kStr: {
      std::vector<uint32_t> offsets(n + 1);
      std::string heap;
      heap.reserve(n * v.s.size());
      for (size_t i = 0; i < n; ++i) {
        heap.append(v.s);
        offsets[i + 1] = static_cast<uint32_t>(heap.size());
      }
      tail = std::make_shared<StrColumn>(std::move(offsets), std::move(heap));
      break;
    }
  }
  Bat::Properties p;
  p.hsorted = b->props().hsorted;
  p.hkey = b->props().hkey;
  p.tsorted = true;
  return BatPtr(std::make_shared<Bat>(b->head(), std::move(tail), p));
}

}  // namespace dcy::bat
