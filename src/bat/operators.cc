#include "bat/operators.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"

namespace dcy::bat {

namespace {

/// Integer family (oid/int/lng/date) members are join-compatible.
bool IsIntegerFamily(ValType t) {
  return t == ValType::kOid || t == ValType::kInt || t == ValType::kLng ||
         t == ValType::kDate;
}

Status CheckJoinable(ValType a, ValType b) {
  if (IsIntegerFamily(a) && IsIntegerFamily(b)) return Status::OK();
  if (a == b) return Status::OK();
  return Status::InvalidArgument(std::string("join type mismatch: ") + ValTypeName(a) +
                                 " vs " + ValTypeName(b));
}

Bat::Properties HeadOrderedProps(const Bat& l) {
  Bat::Properties p;
  p.hsorted = l.props().hsorted;
  return p;
}

/// Emits [l.head[i], r.tail[j]] pairs for matches of l.tail[i] == r.head[j],
/// probing l in order (stable on l).
template <typename Key, typename LKey, typename RKey>
BatPtr HashJoinImpl(const Bat& l, const Bat& r, LKey lkey, RKey rkey) {
  std::unordered_map<Key, std::vector<size_t>> build;
  build.reserve(r.size());
  for (size_t j = 0; j < r.size(); ++j) build[rkey(j)].push_back(j);

  ColumnBuilder head_out(l.head_type());
  ColumnBuilder tail_out(r.tail_type());
  for (size_t i = 0; i < l.size(); ++i) {
    auto it = build.find(lkey(i));
    if (it == build.end()) continue;
    for (size_t j : it->second) {
      head_out.AppendValue(l.head()->GetValue(i));
      tail_out.AppendValue(r.tail()->GetValue(j));
    }
  }
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), HeadOrderedProps(l)));
}

/// Merge join for sorted l.tail / r.head (paper §3.1: "sorted columns lead
/// to sort-merge join operations").
BatPtr MergeJoinImpl(const Bat& l, const Bat& r) {
  ColumnBuilder head_out(l.head_type());
  ColumnBuilder tail_out(r.tail_type());
  size_t i = 0, j = 0;
  while (i < l.size() && j < r.size()) {
    const int cmp = CompareRows(*l.tail(), i, *r.head(), j);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      // Emit the cross product of the equal runs.
      size_t j_end = j;
      while (j_end < r.size() && CompareRows(*l.tail(), i, *r.head(), j_end) == 0) ++j_end;
      size_t i_end = i;
      while (i_end < l.size() && CompareRows(*l.tail(), i_end, *r.head(), j) == 0) ++i_end;
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          head_out.AppendValue(l.head()->GetValue(a));
          tail_out.AppendValue(r.tail()->GetValue(b));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), HeadOrderedProps(l)));
}

/// Set of the head values of r, for semijoin/kdiff/kunion.
struct HeadSet {
  std::unordered_map<int64_t, bool> ints;
  std::unordered_map<std::string_view, bool> strs;
  bool is_str = false;

  explicit HeadSet(const Bat& r) {
    is_str = r.head_type() == ValType::kStr;
    for (size_t j = 0; j < r.size(); ++j) {
      if (is_str) {
        strs.emplace(r.head()->GetString(j), true);
      } else {
        ints.emplace(r.head()->GetInt64(j), true);
      }
    }
  }

  bool Contains(const Column& head, size_t i) const {
    if (is_str) return strs.count(head.GetString(i)) > 0;
    return ints.count(head.GetInt64(i)) > 0;
  }
};

BatPtr FilterByPositions(const Bat& b, const std::vector<size_t>& keep) {
  ColumnBuilder head_out(b.head_type());
  ColumnBuilder tail_out(b.tail_type());
  for (size_t i : keep) {
    head_out.AppendValue(b.head()->GetValue(i));
    tail_out.AppendValue(b.tail()->GetValue(i));
  }
  Bat::Properties p;
  p.hsorted = b.props().hsorted;  // positional filters keep order
  p.tsorted = b.props().tsorted;
  p.hkey = b.props().hkey;
  p.tkey = b.props().tkey;
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), p));
}

bool ValueLE(const Value& a, const Value& b) {
  if (a.type == ValType::kStr) return a.s <= b.s;
  if (a.type == ValType::kDbl || b.type == ValType::kDbl) return a.AsDouble() <= b.AsDouble();
  return a.AsInt64() <= b.AsInt64();
}

bool ValueEQ(const Column& c, size_t i, const Value& v) {
  if (c.type() == ValType::kStr) return c.GetString(i) == v.s;
  if (c.type() == ValType::kDbl || v.type == ValType::kDbl) {
    return c.GetDouble(i) == v.AsDouble();
  }
  return c.GetInt64(i) == v.AsInt64();
}

Status CheckNumeric(const Bat& b, const char* op) {
  if (b.tail_type() == ValType::kStr) {
    return Status::InvalidArgument(std::string(op) + " on string tail");
  }
  return Status::OK();
}

}  // namespace

BatPtr Reverse(const BatPtr& b) {
  Bat::Properties p;
  p.hsorted = b->props().tsorted;
  p.hkey = b->props().tkey;
  p.tsorted = b->props().hsorted;
  p.tkey = b->props().hkey;
  return BatPtr(std::make_shared<Bat>(b->tail(), b->head(), p));
}

BatPtr MarkT(const BatPtr& b, Oid base) {
  Bat::Properties p;
  p.hsorted = b->props().hsorted;
  p.hkey = b->props().hkey;
  p.tsorted = true;
  p.tkey = true;
  return BatPtr(std::make_shared<Bat>(b->head(), MakeDenseOid(base, b->size()), p));
}

BatPtr MarkH(const BatPtr& b, Oid base) {
  Bat::Properties p;
  p.hsorted = true;
  p.hkey = true;
  p.tsorted = b->props().tsorted;
  p.tkey = b->props().tkey;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(base, b->size()), b->tail(), p));
}

BatPtr Mirror(const BatPtr& b) {
  Bat::Properties p;
  p.hsorted = p.tsorted = b->props().hsorted;
  p.hkey = p.tkey = b->props().hkey;
  return BatPtr(std::make_shared<Bat>(b->head(), b->head(), p));
}

Result<BatPtr> Slice(const BatPtr& b, size_t lo, size_t hi) {
  if (lo > hi || hi > b->size()) {
    return Status::OutOfRange("slice [" + std::to_string(lo) + "," + std::to_string(hi) +
                              ") of " + std::to_string(b->size()));
  }
  std::vector<size_t> keep(hi - lo);
  std::iota(keep.begin(), keep.end(), lo);
  return FilterByPositions(*b, keep);
}

Result<BatPtr> Join(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->tail_type(), r->head_type()));
  if (l->props().tsorted && r->props().hsorted) {
    return MergeJoinImpl(*l, *r);
  }
  if (l->tail_type() == ValType::kStr) {
    return HashJoinImpl<std::string>(
        *l, *r, [&](size_t i) { return std::string(l->tail()->GetString(i)); },
        [&](size_t j) { return std::string(r->head()->GetString(j)); });
  }
  if (l->tail_type() == ValType::kDbl) {
    return HashJoinImpl<int64_t>(
        *l, *r,
        [&](size_t i) {
          double d = l->tail()->GetDouble(i);
          int64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          return bits;
        },
        [&](size_t j) {
          double d = r->head()->GetDouble(j);
          int64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          return bits;
        });
  }
  return HashJoinImpl<int64_t>(
      *l, *r, [&](size_t i) { return l->tail()->GetInt64(i); },
      [&](size_t j) { return r->head()->GetInt64(j); });
}

Result<BatPtr> LeftJoin(const BatPtr& l, const BatPtr& r) {
  // Our hash join probes l in order already; merge join also preserves l
  // order for key-unique r.
  return Join(l, r);
}

Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  HeadSet set(*r);
  std::vector<size_t> keep;
  for (size_t i = 0; i < l->size(); ++i) {
    if (set.Contains(*l->head(), i)) keep.push_back(i);
  }
  return FilterByPositions(*l, keep);
}

Result<BatPtr> KDiff(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  HeadSet set(*r);
  std::vector<size_t> keep;
  for (size_t i = 0; i < l->size(); ++i) {
    if (!set.Contains(*l->head(), i)) keep.push_back(i);
  }
  return FilterByPositions(*l, keep);
}

Result<BatPtr> KUnion(const BatPtr& l, const BatPtr& r) {
  DCY_RETURN_NOT_OK(CheckJoinable(l->head_type(), r->head_type()));
  if (l->tail_type() != r->tail_type()) {
    return Status::InvalidArgument("kunion tail type mismatch");
  }
  HeadSet set(*l);
  ColumnBuilder head_out(l->head_type());
  ColumnBuilder tail_out(l->tail_type());
  for (size_t i = 0; i < l->size(); ++i) {
    head_out.AppendValue(l->head()->GetValue(i));
    tail_out.AppendValue(l->tail()->GetValue(i));
  }
  for (size_t j = 0; j < r->size(); ++j) {
    if (!set.Contains(*r->head(), j)) {
      head_out.AppendValue(r->head()->GetValue(j));
      tail_out.AppendValue(r->tail()->GetValue(j));
    }
  }
  return BatPtr(std::make_shared<Bat>(head_out.Finish(), tail_out.Finish(), Bat::Properties{}));
}

Result<BatPtr> Select(const BatPtr& b, const Value& v) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < b->size(); ++i) {
    if (ValueEQ(*b->tail(), i, v)) keep.push_back(i);
  }
  return FilterByPositions(*b, keep);
}

Result<BatPtr> SelectRange(const BatPtr& b, const Value& lo, const Value& hi) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < b->size(); ++i) {
    const Value x = b->tail()->GetValue(i);
    if (ValueLE(lo, x) && ValueLE(x, hi)) keep.push_back(i);
  }
  return FilterByPositions(*b, keep);
}

Result<BatPtr> USelect(const BatPtr& b, const Value& v) {
  DCY_ASSIGN_OR_RETURN(BatPtr selected, Select(b, v));
  // Head-only result: the tail carries no information (void/dense 0).
  Bat::Properties p;
  p.hsorted = selected->props().hsorted;
  p.hkey = selected->props().hkey;
  p.tsorted = true;
  return BatPtr(std::make_shared<Bat>(selected->head(), MakeDenseOid(0, selected->size()), p));
}

Result<BatPtr> GroupId(const BatPtr& b) {
  ColumnBuilder gid_out(ValType::kOid);
  if (b->tail_type() == ValType::kStr) {
    std::unordered_map<std::string, Oid> groups;
    for (size_t i = 0; i < b->size(); ++i) {
      auto [it, _] = groups.try_emplace(std::string(b->tail()->GetString(i)),
                                        static_cast<Oid>(groups.size()));
      gid_out.AppendInt64(static_cast<int64_t>(it->second));
    }
  } else {
    std::unordered_map<int64_t, Oid> groups;
    for (size_t i = 0; i < b->size(); ++i) {
      int64_t key;
      if (b->tail_type() == ValType::kDbl) {
        double d = b->tail()->GetDouble(i);
        std::memcpy(&key, &d, sizeof(key));
      } else {
        key = b->tail()->GetInt64(i);
      }
      auto [it, _] = groups.try_emplace(key, static_cast<Oid>(groups.size()));
      gid_out.AppendInt64(static_cast<int64_t>(it->second));
    }
  }
  Bat::Properties p;
  p.hsorted = b->props().hsorted;
  p.hkey = b->props().hkey;
  return BatPtr(std::make_shared<Bat>(b->head(), gid_out.Finish(), p));
}

Result<BatPtr> GroupValues(const BatPtr& b) {
  DCY_ASSIGN_OR_RETURN(BatPtr gids, GroupId(b));
  // First row of each group provides the representative value.
  size_t num_groups = 0;
  for (size_t i = 0; i < gids->size(); ++i) {
    num_groups = std::max<size_t>(num_groups,
                                  static_cast<size_t>(gids->tail()->GetInt64(i)) + 1);
  }
  std::vector<bool> seen(num_groups, false);
  ColumnBuilder val_out(b->tail_type());
  std::vector<Value> reps(num_groups);
  for (size_t i = 0; i < b->size(); ++i) {
    const size_t g = static_cast<size_t>(gids->tail()->GetInt64(i));
    if (!seen[g]) {
      seen[g] = true;
      reps[g] = b->tail()->GetValue(i);
    }
  }
  for (size_t g = 0; g < num_groups; ++g) val_out.AppendValue(reps[g]);
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(0, num_groups), val_out.Finish(), p));
}

uint64_t Count(const BatPtr& b) { return b->size(); }

Result<Value> Sum(const BatPtr& b) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "sum"));
  if (b->tail_type() == ValType::kDbl) {
    double s = 0;
    for (size_t i = 0; i < b->size(); ++i) s += b->tail()->GetDouble(i);
    return Value::MakeDbl(s);
  }
  int64_t s = 0;
  for (size_t i = 0; i < b->size(); ++i) s += b->tail()->GetInt64(i);
  return Value::MakeLng(s);
}

Result<Value> Min(const BatPtr& b) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "min"));
  if (b->size() == 0) return Status::InvalidArgument("min of empty BAT");
  size_t best = 0;
  for (size_t i = 1; i < b->size(); ++i) {
    if (CompareRows(*b->tail(), i, *b->tail(), best) < 0) best = i;
  }
  return b->tail()->GetValue(best);
}

Result<Value> Max(const BatPtr& b) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "max"));
  if (b->size() == 0) return Status::InvalidArgument("max of empty BAT");
  size_t best = 0;
  for (size_t i = 1; i < b->size(); ++i) {
    if (CompareRows(*b->tail(), i, *b->tail(), best) > 0) best = i;
  }
  return b->tail()->GetValue(best);
}

Result<Value> Avg(const BatPtr& b) {
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "avg"));
  if (b->size() == 0) return Status::InvalidArgument("avg of empty BAT");
  double s = 0;
  for (size_t i = 0; i < b->size(); ++i) s += b->tail()->GetDouble(i);
  return Value::MakeDbl(s / static_cast<double>(b->size()));
}

Result<BatPtr> SumPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups) {
  DCY_RETURN_NOT_OK(CheckNumeric(*values, "sumPerGroup"));
  if (values->size() != gids->size()) {
    return Status::InvalidArgument("sumPerGroup: values/gids not aligned");
  }
  std::vector<double> sums(num_groups, 0.0);
  for (size_t i = 0; i < values->size(); ++i) {
    const size_t g = static_cast<size_t>(gids->tail()->GetInt64(i));
    if (g >= num_groups) return Status::OutOfRange("group id out of range");
    sums[g] += values->tail()->GetDouble(i);
  }
  ColumnBuilder out(ValType::kDbl);
  for (double s : sums) out.AppendDouble(s);
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(0, num_groups), out.Finish(), p));
}

Result<BatPtr> CountPerGroup(const BatPtr& gids, size_t num_groups) {
  std::vector<int64_t> counts(num_groups, 0);
  for (size_t i = 0; i < gids->size(); ++i) {
    const size_t g = static_cast<size_t>(gids->tail()->GetInt64(i));
    if (g >= num_groups) return Status::OutOfRange("group id out of range");
    ++counts[g];
  }
  ColumnBuilder out(ValType::kLng);
  for (int64_t c : counts) out.AppendInt64(c);
  Bat::Properties p;
  p.hsorted = p.hkey = true;
  return BatPtr(std::make_shared<Bat>(MakeDenseOid(0, num_groups), out.Finish(), p));
}

Result<BatPtr> Sort(const BatPtr& b) {
  std::vector<size_t> idx(b->size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t c) {
    return CompareRows(*b->tail(), a, *b->tail(), c) < 0;
  });
  BatPtr out = FilterByPositions(*b, idx);
  Bat::Properties p = out->props();
  p.tsorted = true;
  p.hsorted = false;
  return BatPtr(std::make_shared<Bat>(out->head(), out->tail(), p));
}

Result<BatPtr> TopN(const BatPtr& b, size_t n, bool descending) {
  std::vector<size_t> idx(b->size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  const size_t k = std::min(n, b->size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k), idx.end(),
                    [&](size_t a, size_t c) {
                      const int cmp = CompareRows(*b->tail(), a, *b->tail(), c);
                      return descending ? cmp > 0 : cmp < 0;
                    });
  idx.resize(k);
  return FilterByPositions(*b, idx);
}

Result<BatPtr> Arith(const BatPtr& a, const BatPtr& b, ArithOp op) {
  DCY_RETURN_NOT_OK(CheckNumeric(*a, "arith"));
  DCY_RETURN_NOT_OK(CheckNumeric(*b, "arith"));
  if (a->size() != b->size()) return Status::InvalidArgument("arith: size mismatch");
  ColumnBuilder out(ValType::kDbl);
  for (size_t i = 0; i < a->size(); ++i) {
    const double x = a->tail()->GetDouble(i);
    const double y = b->tail()->GetDouble(i);
    switch (op) {
      case ArithOp::kAdd: out.AppendDouble(x + y); break;
      case ArithOp::kSub: out.AppendDouble(x - y); break;
      case ArithOp::kMul: out.AppendDouble(x * y); break;
      case ArithOp::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        out.AppendDouble(x / y);
        break;
    }
  }
  Bat::Properties p;
  p.hsorted = a->props().hsorted;
  p.hkey = a->props().hkey;
  return BatPtr(std::make_shared<Bat>(a->head(), out.Finish(), p));
}

Result<BatPtr> ArithConst(const BatPtr& a, const Value& v, ArithOp op) {
  DCY_RETURN_NOT_OK(CheckNumeric(*a, "arithConst"));
  ColumnBuilder out(ValType::kDbl);
  const double y = v.AsDouble();
  for (size_t i = 0; i < a->size(); ++i) {
    const double x = a->tail()->GetDouble(i);
    switch (op) {
      case ArithOp::kAdd: out.AppendDouble(x + y); break;
      case ArithOp::kSub: out.AppendDouble(x - y); break;
      case ArithOp::kMul: out.AppendDouble(x * y); break;
      case ArithOp::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        out.AppendDouble(x / y);
        break;
    }
  }
  Bat::Properties p;
  p.hsorted = a->props().hsorted;
  p.hkey = a->props().hkey;
  return BatPtr(std::make_shared<Bat>(a->head(), out.Finish(), p));
}

BatPtr ProjectConst(const BatPtr& b, const Value& v) {
  ColumnBuilder out(v.type);
  for (size_t i = 0; i < b->size(); ++i) out.AppendValue(v);
  Bat::Properties p;
  p.hsorted = b->props().hsorted;
  p.hkey = b->props().hkey;
  p.tsorted = true;
  return BatPtr(std::make_shared<Bat>(b->head(), out.Finish(), p));
}

}  // namespace dcy::bat
