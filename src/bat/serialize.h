// BAT <-> wire-buffer serialization for ring transport and cold storage.
// The format is a self-describing little-endian layout with a CRC32 footer;
// the zero-copy RDMA path (src/rdma) hands the encoded buffer across nodes
// without re-encoding. Encoding is bulk: the exact frame size is computed up
// front, the buffer is sized once, and fixed-width columns land with a
// single memcpy (dense oid ranges encode as two words of metadata).
//
// Two frame versions coexist. v1 is the uncompressed legacy layout (emitted
// when enc::WireCompressionEnabled() is off). v2 adds a per-column encoding
// byte selecting a codec — pass-through, dictionary (sorted dict +
// bit-packed codes for low-cardinality strings), or FOR (reference +
// bit-packed deltas for sorted integers) — plus the sender's memoized
// sortedness so receivers never rescan. Deserialize accepts both.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "bat/bat.h"
#include "bat/encoding.h"
#include "common/status.h"

namespace dcy::bat {

/// Per-frame codec accounting, accumulated into the ring's bandwidth
/// counters (RingCluster::BandwidthMetrics).
struct CodecStats {
  size_t raw_bytes = 0;       ///< what the v1 layout would have shipped
  size_t wire_bytes = 0;      ///< actual frame size
  uint32_t dict_columns = 0;
  uint32_t for_columns = 0;
  uint32_t plain_columns = 0;
};

/// \brief Plans the per-column codecs for one BAT once, then answers both
/// halves of the ring's pooled-frame handshake — Acquire(encoded_size())
/// followed by SerializeInto() — without re-running codec analysis.
class FrameEncoder {
 public:
  explicit FrameEncoder(const Bat& b);
  FrameEncoder(const FrameEncoder&) = delete;
  FrameEncoder& operator=(const FrameEncoder&) = delete;
  ~FrameEncoder();

  size_t encoded_size() const;
  void SerializeInto(std::string* out) const;
  const CodecStats& stats() const;

 private:
  struct Plan;
  std::unique_ptr<Plan> plan_;
};

/// Exact encoded frame size of `b` (header, both columns, CRC footer).
/// Convenience wrapper over FrameEncoder: deterministic, but plans codecs
/// afresh — pair EncodedSize/SerializeInto calls are fine, the ring hot
/// path uses FrameEncoder to plan once.
size_t EncodedSize(const Bat& b);

/// Encodes into `*out`, replacing its contents. The buffer is resized to
/// EncodedSize(b) exactly — callers reusing pooled frames pay no
/// reallocation once the frame has grown to the working-set BAT size.
void SerializeInto(const Bat& b, std::string* out);

/// Encodes a BAT (header, both columns, properties, CRC).
std::string Serialize(const Bat& b);

/// Decodes; verifies magic, version and CRC. Accepts v1 and v2 frames;
/// dictionary columns decode to DictStrColumn (kernels run on the codes),
/// FOR columns unpack to plain fixed columns with sortedness pre-seeded.
Result<BatPtr> Deserialize(std::string_view buffer);

/// CRC32 (IEEE, table-driven) over a byte range.
uint32_t Crc32(const void* data, size_t n);

}  // namespace dcy::bat
