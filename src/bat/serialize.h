// BAT <-> wire-buffer serialization for ring transport and cold storage.
// The format is a self-describing little-endian layout with a CRC32 footer;
// the zero-copy RDMA path (src/rdma) hands the encoded buffer across nodes
// without re-encoding.
#pragma once

#include <cstdint>
#include <string>

#include "bat/bat.h"
#include "common/status.h"

namespace dcy::bat {

/// Encodes a BAT (header, both columns, properties, CRC).
std::string Serialize(const Bat& b);

/// Decodes; verifies magic, version and CRC.
Result<BatPtr> Deserialize(const std::string& buffer);

/// CRC32 (IEEE, table-driven) over a byte range.
uint32_t Crc32(const void* data, size_t n);

}  // namespace dcy::bat
