// BAT <-> wire-buffer serialization for ring transport and cold storage.
// The format is a self-describing little-endian layout with a CRC32 footer;
// the zero-copy RDMA path (src/rdma) hands the encoded buffer across nodes
// without re-encoding. Encoding is bulk: the exact frame size is computed up
// front, the buffer is sized once, and fixed-width columns land with a
// single memcpy (dense oid ranges encode as two words of metadata).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bat/bat.h"
#include "common/status.h"

namespace dcy::bat {

/// Exact encoded frame size of `b` (header, both columns, CRC footer).
size_t EncodedSize(const Bat& b);

/// Encodes into `*out`, replacing its contents. The buffer is resized to
/// EncodedSize(b) exactly — callers reusing pooled frames pay no
/// reallocation once the frame has grown to the working-set BAT size.
void SerializeInto(const Bat& b, std::string* out);

/// Encodes a BAT (header, both columns, properties, CRC).
std::string Serialize(const Bat& b);

/// Decodes; verifies magic, version and CRC.
Result<BatPtr> Deserialize(std::string_view buffer);

/// CRC32 (IEEE, table-driven) over a byte range.
uint32_t Crc32(const void* data, size_t n);

}  // namespace dcy::bat
