#include "bat/kernels.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace dcy::bat::kernels {

namespace {

/// Mirrors the scalar reference ValueLE (bat/scalar_reference.cc) for the
/// boxed fallback on exotic type mixes.
bool ValueLE(const Value& a, const Value& b) {
  if (a.type == ValType::kStr) return a.s <= b.s;
  if (a.type == ValType::kDbl || b.type == ValType::kDbl) return a.AsDouble() <= b.AsDouble();
  return a.AsInt64() <= b.AsInt64();
}

/// Branchless filter append: writes every candidate position and bumps the
/// cursor by the predicate, then shrinks — no per-row branch misprediction,
/// no push_back growth checks.
template <typename Pred>
void CompactLoop(size_t n, SelVec* sel, Pred pred) {
  const size_t base = sel->size();
  sel->resize(base + n);
  uint32_t* out = sel->data() + base;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    out[k] = static_cast<uint32_t>(i);
    k += pred(i) ? 1 : 0;
  }
  sel->resize(base + k);
}

template <typename T, typename K>
void RangeLoop(const T* d, size_t n, K lo, K hi, SelVec* sel) {
  CompactLoop(n, sel, [&](size_t i) {
    const K x = static_cast<K>(d[i]);
    return lo <= x && x <= hi;
  });
}

/// Integer column with at least one double bound: each bound compares in its
/// own domain, exactly as ValueLE does pairwise.
template <typename T>
void MixedRangeLoop(const T* d, size_t n, const Value& lo, const Value& hi, SelVec* sel) {
  const bool lo_dbl = lo.type == ValType::kDbl;
  const bool hi_dbl = hi.type == ValType::kDbl;
  const int64_t loi = lo.AsInt64(), hii = hi.AsInt64();
  const double lod = lo.AsDouble(), hid = hi.AsDouble();
  for (size_t i = 0; i < n; ++i) {
    const int64_t x = static_cast<int64_t>(d[i]);
    const bool ok = (lo_dbl ? lod <= static_cast<double>(x) : loi <= x) &&
                    (hi_dbl ? static_cast<double>(x) <= hid : x <= hii);
    if (ok) sel->push_back(static_cast<uint32_t>(i));
  }
}

template <typename T, typename K>
void EqLoop(const T* d, size_t n, K v, SelVec* sel) {
  CompactLoop(n, sel, [&](size_t i) { return static_cast<K>(d[i]) == v; });
}

/// Appends the contiguous run [i_lo, i_hi] of positions in one bulk fill.
void PushRun(int64_t i_lo, int64_t i_hi, SelVec* sel) {
  const size_t base = sel->size();
  sel->resize(base + static_cast<size_t>(i_hi - i_lo + 1));
  uint32_t* out = sel->data() + base;
  for (int64_t i = i_lo; i <= i_hi; ++i) *out++ = static_cast<uint32_t>(i);
}

template <typename T>
std::vector<T> GatherVec(const T* src, const uint32_t* idx, size_t n) {
  std::vector<T> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = src[idx[i]];
  return out;
}

}  // namespace

bool IsContiguous(const uint32_t* idx, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (idx[i] != idx[0] + i) return false;
  }
  return true;
}

ColumnPtr Gather(const Column& c, const uint32_t* idx, size_t n) {
  switch (c.kind()) {
    case ColumnKind::kDense: {
      const auto& d = static_cast<const DenseOidColumn&>(c);
      if (IsContiguous(idx, n)) {
        return MakeDenseOid(d.seqbase() + (n > 0 ? idx[0] : 0), n);
      }
      std::vector<Oid> out(n);
      for (size_t i = 0; i < n; ++i) out[i] = d.seqbase() + idx[i];
      return std::make_shared<OidColumn>(ValType::kOid, std::move(out));
    }
    case ColumnKind::kStr: {
      ColumnBuilder b(ValType::kStr);
      b.AppendGather(c, idx, n);
      return b.Finish();
    }
    case ColumnKind::kFixed:
      switch (c.type()) {
        case ValType::kOid:
          return std::make_shared<OidColumn>(
              ValType::kOid, GatherVec(static_cast<const Oid*>(c.RawData()), idx, n));
        case ValType::kInt:
        case ValType::kDate:
          return std::make_shared<IntColumn>(
              c.type(), GatherVec(static_cast<const int32_t*>(c.RawData()), idx, n));
        case ValType::kLng:
          return std::make_shared<LngColumn>(
              ValType::kLng, GatherVec(static_cast<const int64_t*>(c.RawData()), idx, n));
        case ValType::kDbl:
          return std::make_shared<DblColumn>(
              ValType::kDbl, GatherVec(static_cast<const double*>(c.RawData()), idx, n));
        case ValType::kStr: break;  // unreachable: kStr kind handled above
      }
      break;
  }
  DCY_FATAL() << "Gather: bad column layout";
  return nullptr;
}

size_t SelectRange(const Column& c, const Value& lo, const Value& hi, SelVec* sel) {
  const size_t before = sel->size();
  const size_t n = c.size();
  if (c.type() == ValType::kStr) {
    if (lo.type == ValType::kStr && hi.type == ValType::kStr) {
      const auto& sc = static_cast<const StrColumn&>(c);
      const std::string_view lov = lo.s, hiv = hi.s;
      for (size_t i = 0; i < n; ++i) {
        const std::string_view v = sc.GetString(i);
        if (lov <= v && v <= hiv) sel->push_back(static_cast<uint32_t>(i));
      }
    } else {
      // Exotic mix; keep the boxed semantics bit-for-bit.
      for (size_t i = 0; i < n; ++i) {
        const Value x = c.GetValue(i);
        if (ValueLE(lo, x) && ValueLE(x, hi)) sel->push_back(static_cast<uint32_t>(i));
      }
    }
    return sel->size() - before;
  }
  if (c.type() == ValType::kDbl) {
    RangeLoop(static_cast<const double*>(c.RawData()), n, lo.AsDouble(), hi.AsDouble(), sel);
    return sel->size() - before;
  }
  const bool any_dbl_bound = lo.type == ValType::kDbl || hi.type == ValType::kDbl;
  if (c.kind() == ColumnKind::kDense) {
    const int64_t seq = static_cast<int64_t>(static_cast<const DenseOidColumn&>(c).seqbase());
    if (!any_dbl_bound) {
      // Dense fast path: the qualifying rows are one contiguous run.
      const int64_t i_lo = lo.AsInt64() <= seq ? 0 : lo.AsInt64() - seq;
      const int64_t i_hi = std::min<int64_t>(static_cast<int64_t>(n) - 1, hi.AsInt64() - seq);
      if (i_lo <= i_hi) PushRun(i_lo, i_hi, sel);
    } else {
      std::vector<int64_t> keys;
      ExtractInt64Keys(c, &keys);
      MixedRangeLoop(keys.data(), n, lo, hi, sel);
    }
    return sel->size() - before;
  }
  switch (c.type()) {
    case ValType::kOid:
      if (any_dbl_bound) {
        MixedRangeLoop(static_cast<const Oid*>(c.RawData()), n, lo, hi, sel);
      } else {
        RangeLoop(static_cast<const Oid*>(c.RawData()), n, lo.AsInt64(), hi.AsInt64(), sel);
      }
      break;
    case ValType::kInt:
    case ValType::kDate:
      if (any_dbl_bound) {
        MixedRangeLoop(static_cast<const int32_t*>(c.RawData()), n, lo, hi, sel);
      } else {
        RangeLoop(static_cast<const int32_t*>(c.RawData()), n, lo.AsInt64(), hi.AsInt64(),
                  sel);
      }
      break;
    case ValType::kLng:
      if (any_dbl_bound) {
        MixedRangeLoop(static_cast<const int64_t*>(c.RawData()), n, lo, hi, sel);
      } else {
        RangeLoop(static_cast<const int64_t*>(c.RawData()), n, lo.AsInt64(), hi.AsInt64(),
                  sel);
      }
      break;
    default: DCY_FATAL() << "SelectRange: bad dispatch";
  }
  return sel->size() - before;
}

size_t SelectEq(const Column& c, const Value& v, SelVec* sel) {
  const size_t before = sel->size();
  const size_t n = c.size();
  if (c.type() == ValType::kStr) {
    const auto& sc = static_cast<const StrColumn&>(c);
    const std::string_view key = v.s;
    for (size_t i = 0; i < n; ++i) {
      if (sc.GetString(i) == key) sel->push_back(static_cast<uint32_t>(i));
    }
    return sel->size() - before;
  }
  const bool dbl_domain = c.type() == ValType::kDbl || v.type == ValType::kDbl;
  if (c.kind() == ColumnKind::kDense) {
    const int64_t seq = static_cast<int64_t>(static_cast<const DenseOidColumn&>(c).seqbase());
    if (dbl_domain) {
      const double key = v.AsDouble();
      for (size_t i = 0; i < n; ++i) {
        if (static_cast<double>(seq + static_cast<int64_t>(i)) == key) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
    } else {
      const int64_t key = v.AsInt64();
      if (key >= seq && key < seq + static_cast<int64_t>(n)) {
        sel->push_back(static_cast<uint32_t>(key - seq));
      }
    }
    return sel->size() - before;
  }
  switch (c.type()) {
    case ValType::kOid:
      if (dbl_domain) {
        EqLoop(static_cast<const Oid*>(c.RawData()), n, v.AsDouble(), sel);
      } else {
        EqLoop(static_cast<const Oid*>(c.RawData()), n, v.AsInt64(), sel);
      }
      break;
    case ValType::kInt:
    case ValType::kDate:
      if (dbl_domain) {
        EqLoop(static_cast<const int32_t*>(c.RawData()), n, v.AsDouble(), sel);
      } else {
        EqLoop(static_cast<const int32_t*>(c.RawData()), n, v.AsInt64(), sel);
      }
      break;
    case ValType::kLng:
      if (dbl_domain) {
        EqLoop(static_cast<const int64_t*>(c.RawData()), n, v.AsDouble(), sel);
      } else {
        EqLoop(static_cast<const int64_t*>(c.RawData()), n, v.AsInt64(), sel);
      }
      break;
    case ValType::kDbl:
      EqLoop(static_cast<const double*>(c.RawData()), n, v.AsDouble(), sel);
      break;
    default: DCY_FATAL() << "SelectEq: bad dispatch";
  }
  return sel->size() - before;
}

void ExtractInt64Keys(const Column& c, std::vector<int64_t>* keys) {
  const size_t n = c.size();
  keys->resize(n);
  if (n == 0 && c.type() != ValType::kStr) return;
  int64_t* out = keys->data();
  switch (c.kind()) {
    case ColumnKind::kDense: {
      const int64_t seq =
          static_cast<int64_t>(static_cast<const DenseOidColumn&>(c).seqbase());
      for (size_t i = 0; i < n; ++i) out[i] = seq + static_cast<int64_t>(i);
      return;
    }
    case ColumnKind::kFixed:
      switch (c.type()) {
        case ValType::kOid:
        case ValType::kLng:
        case ValType::kDbl:
          // Same 8-byte width: oid/lng verbatim, dbl by bit pattern (the
          // hash-equality form the scalar reference join uses).
          std::memcpy(out, c.RawData(), n * sizeof(int64_t));
          return;
        case ValType::kInt:
        case ValType::kDate: {
          const auto* d = static_cast<const int32_t*>(c.RawData());
          for (size_t i = 0; i < n; ++i) out[i] = d[i];
          return;
        }
        case ValType::kStr: break;
      }
      break;
    case ColumnKind::kStr: break;
  }
  DCY_FATAL() << "ExtractInt64Keys on " << ValTypeName(c.type()) << " column";
}

void ExtractDoubleKeys(const Column& c, std::vector<double>* keys) {
  const size_t n = c.size();
  keys->resize(n);
  if (n == 0 && c.type() != ValType::kStr) return;
  double* out = keys->data();
  switch (c.kind()) {
    case ColumnKind::kDense: {
      const auto& d = static_cast<const DenseOidColumn&>(c);
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(d.seqbase() + i);
      return;
    }
    case ColumnKind::kFixed:
      switch (c.type()) {
        case ValType::kDbl:
          std::memcpy(out, c.RawData(), n * sizeof(double));
          return;
        case ValType::kOid: {
          const auto* d = static_cast<const Oid*>(c.RawData());
          for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(d[i]);
          return;
        }
        case ValType::kInt:
        case ValType::kDate: {
          const auto* d = static_cast<const int32_t*>(c.RawData());
          for (size_t i = 0; i < n; ++i) out[i] = d[i];
          return;
        }
        case ValType::kLng: {
          const auto* d = static_cast<const int64_t*>(c.RawData());
          for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(d[i]);
          return;
        }
        case ValType::kStr: break;
      }
      break;
    case ColumnKind::kStr: break;
  }
  DCY_FATAL() << "ExtractDoubleKeys on " << ValTypeName(c.type()) << " column";
}

FlatTable::FlatTable(const std::vector<int64_t>& keys) {
  const size_t n = keys.size();
  next_.assign(n, kNone);

  if (n > 0) {
    int64_t min = keys[0], max = keys[0];
    for (int64_t k : keys) {
      min = std::min(min, k);
      max = std::max(max, k);
    }
    // Direct addressing when the span costs at most ~4 slots per row (plus
    // slack for tiny builds): the FK-join common case of a compact domain.
    const uint64_t span = static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
    if (span < 4 * static_cast<uint64_t>(n) + 1024) {
      direct_ = true;
      min_ = min;
      bucket_rows_.assign(span + 1, kNone);
      for (size_t j = n; j-- > 0;) {
        const uint64_t off = static_cast<uint64_t>(keys[j]) - static_cast<uint64_t>(min);
        uint32_t& head = bucket_rows_[off];
        next_[j] = head;  // kNone for the first insert
        head = static_cast<uint32_t>(j);
      }
      return;
    }
  }

  size_t cap = 8;
  while (cap < n * 2) cap <<= 1;  // <= 50% load factor
  mask_ = cap - 1;
  bucket_rows_.assign(cap, kNone);
  bucket_keys_.resize(cap);
  // Insert in reverse row order at the chain head so probes walk ascending
  // rows — bit-identical output order to the scalar reference.
  for (size_t j = n; j-- > 0;) {
    const int64_t key = keys[j];
    uint64_t slot = Hash(key) & mask_;
    while (true) {
      uint32_t& head = bucket_rows_[slot];
      if (head == kNone) {
        head = static_cast<uint32_t>(j);
        bucket_keys_[slot] = key;
        break;
      }
      if (bucket_keys_[slot] == key) {
        next_[j] = head;
        head = static_cast<uint32_t>(j);
        break;
      }
      slot = (slot + 1) & mask_;
    }
  }
}

}  // namespace dcy::bat::kernels
