#include "bat/kernels.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "bat/encoding.h"
#include "common/logging.h"

namespace dcy::bat::kernels {

namespace {

/// Threads that would cooperate on a parallel kernel under `p`: p.workers,
/// or the shared executor's width when p.workers == 0.
size_t EffectiveWorkers(const exec::ExecPolicy& p) {
  return p.workers == 0 ? exec::Executor::Default().workers() : p.workers;
}

}  // namespace

MorselPlan PlanMorsels(size_t n) {
  MorselPlan plan;
  const exec::ExecPolicy policy = exec::GetExecPolicy();
  if (n < policy.min_parallel_rows || n < 2) return plan;
  const size_t workers = EffectiveWorkers(policy);
  if (workers <= 1) return plan;
  plan.parallel = true;
  plan.workers = workers;
  plan.grain = std::max<size_t>(1, policy.morsel_rows);
  plan.morsels = (n + plan.grain - 1) / plan.grain;
  return plan;
}

void ForEachMorsel(const MorselPlan& plan, size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn) {
  exec::Executor::Default().ParallelFor(
      plan.morsels, 1,
      [&](size_t mb, size_t me) {
        for (size_t m = mb; m < me; ++m) {
          const size_t begin = m * plan.grain;
          fn(m, begin, std::min(n, begin + plan.grain));
        }
      },
      plan.workers);
}

namespace {

/// Runs `body(i)` for every row in [0, n): the shared dispatch of the
/// adaptive element-wise kernels (gather, key extraction) — one tight
/// sequential loop, or the same loop per morsel on the executor.
template <typename Body>
void ForEachRow(const MorselPlan& plan, size_t n, const Body& body) {
  if (!plan.parallel) {
    for (size_t i = 0; i < n; ++i) body(i);
  } else {
    ForEachMorsel(plan, n, [&](size_t, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) body(i);
    });
  }
}

/// Mirrors the scalar reference ValueLE (bat/scalar_reference.cc) for the
/// boxed fallback on exotic type mixes.
bool ValueLE(const Value& a, const Value& b) {
  if (a.type == ValType::kStr) return a.s <= b.s;
  if (a.type == ValType::kDbl || b.type == ValType::kDbl) return a.AsDouble() <= b.AsDouble();
  return a.AsInt64() <= b.AsInt64();
}

/// Branchless filter append over rows [begin, end), absolute positions:
/// writes every candidate position and bumps the cursor by the predicate,
/// then shrinks — no per-row branch misprediction, no push_back growth
/// checks.
template <typename Pred>
void CompactLoop(size_t begin, size_t end, SelVec* sel, Pred pred) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t k = 0;
  for (size_t i = begin; i < end; ++i) {
    out[k] = static_cast<uint32_t>(i);
    k += pred(i) ? 1 : 0;
  }
  sel->resize(base + k);
}

template <typename T, typename K>
void RangeLoop(const T* d, size_t begin, size_t end, K lo, K hi, SelVec* sel) {
  CompactLoop(begin, end, sel, [&](size_t i) {
    const K x = static_cast<K>(d[i]);
    return lo <= x && x <= hi;
  });
}

/// Integer rows with at least one double bound: each bound compares in its
/// own domain, exactly as ValueLE does pairwise. `key(i)` yields the int64
/// view of row i (array load or dense iota).
template <typename KeyFn>
void MixedRangeLoop(size_t begin, size_t end, const Value& lo, const Value& hi,
                    SelVec* sel, KeyFn key) {
  const bool lo_dbl = lo.type == ValType::kDbl;
  const bool hi_dbl = hi.type == ValType::kDbl;
  const int64_t loi = lo.AsInt64(), hii = hi.AsInt64();
  const double lod = lo.AsDouble(), hid = hi.AsDouble();
  for (size_t i = begin; i < end; ++i) {
    const int64_t x = key(i);
    const bool ok = (lo_dbl ? lod <= static_cast<double>(x) : loi <= x) &&
                    (hi_dbl ? static_cast<double>(x) <= hid : x <= hii);
    if (ok) sel->push_back(static_cast<uint32_t>(i));
  }
}

template <typename T, typename K>
void EqLoop(const T* d, size_t begin, size_t end, K v, SelVec* sel) {
  CompactLoop(begin, end, sel, [&](size_t i) { return static_cast<K>(d[i]) == v; });
}

/// Appends the contiguous run [i_lo, i_hi] of positions in one bulk fill.
void PushRun(int64_t i_lo, int64_t i_hi, SelVec* sel) {
  const size_t base = sel->size();
  sel->resize(base + static_cast<size_t>(i_hi - i_lo + 1));
  uint32_t* out = sel->data() + base;
  for (int64_t i = i_lo; i <= i_hi; ++i) *out++ = static_cast<uint32_t>(i);
}

template <typename T>
std::vector<T> GatherVec(const T* src, const uint32_t* idx, size_t n) {
  std::vector<T> out(n);
  T* o = out.data();
  ForEachRow(PlanMorsels(n), n, [&](size_t i) { o[i] = src[idx[i]]; });
  return out;
}

}  // namespace

bool IsContiguous(const uint32_t* idx, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (idx[i] != idx[0] + i) return false;
  }
  return true;
}

namespace {

/// Two-pass parallel string gather: pass 1 sizes every output string and
/// prefix-sums per-morsel byte totals into base offsets; pass 2 splices
/// each string into its precomputed slot of a preallocated heap. Offsets
/// and heap ranges are disjoint across morsels, so the writes need no
/// coordination, and the produced bytes are identical to the sequential
/// heap append. Below the parallel threshold the order-carrying builder
/// append runs unchanged.
ColumnPtr GatherStr(const StrColumn& sc, const uint32_t* idx, size_t n) {
  const MorselPlan plan = PlanMorsels(n);
  if (!plan.parallel) {
    ColumnBuilder b(ValType::kStr);
    b.AppendGather(sc, idx, n);
    return b.Finish();
  }
  const uint32_t* offs = sc.offsets().data();
  // Pass 1: per-morsel payload bytes -> exclusive scan of morsel bases.
  std::vector<uint64_t> base(plan.morsels + 1, 0);
  ForEachMorsel(plan, n, [&](size_t m, size_t b, size_t e) {
    uint64_t bytes = 0;
    for (size_t i = b; i < e; ++i) bytes += offs[idx[i] + 1] - offs[idx[i]];
    base[m + 1] = bytes;
  });
  for (size_t m = 0; m < plan.morsels; ++m) base[m + 1] += base[m];
  const uint64_t total = base[plan.morsels];
  DCY_CHECK(total <= 0xFFFFFFFFull) << "string gather exceeds the 4 GiB heap limit";
  // Pass 2: parallel splice.
  std::vector<uint32_t> out_offs(n + 1);
  out_offs[0] = 0;
  std::string heap(static_cast<size_t>(total), '\0');
  char* dst = heap.empty() ? nullptr : &heap[0];
  const char* src = sc.heap().data();
  ForEachMorsel(plan, n, [&](size_t m, size_t b, size_t e) {
    uint64_t cur = base[m];
    for (size_t i = b; i < e; ++i) {
      const uint32_t lo = offs[idx[i]];
      const uint32_t len = offs[idx[i] + 1] - lo;
      if (len > 0) std::memcpy(dst + cur, src + lo, len);
      cur += len;
      out_offs[i + 1] = static_cast<uint32_t>(cur);
    }
  });
  return std::make_shared<StrColumn>(std::move(out_offs), std::move(heap));
}

}  // namespace

ColumnPtr Gather(const Column& c, const uint32_t* idx, size_t n) {
  switch (c.kind()) {
    case ColumnKind::kDense: {
      const auto& d = static_cast<const DenseOidColumn&>(c);
      if (IsContiguous(idx, n)) {
        return MakeDenseOid(d.seqbase() + (n > 0 ? idx[0] : 0), n);
      }
      std::vector<Oid> out(n);
      Oid* o = out.data();
      const Oid seq = d.seqbase();
      ForEachRow(PlanMorsels(n), n, [&](size_t i) { o[i] = seq + idx[i]; });
      return std::make_shared<OidColumn>(ValType::kOid, std::move(out));
    }
    case ColumnKind::kStr:
      return GatherStr(static_cast<const StrColumn&>(c), idx, n);
    case ColumnKind::kDict: {
      // Gather the codes (SIMD) and share the dictionary: the result stays
      // encoded, so downstream selects/groupings keep their code fast paths
      // and no string bytes move.
      const auto& dc = static_cast<const DictStrColumn&>(c);
      const uint32_t* codes = dc.codes().data();
      std::vector<uint32_t> out(n);
      const MorselPlan plan = PlanMorsels(n);
      if (!plan.parallel) {
        enc::GatherU32(codes, idx, n, out.data());
      } else {
        uint32_t* o = out.data();
        ForEachMorsel(plan, n, [&](size_t, size_t b, size_t e) {
          enc::GatherU32(codes, idx + b, e - b, o + b);
        });
      }
      return std::make_shared<DictStrColumn>(dc.dict(), std::move(out));
    }
    case ColumnKind::kFixed:
      switch (c.type()) {
        case ValType::kOid:
          return std::make_shared<OidColumn>(
              ValType::kOid, GatherVec(static_cast<const Oid*>(c.RawData()), idx, n));
        case ValType::kInt:
        case ValType::kDate:
          return std::make_shared<IntColumn>(
              c.type(), GatherVec(static_cast<const int32_t*>(c.RawData()), idx, n));
        case ValType::kLng:
          return std::make_shared<LngColumn>(
              ValType::kLng, GatherVec(static_cast<const int64_t*>(c.RawData()), idx, n));
        case ValType::kDbl:
          return std::make_shared<DblColumn>(
              ValType::kDbl, GatherVec(static_cast<const double*>(c.RawData()), idx, n));
        case ValType::kStr: break;  // unreachable: kStr kind handled above
      }
      break;
  }
  DCY_FATAL() << "Gather: bad column layout";
  return nullptr;
}

namespace {

/// Clamps an int64 range predicate to the int32 domain — the semantics the
/// scalar loop gets from widening each element before comparing. Returns
/// false when no int32 value can satisfy the predicate.
bool ClampToI32(int64_t lo, int64_t hi, int32_t* lo32, int32_t* hi32) {
  constexpr int64_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int32_t>::max();
  if (lo > hi || lo > kMax || hi < kMin) return false;
  *lo32 = static_cast<int32_t>(std::max(lo, kMin));
  *hi32 = static_cast<int32_t>(std::min(hi, kMax));
  return true;
}

/// Filters rows [begin, end) only, appending absolute positions — the
/// morsel building block of the adaptive selects below.
/// SelectRange(c, ...) == SelectRangeSpan(c, 0, c.size(), ...).
size_t SelectRangeSpan(const Column& c, size_t begin, size_t end, const Value& lo,
                       const Value& hi, SelVec* sel) {
  const size_t before = sel->size();
  if (c.type() == ValType::kStr) {
    if (lo.type == ValType::kStr && hi.type == ValType::kStr) {
      if (c.kind() == ColumnKind::kDict) {
        // Sorted dictionary: the string range maps to a code range, so the
        // scan never touches the heap — two binary searches plus a SIMD
        // integer range select over the codes.
        const auto& dc = static_cast<const DictStrColumn&>(c);
        const uint32_t lo_code = dc.LowerBoundCode(lo.s);
        const uint32_t hi_code = dc.UpperBoundCode(hi.s);  // exclusive
        if (lo_code < hi_code) {
          enc::SelectRangeU32(dc.codes().data(), begin, end, lo_code,
                              hi_code - 1, sel);
        }
      } else {
        const auto& sc = static_cast<const StrColumn&>(c);
        const std::string_view lov = lo.s, hiv = hi.s;
        for (size_t i = begin; i < end; ++i) {
          const std::string_view v = sc.GetString(i);
          if (lov <= v && v <= hiv) sel->push_back(static_cast<uint32_t>(i));
        }
      }
    } else {
      // Exotic mix; keep the boxed semantics bit-for-bit.
      for (size_t i = begin; i < end; ++i) {
        const Value x = c.GetValue(i);
        if (ValueLE(lo, x) && ValueLE(x, hi)) sel->push_back(static_cast<uint32_t>(i));
      }
    }
    return sel->size() - before;
  }
  if (c.type() == ValType::kDbl) {
    enc::SelectRangeF64(static_cast<const double*>(c.RawData()), begin, end,
                        lo.AsDouble(), hi.AsDouble(), sel);
    return sel->size() - before;
  }
  const bool any_dbl_bound = lo.type == ValType::kDbl || hi.type == ValType::kDbl;
  if (c.kind() == ColumnKind::kDense) {
    const int64_t seq = static_cast<int64_t>(static_cast<const DenseOidColumn&>(c).seqbase());
    if (!any_dbl_bound) {
      // Dense fast path: the qualifying rows are one contiguous run,
      // clamped to this span.
      const int64_t i_lo = std::max<int64_t>(
          static_cast<int64_t>(begin), lo.AsInt64() <= seq ? 0 : lo.AsInt64() - seq);
      const int64_t i_hi =
          std::min<int64_t>(static_cast<int64_t>(end) - 1, hi.AsInt64() - seq);
      if (i_lo <= i_hi) PushRun(i_lo, i_hi, sel);
    } else {
      MixedRangeLoop(begin, end, lo, hi, sel,
                     [seq](size_t i) { return seq + static_cast<int64_t>(i); });
    }
    return sel->size() - before;
  }
  switch (c.type()) {
    case ValType::kOid: {
      const auto* d = static_cast<const Oid*>(c.RawData());
      if (any_dbl_bound) {
        MixedRangeLoop(begin, end, lo, hi, sel,
                       [d](size_t i) { return static_cast<int64_t>(d[i]); });
      } else {
        // Same bit pattern and the same signed compare RangeLoop's
        // static_cast<int64_t> would do.
        enc::SelectRangeI64(reinterpret_cast<const int64_t*>(d), begin, end,
                            lo.AsInt64(), hi.AsInt64(), sel);
      }
      break;
    }
    case ValType::kInt:
    case ValType::kDate: {
      const auto* d = static_cast<const int32_t*>(c.RawData());
      if (any_dbl_bound) {
        MixedRangeLoop(begin, end, lo, hi, sel,
                       [d](size_t i) { return static_cast<int64_t>(d[i]); });
      } else {
        int32_t lo32 = 0, hi32 = 0;
        if (ClampToI32(lo.AsInt64(), hi.AsInt64(), &lo32, &hi32)) {
          enc::SelectRangeI32(d, begin, end, lo32, hi32, sel);
        }
      }
      break;
    }
    case ValType::kLng: {
      const auto* d = static_cast<const int64_t*>(c.RawData());
      if (any_dbl_bound) {
        MixedRangeLoop(begin, end, lo, hi, sel, [d](size_t i) { return d[i]; });
      } else {
        enc::SelectRangeI64(d, begin, end, lo.AsInt64(), hi.AsInt64(), sel);
      }
      break;
    }
    default: DCY_FATAL() << "SelectRange: bad dispatch";
  }
  return sel->size() - before;
}

size_t SelectEqSpan(const Column& c, size_t begin, size_t end, const Value& v,
                    SelVec* sel) {
  const size_t before = sel->size();
  if (c.type() == ValType::kStr) {
    if (c.kind() == ColumnKind::kDict) {
      // One binary search resolves the key to a code (or proves it absent);
      // the heap is never touched during the scan.
      const auto& dc = static_cast<const DictStrColumn&>(c);
      const uint32_t code = dc.FindCode(v.s);
      if (code != DictStrColumn::kNoCode) {
        enc::SelectEqU32(dc.codes().data(), begin, end, code, sel);
      }
    } else {
      const auto& sc = static_cast<const StrColumn&>(c);
      const std::string_view key = v.s;
      for (size_t i = begin; i < end; ++i) {
        if (sc.GetString(i) == key) sel->push_back(static_cast<uint32_t>(i));
      }
    }
    return sel->size() - before;
  }
  const bool dbl_domain = c.type() == ValType::kDbl || v.type == ValType::kDbl;
  if (c.kind() == ColumnKind::kDense) {
    const int64_t seq = static_cast<int64_t>(static_cast<const DenseOidColumn&>(c).seqbase());
    if (dbl_domain) {
      const double key = v.AsDouble();
      for (size_t i = begin; i < end; ++i) {
        if (static_cast<double>(seq + static_cast<int64_t>(i)) == key) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
    } else {
      const int64_t key = v.AsInt64();
      if (key >= seq + static_cast<int64_t>(begin) &&
          key < seq + static_cast<int64_t>(end)) {
        sel->push_back(static_cast<uint32_t>(key - seq));
      }
    }
    return sel->size() - before;
  }
  switch (c.type()) {
    case ValType::kOid:
      if (dbl_domain) {
        EqLoop(static_cast<const Oid*>(c.RawData()), begin, end, v.AsDouble(), sel);
      } else {
        // Same bit pattern and the same signed compare EqLoop's
        // static_cast<int64_t> would do.
        enc::SelectEqI64(reinterpret_cast<const int64_t*>(c.RawData()), begin,
                         end, v.AsInt64(), sel);
      }
      break;
    case ValType::kInt:
    case ValType::kDate:
      if (dbl_domain) {
        EqLoop(static_cast<const int32_t*>(c.RawData()), begin, end, v.AsDouble(), sel);
      } else {
        int32_t k32 = 0, k32hi = 0;
        const int64_t key = v.AsInt64();
        if (ClampToI32(key, key, &k32, &k32hi)) {
          enc::SelectEqI32(static_cast<const int32_t*>(c.RawData()), begin, end,
                           k32, sel);
        }
      }
      break;
    case ValType::kLng:
      if (dbl_domain) {
        EqLoop(static_cast<const int64_t*>(c.RawData()), begin, end, v.AsDouble(), sel);
      } else {
        enc::SelectEqI64(static_cast<const int64_t*>(c.RawData()), begin, end,
                         v.AsInt64(), sel);
      }
      break;
    case ValType::kDbl:
      enc::SelectEqF64(static_cast<const double*>(c.RawData()), begin, end,
                       v.AsDouble(), sel);
      break;
    default: DCY_FATAL() << "SelectEq: bad dispatch";
  }
  return sel->size() - before;
}

}  // namespace

size_t StitchSelVecs(const std::vector<SelVec>& parts, SelVec* sel) {
  size_t total = 0;
  for (const SelVec& p : parts) total += p.size();
  if (total == 0) return 0;
  const size_t base = sel->size();
  sel->resize(base + total);
  std::vector<size_t> offsets(parts.size());
  size_t off = base;
  for (size_t i = 0; i < parts.size(); ++i) {
    offsets[i] = off;
    off += parts[i].size();
  }
  auto copy_part = [&](size_t i) {
    if (!parts[i].empty()) {
      std::memcpy(sel->data() + offsets[i], parts[i].data(),
                  parts[i].size() * sizeof(uint32_t));
    }
  };
  const MorselPlan plan = PlanMorsels(total);
  if (!plan.parallel) {
    for (size_t i = 0; i < parts.size(); ++i) copy_part(i);
  } else {
    exec::Executor::Default().ParallelFor(
        parts.size(), 1,
        [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) copy_part(i);
        },
        plan.workers);
  }
  return total;
}

size_t SelectRange(const Column& c, const Value& lo, const Value& hi, SelVec* sel) {
  const size_t n = c.size();
  // Dense ranges resolve in O(matched run); never worth fanning out.
  const MorselPlan plan =
      c.kind() == ColumnKind::kDense ? MorselPlan{} : PlanMorsels(n);
  if (!plan.parallel) return SelectRangeSpan(c, 0, n, lo, hi, sel);
  std::vector<SelVec> parts(plan.morsels);
  ForEachMorsel(plan, n, [&](size_t m, size_t b, size_t e) {
    SelectRangeSpan(c, b, e, lo, hi, &parts[m]);
  });
  return StitchSelVecs(parts, sel);
}

size_t SelectEq(const Column& c, const Value& v, SelVec* sel) {
  const size_t n = c.size();
  const MorselPlan plan =
      c.kind() == ColumnKind::kDense ? MorselPlan{} : PlanMorsels(n);
  if (!plan.parallel) return SelectEqSpan(c, 0, n, v, sel);
  std::vector<SelVec> parts(plan.morsels);
  ForEachMorsel(plan, n, [&](size_t m, size_t b, size_t e) {
    SelectEqSpan(c, b, e, v, &parts[m]);
  });
  return StitchSelVecs(parts, sel);
}

void ExtractInt64Keys(const Column& c, std::vector<int64_t>* keys) {
  const size_t n = c.size();
  keys->resize(n);
  if (n == 0 && c.type() != ValType::kStr) return;
  int64_t* out = keys->data();
  const MorselPlan plan = PlanMorsels(n);
  switch (c.kind()) {
    case ColumnKind::kDense: {
      const int64_t seq =
          static_cast<int64_t>(static_cast<const DenseOidColumn&>(c).seqbase());
      ForEachRow(plan, n, [&](size_t i) { out[i] = seq + static_cast<int64_t>(i); });
      return;
    }
    case ColumnKind::kFixed:
      switch (c.type()) {
        case ValType::kOid:
        case ValType::kLng:
        case ValType::kDbl:
          // Same 8-byte width: oid/lng verbatim, dbl by bit pattern (the
          // hash-equality form the scalar reference join uses). A single
          // memcpy is already memory-bound; no fan-out.
          std::memcpy(out, c.RawData(), n * sizeof(int64_t));
          return;
        case ValType::kInt:
        case ValType::kDate: {
          const auto* d = static_cast<const int32_t*>(c.RawData());
          ForEachRow(plan, n, [&](size_t i) { out[i] = d[i]; });
          return;
        }
        case ValType::kStr: break;
      }
      break;
    case ColumnKind::kStr:
    case ColumnKind::kDict: break;
  }
  DCY_FATAL() << "ExtractInt64Keys on " << ValTypeName(c.type()) << " column";
}

void ExtractDoubleKeys(const Column& c, std::vector<double>* keys) {
  const size_t n = c.size();
  keys->resize(n);
  if (n == 0 && c.type() != ValType::kStr) return;
  double* out = keys->data();
  const MorselPlan plan = PlanMorsels(n);
  auto fill = [&](auto convert) {
    ForEachRow(plan, n, [&](size_t i) { out[i] = convert(i); });
  };
  switch (c.kind()) {
    case ColumnKind::kDense: {
      const auto& d = static_cast<const DenseOidColumn&>(c);
      const Oid seq = d.seqbase();
      fill([seq](size_t i) { return static_cast<double>(seq + i); });
      return;
    }
    case ColumnKind::kFixed:
      switch (c.type()) {
        case ValType::kDbl:
          std::memcpy(out, c.RawData(), n * sizeof(double));
          return;
        case ValType::kOid: {
          const auto* d = static_cast<const Oid*>(c.RawData());
          fill([d](size_t i) { return static_cast<double>(d[i]); });
          return;
        }
        case ValType::kInt:
        case ValType::kDate: {
          const auto* d = static_cast<const int32_t*>(c.RawData());
          fill([d](size_t i) { return static_cast<double>(d[i]); });
          return;
        }
        case ValType::kLng: {
          const auto* d = static_cast<const int64_t*>(c.RawData());
          fill([d](size_t i) { return static_cast<double>(d[i]); });
          return;
        }
        case ValType::kStr: break;
      }
      break;
    case ColumnKind::kStr:
    case ColumnKind::kDict: break;
  }
  DCY_FATAL() << "ExtractDoubleKeys on " << ValTypeName(c.type()) << " column";
}

Span<int64_t> Int64KeySpan(const Column& c, std::vector<int64_t>* scratch) {
  if (c.kind() == ColumnKind::kFixed &&
      (c.type() == ValType::kOid || c.type() == ValType::kLng)) {
    // lng verbatim; oid reinterpreted as its signed twin (same bit pattern
    // ExtractInt64Keys copies, and signed/unsigned views may alias).
    return {static_cast<const int64_t*>(c.RawData()), c.size()};
  }
  ExtractInt64Keys(c, scratch);
  return {scratch->data(), scratch->size()};
}

FlatTable::FlatTable(const int64_t* keys, size_t n) {
  next_.assign(n, kNone);

  if (n > 0) {
    int64_t min = keys[0], max = keys[0];
    for (size_t j = 1; j < n; ++j) {
      min = std::min(min, keys[j]);
      max = std::max(max, keys[j]);
    }
    // Direct addressing when the span costs at most ~4 slots per row (plus
    // slack for tiny builds): the FK-join common case of a compact domain.
    const uint64_t span = static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
    if (span < 4 * static_cast<uint64_t>(n) + 1024) {
      direct_ = true;
      min_ = min;
      bucket_rows_.assign(span + 1, kNone);
      for (size_t j = n; j-- > 0;) {
        const uint64_t off = static_cast<uint64_t>(keys[j]) - static_cast<uint64_t>(min);
        uint32_t& head = bucket_rows_[off];
        next_[j] = head;  // kNone for the first insert
        head = static_cast<uint32_t>(j);
      }
      return;
    }
  }

  direct_ = false;
  size_t cap = 8;
  while (cap < n * 2) cap <<= 1;  // <= 50% load factor
  mask_ = cap - 1;
  bucket_rows_.assign(cap, kNone);
  bucket_keys_.resize(cap);
  // Insert in reverse row order at the chain head so probes walk ascending
  // rows — bit-identical output order to the scalar reference.
  for (size_t j = n; j-- > 0;) {
    const int64_t key = keys[j];
    uint64_t slot = Hash(key) & mask_;
    while (true) {
      uint32_t& head = bucket_rows_[slot];
      if (head == kNone) {
        head = static_cast<uint32_t>(j);
        bucket_keys_[slot] = key;
        break;
      }
      if (bucket_keys_[slot] == key) {
        next_[j] = head;
        head = static_cast<uint32_t>(j);
        break;
      }
      slot = (slot + 1) & mask_;
    }
  }
}

namespace {

/// Effective radix-partition count for a parallel build of n keys:
/// explicit ExecPolicy::join_partitions, or 4 per worker so stealing has
/// slack; rounded down to a power of two and kept coarse (a partition
/// spans at least a quarter-morsel of rows) so tiny partitions never pay
/// more scatter than they save.
size_t EffectivePartitions(size_t n) {
  const exec::ExecPolicy policy = exec::GetExecPolicy();
  size_t want = policy.join_partitions;
  if (want == 0) want = 4 * EffectiveWorkers(policy);
  const size_t coarse =
      std::max<size_t>(1, n / std::max<size_t>(1, policy.morsel_rows / 4));
  want = std::min(std::min(want, coarse), size_t{256});
  size_t p = 1;
  while (p * 2 <= want) p <<= 1;
  return p;
}

}  // namespace

PartitionedTable::PartitionedTable(const int64_t* keys, size_t n) {
  const MorselPlan plan = PlanMorsels(n);
  const size_t nparts = plan.parallel ? EffectivePartitions(n) : 1;
  if (nparts <= 1) {
    parts_.resize(1);
    parts_[0].table = FlatTable(keys, n);
    return;
  }
  unsigned log2p = 0;
  while ((size_t{1} << log2p) < nparts) ++log2p;
  shift_ = 64 - log2p;
  parts_.resize(nparts);

  // Pass 1 (parallel): per-morsel partition histograms.
  std::vector<std::vector<uint32_t>> cursors(plan.morsels);
  ForEachMorsel(plan, n, [&](size_t m, size_t b, size_t e) {
    auto& c = cursors[m];
    c.assign(nparts, 0);
    for (size_t i = b; i < e; ++i) ++c[PartitionOf(keys[i])];
  });

  // Exclusive scans turn the histograms into scatter cursors: morsel m's
  // rows of partition p land at [cursors[m][p], ...) of that partition, so
  // partition-local row order is ascending original row order.
  std::vector<std::vector<int64_t>> part_keys(nparts);
  for (size_t p = 0; p < nparts; ++p) {
    uint32_t total = 0;
    for (size_t m = 0; m < plan.morsels; ++m) {
      const uint32_t count = cursors[m][p];
      cursors[m][p] = total;
      total += count;
    }
    part_keys[p].resize(total);
    parts_[p].rows.resize(total);
  }

  // Pass 2 (parallel): scatter (key, row) pairs into their partitions.
  ForEachMorsel(plan, n, [&](size_t m, size_t b, size_t e) {
    auto& cur = cursors[m];
    for (size_t i = b; i < e; ++i) {
      const size_t p = PartitionOf(keys[i]);
      const uint32_t at = cur[p]++;
      part_keys[p][at] = keys[i];
      parts_[p].rows[at] = static_cast<uint32_t>(i);
    }
  });

  // Pass 3 (parallel over partitions): local FlatTable builds, then splice
  // each partition's duplicate chains into the global next_ array. Row sets
  // are disjoint across partitions, so the writes need no coordination, and
  // ascending local chains map to ascending original rows.
  next_.resize(n);
  exec::Executor::Default().ParallelFor(
      nparts, 1,
      [&](size_t begin, size_t end) {
        for (size_t p = begin; p < end; ++p) {
          Part& part = parts_[p];
          part.table = FlatTable(part_keys[p].data(), part_keys[p].size());
          part_keys[p] = {};  // the table borrows keys only during the build
          const std::vector<uint32_t>& rows = part.rows;
          for (size_t j = 0; j < rows.size(); ++j) {
            const uint32_t local_next = part.table.Next(static_cast<uint32_t>(j));
            next_[rows[j]] =
                local_next == kNone ? kNone : rows[local_next];
          }
        }
      },
      plan.workers);
}

}  // namespace dcy::bat::kernels
