#include "bat/encoding.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DCY_ENC_X86 1
#else
#define DCY_ENC_X86 0
#endif

namespace dcy::bat::enc {

// ---------------------------------------------------------------------------
// Toggles

namespace {

std::atomic<bool> g_compression{true};

bool ForceScalarFromEnv() {
  const char* e = std::getenv("DCY_FORCE_SCALAR");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}

std::atomic<bool> g_force_scalar{ForceScalarFromEnv()};

}  // namespace

void SetWireCompression(bool on) { g_compression.store(on, std::memory_order_relaxed); }
bool WireCompressionEnabled() { return g_compression.load(std::memory_order_relaxed); }

void SetForceScalar(bool on) { g_force_scalar.store(on, std::memory_order_relaxed); }
bool ForceScalar() { return g_force_scalar.load(std::memory_order_relaxed); }

bool SimdEnabled() {
#if DCY_ENC_X86
  static const bool hw = __builtin_cpu_supports("avx2");
  return hw && !ForceScalar();
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Scalar kernels (the fallback, and the tail loops of the AVX2 paths)

namespace {

template <typename T, typename K>
void ScalarSelectEq(const T* d, size_t begin, size_t end, K key,
                    std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  for (size_t i = begin; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += (d[i] == key);
  }
  sel->resize(base + cnt);
}

template <typename T, typename K>
void ScalarSelectRange(const T* d, size_t begin, size_t end, K lo, K hi,
                       std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin));
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  for (size_t i = begin; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += static_cast<size_t>(d[i] >= lo) & static_cast<size_t>(d[i] <= hi);
  }
  sel->resize(base + cnt);
}

void ScalarUnpack64(const uint8_t* src, size_t src_len, size_t lo, size_t n,
                    unsigned bits, uint64_t ref, uint64_t* dst) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  for (size_t i = lo; i < n; ++i) {
    const uint64_t bit = i * static_cast<uint64_t>(bits);
    const size_t byte = bit >> 3;
    const unsigned sh = static_cast<unsigned>(bit & 7);
    uint64_t w = 0;
    const size_t avail = src_len - byte;
    std::memcpy(&w, src + byte, avail < 8 ? avail : 8);
    dst[i] = ref + ((w >> sh) & mask);
  }
}

void ScalarUnpack32(const uint8_t* src, size_t src_len, size_t lo, size_t n,
                    unsigned bits, uint32_t* dst) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  for (size_t i = lo; i < n; ++i) {
    const uint64_t bit = i * static_cast<uint64_t>(bits);
    const size_t byte = bit >> 3;
    const unsigned sh = static_cast<unsigned>(bit & 7);
    uint64_t w = 0;
    const size_t avail = src_len - byte;
    std::memcpy(&w, src + byte, avail < 8 ? avail : 8);
    dst[i] = static_cast<uint32_t>((w >> sh) & mask);
  }
}

#if DCY_ENC_X86

// Shuffle tables for mask-driven left-compaction of matching positions.
// Perm8: per 8-bit mask, the set lane indices (u32 each) for
// _mm256_permutevar8x32_epi32. Shuf4: per 4-bit mask, a byte shuffle for
// _mm_shuffle_epi8 compacting 4 u32 lanes.
const uint32_t* Perm8(unsigned mask) {
  static const std::vector<uint32_t>* lut = [] {
    auto* t = new std::vector<uint32_t>(256 * 8, 0);
    for (unsigned m = 0; m < 256; ++m) {
      unsigned k = 0;
      for (unsigned lane = 0; lane < 8; ++lane) {
        if (m & (1u << lane)) (*t)[m * 8 + k++] = lane;
      }
    }
    return t;
  }();
  return lut->data() + mask * 8;
}

const uint8_t* Shuf4(unsigned mask) {
  static const std::vector<uint8_t>* lut = [] {
    auto* t = new std::vector<uint8_t>(16 * 16, 0x80);
    for (unsigned m = 0; m < 16; ++m) {
      unsigned k = 0;
      for (unsigned lane = 0; lane < 4; ++lane) {
        if (m & (1u << lane)) {
          for (unsigned b = 0; b < 4; ++b) (*t)[m * 16 + k * 4 + b] = static_cast<uint8_t>(lane * 4 + b);
          ++k;
        }
      }
    }
    return t;
  }();
  return lut->data() + mask * 16;
}

// Emits the positions selected by an 8-lane mask into out + cnt (8 slots of
// slack required), returns the new count.
__attribute__((target("avx2"))) inline size_t Emit8(unsigned m, size_t i,
                                                    uint32_t* out, size_t cnt) {
  if (m == 0) return cnt;
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i pos = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i)), iota);
  const __m256i perm = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(Perm8(m)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + cnt),
                      _mm256_permutevar8x32_epi32(pos, perm));
  return cnt + static_cast<unsigned>(__builtin_popcount(m));
}

__attribute__((target("avx2"))) inline size_t Emit4(unsigned m, size_t i,
                                                    uint32_t* out, size_t cnt) {
  if (m == 0) return cnt;
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i pos = _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i)), iota);
  const __m128i shuf = _mm_loadu_si128(reinterpret_cast<const __m128i*>(Shuf4(m)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + cnt), _mm_shuffle_epi8(pos, shuf));
  return cnt + static_cast<unsigned>(__builtin_popcount(m));
}

__attribute__((target("avx2"))) void SelectEq32Avx2(const int32_t* d, size_t begin,
                                                    size_t end, int32_t key,
                                                    std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin) + 8);
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  const __m256i kv = _mm256_set1_epi32(key);
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, kv))));
    cnt = Emit8(m, i, out, cnt);
  }
  for (; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += (d[i] == key);
  }
  sel->resize(base + cnt);
}

__attribute__((target("avx2"))) void SelectRange32Avx2(const int32_t* d, size_t begin,
                                                       size_t end, int32_t lo,
                                                       int32_t hi,
                                                       std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin) + 8);
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  const __m256i lov = _mm256_set1_epi32(lo);
  const __m256i hiv = _mm256_set1_epi32(hi);
  size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi32(lov, v),
                                        _mm256_cmpgt_epi32(v, hiv));
    const unsigned m =
        ~static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(bad))) & 0xFFu;
    cnt = Emit8(m, i, out, cnt);
  }
  for (; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += static_cast<size_t>(d[i] >= lo) & static_cast<size_t>(d[i] <= hi);
  }
  sel->resize(base + cnt);
}

__attribute__((target("avx2"))) void SelectEq64Avx2(const int64_t* d, size_t begin,
                                                    size_t end, int64_t key,
                                                    std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin) + 4);
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  const __m256i kv = _mm256_set1_epi64x(key);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, kv))));
    cnt = Emit4(m, i, out, cnt);
  }
  for (; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += (d[i] == key);
  }
  sel->resize(base + cnt);
}

__attribute__((target("avx2"))) void SelectRange64Avx2(const int64_t* d, size_t begin,
                                                       size_t end, int64_t lo,
                                                       int64_t hi,
                                                       std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin) + 4);
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(lov, v),
                                        _mm256_cmpgt_epi64(v, hiv));
    const unsigned m =
        ~static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(bad))) & 0xFu;
    cnt = Emit4(m, i, out, cnt);
  }
  for (; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += static_cast<size_t>(d[i] >= lo) & static_cast<size_t>(d[i] <= hi);
  }
  sel->resize(base + cnt);
}

__attribute__((target("avx2"))) void SelectEqF64Avx2(const double* d, size_t begin,
                                                     size_t end, double key,
                                                     std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin) + 4);
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  const __m256d kv = _mm256_set1_pd(key);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d v = _mm256_loadu_pd(d + i);
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(v, kv, _CMP_EQ_OQ)));
    cnt = Emit4(m, i, out, cnt);
  }
  for (; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += (d[i] == key);
  }
  sel->resize(base + cnt);
}

__attribute__((target("avx2"))) void SelectRangeF64Avx2(const double* d, size_t begin,
                                                        size_t end, double lo,
                                                        double hi,
                                                        std::vector<uint32_t>* sel) {
  const size_t base = sel->size();
  sel->resize(base + (end - begin) + 4);
  uint32_t* out = sel->data() + base;
  size_t cnt = 0;
  const __m256d lov = _mm256_set1_pd(lo);
  const __m256d hiv = _mm256_set1_pd(hi);
  size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d v = _mm256_loadu_pd(d + i);
    const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(v, lov, _CMP_GE_OQ),
                                     _mm256_cmp_pd(v, hiv, _CMP_LE_OQ));
    const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(ok));
    cnt = Emit4(m, i, out, cnt);
  }
  for (; i < end; ++i) {
    out[cnt] = static_cast<uint32_t>(i);
    cnt += static_cast<size_t>(d[i] >= lo) & static_cast<size_t>(d[i] <= hi);
  }
  sel->resize(base + cnt);
}

__attribute__((target("avx2"))) void GatherU32Avx2(const uint32_t* src,
                                                   const uint32_t* idx, size_t n,
                                                   uint32_t* dst) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i g =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(src), vi, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), g);
  }
  for (; i < n; ++i) dst[i] = src[idx[i]];
}

// FOR unpack: per lane, an unaligned 8-byte gather at the value's byte
// offset, a variable right shift by its bit-in-byte, and a mask. The vector
// loop only runs while the gathered window stays inside src (last lane's
// offset + 8 <= src_len); the remainder falls to the bounded scalar loop.
__attribute__((target("avx2"))) void Unpack64Avx2(const uint8_t* src, size_t src_len,
                                                  size_t n, unsigned bits,
                                                  uint64_t ref, uint64_t* dst) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vref = _mm256_set1_epi64x(static_cast<long long>(ref));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t b0 = (i + 0) * static_cast<uint64_t>(bits);
    const uint64_t b1 = (i + 1) * static_cast<uint64_t>(bits);
    const uint64_t b2 = (i + 2) * static_cast<uint64_t>(bits);
    const uint64_t b3 = (i + 3) * static_cast<uint64_t>(bits);
    if ((b3 >> 3) + 8 > src_len) break;
    const __m256i ofs = _mm256_set_epi64x(static_cast<long long>(b3 >> 3),
                                          static_cast<long long>(b2 >> 3),
                                          static_cast<long long>(b1 >> 3),
                                          static_cast<long long>(b0 >> 3));
    const __m256i sh = _mm256_set_epi64x(static_cast<long long>(b3 & 7),
                                         static_cast<long long>(b2 & 7),
                                         static_cast<long long>(b1 & 7),
                                         static_cast<long long>(b0 & 7));
    const __m256i w =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(src), ofs, 1);
    const __m256i v = _mm256_and_si256(_mm256_srlv_epi64(w, sh), vmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(v, vref));
  }
  ScalarUnpack64(src, src_len, i, n, bits, ref, dst);
}

__attribute__((target("avx2"))) void Unpack32Avx2(const uint8_t* src, size_t src_len,
                                                  size_t n, unsigned bits,
                                                  uint32_t* dst) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i narrow = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t b0 = (i + 0) * static_cast<uint64_t>(bits);
    const uint64_t b1 = (i + 1) * static_cast<uint64_t>(bits);
    const uint64_t b2 = (i + 2) * static_cast<uint64_t>(bits);
    const uint64_t b3 = (i + 3) * static_cast<uint64_t>(bits);
    if ((b3 >> 3) + 8 > src_len) break;
    const __m256i ofs = _mm256_set_epi64x(static_cast<long long>(b3 >> 3),
                                          static_cast<long long>(b2 >> 3),
                                          static_cast<long long>(b1 >> 3),
                                          static_cast<long long>(b0 >> 3));
    const __m256i sh = _mm256_set_epi64x(static_cast<long long>(b3 & 7),
                                         static_cast<long long>(b2 & 7),
                                         static_cast<long long>(b1 & 7),
                                         static_cast<long long>(b0 & 7));
    const __m256i w =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(src), ofs, 1);
    const __m256i v = _mm256_and_si256(_mm256_srlv_epi64(w, sh), vmask);
    const __m256i packed = _mm256_permutevar8x32_epi32(v, narrow);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_castsi256_si128(packed));
  }
  ScalarUnpack32(src, src_len, i, n, bits, dst);
}

#endif  // DCY_ENC_X86

}  // namespace

// ---------------------------------------------------------------------------
// Public SIMD entry points (runtime dispatch)

void SelectEqU32(const uint32_t* d, size_t begin, size_t end, uint32_t key,
                 std::vector<uint32_t>* sel) {
  if (end <= begin) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    // Dictionary codes are < 2^31 (PlanDict caps the dictionary), so the
    // signed epi32 compare is exact.
    SelectEq32Avx2(reinterpret_cast<const int32_t*>(d), begin, end,
                   static_cast<int32_t>(key), sel);
    return;
  }
#endif
  ScalarSelectEq(d, begin, end, key, sel);
}

void SelectRangeU32(const uint32_t* d, size_t begin, size_t end, uint32_t lo,
                    uint32_t hi, std::vector<uint32_t>* sel) {
  if (end <= begin || lo > hi) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectRange32Avx2(reinterpret_cast<const int32_t*>(d), begin, end,
                      static_cast<int32_t>(lo), static_cast<int32_t>(hi), sel);
    return;
  }
#endif
  ScalarSelectRange(d, begin, end, lo, hi, sel);
}

void SelectEqI32(const int32_t* d, size_t begin, size_t end, int32_t key,
                 std::vector<uint32_t>* sel) {
  if (end <= begin) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectEq32Avx2(d, begin, end, key, sel);
    return;
  }
#endif
  ScalarSelectEq(d, begin, end, key, sel);
}

void SelectRangeI32(const int32_t* d, size_t begin, size_t end, int32_t lo,
                    int32_t hi, std::vector<uint32_t>* sel) {
  if (end <= begin || lo > hi) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectRange32Avx2(d, begin, end, lo, hi, sel);
    return;
  }
#endif
  ScalarSelectRange(d, begin, end, lo, hi, sel);
}

void SelectEqI64(const int64_t* d, size_t begin, size_t end, int64_t key,
                 std::vector<uint32_t>* sel) {
  if (end <= begin) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectEq64Avx2(d, begin, end, key, sel);
    return;
  }
#endif
  ScalarSelectEq(d, begin, end, key, sel);
}

void SelectRangeI64(const int64_t* d, size_t begin, size_t end, int64_t lo,
                    int64_t hi, std::vector<uint32_t>* sel) {
  if (end <= begin || lo > hi) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectRange64Avx2(d, begin, end, lo, hi, sel);
    return;
  }
#endif
  ScalarSelectRange(d, begin, end, lo, hi, sel);
}

void SelectEqF64(const double* d, size_t begin, size_t end, double key,
                 std::vector<uint32_t>* sel) {
  if (end <= begin) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectEqF64Avx2(d, begin, end, key, sel);
    return;
  }
#endif
  ScalarSelectEq(d, begin, end, key, sel);
}

void SelectRangeF64(const double* d, size_t begin, size_t end, double lo,
                    double hi, std::vector<uint32_t>* sel) {
  if (end <= begin) return;
#if DCY_ENC_X86
  if (SimdEnabled()) {
    SelectRangeF64Avx2(d, begin, end, lo, hi, sel);
    return;
  }
#endif
  ScalarSelectRange(d, begin, end, lo, hi, sel);
}

void GatherU32(const uint32_t* src, const uint32_t* idx, size_t n, uint32_t* dst) {
#if DCY_ENC_X86
  if (SimdEnabled()) {
    GatherU32Avx2(src, idx, n, dst);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

// ---------------------------------------------------------------------------
// Bit unpack entry points

bool UnpackBits64(const uint8_t* src, size_t src_len, size_t n, unsigned bits,
                  uint64_t ref, uint64_t* dst) {
  if (bits > kMaxPackBits) return false;
  if (src_len < PackedBytes(n, bits)) return false;
  if (bits == 0) {
    std::fill(dst, dst + n, ref);
    return true;
  }
#if DCY_ENC_X86
  if (SimdEnabled()) {
    Unpack64Avx2(src, src_len, n, bits, ref, dst);
    return true;
  }
#endif
  ScalarUnpack64(src, src_len, 0, n, bits, ref, dst);
  return true;
}

bool UnpackBits32(const uint8_t* src, size_t src_len, size_t n, unsigned bits,
                  uint32_t* dst) {
  if (bits > 32) return false;
  if (src_len < PackedBytes(n, bits)) return false;
  if (bits == 0) {
    std::fill(dst, dst + n, 0u);
    return true;
  }
#if DCY_ENC_X86
  if (SimdEnabled()) {
    Unpack32Avx2(src, src_len, n, bits, dst);
    return true;
  }
#endif
  ScalarUnpack32(src, src_len, 0, n, bits, dst);
  return true;
}

// ---------------------------------------------------------------------------
// Codec planning

std::optional<DictPlan> PlanDict(const StrColumn& c) {
  const size_t n = c.size();
  if (n < 16) return std::nullopt;

  // Cheap bail-out: sample the distinct ratio of a prefix so incompressible
  // (high-cardinality) columns only pay for the sample, not a full build.
  {
    const size_t sample = std::min<size_t>(n, 1024);
    std::unordered_set<std::string_view> seen;
    seen.reserve(sample * 2);
    for (size_t i = 0; i < sample; ++i) seen.insert(c.GetString(i));
    if (seen.size() * 4 > sample * 3) return std::nullopt;
  }

  std::unordered_map<std::string_view, uint32_t> ids;
  std::vector<uint32_t> provisional(n);
  std::vector<std::string_view> uniq;
  for (size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = ids.emplace(c.GetString(i),
                                            static_cast<uint32_t>(uniq.size()));
    if (inserted) uniq.push_back(it->first);
    provisional[i] = it->second;
  }
  const size_t d = uniq.size();
  // Codes must stay below 2^31 so the signed AVX2 compares stay exact.
  if (d == 0 || d >= (uint64_t{1} << 31)) return std::nullopt;

  size_t dict_heap = 0;
  for (const auto& s : uniq) dict_heap += s.size();
  const unsigned code_bits = d <= 1 ? 0 : BitWidth(d - 1);
  // Wire bodies (serialize.cc layout): dict = count + offsets + heap header +
  // heap + code width + packed codes; plain = offset header + offsets + heap
  // header + heap.
  const size_t dict_body =
      4 + (d + 1) * 4 + 8 + dict_heap + 1 + PackedBytes(n, code_bits);
  const size_t plain_body = 8 + (n + 1) * 4 + 8 + c.heap().size();
  if (dict_body >= plain_body) return std::nullopt;

  // Sort the dictionary so code order == string order, then remap the codes.
  std::vector<uint32_t> order(d);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&uniq](uint32_t a, uint32_t b) { return uniq[a] < uniq[b]; });
  std::vector<uint32_t> rank(d);
  for (size_t k = 0; k < d; ++k) rank[order[k]] = static_cast<uint32_t>(k);

  DictPlan plan;
  plan.code_bits = code_bits;
  plan.offsets.reserve(d + 1);
  plan.offsets.push_back(0);
  plan.heap.reserve(dict_heap);
  for (size_t k = 0; k < d; ++k) {
    plan.heap.append(uniq[order[k]]);
    plan.offsets.push_back(static_cast<uint32_t>(plan.heap.size()));
  }
  plan.codes.resize(n);
  for (size_t i = 0; i < n; ++i) plan.codes[i] = rank[provisional[i]];
  return plan;
}

std::optional<ForPlan> PlanFor(const Column& c) {
  const size_t n = c.size();
  if (n < 8) return std::nullopt;
  if (c.kind() == ColumnKind::kDense) {
    // A dense tail is a sorted iota: always packable, and always smaller
    // than the 8n bytes v1 materializes for it.
    const auto& dc = static_cast<const DenseOidColumn&>(c);
    return ForPlan{static_cast<int64_t>(dc.seqbase()), BitWidth(n - 1)};
  }
  if (c.kind() != ColumnKind::kFixed) return std::nullopt;
  switch (c.type()) {
    case ValType::kOid:
    case ValType::kInt:
    case ValType::kLng:
    case ValType::kDate:
      break;
    default:
      return std::nullopt;
  }
  if (!c.IsSorted()) return std::nullopt;
  const int64_t first = c.GetInt64(0);
  const int64_t last = c.GetInt64(n - 1);
  // Sorted, so last is the max; wrapping u64 subtraction is exact even for
  // mixed-sign ranges.
  const uint64_t range = static_cast<uint64_t>(last) - static_cast<uint64_t>(first);
  const unsigned bits = BitWidth(range);
  if (bits > kMaxPackBits) return std::nullopt;
  const size_t packed_body = 8 + 1 + PackedBytes(n, bits);
  const size_t plain_body = n * ValTypeWidth(c.type());
  if (packed_body >= plain_body) return std::nullopt;
  return ForPlan{first, bits};
}

}  // namespace dcy::bat::enc
