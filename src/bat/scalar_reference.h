// Row-at-a-time reference implementations of the hot BAT operators, retained
// verbatim from the pre-vectorization engine. They are the oracle for the
// randomized differential tests in tests/bat_kernels_test.cc: the vectorized
// operators in bat/operators.cc must produce bit-identical BATs (same rows,
// same order). Not used on any production path.
#pragma once

#include "bat/bat.h"
#include "common/status.h"

namespace dcy::bat::scalar {

/// select(b, v): rows with tail == v (boxed Value comparisons).
Result<BatPtr> Select(const BatPtr& b, const Value& v);

/// select(b, lo, hi): rows with lo <= tail <= hi, inclusive.
Result<BatPtr> SelectRange(const BatPtr& b, const Value& lo, const Value& hi);

/// join(l, r): merge join when both join columns are sorted, hash join
/// otherwise, exactly as the vectorized Join dispatches.
Result<BatPtr> Join(const BatPtr& l, const BatPtr& r);

/// semijoin / kdiff / kunion on head membership.
Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r);
Result<BatPtr> KDiff(const BatPtr& l, const BatPtr& r);
Result<BatPtr> KUnion(const BatPtr& l, const BatPtr& r);

/// sort(b): stable ascending sort on the tail.
Result<BatPtr> Sort(const BatPtr& b);

/// topn(b, n): the first n rows of the stable sort on the tail (descending
/// reverses the key order but still breaks ties by ascending input
/// position). The oracle for the engine's sequential and parallel TopN;
/// the default matches bat::TopN (largest first).
Result<BatPtr> TopN(const BatPtr& b, size_t n, bool descending = true);

}  // namespace dcy::bat::scalar
