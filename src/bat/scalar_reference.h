// Row-at-a-time reference implementations of the hot BAT operators, retained
// verbatim from the pre-vectorization engine. They are the oracle for the
// randomized differential tests in tests/bat_kernels_test.cc: the vectorized
// operators in bat/operators.cc must produce bit-identical BATs (same rows,
// same order). Not used on any production path.
#pragma once

#include "bat/bat.h"
#include "common/status.h"

namespace dcy::bat::scalar {

/// select(b, v): rows with tail == v (boxed Value comparisons).
Result<BatPtr> Select(const BatPtr& b, const Value& v);

/// select(b, lo, hi): rows with lo <= tail <= hi, inclusive.
Result<BatPtr> SelectRange(const BatPtr& b, const Value& lo, const Value& hi);

/// join(l, r): merge join when both join columns are sorted, hash join
/// otherwise, exactly as the vectorized Join dispatches.
Result<BatPtr> Join(const BatPtr& l, const BatPtr& r);

/// semijoin / kdiff / kunion on head membership.
Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r);
Result<BatPtr> KDiff(const BatPtr& l, const BatPtr& r);
Result<BatPtr> KUnion(const BatPtr& l, const BatPtr& r);

/// sort(b): stable ascending sort on the tail.
Result<BatPtr> Sort(const BatPtr& b);

}  // namespace dcy::bat::scalar
