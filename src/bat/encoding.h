// Column encoding layer for the ring wire format (ROADMAP "Ring bandwidth").
//
// Three codecs, chosen per column at serialize time by bat/serialize.cc:
//   - dictionary: string columns with few distinct values ship a sorted
//     dictionary + bit-packed codes instead of the full heap;
//   - FOR (frame-of-reference): sorted integer columns (IsSorted() memoizes
//     the trigger) ship min + bit-packed deltas;
//   - pass-through for incompressible data.
//
// This header also hosts the encoding-aware SIMD kernels: AVX2 selection on
// raw arrays and dictionary codes, FOR unpack, and code gather, each with a
// scalar fallback behind runtime dispatch (__builtin_cpu_supports). The
// scalar paths are bit-identical and exercised in CI via DCY_FORCE_SCALAR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bat/column.h"

namespace dcy::bat::enc {

// ---------------------------------------------------------------------------
// Toggles

/// Enables/disables wire compression process-wide (default on). Off emits
/// byte-identical v1 frames — the backward-compat axis in CI bench smoke.
void SetWireCompression(bool on);
bool WireCompressionEnabled();

struct ScopedWireCompression {
  explicit ScopedWireCompression(bool on) : prev_(WireCompressionEnabled()) {
    SetWireCompression(on);
  }
  ~ScopedWireCompression() { SetWireCompression(prev_); }

 private:
  bool prev_;
};

/// Forces the scalar fallback even on AVX2 hardware (differential tests and
/// the CI sanitizer matrix). Also settable via env DCY_FORCE_SCALAR=1.
void SetForceScalar(bool on);
bool ForceScalar();

struct ScopedForceScalar {
  explicit ScopedForceScalar(bool on) : prev_(ForceScalar()) { SetForceScalar(on); }
  ~ScopedForceScalar() { SetForceScalar(prev_); }

 private:
  bool prev_;
};

/// True when the AVX2 paths will actually run (hardware support and not
/// forced scalar).
bool SimdEnabled();

// ---------------------------------------------------------------------------
// Bit packing

/// Widest packable value. 57 = 64 - 7: with <8 pending accumulator bits a
/// value always fits one 64-bit window, so pack/unpack never need 128-bit
/// arithmetic and the unpacker's 8-byte loads stay in bounds.
constexpr unsigned kMaxPackBits = 57;

/// Bytes needed to pack n values of `bits` bits each.
inline size_t PackedBytes(size_t n, unsigned bits) {
  return (n * static_cast<uint64_t>(bits) + 7) / 8;
}

/// Bits needed to represent v (0 for v == 0).
inline unsigned BitWidth(uint64_t v) {
  unsigned bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Packs n values produced by fn(i) (each < 2^bits, bits <= kMaxPackBits)
/// into exactly PackedBytes(n, bits) bytes at dst. Every output byte is
/// written, so dst need not be zeroed.
template <typename Fn>
void PackBits(size_t n, unsigned bits, uint8_t* dst, Fn fn) {
  uint64_t acc = 0;
  unsigned acc_bits = 0;
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    acc |= fn(i) << acc_bits;  // acc_bits < 8, bits <= 57: fits in 64
    acc_bits += bits;
    while (acc_bits >= 8) {
      dst[out++] = static_cast<uint8_t>(acc);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) dst[out++] = static_cast<uint8_t>(acc);
}

/// Unpacks n values of `bits` bits from src (src_len readable bytes) into
/// dst[i] = ref + value (wrapping). Returns false when src is too short or
/// bits > kMaxPackBits. SIMD-dispatched (this is the FOR decode kernel).
bool UnpackBits64(const uint8_t* src, size_t src_len, size_t n, unsigned bits,
                  uint64_t ref, uint64_t* dst);

/// Same for u32 outputs (dictionary codes; bits <= 32, no reference).
bool UnpackBits32(const uint8_t* src, size_t src_len, size_t n, unsigned bits,
                  uint32_t* dst);

// ---------------------------------------------------------------------------
// Codec planning

/// A dictionary plan for one string column: sorted unique strings
/// (offsets + heap, StrColumn layout) and one code per row.
struct DictPlan {
  std::vector<uint32_t> offsets;  ///< dict_count + 1 entries
  std::string heap;
  std::vector<uint32_t> codes;    ///< one per row, in sorted-dict order
  unsigned code_bits = 0;         ///< BitWidth(dict_count - 1)
};

/// Plans dictionary encoding for a plain string column. Returns nullopt when
/// the dictionary would not shrink the wire body (high cardinality, tiny
/// column). A cheap distinct-ratio sample bails out before the full build so
/// incompressible columns only pay for the sample.
std::optional<DictPlan> PlanDict(const StrColumn& c);

/// A FOR plan: reference (minimum, i.e. first value of the sorted column)
/// and delta width.
struct ForPlan {
  int64_t ref = 0;
  unsigned bits = 0;
};

/// Plans FOR packing for a fixed-width integer column (kOid/kInt/kLng/kDate)
/// or a dense oid range. Returns nullopt unless the column is sorted, the
/// delta range fits kMaxPackBits, and packing shrinks the wire body.
std::optional<ForPlan> PlanFor(const Column& c);

// ---------------------------------------------------------------------------
// SIMD selection / gather kernels
//
// Each appends the matching absolute positions in [begin, end) to *sel in
// ascending order — identical output to the scalar loops in bat/kernels.cc.
// AVX2 when SimdEnabled(), scalar otherwise.

void SelectEqU32(const uint32_t* d, size_t begin, size_t end, uint32_t key,
                 std::vector<uint32_t>* sel);
void SelectRangeU32(const uint32_t* d, size_t begin, size_t end, uint32_t lo,
                    uint32_t hi, std::vector<uint32_t>* sel);
void SelectEqI32(const int32_t* d, size_t begin, size_t end, int32_t key,
                 std::vector<uint32_t>* sel);
void SelectRangeI32(const int32_t* d, size_t begin, size_t end, int32_t lo,
                    int32_t hi, std::vector<uint32_t>* sel);
void SelectEqI64(const int64_t* d, size_t begin, size_t end, int64_t key,
                 std::vector<uint32_t>* sel);
void SelectRangeI64(const int64_t* d, size_t begin, size_t end, int64_t lo,
                    int64_t hi, std::vector<uint32_t>* sel);
void SelectEqF64(const double* d, size_t begin, size_t end, double key,
                 std::vector<uint32_t>* sel);
void SelectRangeF64(const double* d, size_t begin, size_t end, double lo,
                    double hi, std::vector<uint32_t>* sel);

/// dst[i] = src[idx[i]] for i in [0, n) — dictionary-code gather.
void GatherU32(const uint32_t* src, const uint32_t* idx, size_t n, uint32_t* dst);

}  // namespace dcy::bat::enc
