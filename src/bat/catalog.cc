#include "bat/catalog.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bat/serialize.h"
#include "common/logging.h"

namespace dcy::bat {

BatCatalog::BatCatalog(std::string spill_dir) : spill_dir_(std::move(spill_dir)) {
  if (!spill_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spill_dir_, ec);
    if (ec) {
      DCY_LOG(kWarn) << "cannot create spill dir " << spill_dir_ << ": " << ec.message();
      spill_dir_.clear();
    }
  }
}

Status BatCatalog::Register(const std::string& name, core::BatId id, BatPtr bat) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(name) > 0) return Status::AlreadyExists("BAT name " + name);
  if (by_id_.count(id) > 0) return Status::AlreadyExists("BAT id " + std::to_string(id));
  Entry e;
  e.name = name;
  e.id = id;
  e.bytes = bat->ByteSize();
  e.bat = std::move(bat);
  resident_bytes_ += e.bytes;
  by_name_[name] = id;
  by_id_[id] = std::move(e);
  return Status::OK();
}

Result<BatPtr> BatCatalog::GetByName(const std::string& name) {
  core::BatId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(name);
    if (it == by_name_.end()) return Status::NotFound("BAT " + name);
    id = it->second;
  }
  return GetById(id);
}

Result<BatPtr> BatCatalog::GetById(core::BatId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("BAT id " + std::to_string(id));
  Entry& e = it->second;
  if (e.bat != nullptr) return e.bat;
  // Cold: read back from the spill file.
  std::ifstream in(e.path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + e.path);
  std::string buffer((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  DCY_ASSIGN_OR_RETURN(BatPtr bat, Deserialize(buffer));
  e.bat = bat;
  resident_bytes_ += e.bytes;
  return bat;
}

Result<core::BatId> BatCatalog::IdOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("BAT " + name);
  return it->second;
}

Result<uint64_t> BatCatalog::SizeOf(core::BatId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("BAT id " + std::to_string(id));
  return it->second.bytes;
}

std::string BatCatalog::SpillPath(const Entry& e) const {
  std::string sanitized = e.name;
  for (char& c : sanitized) {
    if (c == '/' || c == '.') c = '_';
  }
  return spill_dir_ + "/" + sanitized + "_" + std::to_string(e.id) + ".bat";
}

Status BatCatalog::Spill(core::BatId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("BAT id " + std::to_string(id));
  Entry& e = it->second;
  if (e.bat == nullptr) return Status::OK();  // already cold
  if (spill_dir_.empty()) return Status::FailedPrecondition("no spill directory");
  if (e.path.empty()) {
    e.path = SpillPath(e);
    const std::string buffer = Serialize(*e.bat);
    std::ofstream out(e.path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + e.path);
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!out) return Status::IOError("short write to " + e.path);
  }
  e.bat.reset();
  resident_bytes_ -= e.bytes;
  return Status::OK();
}

bool BatCatalog::IsSpilled(core::BatId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it != by_id_.end() && it->second.bat == nullptr;
}

Status BatCatalog::Drop(core::BatId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("BAT id " + std::to_string(id));
  if (it->second.bat != nullptr) resident_bytes_ -= it->second.bytes;
  if (!it->second.path.empty()) {
    std::error_code ec;
    std::filesystem::remove(it->second.path, ec);
  }
  by_name_.erase(it->second.name);
  by_id_.erase(it);
  return Status::OK();
}

std::vector<std::string> BatCatalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, _] : by_name_) names.push_back(name);
  return names;
}

size_t BatCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.size();
}

uint64_t BatCatalog::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

}  // namespace dcy::bat
