#include "bat/serialize.h"

#include <cstring>

#include "common/logging.h"

namespace dcy::bat {

namespace {

constexpr uint32_t kMagic = 0xDC10B47u;  // "DC1.0 BAT"
constexpr uint16_t kVersion = 1;

enum class HeadKind : uint8_t { kDense = 0, kMaterialized = 1 };

constexpr size_t kPreludeBytes = 4 + 2 + 1 + 1;  // magic, version, props, head kind
constexpr size_t kCrcBytes = 4;

/// \brief Append writer over a buffer whose exact final size is reserved up
/// front: every byte is written exactly once (no value-initializing resize
/// pass over the frame, and the reserved capacity rules out reallocation).
class Cursor {
 public:
  Cursor(std::string* buf, size_t total) : buf_(buf) {
    buf_->clear();
    buf_->reserve(total);
  }

  void PutBytes(const void* p, size_t n) { buf_->append(static_cast<const char*>(p), n); }

  template <typename T>
  void Put(T v) {
    PutBytes(&v, sizeof(v));
  }

  /// Extends by n bytes in place and returns the write pointer (for bulk
  /// loops that fill the region directly).
  char* Skip(size_t n) {
    const size_t pos = buf_->size();
    buf_->resize(pos + n);
    return buf_->data() + pos;
  }

  size_t pos() const { return buf_->size(); }

 private:
  std::string* buf_;
};

template <typename T>
Status Get(std::string_view in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return Status::Corruption("truncated BAT buffer");
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return Status::OK();
}

/// On-wire size of one column body (type byte + row count + payload).
size_t ColumnWireSize(const Column& c) {
  constexpr size_t kColHeader = 1 + 8;  // type byte + uint64 row count
  if (c.type() == ValType::kStr) {
    const auto& sc = static_cast<const StrColumn&>(c);
    return kColHeader + 8 + sc.offsets().size() * sizeof(uint32_t) + 8 + sc.heap().size();
  }
  return kColHeader + c.size() * ValTypeWidth(c.type());
}

void PutColumn(Cursor* out, const Column& c) {
  out->Put<uint8_t>(static_cast<uint8_t>(c.type()));
  out->Put<uint64_t>(c.size());
  if (c.type() == ValType::kStr) {
    const auto& sc = static_cast<const StrColumn&>(c);
    out->Put<uint64_t>(sc.offsets().size());
    out->PutBytes(sc.offsets().data(), sc.offsets().size() * sizeof(uint32_t));
    out->Put<uint64_t>(sc.heap().size());
    out->PutBytes(sc.heap().data(), sc.heap().size());
    return;
  }
  const size_t payload = c.size() * ValTypeWidth(c.type());
  if (payload == 0) return;
  if (c.kind() == ColumnKind::kFixed) {
    // Materialized fixed width: the whole payload in one memcpy.
    out->PutBytes(c.RawData(), payload);
    return;
  }
  // Dense oid range (no backing array): stream the iota straight into the
  // frame. Dense *heads* never reach here (encoded as seqbase+count); this
  // covers dense tails such as uselect/mark results.
  DCY_DCHECK(c.kind() == ColumnKind::kDense);
  const Oid seq = static_cast<const DenseOidColumn&>(c).seqbase();
  char* dst = out->Skip(payload);
  for (size_t i = 0; i < c.size(); ++i) {
    const uint64_t v = seq + i;  // memcpy: the frame offset is unaligned
    std::memcpy(dst + i * sizeof(v), &v, sizeof(v));
  }
}

Result<ColumnPtr> GetColumn(std::string_view in, size_t* pos) {
  uint8_t type_raw = 0;
  uint64_t n = 0;
  DCY_RETURN_NOT_OK(Get(in, pos, &type_raw));
  DCY_RETURN_NOT_OK(Get(in, pos, &n));
  if (type_raw > static_cast<uint8_t>(ValType::kDate)) {
    return Status::Corruption("bad column type");
  }
  const ValType type = static_cast<ValType>(type_raw);
  // Overflow-safe row bound: every row costs at least 4 payload bytes, so a
  // count beyond the remaining buffer is corrupt (and would overflow the
  // size arithmetic below).
  if (n > in.size() / 4) return Status::Corruption("implausible row count");
  if (type == ValType::kStr) {
    uint64_t num_offsets = 0;
    DCY_RETURN_NOT_OK(Get(in, pos, &num_offsets));
    if (num_offsets != n + 1) return Status::Corruption("bad offset count");
    if (num_offsets * sizeof(uint32_t) > in.size() - *pos) {
      return Status::Corruption("truncated offsets");
    }
    std::vector<uint32_t> offsets(num_offsets);
    std::memcpy(offsets.data(), in.data() + *pos, num_offsets * sizeof(uint32_t));
    *pos += num_offsets * sizeof(uint32_t);
    uint64_t heap_size = 0;
    DCY_RETURN_NOT_OK(Get(in, pos, &heap_size));
    if (heap_size > in.size() - *pos) return Status::Corruption("truncated heap");
    std::string heap(in.data() + *pos, heap_size);
    *pos += heap_size;
    return ColumnPtr(std::make_shared<StrColumn>(std::move(offsets), std::move(heap)));
  }
  // Fixed width: one bounds check, one memcpy into the backing vector.
  const size_t payload = n * ValTypeWidth(type);
  if (payload > in.size() - *pos) return Status::Corruption("truncated column payload");
  const char* src = in.data() + *pos;
  *pos += payload;
  auto copy_vec = [&](auto tag) {
    using T = decltype(tag);
    std::vector<T> v(n);
    if (payload > 0) std::memcpy(v.data(), src, payload);
    return ColumnPtr(std::make_shared<FixedColumn<T>>(type, std::move(v)));
  };
  switch (type) {
    case ValType::kOid: return copy_vec(Oid{});
    case ValType::kInt:
    case ValType::kDate: return copy_vec(int32_t{});
    case ValType::kLng: return copy_vec(int64_t{});
    case ValType::kDbl: return copy_vec(double{});
    case ValType::kStr: break;  // unreachable
  }
  return Status::Corruption("bad column type");
}

uint8_t PackProps(const Bat::Properties& p) {
  return static_cast<uint8_t>((p.tsorted ? 1 : 0) | (p.tkey ? 2 : 0) |
                              (p.hsorted ? 4 : 0) | (p.hkey ? 8 : 0));
}

Bat::Properties UnpackProps(uint8_t v) {
  Bat::Properties p;
  p.tsorted = (v & 1) != 0;
  p.tkey = (v & 2) != 0;
  p.hsorted = (v & 4) != 0;
  p.hkey = (v & 8) != 0;
  return p;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  // Slicing-by-8: processes 8 input bytes per step through 8 derived tables
  // (~6-8x the classic byte-at-a-time loop). Same IEEE polynomial and
  // values; the frames this guards are multi-MB BATs, so the CRC is a
  // first-order cost of every ring hop.
  static uint32_t table[8][256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[0][i] = c;
    }
    for (int s = 1; s < 8; ++s) {
      for (uint32_t i = 0; i < 256; ++i) {
        table[s][i] = (table[s - 1][i] >> 8) ^ table[0][table[s - 1][i] & 0xFF];
      }
    }
    return true;
  }();
  (void)init;
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = table[7][lo & 0xFF] ^ table[6][(lo >> 8) & 0xFF] ^
          table[5][(lo >> 16) & 0xFF] ^ table[4][lo >> 24] ^ table[3][hi & 0xFF] ^
          table[2][(hi >> 8) & 0xFF] ^ table[1][(hi >> 16) & 0xFF] ^ table[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (size_t i = 0; i < n; ++i) crc = table[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

size_t EncodedSize(const Bat& b) {
  size_t total = kPreludeBytes;
  if (b.HasDenseHead()) {
    total += 8 + 8;  // seqbase + count
  } else {
    total += ColumnWireSize(*b.head());
  }
  total += ColumnWireSize(*b.tail());
  return total + kCrcBytes;
}

void SerializeInto(const Bat& b, std::string* out) {
  const size_t total = EncodedSize(b);
  Cursor cur(out, total);
  cur.Put<uint32_t>(kMagic);
  cur.Put<uint16_t>(kVersion);
  cur.Put<uint8_t>(PackProps(b.props()));

  if (b.HasDenseHead()) {
    cur.Put<uint8_t>(static_cast<uint8_t>(HeadKind::kDense));
    cur.Put<uint64_t>(b.HeadSeqbase());
    cur.Put<uint64_t>(b.size());
  } else {
    cur.Put<uint8_t>(static_cast<uint8_t>(HeadKind::kMaterialized));
    PutColumn(&cur, *b.head());
  }
  PutColumn(&cur, *b.tail());
  cur.Put<uint32_t>(Crc32(out->data(), cur.pos()));
  DCY_DCHECK(out->size() == total);
}

std::string Serialize(const Bat& b) {
  std::string out;
  SerializeInto(b, &out);
  return out;
}

Result<BatPtr> Deserialize(std::string_view buffer) {
  if (buffer.size() < kPreludeBytes + kCrcBytes) {
    return Status::Corruption("BAT buffer too small");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer.data() + buffer.size() - kCrcBytes, kCrcBytes);
  if (Crc32(buffer.data(), buffer.size() - kCrcBytes) != stored_crc) {
    return Status::Corruption("BAT buffer CRC mismatch");
  }

  size_t pos = 0;
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t props_raw = 0, head_kind = 0;
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &magic));
  if (magic != kMagic) return Status::Corruption("bad BAT magic");
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &version));
  if (version != kVersion) return Status::Corruption("unsupported BAT version");
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &props_raw));
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &head_kind));

  ColumnPtr head;
  if (head_kind == static_cast<uint8_t>(HeadKind::kDense)) {
    uint64_t seqbase = 0, n = 0;
    DCY_RETURN_NOT_OK(Get(buffer, &pos, &seqbase));
    DCY_RETURN_NOT_OK(Get(buffer, &pos, &n));
    head = MakeDenseOid(seqbase, n);
  } else {
    DCY_ASSIGN_OR_RETURN(head, GetColumn(buffer, &pos));
  }
  DCY_ASSIGN_OR_RETURN(ColumnPtr tail, GetColumn(buffer, &pos));
  if (head->size() != tail->size()) return Status::Corruption("head/tail size mismatch");
  return BatPtr(std::make_shared<Bat>(std::move(head), std::move(tail),
                                      UnpackProps(props_raw)));
}

}  // namespace dcy::bat
