#include "bat/serialize.h"

#include <cstring>

#include "common/logging.h"

namespace dcy::bat {

namespace {

constexpr uint32_t kMagic = 0xDC10B47u;  // "DC1.0 BAT"
constexpr uint16_t kVersionPlain = 1;    // legacy pass-through layout
constexpr uint16_t kVersionEncoded = 2;  // per-column codec byte ahead of the body

enum class HeadKind : uint8_t { kDense = 0, kMaterialized = 1 };

/// v2 per-column encoding byte: low nibble = codec, high bits carry the
/// sender's memoized sortedness so the receiver's cache starts warm.
enum class WireCodec : uint8_t { kPlain = 0, kDict = 1, kFor = 2 };
constexpr uint8_t kEncCodecMask = 0x0F;
constexpr uint8_t kEncSortedKnown = 0x10;
constexpr uint8_t kEncSorted = 0x20;
constexpr uint8_t kEncKnownBits = 0x3F;

constexpr size_t kPreludeBytes = 4 + 2 + 1 + 1;  // magic, version, props, head kind
constexpr size_t kCrcBytes = 4;

/// \brief Append writer over a buffer whose exact final size is reserved up
/// front: every byte is written exactly once (no value-initializing resize
/// pass over the frame, and the reserved capacity rules out reallocation).
class Cursor {
 public:
  Cursor(std::string* buf, size_t total) : buf_(buf) {
    buf_->clear();
    buf_->reserve(total);
  }

  void PutBytes(const void* p, size_t n) { buf_->append(static_cast<const char*>(p), n); }

  template <typename T>
  void Put(T v) {
    PutBytes(&v, sizeof(v));
  }

  /// Extends by n bytes in place and returns the write pointer (for bulk
  /// loops that fill the region directly).
  char* Skip(size_t n) {
    const size_t pos = buf_->size();
    buf_->resize(pos + n);
    return buf_->data() + pos;
  }

  size_t pos() const { return buf_->size(); }

 private:
  std::string* buf_;
};

template <typename T>
Status Get(std::string_view in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return Status::Corruption("truncated BAT buffer");
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return Status::OK();
}

/// Plain string body size ([num_offsets][offsets][heap_size][heap]); a
/// dictionary column re-materializes its per-row strings here (only the v1
/// path and the rare incompressible-dict case pay this).
size_t PlainStrBodySize(const Column& c) {
  if (c.kind() == ColumnKind::kStr) {
    const auto& sc = static_cast<const StrColumn&>(c);
    return 8 + sc.offsets().size() * sizeof(uint32_t) + 8 + sc.heap().size();
  }
  DCY_DCHECK(c.kind() == ColumnKind::kDict);
  const auto& dc = static_cast<const DictStrColumn&>(c);
  const auto& doffs = dc.dict()->offsets();
  uint64_t heap = 0;
  for (const uint32_t code : dc.codes()) heap += doffs[code + 1] - doffs[code];
  return 8 + (c.size() + 1) * sizeof(uint32_t) + 8 + heap;
}

void PutPlainStrBody(Cursor* out, const Column& c) {
  if (c.kind() == ColumnKind::kStr) {
    const auto& sc = static_cast<const StrColumn&>(c);
    out->Put<uint64_t>(sc.offsets().size());
    out->PutBytes(sc.offsets().data(), sc.offsets().size() * sizeof(uint32_t));
    out->Put<uint64_t>(sc.heap().size());
    out->PutBytes(sc.heap().data(), sc.heap().size());
    return;
  }
  DCY_DCHECK(c.kind() == ColumnKind::kDict);
  const auto& dc = static_cast<const DictStrColumn&>(c);
  const uint32_t* codes = dc.codes().data();
  const auto& doffs = dc.dict()->offsets();
  const char* dheap = dc.dict()->heap().data();
  const size_t n = c.size();
  out->Put<uint64_t>(n + 1);
  char* off_dst = out->Skip((n + 1) * sizeof(uint32_t));
  uint64_t heap_size = 0;
  for (size_t i = 0; i < n; ++i) heap_size += doffs[codes[i] + 1] - doffs[codes[i]];
  out->Put<uint64_t>(heap_size);
  char* heap_dst = out->Skip(heap_size);
  uint32_t off = 0;
  std::memcpy(off_dst, &off, sizeof(off));
  for (size_t i = 0; i < n; ++i) {
    const uint32_t lo = doffs[codes[i]], len = doffs[codes[i] + 1] - lo;
    std::memcpy(heap_dst + off, dheap + lo, len);
    off += len;
    std::memcpy(off_dst + (i + 1) * sizeof(off), &off, sizeof(off));
  }
}

/// On-wire v1 size of one column body (type byte + row count + payload).
size_t ColumnWireSize(const Column& c) {
  constexpr size_t kColHeader = 1 + 8;  // type byte + uint64 row count
  if (c.type() == ValType::kStr) return kColHeader + PlainStrBodySize(c);
  return kColHeader + c.size() * ValTypeWidth(c.type());
}

void PutPlainFixedBody(Cursor* out, const Column& c) {
  const size_t payload = c.size() * ValTypeWidth(c.type());
  if (payload == 0) return;
  if (c.kind() == ColumnKind::kFixed) {
    // Materialized fixed width: the whole payload in one memcpy.
    out->PutBytes(c.RawData(), payload);
    return;
  }
  // Dense oid range (no backing array): stream the iota straight into the
  // frame. Dense *heads* never reach here (encoded as seqbase+count); this
  // covers dense tails such as uselect/mark results.
  DCY_DCHECK(c.kind() == ColumnKind::kDense);
  const Oid seq = static_cast<const DenseOidColumn&>(c).seqbase();
  char* dst = out->Skip(payload);
  for (size_t i = 0; i < c.size(); ++i) {
    const uint64_t v = seq + i;  // memcpy: the frame offset is unaligned
    std::memcpy(dst + i * sizeof(v), &v, sizeof(v));
  }
}

void PutColumn(Cursor* out, const Column& c) {
  out->Put<uint8_t>(static_cast<uint8_t>(c.type()));
  out->Put<uint64_t>(c.size());
  if (c.type() == ValType::kStr) {
    PutPlainStrBody(out, c);
    return;
  }
  PutPlainFixedBody(out, c);
}

/// One column's v2 codec decision plus everything needed to emit its body.
struct ColPlan {
  const Column* col = nullptr;
  WireCodec codec = WireCodec::kPlain;
  uint8_t enc_byte = 0;
  size_t body_size = 0;               ///< bytes after [type][enc][count]
  unsigned code_bits = 0;             ///< dict codec
  std::optional<enc::DictPlan> dict;  ///< owned when planned from a plain StrColumn
  enc::ForPlan forp{};
};

uint8_t SortednessBits(const Column& c) {
  if (!c.SortednessKnown()) return 0;
  return kEncSortedKnown | (c.IsSorted() ? kEncSorted : 0);
}

ColPlan PlanColumnV2(const Column& c) {
  ColPlan p;
  p.col = &c;
  if (c.type() == ValType::kStr) {
    if (c.kind() == ColumnKind::kDict) {
      // Already dictionary-encoded in memory (decoded off the ring): reuse
      // its dictionary and codes verbatim, no analysis.
      const auto& dc = static_cast<const DictStrColumn&>(c);
      const size_t d = dc.dict_size();
      p.codec = WireCodec::kDict;
      p.code_bits = d <= 1 ? 0 : enc::BitWidth(d - 1);
      p.body_size = 4 + (d + 1) * sizeof(uint32_t) + 8 + dc.dict()->heap().size() +
                    1 + enc::PackedBytes(c.size(), p.code_bits);
    } else if (auto dp = enc::PlanDict(static_cast<const StrColumn&>(c))) {
      p.codec = WireCodec::kDict;
      p.code_bits = dp->code_bits;
      p.body_size = 4 + dp->offsets.size() * sizeof(uint32_t) + 8 + dp->heap.size() +
                    1 + enc::PackedBytes(c.size(), dp->code_bits);
      p.dict = std::move(dp);
    } else {
      p.body_size = PlainStrBodySize(c);
    }
  } else if (auto fp = enc::PlanFor(c)) {
    p.codec = WireCodec::kFor;
    p.forp = *fp;
    p.body_size = 8 + 1 + enc::PackedBytes(c.size(), fp->bits);
  } else {
    p.body_size = c.size() * ValTypeWidth(c.type());
  }
  p.enc_byte = static_cast<uint8_t>(p.codec);
  if (p.codec == WireCodec::kFor) {
    p.enc_byte |= kEncSortedKnown | kEncSorted;  // FOR implies sorted
  } else {
    p.enc_byte |= SortednessBits(c);
  }
  return p;
}

void PutDictBody(Cursor* out, const ColPlan& p) {
  const Column& c = *p.col;
  const uint32_t* offsets = nullptr;
  size_t num_offsets = 0;
  const std::string* heap = nullptr;
  const uint32_t* codes = nullptr;
  if (p.dict) {
    offsets = p.dict->offsets.data();
    num_offsets = p.dict->offsets.size();
    heap = &p.dict->heap;
    codes = p.dict->codes.data();
  } else {
    const auto& dc = static_cast<const DictStrColumn&>(c);
    offsets = dc.dict()->offsets().data();
    num_offsets = dc.dict()->offsets().size();
    heap = &dc.dict()->heap();
    codes = dc.codes().data();
  }
  out->Put<uint32_t>(static_cast<uint32_t>(num_offsets - 1));
  out->PutBytes(offsets, num_offsets * sizeof(uint32_t));
  out->Put<uint64_t>(heap->size());
  out->PutBytes(heap->data(), heap->size());
  out->Put<uint8_t>(static_cast<uint8_t>(p.code_bits));
  const size_t packed = enc::PackedBytes(c.size(), p.code_bits);
  if (packed == 0) return;
  auto* dst = reinterpret_cast<uint8_t*>(out->Skip(packed));
  enc::PackBits(c.size(), p.code_bits, dst,
                [codes](size_t i) { return uint64_t{codes[i]}; });
}

void PutForBody(Cursor* out, const ColPlan& p) {
  const Column& c = *p.col;
  const size_t n = c.size();
  const uint64_t ref = static_cast<uint64_t>(p.forp.ref);
  const unsigned bits = p.forp.bits;
  out->Put<uint64_t>(ref);
  out->Put<uint8_t>(static_cast<uint8_t>(bits));
  const size_t packed = enc::PackedBytes(n, bits);
  if (packed == 0) return;
  auto* dst = reinterpret_cast<uint8_t*>(out->Skip(packed));
  if (c.kind() == ColumnKind::kDense) {
    // A dense tail's deltas are the iota itself.
    enc::PackBits(n, bits, dst, [](size_t i) { return static_cast<uint64_t>(i); });
    return;
  }
  switch (c.type()) {
    case ValType::kOid: {
      const auto* v = static_cast<const Oid*>(c.RawData());
      enc::PackBits(n, bits, dst, [v, ref](size_t i) { return v[i] - ref; });
      break;
    }
    case ValType::kInt:
    case ValType::kDate: {
      const auto* v = static_cast<const int32_t*>(c.RawData());
      enc::PackBits(n, bits, dst, [v, ref](size_t i) {
        return static_cast<uint64_t>(static_cast<int64_t>(v[i])) - ref;
      });
      break;
    }
    case ValType::kLng: {
      const auto* v = static_cast<const int64_t*>(c.RawData());
      enc::PackBits(n, bits, dst,
                    [v, ref](size_t i) { return static_cast<uint64_t>(v[i]) - ref; });
      break;
    }
    default:
      DCY_FATAL() << "FOR codec on non-integer column";
  }
}

void PutColumnV2(Cursor* out, const ColPlan& p) {
  const Column& c = *p.col;
  out->Put<uint8_t>(static_cast<uint8_t>(c.type()));
  out->Put<uint8_t>(p.enc_byte);
  out->Put<uint64_t>(c.size());
  switch (p.codec) {
    case WireCodec::kPlain:
      if (c.type() == ValType::kStr) PutPlainStrBody(out, c);
      else PutPlainFixedBody(out, c);
      break;
    case WireCodec::kDict:
      PutDictBody(out, p);
      break;
    case WireCodec::kFor:
      PutForBody(out, p);
      break;
  }
}

/// Decodes a pass-through column body (shared by v1 columns and v2 columns
/// whose encoding byte says kPlain).
Result<ColumnPtr> GetPlainBody(std::string_view in, size_t* pos, ValType type,
                               uint64_t n) {
  if (type == ValType::kStr) {
    uint64_t num_offsets = 0;
    DCY_RETURN_NOT_OK(Get(in, pos, &num_offsets));
    if (num_offsets != n + 1) return Status::Corruption("bad offset count");
    if (num_offsets * sizeof(uint32_t) > in.size() - *pos) {
      return Status::Corruption("truncated offsets");
    }
    std::vector<uint32_t> offsets(num_offsets);
    std::memcpy(offsets.data(), in.data() + *pos, num_offsets * sizeof(uint32_t));
    *pos += num_offsets * sizeof(uint32_t);
    uint64_t heap_size = 0;
    DCY_RETURN_NOT_OK(Get(in, pos, &heap_size));
    if (heap_size > in.size() - *pos) return Status::Corruption("truncated heap");
    std::string heap(in.data() + *pos, heap_size);
    *pos += heap_size;
    return ColumnPtr(std::make_shared<StrColumn>(std::move(offsets), std::move(heap)));
  }
  // Fixed width: one bounds check, one memcpy into the backing vector.
  const size_t payload = n * ValTypeWidth(type);
  if (payload > in.size() - *pos) return Status::Corruption("truncated column payload");
  const char* src = in.data() + *pos;
  *pos += payload;
  auto copy_vec = [&](auto tag) {
    using T = decltype(tag);
    std::vector<T> v(n);
    if (payload > 0) std::memcpy(v.data(), src, payload);
    return ColumnPtr(std::make_shared<FixedColumn<T>>(type, std::move(v)));
  };
  switch (type) {
    case ValType::kOid: return copy_vec(Oid{});
    case ValType::kInt:
    case ValType::kDate: return copy_vec(int32_t{});
    case ValType::kLng: return copy_vec(int64_t{});
    case ValType::kDbl: return copy_vec(double{});
    case ValType::kStr: break;  // unreachable
  }
  return Status::Corruption("bad column type");
}

/// v1 column: [type u8][count u64][plain body].
Result<ColumnPtr> GetColumn(std::string_view in, size_t* pos) {
  uint8_t type_raw = 0;
  uint64_t n = 0;
  DCY_RETURN_NOT_OK(Get(in, pos, &type_raw));
  DCY_RETURN_NOT_OK(Get(in, pos, &n));
  if (type_raw > static_cast<uint8_t>(ValType::kDate)) {
    return Status::Corruption("bad column type");
  }
  // Overflow-safe row bound: every plain row costs at least 4 payload bytes,
  // so a count beyond the remaining buffer is corrupt (and would overflow
  // the size arithmetic below).
  if (n > in.size() / 4) return Status::Corruption("implausible row count");
  return GetPlainBody(in, pos, static_cast<ValType>(type_raw), n);
}

/// v2 column: [type u8][enc u8][count u64][codec body].
Result<ColumnPtr> GetColumnV2(std::string_view in, size_t* pos) {
  uint8_t type_raw = 0, enc_byte = 0;
  uint64_t n = 0;
  DCY_RETURN_NOT_OK(Get(in, pos, &type_raw));
  DCY_RETURN_NOT_OK(Get(in, pos, &enc_byte));
  DCY_RETURN_NOT_OK(Get(in, pos, &n));
  if (type_raw > static_cast<uint8_t>(ValType::kDate)) {
    return Status::Corruption("bad column type");
  }
  if ((enc_byte & ~kEncKnownBits) != 0) return Status::Corruption("bad encoding byte");
  const uint8_t codec_raw = enc_byte & kEncCodecMask;
  if (codec_raw > static_cast<uint8_t>(WireCodec::kFor)) {
    return Status::Corruption("unknown column codec");
  }
  const ValType type = static_cast<ValType>(type_raw);
  const auto codec = static_cast<WireCodec>(codec_raw);
  // Packed bodies can legitimately cost under a byte per row (a constant
  // FOR column is 9 bytes at any length), so the plain bytes-per-row bound
  // only applies to pass-through columns; cap packed counts absolutely.
  if (n > (uint64_t{1} << 32)) return Status::Corruption("implausible row count");

  ColumnPtr col;
  switch (codec) {
    case WireCodec::kPlain: {
      if (n > in.size() / 4) return Status::Corruption("implausible row count");
      DCY_ASSIGN_OR_RETURN(col, GetPlainBody(in, pos, type, n));
      break;
    }
    case WireCodec::kDict: {
      if (type != ValType::kStr) {
        return Status::Corruption("dict codec on non-string column");
      }
      uint32_t dict_count = 0;
      DCY_RETURN_NOT_OK(Get(in, pos, &dict_count));
      if (dict_count >= (uint32_t{1} << 31)) {
        return Status::Corruption("implausible dictionary");
      }
      const uint64_t num_offsets = uint64_t{dict_count} + 1;
      if (num_offsets * sizeof(uint32_t) > in.size() - *pos) {
        return Status::Corruption("truncated dictionary offsets");
      }
      std::vector<uint32_t> offsets(num_offsets);
      std::memcpy(offsets.data(), in.data() + *pos, num_offsets * sizeof(uint32_t));
      *pos += num_offsets * sizeof(uint32_t);
      uint64_t heap_size = 0;
      DCY_RETURN_NOT_OK(Get(in, pos, &heap_size));
      if (heap_size > in.size() - *pos) {
        return Status::Corruption("truncated dictionary heap");
      }
      // The dictionary feeds GetString for every row, so its offsets are
      // validated up front (monotone, heap-bounded) — unlike plain string
      // bodies, where the CRC is the only guard.
      if (offsets.front() != 0 || offsets.back() != heap_size) {
        return Status::Corruption("bad dictionary offsets");
      }
      for (size_t k = 1; k < offsets.size(); ++k) {
        if (offsets[k] < offsets[k - 1]) {
          return Status::Corruption("bad dictionary offsets");
        }
      }
      std::string heap(in.data() + *pos, heap_size);
      *pos += heap_size;
      uint8_t code_bits = 0;
      DCY_RETURN_NOT_OK(Get(in, pos, &code_bits));
      if (code_bits > 32) return Status::Corruption("bad code width");
      const size_t packed = enc::PackedBytes(n, code_bits);
      if (packed > in.size() - *pos) return Status::Corruption("truncated codes");
      std::vector<uint32_t> codes(n);
      // Readable length is the whole remaining frame, not just the packed
      // payload: the unpack windows may read a few bytes past the payload
      // but stay inside the buffer, which keeps the SIMD path on through
      // the tail.
      if (!enc::UnpackBits32(reinterpret_cast<const uint8_t*>(in.data() + *pos),
                             in.size() - *pos, n, code_bits, codes.data())) {
        return Status::Corruption("truncated codes");
      }
      *pos += packed;
      for (const uint32_t code : codes) {
        if (code >= dict_count) return Status::Corruption("code out of dictionary range");
      }
      auto dict = std::make_shared<StrColumn>(std::move(offsets), std::move(heap));
      col = std::make_shared<DictStrColumn>(std::move(dict), std::move(codes));
      break;
    }
    case WireCodec::kFor: {
      if (type == ValType::kDbl || type == ValType::kStr) {
        return Status::Corruption("FOR codec on non-integer column");
      }
      uint64_t ref = 0;
      uint8_t bits = 0;
      DCY_RETURN_NOT_OK(Get(in, pos, &ref));
      DCY_RETURN_NOT_OK(Get(in, pos, &bits));
      if (bits > enc::kMaxPackBits) return Status::Corruption("bad delta width");
      const size_t packed = enc::PackedBytes(n, bits);
      if (packed > in.size() - *pos) return Status::Corruption("truncated deltas");
      const auto* src = reinterpret_cast<const uint8_t*>(in.data() + *pos);
      const size_t avail = in.size() - *pos;
      if (type == ValType::kInt || type == ValType::kDate) {
        std::vector<uint64_t> tmp(n);
        if (!enc::UnpackBits64(src, avail, n, bits, ref, tmp.data())) {
          return Status::Corruption("truncated deltas");
        }
        std::vector<int32_t> v(n);
        for (size_t i = 0; i < n; ++i) v[i] = static_cast<int32_t>(tmp[i]);
        col = std::make_shared<FixedColumn<int32_t>>(type, std::move(v));
      } else if (type == ValType::kOid) {
        std::vector<Oid> v(n);
        if (!enc::UnpackBits64(src, avail, n, bits, ref, v.data())) {
          return Status::Corruption("truncated deltas");
        }
        col = std::make_shared<FixedColumn<Oid>>(type, std::move(v));
      } else {
        std::vector<int64_t> v(n);
        if (!enc::UnpackBits64(src, avail, n, bits, ref,
                               reinterpret_cast<uint64_t*>(v.data()))) {
          return Status::Corruption("truncated deltas");
        }
        col = std::make_shared<FixedColumn<int64_t>>(type, std::move(v));
      }
      *pos += packed;
      break;
    }
  }
  // Satellite of the codec work: the sender's memoized sortedness rides the
  // encoding byte, so the receiver's IsSorted() cache starts warm.
  if ((enc_byte & kEncSortedKnown) != 0) {
    col->SeedSortedness((enc_byte & kEncSorted) != 0);
  }
  return col;
}

uint8_t PackProps(const Bat::Properties& p) {
  return static_cast<uint8_t>((p.tsorted ? 1 : 0) | (p.tkey ? 2 : 0) |
                              (p.hsorted ? 4 : 0) | (p.hkey ? 8 : 0));
}

Bat::Properties UnpackProps(uint8_t v) {
  Bat::Properties p;
  p.tsorted = (v & 1) != 0;
  p.tkey = (v & 2) != 0;
  p.hsorted = (v & 4) != 0;
  p.hkey = (v & 8) != 0;
  return p;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  // Slicing-by-8: processes 8 input bytes per step through 8 derived tables
  // (~6-8x the classic byte-at-a-time loop). Same IEEE polynomial and
  // values; the frames this guards are multi-MB BATs, so the CRC is a
  // first-order cost of every ring hop.
  static uint32_t table[8][256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[0][i] = c;
    }
    for (int s = 1; s < 8; ++s) {
      for (uint32_t i = 0; i < 256; ++i) {
        table[s][i] = (table[s - 1][i] >> 8) ^ table[0][table[s - 1][i] & 0xFF];
      }
    }
    return true;
  }();
  (void)init;
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = table[7][lo & 0xFF] ^ table[6][(lo >> 8) & 0xFF] ^
          table[5][(lo >> 16) & 0xFF] ^ table[4][lo >> 24] ^ table[3][hi & 0xFF] ^
          table[2][(hi >> 8) & 0xFF] ^ table[1][(hi >> 16) & 0xFF] ^ table[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (size_t i = 0; i < n; ++i) crc = table[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

struct FrameEncoder::Plan {
  const Bat* bat = nullptr;
  bool v2 = false;
  std::optional<ColPlan> head;  ///< nullopt when the head is dense (or v1)
  std::optional<ColPlan> tail;  ///< nullopt when v1
  size_t total = 0;
  CodecStats stats;
};

namespace {

void CountColumn(WireCodec codec, CodecStats* stats) {
  switch (codec) {
    case WireCodec::kPlain: ++stats->plain_columns; break;
    case WireCodec::kDict: ++stats->dict_columns; break;
    case WireCodec::kFor: ++stats->for_columns; break;
  }
}

}  // namespace

FrameEncoder::FrameEncoder(const Bat& b) : plan_(std::make_unique<Plan>()) {
  Plan& p = *plan_;
  p.bat = &b;
  p.v2 = enc::WireCompressionEnabled();
  size_t total = kPreludeBytes;
  size_t raw = kPreludeBytes;
  const size_t col_header = p.v2 ? (1 + 1 + 8) : (1 + 8);
  if (b.HasDenseHead()) {
    total += 8 + 8;  // seqbase + count
    raw += 8 + 8;
  } else {
    raw += ColumnWireSize(*b.head());
    if (p.v2) {
      p.head = PlanColumnV2(*b.head());
      total += col_header + p.head->body_size;
      CountColumn(p.head->codec, &p.stats);
    } else {
      total += ColumnWireSize(*b.head());
      ++p.stats.plain_columns;
    }
  }
  raw += ColumnWireSize(*b.tail());
  if (p.v2) {
    p.tail = PlanColumnV2(*b.tail());
    total += col_header + p.tail->body_size;
    CountColumn(p.tail->codec, &p.stats);
  } else {
    total += ColumnWireSize(*b.tail());
    ++p.stats.plain_columns;
  }
  p.total = total + kCrcBytes;
  p.stats.raw_bytes = raw + kCrcBytes;
  p.stats.wire_bytes = p.total;
}

FrameEncoder::~FrameEncoder() = default;

size_t FrameEncoder::encoded_size() const { return plan_->total; }

const CodecStats& FrameEncoder::stats() const { return plan_->stats; }

void FrameEncoder::SerializeInto(std::string* out) const {
  const Plan& p = *plan_;
  const Bat& b = *p.bat;
  Cursor cur(out, p.total);
  cur.Put<uint32_t>(kMagic);
  cur.Put<uint16_t>(p.v2 ? kVersionEncoded : kVersionPlain);
  cur.Put<uint8_t>(PackProps(b.props()));

  if (b.HasDenseHead()) {
    cur.Put<uint8_t>(static_cast<uint8_t>(HeadKind::kDense));
    cur.Put<uint64_t>(b.HeadSeqbase());
    cur.Put<uint64_t>(b.size());
  } else {
    cur.Put<uint8_t>(static_cast<uint8_t>(HeadKind::kMaterialized));
    if (p.v2) PutColumnV2(&cur, *p.head);
    else PutColumn(&cur, *b.head());
  }
  if (p.v2) PutColumnV2(&cur, *p.tail);
  else PutColumn(&cur, *b.tail());
  cur.Put<uint32_t>(Crc32(out->data(), cur.pos()));
  DCY_DCHECK(out->size() == p.total);
}

size_t EncodedSize(const Bat& b) { return FrameEncoder(b).encoded_size(); }

void SerializeInto(const Bat& b, std::string* out) {
  FrameEncoder(b).SerializeInto(out);
}

std::string Serialize(const Bat& b) {
  std::string out;
  SerializeInto(b, &out);
  return out;
}

Result<BatPtr> Deserialize(std::string_view buffer) {
  if (buffer.size() < kPreludeBytes + kCrcBytes) {
    return Status::Corruption("BAT buffer too small");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer.data() + buffer.size() - kCrcBytes, kCrcBytes);
  if (Crc32(buffer.data(), buffer.size() - kCrcBytes) != stored_crc) {
    return Status::Corruption("BAT buffer CRC mismatch");
  }

  size_t pos = 0;
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t props_raw = 0, head_kind = 0;
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &magic));
  if (magic != kMagic) return Status::Corruption("bad BAT magic");
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &version));
  if (version != kVersionPlain && version != kVersionEncoded) {
    return Status::Corruption("unsupported BAT version");
  }
  const bool v2 = version == kVersionEncoded;
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &props_raw));
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &head_kind));

  ColumnPtr head;
  if (head_kind == static_cast<uint8_t>(HeadKind::kDense)) {
    uint64_t seqbase = 0, n = 0;
    DCY_RETURN_NOT_OK(Get(buffer, &pos, &seqbase));
    DCY_RETURN_NOT_OK(Get(buffer, &pos, &n));
    head = MakeDenseOid(seqbase, n);
  } else {
    DCY_ASSIGN_OR_RETURN(head, v2 ? GetColumnV2(buffer, &pos)
                                  : GetColumn(buffer, &pos));
  }
  DCY_ASSIGN_OR_RETURN(ColumnPtr tail, v2 ? GetColumnV2(buffer, &pos)
                                          : GetColumn(buffer, &pos));
  if (head->size() != tail->size()) return Status::Corruption("head/tail size mismatch");
  return BatPtr(std::make_shared<Bat>(std::move(head), std::move(tail),
                                      UnpackProps(props_raw)));
}

}  // namespace dcy::bat
