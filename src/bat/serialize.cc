#include "bat/serialize.h"

#include <cstring>

#include "common/logging.h"

namespace dcy::bat {

namespace {

constexpr uint32_t kMagic = 0xDC10B47u;  // "DC1.0 BAT"
constexpr uint16_t kVersion = 1;

enum class HeadKind : uint8_t { kDense = 0, kMaterialized = 1 };

void PutBytes(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

template <typename T>
void Put(std::string* out, T v) {
  PutBytes(out, &v, sizeof(v));
}

template <typename T>
Status Get(const std::string& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return Status::Corruption("truncated BAT buffer");
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return Status::OK();
}

void PutColumn(std::string* out, const Column& c) {
  Put<uint8_t>(out, static_cast<uint8_t>(c.type()));
  Put<uint64_t>(out, c.size());
  if (c.type() == ValType::kStr) {
    const auto& sc = static_cast<const StrColumn&>(c);
    Put<uint64_t>(out, sc.offsets().size());
    PutBytes(out, sc.offsets().data(), sc.offsets().size() * sizeof(uint32_t));
    Put<uint64_t>(out, sc.heap().size());
    PutBytes(out, sc.heap().data(), sc.heap().size());
    return;
  }
  // Fixed width: write raw values via the int/double accessors so dense
  // columns (no backing array) serialize too.
  for (size_t i = 0; i < c.size(); ++i) {
    switch (c.type()) {
      case ValType::kOid: Put<uint64_t>(out, static_cast<uint64_t>(c.GetInt64(i))); break;
      case ValType::kInt:
      case ValType::kDate: Put<int32_t>(out, static_cast<int32_t>(c.GetInt64(i))); break;
      case ValType::kLng: Put<int64_t>(out, c.GetInt64(i)); break;
      case ValType::kDbl: Put<double>(out, c.GetDouble(i)); break;
      case ValType::kStr: break;  // unreachable
    }
  }
}

Result<ColumnPtr> GetColumn(const std::string& in, size_t* pos) {
  uint8_t type_raw = 0;
  uint64_t n = 0;
  DCY_RETURN_NOT_OK(Get(in, pos, &type_raw));
  DCY_RETURN_NOT_OK(Get(in, pos, &n));
  if (type_raw > static_cast<uint8_t>(ValType::kDate)) {
    return Status::Corruption("bad column type");
  }
  const ValType type = static_cast<ValType>(type_raw);
  if (type == ValType::kStr) {
    uint64_t num_offsets = 0;
    DCY_RETURN_NOT_OK(Get(in, pos, &num_offsets));
    if (num_offsets != n + 1) return Status::Corruption("bad offset count");
    std::vector<uint32_t> offsets(num_offsets);
    if (*pos + num_offsets * sizeof(uint32_t) > in.size()) {
      return Status::Corruption("truncated offsets");
    }
    std::memcpy(offsets.data(), in.data() + *pos, num_offsets * sizeof(uint32_t));
    *pos += num_offsets * sizeof(uint32_t);
    uint64_t heap_size = 0;
    DCY_RETURN_NOT_OK(Get(in, pos, &heap_size));
    if (*pos + heap_size > in.size()) return Status::Corruption("truncated heap");
    std::string heap(in.data() + *pos, heap_size);
    *pos += heap_size;
    return ColumnPtr(std::make_shared<StrColumn>(std::move(offsets), std::move(heap)));
  }
  ColumnBuilder builder(type);
  for (uint64_t i = 0; i < n; ++i) {
    switch (type) {
      case ValType::kOid: {
        uint64_t v = 0;
        DCY_RETURN_NOT_OK(Get(in, pos, &v));
        builder.AppendInt64(static_cast<int64_t>(v));
        break;
      }
      case ValType::kInt:
      case ValType::kDate: {
        int32_t v = 0;
        DCY_RETURN_NOT_OK(Get(in, pos, &v));
        builder.AppendInt64(v);
        break;
      }
      case ValType::kLng: {
        int64_t v = 0;
        DCY_RETURN_NOT_OK(Get(in, pos, &v));
        builder.AppendInt64(v);
        break;
      }
      case ValType::kDbl: {
        double v = 0;
        DCY_RETURN_NOT_OK(Get(in, pos, &v));
        builder.AppendDouble(v);
        break;
      }
      case ValType::kStr: break;  // unreachable
    }
  }
  return builder.Finish();
}

uint8_t PackProps(const Bat::Properties& p) {
  return static_cast<uint8_t>((p.tsorted ? 1 : 0) | (p.tkey ? 2 : 0) |
                              (p.hsorted ? 4 : 0) | (p.hkey ? 8 : 0));
}

Bat::Properties UnpackProps(uint8_t v) {
  Bat::Properties p;
  p.tsorted = (v & 1) != 0;
  p.tkey = (v & 2) != 0;
  p.hsorted = (v & 4) != 0;
  p.hkey = (v & 8) != 0;
  return p;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string Serialize(const Bat& b) {
  std::string out;
  out.reserve(b.ByteSize() + 64);
  Put<uint32_t>(&out, kMagic);
  Put<uint16_t>(&out, kVersion);
  Put<uint8_t>(&out, PackProps(b.props()));

  if (b.HasDenseHead()) {
    Put<uint8_t>(&out, static_cast<uint8_t>(HeadKind::kDense));
    Put<uint64_t>(&out, b.HeadSeqbase());
    Put<uint64_t>(&out, b.size());
  } else {
    Put<uint8_t>(&out, static_cast<uint8_t>(HeadKind::kMaterialized));
    PutColumn(&out, *b.head());
  }
  PutColumn(&out, *b.tail());
  Put<uint32_t>(&out, Crc32(out.data(), out.size()));
  return out;
}

Result<BatPtr> Deserialize(const std::string& buffer) {
  if (buffer.size() < 4 + 2 + 1 + 1 + 4) return Status::Corruption("BAT buffer too small");
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer.data() + buffer.size() - 4, 4);
  if (Crc32(buffer.data(), buffer.size() - 4) != stored_crc) {
    return Status::Corruption("BAT buffer CRC mismatch");
  }

  size_t pos = 0;
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t props_raw = 0, head_kind = 0;
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &magic));
  if (magic != kMagic) return Status::Corruption("bad BAT magic");
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &version));
  if (version != kVersion) return Status::Corruption("unsupported BAT version");
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &props_raw));
  DCY_RETURN_NOT_OK(Get(buffer, &pos, &head_kind));

  ColumnPtr head;
  if (head_kind == static_cast<uint8_t>(HeadKind::kDense)) {
    uint64_t seqbase = 0, n = 0;
    DCY_RETURN_NOT_OK(Get(buffer, &pos, &seqbase));
    DCY_RETURN_NOT_OK(Get(buffer, &pos, &n));
    head = MakeDenseOid(seqbase, n);
  } else {
    DCY_ASSIGN_OR_RETURN(head, GetColumn(buffer, &pos));
  }
  DCY_ASSIGN_OR_RETURN(ColumnPtr tail, GetColumn(buffer, &pos));
  if (head->size() != tail->size()) return Status::Corruption("head/tail size mismatch");
  return BatPtr(std::make_shared<Bat>(std::move(head), std::move(tail),
                                      UnpackProps(props_raw)));
}

}  // namespace dcy::bat
