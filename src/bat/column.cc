#include "bat/column.h"

#include <algorithm>

namespace dcy::bat {

const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kOid: return "oid";
    case ValType::kInt: return "int";
    case ValType::kLng: return "lng";
    case ValType::kDbl: return "dbl";
    case ValType::kStr: return "str";
    case ValType::kDate: return "date";
  }
  return "?";
}

bool IsFixedWidth(ValType t) { return t != ValType::kStr; }

size_t ValTypeWidth(ValType t) {
  switch (t) {
    case ValType::kOid: return sizeof(Oid);
    case ValType::kInt: return sizeof(int32_t);
    case ValType::kLng: return sizeof(int64_t);
    case ValType::kDbl: return sizeof(double);
    case ValType::kDate: return sizeof(int32_t);
    case ValType::kStr: return 0;
  }
  return 0;
}

bool Value::operator==(const Value& o) const {
  if (type != o.type) return false;
  switch (type) {
    case ValType::kDbl: return d == o.d;
    case ValType::kStr: return s == o.s;
    default: return i == o.i;
  }
}

std::string Value::ToString() const {
  switch (type) {
    case ValType::kOid: return std::to_string(i) + "@0";
    case ValType::kDbl: return std::to_string(d);
    case ValType::kStr: return "\"" + s + "\"";
    default: return std::to_string(i);
  }
}

std::string_view Column::GetString(size_t) const {
  DCY_FATAL() << "GetString on " << ValTypeName(type_) << " column";
  return {};
}

Value Column::GetValue(size_t i) const {
  switch (type_) {
    case ValType::kOid: return Value::MakeOid(static_cast<Oid>(GetInt64(i)));
    case ValType::kInt: return Value::MakeInt(static_cast<int32_t>(GetInt64(i)));
    case ValType::kLng: return Value::MakeLng(GetInt64(i));
    case ValType::kDate: return Value::MakeDate(static_cast<int32_t>(GetInt64(i)));
    case ValType::kDbl: return Value::MakeDbl(GetDouble(i));
    case ValType::kStr: return Value::MakeStr(std::string(GetString(i)));
  }
  return {};
}

bool Column::IsSorted() const {
  const int8_t cached = sorted_cache_.load(std::memory_order_acquire);
  if (cached != kSortedUnknown) return cached != 0;
  bool sorted = true;
  for (size_t i = 1; i < size_; ++i) {
    if (CompareRows(*this, i - 1, *this, i) > 0) {
      sorted = false;
      break;
    }
  }
  sorted_cache_.store(sorted ? 1 : 0, std::memory_order_release);
  return sorted;
}

uint32_t DictStrColumn::LowerBoundCode(std::string_view v) const {
  uint32_t lo = 0, hi = static_cast<uint32_t>(dict_->size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (dict_->GetString(mid) < v) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}

uint32_t DictStrColumn::UpperBoundCode(std::string_view v) const {
  uint32_t lo = 0, hi = static_cast<uint32_t>(dict_->size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (dict_->GetString(mid) <= v) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}

uint32_t DictStrColumn::FindCode(std::string_view v) const {
  const uint32_t c = LowerBoundCode(v);
  if (c < dict_->size() && dict_->GetString(c) == v) return c;
  return kNoCode;
}

ColumnBuilder::ColumnBuilder(ValType type) : type_(type) {}

void ColumnBuilder::AppendInt64(int64_t v) {
  switch (type_) {
    case ValType::kOid: oids_.push_back(static_cast<Oid>(v)); break;
    case ValType::kInt:
    case ValType::kDate: ints_.push_back(static_cast<int32_t>(v)); break;
    case ValType::kLng: lngs_.push_back(v); break;
    case ValType::kDbl: dbls_.push_back(static_cast<double>(v)); break;
    case ValType::kStr: DCY_FATAL() << "AppendInt64 on str builder";
  }
  ++count_;
}

void ColumnBuilder::AppendDouble(double v) {
  DCY_CHECK(type_ == ValType::kDbl);
  dbls_.push_back(v);
  ++count_;
}

void ColumnBuilder::AppendString(std::string_view v) {
  DCY_CHECK(type_ == ValType::kStr);
  heap_.append(v);
  offsets_.push_back(static_cast<uint32_t>(heap_.size()));
  ++count_;
}

void ColumnBuilder::AppendValue(const Value& v) {
  switch (type_) {
    case ValType::kDbl: AppendDouble(v.AsDouble()); break;
    case ValType::kStr: AppendString(v.s); break;
    default: AppendInt64(v.AsInt64()); break;
  }
}

namespace {

/// kInt and kDate share int32 storage; everything else stores as itself.
ValType StorageType(ValType t) { return t == ValType::kDate ? ValType::kInt : t; }

template <typename T>
void GatherInto(std::vector<T>* out, const T* src, const uint32_t* idx, size_t n) {
  const size_t base = out->size();
  out->resize(base + n);
  T* dst = out->data() + base;
  for (size_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

}  // namespace

void ColumnBuilder::Reserve(size_t n) {
  switch (type_) {
    case ValType::kOid: oids_.reserve(oids_.size() + n); break;
    case ValType::kInt:
    case ValType::kDate: ints_.reserve(ints_.size() + n); break;
    case ValType::kLng: lngs_.reserve(lngs_.size() + n); break;
    case ValType::kDbl: dbls_.reserve(dbls_.size() + n); break;
    case ValType::kStr: offsets_.reserve(offsets_.size() + n); break;
  }
}

void ColumnBuilder::AppendRaw(const void* data, size_t n) {
  if (n == 0) return;
  switch (type_) {
    case ValType::kOid: {
      const auto* p = static_cast<const Oid*>(data);
      oids_.insert(oids_.end(), p, p + n);
      break;
    }
    case ValType::kInt:
    case ValType::kDate: {
      const auto* p = static_cast<const int32_t*>(data);
      ints_.insert(ints_.end(), p, p + n);
      break;
    }
    case ValType::kLng: {
      const auto* p = static_cast<const int64_t*>(data);
      lngs_.insert(lngs_.end(), p, p + n);
      break;
    }
    case ValType::kDbl: {
      const auto* p = static_cast<const double*>(data);
      dbls_.insert(dbls_.end(), p, p + n);
      break;
    }
    case ValType::kStr: DCY_FATAL() << "AppendRaw on str builder";
  }
  count_ += n;
}

void ColumnBuilder::AppendColumnRange(const Column& c, size_t begin, size_t n) {
  if (n == 0) return;
  DCY_DCHECK(begin + n <= c.size());
  switch (c.kind()) {
    case ColumnKind::kStr: {
      DCY_CHECK(type_ == ValType::kStr);
      const auto& sc = static_cast<const StrColumn&>(c);
      const uint32_t lo = sc.offsets()[begin];
      const uint32_t hi = sc.offsets()[begin + n];
      const uint32_t base = static_cast<uint32_t>(heap_.size());
      heap_.append(sc.heap(), lo, hi - lo);
      offsets_.reserve(offsets_.size() + n);
      for (size_t i = 1; i <= n; ++i) {
        offsets_.push_back(base + (sc.offsets()[begin + i] - lo));
      }
      count_ += n;
      return;
    }
    case ColumnKind::kDense: {
      DCY_CHECK(type_ == ValType::kOid);
      const Oid seq = static_cast<const DenseOidColumn&>(c).seqbase() + begin;
      oids_.reserve(oids_.size() + n);
      for (size_t i = 0; i < n; ++i) oids_.push_back(seq + i);
      count_ += n;
      return;
    }
    case ColumnKind::kFixed: {
      DCY_CHECK(StorageType(type_) == StorageType(c.type()));
      AppendRaw(static_cast<const char*>(c.RawData()) + begin * ValTypeWidth(c.type()), n);
      return;
    }
    case ColumnKind::kDict: {
      DCY_CHECK(type_ == ValType::kStr);
      // Builders materialize plain strings; decode the codes row by row.
      const auto& dc = static_cast<const DictStrColumn&>(c);
      const uint32_t* codes = dc.codes().data();
      const StrColumn& dict = *dc.dict();
      offsets_.reserve(offsets_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        heap_.append(dict.GetString(codes[begin + i]));
        offsets_.push_back(static_cast<uint32_t>(heap_.size()));
      }
      count_ += n;
      return;
    }
  }
}

void ColumnBuilder::AppendGather(const Column& c, const uint32_t* idx, size_t n) {
  if (n == 0) return;
  switch (c.kind()) {
    case ColumnKind::kStr: {
      DCY_CHECK(type_ == ValType::kStr);
      const auto& sc = static_cast<const StrColumn&>(c);
      const uint32_t* offs = sc.offsets().data();
      offsets_.reserve(offsets_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t lo = offs[idx[i]], hi = offs[idx[i] + 1];
        heap_.append(sc.heap(), lo, hi - lo);
        offsets_.push_back(static_cast<uint32_t>(heap_.size()));
      }
      break;
    }
    case ColumnKind::kDense: {
      DCY_CHECK(type_ == ValType::kOid);
      const Oid seq = static_cast<const DenseOidColumn&>(c).seqbase();
      const size_t base = oids_.size();
      oids_.resize(base + n);
      for (size_t i = 0; i < n; ++i) oids_[base + i] = seq + idx[i];
      break;
    }
    case ColumnKind::kFixed: {
      DCY_CHECK(StorageType(type_) == StorageType(c.type()));
      switch (StorageType(c.type())) {
        case ValType::kOid:
          GatherInto(&oids_, static_cast<const Oid*>(c.RawData()), idx, n);
          break;
        case ValType::kInt:
          GatherInto(&ints_, static_cast<const int32_t*>(c.RawData()), idx, n);
          break;
        case ValType::kLng:
          GatherInto(&lngs_, static_cast<const int64_t*>(c.RawData()), idx, n);
          break;
        case ValType::kDbl:
          GatherInto(&dbls_, static_cast<const double*>(c.RawData()), idx, n);
          break;
        default: DCY_FATAL() << "bad fixed storage";
      }
      break;
    }
    case ColumnKind::kDict: {
      DCY_CHECK(type_ == ValType::kStr);
      const auto& dc = static_cast<const DictStrColumn&>(c);
      const uint32_t* codes = dc.codes().data();
      const StrColumn& dict = *dc.dict();
      offsets_.reserve(offsets_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        heap_.append(dict.GetString(codes[idx[i]]));
        offsets_.push_back(static_cast<uint32_t>(heap_.size()));
      }
      break;
    }
  }
  count_ += n;
}

ColumnPtr ColumnBuilder::Finish() {
  count_ = 0;
  switch (type_) {
    case ValType::kOid: return std::make_shared<OidColumn>(type_, std::move(oids_));
    case ValType::kInt:
    case ValType::kDate: return std::make_shared<IntColumn>(type_, std::move(ints_));
    case ValType::kLng: return std::make_shared<LngColumn>(type_, std::move(lngs_));
    case ValType::kDbl: return std::make_shared<DblColumn>(type_, std::move(dbls_));
    case ValType::kStr: {
      auto col = std::make_shared<StrColumn>(std::move(offsets_), std::move(heap_));
      offsets_ = {0};  // restore the sentinel so the emptied builder is reusable
      heap_.clear();
      return col;
    }
  }
  return nullptr;
}

ColumnPtr MakeOidColumn(std::vector<Oid> v) {
  return std::make_shared<OidColumn>(ValType::kOid, std::move(v));
}
ColumnPtr MakeIntColumn(std::vector<int32_t> v) {
  return std::make_shared<IntColumn>(ValType::kInt, std::move(v));
}
ColumnPtr MakeLngColumn(std::vector<int64_t> v) {
  return std::make_shared<LngColumn>(ValType::kLng, std::move(v));
}
ColumnPtr MakeDblColumn(std::vector<double> v) {
  return std::make_shared<DblColumn>(ValType::kDbl, std::move(v));
}
ColumnPtr MakeDateColumn(std::vector<int32_t> days) {
  return std::make_shared<IntColumn>(ValType::kDate, std::move(days));
}
ColumnPtr MakeStrColumn(const std::vector<std::string>& v) {
  ColumnBuilder b(ValType::kStr);
  for (const auto& s : v) b.AppendString(s);
  return b.Finish();
}
ColumnPtr MakeDenseOid(Oid seqbase, size_t n) {
  return std::make_shared<DenseOidColumn>(seqbase, n);
}

int CompareRows(const Column& a, size_t i, const Column& b, size_t j) {
  if (a.type() == ValType::kStr) {
    DCY_DCHECK(b.type() == ValType::kStr);
    return a.GetString(i).compare(b.GetString(j));
  }
  if (a.type() == ValType::kDbl || b.type() == ValType::kDbl) {
    const double x = a.GetDouble(i), y = b.GetDouble(j);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const int64_t x = a.GetInt64(i), y = b.GetInt64(j);
  return x < y ? -1 : (x > y ? 1 : 0);
}

}  // namespace dcy::bat
