#include "bat/bat.h"

#include "common/logging.h"

namespace dcy::bat {

Bat::Bat(ColumnPtr head, ColumnPtr tail)
    : Bat(std::move(head), std::move(tail), Properties{}) {}

Bat::Bat(ColumnPtr head, ColumnPtr tail, Properties props)
    : head_(std::move(head)), tail_(std::move(tail)), props_(props) {
  DCY_CHECK(head_ != nullptr && tail_ != nullptr);
  DCY_CHECK(head_->size() == tail_->size())
      << "head/tail size mismatch: " << head_->size() << " vs " << tail_->size();
}

BatPtr Bat::MakeColumn(ColumnPtr tail, Oid seqbase) {
  Properties props;
  props.hsorted = true;
  props.hkey = true;
  auto head = MakeDenseOid(seqbase, tail->size());
  return std::make_shared<Bat>(std::move(head), std::move(tail), props);
}

Bat::Properties Bat::ScanProperties(const Column& head, const Column& tail) {
  Properties p;
  p.hsorted = head.IsSorted();
  p.tsorted = tail.IsSorted();
  auto all_distinct = [](const Column& c) {
    // Cheap check only for sorted columns; unsorted => unknown (false).
    for (size_t i = 1; i < c.size(); ++i) {
      if (CompareRows(c, i - 1, c, i) == 0) return false;
    }
    return true;
  };
  p.hkey = p.hsorted && all_distinct(head);
  p.tkey = p.tsorted && all_distinct(tail);
  return p;
}

bool Bat::HasDenseHead() const { return head_->kind() == ColumnKind::kDense; }

Oid Bat::HeadSeqbase() const {
  DCY_CHECK(head_->kind() == ColumnKind::kDense) << "head is not dense";
  return static_cast<const DenseOidColumn&>(*head_).seqbase();
}

std::string Bat::ToString(size_t limit) const {
  std::string out = "BAT[" + std::string(ValTypeName(head_type())) + "," +
                    ValTypeName(tail_type()) + "] #" + std::to_string(size()) + "\n";
  const size_t n = std::min(limit, size());
  for (size_t i = 0; i < n; ++i) {
    out += "  [" + head_->GetValue(i).ToString() + ", " + tail_->GetValue(i).ToString() +
           "]\n";
  }
  if (size() > n) out += "  ... (" + std::to_string(size() - n) + " more)\n";
  return out;
}

}  // namespace dcy::bat
