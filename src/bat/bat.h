// Classic MonetDB-style Binary Association Tables: a BAT is a mapping from a
// head column to a tail column (paper §3.1). Operators over BATs live in
// bat/operators.h; serialization for ring transport in bat/serialize.h.
#pragma once

#include <memory>
#include <string>

#include "bat/column.h"
#include "common/status.h"

namespace dcy::bat {

class Bat;
using BatPtr = std::shared_ptr<const Bat>;

/// \brief An immutable two-column association table.
///
/// Properties (`tsorted`, `tkey`) mirror MonetDB's: "Additional BAT
/// properties are used to steer selection of more efficient algorithms,
/// e.g., sorted columns lead to sort-merge join operations" (§3.1).
class Bat {
 public:
  struct Properties {
    bool tsorted = false;  ///< tail is non-decreasing
    bool tkey = false;     ///< tail values are unique
    bool hsorted = false;  ///< head is non-decreasing (dense heads are)
    bool hkey = false;     ///< head values are unique
  };

  Bat(ColumnPtr head, ColumnPtr tail);
  Bat(ColumnPtr head, ColumnPtr tail, Properties props);

  /// A standard column BAT: dense head [seqbase..) and the given tail.
  static BatPtr MakeColumn(ColumnPtr tail, Oid seqbase = 0);
  /// Derives sortedness/key properties by scanning (O(n), used by tests
  /// and loaders, not by operators).
  static Properties ScanProperties(const Column& head, const Column& tail);

  const ColumnPtr& head() const { return head_; }
  const ColumnPtr& tail() const { return tail_; }
  size_t size() const { return head_->size(); }
  const Properties& props() const { return props_; }

  ValType head_type() const { return head_->type(); }
  ValType tail_type() const { return tail_->type(); }

  /// True if the head is a dense oid range.
  bool HasDenseHead() const;
  /// Requires HasDenseHead().
  Oid HeadSeqbase() const;

  /// Payload bytes (head + tail); the quantity the ring's queue accounting
  /// uses for this fragment.
  uint64_t ByteSize() const { return head_->ByteSize() + tail_->ByteSize(); }

  /// Renders up to `limit` rows for debugging: "[head, tail]" per line.
  std::string ToString(size_t limit = 16) const;

 private:
  ColumnPtr head_;
  ColumnPtr tail_;
  Properties props_;
};

}  // namespace dcy::bat
