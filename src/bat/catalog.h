// The named persistent-BAT catalog of one node's DC data loader: maps
// "schema.table.column" names to fragments, tracks which are resident in
// memory vs spilled to local cold storage ("Infrequently used BATs are
// retained on a local disk at the discretion of the DC data loader", §4).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"
#include "core/types.h"

namespace dcy::bat {

/// \brief Read-side interface over one node's persistent fragments. The MAL
/// interpreter's sql.bind and the session pin path fetch payloads through it
/// without knowing which tier (RAM, disk) currently holds them; BatCatalog
/// implements it directly, storage::FragmentStore implements it with a
/// budgeted two-tier store behind.
class FragmentSource {
 public:
  virtual ~FragmentSource() = default;

  /// Fetches by qualified name; NotFound if absent. May fault a spilled
  /// fragment back in; the returned pointer stays valid regardless of later
  /// evictions (fragments are immutable and shared).
  virtual Result<BatPtr> GetByName(const std::string& name) = 0;
  /// Fetches by ring fragment id.
  virtual Result<BatPtr> GetById(core::BatId id) = 0;
};

/// \brief Thread-safe name -> BAT store with optional disk spill.
class BatCatalog : public FragmentSource {
 public:
  /// `spill_dir` empty disables cold storage (everything stays in memory).
  explicit BatCatalog(std::string spill_dir = "");

  /// Registers a BAT under `name` with the given ring fragment id.
  /// Fails on duplicate names or ids.
  Status Register(const std::string& name, core::BatId id, BatPtr bat);

  /// Looks up by qualified name. NotFound if absent; reads back from disk
  /// if spilled.
  Result<BatPtr> GetByName(const std::string& name) override;
  /// Looks up by fragment id.
  Result<BatPtr> GetById(core::BatId id) override;

  /// The fragment id for a name.
  Result<core::BatId> IdOf(const std::string& name) const;
  /// Payload size of a fragment.
  Result<uint64_t> SizeOf(core::BatId id) const;

  /// Writes the BAT to cold storage and drops the in-memory copy.
  Status Spill(core::BatId id);
  /// True if the fragment currently has no in-memory copy.
  bool IsSpilled(core::BatId id) const;

  /// Removes a fragment entirely.
  Status Drop(core::BatId id);

  std::vector<std::string> Names() const;
  size_t size() const;
  uint64_t resident_bytes() const;

 private:
  struct Entry {
    std::string name;
    core::BatId id = core::kInvalidBat;
    BatPtr bat;        // null when spilled
    uint64_t bytes = 0;
    std::string path;  // spill file; empty if never spilled
  };

  std::string SpillPath(const Entry& e) const;

  mutable std::mutex mu_;
  std::string spill_dir_;
  std::map<std::string, core::BatId> by_name_;
  std::map<core::BatId, Entry> by_id_;
  uint64_t resident_bytes_ = 0;
};

}  // namespace dcy::bat
