// The binary relational algebra over BATs used by the paper's MAL plans
// (§3.2, Tables 1-2): reverse / mark / join / select / semijoin / kdiff /
// kunion / group / aggregates / sort / slice, plus aligned batcalc
// arithmetic. All fallible operators return Result<BatPtr>.
#pragma once

#include "bat/bat.h"
#include "common/status.h"

namespace dcy::bat {

// ---- shape operators --------------------------------------------------------

/// reverse(b): BAT[tail, head] — O(1), shares columns.
BatPtr Reverse(const BatPtr& b);

/// markT(b, base): BAT[b.head, dense oids from base] — renumbers the tail.
/// (Paper Table 1: `algebra.markT(X10, 0@0)`.)
BatPtr MarkT(const BatPtr& b, Oid base);

/// markH(b, base): BAT[dense oids from base, b.tail].
BatPtr MarkH(const BatPtr& b, Oid base);

/// mirror(b): BAT[b.head, b.head].
BatPtr Mirror(const BatPtr& b);

/// slice(b, lo, hi): rows [lo, hi) by position.
Result<BatPtr> Slice(const BatPtr& b, size_t lo, size_t hi);

// ---- joins -----------------------------------------------------------------

/// join(l, r): { [l.head, r.tail] : l.tail == r.head } — the classic BAT
/// equi-join. Picks merge join when both join columns are sorted, hash join
/// otherwise (paper §3.1). Types of l.tail and r.head must match.
Result<BatPtr> Join(const BatPtr& l, const BatPtr& r);

/// leftjoin(l, r): like join but guarantees l's row order in the output
/// (our hash join probes l in order, so this is join with order asserted).
Result<BatPtr> LeftJoin(const BatPtr& l, const BatPtr& r);

/// semijoin(l, r): rows of l whose head appears in r's head.
Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r);

/// kdiff(l, r): rows of l whose head does NOT appear in r's head.
Result<BatPtr> KDiff(const BatPtr& l, const BatPtr& r);

/// kunion(l, r): l plus the rows of r whose head is not in l's head.
Result<BatPtr> KUnion(const BatPtr& l, const BatPtr& r);

// ---- selections --------------------------------------------------------------

/// select(b, v): rows with tail == v.
Result<BatPtr> Select(const BatPtr& b, const Value& v);

/// select(b, lo, hi): rows with lo <= tail <= hi (inclusive range, as the
/// MAL algebra.select).
Result<BatPtr> SelectRange(const BatPtr& b, const Value& lo, const Value& hi);

/// uselect(b, v): like select but the tail is dropped (head-only result
/// with a void/dense tail), MonetDB-style.
Result<BatPtr> USelect(const BatPtr& b, const Value& v);

/// Comparison predicates for ThetaSelect.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// thetaselect(b, v, op): rows whose tail satisfies `tail op v`. Strings
/// compare lexicographically against string values only; numeric tails
/// compare as int64 when both sides are integral, as double otherwise.
/// kEq delegates to the adaptive Select kernel.
Result<BatPtr> ThetaSelect(const BatPtr& b, const Value& v, CmpOp op);

// ---- grouping & aggregation ---------------------------------------------------

/// group(b): BAT[b.head, group-id] assigning a dense group id (0-based, in
/// order of first appearance) to each distinct tail value.
Result<BatPtr> GroupId(const BatPtr& b);

/// groupValues(b): BAT[dense gid, representative tail value per group].
Result<BatPtr> GroupValues(const BatPtr& b);

/// refine(col, gids): MonetDB's group.subgroup — regroups over the pairs
/// (gids[i], col[i]), assigning dense new group ids (0-based, first
/// appearance order). `col` and `gids` must be positionally aligned; the
/// SQL front end chains this to group by several columns.
Result<BatPtr> GroupRefine(const BatPtr& col, const BatPtr& gids);

/// extents(gids): BAT[dense gid, head oid of the group's first row]. `gids`
/// must carry dense group ids (every id in [0, max] present), as GroupId
/// and GroupRefine produce. Joining the result against an aligned column
/// projects that column's per-group representative value.
Result<BatPtr> GroupExtents(const BatPtr& gids);

/// count(b): number of rows.
uint64_t Count(const BatPtr& b);

/// sum/min/max/avg over the tail (numeric tails only).
Result<Value> Sum(const BatPtr& b);
Result<Value> Min(const BatPtr& b);
Result<Value> Max(const BatPtr& b);
Result<Value> Avg(const BatPtr& b);

/// Grouped aggregates: `values` is BAT[x, v], `gids` is BAT[x, gid] aligned
/// by position; result is BAT[dense gid, aggregate].
Result<BatPtr> SumPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups);
Result<BatPtr> CountPerGroup(const BatPtr& gids, size_t num_groups);

/// Per-group extremes (numeric tails). Integer-family values aggregate and
/// return as lng, doubles as dbl. Every group in [0, num_groups) must have
/// at least one row (an empty group has no extreme).
Result<BatPtr> MinPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups);
Result<BatPtr> MaxPerGroup(const BatPtr& values, const BatPtr& gids, size_t num_groups);

// ---- ordering -----------------------------------------------------------------

/// sort(b): rows reordered by ascending tail.
Result<BatPtr> Sort(const BatPtr& b);

/// topn(b, n, descending): the n rows with the largest (or smallest) tails.
Result<BatPtr> TopN(const BatPtr& b, size_t n, bool descending = true);

// ---- aligned arithmetic (batcalc) ----------------------------------------------

enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Element-wise arithmetic on positionally aligned BATs: [h, a] op [h, b]
/// -> [h, a op b] as dbl.
Result<BatPtr> Arith(const BatPtr& a, const BatPtr& b, ArithOp op);

/// Element-wise arithmetic with a scalar: [h, a] op v.
Result<BatPtr> ArithConst(const BatPtr& a, const Value& v, ArithOp op);

/// project(b, v): BAT[b.head, constant v].
BatPtr ProjectConst(const BatPtr& b, const Value& v);

}  // namespace dcy::bat
