// Typed column storage for the mini column-store (the MonetDB stand-in the
// Data Cyclotron extends, paper §3). Columns are immutable after
// construction by a builder; BATs share them by shared_ptr so algebra
// operators (reverse, slice, views) are cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace dcy::bat {

/// Object identifier: the row identity of classic BATs.
using Oid = uint64_t;

/// Column value types (MonetDB atom subset).
enum class ValType : uint8_t {
  kOid = 0,  ///< row identifiers
  kInt,      ///< int32
  kLng,      ///< int64
  kDbl,      ///< double
  kStr,      ///< variable-length string
  kDate,     ///< days since epoch, stored as int32
};

const char* ValTypeName(ValType t);
bool IsFixedWidth(ValType t);
size_t ValTypeWidth(ValType t);

/// \brief A scalar value used for literals and aggregate results.
struct Value {
  ValType type = ValType::kLng;
  int64_t i = 0;     // kOid/kInt/kLng/kDate
  double d = 0.0;    // kDbl
  std::string s;     // kStr

  static Value MakeOid(Oid v) { return {ValType::kOid, static_cast<int64_t>(v), 0.0, {}}; }
  static Value MakeInt(int32_t v) { return {ValType::kInt, v, 0.0, {}}; }
  static Value MakeLng(int64_t v) { return {ValType::kLng, v, 0.0, {}}; }
  static Value MakeDbl(double v) { return {ValType::kDbl, 0, v, {}}; }
  static Value MakeStr(std::string v) { return {ValType::kStr, 0, 0.0, std::move(v)}; }
  static Value MakeDate(int32_t days) { return {ValType::kDate, days, 0.0, {}}; }

  /// Numeric view (dates and oids included); 0 for strings.
  double AsDouble() const { return type == ValType::kDbl ? d : static_cast<double>(i); }
  int64_t AsInt64() const { return type == ValType::kDbl ? static_cast<int64_t>(d) : i; }

  bool operator==(const Value& o) const;
  std::string ToString() const;
};

/// Physical layout of a column, used by the vectorized kernels (bat/kernels.h)
/// to pick raw-array fast paths without dynamic_cast.
enum class ColumnKind : uint8_t {
  kFixed,  ///< materialized fixed-width array (FixedColumn<T>)
  kDense,  ///< virtual dense oid range (DenseOidColumn)
  kStr,    ///< offsets + byte heap (StrColumn)
  kDict,   ///< dictionary-encoded strings: sorted dict + u32 codes (DictStrColumn)
};

/// \brief Read-only typed view over a contiguous fixed-width payload; the
/// currency of the vectorized kernels (C++17 stand-in for std::span).
template <typename T>
struct Span {
  const T* data = nullptr;
  size_t size = 0;

  const T* begin() const { return data; }
  const T* end() const { return data == nullptr ? nullptr : data + size; }
  T operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
  explicit operator bool() const { return data != nullptr; }
};

/// \brief Abstract immutable column. Concrete layouts: fixed-width vectors,
/// a dense oid range (virtual column), and a string heap.
class Column {
 public:
  virtual ~Column() = default;

  ValType type() const { return type_; }
  size_t size() const { return size_; }
  ColumnKind kind() const { return kind_; }

  /// Integer view of row i (valid for kOid/kInt/kLng/kDate).
  virtual int64_t GetInt64(size_t i) const = 0;
  /// Floating view of row i (valid for all numeric types).
  virtual double GetDouble(size_t i) const = 0;
  /// String view of row i (valid for kStr only).
  virtual std::string_view GetString(size_t i) const;

  /// Raw pointer to the materialized fixed-width payload, or nullptr when
  /// the column has none (dense oid range, string heap).
  virtual const void* RawData() const { return nullptr; }

  /// Typed span over the materialized fixed-width payload; empty (null data)
  /// for dense and string columns. T must match the physical element width.
  template <typename T>
  Span<T> FixedData() const {
    const void* p = RawData();
    if (p == nullptr) return {};
    DCY_DCHECK(sizeof(T) == ValTypeWidth(type_));
    return {static_cast<const T*>(p), size_};
  }

  /// Boxed value of row i.
  Value GetValue(size_t i) const;

  /// Total payload bytes (drives ring BAT sizes).
  virtual uint64_t ByteSize() const = 0;

  /// True if rows are non-decreasing (used to pick merge algorithms).
  /// Memoized: the O(n) scan runs once per column; columns are immutable
  /// after construction, so the cache can never go stale — appends happen
  /// in ColumnBuilder and produce a fresh column (fresh cache) on Finish.
  bool IsSorted() const;

  /// True once IsSorted() has memoized its answer (regression-test hook for
  /// the caching behaviour; not meaningful to operators).
  bool SortednessKnown() const {
    return sorted_cache_.load(std::memory_order_acquire) != kSortedUnknown;
  }

  /// Seeds the memoized IsSorted() cache from an external classification —
  /// the wire frame carries the sender's answer so receivers never rescan
  /// a column the sender already classified. First writer wins; a column
  /// that has already scanned (or been seeded) keeps its answer.
  void SeedSortedness(bool sorted) const {
    int8_t expected = kSortedUnknown;
    sorted_cache_.compare_exchange_strong(expected, sorted ? 1 : 0,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

 protected:
  Column(ColumnKind kind, ValType type, size_t size)
      : type_(type), size_(size), kind_(kind) {}

  ValType type_;
  size_t size_;
  ColumnKind kind_;

 private:
  static constexpr int8_t kSortedUnknown = -1;
  /// -1 unknown, 0 unsorted, 1 sorted. Concurrent IsSorted() calls may both
  /// scan, but they store the same answer (benign, race-free via atomics).
  mutable std::atomic<int8_t> sorted_cache_{kSortedUnknown};
};

using ColumnPtr = std::shared_ptr<const Column>;

/// \brief Fixed-width column over a materialized vector.
template <typename T>
class FixedColumn final : public Column {
 public:
  FixedColumn(ValType type, std::vector<T> values)
      : Column(ColumnKind::kFixed, type, values.size()), values_(std::move(values)) {}

  int64_t GetInt64(size_t i) const override { return static_cast<int64_t>(values_[i]); }
  double GetDouble(size_t i) const override { return static_cast<double>(values_[i]); }
  uint64_t ByteSize() const override { return values_.size() * sizeof(T); }
  const void* RawData() const override { return values_.data(); }

  const std::vector<T>& values() const { return values_; }

 private:
  std::vector<T> values_;
};

using OidColumn = FixedColumn<Oid>;
using IntColumn = FixedColumn<int32_t>;
using LngColumn = FixedColumn<int64_t>;
using DblColumn = FixedColumn<double>;

/// \brief Dense oid range [seqbase, seqbase + n): the virtual head of a
/// MonetDB BAT. Materialization-free.
class DenseOidColumn final : public Column {
 public:
  DenseOidColumn(Oid seqbase, size_t n)
      : Column(ColumnKind::kDense, ValType::kOid, n), seqbase_(seqbase) {}

  int64_t GetInt64(size_t i) const override { return static_cast<int64_t>(seqbase_ + i); }
  double GetDouble(size_t i) const override { return static_cast<double>(seqbase_ + i); }
  uint64_t ByteSize() const override { return 0; }  // virtual: no storage

  Oid seqbase() const { return seqbase_; }

 private:
  Oid seqbase_;
};

/// \brief Variable-length string column (offsets + byte heap, Arrow-style).
class StrColumn final : public Column {
 public:
  StrColumn(std::vector<uint32_t> offsets, std::string heap)
      : Column(ColumnKind::kStr, ValType::kStr, offsets.empty() ? 0 : offsets.size() - 1),
        offsets_(std::move(offsets)),
        heap_(std::move(heap)) {}

  int64_t GetInt64(size_t) const override {
    DCY_FATAL() << "GetInt64 on string column";
    return 0;
  }
  double GetDouble(size_t) const override {
    DCY_FATAL() << "GetDouble on string column";
    return 0;
  }
  std::string_view GetString(size_t i) const override {
    return std::string_view(heap_).substr(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }
  uint64_t ByteSize() const override {
    return offsets_.size() * sizeof(uint32_t) + heap_.size();
  }

  const std::vector<uint32_t>& offsets() const { return offsets_; }
  const std::string& heap() const { return heap_; }

 private:
  std::vector<uint32_t> offsets_;
  std::string heap_;
};

/// \brief Dictionary-encoded string column: a lexicographically *sorted*
/// dictionary (shared between columns decoded from the same frame and across
/// gathers) plus one u32 code per row. Because the dictionary is sorted,
/// code order equals string order, so comparisons, range predicates, sorts
/// and group-ids can run on the codes without touching the heap
/// (bat/encoding.h has the code-space kernels). Produced by deserializing a
/// dictionary-coded wire frame; builders always materialize plain strings.
class DictStrColumn final : public Column {
 public:
  /// Sentinel for "string absent from the dictionary".
  static constexpr uint32_t kNoCode = 0xFFFFFFFFu;

  DictStrColumn(std::shared_ptr<const StrColumn> dict, std::vector<uint32_t> codes)
      : Column(ColumnKind::kDict, ValType::kStr, codes.size()),
        dict_(std::move(dict)),
        codes_(std::move(codes)) {
    DCY_DCHECK(dict_ != nullptr);
  }

  int64_t GetInt64(size_t) const override {
    DCY_FATAL() << "GetInt64 on dict string column";
    return 0;
  }
  double GetDouble(size_t) const override {
    DCY_FATAL() << "GetDouble on dict string column";
    return 0;
  }
  std::string_view GetString(size_t i) const override {
    return dict_->GetString(codes_[i]);
  }
  uint64_t ByteSize() const override {
    return codes_.size() * sizeof(uint32_t) + dict_->ByteSize();
  }

  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::shared_ptr<const StrColumn>& dict() const { return dict_; }
  size_t dict_size() const { return dict_->size(); }

  /// Code of the first dictionary entry >= v (== dict_size() when none).
  uint32_t LowerBoundCode(std::string_view v) const;
  /// Code of the first dictionary entry > v (== dict_size() when none).
  uint32_t UpperBoundCode(std::string_view v) const;
  /// Exact-match code for v, or kNoCode when v is not in the dictionary.
  uint32_t FindCode(std::string_view v) const;

 private:
  std::shared_ptr<const StrColumn> dict_;
  std::vector<uint32_t> codes_;
};

/// \brief Append-only builder producing an immutable Column.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(ValType type);

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendValue(const Value& v);

  /// Pre-sizes the backing storage for n upcoming appends.
  void Reserve(size_t n);

  /// Bulk-appends n elements of the builder's physical width from a raw
  /// array (one memcpy-style insert; fixed-width builders only). T must
  /// match the storage type: Oid / int32_t / int64_t / double.
  template <typename T>
  void AppendSpan(Span<T> s) {
    AppendRaw(s.data, s.size);
  }
  void AppendRaw(const void* data, size_t n);

  /// Bulk-appends rows [begin, begin + n) of `c` (same value type family as
  /// the builder): raw memcpy for fixed columns, iota for dense oid ranges,
  /// offset-rebased heap splice for strings.
  void AppendColumnRange(const Column& c, size_t begin, size_t n);

  /// Bulk-appends c[idx[i]] for i in [0, n) with type-specialized gather
  /// loops (no per-row boxing).
  void AppendGather(const Column& c, const uint32_t* idx, size_t n);

  size_t size() const { return count_; }

  /// Finalizes; the builder is empty afterwards.
  ColumnPtr Finish();

 private:
  ValType type_;
  size_t count_ = 0;
  std::vector<Oid> oids_;
  std::vector<int32_t> ints_;
  std::vector<int64_t> lngs_;
  std::vector<double> dbls_;
  std::vector<uint32_t> offsets_ = {0};
  std::string heap_;
};

/// Convenience constructors.
ColumnPtr MakeOidColumn(std::vector<Oid> v);
ColumnPtr MakeIntColumn(std::vector<int32_t> v);
ColumnPtr MakeLngColumn(std::vector<int64_t> v);
ColumnPtr MakeDblColumn(std::vector<double> v);
ColumnPtr MakeDateColumn(std::vector<int32_t> days);
ColumnPtr MakeStrColumn(const std::vector<std::string>& v);
ColumnPtr MakeDenseOid(Oid seqbase, size_t n);

/// Three-way comparison of rows across (possibly different) columns of the
/// same type family. Strings compare lexicographically.
int CompareRows(const Column& a, size_t i, const Column& b, size_t j);

}  // namespace dcy::bat
