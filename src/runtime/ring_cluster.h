// The live Data Cyclotron runtime: a ring of node threads moving real BAT
// payloads over the RDMA-emulating channels, running the *same* protocol
// state machine (core::DcNode) that the simulator validates, and executing
// real MAL plans rewritten by the DcOptimizer.
//
// Threading model: each node runs one service thread that owns its DcNode
// (single-writer, as in the simulator); query sessions run on caller
// threads and talk to the service thread through a mailbox, blocking in
// pin() on a future until the fragment flows by — exactly the paper's §4.1
// execution contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bat/catalog.h"
#include "common/status.h"
#include "core/dc_node.h"
#include "exec/executor.h"
#include "mal/interpreter.h"
#include "opt/dc_optimizer.h"
#include "rdma/channel.h"

namespace dcy::runtime {

/// \brief Outcome of one query execution on the ring.
struct QueryOutcome {
  std::string printed;        ///< io.stdout output of the plan
  mal::Datum result;          ///< last assigned variable
  core::QueryId query_id = 0;
  double wall_seconds = 0.0;
};

/// \brief A complete in-process ring.
class RingCluster {
 public:
  /// One ring member (opaque; owned by the cluster).
  class Node;

  struct Options {
    uint32_t num_nodes = 3;
    rdma::TransferMode mode = rdma::TransferMode::kZeroCopy;
    /// Logical BAT-queue capacity per node (admission + LOIT input).
    uint64_t bat_queue_capacity = 64 * kMB;
    bool adaptive_loit = true;
    double static_loit = 0.1;
    core::AdaptiveLoit::Options adaptive;
    core::DcNodeOptions node;  // node_id/ring_size filled per node
    /// Spill directory root ("" keeps all cold data in memory).
    std::string spill_dir;
    /// Max instructions of one plan executing concurrently (dataflow width).
    /// Plans run as tasks on the process-wide exec::Executor — no threads
    /// are created per query.
    size_t plan_workers = 4;
    /// Morsel-parallel kernel policy (workers / morsel_rows / threshold),
    /// applied process-wide at Start(). Concurrent query sessions share the
    /// executor's fixed pool instead of oversubscribing the machine.
    exec::ExecPolicy exec_policy;
  };

  explicit RingCluster(Options options);
  ~RingCluster();

  RingCluster(const RingCluster&) = delete;
  RingCluster& operator=(const RingCluster&) = delete;

  /// Registers a persistent BAT on `owner` (before or after Start).
  /// The qualified name must be "schema.table.column".
  Status LoadBat(core::NodeId owner, const std::string& name, bat::BatPtr bat);

  /// Starts the node service threads.
  void Start();
  /// Stops and joins everything (idempotent; also run by the destructor).
  void Stop();

  /// Parses, DC-optimizes (unless the plan has no sql.bind), and executes a
  /// MAL plan "at" the given node. Blocking; thread-safe.
  Result<QueryOutcome> ExecuteMal(core::NodeId node, const std::string& mal_text,
                                  bool optimize = true);

  uint32_t num_nodes() const { return options_.num_nodes; }
  /// Protocol metrics of a node (snapshot; service thread keeps mutating).
  core::DcNodeMetrics NodeMetrics(core::NodeId node) const;
  /// Total payload bytes moved clockwise so far.
  uint64_t TotalDataBytesMoved() const;
  const Options& options() const { return options_; }

 private:
  friend class Node;

  Options options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Global name -> fragment directory (immutable after LoadBat calls).
  std::mutex directory_mu_;
  std::unordered_map<std::string, core::BatId> directory_;
  std::unordered_map<core::BatId, uint64_t> sizes_;
  std::atomic<core::BatId> next_bat_{1};
  std::atomic<core::QueryId> next_query_{1};
  std::atomic<bool> started_{false};
};

}  // namespace dcy::runtime
