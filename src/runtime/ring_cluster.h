// The live Data Cyclotron runtime: a ring of node threads moving real BAT
// payloads over the RDMA-emulating channels, running the *same* protocol
// state machine (core::DcNode) that the simulator validates, and executing
// real MAL plans rewritten by the DcOptimizer.
//
// Threading model: each node runs one service thread that owns its DcNode
// (single-writer, as in the simulator). Queries enter through the session
// API (runtime/session.h): Submit() places them in the node's FIFO
// admission queue and a fixed pool of per-node query runners (created once
// at Start) executes at most AdmissionOptions::max_concurrent of them at a
// time, each blocking in pin() on a future until the fragment flows by —
// exactly the paper's §4.1 execution contract, bounded per node.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bat/catalog.h"
#include "common/status.h"
#include "core/admission.h"
#include "core/dc_node.h"
#include "exec/executor.h"
#include "mal/interpreter.h"
#include "net/reliable.h"
#include "opt/dc_optimizer.h"
#include "rdma/channel.h"
#include "rdma/fault.h"
#include "runtime/session.h"
#include "sql/schema.h"
#include "storage/fragment_store.h"
#include "write/write_log.h"

namespace dcy::runtime {

/// \brief Fault-tolerance tunables of the live ring.
struct ResilienceOptions {
  /// Hop-level retry/backoff of every directed neighbour link.
  net::ReliableOptions link;
  /// Neighbour heartbeat cadence on the control channel.
  SimTime heartbeat_period = FromMillis(25);
  /// Silence from a neighbour for `heartbeat_miss_threshold` periods makes
  /// a node report it as suspect (crash detection latency ~= product).
  uint32_t heartbeat_miss_threshold = 8;
  bool enable_heartbeats = true;
  /// On a confirmed node death, re-register its fragments on the next alive
  /// node (the heir) so the data survives the owner. When off, pins on the
  /// dead node's fragments fail with Unavailable instead.
  bool auto_rehome = true;
  /// Seed for the per-link backoff jitter streams.
  uint64_t seed = 0xDC0FA17u;
  /// Frames whose owner died keep circulating until adopted; after this many
  /// hops they are dropped as orphans. 0 = the default bound of
  /// 2 * num_nodes + 4 (one full lap plus slack for in-flight duplicates).
  uint32_t orphan_hop_limit = 0;
  /// Longest a node's service thread sleeps when idle (reaction latency to
  /// work posted from other threads).
  SimTime idle_wait = FromMicros(200);
};

/// \brief Legacy outcome of one blocking ExecuteMal call. New code should
/// use the session API and its typed QueryResult instead; this struct
/// survives for the compatibility wrapper.
struct QueryOutcome {
  std::string printed;        ///< exported result rendered as text
  mal::Datum result;          ///< last assigned variable
  core::QueryId query_id = 0;
  double wall_seconds = 0.0;  ///< execution wall time (steady_clock)
  double pin_blocked_seconds = 0.0;  ///< summed blocked-pin wait
};

/// \brief A complete in-process ring.
class RingCluster {
 public:
  /// One ring member (opaque; owned by the cluster).
  class Node;

  struct Options {
    uint32_t num_nodes = 3;
    rdma::TransferMode mode = rdma::TransferMode::kZeroCopy;
    /// Logical BAT-queue capacity per node (admission + LOIT input).
    uint64_t bat_queue_capacity = 64 * kMB;
    bool adaptive_loit = true;
    double static_loit = 0.1;
    core::AdaptiveLoit::Options adaptive;
    core::DcNodeOptions node;  // node_id/ring_size filled per node
    /// Spill directory root ("" keeps all cold data in memory).
    std::string spill_dir;
    /// Max instructions of one plan executing concurrently (dataflow width).
    /// Plans run as tasks on the process-wide exec::Executor — no threads
    /// are created per query.
    size_t plan_workers = 4;
    /// Morsel-parallel kernel policy (workers / morsel_rows / threshold /
    /// join_partitions for the radix-partitioned hash build), applied
    /// process-wide at Start(). Concurrent query sessions share the
    /// executor's fixed pool instead of oversubscribing the machine.
    exec::ExecPolicy exec_policy;
    /// Per-node query admission: at most `admission.max_concurrent` queries
    /// execute on a node at once; bursts queue FIFO up to
    /// `admission.max_queued`, beyond which Submit() is rejected.
    core::AdmissionOptions admission;
    /// Prepared-plan cache bound (oldest-inserted evicted beyond it), so
    /// ad-hoc query texts cannot grow the cache without limit.
    size_t plan_cache_capacity = 1024;
    /// Hop reliability, heartbeats, and recovery behaviour.
    ResilienceOptions resilience;
    /// Per-node memory budget and two-tier spill behaviour. `spill_dir` in
    /// here is derived per node from Options::spill_dir (when a budget is
    /// set and Options::spill_dir is empty, the cluster creates a private
    /// temp directory and removes it on destruction).
    storage::FragmentStoreOptions memory;
    /// Optional deterministic fault injection applied to every channel of
    /// the ring (drop/delay/duplicate/corrupt per the injector's schedule).
    /// Not owned; must outlive the cluster. nullptr = fault-free fabric.
    rdma::FaultInjector* fault = nullptr;
    /// Background compaction of pending write deltas into new base
    /// fragments (write/write_log.h). One compactor thread per node; a
    /// table is folded by the node owning its first fragment.
    write::CompactionOptions compaction;
  };

  /// Shared plan-cache counters: `misses` counts actual parse + DcOptimize
  /// compilations, so a plan prepared once and executed N times shows
  /// exactly one miss however many sessions reuse it.
  struct PlanCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };

  explicit RingCluster(Options options);
  ~RingCluster();

  RingCluster(const RingCluster&) = delete;
  RingCluster& operator=(const RingCluster&) = delete;

  /// Registers a persistent BAT on `owner` (before or after Start). The
  /// qualified name must be "schema.table.column" (validated); duplicate
  /// registrations are rejected with AlreadyExists.
  Status LoadBat(core::NodeId owner, const std::string& name, bat::BatPtr bat);

  /// Starts the node service threads and query runners.
  void Start();
  /// Stops and joins everything (idempotent; also run by the destructor).
  /// Queued queries fail with Aborted; running ones are cancelled.
  void Stop();

  // ---- the session-based query API (runtime/session.h) --------------------

  /// Opens a client session against `node`.
  Result<Session> OpenSession(core::NodeId node);

  /// Compile + DcOptimize `text` once; repeated Prepare calls for the same
  /// text (in the same language) return the cached PreparedQuery (shared
  /// across sessions). SQL is compiled against the schema of the BATs
  /// registered so far via LoadBat; `options.language` defaults to
  /// auto-detection. Pass `use_cache = false` to force a fresh compilation
  /// (benchmarking).
  Result<PreparedQueryPtr> Prepare(const std::string& text,
                                   const PrepareOptions& options);
  /// Back-compat shim: MAL-only, positional optimize/use_cache flags.
  Result<PreparedQueryPtr> Prepare(const std::string& mal_text, bool optimize = true,
                                   bool use_cache = true);

  /// Asynchronous submission against `node` (see Session::Submit).
  Result<QueryHandle> Submit(core::NodeId node, const PreparedQueryPtr& prepared,
                             const SubmitOptions& options = {});

  /// \deprecated Blocking string-in/string-out compatibility wrapper over
  /// Prepare + Submit + Wait. Parses/optimizes through the shared plan cache
  /// and runs under the node's admission control; prefer the session API
  /// (OpenSession / Prepare / Submit) for new code.
  Result<QueryOutcome> ExecuteMal(core::NodeId node, const std::string& mal_text,
                                  bool optimize = true);

  /// Directory lookup: the BAT id registered for "schema.table.column".
  Result<core::BatId> FindFragment(const std::string& name) const;

  /// SQL schema derived from the BATs registered via LoadBat (tail value
  /// types, keyed by qualified name). Snapshot: BATs loaded later are not
  /// reflected in previously returned schemas.
  sql::Schema SqlSchema() const;

  // ---- writes (ISSUE-9: versioned fragments + circulating deltas) ----------

  /// The cluster write log: commit authority for INSERT/DELETE, versioned
  /// fragment views, and the fold machinery. Exposed for tests and tools
  /// (SetFoldHookForTest, TableVersions); queries go through SQL/MAL.
  write::WriteLog& write_log() { return write_log_; }
  const write::WriteLog& write_log() const { return write_log_; }

  /// Write-subsystem counters (deltas published/merged/folded, ring
  /// circulation, compactions).
  write::WriteMetrics Writes() const { return write_log_.Metrics(); }
  /// Per-table base/current versions and pending-delta gauges (dcsql
  /// \tables).
  std::vector<write::TableVersionInfo> TableVersions() const {
    return write_log_.TableVersions();
  }

  /// Pins the current commit version as a reader snapshot: folds never pass
  /// it, so SubmitOptions::snapshot_version can replay reads at this version
  /// indefinitely. Balance with UnpinWriteSnapshot.
  uint64_t PinWriteSnapshot() { return write_log_.AcquireSnapshot(); }
  void UnpinWriteSnapshot(uint64_t v) { write_log_.ReleaseSnapshot(v); }
  uint64_t CurrentWriteVersion() const { return write_log_.CurrentVersion(); }

  // ---- fault tolerance ------------------------------------------------------

  /// Kills `node` abruptly: running queries fail with Unavailable, its
  /// channels close, its service thread exits. The surviving ring detects
  /// the silence via heartbeats, splices the node out, and (with
  /// auto_rehome) re-materializes its fragments on the heir. Refuses to
  /// crash the last alive node.
  Status CrashNode(core::NodeId node);

  /// Brings a crashed node back: fresh protocol state, reopened channels,
  /// re-registered owned fragments (those not re-homed meanwhile), and a
  /// re-splice into the ring between its current alive neighbours.
  Status RestartNode(core::NodeId node);

  /// False once CrashNode(node) ran, true again after RestartNode(node).
  bool IsNodeAlive(core::NodeId node) const;

  /// True while at least one node is crashed (admission sheds load early).
  bool degraded() const { return dead_count_.load(std::memory_order_relaxed) > 0; }

  /// \brief Aggregated fault-tolerance counters across all nodes.
  struct ResilienceMetrics {
    // Hop-level reliability (summed over every directed link).
    uint64_t retransmits = 0;
    uint64_t frames_abandoned = 0;
    uint64_t link_resets = 0;
    uint64_t frames_corrupted = 0;   ///< CRC mismatches caught at receivers
    uint64_t frames_duplicate = 0;
    uint64_t frames_gap = 0;
    uint64_t frames_stale = 0;
    uint64_t frames_invalid = 0;
    uint64_t nacks_sent = 0;
    uint64_t acks_sent = 0;
    // Node liveness.
    uint64_t heartbeats_sent = 0;
    uint64_t heartbeats_received = 0;
    uint64_t heartbeats_missed = 0;
    // Degradation bookkeeping.
    uint64_t forwards_without_payload = 0;
    uint64_t orphan_frames_dropped = 0;  ///< dead-owner frames aged out
    uint64_t frames_adopted = 0;         ///< dead-owner frames re-homed in flight
    uint64_t decode_failures = 0;
    // Cluster-level recovery.
    uint64_t nodes_crashed = 0;
    uint64_t nodes_restarted = 0;
    uint64_t ring_resplices = 0;
    uint64_t suspicions = 0;
    uint64_t false_suspicions = 0;
    uint64_t rehomed_fragments = 0;
    uint64_t unavailable_failures = 0;  ///< pins failed with Unavailable
    uint64_t shed_degraded = 0;         ///< submissions shed while degraded
    /// Crash -> ring re-splice latency of the most recent recovery.
    double last_recovery_seconds = 0.0;
  };
  ResilienceMetrics Resilience() const;

  /// \brief Wire-compression accounting summed over all nodes: what the
  /// ring actually shipped vs the uncompressed v1 frames it would have.
  struct BandwidthMetrics {
    uint64_t frames_encoded = 0;  ///< BAT frames serialized for the ring
    uint64_t raw_bytes = 0;       ///< v1-equivalent (uncompressed) frame bytes
    uint64_t wire_bytes = 0;      ///< frame bytes actually produced
    uint64_t hops = 0;            ///< payload-bearing data-frame sends
    uint64_t hop_bytes = 0;       ///< payload bytes summed over those sends
    // Per-column codec choices across all encoded frames.
    uint64_t dict_columns = 0;
    uint64_t for_columns = 0;
    uint64_t plain_columns = 0;
  };
  BandwidthMetrics Bandwidth() const;

  /// Memory gauges and two-tier counters of one node's fragment store.
  storage::MemoryMetrics NodeMemory(core::NodeId node) const;
  /// The same, summed over every node.
  storage::MemoryMetrics Memory() const;

  uint32_t num_nodes() const { return options_.num_nodes; }
  /// Protocol metrics of a node (snapshot; service thread keeps mutating).
  core::DcNodeMetrics NodeMetrics(core::NodeId node) const;
  /// Admission-queue metrics of a node (snapshot).
  core::AdmissionMetrics NodeAdmissionMetrics(core::NodeId node) const;
  /// Outstanding S2 request entries at a node (snapshot; tests use this to
  /// assert cancelled queries do not leak fragment requests).
  size_t OutstandingRequestEntries(core::NodeId node) const;
  PlanCacheStats plan_cache_stats() const;
  /// Total payload bytes moved clockwise so far.
  uint64_t TotalDataBytesMoved() const;
  const Options& options() const { return options_; }

 private:
  friend class Node;
  friend class Session;

  /// Runs one admitted query on its node (called by the node's runners).
  Result<QueryResult> RunQuery(Node* node, const PreparedQuery& plan,
                               internal::QueryState* state, const SubmitOptions& options);

  /// A node's heartbeat watchdog fired: `reporter` has heard nothing from
  /// `suspect`. Consults the membership oracle (was the node actually
  /// crashed?), splices a confirmed-dead node out of the ring, and hands
  /// its fragments to the heir (or fails them).
  void ReportSuspect(core::NodeId reporter, core::NodeId suspect);

  /// Re-homes or fails every fragment owned by the dead `suspect`.
  void HandleDeadFragments(core::NodeId suspect, core::NodeId heir);

  /// The typed error a pin on `bat` should fail with right now:
  /// Unavailable when its registered owner is down, NotFound otherwise.
  Status FragmentFailureStatus(core::BatId bat);

  /// Re-materializes `bat` into `node`'s store from the cluster fragment
  /// registry (the ring's durable copy) after a corrupt or lost spill
  /// image. NotFound when the registry has no such fragment.
  Status RefetchFragment(core::BatId bat, Node* node);

  /// Neighbour walk over the original ring order, skipping spliced-out
  /// nodes. Callers hold ring_mu_.
  core::NodeId NextAliveLocked(core::NodeId from) const;
  core::NodeId PrevAliveLocked(core::NodeId from) const;

  /// One compactor sweep on behalf of `node`: folds every threshold-crossed
  /// table whose first fragment `node` owns, then republishes the rebased
  /// fragments under the new base version.
  void CompactionPass(core::NodeId node);
  /// Body of a node's background compactor thread.
  void CompactorLoop(core::NodeId node);

  Options options_;
  /// True when the cluster created a private temp spill root (removed on
  /// destruction).
  bool owns_spill_dir_ = false;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Global name -> fragment directory (guarded by directory_mu_).
  mutable std::mutex directory_mu_;
  std::unordered_map<std::string, core::BatId> directory_;
  std::unordered_map<core::BatId, uint64_t> sizes_;
  /// Cluster-level fragment registry: everything needed to re-materialize a
  /// fragment when its owner dies (guarded by directory_mu_).
  struct FragmentInfo {
    std::string name;
    core::NodeId owner = 0;
    uint64_t size = 0;
    bat::BatPtr loader;  ///< the persistent payload, for re-homing
  };
  std::unordered_map<core::BatId, FragmentInfo> fragments_;

  // ---- ring membership (guarded by ring_mu_ unless noted) -------------------
  mutable std::mutex ring_mu_;
  std::vector<bool> spliced_in_;                    ///< part of the ring walk
  std::unique_ptr<std::atomic<bool>[]> alive_;      ///< lock-free liveness
  std::atomic<uint32_t> dead_count_{0};
  std::atomic<uint64_t> unavailable_failures_{0};
  uint64_t nodes_crashed_ = 0;
  uint64_t nodes_restarted_ = 0;
  uint64_t resplices_ = 0;
  uint64_t suspicions_ = 0;
  uint64_t false_suspicions_ = 0;
  uint64_t rehomed_fragments_ = 0;
  double last_recovery_seconds_ = 0.0;
  std::chrono::steady_clock::time_point crashed_at_{};
  /// Tail value type per qualified name (guarded by directory_mu_); feeds
  /// the SQL front end's schema so SELECTs resolve against loaded BATs.
  std::map<std::string, bat::ValType> column_types_;
  std::atomic<core::BatId> next_bat_{1};
  std::atomic<core::QueryId> next_query_{1};
  std::atomic<bool> started_{false};

  mutable std::mutex plan_cache_mu_;
  std::unordered_map<std::string, PreparedQueryPtr> plan_cache_;
  std::deque<std::string> plan_cache_order_;  ///< insertion order (eviction)
  PlanCacheStats plan_cache_stats_;

  // ---- the write subsystem --------------------------------------------------
  /// Cluster-level commit log (thread-safe on its own mutex). Nodes hold
  /// only circulating delta copies; the log is the correctness anchor.
  write::WriteLog write_log_;
  /// Background compactors, one per node, owned by the cluster (never by
  /// the node threads: CrashNode must not join them). Started in Start(),
  /// joined in Stop().
  std::vector<std::thread> compactors_;
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compactors_stop_ = false;  ///< guarded by compact_mu_
};

}  // namespace dcy::runtime
