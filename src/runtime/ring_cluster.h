// The live Data Cyclotron runtime: a ring of node threads moving real BAT
// payloads over the RDMA-emulating channels, running the *same* protocol
// state machine (core::DcNode) that the simulator validates, and executing
// real MAL plans rewritten by the DcOptimizer.
//
// Threading model: each node runs one service thread that owns its DcNode
// (single-writer, as in the simulator). Queries enter through the session
// API (runtime/session.h): Submit() places them in the node's FIFO
// admission queue and a fixed pool of per-node query runners (created once
// at Start) executes at most AdmissionOptions::max_concurrent of them at a
// time, each blocking in pin() on a future until the fragment flows by —
// exactly the paper's §4.1 execution contract, bounded per node.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bat/catalog.h"
#include "common/status.h"
#include "core/admission.h"
#include "core/dc_node.h"
#include "exec/executor.h"
#include "mal/interpreter.h"
#include "opt/dc_optimizer.h"
#include "rdma/channel.h"
#include "runtime/session.h"
#include "sql/schema.h"

namespace dcy::runtime {

/// \brief Legacy outcome of one blocking ExecuteMal call. New code should
/// use the session API and its typed QueryResult instead; this struct
/// survives for the compatibility wrapper.
struct QueryOutcome {
  std::string printed;        ///< exported result rendered as text
  mal::Datum result;          ///< last assigned variable
  core::QueryId query_id = 0;
  double wall_seconds = 0.0;  ///< execution wall time (steady_clock)
  double pin_blocked_seconds = 0.0;  ///< summed blocked-pin wait
};

/// \brief A complete in-process ring.
class RingCluster {
 public:
  /// One ring member (opaque; owned by the cluster).
  class Node;

  struct Options {
    uint32_t num_nodes = 3;
    rdma::TransferMode mode = rdma::TransferMode::kZeroCopy;
    /// Logical BAT-queue capacity per node (admission + LOIT input).
    uint64_t bat_queue_capacity = 64 * kMB;
    bool adaptive_loit = true;
    double static_loit = 0.1;
    core::AdaptiveLoit::Options adaptive;
    core::DcNodeOptions node;  // node_id/ring_size filled per node
    /// Spill directory root ("" keeps all cold data in memory).
    std::string spill_dir;
    /// Max instructions of one plan executing concurrently (dataflow width).
    /// Plans run as tasks on the process-wide exec::Executor — no threads
    /// are created per query.
    size_t plan_workers = 4;
    /// Morsel-parallel kernel policy (workers / morsel_rows / threshold /
    /// join_partitions for the radix-partitioned hash build), applied
    /// process-wide at Start(). Concurrent query sessions share the
    /// executor's fixed pool instead of oversubscribing the machine.
    exec::ExecPolicy exec_policy;
    /// Per-node query admission: at most `admission.max_concurrent` queries
    /// execute on a node at once; bursts queue FIFO up to
    /// `admission.max_queued`, beyond which Submit() is rejected.
    core::AdmissionOptions admission;
    /// Prepared-plan cache bound (oldest-inserted evicted beyond it), so
    /// ad-hoc query texts cannot grow the cache without limit.
    size_t plan_cache_capacity = 1024;
  };

  /// Shared plan-cache counters: `misses` counts actual parse + DcOptimize
  /// compilations, so a plan prepared once and executed N times shows
  /// exactly one miss however many sessions reuse it.
  struct PlanCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };

  explicit RingCluster(Options options);
  ~RingCluster();

  RingCluster(const RingCluster&) = delete;
  RingCluster& operator=(const RingCluster&) = delete;

  /// Registers a persistent BAT on `owner` (before or after Start). The
  /// qualified name must be "schema.table.column" (validated); duplicate
  /// registrations are rejected with AlreadyExists.
  Status LoadBat(core::NodeId owner, const std::string& name, bat::BatPtr bat);

  /// Starts the node service threads and query runners.
  void Start();
  /// Stops and joins everything (idempotent; also run by the destructor).
  /// Queued queries fail with Aborted; running ones are cancelled.
  void Stop();

  // ---- the session-based query API (runtime/session.h) --------------------

  /// Opens a client session against `node`.
  Result<Session> OpenSession(core::NodeId node);

  /// Compile + DcOptimize `text` once; repeated Prepare calls for the same
  /// text (in the same language) return the cached PreparedQuery (shared
  /// across sessions). SQL is compiled against the schema of the BATs
  /// registered so far via LoadBat; `options.language` defaults to
  /// auto-detection. Pass `use_cache = false` to force a fresh compilation
  /// (benchmarking).
  Result<PreparedQueryPtr> Prepare(const std::string& text,
                                   const PrepareOptions& options);
  /// Back-compat shim: MAL-only, positional optimize/use_cache flags.
  Result<PreparedQueryPtr> Prepare(const std::string& mal_text, bool optimize = true,
                                   bool use_cache = true);

  /// Asynchronous submission against `node` (see Session::Submit).
  Result<QueryHandle> Submit(core::NodeId node, const PreparedQueryPtr& prepared,
                             const SubmitOptions& options = {});

  /// \deprecated Blocking string-in/string-out compatibility wrapper over
  /// Prepare + Submit + Wait. Parses/optimizes through the shared plan cache
  /// and runs under the node's admission control; prefer the session API
  /// (OpenSession / Prepare / Submit) for new code.
  Result<QueryOutcome> ExecuteMal(core::NodeId node, const std::string& mal_text,
                                  bool optimize = true);

  /// Directory lookup: the BAT id registered for "schema.table.column".
  Result<core::BatId> FindFragment(const std::string& name) const;

  /// SQL schema derived from the BATs registered via LoadBat (tail value
  /// types, keyed by qualified name). Snapshot: BATs loaded later are not
  /// reflected in previously returned schemas.
  sql::Schema SqlSchema() const;

  uint32_t num_nodes() const { return options_.num_nodes; }
  /// Protocol metrics of a node (snapshot; service thread keeps mutating).
  core::DcNodeMetrics NodeMetrics(core::NodeId node) const;
  /// Admission-queue metrics of a node (snapshot).
  core::AdmissionMetrics NodeAdmissionMetrics(core::NodeId node) const;
  /// Outstanding S2 request entries at a node (snapshot; tests use this to
  /// assert cancelled queries do not leak fragment requests).
  size_t OutstandingRequestEntries(core::NodeId node) const;
  PlanCacheStats plan_cache_stats() const;
  /// Total payload bytes moved clockwise so far.
  uint64_t TotalDataBytesMoved() const;
  const Options& options() const { return options_; }

 private:
  friend class Node;
  friend class Session;

  /// Runs one admitted query on its node (called by the node's runners).
  Result<QueryResult> RunQuery(Node* node, const PreparedQuery& plan,
                               internal::QueryState* state, const SubmitOptions& options);

  Options options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Global name -> fragment directory (guarded by directory_mu_).
  mutable std::mutex directory_mu_;
  std::unordered_map<std::string, core::BatId> directory_;
  std::unordered_map<core::BatId, uint64_t> sizes_;
  /// Tail value type per qualified name (guarded by directory_mu_); feeds
  /// the SQL front end's schema so SELECTs resolve against loaded BATs.
  std::map<std::string, bat::ValType> column_types_;
  std::atomic<core::BatId> next_bat_{1};
  std::atomic<core::QueryId> next_query_{1};
  std::atomic<bool> started_{false};

  mutable std::mutex plan_cache_mu_;
  std::unordered_map<std::string, PreparedQueryPtr> plan_cache_;
  std::deque<std::string> plan_cache_order_;  ///< insertion order (eviction)
  PlanCacheStats plan_cache_stats_;
};

}  // namespace dcy::runtime
