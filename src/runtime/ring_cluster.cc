#include "runtime/ring_cluster.h"

#include <algorithm>
#include <chrono>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <unordered_set>

#include "bat/serialize.h"
#include "common/logging.h"
#include "sql/compiler.h"

namespace dcy::runtime {

namespace {

constexpr uint32_t kOpBat = 1;
constexpr uint32_t kOpRequest = 2;
constexpr uint32_t kOpCtrl = 3;
constexpr uint32_t kOpDelta = 4;

/// Envelope + routing header of a circulating delta frame (ISSUE-9): the
/// payload is one write::SerializeDelta wire image. Deltas ride the data
/// channel and share its go-back-N sequence space with BAT frames, so loss,
/// reordering, and corruption are handled by the same hop machinery. Padded
/// to sizeof(net::DataFrame): the drain loop's coalesced-ACK scan filters on
/// that size, and the envelope sits at offset 0 in both frames.
struct DeltaFrame {
  net::FrameHeader frame;
  uint32_t fragment = 0;  ///< base fragment the delta applies to
  uint32_t origin = 0;    ///< committing node; circulation ends back there
  uint64_t version = 0;   ///< commit version (purged once folded into a base)
  uint32_t hops = 0;      ///< hops travelled (orphan bound when origin dies)
  uint32_t reserved = 0;
  uint64_t pad[2] = {0, 0};
};
static_assert(sizeof(DeltaFrame) == sizeof(net::DataFrame),
              "DeltaFrame must match DataFrame for the shared ACK scan");

// Headers ride in the channel's fixed-capacity inline MetaBlob — no
// per-message std::string allocation on either side of a hop. Since this PR
// every data/request frame carries the net::FrameHeader reliability envelope
// in front of the application header.
static_assert(sizeof(net::DataFrame) <= rdma::MetaBlob::kCapacity,
              "DataFrame must fit the inline meta frame");
static_assert(sizeof(net::RequestFrame) <= rdma::MetaBlob::kCapacity,
              "RequestFrame must fit the inline meta frame");
static_assert(sizeof(net::CtrlMsg) <= rdma::MetaBlob::kCapacity,
              "CtrlMsg must fit the inline meta frame");

/// CRC over the per-hop mutable part of a data frame (the admin header);
/// XORed with the cached payload-only CRC to form FrameHeader::payload_crc.
uint32_t HeaderCrc(const core::BatHeader& h) {
  // BatHeader carries tail padding, and struct assignment into a DataFrame
  // need not preserve padding bytes — CRC the canonical field bytes only, or
  // clean frames fail verification depending on what the copy left behind.
  unsigned char buf[sizeof(core::BatHeader)] = {};
  size_t off = 0;
  const auto put = [&](const void* p, size_t n) {
    std::memcpy(buf + off, p, n);
    off += n;
  };
  put(&h.owner, sizeof(h.owner));
  put(&h.bat_id, sizeof(h.bat_id));
  put(&h.bat_size, sizeof(h.bat_size));
  put(&h.loi, sizeof(h.loi));
  put(&h.copies, sizeof(h.copies));
  put(&h.hops, sizeof(h.hops));
  put(&h.cycles, sizeof(h.cycles));
  return bat::Crc32(buf, off);
}

/// CRC over the per-hop mutable part of a delta frame (hops change per hop,
/// so each hop re-wraps, exactly like BAT frames).
uint32_t DeltaHeaderCrc(const DeltaFrame& df) {
  unsigned char buf[24] = {};
  size_t off = 0;
  const auto put = [&](const void* p, size_t n) {
    std::memcpy(buf + off, p, n);
    off += n;
  };
  put(&df.fragment, sizeof(df.fragment));
  put(&df.origin, sizeof(df.origin));
  put(&df.version, sizeof(df.version));
  put(&df.hops, sizeof(df.hops));
  return bat::Crc32(buf, off);
}

SimTime SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The "schema.table.column" contract of LoadBat: exactly three non-empty
/// dot-separated parts.
Status ValidateQualifiedName(const std::string& name) {
  const size_t d1 = name.find('.');
  const size_t d2 = d1 == std::string::npos ? std::string::npos : name.find('.', d1 + 1);
  const bool three_parts = d1 != std::string::npos && d2 != std::string::npos &&
                           name.find('.', d2 + 1) == std::string::npos;
  const bool nonempty = three_parts && d1 > 0 && d2 > d1 + 1 && d2 + 1 < name.size();
  if (!nonempty) {
    return Status::InvalidArgument("BAT name must be \"schema.table.column\", got \"" +
                                   name + "\"");
  }
  return Status::OK();
}

/// The per-node two-tier store configuration: the cluster-wide budget and
/// spill tunables, rooted in a per-node subdirectory of the spill root.
storage::FragmentStoreOptions NodeStoreOptions(const storage::FragmentStoreOptions& base,
                                               const std::string& spill_root,
                                               core::NodeId id) {
  storage::FragmentStoreOptions opts = base;
  opts.spill_dir =
      spill_root.empty() ? "" : spill_root + "/node" + std::to_string(id);
  return opts;
}

}  // namespace

// ===========================================================================
// Node
// ===========================================================================

class RingCluster::Node final : public core::DcEnv {
 public:
  /// One submission waiting in (or admitted from) the FIFO admission queue.
  struct QueuedQuery {
    std::shared_ptr<internal::QueryState> state;
    PreparedQueryPtr plan;
    SubmitOptions options;
  };

  /// Liveness / hop bookkeeping beyond the per-link ReliableMetrics.
  struct HopMetrics {
    uint64_t heartbeats_sent = 0;
    uint64_t heartbeats_received = 0;
    uint64_t heartbeats_missed = 0;
    uint64_t acks_sent = 0;
    uint64_t forwards_without_payload = 0;
    uint64_t orphan_frames_dropped = 0;
    uint64_t frames_adopted = 0;
    uint64_t decode_failures = 0;
  };

  /// Wire-compression bookkeeping of this node's serialize/send path.
  struct WireMetrics {
    uint64_t frames_encoded = 0;
    uint64_t raw_bytes = 0;
    uint64_t wire_bytes = 0;
    uint64_t hops = 0;
    uint64_t hop_bytes = 0;
    uint64_t dict_columns = 0;
    uint64_t for_columns = 0;
    uint64_t plain_columns = 0;
  };

  Node(RingCluster* cluster, core::NodeId id)
      : cluster_(cluster),
        id_(id),
        store_(NodeStoreOptions(cluster->options_.memory, cluster->options_.spill_dir,
                                id)) {
    const Options& opts = cluster->options_;
    if (opts.adaptive_loit) {
      loit_ = std::make_unique<core::AdaptiveLoit>(opts.adaptive);
    } else {
      loit_ = std::make_unique<core::StaticLoit>(opts.static_loit);
    }
    core::DcNodeOptions node_opts = opts.node;
    node_opts.node_id = id;
    node_opts.ring_size = opts.num_nodes;
    dc_ = std::make_unique<core::DcNode>(node_opts, this, loit_.get());

    rdma::Channel::Options data_opts;
    data_opts.mode = opts.mode;
    data_opts.capacity_bytes = opts.bat_queue_capacity * 4;  // hard backpressure
    data_in_ = std::make_unique<rdma::Channel>(data_opts);
    rdma::Channel::Options req_opts;
    req_opts.mode = rdma::TransferMode::kZeroCopy;
    request_in_ = std::make_unique<rdma::Channel>(req_opts);
    rdma::Channel::Options ctrl_opts;
    ctrl_opts.mode = rdma::TransferMode::kZeroCopy;  // meta-only traffic
    ctrl_in_ = std::make_unique<rdma::Channel>(ctrl_opts);
    if (opts.fault != nullptr) {
      data_in_->SetFaultInjector(opts.fault, id_, rdma::kFaultChannelData);
      request_in_->SetFaultInjector(opts.fault, id_, rdma::kFaultChannelRequest);
      ctrl_in_->SetFaultInjector(opts.fault, id_, rdma::kFaultChannelCtrl);
    }
    data_out_.Init(id_, net::kChData, opts.resilience.link, opts.resilience.seed);
    req_out_.Init(id_, net::kChRequest, opts.resilience.link, opts.resilience.seed);
  }

  // ---- wiring ---------------------------------------------------------------

  core::NodeId id() const { return id_; }
  rdma::Channel* data_in() { return data_in_.get(); }
  rdma::Channel* request_in() { return request_in_.get(); }
  rdma::Channel* ctrl_in() { return ctrl_in_.get(); }
  void SetNeighbours(Node* successor, Node* predecessor) {
    successor_.store(successor, std::memory_order_release);
    predecessor_.store(predecessor, std::memory_order_release);
  }

  /// Ring re-splice, posted onto the service thread: the sender towards the
  /// new neighbour resets (fresh epoch) so the receiver adopts it cleanly,
  /// and the liveness clock restarts.
  void AdoptSuccessor(Node* s) {
    Post([this, s] {
      successor_.store(s, std::memory_order_release);
      data_out_.Reset(SteadyNowNs());
      last_heard_succ_ = SteadyNowNs();
    });
  }
  void AdoptPredecessor(Node* p) {
    Post([this, p] {
      predecessor_.store(p, std::memory_order_release);
      req_out_.Reset(SteadyNowNs());
      last_heard_pred_ = SteadyNowNs();
    });
  }

  storage::FragmentStore& store() { return store_; }
  core::DcNode& dc() { return *dc_; }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Service-thread-owned reliability + hop counters, summed. Call via
  /// PostSync (or any serialized context on a crashed node).
  void SnapshotResilience(RingCluster::ResilienceMetrics* out) const {
    for (const net::ReliableMetrics* m :
         {&data_out_.metrics(), &req_out_.metrics(), &data_rx_.metrics(),
          &req_rx_.metrics()}) {
      out->retransmits += m->retransmits;
      out->frames_abandoned += m->frames_abandoned;
      out->link_resets += m->link_resets;
      out->frames_corrupted += m->frames_corrupted;
      out->frames_duplicate += m->frames_duplicate;
      out->frames_gap += m->frames_gap;
      out->frames_stale += m->frames_stale;
      out->frames_invalid += m->frames_invalid;
      out->nacks_sent += m->nacks_sent;
    }
    out->acks_sent += hop_.acks_sent;
    out->heartbeats_sent += hop_.heartbeats_sent;
    out->heartbeats_received += hop_.heartbeats_received;
    out->heartbeats_missed += hop_.heartbeats_missed;
    out->forwards_without_payload += hop_.forwards_without_payload;
    out->orphan_frames_dropped += hop_.orphan_frames_dropped;
    out->frames_adopted += hop_.frames_adopted;
    out->decode_failures += hop_.decode_failures;
  }

  /// Service-thread-owned wire-compression counters, summed. Call via
  /// PostSync (or any serialized context on a crashed node).
  void SnapshotBandwidth(RingCluster::BandwidthMetrics* out) const {
    out->frames_encoded += wire_.frames_encoded;
    out->raw_bytes += wire_.raw_bytes;
    out->wire_bytes += wire_.wire_bytes;
    out->hops += wire_.hops;
    out->hop_bytes += wire_.hop_bytes;
    out->dict_columns += wire_.dict_columns;
    out->for_columns += wire_.for_columns;
    out->plain_columns += wire_.plain_columns;
  }

  // ---- lifecycle -------------------------------------------------------------

  void Start() {
    stop_.store(false);
    service_ = std::thread([this] { ServiceLoop(); });
    // The query-runner pool: exactly C threads, created once per Start, so
    // at most C queries of this node execute concurrently however large the
    // submission burst (the rest wait in the FIFO). `accepting_` gates
    // EnqueueQuery so concurrent submits never touch the runners_ vector
    // while it is being populated; early submissions simply queue until the
    // runners come up.
    const uint32_t c = std::max<uint32_t>(1, cluster_->options_.admission.max_concurrent);
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      runners_stop_ = false;
      accepting_ = true;
    }
    runners_.reserve(c);
    for (uint32_t i = 0; i < c; ++i) {
      runners_.emplace_back([this] { QueryRunnerLoop(); });
    }
  }

  /// Cancels running queries, fails queued ones, joins the runner pool.
  /// Must run while the service thread is still alive (running queries
  /// unwind through Unpin posts to it). `error` is the terminal status of
  /// everything abandoned: Aborted on shutdown, Unavailable on crash.
  void StopRunnersWith(const Status& error) {
    std::deque<QueuedQuery> abandoned;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      runners_stop_ = true;
      accepting_ = false;
      abandoned.swap(admission_queue_);
      admission_.queued = 0;
      // Abandoned entries are terminal: keep the counters balanced
      // (submitted == completed + rejected over the node's lifetime).
      admission_.completed += abandoned.size();
      admission_.cancelled_queued += abandoned.size();
      for (const auto& state : running_states_) state->cancel.Cancel();
    }
    admission_cv_.notify_all();
    // Wake every pin blocked on the ring; the woken sessions observe the
    // cancel flag set above.
    AbortAllWaiters(error);
    for (auto& t : runners_) {
      if (t.joinable()) t.join();
    }
    runners_.clear();
    for (auto& item : abandoned) {
      item.state->Finish(error);
    }
  }

  void StopRunners() { StopRunnersWith(Status::Aborted("cluster stopping")); }

  void Stop() {
    stop_.store(true);
    data_in_->Close();
    request_in_->Close();
    ctrl_in_->Close();
    mailbox_cv_.notify_all();
    if (service_.joinable()) service_.join();
  }

  /// Abrupt node death (fault injection): queries on this node fail with
  /// Unavailable, the channels close, the service thread exits. The node
  /// object stays around for Restart(); holders of Post/PostSync keep
  /// working (tasks run inline, serialized) so no caller can hang on a
  /// corpse.
  void Crash() {
    StopRunnersWith(Status::Unavailable("node " + std::to_string(id_) + " crashed"));
    // The crash loses RAM but not the disk tier: the store forgets every
    // frame while the spill files survive for RestartNode's recovery scan.
    store_.ForgetAllForCrash();
    std::lock_guard<std::mutex> dead(dead_exec_mu_);
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      crashed_.store(true, std::memory_order_release);
    }
    stop_.store(true);
    data_in_->Close();
    request_in_->Close();
    ctrl_in_->Close();
    mailbox_cv_.notify_all();
    if (service_.joinable()) service_.join();
    // Run what the service thread left behind: posted tasks may carry
    // PostSync promises whose callers would otherwise block forever.
    std::deque<std::function<void()>> leftover;
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      leftover.swap(mailbox_);
    }
    for (auto& task : leftover) task();
  }

  /// Re-admission after Crash(): a restarted node comes back amnesiac — a
  /// fresh protocol state machine, reopened channels, reset senders (new
  /// epochs) — wired between `successor` and `predecessor`.
  void Restart(Node* successor, Node* predecessor) {
    std::lock_guard<std::mutex> dead(dead_exec_mu_);
    core::DcNodeOptions node_opts = cluster_->options_.node;
    node_opts.node_id = id_;
    node_opts.ring_size = cluster_->options_.num_nodes;
    dc_ = std::make_unique<core::DcNode>(node_opts, this, loit_.get());
    decoded_.clear();
    decoded_in_store_.clear();
    decode_rejected_.clear();
    delta_cache_.clear();
    current_payload_ = nullptr;
    current_payload_crc_ = 0;
    data_in_->Reopen();
    request_in_->Reopen();
    ctrl_in_->Reopen();
    const SimTime now = SteadyNowNs();
    data_out_.Reset(now);
    req_out_.Reset(now);
    SetNeighbours(successor, predecessor);
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      mailbox_.clear();
      crashed_.store(false, std::memory_order_release);
    }
    Start();
  }

  /// Runs `task` on the service thread (the only thread touching dc_). On a
  /// crashed node the task runs inline instead, serialized by dead_exec_mu_
  /// (the service thread is gone, so this is the single-writer substitute).
  void Post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      if (!crashed_.load(std::memory_order_acquire)) {
        mailbox_.push_back(std::move(task));
        mailbox_cv_.notify_one();
        return;
      }
    }
    std::lock_guard<std::mutex> dead(dead_exec_mu_);
    task();
  }

  /// Posts `task` and waits for it to finish.
  void PostSync(std::function<void()> task) {
    std::promise<void> done;
    Post([&task, &done] {
      task();
      done.set_value();
    });
    done.get_future().wait();
  }

  // ---- query admission ------------------------------------------------------

  Status EnqueueQuery(QueuedQuery item) {
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      if (!accepting_ || runners_stop_) {
        if (crashed()) {
          return Status::Unavailable("node " + std::to_string(id_) + " is down");
        }
        return Status::FailedPrecondition("node " + std::to_string(id_) +
                                          " is not accepting queries");
      }
      if (cluster_->degraded() &&
          admission_queue_.size() >= cluster_->options_.admission.degraded_max_queued) {
        // A recovering ring gets breathing room: shed queue growth early
        // with a retryable status instead of piling work behind it.
        ++admission_.shed_degraded;
        return Status::Unavailable("ring degraded: load shed on node " +
                                   std::to_string(id_));
      }
      if (store_.UnderPressure() &&
          admission_queue_.size() >= cluster_->options_.admission.degraded_max_queued) {
        // Same graceful degradation under memory pressure: spill I/O is not
        // keeping up with the resident set, so new work is shed retryable
        // at the degraded bound instead of deepening the overhang.
        store_.NotePressureShed();
        return Status::Unavailable("memory pressure: load shed on node " +
                                   std::to_string(id_));
      }
      if (admission_queue_.size() >= cluster_->options_.admission.max_queued) {
        ++admission_.rejected;
        return Status::ResourceExhausted(
            "admission queue full on node " + std::to_string(id_) + ": " +
            std::to_string(admission_queue_.size()) + " queued, limit " +
            std::to_string(cluster_->options_.admission.max_queued));
      }
      admission_queue_.push_back(std::move(item));
      ++admission_.submitted;
      admission_.queued = static_cast<uint32_t>(admission_queue_.size());
      admission_.peak_queued = std::max(admission_.peak_queued, admission_.queued);
    }
    admission_cv_.notify_one();
    return Status::OK();
  }

  core::AdmissionMetrics admission_metrics() const {
    std::lock_guard<std::mutex> lock(admission_mu_);
    return admission_;
  }

  /// Fails queued queries whose token tripped (cancel or deadline) without
  /// waiting for a runner slot: with every slot occupied by long queries, a
  /// queued submission would otherwise outlive its own deadline unnoticed.
  /// Runs on the service thread's maintenance tick.
  void SweepAdmissionQueue() {
    std::vector<std::pair<QueuedQuery, Status>> expired;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      for (auto it = admission_queue_.begin(); it != admission_queue_.end();) {
        Status live = it->state->cancel.CheckLive();
        if (live.ok()) {
          ++it;
          continue;
        }
        if (live.code() == StatusCode::kAborted) ++admission_.cancelled_queued;
        if (live.code() == StatusCode::kTimedOut) ++admission_.timed_out_queued;
        ++admission_.completed;
        expired.emplace_back(std::move(*it), std::move(live));
        it = admission_queue_.erase(it);
      }
      admission_.queued = static_cast<uint32_t>(admission_queue_.size());
    }
    for (auto& [item, status] : expired) item.state->Finish(status);
  }

  // ---- query-session support ---------------------------------------------------

  /// Registers a waiter resolved by DeliverToQuery/FailQuery.
  std::future<Result<bat::BatPtr>> AddWaiter(core::QueryId q, core::BatId b) {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    auto& p = waiters_[{q, b}];
    return p.get_future();
  }

  /// Drops a waiter that was satisfied through the immediate path.
  void RemoveWaiter(core::QueryId q, core::BatId b) {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    waiters_.erase({q, b});
  }

  /// Thread-safe failure injection into one waiter (cancel / deadline); a
  /// no-op if the delivery already resolved it — whichever side erases the
  /// entry first wins.
  void ResolveWaiterWith(core::QueryId q, core::BatId b, Status error) {
    ResolveWaiter(q, b, std::move(error));
  }

  /// Fails every outstanding waiter of `query` (cooperative Cancel()).
  void AbortQueryWaiters(core::QueryId query) {
    std::vector<std::promise<Result<bat::BatPtr>>> taken;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      auto it = waiters_.lower_bound({query, 0});
      while (it != waiters_.end() && it->first.first == query) {
        taken.push_back(std::move(it->second));
        it = waiters_.erase(it);
      }
    }
    for (auto& p : taken) p.set_value(Status::Aborted("query cancelled"));
  }

  /// Fails every outstanding waiter (cluster shutdown).
  void AbortAllWaiters(const Status& error) {
    std::map<std::pair<core::QueryId, core::BatId>, std::promise<Result<bat::BatPtr>>>
        taken;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      taken.swap(waiters_);
    }
    for (auto& [_, p] : taken) p.set_value(error);
  }

  // ---- DcEnv (service thread only) ----------------------------------------------

  SimTime Now() override { return SteadyNowNs(); }

  void SendRequestMsg(const core::RequestMsg& msg) override {
    // Requests travel anti-clockwise.
    Node* pred = predecessor_.load(std::memory_order_acquire);
    net::RequestFrame rf;
    rf.frame = req_out_.NextHeader(bat::Crc32(&msg, sizeof(msg)));
    rf.req = msg;
    const rdma::MetaBlob meta = rdma::MetaBlob::Of(rf);
    if (pred->request_in()->Send(kOpRequest, meta, nullptr, id_)) {
      req_out_.Track(kOpRequest, meta, nullptr, rf.frame.seq, SteadyNowNs());
    }
  }

  void SendBatMsg(const core::BatHeader& header, bool is_load) override {
    rdma::Buffer payload;
    uint32_t payload_crc = 0;
    if (is_load) {
      auto b = store_.GetById(header.bat_id);
      if (!b.ok() && (b.status().code() == StatusCode::kCorruption ||
                      b.status().code() == StatusCode::kNotFound)) {
        // Corruption: the spilled image of an owned fragment rotted on disk
        // and the store already deleted it. NotFound: this node became the
        // owner through a re-homing while its only registered copy was a
        // transient decoded-cache entry that the cache upkeep has since
        // dropped. Either way the cluster registry still holds the durable
        // payload — re-materialize from it and retry once.
        if (cluster_->RefetchFragment(header.bat_id, this).ok()) {
          b = store_.GetById(header.bat_id);
        }
      }
      if (!b.ok()) {
        DCY_LOG(kError) << "node " << id_ << " cannot load BAT " << header.bat_id << ": "
                        << b.status().ToString();
        return;
      }
      // Serialize into a pooled frame: the frame circulates the ring
      // zero-copy and returns to this pool when the last hop releases it.
      // FrameEncoder plans per-column codecs once for both the size and
      // the encode, and reports what compression bought this frame.
      const bat::FrameEncoder enc(**b);
      auto frame = frame_pool_.Acquire(enc.encoded_size());
      enc.SerializeInto(frame.get());
      const bat::CodecStats& cs = enc.stats();
      ++wire_.frames_encoded;
      wire_.raw_bytes += cs.raw_bytes;
      wire_.wire_bytes += cs.wire_bytes;
      wire_.dict_columns += cs.dict_columns;
      wire_.for_columns += cs.for_columns;
      wire_.plain_columns += cs.plain_columns;
      payload_crc = bat::Crc32(frame->data(), frame->size());
      payload = std::move(frame);
    } else {
      payload = current_payload_;
      if (payload == nullptr) {
        // A protocol state forced a forward with no frame in hand (e.g. a
        // duplicate delivery already consumed it). Dropping the forward is
        // recoverable — the owner's lost-BAT timer reloads it — where the
        // old DCY_CHECK here took the whole process down.
        ++hop_.forwards_without_payload;
        DCY_LOG(kWarn) << "node " << id_ << " cannot forward BAT " << header.bat_id
                       << " without payload; leaving recovery to the owner";
        return;
      }
      payload_crc = current_payload_crc_;
    }
    ++wire_.hops;
    wire_.hop_bytes += payload->size();
    Node* succ = successor_.load(std::memory_order_acquire);
    net::DataFrame df;
    df.frame = data_out_.NextHeader(HeaderCrc(header) ^ payload_crc);
    df.bat = header;
    // meta = envelope + administrative header, payload = encoded BAT
    // (zero-copy); a copy stays in the retransmit window until ACKed.
    const rdma::MetaBlob meta = rdma::MetaBlob::Of(df);
    if (succ->data_in()->Send(kOpBat, meta, payload, id_)) {
      data_out_.Track(kOpBat, meta, std::move(payload), df.frame.seq, SteadyNowNs());
    }
  }

  void DeliverToQuery(core::QueryId query, core::BatId bat) override {
    Result<bat::BatPtr> value = [&]() -> Result<bat::BatPtr> {
      auto it = decoded_.find(bat);
      if (it != decoded_.end()) return it->second;
      // A delivery the store refused to cache (budget): fail the pin with
      // the typed backpressure recorded at decode time — retryable, so the
      // session layer resubmits instead of hanging on a frame that cannot
      // be kept.
      auto rej = decode_rejected_.find(bat);
      if (rej != decode_rejected_.end()) {
        Status refused = rej->second;
        decode_rejected_.erase(rej);
        return refused;
      }
      auto resident = store_.GetResident(bat);
      if (resident.ok()) return resident;
      return Status::NotFound("decoded BAT " + std::to_string(bat) + " missing");
    }();
    ResolveWaiter(query, bat, std::move(value));
  }

  void FailQuery(core::QueryId query, core::BatId bat) override {
    ResolveWaiter(query, bat, cluster_->FragmentFailureStatus(bat));
  }

  uint64_t BatQueueLoadBytes() override {
    return successor_.load(std::memory_order_acquire)->data_in()->queued_bytes();
  }

  uint64_t BatQueueCapacityBytes() override { return cluster_->options_.bat_queue_capacity; }

  /// Decoded-BAT cache upkeep: drop entries the protocol cache released,
  /// returning their budget charge to the store.
  void TrimDecoded() {
    for (auto it = decoded_.begin(); it != decoded_.end();) {
      if (!dc_->cache().Contains(it->first)) {
        if (decoded_in_store_.erase(it->first) > 0) {
          store_.Unpin(it->first);
          store_.Drop(it->first);
        }
        it = decoded_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = decode_rejected_.begin(); it != decode_rejected_.end();) {
      if (!dc_->pins().HasBlocked(it->first)) {
        it = decode_rejected_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Pin via the two-tier store with fault-in, retrying once through a ring
  /// re-fetch when the spill image turned out corrupt. Runs on a query
  /// runner thread (never the service thread) — the disk read may block.
  Result<bat::BatPtr> PinStored(core::BatId bat,
                                std::chrono::steady_clock::time_point deadline) {
    auto pinned = store_.Pin(bat, deadline);
    if (pinned.ok() || pinned.status().code() != StatusCode::kCorruption) {
      return pinned;
    }
    DCY_LOG(kWarn) << "node " << id_ << ": " << pinned.status().message();
    DCY_RETURN_NOT_OK(cluster_->RefetchFragment(bat, this));
    return store_.Pin(bat, deadline);
  }

  /// Launches one committed delta onto the ring. Runs on a query-runner
  /// thread: the serialization happens here (pooled frame, shared by every
  /// hop zero-copy), only the send is posted to the service thread.
  void PublishDelta(const write::DeltaPtr& d) {
    auto frame = frame_pool_.Acquire(write::EncodedDeltaSize(*d));
    write::SerializeDeltaInto(*d, frame.get());
    const uint32_t payload_crc = bat::Crc32(frame->data(), frame->size());
    rdma::Buffer payload = std::move(frame);
    Post([this, fragment = d->fragment, version = d->version,
          payload = std::move(payload), payload_crc] {
      SendDeltaMsg(fragment, version, /*origin=*/id_, /*hops=*/0, payload, payload_crc);
    });
  }

  /// Delta copies this node holds from ring circulation (service-thread
  /// state; call via PostSync).
  size_t cached_delta_count() const {
    size_t n = 0;
    for (const auto& [_, deltas] : delta_cache_) n += deltas.size();
    return n;
  }

 private:
  void ResolveWaiter(core::QueryId query, core::BatId bat, Result<bat::BatPtr> value) {
    std::promise<Result<bat::BatPtr>> promise;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      auto it = waiters_.find({query, bat});
      if (it == waiters_.end()) return;  // nobody waiting (local pin path)
      promise = std::move(it->second);
      waiters_.erase(it);
    }
    promise.set_value(std::move(value));
  }

  /// True for plausibly well-formed envelopes; anything else (a corrupted
  /// meta, a frame from nowhere) is counted and dropped without a NACK —
  /// garbage must not be able to steer per-peer protocol state.
  bool ValidFrame(const net::FrameHeader& h, net::ReliableReceiver* rx) {
    if (h.magic == net::kFrameMagic && h.sender < cluster_->options_.num_nodes &&
        h.sender != id_) {
      return true;
    }
    ++rx->mutable_metrics()->frames_invalid;
    return false;
  }

  void SendNack(uint32_t to, uint32_t channel, uint32_t epoch, uint64_t seq) {
    net::CtrlMsg nack;
    nack.sender = id_;
    nack.channel = channel;
    nack.kind = static_cast<uint32_t>(net::CtrlKind::kNack);
    nack.epoch = epoch;
    nack.seq = seq;
    nack.crc = net::CtrlCrc(nack);
    cluster_->nodes_[to]->ctrl_in()->Send(kOpCtrl, rdma::MetaBlob::Of(nack), nullptr,
                                          id_);
  }

  void SendAck(uint32_t to, uint32_t channel, uint32_t epoch, uint64_t seq) {
    net::CtrlMsg ack;
    ack.sender = id_;
    ack.channel = channel;
    ack.kind = static_cast<uint32_t>(net::CtrlKind::kAck);
    ack.epoch = epoch;
    ack.seq = seq;
    ack.crc = net::CtrlCrc(ack);
    if (cluster_->nodes_[to]->ctrl_in()->Send(kOpCtrl, rdma::MetaBlob::Of(ack), nullptr,
                                              id_)) {
      ++hop_.acks_sent;
    }
  }

  void NoteHeardFrom(core::NodeId sender) {
    const SimTime now = SteadyNowNs();
    Node* succ = successor_.load(std::memory_order_acquire);
    Node* pred = predecessor_.load(std::memory_order_acquire);
    if (succ != nullptr && succ->id() == sender) last_heard_succ_ = now;
    if (pred != nullptr && pred->id() == sender) last_heard_pred_ = now;
  }

  void HandleCtrl(const rdma::Message& m) {
    if (m.meta.size() < sizeof(net::CtrlMsg)) return;
    const auto c = m.meta.As<net::CtrlMsg>();
    if (c.magic != net::kFrameMagic || c.sender >= cluster_->options_.num_nodes) return;
    if (c.crc != net::CtrlCrc(c)) {
      // A corrupted ACK could falsely retire un-delivered frames from the
      // sender's window; drop it and let a later cumulative ACK (or the
      // retransmit timer) carry the information instead.
      ++data_rx_.mutable_metrics()->frames_invalid;
      return;
    }
    const SimTime now = SteadyNowNs();
    switch (static_cast<net::CtrlKind>(c.kind)) {
      case net::CtrlKind::kAck:
        if (c.channel == net::kChData) data_out_.OnAck(c.epoch, c.seq, now);
        if (c.channel == net::kChRequest) req_out_.OnAck(c.epoch, c.seq, now);
        break;
      case net::CtrlKind::kNack:
        if (c.channel == net::kChData) data_out_.OnNack(c.epoch, c.seq, now);
        if (c.channel == net::kChRequest) req_out_.OnNack(c.epoch, c.seq, now);
        break;
      case net::CtrlKind::kHeartbeat:
        ++hop_.heartbeats_received;
        NoteHeardFrom(c.sender);
        break;
    }
  }

  void HandleRequestFrame(const rdma::Message& m) {
    if (m.meta.size() < sizeof(net::RequestFrame)) return;
    const auto rf = m.meta.As<net::RequestFrame>();
    if (!ValidFrame(rf.frame, &req_rx_)) return;
    const bool crc_ok = (bat::Crc32(&rf.req, sizeof(rf.req)) ^
                         net::EnvelopeCrc(rf.frame)) == rf.frame.payload_crc;
    const auto outcome = req_rx_.OnFrame(rf.frame, crc_ok);
    if (outcome.send_nack) {
      SendNack(rf.frame.sender, net::kChRequest, outcome.nack_epoch, outcome.nack_seq);
    }
    if (outcome.verdict != net::ReliableReceiver::Verdict::kDeliver) return;
    NoteHeardFrom(rf.frame.sender);
    dc_->OnRequestMsg(rf.req);
  }

  void HandleDataFrame(const rdma::Message& m) {
    if (m.meta.size() < sizeof(net::DataFrame)) return;
    const auto df = m.meta.As<net::DataFrame>();
    if (!ValidFrame(df.frame, &data_rx_)) return;
    const uint32_t header_crc = HeaderCrc(df.bat);
    bool crc_ok = m.payload != nullptr;
    if (crc_ok && cluster_->options_.resilience.link.verify_crc) {
      crc_ok = (header_crc ^ bat::Crc32(m.payload->data(), m.payload->size()) ^
                net::EnvelopeCrc(df.frame)) == df.frame.payload_crc;
    }
    const auto outcome = data_rx_.OnFrame(df.frame, crc_ok);
    if (outcome.send_nack) {
      SendNack(df.frame.sender, net::kChData, outcome.nack_epoch, outcome.nack_seq);
    }
    if (outcome.verdict != net::ReliableReceiver::Verdict::kDeliver) return;
    NoteHeardFrom(df.frame.sender);

    core::BatHeader header = df.bat;
    if (!cluster_->IsNodeAlive(header.owner)) {
      if (dc_->owned().Find(header.bat_id) != nullptr) {
        // This node inherited the fragment (re-homing): take ownership of
        // the circulating frame too, so hot-set accounting has an owner.
        header.owner = id_;
        ++hop_.frames_adopted;
      } else if (header.hops > (cluster_->options_.resilience.orphan_hop_limit != 0
                                    ? cluster_->options_.resilience.orphan_hop_limit
                                    : 2 * cluster_->options_.num_nodes + 4)) {
        // An orphan with a dead owner and no heir: nobody will retire it,
        // so age it out instead of letting it circle forever.
        ++hop_.orphan_frames_dropped;
        return;
      }
    }

    current_payload_ = m.payload;
    // Strip envelope and admin-header halves: the cached value is the CRC of
    // the payload bytes alone, re-wrapped per hop by SendBatMsg.
    current_payload_crc_ = df.frame.payload_crc ^ net::EnvelopeCrc(df.frame) ^ header_crc;
    // Decode up front if local queries are blocked on it (delivery needs the
    // typed BAT) — cheap check, decode once.
    if (dc_->pins().HasBlocked(header.bat_id) && decoded_.count(header.bat_id) == 0) {
      auto decoded = bat::Deserialize(*m.payload);
      if (decoded.ok()) {
        // The decoded payload charges the memory budget like any other
        // resident fragment: admit it as a non-durable (droppable) frame,
        // pinned until the protocol cache releases it. Over budget, the
        // typed refusal is delivered to the blocked pin instead of the data
        // (retryable backpressure, never an unaccounted allocation).
        Status admitted = store_.Admit(header.bat_id, "", *decoded,
                                       /*durable=*/false, /*initial_pins=*/1);
        if (admitted.ok()) {
          decoded_[header.bat_id] = *decoded;
          decoded_in_store_.insert(header.bat_id);
        } else if (admitted.code() == StatusCode::kAlreadyExists) {
          decoded_[header.bat_id] = *decoded;
        } else {
          decode_rejected_[header.bat_id] = admitted;
        }
      } else {
        ++hop_.decode_failures;  // hop CRC passed but the encoding is bad
      }
    }
    dc_->OnBatMsg(header);
    store_.NoteRingLoi(header.bat_id, header.loi);
    current_payload_ = nullptr;
    current_payload_crc_ = 0;
    TrimDecoded();
  }

  /// Sends one delta frame clockwise (service thread only). Shares the data
  /// sender's sequence space, so ACK/NACK/retransmission come for free.
  void SendDeltaMsg(core::BatId fragment, uint64_t version, core::NodeId origin,
                    uint32_t hops, rdma::Buffer payload, uint32_t payload_crc) {
    Node* succ = successor_.load(std::memory_order_acquire);
    if (succ == nullptr || succ == this) return;
    DeltaFrame df;
    df.fragment = fragment;
    df.origin = origin;
    df.version = version;
    df.hops = hops;
    df.frame = data_out_.NextHeader(DeltaHeaderCrc(df) ^ payload_crc);
    const rdma::MetaBlob meta = rdma::MetaBlob::Of(df);
    if (succ->data_in()->Send(kOpDelta, meta, payload, id_)) {
      data_out_.Track(kOpDelta, meta, std::move(payload), df.frame.seq, SteadyNowNs());
    }
  }

  void HandleDeltaFrame(const rdma::Message& m) {
    if (m.meta.size() < sizeof(DeltaFrame)) return;
    const auto df = m.meta.As<DeltaFrame>();
    if (!ValidFrame(df.frame, &data_rx_)) return;
    const uint32_t header_crc = DeltaHeaderCrc(df);
    bool crc_ok = m.payload != nullptr;
    if (crc_ok && cluster_->options_.resilience.link.verify_crc) {
      crc_ok = (header_crc ^ bat::Crc32(m.payload->data(), m.payload->size()) ^
                net::EnvelopeCrc(df.frame)) == df.frame.payload_crc;
    }
    const auto outcome = data_rx_.OnFrame(df.frame, crc_ok);
    if (outcome.send_nack) {
      SendNack(df.frame.sender, net::kChData, outcome.nack_epoch, outcome.nack_seq);
    }
    if (outcome.verdict != net::ReliableReceiver::Verdict::kDeliver) return;
    NoteHeardFrom(df.frame.sender);

    // Full lap: the origin already holds the commit in the write log.
    if (df.origin == id_) return;
    write::WriteLog& log = cluster_->write_log_;
    // Stale: the compactor folded this version into a base already.
    if (df.version <= log.BaseVersionOf(df.fragment)) return;
    auto decoded = write::DeserializeDelta(*m.payload);
    if (!decoded.ok()) {
      // Hop CRC passed but the delta encoding itself is bad (corrupted at
      // the source or a disabled-CRC run): count it, never apply garbage.
      ++hop_.decode_failures;
      log.NoteDeltaDecodeFailure();
      return;
    }
    delta_cache_[df.fragment].push_back(std::move(decoded).value());
    // Forward until every node held a copy. Termination is reaching the
    // origin (above); the hop bound only reaps frames whose origin died.
    const uint32_t hop_bound = 2 * cluster_->options_.num_nodes + 4;
    if (df.hops + 1 >= hop_bound) {
      ++hop_.orphan_frames_dropped;
      return;
    }
    const uint32_t payload_crc =
        df.frame.payload_crc ^ net::EnvelopeCrc(df.frame) ^ header_crc;
    SendDeltaMsg(df.fragment, df.version, df.origin, df.hops + 1, m.payload,
                 payload_crc);
    log.NoteDeltaForwarded(m.payload->size());
  }

  /// Drops cached delta copies the compactor has folded into new bases
  /// (their versions are <= the fragment's base version). Maintenance tick.
  void TrimDeltaCache() {
    for (auto it = delta_cache_.begin(); it != delta_cache_.end();) {
      const uint64_t base = cluster_->write_log_.BaseVersionOf(it->first);
      auto& deltas = it->second;
      deltas.erase(std::remove_if(deltas.begin(), deltas.end(),
                                  [base](const write::DeltaPtr& d) {
                                    return d->version <= base;
                                  }),
                   deltas.end());
      it = deltas.empty() ? delta_cache_.erase(it) : std::next(it);
    }
  }

  /// Sends one coalesced cumulative ACK per distinct sender in a drained
  /// batch — O(batch) frames cost O(senders) ACK messages.
  template <typename FrameT>
  void AckDrainedBatch(const std::vector<rdma::Message>& batch, uint32_t channel,
                       const net::ReliableReceiver& rx) {
    uint32_t seen[2] = {core::kInvalidNode, core::kInvalidNode};
    size_t n = 0;
    for (const rdma::Message& m : batch) {
      if (m.meta.size() < sizeof(FrameT)) continue;
      const auto f = m.meta.As<FrameT>();
      const uint32_t s = f.frame.sender;
      if (s >= cluster_->options_.num_nodes) continue;
      bool known = false;
      for (size_t i = 0; i < n; ++i) known = known || seen[i] == s;
      if (known) continue;
      if (n < 2) seen[n++] = s;
      uint32_t epoch = 0;
      uint64_t seq = 0;
      if (rx.CumulativeAck(s, &epoch, &seq)) SendAck(s, channel, epoch, seq);
    }
  }

  /// Re-sends everything due in a link's retransmit window.
  void PumpRetransmits(SimTime now) {
    if (const auto* w = data_out_.CollectRetransmits(now)) {
      Node* succ = successor_.load(std::memory_order_acquire);
      for (const auto& s : *w) succ->data_in()->Send(s.opcode, s.meta, s.payload, id_);
    }
    if (const auto* w = req_out_.CollectRetransmits(now)) {
      Node* pred = predecessor_.load(std::memory_order_acquire);
      for (const auto& s : *w) {
        pred->request_in()->Send(s.opcode, s.meta, s.payload, id_);
      }
    }
  }

  void SendHeartbeats() {
    net::CtrlMsg hb;
    hb.sender = id_;
    hb.channel = net::kChCtrl;
    hb.kind = static_cast<uint32_t>(net::CtrlKind::kHeartbeat);
    hb.crc = net::CtrlCrc(hb);
    Node* succ = successor_.load(std::memory_order_acquire);
    Node* pred = predecessor_.load(std::memory_order_acquire);
    const rdma::MetaBlob meta = rdma::MetaBlob::Of(hb);
    if (succ != nullptr && succ != this) {
      succ->ctrl_in()->Send(kOpCtrl, meta, nullptr, id_);
      ++hop_.heartbeats_sent;
    }
    if (pred != nullptr && pred != this && pred != succ) {
      pred->ctrl_in()->Send(kOpCtrl, meta, nullptr, id_);
      ++hop_.heartbeats_sent;
    }
  }

  void CheckNeighbours(SimTime now) {
    const auto& res = cluster_->options_.resilience;
    const SimTime silence_bound = res.heartbeat_miss_threshold * res.heartbeat_period;
    Node* succ = successor_.load(std::memory_order_acquire);
    Node* pred = predecessor_.load(std::memory_order_acquire);
    if (succ != nullptr && succ != this && now - last_heard_succ_ > silence_bound) {
      ++hop_.heartbeats_missed;
      last_heard_succ_ = now;  // one report per silence window, not a storm
      cluster_->ReportSuspect(id_, succ->id());
    }
    if (pred != nullptr && pred != this && pred != succ &&
        now - last_heard_pred_ > silence_bound) {
      ++hop_.heartbeats_missed;
      last_heard_pred_ = now;
      cluster_->ReportSuspect(id_, pred->id());
    }
  }

  void ServiceLoop() {
    const auto& node_opts = dc_->options();
    const auto& res = cluster_->options_.resilience;
    SimTime next_load_all = SteadyNowNs() + node_opts.load_all_period;
    SimTime next_maintenance = SteadyNowNs() + node_opts.maintenance_period;
    SimTime next_adapt = SteadyNowNs() + node_opts.adapt_period;
    SimTime next_heartbeat = SteadyNowNs() + res.heartbeat_period;
    last_heard_succ_ = last_heard_pred_ = SteadyNowNs();

    while (!stop_.load(std::memory_order_relaxed)) {
      bool did_work = false;

      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mailbox_mu_);
        if (!mailbox_.empty()) {
          task = std::move(mailbox_.front());
          mailbox_.pop_front();
        }
      }
      if (task) {
        task();
        did_work = true;
      }

      // Control first: ACKs shrink retransmit windows before new sends.
      drain_.clear();
      if (ctrl_in_->TryReceiveAll(&drain_) > 0) {
        for (const rdma::Message& m : drain_) HandleCtrl(m);
        did_work = true;
      }

      // Drain whole backlogs in one lock acquisition per channel: at high
      // message rates a rotation delivers bursts, and per-message locking
      // was the dominant hop cost.
      drain_.clear();
      if (request_in_->TryReceiveAll(&drain_) > 0) {
        for (const rdma::Message& m : drain_) HandleRequestFrame(m);
        AckDrainedBatch<net::RequestFrame>(drain_, net::kChRequest, req_rx_);
        did_work = true;
      }
      drain_.clear();
      if (data_in_->TryReceiveAll(&drain_) > 0) {
        for (rdma::Message& m : drain_) {
          if (m.opcode == kOpDelta) {
            HandleDeltaFrame(m);
          } else {
            HandleDataFrame(m);
          }
        }
        AckDrainedBatch<net::DataFrame>(drain_, net::kChData, data_rx_);
        drain_.clear();  // release payload references promptly
        did_work = true;
      }

      const SimTime now = SteadyNowNs();
      PumpRetransmits(now);
      if (res.enable_heartbeats && now >= next_heartbeat) {
        SendHeartbeats();
        CheckNeighbours(now);
        next_heartbeat = now + res.heartbeat_period;
        did_work = true;
      }
      if (now >= next_load_all) {
        dc_->OnLoadAllTimer();
        next_load_all = now + node_opts.load_all_period;
        did_work = true;
      }
      if (now >= next_maintenance) {
        dc_->OnMaintenanceTimer();
        SweepAdmissionQueue();
        TrimDeltaCache();
        next_maintenance = now + node_opts.maintenance_period;
        did_work = true;
      }
      if (now >= next_adapt) {
        dc_->OnAdaptTimer();
        next_adapt = now + node_opts.adapt_period;
        did_work = true;
      }

      if (!did_work) {
        std::unique_lock<std::mutex> lock(mailbox_mu_);
        mailbox_cv_.wait_for(lock, std::chrono::nanoseconds(res.idle_wait));
      }
    }
  }

  /// One admission slot: dequeues FIFO, executes (or fails a query whose
  /// token tripped while it waited), publishes the terminal outcome.
  void QueryRunnerLoop() {
    for (;;) {
      QueuedQuery item;
      uint64_t seq = 0;
      {
        std::unique_lock<std::mutex> lock(admission_mu_);
        admission_cv_.wait(lock,
                           [this] { return runners_stop_ || !admission_queue_.empty(); });
        if (admission_queue_.empty()) {
          if (runners_stop_) return;
          continue;  // spurious wake
        }
        item = std::move(admission_queue_.front());
        admission_queue_.pop_front();
        admission_.queued = static_cast<uint32_t>(admission_queue_.size());
        ++admission_.running;
        admission_.peak_running = std::max(admission_.peak_running, admission_.running);
        ++admission_.admitted;
        seq = next_admitted_seq_++;
        running_states_.insert(item.state);
      }

      const auto admitted_at = std::chrono::steady_clock::now();
      const Status live = item.state->cancel.CheckLive();
      Result<QueryResult> outcome = live.ok()
          ? cluster_->RunQuery(this, *item.plan, item.state.get(), item.options)
          : Result<QueryResult>(live);
      if (outcome.ok()) {
        QueryResult& qr = outcome.value();
        qr.admitted_seq = seq;
        qr.timing.queued_seconds =
            std::chrono::duration<double>(admitted_at - item.state->submitted_at).count();
        qr.timing.wall_seconds = SecondsSince(item.state->submitted_at);
      }

      {
        std::lock_guard<std::mutex> lock(admission_mu_);
        running_states_.erase(item.state);
        --admission_.running;
        ++admission_.completed;
        if (!live.ok()) {
          if (live.code() == StatusCode::kAborted) ++admission_.cancelled_queued;
          if (live.code() == StatusCode::kTimedOut) ++admission_.timed_out_queued;
        }
      }
      item.state->Finish(std::move(outcome));
    }
  }

  RingCluster* cluster_;
  core::NodeId id_;
  storage::FragmentStore store_;
  std::unique_ptr<core::LoitPolicy> loit_;
  std::unique_ptr<core::DcNode> dc_;
  std::atomic<Node*> successor_{nullptr};
  std::atomic<Node*> predecessor_{nullptr};

  std::unique_ptr<rdma::Channel> data_in_;     // from predecessor
  std::unique_ptr<rdma::Channel> request_in_;  // from successor
  std::unique_ptr<rdma::Channel> ctrl_in_;     // ACK/NACK/heartbeat, any node

  // Hop reliability (service-thread state; read via PostSync snapshots).
  net::ReliableSender data_out_;   // towards successor
  net::ReliableSender req_out_;    // towards predecessor
  net::ReliableReceiver data_rx_;  // frames from predecessor(s)
  net::ReliableReceiver req_rx_;   // frames from successor(s)
  HopMetrics hop_;
  WireMetrics wire_;
  SimTime last_heard_succ_ = 0;
  SimTime last_heard_pred_ = 0;

  std::atomic<bool> crashed_{false};
  /// Serializes inline task execution while the node is crashed (the
  /// substitute for the dead service thread's single-writer discipline).
  std::mutex dead_exec_mu_;

  std::thread service_;
  std::atomic<bool> stop_{false};
  std::mutex mailbox_mu_;
  std::condition_variable mailbox_cv_;
  std::deque<std::function<void()>> mailbox_;

  // Admission queue + runner pool (guarded by admission_mu_).
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::deque<QueuedQuery> admission_queue_;
  std::set<std::shared_ptr<internal::QueryState>> running_states_;
  core::AdmissionMetrics admission_;
  uint64_t next_admitted_seq_ = 0;
  bool accepting_ = false;  ///< Start() flips it on, StopRunners() off
  bool runners_stop_ = false;
  std::vector<std::thread> runners_;

  rdma::Buffer current_payload_;
  /// Payload-only CRC of current_payload_, forwarded hop to hop so a
  /// forward never rescans the payload on the send path.
  uint32_t current_payload_crc_ = 0;
  rdma::BufferPool frame_pool_;  ///< serialization frames for owned loads
  std::vector<rdma::Message> drain_;  ///< service-loop batch receive scratch
  std::unordered_map<core::BatId, bat::BatPtr> decoded_;
  /// Decoded frames charged to the store (one pin each until TrimDecoded).
  std::unordered_set<core::BatId> decoded_in_store_;
  /// Deliveries the store refused under budget; consumed by DeliverToQuery.
  std::unordered_map<core::BatId, Status> decode_rejected_;
  /// Delta copies received from ring circulation, per fragment (service
  /// thread only); trimmed once the compactor folds past their versions.
  std::unordered_map<core::BatId, std::vector<write::DeltaPtr>> delta_cache_;

  std::mutex waiters_mu_;
  std::map<std::pair<core::QueryId, core::BatId>, std::promise<Result<bat::BatPtr>>>
      waiters_;
};

// ===========================================================================
// Session hooks: the datacyclotron.* builtins of one query execution.
// ===========================================================================

namespace {

class SessionHooks final : public mal::DcHooks {
 public:
  SessionHooks(RingCluster* cluster, RingCluster::Node* node, core::QueryId query,
               const mal::CancelToken* cancel, uint64_t snapshot)
      : cluster_(cluster), node_(node), query_(query), cancel_(cancel),
        snapshot_(snapshot) {}

  ~SessionHooks() override {
    // Release everything the plan failed to unpin (aborted / cancelled /
    // timed-out executions): delivered pins drop their cache reference and
    // bare requests retire their S2 entry, so a dead query leaks neither
    // memory nor fragment requests that would keep BATs hot.
    for (const core::BatId bat : requested_) {
      node_->Post([node = node_, q = query_, bat] { node->dc().Unpin(q, bat); });
    }
    // Buffer-frame pins likewise: a leaked pin would make the frame
    // unevictable forever.
    for (const auto& [bat, count] : store_pins_) {
      for (uint32_t i = 0; i < count; ++i) node_->store().Unpin(bat);
    }
  }

  /// Summed wall time the plan's pins spent blocked on the ring.
  double blocked_seconds() const {
    return static_cast<double>(blocked_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  Result<mal::RequestHandle> Request(const std::string& schema, const std::string& table,
                                     const std::string& column, int64_t) override {
    const std::string name = schema + "." + table + "." + column;
    DCY_ASSIGN_OR_RETURN(core::BatId bat, cluster_->FindFragment(name));
    {
      std::lock_guard<std::mutex> lock(mu_);
      requested_.insert(bat);
    }
    node_->Post([node = node_, q = query_, bat] { node->dc().Request(q, bat); });
    return mal::RequestHandle{bat};
  }

  Result<bat::BatPtr> Pin(const mal::RequestHandle& handle) override {
    const core::BatId bat = handle.bat;
    if (cancel_ != nullptr) DCY_RETURN_NOT_OK(cancel_->CheckLive());
    {
      // Defensive pin-without-request still owes an unpin at teardown.
      std::lock_guard<std::mutex> lock(mu_);
      requested_.insert(bat);
    }
    // Register the waiter *before* pinning so a delivery racing the pin
    // cannot be missed.
    auto future = node_->AddWaiter(query_, bat);
    std::promise<Result<bat::BatPtr>> immediate;
    auto immediate_future = immediate.get_future();
    bool fault_in = false;
    node_->PostSync([&, this] {
      if (node_->dc().Pin(query_, bat)) {
        // Available now: owned locally or cached. TryPinResident never does
        // I/O — the service thread must not block on a disk read.
        auto local = node_->store().TryPinResident(bat);
        if (local.ok()) {
          NoteStorePin(bat);
          immediate.set_value(*local);
          return;
        }
        if (local.status().code() == StatusCode::kFailedPrecondition) {
          // Spilled: fault it in from the disk tier on this runner thread
          // (the whole pin instruction already runs under a BlockingScope,
          // so the executor backfills the blocked slot).
          fault_in = true;
          immediate.set_value(local.status());
          return;
        }
        // Not owned: it must be in the decoded cache via DeliverToQuery's
        // bookkeeping — fall through to the waiter resolution by asking the
        // protocol to deliver from cache.
        node_->DeliverToQuery(query_, bat);
        immediate.set_value(Status::FailedPrecondition("resolved via waiter"));
      } else {
        immediate.set_value(Status::FailedPrecondition("blocked"));
      }
    });
    Result<bat::BatPtr> quick = immediate_future.get();
    bat::BatPtr value;
    if (quick.ok()) {
      node_->RemoveWaiter(query_, bat);
      value = *quick;
    } else if (fault_in) {
      node_->RemoveWaiter(query_, bat);
      const auto blocked_at = std::chrono::steady_clock::now();
      const auto deadline = cancel_ != nullptr && cancel_->has_deadline()
                                ? cancel_->deadline()
                                : std::chrono::steady_clock::time_point::max();
      auto faulted = node_->PinStored(bat, deadline);
      blocked_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - blocked_at)
                                .count(),
                            std::memory_order_relaxed);
      if (!faulted.ok()) return faulted.status();
      NoteStorePin(bat);
      value = *faulted;
    } else {
      // Blocked until the fragment flows by — or the query is cancelled or
      // runs past its deadline. Cancellation protocol: Cancel() sets the
      // token *then* aborts this query's waiters, and we re-check the token
      // only after registering the waiter, so one side always fires.
      const auto blocked_at = std::chrono::steady_clock::now();
      if (cancel_ != nullptr) {
        if (cancel_->cancelled()) {
          node_->ResolveWaiterWith(query_, bat, Status::Aborted("query cancelled"));
        } else if (cancel_->has_deadline() &&
                   future.wait_until(cancel_->deadline()) != std::future_status::ready) {
          node_->ResolveWaiterWith(query_, bat, cancel_->CheckLive());
        }
      }
      auto delivered = future.get();  // blocks until resolved either way
      blocked_ns_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - blocked_at)
              .count(),
          std::memory_order_relaxed);
      if (!delivered.ok()) return delivered.status();
      value = *delivered;
    }
    // Versioned read (ISSUE-9): resolve the pinned payload into this query's
    // snapshot view. For unwritten tables this is one relaxed atomic and
    // returns `value` untouched; for written tables the log serves a merged
    // view with fresh columns (base + applicable deltas), ignoring whatever
    // stale base version the ring copy happened to carry.
    {
      auto view = cluster_->write_log().ResolveView(bat, value, snapshot_);
      if (!view.ok()) return view.status();
      value = std::move(view).value();
    }
    {
      // Dataflow workers pin concurrently; the bookkeeping maps need a lock.
      std::lock_guard<std::mutex> lock(mu_);
      pinned_[bat] = value;
      by_pointer_[value.get()] = bat;
    }
    return value;
  }

  Status Unpin(const mal::Datum& pinned) override {
    core::BatId bat = core::kInvalidBat;
    bool release_store_pin = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto* h = std::get_if<mal::RequestHandle>(&pinned)) {
        bat = h->bat;
      } else if (const auto* b = std::get_if<bat::BatPtr>(&pinned)) {
        auto it = by_pointer_.find(b->get());
        if (it == by_pointer_.end()) {
          return Status::InvalidArgument("unpin of a BAT this query never pinned");
        }
        bat = it->second;
        by_pointer_.erase(it);
      } else {
        return Status::InvalidArgument("unpin expects a BAT or request handle");
      }
      pinned_.erase(bat);
      requested_.erase(bat);  // fully released: nothing left for teardown
      auto sp = store_pins_.find(bat);
      if (sp != store_pins_.end()) {
        release_store_pin = true;
        if (--sp->second == 0) store_pins_.erase(sp);
      }
    }
    if (release_store_pin) node_->store().Unpin(bat);
    node_->Post([node = node_, q = query_, bat] { node->dc().Unpin(q, bat); });
    return Status::OK();
  }

 private:
  void NoteStorePin(core::BatId bat) {
    std::lock_guard<std::mutex> lock(mu_);
    ++store_pins_[bat];
  }

  RingCluster* cluster_;
  RingCluster::Node* node_;
  core::QueryId query_;
  const mal::CancelToken* cancel_;
  const uint64_t snapshot_;  ///< commit version every pin resolves at
  std::atomic<int64_t> blocked_ns_{0};
  std::mutex mu_;  ///< guards pinned_/by_pointer_/requested_ across workers
  std::unordered_map<core::BatId, bat::BatPtr> pinned_;
  std::unordered_map<const bat::Bat*, core::BatId> by_pointer_;
  std::set<core::BatId> requested_;  ///< every fragment this query touched
  /// Buffer-frame pins this query holds in the node's store (eviction
  /// protection); released on Unpin or teardown.
  std::unordered_map<core::BatId, uint32_t> store_pins_;
};

/// The sql.wappend / sql.wcommit / sql.wdelete hooks of one query execution:
/// columns buffer locally, commits go to the cluster write log (the single
/// commit authority), and the published deltas are launched onto the ring
/// from this query's node. Thread-safe: an INSERT plan's wappend instructions
/// run on concurrent dataflow workers.
class QueryWriteHooks final : public mal::WriteHooks {
 public:
  QueryWriteHooks(RingCluster* cluster, RingCluster::Node* node, uint64_t snapshot)
      : cluster_(cluster), node_(node), snapshot_(snapshot) {}

  Result<int64_t> BufferColumn(const std::string& table, const std::string& column,
                               std::vector<bat::Value> values) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto& cols = staged_[table];
    for (const auto& [name, unused] : cols) {
      if (name == column) {
        return Status::InvalidArgument("column \"" + column +
                                       "\" buffered twice in one INSERT");
      }
    }
    cols.emplace_back(column, std::move(values));
    return static_cast<int64_t>(cols.size());
  }

  Result<int64_t> CommitInsert(const std::string& table, int64_t expected_rows) override {
    std::vector<std::pair<std::string, std::vector<bat::Value>>> cols;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = staged_.find(table);
      if (it == staged_.end()) {
        return Status::FailedPrecondition("sql.wcommit without buffered columns for " +
                                          table);
      }
      cols = std::move(it->second);
      staged_.erase(it);
    }
    for (const auto& [name, values] : cols) {
      if (static_cast<int64_t>(values.size()) != expected_rows) {
        return Status::InvalidArgument(
            "column \"" + name + "\" buffered " + std::to_string(values.size()) +
            " value(s), statement inserts " + std::to_string(expected_rows) + " row(s)");
      }
    }
    DCY_ASSIGN_OR_RETURN(write::CommitResult cr,
                         cluster_->write_log().CommitInsert(table, cols));
    Publish(cr);
    return cr.rows;
  }

  Result<int64_t> DeleteAt(const std::string& table,
                           const bat::BatPtr& positions) override {
    // The mirror BAT's tail enumerates qualifying offsets into this query's
    // snapshot view — exactly the coordinate space CommitDeleteAt expects.
    const bat::Column& tail = *positions->tail();
    std::vector<uint64_t> offsets;
    offsets.reserve(tail.size());
    for (size_t i = 0; i < tail.size(); ++i) {
      offsets.push_back(static_cast<uint64_t>(tail.GetInt64(i)));
    }
    DCY_ASSIGN_OR_RETURN(write::CommitResult cr,
                         cluster_->write_log().CommitDeleteAt(table, offsets, snapshot_));
    Publish(cr);
    return cr.rows;
  }

  /// Highest version this query committed (0 = read-only).
  uint64_t commit_version() const {
    return commit_version_.load(std::memory_order_relaxed);
  }

 private:
  void Publish(const write::CommitResult& cr) {
    uint64_t seen = commit_version_.load(std::memory_order_relaxed);
    while (seen < cr.version &&
           !commit_version_.compare_exchange_weak(seen, cr.version,
                                                  std::memory_order_relaxed)) {
    }
    for (const auto& d : cr.published) node_->PublishDelta(d);
  }

  RingCluster* cluster_;
  RingCluster::Node* node_;
  const uint64_t snapshot_;
  std::atomic<uint64_t> commit_version_{0};
  std::mutex mu_;
  /// Per table: wappend-buffered columns awaiting the statement's wcommit.
  std::map<std::string, std::vector<std::pair<std::string, std::vector<bat::Value>>>>
      staged_;
};

}  // namespace

// ===========================================================================
// RingCluster
// ===========================================================================

RingCluster::RingCluster(Options options) : options_(options) {
  DCY_CHECK(options_.num_nodes >= 2);
  if (options_.memory.budget_bytes > 0 && options_.spill_dir.empty()) {
    // A budget without a spill root would refuse every over-budget byte
    // outright; give the stores a private disk tier under the system temp
    // directory instead (removed with the cluster).
    static std::atomic<uint64_t> counter{0};
    const auto dir =
        std::filesystem::temp_directory_path() /
        ("dcy-spill-" + std::to_string(static_cast<uint64_t>(::getpid())) + "-" +
         std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) {
      options_.spill_dir = dir.string();
      owns_spill_dir_ = true;
    }
  }
  nodes_.reserve(options_.num_nodes);
  spliced_in_.assign(options_.num_nodes, true);
  alive_ = std::make_unique<std::atomic<bool>[]>(options_.num_nodes);
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    alive_[i].store(true, std::memory_order_relaxed);
    nodes_.push_back(std::make_unique<Node>(this, i));
  }
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    Node* succ = nodes_[(i + 1) % options_.num_nodes].get();
    Node* pred = nodes_[(i + options_.num_nodes - 1) % options_.num_nodes].get();
    nodes_[i]->SetNeighbours(succ, pred);
  }
}

RingCluster::~RingCluster() {
  Stop();
  if (owns_spill_dir_) {
    // The stores (and their spill threads) must be gone before their
    // directory is: destroy the nodes first.
    nodes_.clear();
    std::error_code ec;
    std::filesystem::remove_all(options_.spill_dir, ec);
  }
}

Status RingCluster::LoadBat(core::NodeId owner, const std::string& name, bat::BatPtr bat) {
  if (owner >= options_.num_nodes) return Status::InvalidArgument("bad owner node");
  if (bat == nullptr) return Status::InvalidArgument("null BAT for " + name);
  if (!IsNodeAlive(owner)) {
    return Status::Unavailable("owner node " + std::to_string(owner) + " is down");
  }
  DCY_RETURN_NOT_OK(ValidateQualifiedName(name));
  const core::BatId id = next_bat_.fetch_add(1);
  const uint64_t size = bat->ByteSize();
  const bat::ValType tail_type = bat->tail()->type();
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    if (directory_.count(name) > 0) {
      return Status::AlreadyExists("fragment \"" + name + "\" is already registered");
    }
    // Admission may wait on spill I/O when the node is near its budget —
    // bulk loads beyond memory proceed at disk speed instead of failing.
    DCY_RETURN_NOT_OK(nodes_[owner]->store().Admit(id, name, bat, /*durable=*/true,
                                                   /*initial_pins=*/0,
                                                   std::chrono::milliseconds(10000)));
    directory_[name] = id;
    sizes_[id] = size;
    column_types_[name] = tail_type;
    fragments_[id] = FragmentInfo{name, owner, size, bat};
  }
  // Register the fragment with the write log (version 0 base). Rejects a
  // column whose row count disagrees with its table's other columns — undo
  // the registration so a failed load leaves no half-loaded fragment.
  const size_t last_dot = name.rfind('.');
  Status write_reg = write_log_.RegisterFragment(id, name.substr(0, last_dot),
                                                 name.substr(last_dot + 1), bat);
  if (!write_reg.ok()) {
    std::lock_guard<std::mutex> lock(directory_mu_);
    nodes_[owner]->store().Drop(id);
    directory_.erase(name);
    sizes_.erase(id);
    column_types_.erase(name);
    fragments_.erase(id);
    return write_reg;
  }
  // Outside directory_mu_: the service thread takes that lock in
  // FragmentFailureStatus, so holding it across a PostSync would deadlock.
  if (started_.load()) {
    nodes_[owner]->PostSync([&] { nodes_[owner]->dc().AddOwnedBat(id, size); });
  } else {
    nodes_[owner]->dc().AddOwnedBat(id, size);
  }
  return Status::OK();
}

sql::Schema RingCluster::SqlSchema() const {
  std::map<std::string, bat::ValType> columns;
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    columns = column_types_;
  }
  return sql::Schema::FromQualifiedColumns(columns);
}

Result<core::BatId> RingCluster::FindFragment(const std::string& name) const {
  std::lock_guard<std::mutex> lock(directory_mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::NotFound("no fragment named " + name);
  return it->second;
}

void RingCluster::Start() {
  if (started_.exchange(true)) return;
  // The kernel policy is process-wide (the executor is shared); the last
  // started cluster wins, which matches how benches and servers run one
  // cluster per process.
  exec::SetExecPolicy(options_.exec_policy);
  for (auto& node : nodes_) node->Start();
  // Background compactors, one per node, owned by the cluster — CrashNode
  // kills a node's threads without touching these, so a fold in flight on a
  // dying node is abandoned by its commit guard, never by a join.
  if (options_.compaction.enable) {
    {
      std::lock_guard<std::mutex> lock(compact_mu_);
      compactors_stop_ = false;
    }
    compactors_.reserve(options_.num_nodes);
    for (uint32_t i = 0; i < options_.num_nodes; ++i) {
      compactors_.emplace_back([this, i] { CompactorLoop(i); });
    }
  }
}

void RingCluster::Stop() {
  if (!started_.exchange(false)) return;
  // Compactors first: a fold republishes through node stores and must not
  // race the teardown below.
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compactors_stop_ = true;
  }
  compact_cv_.notify_all();
  for (auto& t : compactors_) {
    if (t.joinable()) t.join();
  }
  compactors_.clear();
  // Runner pools next (running queries unwind through the still-live
  // service threads), then the protocol layer. Crashed nodes are already
  // quiescent; both calls are no-ops for them.
  for (auto& node : nodes_) {
    if (!node->crashed()) node->StopRunners();
  }
  for (auto& node : nodes_) {
    if (!node->crashed()) node->Stop();
  }
}

void RingCluster::CompactorLoop(core::NodeId node) {
  const auto interval =
      std::chrono::nanoseconds(std::max<SimTime>(1, options_.compaction.interval));
  std::unique_lock<std::mutex> lock(compact_mu_);
  while (!compactors_stop_) {
    compact_cv_.wait_for(lock, interval);
    if (compactors_stop_) return;
    if (!IsNodeAlive(node)) continue;  // a dead node's compactor idles
    lock.unlock();
    CompactionPass(node);
    lock.lock();
  }
}

void RingCluster::CompactionPass(core::NodeId node) {
  const auto ready = write_log_.TablesReadyToFold(options_.compaction);
  for (const auto& [table, first_fragment] : ready) {
    // A table is folded by the node owning its first fragment; after a
    // re-homing the heir's compactor naturally takes over.
    core::NodeId owner = core::kInvalidNode;
    {
      std::lock_guard<std::mutex> lock(directory_mu_);
      auto it = fragments_.find(first_fragment);
      if (it == fragments_.end()) continue;
      owner = it->second.owner;
    }
    if (owner != node) continue;
    auto folded =
        write_log_.FoldTable(table, [this, node] { return IsNodeAlive(node); });
    if (!folded.ok()) {
      // Aborted: this node died mid-fold (the guard rejected the commit and
      // the log stands untouched) or a concurrent fold won. Retry later.
      continue;
    }
    if (folded->rebased.empty()) continue;
    // Republish every rebased fragment under the new base version: the
    // cluster registry first (the durable copy re-homing and refetch read),
    // then the owner's store, so subsequent pins resolve the new base.
    Node* owner_node = nodes_[node].get();
    for (auto& [id, fname, base] : folded->rebased) {
      const uint64_t bytes = base->ByteSize();
      {
        std::lock_guard<std::mutex> lock(directory_mu_);
        auto it = fragments_.find(id);
        if (it != fragments_.end()) {
          it->second.loader = base;
          it->second.size = bytes;
        }
        sizes_[id] = bytes;
      }
      if (!IsNodeAlive(node)) break;  // crashed between commit and republish
      owner_node->store().Drop(id);
      Status admitted = owner_node->store().Admit(id, fname, base, /*durable=*/true,
                                                  /*initial_pins=*/0,
                                                  std::chrono::milliseconds(10000),
                                                  folded->new_version);
      if (!admitted.ok()) {
        // The registry still carries the folded payload; the next pin
        // refetches it from there.
        DCY_LOG(kWarn) << "republish of folded fragment " << fname
                       << " failed: " << admitted.ToString();
      }
    }
    DCY_LOG(kInfo) << "node " << node << " folded " << folded->deltas_folded
                   << " delta(s) of " << table << " into base version "
                   << folded->new_version;
  }
}

// ---- fault tolerance -------------------------------------------------------

bool RingCluster::IsNodeAlive(core::NodeId node) const {
  return node < options_.num_nodes && alive_[node].load(std::memory_order_acquire);
}

core::NodeId RingCluster::NextAliveLocked(core::NodeId from) const {
  for (uint32_t step = 1; step < options_.num_nodes; ++step) {
    const core::NodeId n = (from + step) % options_.num_nodes;
    if (spliced_in_[n]) return n;
  }
  return from;
}

core::NodeId RingCluster::PrevAliveLocked(core::NodeId from) const {
  for (uint32_t step = 1; step < options_.num_nodes; ++step) {
    const core::NodeId n = (from + options_.num_nodes - step) % options_.num_nodes;
    if (spliced_in_[n]) return n;
  }
  return from;
}

Status RingCluster::CrashNode(core::NodeId node) {
  if (node >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  if (!started_.load()) return Status::FailedPrecondition("cluster not started");
  Node* victim = nodes_[node].get();
  if (victim->crashed()) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is already crashed");
  }
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (dead_count_.load(std::memory_order_relaxed) + 1 >= options_.num_nodes) {
      return Status::FailedPrecondition("refusing to crash the last alive node");
    }
    ++nodes_crashed_;
    crashed_at_ = std::chrono::steady_clock::now();
  }
  alive_[node].store(false, std::memory_order_release);
  dead_count_.fetch_add(1, std::memory_order_relaxed);
  victim->Crash();
  return Status::OK();
}

void RingCluster::ReportSuspect(core::NodeId reporter, core::NodeId suspect) {
  if (suspect >= options_.num_nodes || reporter == suspect) return;
  Node* pred = nullptr;
  Node* succ = nullptr;
  core::NodeId heir = suspect;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ++suspicions_;
    // Membership oracle: a suspicion only sticks if the node really is
    // down. A live-but-slow neighbour (GC pause, overload) is counted as a
    // false suspicion and the ring stays intact — this reproduction does
    // not attempt distributed consensus on membership.
    if (!nodes_[suspect]->crashed()) {
      ++false_suspicions_;
      return;
    }
    if (!spliced_in_[suspect]) return;  // another reporter already handled it
    spliced_in_[suspect] = false;
    ++resplices_;
    last_recovery_seconds_ = SecondsSince(crashed_at_);
    const core::NodeId p = PrevAliveLocked(suspect);
    const core::NodeId s = NextAliveLocked(suspect);
    if (p == suspect || s == suspect) return;  // nothing left to splice
    pred = nodes_[p].get();
    succ = nodes_[s].get();
    heir = s;
  }
  DCY_LOG(kInfo) << "node " << reporter << " detected node " << suspect
                 << " dead; splicing " << pred->id() << " -> " << succ->id();
  // Bypass the corpse: the predecessor's data now flows to the successor
  // and the successor's requests to the predecessor, each on a new epoch.
  pred->AdoptSuccessor(succ);
  succ->AdoptPredecessor(pred);
  HandleDeadFragments(suspect, heir);
}

void RingCluster::HandleDeadFragments(core::NodeId suspect, core::NodeId heir) {
  struct Rehome {
    core::BatId id;
    std::string name;
    uint64_t size;
    bat::BatPtr loader;
  };
  std::vector<Rehome> rehomes;
  std::vector<core::BatId> failed;
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    for (auto& [id, info] : fragments_) {
      if (info.owner != suspect) continue;
      if (options_.resilience.auto_rehome) {
        info.owner = heir;
        rehomes.push_back(Rehome{id, info.name, info.size, info.loader});
      } else {
        failed.push_back(id);
      }
    }
  }
  if (!rehomes.empty()) {
    Node* heir_node = nodes_[heir].get();
    for (auto& r : rehomes) {
      // The heir may have seen this name before (a restarted node's second
      // death); AlreadyExists just means the payload is still registered.
      Status reg = heir_node->store().Admit(r.id, r.name, r.loader, /*durable=*/true,
                                            /*initial_pins=*/0,
                                            std::chrono::milliseconds(5000),
                                            write_log_.BaseVersionOf(r.id));
      if (!reg.ok() && reg.code() != StatusCode::kAlreadyExists) {
        DCY_LOG(kError) << "re-home of fragment " << r.name << " failed: "
                        << reg.ToString();
        continue;
      }
      heir_node->Post([heir_node, id = r.id, size = r.size] {
        heir_node->dc().AddOwnedBat(id, size);
      });
    }
    std::lock_guard<std::mutex> lock(ring_mu_);
    rehomed_fragments_ += rehomes.size();
    DCY_LOG(kInfo) << rehomes.size() << " fragment(s) of dead node " << suspect
                   << " re-homed to node " << heir;
  }
  // Without re-homing the fragments are gone: every node fails its waiting
  // queries with a typed Unavailable instead of letting pins hang.
  for (const core::BatId id : failed) {
    for (auto& n : nodes_) {
      if (n->crashed()) continue;
      Node* node = n.get();
      node->Post([node, id] { node->dc().FailBat(id); });
    }
  }
}

Status RingCluster::RefetchFragment(core::BatId bat, Node* node) {
  std::string name;
  bat::BatPtr loader;
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    auto it = fragments_.find(bat);
    if (it == fragments_.end()) {
      return Status::NotFound("fragment " + std::to_string(bat) +
                              " is not in the cluster registry");
    }
    name = it->second.name;
    loader = it->second.loader;
  }
  Status admitted = node->store().Admit(bat, name, loader, /*durable=*/true,
                                        /*initial_pins=*/0,
                                        std::chrono::milliseconds(5000),
                                        write_log_.BaseVersionOf(bat));
  if (admitted.code() == StatusCode::kAlreadyExists) return Status::OK();
  if (admitted.ok()) node->store().NoteRefetched();
  return admitted;
}

Status RingCluster::FragmentFailureStatus(core::BatId bat) {
  std::lock_guard<std::mutex> lock(directory_mu_);
  auto it = fragments_.find(bat);
  if (it != fragments_.end() && !IsNodeAlive(it->second.owner)) {
    unavailable_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("fragment \"" + it->second.name + "\" (BAT " +
                               std::to_string(bat) + ") is on crashed node " +
                               std::to_string(it->second.owner));
  }
  return Status::NotFound("BAT " + std::to_string(bat) + " does not exist");
}

Status RingCluster::RestartNode(core::NodeId node) {
  if (node >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  if (!started_.load()) return Status::FailedPrecondition("cluster not started");
  Node* comer = nodes_[node].get();
  if (!comer->crashed()) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is not crashed");
  }
  Node* pred = nullptr;
  Node* succ = nullptr;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    spliced_in_[node] = true;
    ++nodes_restarted_;
    pred = nodes_[PrevAliveLocked(node)].get();
    succ = nodes_[NextAliveLocked(node)].get();
  }
  comer->Restart(succ, pred);
  alive_[node].store(true, std::memory_order_release);
  dead_count_.fetch_sub(1, std::memory_order_relaxed);
  // Crash-safe recovery of the two-tier store: re-admit every checksum-valid
  // spill file from the node's disk tier (payloads stay on disk until
  // pinned); damaged files were deleted by the scan and their fragments —
  // like everything never spilled — are re-materialized from the ring's
  // durable registry below.
  const auto recovered = comer->store().Recover();
  if (!recovered.recovered.empty() || recovered.corrupt_files > 0) {
    DCY_LOG(kInfo) << "node " << node << " recovery: " << recovered.recovered.size()
                   << " fragment(s) reloaded from disk, " << recovered.corrupt_files
                   << " damaged spill file(s) discarded";
  }
  // Re-introduce the node's surviving fragments (those not re-homed while
  // it was down) to its fresh protocol state.
  std::vector<std::pair<core::BatId, uint64_t>> owned;
  struct Refetch {
    core::BatId id;
    std::string name;
    bat::BatPtr loader;
  };
  std::vector<Refetch> refetches;
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    for (const auto& [id, info] : fragments_) {
      if (info.owner != node) continue;
      owned.emplace_back(id, info.size);
      if (!comer->store().Contains(id)) {
        refetches.push_back(Refetch{id, info.name, info.loader});
      }
    }
  }
  for (const auto& r : refetches) {
    Status refetched = comer->store().Admit(r.id, r.name, r.loader, /*durable=*/true,
                                            /*initial_pins=*/0,
                                            std::chrono::milliseconds(5000),
                                            write_log_.BaseVersionOf(r.id));
    if (refetched.ok()) {
      comer->store().NoteRefetched();
    } else if (refetched.code() != StatusCode::kAlreadyExists) {
      DCY_LOG(kError) << "node " << node << " cannot re-materialize fragment "
                      << r.name << ": " << refetched.ToString();
    }
  }
  comer->PostSync([&] {
    for (const auto& [id, size] : owned) comer->dc().AddOwnedBat(id, size);
  });
  // Close the ring around the newcomer (fresh epochs towards it).
  if (pred != comer) pred->AdoptSuccessor(comer);
  if (succ != comer) succ->AdoptPredecessor(comer);
  DCY_LOG(kInfo) << "node " << node << " restarted and re-spliced between "
                 << pred->id() << " and " << succ->id();
  return Status::OK();
}

RingCluster::ResilienceMetrics RingCluster::Resilience() const {
  ResilienceMetrics out;
  for (const auto& node : nodes_) {
    Node* n = node.get();
    n->PostSync([n, &out] { n->SnapshotResilience(&out); });
    out.shed_degraded += n->admission_metrics().shed_degraded;
  }
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    out.nodes_crashed = nodes_crashed_;
    out.nodes_restarted = nodes_restarted_;
    out.ring_resplices = resplices_;
    out.suspicions = suspicions_;
    out.false_suspicions = false_suspicions_;
    out.rehomed_fragments = rehomed_fragments_;
    out.last_recovery_seconds = last_recovery_seconds_;
  }
  out.unavailable_failures = unavailable_failures_.load(std::memory_order_relaxed);
  return out;
}

RingCluster::BandwidthMetrics RingCluster::Bandwidth() const {
  BandwidthMetrics out;
  for (const auto& node : nodes_) {
    Node* n = node.get();
    n->PostSync([n, &out] { n->SnapshotBandwidth(&out); });
  }
  return out;
}

storage::MemoryMetrics RingCluster::NodeMemory(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  return nodes_[node]->store().Metrics();
}

storage::MemoryMetrics RingCluster::Memory() const {
  storage::MemoryMetrics total;
  for (const auto& node : nodes_) total.Add(node->store().Metrics());
  return total;
}

// ---- session API ----------------------------------------------------------

Result<Session> RingCluster::OpenSession(core::NodeId node) {
  if (node >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  return Session(this, node);
}

Result<PreparedQueryPtr> RingCluster::Prepare(const std::string& mal_text, bool optimize,
                                              bool use_cache) {
  PrepareOptions options;
  options.language = Language::kMAL;
  options.optimize = optimize;
  options.use_cache = use_cache;
  return Prepare(mal_text, options);
}

Result<PreparedQueryPtr> RingCluster::Prepare(const std::string& text,
                                              const PrepareOptions& options) {
  Language language = options.language;
  if (language == Language::kAuto) {
    language = sql::LooksLikeSql(text) ? Language::kSQL : Language::kMAL;
  }
  // The dialect is part of the key: the same text prepared as SQL and as MAL
  // compiles to different programs, so the two must occupy distinct slots.
  const char* dialect = language == Language::kSQL ? "sql" : "mal";
  const std::string key = opt::PlanCacheKey(text, options.optimize, {}, dialect);
  bool use_cache = options.use_cache;
  if (use_cache) {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      // The 64-bit key is not trusted alone: a hit must carry the same
      // source text, or a hash collision would silently run the wrong plan.
      if (it->second->text() == text) {
        ++plan_cache_stats_.hits;
        return it->second;
      }
      use_cache = false;  // collision: compile fresh, leave the entry alone
    }
  }
  Result<mal::Program> compiled =
      language == Language::kSQL
          ? sql::Compile(text, SqlSchema(), options.parse_error)
          : mal::ParseProgram(text, options.parse_error);
  if (!compiled.ok()) return compiled.status();
  mal::Program program = std::move(compiled).value();
  if (options.optimize) {
    DCY_ASSIGN_OR_RETURN(program, opt::DcOptimize(program));
  }
  auto prepared =
      std::make_shared<const PreparedQuery>(text, key, std::move(program), options.optimize);
  if (use_cache) {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    ++plan_cache_stats_.misses;  // one parse + DcOptimize actually ran
    auto [it, inserted] = plan_cache_.emplace(key, prepared);
    if (inserted) {
      plan_cache_order_.push_back(key);
      // Bounded cache: ad-hoc texts (literals inlined instead of params)
      // must not grow the cache without limit; evict oldest-inserted first.
      while (plan_cache_.size() > std::max<size_t>(1, options_.plan_cache_capacity)) {
        plan_cache_.erase(plan_cache_order_.front());
        plan_cache_order_.pop_front();
      }
    }
    plan_cache_stats_.entries = plan_cache_.size();
    if (!inserted) return it->second;  // lost a prepare race; share the first
  }
  return prepared;
}

Result<QueryHandle> RingCluster::Submit(core::NodeId node_id,
                                        const PreparedQueryPtr& prepared,
                                        const SubmitOptions& options) {
  if (node_id >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  if (prepared == nullptr) return Status::InvalidArgument("null prepared query");
  if (!started_.load()) return Status::FailedPrecondition("cluster not started");

  auto state = std::make_shared<internal::QueryState>();
  state->id = next_query_.fetch_add(1);
  state->submitted_at = std::chrono::steady_clock::now();
  if (options.timeout.count() > 0) {
    state->cancel.set_deadline(state->submitted_at + options.timeout);
  }
  Node* node = nodes_[node_id].get();
  state->wake_pins = [node, id = state->id] { node->AbortQueryWaiters(id); };
  DCY_RETURN_NOT_OK(node->EnqueueQuery({state, prepared, options}));
  return QueryHandle(state);
}

Result<QueryResult> RingCluster::RunQuery(Node* node, const PreparedQuery& plan,
                                          internal::QueryState* state,
                                          const SubmitOptions& options) {
  QueryResult qr;
  qr.query_id = state->id;

  // Version-at-prepare (ISSUE-9): pin one commit version for the whole
  // execution, so every fragment view this query resolves belongs to the
  // same snapshot and folds cannot slide bases out from under it.
  uint64_t snapshot = 0;
  if (!options.snapshot_version.has_value()) {
    snapshot = write_log_.AcquireSnapshot();
  } else {
    DCY_ASSIGN_OR_RETURN(snapshot,
                         write_log_.AcquireSnapshotAt(*options.snapshot_version));
  }
  struct SnapshotRelease {
    write::WriteLog* log;
    uint64_t v;
    ~SnapshotRelease() { log->ReleaseSnapshot(v); }
  } snapshot_release{&write_log_, snapshot};
  qr.snapshot_version = snapshot;

  mal::ExportSink exported;
  SessionHooks hooks(this, node, state->id, &state->cancel, snapshot);
  QueryWriteHooks write_hooks(this, node, snapshot);
  mal::Context ctx;
  ctx.catalog = &node->store();
  ctx.dc = &hooks;
  ctx.writer = &write_hooks;
  ctx.out = nullptr;  // results are captured typed, not printed
  ctx.exported = &exported;

  mal::ExecOptions eopts;
  eopts.workers = options.plan_workers > 0 ? options.plan_workers : options_.plan_workers;
  eopts.cancel = &state->cancel;
  eopts.params = options.params.empty() ? nullptr : &options.params;

  const auto start = std::chrono::steady_clock::now();
  mal::Interpreter interp(&mal::Registry::Global(), ctx);
  auto result = interp.Execute(plan.program(), eopts);
  qr.timing.exec_seconds = SecondsSince(start);
  qr.timing.pin_blocked_seconds = hooks.blocked_seconds();
  qr.commit_version = write_hooks.commit_version();
  if (!result.ok()) return result.status();

  mal::ResultSetPtr table;
  {
    std::lock_guard<std::mutex> lock(exported.mu);
    table = exported.result;
  }
  qr.result = ResultSet::Build(table, std::move(result).value());
  return qr;
}

Result<QueryOutcome> RingCluster::ExecuteMal(core::NodeId node_id,
                                             const std::string& mal_text, bool optimize) {
  // Compatibility wrapper: one blocking trip through the session path. The
  // shared plan cache still amortizes the parse + optimize across calls.
  DCY_ASSIGN_OR_RETURN(PreparedQueryPtr prepared, Prepare(mal_text, optimize));
  DCY_ASSIGN_OR_RETURN(QueryHandle handle, Submit(node_id, prepared));
  auto result = handle.Wait();
  if (!result.ok()) return result.status();

  QueryOutcome outcome;
  outcome.query_id = result->query_id;
  outcome.wall_seconds = result->timing.exec_seconds;
  outcome.pin_blocked_seconds = result->timing.pin_blocked_seconds;
  outcome.printed = result->result.ToText();
  outcome.result = result->result.scalar();
  return outcome;
}

core::DcNodeMetrics RingCluster::NodeMetrics(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  core::DcNodeMetrics snapshot;
  nodes_[node]->PostSync([&] { snapshot = nodes_[node]->dc().metrics(); });
  return snapshot;
}

core::AdmissionMetrics RingCluster::NodeAdmissionMetrics(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  return nodes_[node]->admission_metrics();
}

size_t RingCluster::OutstandingRequestEntries(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  size_t count = 0;
  nodes_[node]->PostSync([&] { count = nodes_[node]->dc().requests().size(); });
  return count;
}

RingCluster::PlanCacheStats RingCluster::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_stats_;
}

uint64_t RingCluster::TotalDataBytesMoved() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->data_in()->stats().payload_bytes.load();
  }
  return total;
}

}  // namespace dcy::runtime
