#include "runtime/ring_cluster.h"

#include <chrono>
#include <cstring>

#include "bat/serialize.h"
#include "common/logging.h"

namespace dcy::runtime {

namespace {

constexpr uint32_t kOpBat = 1;
constexpr uint32_t kOpRequest = 2;

// Headers ride in the channel's fixed-capacity inline MetaBlob — no
// per-message std::string allocation on either side of a hop.
static_assert(sizeof(core::BatHeader) <= rdma::MetaBlob::kCapacity,
              "BatHeader must fit the inline meta frame");
static_assert(sizeof(core::RequestMsg) <= rdma::MetaBlob::kCapacity,
              "RequestMsg must fit the inline meta frame");

SimTime SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ===========================================================================
// Node
// ===========================================================================

class RingCluster::Node final : public core::DcEnv {
 public:
  Node(RingCluster* cluster, core::NodeId id)
      : cluster_(cluster),
        id_(id),
        catalog_(cluster->options_.spill_dir.empty()
                     ? ""
                     : cluster->options_.spill_dir + "/node" + std::to_string(id)) {
    const Options& opts = cluster->options_;
    if (opts.adaptive_loit) {
      loit_ = std::make_unique<core::AdaptiveLoit>(opts.adaptive);
    } else {
      loit_ = std::make_unique<core::StaticLoit>(opts.static_loit);
    }
    core::DcNodeOptions node_opts = opts.node;
    node_opts.node_id = id;
    node_opts.ring_size = opts.num_nodes;
    dc_ = std::make_unique<core::DcNode>(node_opts, this, loit_.get());

    rdma::Channel::Options data_opts;
    data_opts.mode = opts.mode;
    data_opts.capacity_bytes = opts.bat_queue_capacity * 4;  // hard backpressure
    data_in_ = std::make_unique<rdma::Channel>(data_opts);
    rdma::Channel::Options req_opts;
    req_opts.mode = rdma::TransferMode::kZeroCopy;
    request_in_ = std::make_unique<rdma::Channel>(req_opts);
  }

  // ---- wiring ---------------------------------------------------------------

  rdma::Channel* data_in() { return data_in_.get(); }
  rdma::Channel* request_in() { return request_in_.get(); }
  void SetNeighbours(Node* successor, Node* predecessor) {
    successor_ = successor;
    predecessor_ = predecessor;
  }

  bat::BatCatalog& catalog() { return catalog_; }
  core::DcNode& dc() { return *dc_; }

  // ---- lifecycle -------------------------------------------------------------

  void Start() {
    stop_.store(false);
    service_ = std::thread([this] { ServiceLoop(); });
  }

  void Stop() {
    stop_.store(true);
    data_in_->Close();
    request_in_->Close();
    mailbox_cv_.notify_all();
    if (service_.joinable()) service_.join();
  }

  /// Runs `task` on the service thread (the only thread touching dc_).
  void Post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      mailbox_.push_back(std::move(task));
    }
    mailbox_cv_.notify_one();
  }

  /// Posts `task` and waits for it to finish.
  void PostSync(std::function<void()> task) {
    std::promise<void> done;
    Post([&task, &done] {
      task();
      done.set_value();
    });
    done.get_future().wait();
  }

  // ---- query-session support ---------------------------------------------------

  /// Registers a waiter resolved by DeliverToQuery/FailQuery.
  std::future<Result<bat::BatPtr>> AddWaiter(core::QueryId q, core::BatId b) {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    auto& p = waiters_[{q, b}];
    return p.get_future();
  }

  /// Drops a waiter that was satisfied through the immediate path.
  void RemoveWaiter(core::QueryId q, core::BatId b) {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    waiters_.erase({q, b});
  }

  // ---- DcEnv (service thread only) ----------------------------------------------

  SimTime Now() override { return SteadyNowNs(); }

  void SendRequestMsg(const core::RequestMsg& msg) override {
    // Requests travel anti-clockwise.
    predecessor_->request_in()->Send(kOpRequest, rdma::MetaBlob::Of(msg), nullptr);
  }

  void SendBatMsg(const core::BatHeader& header, bool is_load) override {
    rdma::Buffer payload;
    if (is_load) {
      auto b = catalog_.GetById(header.bat_id);
      if (!b.ok()) {
        DCY_LOG(kError) << "node " << id_ << " cannot load BAT " << header.bat_id << ": "
                        << b.status().ToString();
        return;
      }
      // Serialize into a pooled frame: the frame circulates the ring
      // zero-copy and returns to this pool when the last hop releases it.
      auto frame = frame_pool_.Acquire(bat::EncodedSize(**b));
      bat::SerializeInto(**b, frame.get());
      payload = std::move(frame);
    } else {
      payload = current_payload_;
      DCY_CHECK(payload != nullptr) << "forwarding a BAT without payload";
    }
    // meta = administrative header, payload = encoded BAT (zero-copy).
    successor_->data_in()->Send(kOpBat, rdma::MetaBlob::Of(header), payload);
  }

  void DeliverToQuery(core::QueryId query, core::BatId bat) override {
    Result<bat::BatPtr> value = [&]() -> Result<bat::BatPtr> {
      auto it = decoded_.find(bat);
      if (it != decoded_.end()) return it->second;
      return Status::NotFound("decoded BAT " + std::to_string(bat) + " missing");
    }();
    ResolveWaiter(query, bat, std::move(value));
  }

  void FailQuery(core::QueryId query, core::BatId bat) override {
    ResolveWaiter(query, bat,
                  Status::NotFound("BAT " + std::to_string(bat) + " does not exist"));
  }

  uint64_t BatQueueLoadBytes() override { return successor_->data_in()->queued_bytes(); }

  uint64_t BatQueueCapacityBytes() override { return cluster_->options_.bat_queue_capacity; }

  /// Decoded-BAT cache upkeep: drop entries the protocol cache released.
  void TrimDecoded() {
    for (auto it = decoded_.begin(); it != decoded_.end();) {
      if (!dc_->cache().Contains(it->first)) {
        it = decoded_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  void ResolveWaiter(core::QueryId query, core::BatId bat, Result<bat::BatPtr> value) {
    std::promise<Result<bat::BatPtr>> promise;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      auto it = waiters_.find({query, bat});
      if (it == waiters_.end()) return;  // nobody waiting (local pin path)
      promise = std::move(it->second);
      waiters_.erase(it);
    }
    promise.set_value(std::move(value));
  }

  void HandleData(const rdma::Message& m) {
    const auto header = m.meta.As<core::BatHeader>();
    current_payload_ = m.payload;
    // Decode up front if local queries are blocked on it (delivery needs the
    // typed BAT) — cheap check, decode once.
    if (dc_->pins().HasBlocked(header.bat_id) && decoded_.count(header.bat_id) == 0) {
      auto decoded = bat::Deserialize(*m.payload);
      if (decoded.ok()) decoded_[header.bat_id] = *decoded;
    }
    dc_->OnBatMsg(header);
    current_payload_ = nullptr;
    TrimDecoded();
  }

  void ServiceLoop() {
    const auto& node_opts = dc_->options();
    SimTime next_load_all = SteadyNowNs() + node_opts.load_all_period;
    SimTime next_maintenance = SteadyNowNs() + node_opts.maintenance_period;
    SimTime next_adapt = SteadyNowNs() + node_opts.adapt_period;

    while (!stop_.load(std::memory_order_relaxed)) {
      bool did_work = false;

      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mailbox_mu_);
        if (!mailbox_.empty()) {
          task = std::move(mailbox_.front());
          mailbox_.pop_front();
        }
      }
      if (task) {
        task();
        did_work = true;
      }

      // Drain whole backlogs in one lock acquisition per channel: at high
      // message rates a rotation delivers bursts, and per-message locking
      // was the dominant hop cost.
      drain_.clear();
      if (request_in_->TryReceiveAll(&drain_) > 0) {
        for (const rdma::Message& m : drain_) {
          dc_->OnRequestMsg(m.meta.As<core::RequestMsg>());
        }
        did_work = true;
      }
      drain_.clear();
      if (data_in_->TryReceiveAll(&drain_) > 0) {
        for (rdma::Message& m : drain_) HandleData(m);
        drain_.clear();  // release payload references promptly
        did_work = true;
      }

      const SimTime now = SteadyNowNs();
      if (now >= next_load_all) {
        dc_->OnLoadAllTimer();
        next_load_all = now + node_opts.load_all_period;
        did_work = true;
      }
      if (now >= next_maintenance) {
        dc_->OnMaintenanceTimer();
        next_maintenance = now + node_opts.maintenance_period;
        did_work = true;
      }
      if (now >= next_adapt) {
        dc_->OnAdaptTimer();
        next_adapt = now + node_opts.adapt_period;
        did_work = true;
      }

      if (!did_work) {
        std::unique_lock<std::mutex> lock(mailbox_mu_);
        mailbox_cv_.wait_for(lock, std::chrono::microseconds(200));
      }
    }
  }

  RingCluster* cluster_;
  core::NodeId id_;
  bat::BatCatalog catalog_;
  std::unique_ptr<core::LoitPolicy> loit_;
  std::unique_ptr<core::DcNode> dc_;
  Node* successor_ = nullptr;
  Node* predecessor_ = nullptr;

  std::unique_ptr<rdma::Channel> data_in_;     // from predecessor
  std::unique_ptr<rdma::Channel> request_in_;  // from successor

  std::thread service_;
  std::atomic<bool> stop_{false};
  std::mutex mailbox_mu_;
  std::condition_variable mailbox_cv_;
  std::deque<std::function<void()>> mailbox_;

  rdma::Buffer current_payload_;
  rdma::BufferPool frame_pool_;  ///< serialization frames for owned loads
  std::vector<rdma::Message> drain_;  ///< service-loop batch receive scratch
  std::unordered_map<core::BatId, bat::BatPtr> decoded_;

  std::mutex waiters_mu_;
  std::map<std::pair<core::QueryId, core::BatId>, std::promise<Result<bat::BatPtr>>>
      waiters_;
};

// ===========================================================================
// Session hooks: the datacyclotron.* builtins of one query execution.
// ===========================================================================

namespace {

class SessionHooks final : public mal::DcHooks {
 public:
  SessionHooks(RingCluster* cluster, RingCluster::Node* node, bat::BatCatalog* catalog,
               const std::unordered_map<std::string, core::BatId>* directory,
               core::QueryId query)
      : cluster_(cluster), node_(node), catalog_(catalog), directory_(directory),
        query_(query) {}

  ~SessionHooks() override {
    // Release anything the plan failed to unpin (aborted executions).
    for (const auto& [bat, _] : pinned_) {
      node_->Post([node = node_, q = query_, bat = bat] { node->dc().Unpin(q, bat); });
    }
  }

  Result<mal::RequestHandle> Request(const std::string& schema, const std::string& table,
                                     const std::string& column, int64_t) override {
    const std::string name = schema + "." + table + "." + column;
    auto it = directory_->find(name);
    if (it == directory_->end()) return Status::NotFound("no fragment named " + name);
    const core::BatId bat = it->second;
    node_->Post([node = node_, q = query_, bat] { node->dc().Request(q, bat); });
    return mal::RequestHandle{bat};
  }

  Result<bat::BatPtr> Pin(const mal::RequestHandle& handle) override {
    const core::BatId bat = handle.bat;
    // Register the waiter *before* pinning so a delivery racing the pin
    // cannot be missed.
    auto future = node_->AddWaiter(query_, bat);
    std::promise<Result<bat::BatPtr>> immediate;
    auto immediate_future = immediate.get_future();
    node_->PostSync([&, this] {
      if (node_->dc().Pin(query_, bat)) {
        // Available now: owned locally or cached.
        auto local = catalog_->GetById(bat);
        if (local.ok()) {
          immediate.set_value(*local);
          return;
        }
        // Not owned: it must be in the decoded cache via DeliverToQuery's
        // bookkeeping — fall through to the waiter resolution by asking the
        // protocol to deliver from cache.
        node_->DeliverToQuery(query_, bat);
        immediate.set_value(Status::FailedPrecondition("resolved via waiter"));
      } else {
        immediate.set_value(Status::FailedPrecondition("blocked"));
      }
    });
    Result<bat::BatPtr> quick = immediate_future.get();
    bat::BatPtr value;
    if (quick.ok()) {
      node_->RemoveWaiter(query_, bat);
      value = *quick;
    } else {
      auto delivered = future.get();  // blocks until the fragment passes
      if (!delivered.ok()) return delivered.status();
      value = *delivered;
    }
    {
      // Dataflow workers pin concurrently; the bookkeeping maps need a lock.
      std::lock_guard<std::mutex> lock(mu_);
      pinned_[bat] = value;
      by_pointer_[value.get()] = bat;
    }
    return value;
  }

  Status Unpin(const mal::Datum& pinned) override {
    core::BatId bat = core::kInvalidBat;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto* h = std::get_if<mal::RequestHandle>(&pinned)) {
        bat = h->bat;
      } else if (const auto* b = std::get_if<bat::BatPtr>(&pinned)) {
        auto it = by_pointer_.find(b->get());
        if (it == by_pointer_.end()) {
          return Status::InvalidArgument("unpin of a BAT this query never pinned");
        }
        bat = it->second;
        by_pointer_.erase(it);
      } else {
        return Status::InvalidArgument("unpin expects a BAT or request handle");
      }
      pinned_.erase(bat);
    }
    node_->Post([node = node_, q = query_, bat] { node->dc().Unpin(q, bat); });
    return Status::OK();
  }

 private:
  RingCluster* cluster_;
  RingCluster::Node* node_;
  bat::BatCatalog* catalog_;
  const std::unordered_map<std::string, core::BatId>* directory_;
  core::QueryId query_;
  std::mutex mu_;  ///< guards pinned_/by_pointer_ across dataflow workers
  std::unordered_map<core::BatId, bat::BatPtr> pinned_;
  std::unordered_map<const bat::Bat*, core::BatId> by_pointer_;
};

}  // namespace

// ===========================================================================
// RingCluster
// ===========================================================================

RingCluster::RingCluster(Options options) : options_(options) {
  DCY_CHECK(options_.num_nodes >= 2);
  nodes_.reserve(options_.num_nodes);
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(this, i));
  }
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    Node* succ = nodes_[(i + 1) % options_.num_nodes].get();
    Node* pred = nodes_[(i + options_.num_nodes - 1) % options_.num_nodes].get();
    nodes_[i]->SetNeighbours(succ, pred);
  }
}

RingCluster::~RingCluster() { Stop(); }

Status RingCluster::LoadBat(core::NodeId owner, const std::string& name, bat::BatPtr bat) {
  if (owner >= options_.num_nodes) return Status::InvalidArgument("bad owner node");
  std::lock_guard<std::mutex> lock(directory_mu_);
  if (directory_.count(name) > 0) return Status::AlreadyExists(name);
  const core::BatId id = next_bat_.fetch_add(1);
  const uint64_t size = bat->ByteSize();
  DCY_RETURN_NOT_OK(nodes_[owner]->catalog().Register(name, id, std::move(bat)));
  if (started_.load()) {
    nodes_[owner]->PostSync([&] { nodes_[owner]->dc().AddOwnedBat(id, size); });
  } else {
    nodes_[owner]->dc().AddOwnedBat(id, size);
  }
  directory_[name] = id;
  sizes_[id] = size;
  return Status::OK();
}

void RingCluster::Start() {
  if (started_.exchange(true)) return;
  // The kernel policy is process-wide (the executor is shared); the last
  // started cluster wins, which matches how benches and servers run one
  // cluster per process.
  exec::SetExecPolicy(options_.exec_policy);
  for (auto& node : nodes_) node->Start();
}

void RingCluster::Stop() {
  if (!started_.exchange(false)) return;
  for (auto& node : nodes_) node->Stop();
}

Result<QueryOutcome> RingCluster::ExecuteMal(core::NodeId node_id,
                                             const std::string& mal_text, bool optimize) {
  if (node_id >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  if (!started_.load()) return Status::FailedPrecondition("cluster not started");

  DCY_ASSIGN_OR_RETURN(mal::Program program, mal::ParseProgram(mal_text));
  if (optimize) {
    DCY_ASSIGN_OR_RETURN(program, opt::DcOptimize(program));
  }

  QueryOutcome outcome;
  outcome.query_id = next_query_.fetch_add(1);
  Node* node = nodes_[node_id].get();

  std::ostringstream printed;
  SessionHooks hooks(this, node, &node->catalog(), &directory_, outcome.query_id);
  mal::Context ctx;
  ctx.catalog = &node->catalog();
  ctx.dc = &hooks;
  ctx.out = &printed;

  const auto start = std::chrono::steady_clock::now();
  mal::Interpreter interp(&mal::Registry::Global(), ctx);
  auto result = interp.RunDataflow(program, options_.plan_workers);
  if (!result.ok()) return result.status();
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome.printed = printed.str();
  outcome.result = std::move(result).value();
  return outcome;
}

core::DcNodeMetrics RingCluster::NodeMetrics(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  core::DcNodeMetrics snapshot;
  nodes_[node]->PostSync([&] { snapshot = nodes_[node]->dc().metrics(); });
  return snapshot;
}

uint64_t RingCluster::TotalDataBytesMoved() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->data_in()->stats().payload_bytes.load();
  }
  return total;
}

}  // namespace dcy::runtime
