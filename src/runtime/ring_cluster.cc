#include "runtime/ring_cluster.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>

#include "bat/serialize.h"
#include "common/logging.h"
#include "sql/compiler.h"

namespace dcy::runtime {

namespace {

constexpr uint32_t kOpBat = 1;
constexpr uint32_t kOpRequest = 2;

// Headers ride in the channel's fixed-capacity inline MetaBlob — no
// per-message std::string allocation on either side of a hop.
static_assert(sizeof(core::BatHeader) <= rdma::MetaBlob::kCapacity,
              "BatHeader must fit the inline meta frame");
static_assert(sizeof(core::RequestMsg) <= rdma::MetaBlob::kCapacity,
              "RequestMsg must fit the inline meta frame");

SimTime SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The "schema.table.column" contract of LoadBat: exactly three non-empty
/// dot-separated parts.
Status ValidateQualifiedName(const std::string& name) {
  const size_t d1 = name.find('.');
  const size_t d2 = d1 == std::string::npos ? std::string::npos : name.find('.', d1 + 1);
  const bool three_parts = d1 != std::string::npos && d2 != std::string::npos &&
                           name.find('.', d2 + 1) == std::string::npos;
  const bool nonempty = three_parts && d1 > 0 && d2 > d1 + 1 && d2 + 1 < name.size();
  if (!nonempty) {
    return Status::InvalidArgument("BAT name must be \"schema.table.column\", got \"" +
                                   name + "\"");
  }
  return Status::OK();
}

}  // namespace

// ===========================================================================
// Node
// ===========================================================================

class RingCluster::Node final : public core::DcEnv {
 public:
  /// One submission waiting in (or admitted from) the FIFO admission queue.
  struct QueuedQuery {
    std::shared_ptr<internal::QueryState> state;
    PreparedQueryPtr plan;
    SubmitOptions options;
  };

  Node(RingCluster* cluster, core::NodeId id)
      : cluster_(cluster),
        id_(id),
        catalog_(cluster->options_.spill_dir.empty()
                     ? ""
                     : cluster->options_.spill_dir + "/node" + std::to_string(id)) {
    const Options& opts = cluster->options_;
    if (opts.adaptive_loit) {
      loit_ = std::make_unique<core::AdaptiveLoit>(opts.adaptive);
    } else {
      loit_ = std::make_unique<core::StaticLoit>(opts.static_loit);
    }
    core::DcNodeOptions node_opts = opts.node;
    node_opts.node_id = id;
    node_opts.ring_size = opts.num_nodes;
    dc_ = std::make_unique<core::DcNode>(node_opts, this, loit_.get());

    rdma::Channel::Options data_opts;
    data_opts.mode = opts.mode;
    data_opts.capacity_bytes = opts.bat_queue_capacity * 4;  // hard backpressure
    data_in_ = std::make_unique<rdma::Channel>(data_opts);
    rdma::Channel::Options req_opts;
    req_opts.mode = rdma::TransferMode::kZeroCopy;
    request_in_ = std::make_unique<rdma::Channel>(req_opts);
  }

  // ---- wiring ---------------------------------------------------------------

  rdma::Channel* data_in() { return data_in_.get(); }
  rdma::Channel* request_in() { return request_in_.get(); }
  void SetNeighbours(Node* successor, Node* predecessor) {
    successor_ = successor;
    predecessor_ = predecessor;
  }

  bat::BatCatalog& catalog() { return catalog_; }
  core::DcNode& dc() { return *dc_; }

  // ---- lifecycle -------------------------------------------------------------

  void Start() {
    stop_.store(false);
    service_ = std::thread([this] { ServiceLoop(); });
    // The query-runner pool: exactly C threads, created once per Start, so
    // at most C queries of this node execute concurrently however large the
    // submission burst (the rest wait in the FIFO). `accepting_` gates
    // EnqueueQuery so concurrent submits never touch the runners_ vector
    // while it is being populated; early submissions simply queue until the
    // runners come up.
    const uint32_t c = std::max<uint32_t>(1, cluster_->options_.admission.max_concurrent);
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      runners_stop_ = false;
      accepting_ = true;
    }
    runners_.reserve(c);
    for (uint32_t i = 0; i < c; ++i) {
      runners_.emplace_back([this] { QueryRunnerLoop(); });
    }
  }

  /// Cancels running queries, fails queued ones, joins the runner pool.
  /// Must run while the service thread is still alive (running queries
  /// unwind through Unpin posts to it).
  void StopRunners() {
    std::deque<QueuedQuery> abandoned;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      runners_stop_ = true;
      accepting_ = false;
      abandoned.swap(admission_queue_);
      admission_.queued = 0;
      // Abandoned entries are terminal: keep the counters balanced
      // (submitted == completed + rejected over the node's lifetime).
      admission_.completed += abandoned.size();
      admission_.cancelled_queued += abandoned.size();
      for (const auto& state : running_states_) state->cancel.Cancel();
    }
    admission_cv_.notify_all();
    // Wake every pin blocked on the ring; the woken sessions observe the
    // cancel flag set above.
    AbortAllWaiters(Status::Aborted("cluster stopping"));
    for (auto& t : runners_) {
      if (t.joinable()) t.join();
    }
    runners_.clear();
    for (auto& item : abandoned) {
      item.state->Finish(Status::Aborted("cluster stopped before execution"));
    }
  }

  void Stop() {
    stop_.store(true);
    data_in_->Close();
    request_in_->Close();
    mailbox_cv_.notify_all();
    if (service_.joinable()) service_.join();
  }

  /// Runs `task` on the service thread (the only thread touching dc_).
  void Post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      mailbox_.push_back(std::move(task));
    }
    mailbox_cv_.notify_one();
  }

  /// Posts `task` and waits for it to finish.
  void PostSync(std::function<void()> task) {
    std::promise<void> done;
    Post([&task, &done] {
      task();
      done.set_value();
    });
    done.get_future().wait();
  }

  // ---- query admission ------------------------------------------------------

  Status EnqueueQuery(QueuedQuery item) {
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      if (!accepting_ || runners_stop_) {
        return Status::FailedPrecondition("node " + std::to_string(id_) +
                                          " is not accepting queries");
      }
      if (admission_queue_.size() >= cluster_->options_.admission.max_queued) {
        ++admission_.rejected;
        return Status::ResourceExhausted("admission queue full on node " +
                                         std::to_string(id_));
      }
      admission_queue_.push_back(std::move(item));
      ++admission_.submitted;
      admission_.queued = static_cast<uint32_t>(admission_queue_.size());
      admission_.peak_queued = std::max(admission_.peak_queued, admission_.queued);
    }
    admission_cv_.notify_one();
    return Status::OK();
  }

  core::AdmissionMetrics admission_metrics() const {
    std::lock_guard<std::mutex> lock(admission_mu_);
    return admission_;
  }

  /// Fails queued queries whose token tripped (cancel or deadline) without
  /// waiting for a runner slot: with every slot occupied by long queries, a
  /// queued submission would otherwise outlive its own deadline unnoticed.
  /// Runs on the service thread's maintenance tick.
  void SweepAdmissionQueue() {
    std::vector<std::pair<QueuedQuery, Status>> expired;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      for (auto it = admission_queue_.begin(); it != admission_queue_.end();) {
        Status live = it->state->cancel.CheckLive();
        if (live.ok()) {
          ++it;
          continue;
        }
        if (live.code() == StatusCode::kAborted) ++admission_.cancelled_queued;
        if (live.code() == StatusCode::kTimedOut) ++admission_.timed_out_queued;
        ++admission_.completed;
        expired.emplace_back(std::move(*it), std::move(live));
        it = admission_queue_.erase(it);
      }
      admission_.queued = static_cast<uint32_t>(admission_queue_.size());
    }
    for (auto& [item, status] : expired) item.state->Finish(status);
  }

  // ---- query-session support ---------------------------------------------------

  /// Registers a waiter resolved by DeliverToQuery/FailQuery.
  std::future<Result<bat::BatPtr>> AddWaiter(core::QueryId q, core::BatId b) {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    auto& p = waiters_[{q, b}];
    return p.get_future();
  }

  /// Drops a waiter that was satisfied through the immediate path.
  void RemoveWaiter(core::QueryId q, core::BatId b) {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    waiters_.erase({q, b});
  }

  /// Thread-safe failure injection into one waiter (cancel / deadline); a
  /// no-op if the delivery already resolved it — whichever side erases the
  /// entry first wins.
  void ResolveWaiterWith(core::QueryId q, core::BatId b, Status error) {
    ResolveWaiter(q, b, std::move(error));
  }

  /// Fails every outstanding waiter of `query` (cooperative Cancel()).
  void AbortQueryWaiters(core::QueryId query) {
    std::vector<std::promise<Result<bat::BatPtr>>> taken;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      auto it = waiters_.lower_bound({query, 0});
      while (it != waiters_.end() && it->first.first == query) {
        taken.push_back(std::move(it->second));
        it = waiters_.erase(it);
      }
    }
    for (auto& p : taken) p.set_value(Status::Aborted("query cancelled"));
  }

  /// Fails every outstanding waiter (cluster shutdown).
  void AbortAllWaiters(const Status& error) {
    std::map<std::pair<core::QueryId, core::BatId>, std::promise<Result<bat::BatPtr>>>
        taken;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      taken.swap(waiters_);
    }
    for (auto& [_, p] : taken) p.set_value(error);
  }

  // ---- DcEnv (service thread only) ----------------------------------------------

  SimTime Now() override { return SteadyNowNs(); }

  void SendRequestMsg(const core::RequestMsg& msg) override {
    // Requests travel anti-clockwise.
    predecessor_->request_in()->Send(kOpRequest, rdma::MetaBlob::Of(msg), nullptr);
  }

  void SendBatMsg(const core::BatHeader& header, bool is_load) override {
    rdma::Buffer payload;
    if (is_load) {
      auto b = catalog_.GetById(header.bat_id);
      if (!b.ok()) {
        DCY_LOG(kError) << "node " << id_ << " cannot load BAT " << header.bat_id << ": "
                        << b.status().ToString();
        return;
      }
      // Serialize into a pooled frame: the frame circulates the ring
      // zero-copy and returns to this pool when the last hop releases it.
      auto frame = frame_pool_.Acquire(bat::EncodedSize(**b));
      bat::SerializeInto(**b, frame.get());
      payload = std::move(frame);
    } else {
      payload = current_payload_;
      DCY_CHECK(payload != nullptr) << "forwarding a BAT without payload";
    }
    // meta = administrative header, payload = encoded BAT (zero-copy).
    successor_->data_in()->Send(kOpBat, rdma::MetaBlob::Of(header), payload);
  }

  void DeliverToQuery(core::QueryId query, core::BatId bat) override {
    Result<bat::BatPtr> value = [&]() -> Result<bat::BatPtr> {
      auto it = decoded_.find(bat);
      if (it != decoded_.end()) return it->second;
      return Status::NotFound("decoded BAT " + std::to_string(bat) + " missing");
    }();
    ResolveWaiter(query, bat, std::move(value));
  }

  void FailQuery(core::QueryId query, core::BatId bat) override {
    ResolveWaiter(query, bat,
                  Status::NotFound("BAT " + std::to_string(bat) + " does not exist"));
  }

  uint64_t BatQueueLoadBytes() override { return successor_->data_in()->queued_bytes(); }

  uint64_t BatQueueCapacityBytes() override { return cluster_->options_.bat_queue_capacity; }

  /// Decoded-BAT cache upkeep: drop entries the protocol cache released.
  void TrimDecoded() {
    for (auto it = decoded_.begin(); it != decoded_.end();) {
      if (!dc_->cache().Contains(it->first)) {
        it = decoded_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  void ResolveWaiter(core::QueryId query, core::BatId bat, Result<bat::BatPtr> value) {
    std::promise<Result<bat::BatPtr>> promise;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      auto it = waiters_.find({query, bat});
      if (it == waiters_.end()) return;  // nobody waiting (local pin path)
      promise = std::move(it->second);
      waiters_.erase(it);
    }
    promise.set_value(std::move(value));
  }

  void HandleData(const rdma::Message& m) {
    const auto header = m.meta.As<core::BatHeader>();
    current_payload_ = m.payload;
    // Decode up front if local queries are blocked on it (delivery needs the
    // typed BAT) — cheap check, decode once.
    if (dc_->pins().HasBlocked(header.bat_id) && decoded_.count(header.bat_id) == 0) {
      auto decoded = bat::Deserialize(*m.payload);
      if (decoded.ok()) decoded_[header.bat_id] = *decoded;
    }
    dc_->OnBatMsg(header);
    current_payload_ = nullptr;
    TrimDecoded();
  }

  void ServiceLoop() {
    const auto& node_opts = dc_->options();
    SimTime next_load_all = SteadyNowNs() + node_opts.load_all_period;
    SimTime next_maintenance = SteadyNowNs() + node_opts.maintenance_period;
    SimTime next_adapt = SteadyNowNs() + node_opts.adapt_period;

    while (!stop_.load(std::memory_order_relaxed)) {
      bool did_work = false;

      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mailbox_mu_);
        if (!mailbox_.empty()) {
          task = std::move(mailbox_.front());
          mailbox_.pop_front();
        }
      }
      if (task) {
        task();
        did_work = true;
      }

      // Drain whole backlogs in one lock acquisition per channel: at high
      // message rates a rotation delivers bursts, and per-message locking
      // was the dominant hop cost.
      drain_.clear();
      if (request_in_->TryReceiveAll(&drain_) > 0) {
        for (const rdma::Message& m : drain_) {
          dc_->OnRequestMsg(m.meta.As<core::RequestMsg>());
        }
        did_work = true;
      }
      drain_.clear();
      if (data_in_->TryReceiveAll(&drain_) > 0) {
        for (rdma::Message& m : drain_) HandleData(m);
        drain_.clear();  // release payload references promptly
        did_work = true;
      }

      const SimTime now = SteadyNowNs();
      if (now >= next_load_all) {
        dc_->OnLoadAllTimer();
        next_load_all = now + node_opts.load_all_period;
        did_work = true;
      }
      if (now >= next_maintenance) {
        dc_->OnMaintenanceTimer();
        SweepAdmissionQueue();
        next_maintenance = now + node_opts.maintenance_period;
        did_work = true;
      }
      if (now >= next_adapt) {
        dc_->OnAdaptTimer();
        next_adapt = now + node_opts.adapt_period;
        did_work = true;
      }

      if (!did_work) {
        std::unique_lock<std::mutex> lock(mailbox_mu_);
        mailbox_cv_.wait_for(lock, std::chrono::microseconds(200));
      }
    }
  }

  /// One admission slot: dequeues FIFO, executes (or fails a query whose
  /// token tripped while it waited), publishes the terminal outcome.
  void QueryRunnerLoop() {
    for (;;) {
      QueuedQuery item;
      uint64_t seq = 0;
      {
        std::unique_lock<std::mutex> lock(admission_mu_);
        admission_cv_.wait(lock,
                           [this] { return runners_stop_ || !admission_queue_.empty(); });
        if (admission_queue_.empty()) {
          if (runners_stop_) return;
          continue;  // spurious wake
        }
        item = std::move(admission_queue_.front());
        admission_queue_.pop_front();
        admission_.queued = static_cast<uint32_t>(admission_queue_.size());
        ++admission_.running;
        admission_.peak_running = std::max(admission_.peak_running, admission_.running);
        ++admission_.admitted;
        seq = next_admitted_seq_++;
        running_states_.insert(item.state);
      }

      const auto admitted_at = std::chrono::steady_clock::now();
      const Status live = item.state->cancel.CheckLive();
      Result<QueryResult> outcome = live.ok()
          ? cluster_->RunQuery(this, *item.plan, item.state.get(), item.options)
          : Result<QueryResult>(live);
      if (outcome.ok()) {
        QueryResult& qr = outcome.value();
        qr.admitted_seq = seq;
        qr.timing.queued_seconds =
            std::chrono::duration<double>(admitted_at - item.state->submitted_at).count();
        qr.timing.wall_seconds = SecondsSince(item.state->submitted_at);
      }

      {
        std::lock_guard<std::mutex> lock(admission_mu_);
        running_states_.erase(item.state);
        --admission_.running;
        ++admission_.completed;
        if (!live.ok()) {
          if (live.code() == StatusCode::kAborted) ++admission_.cancelled_queued;
          if (live.code() == StatusCode::kTimedOut) ++admission_.timed_out_queued;
        }
      }
      item.state->Finish(std::move(outcome));
    }
  }

  RingCluster* cluster_;
  core::NodeId id_;
  bat::BatCatalog catalog_;
  std::unique_ptr<core::LoitPolicy> loit_;
  std::unique_ptr<core::DcNode> dc_;
  Node* successor_ = nullptr;
  Node* predecessor_ = nullptr;

  std::unique_ptr<rdma::Channel> data_in_;     // from predecessor
  std::unique_ptr<rdma::Channel> request_in_;  // from successor

  std::thread service_;
  std::atomic<bool> stop_{false};
  std::mutex mailbox_mu_;
  std::condition_variable mailbox_cv_;
  std::deque<std::function<void()>> mailbox_;

  // Admission queue + runner pool (guarded by admission_mu_).
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::deque<QueuedQuery> admission_queue_;
  std::set<std::shared_ptr<internal::QueryState>> running_states_;
  core::AdmissionMetrics admission_;
  uint64_t next_admitted_seq_ = 0;
  bool accepting_ = false;  ///< Start() flips it on, StopRunners() off
  bool runners_stop_ = false;
  std::vector<std::thread> runners_;

  rdma::Buffer current_payload_;
  rdma::BufferPool frame_pool_;  ///< serialization frames for owned loads
  std::vector<rdma::Message> drain_;  ///< service-loop batch receive scratch
  std::unordered_map<core::BatId, bat::BatPtr> decoded_;

  std::mutex waiters_mu_;
  std::map<std::pair<core::QueryId, core::BatId>, std::promise<Result<bat::BatPtr>>>
      waiters_;
};

// ===========================================================================
// Session hooks: the datacyclotron.* builtins of one query execution.
// ===========================================================================

namespace {

class SessionHooks final : public mal::DcHooks {
 public:
  SessionHooks(RingCluster* cluster, RingCluster::Node* node, bat::BatCatalog* catalog,
               core::QueryId query, const mal::CancelToken* cancel)
      : cluster_(cluster), node_(node), catalog_(catalog), query_(query),
        cancel_(cancel) {}

  ~SessionHooks() override {
    // Release everything the plan failed to unpin (aborted / cancelled /
    // timed-out executions): delivered pins drop their cache reference and
    // bare requests retire their S2 entry, so a dead query leaks neither
    // memory nor fragment requests that would keep BATs hot.
    for (const core::BatId bat : requested_) {
      node_->Post([node = node_, q = query_, bat] { node->dc().Unpin(q, bat); });
    }
  }

  /// Summed wall time the plan's pins spent blocked on the ring.
  double blocked_seconds() const {
    return static_cast<double>(blocked_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  Result<mal::RequestHandle> Request(const std::string& schema, const std::string& table,
                                     const std::string& column, int64_t) override {
    const std::string name = schema + "." + table + "." + column;
    DCY_ASSIGN_OR_RETURN(core::BatId bat, cluster_->FindFragment(name));
    {
      std::lock_guard<std::mutex> lock(mu_);
      requested_.insert(bat);
    }
    node_->Post([node = node_, q = query_, bat] { node->dc().Request(q, bat); });
    return mal::RequestHandle{bat};
  }

  Result<bat::BatPtr> Pin(const mal::RequestHandle& handle) override {
    const core::BatId bat = handle.bat;
    if (cancel_ != nullptr) DCY_RETURN_NOT_OK(cancel_->CheckLive());
    {
      // Defensive pin-without-request still owes an unpin at teardown.
      std::lock_guard<std::mutex> lock(mu_);
      requested_.insert(bat);
    }
    // Register the waiter *before* pinning so a delivery racing the pin
    // cannot be missed.
    auto future = node_->AddWaiter(query_, bat);
    std::promise<Result<bat::BatPtr>> immediate;
    auto immediate_future = immediate.get_future();
    node_->PostSync([&, this] {
      if (node_->dc().Pin(query_, bat)) {
        // Available now: owned locally or cached.
        auto local = catalog_->GetById(bat);
        if (local.ok()) {
          immediate.set_value(*local);
          return;
        }
        // Not owned: it must be in the decoded cache via DeliverToQuery's
        // bookkeeping — fall through to the waiter resolution by asking the
        // protocol to deliver from cache.
        node_->DeliverToQuery(query_, bat);
        immediate.set_value(Status::FailedPrecondition("resolved via waiter"));
      } else {
        immediate.set_value(Status::FailedPrecondition("blocked"));
      }
    });
    Result<bat::BatPtr> quick = immediate_future.get();
    bat::BatPtr value;
    if (quick.ok()) {
      node_->RemoveWaiter(query_, bat);
      value = *quick;
    } else {
      // Blocked until the fragment flows by — or the query is cancelled or
      // runs past its deadline. Cancellation protocol: Cancel() sets the
      // token *then* aborts this query's waiters, and we re-check the token
      // only after registering the waiter, so one side always fires.
      const auto blocked_at = std::chrono::steady_clock::now();
      if (cancel_ != nullptr) {
        if (cancel_->cancelled()) {
          node_->ResolveWaiterWith(query_, bat, Status::Aborted("query cancelled"));
        } else if (cancel_->has_deadline() &&
                   future.wait_until(cancel_->deadline()) != std::future_status::ready) {
          node_->ResolveWaiterWith(query_, bat, cancel_->CheckLive());
        }
      }
      auto delivered = future.get();  // blocks until resolved either way
      blocked_ns_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - blocked_at)
              .count(),
          std::memory_order_relaxed);
      if (!delivered.ok()) return delivered.status();
      value = *delivered;
    }
    {
      // Dataflow workers pin concurrently; the bookkeeping maps need a lock.
      std::lock_guard<std::mutex> lock(mu_);
      pinned_[bat] = value;
      by_pointer_[value.get()] = bat;
    }
    return value;
  }

  Status Unpin(const mal::Datum& pinned) override {
    core::BatId bat = core::kInvalidBat;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto* h = std::get_if<mal::RequestHandle>(&pinned)) {
        bat = h->bat;
      } else if (const auto* b = std::get_if<bat::BatPtr>(&pinned)) {
        auto it = by_pointer_.find(b->get());
        if (it == by_pointer_.end()) {
          return Status::InvalidArgument("unpin of a BAT this query never pinned");
        }
        bat = it->second;
        by_pointer_.erase(it);
      } else {
        return Status::InvalidArgument("unpin expects a BAT or request handle");
      }
      pinned_.erase(bat);
      requested_.erase(bat);  // fully released: nothing left for teardown
    }
    node_->Post([node = node_, q = query_, bat] { node->dc().Unpin(q, bat); });
    return Status::OK();
  }

 private:
  RingCluster* cluster_;
  RingCluster::Node* node_;
  bat::BatCatalog* catalog_;
  core::QueryId query_;
  const mal::CancelToken* cancel_;
  std::atomic<int64_t> blocked_ns_{0};
  std::mutex mu_;  ///< guards pinned_/by_pointer_/requested_ across workers
  std::unordered_map<core::BatId, bat::BatPtr> pinned_;
  std::unordered_map<const bat::Bat*, core::BatId> by_pointer_;
  std::set<core::BatId> requested_;  ///< every fragment this query touched
};

}  // namespace

// ===========================================================================
// RingCluster
// ===========================================================================

RingCluster::RingCluster(Options options) : options_(options) {
  DCY_CHECK(options_.num_nodes >= 2);
  nodes_.reserve(options_.num_nodes);
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(this, i));
  }
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    Node* succ = nodes_[(i + 1) % options_.num_nodes].get();
    Node* pred = nodes_[(i + options_.num_nodes - 1) % options_.num_nodes].get();
    nodes_[i]->SetNeighbours(succ, pred);
  }
}

RingCluster::~RingCluster() { Stop(); }

Status RingCluster::LoadBat(core::NodeId owner, const std::string& name, bat::BatPtr bat) {
  if (owner >= options_.num_nodes) return Status::InvalidArgument("bad owner node");
  if (bat == nullptr) return Status::InvalidArgument("null BAT for " + name);
  DCY_RETURN_NOT_OK(ValidateQualifiedName(name));
  std::lock_guard<std::mutex> lock(directory_mu_);
  if (directory_.count(name) > 0) {
    return Status::AlreadyExists("fragment \"" + name + "\" is already registered");
  }
  const core::BatId id = next_bat_.fetch_add(1);
  const uint64_t size = bat->ByteSize();
  const bat::ValType tail_type = bat->tail()->type();
  DCY_RETURN_NOT_OK(nodes_[owner]->catalog().Register(name, id, std::move(bat)));
  if (started_.load()) {
    nodes_[owner]->PostSync([&] { nodes_[owner]->dc().AddOwnedBat(id, size); });
  } else {
    nodes_[owner]->dc().AddOwnedBat(id, size);
  }
  directory_[name] = id;
  sizes_[id] = size;
  column_types_[name] = tail_type;
  return Status::OK();
}

sql::Schema RingCluster::SqlSchema() const {
  std::map<std::string, bat::ValType> columns;
  {
    std::lock_guard<std::mutex> lock(directory_mu_);
    columns = column_types_;
  }
  return sql::Schema::FromQualifiedColumns(columns);
}

Result<core::BatId> RingCluster::FindFragment(const std::string& name) const {
  std::lock_guard<std::mutex> lock(directory_mu_);
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::NotFound("no fragment named " + name);
  return it->second;
}

void RingCluster::Start() {
  if (started_.exchange(true)) return;
  // The kernel policy is process-wide (the executor is shared); the last
  // started cluster wins, which matches how benches and servers run one
  // cluster per process.
  exec::SetExecPolicy(options_.exec_policy);
  for (auto& node : nodes_) node->Start();
}

void RingCluster::Stop() {
  if (!started_.exchange(false)) return;
  // Runner pools first (running queries unwind through the still-live
  // service threads), then the protocol layer.
  for (auto& node : nodes_) node->StopRunners();
  for (auto& node : nodes_) node->Stop();
}

// ---- session API ----------------------------------------------------------

Result<Session> RingCluster::OpenSession(core::NodeId node) {
  if (node >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  return Session(this, node);
}

Result<PreparedQueryPtr> RingCluster::Prepare(const std::string& mal_text, bool optimize,
                                              bool use_cache) {
  PrepareOptions options;
  options.language = Language::kMAL;
  options.optimize = optimize;
  options.use_cache = use_cache;
  return Prepare(mal_text, options);
}

Result<PreparedQueryPtr> RingCluster::Prepare(const std::string& text,
                                              const PrepareOptions& options) {
  Language language = options.language;
  if (language == Language::kAuto) {
    language = sql::LooksLikeSql(text) ? Language::kSQL : Language::kMAL;
  }
  // The dialect is part of the key: the same text prepared as SQL and as MAL
  // compiles to different programs, so the two must occupy distinct slots.
  const char* dialect = language == Language::kSQL ? "sql" : "mal";
  const std::string key = opt::PlanCacheKey(text, options.optimize, {}, dialect);
  bool use_cache = options.use_cache;
  if (use_cache) {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      // The 64-bit key is not trusted alone: a hit must carry the same
      // source text, or a hash collision would silently run the wrong plan.
      if (it->second->text() == text) {
        ++plan_cache_stats_.hits;
        return it->second;
      }
      use_cache = false;  // collision: compile fresh, leave the entry alone
    }
  }
  Result<mal::Program> compiled =
      language == Language::kSQL
          ? sql::Compile(text, SqlSchema(), options.parse_error)
          : mal::ParseProgram(text, options.parse_error);
  if (!compiled.ok()) return compiled.status();
  mal::Program program = std::move(compiled).value();
  if (options.optimize) {
    DCY_ASSIGN_OR_RETURN(program, opt::DcOptimize(program));
  }
  auto prepared =
      std::make_shared<const PreparedQuery>(text, key, std::move(program), options.optimize);
  if (use_cache) {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    ++plan_cache_stats_.misses;  // one parse + DcOptimize actually ran
    auto [it, inserted] = plan_cache_.emplace(key, prepared);
    if (inserted) {
      plan_cache_order_.push_back(key);
      // Bounded cache: ad-hoc texts (literals inlined instead of params)
      // must not grow the cache without limit; evict oldest-inserted first.
      while (plan_cache_.size() > std::max<size_t>(1, options_.plan_cache_capacity)) {
        plan_cache_.erase(plan_cache_order_.front());
        plan_cache_order_.pop_front();
      }
    }
    plan_cache_stats_.entries = plan_cache_.size();
    if (!inserted) return it->second;  // lost a prepare race; share the first
  }
  return prepared;
}

Result<QueryHandle> RingCluster::Submit(core::NodeId node_id,
                                        const PreparedQueryPtr& prepared,
                                        const SubmitOptions& options) {
  if (node_id >= options_.num_nodes) return Status::InvalidArgument("bad node id");
  if (prepared == nullptr) return Status::InvalidArgument("null prepared query");
  if (!started_.load()) return Status::FailedPrecondition("cluster not started");

  auto state = std::make_shared<internal::QueryState>();
  state->id = next_query_.fetch_add(1);
  state->submitted_at = std::chrono::steady_clock::now();
  if (options.timeout.count() > 0) {
    state->cancel.set_deadline(state->submitted_at + options.timeout);
  }
  Node* node = nodes_[node_id].get();
  state->wake_pins = [node, id = state->id] { node->AbortQueryWaiters(id); };
  DCY_RETURN_NOT_OK(node->EnqueueQuery({state, prepared, options}));
  return QueryHandle(state);
}

Result<QueryResult> RingCluster::RunQuery(Node* node, const PreparedQuery& plan,
                                          internal::QueryState* state,
                                          const SubmitOptions& options) {
  QueryResult qr;
  qr.query_id = state->id;

  mal::ExportSink exported;
  SessionHooks hooks(this, node, &node->catalog(), state->id, &state->cancel);
  mal::Context ctx;
  ctx.catalog = &node->catalog();
  ctx.dc = &hooks;
  ctx.out = nullptr;  // results are captured typed, not printed
  ctx.exported = &exported;

  mal::ExecOptions eopts;
  eopts.workers = options.plan_workers > 0 ? options.plan_workers : options_.plan_workers;
  eopts.cancel = &state->cancel;
  eopts.params = options.params.empty() ? nullptr : &options.params;

  const auto start = std::chrono::steady_clock::now();
  mal::Interpreter interp(&mal::Registry::Global(), ctx);
  auto result = interp.Execute(plan.program(), eopts);
  qr.timing.exec_seconds = SecondsSince(start);
  qr.timing.pin_blocked_seconds = hooks.blocked_seconds();
  if (!result.ok()) return result.status();

  mal::ResultSetPtr table;
  {
    std::lock_guard<std::mutex> lock(exported.mu);
    table = exported.result;
  }
  qr.result = ResultSet::Build(table, std::move(result).value());
  return qr;
}

Result<QueryOutcome> RingCluster::ExecuteMal(core::NodeId node_id,
                                             const std::string& mal_text, bool optimize) {
  // Compatibility wrapper: one blocking trip through the session path. The
  // shared plan cache still amortizes the parse + optimize across calls.
  DCY_ASSIGN_OR_RETURN(PreparedQueryPtr prepared, Prepare(mal_text, optimize));
  DCY_ASSIGN_OR_RETURN(QueryHandle handle, Submit(node_id, prepared));
  auto result = handle.Wait();
  if (!result.ok()) return result.status();

  QueryOutcome outcome;
  outcome.query_id = result->query_id;
  outcome.wall_seconds = result->timing.exec_seconds;
  outcome.pin_blocked_seconds = result->timing.pin_blocked_seconds;
  outcome.printed = result->result.ToText();
  outcome.result = result->result.scalar();
  return outcome;
}

core::DcNodeMetrics RingCluster::NodeMetrics(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  core::DcNodeMetrics snapshot;
  nodes_[node]->PostSync([&] { snapshot = nodes_[node]->dc().metrics(); });
  return snapshot;
}

core::AdmissionMetrics RingCluster::NodeAdmissionMetrics(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  return nodes_[node]->admission_metrics();
}

size_t RingCluster::OutstandingRequestEntries(core::NodeId node) const {
  DCY_CHECK(node < nodes_.size());
  size_t count = 0;
  nodes_[node]->PostSync([&] { count = nodes_[node]->dc().requests().size(); });
  return count;
}

RingCluster::PlanCacheStats RingCluster::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_stats_;
}

uint64_t RingCluster::TotalDataBytesMoved() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->data_in()->stats().payload_bytes.load();
  }
  return total;
}

}  // namespace dcy::runtime
