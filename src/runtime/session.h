// The client-facing query API of the live Data Cyclotron runtime (ISSUE-4):
//
//   Session   — opened against one node of the RingCluster; the unit the
//               node's admission control counts.
//   Prepare   — parse + DcOptimize once; the PreparedQuery is immutable and
//               reusable across executions and across sessions (RingCluster
//               keeps a shared plan cache keyed by opt::PlanCacheKey).
//   Submit    — asynchronous: the query enters the node's FIFO admission
//               queue and the caller gets a QueryHandle with Wait()/
//               TryWait(), a deadline, and cooperative Cancel() that
//               unblocks a session stuck in datacyclotron.pin.
//   ResultSet — named, typed columns (span/row accessors) instead of the
//               printed-string results of the legacy ExecuteMal entry point.
//
// Lifetimes: Session, PreparedQuery and QueryHandle must not outlive the
// RingCluster that produced them.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bat/bat.h"
#include "common/parse_error.h"
#include "common/status.h"
#include "core/types.h"
#include "mal/interpreter.h"
#include "mal/program.h"
#include "mal/value.h"

namespace dcy::runtime {

class RingCluster;

/// \brief Source language of a query text handed to Prepare/Submit/Execute.
enum class Language {
  kMAL,   ///< hand-written MAL, parsed by mal::ParseProgram
  kSQL,   ///< a SQL statement (SELECT, INSERT, or DELETE), compiled by
          ///< sql::Compile against the schema of the BATs registered via
          ///< RingCluster::LoadBat
  kAuto,  ///< detect: texts whose first word is SELECT, INSERT, or DELETE
          ///< are SQL, else MAL
};

/// \brief Options for Prepare (and the string overloads of Submit/Execute,
/// which prepare internally).
struct PrepareOptions {
  Language language = Language::kAuto;
  /// Run the DcOptimizer rewrite (sql.bind -> request/pin/unpin).
  bool optimize = true;
  /// Consult/populate the cluster's shared plan cache.
  bool use_cache = true;
  /// Optional out-param: on a parse or semantic error in either language,
  /// receives the structured diagnostic (line, column, token, caret snippet).
  ParseError* parse_error = nullptr;
};

/// \brief Typed result table of one query: the columns the plan exported via
/// sql.resultSet/sql.rsCol plus the plan's final value (aggregate plans
/// produce a scalar and no table). Plans are expected to export at most one
/// result set; a plan exporting several surfaces only the last.
class ResultSet {
 public:
  struct ColumnDesc {
    std::string table;      ///< qualified table ("sys.c")
    std::string name;       ///< column name ("t_id")
    std::string decl_type;  ///< declared SQL type string from the plan
    bat::ValType type = bat::ValType::kLng;  ///< physical value type
  };

  ResultSet() = default;

  /// Builds from the interpreter's export capture + final datum.
  static ResultSet Build(const mal::ResultSetPtr& exported, mal::Datum last);

  size_t num_columns() const { return descs_.size(); }
  /// Rows of the exported table; 0 for scalar-only results.
  size_t num_rows() const;
  bool has_table() const { return !descs_.empty(); }

  const ColumnDesc& column(size_t c) const { return descs_[c]; }
  /// Index of the column whose "name" or "table.name" matches; -1 if absent.
  int FindColumn(std::string_view name) const;

  /// The value column (BAT tail) backing column `c`.
  const bat::ColumnPtr& values(size_t c) const;
  /// Typed span over column `c`'s payload; empty for dense/string columns
  /// (use StringAt / ValueAt for those). T must match the physical width.
  template <typename T>
  bat::Span<T> FixedValues(size_t c) const {
    return values(c)->FixedData<T>();
  }

  // Row accessors.
  bat::Value ValueAt(size_t row, size_t c) const { return values(c)->GetValue(row); }
  int64_t Int64At(size_t row, size_t c) const { return values(c)->GetInt64(row); }
  double DoubleAt(size_t row, size_t c) const { return values(c)->GetDouble(row); }
  std::string_view StringAt(size_t row, size_t c) const {
    return values(c)->GetString(row);
  }

  /// The plan's last assigned value: the scalar of aggregate plans (int64,
  /// double, ...), or whatever the final instruction produced.
  const mal::Datum& scalar() const { return scalar_; }

  /// Tab-separated rendering ("table.name" header + rows), byte-identical to
  /// what sql.exportResult used to print into QueryOutcome::printed.
  std::string ToText() const;

 private:
  std::vector<ColumnDesc> descs_;
  std::vector<bat::BatPtr> bats_;  ///< per column; values live in the tail
  mal::Datum scalar_;
};

/// \brief Wall-clock timings of one query, std::chrono::steady_clock end to
/// end. pin_blocked_seconds separates ring latency from compute: it is the
/// sum of time the plan's datacyclotron.pin calls spent blocked waiting for
/// fragments (concurrent pins sum, so it can exceed exec_seconds).
struct QueryTiming {
  double wall_seconds = 0.0;         ///< Submit() -> terminal state
  double queued_seconds = 0.0;       ///< waiting in the admission queue
  double exec_seconds = 0.0;         ///< interpreter execution
  double pin_blocked_seconds = 0.0;  ///< summed blocked-pin wait
};

/// \brief Outcome of one successfully executed query.
struct QueryResult {
  core::QueryId query_id = 0;
  ResultSet result;
  QueryTiming timing;
  /// Position in the node's admission order (monotonic per node); FIFO
  /// admission means submissions to one node are admitted in submit order.
  uint64_t admitted_seq = 0;
  /// Submissions this result took under the RetryPolicy (1 = first try).
  uint32_t attempts = 1;
  /// Commit version this query's reads resolved at (version-at-prepare).
  uint64_t snapshot_version = 0;
  /// Highest commit version this query produced; 0 for read-only queries.
  uint64_t commit_version = 0;
};

/// \brief A parsed + DC-optimized plan, compiled once and immutable:
/// executions and sessions share it freely. Obtained from
/// RingCluster::Prepare (cached) or Session::Prepare.
class PreparedQuery {
 public:
  PreparedQuery(std::string text, std::string key, mal::Program program, bool optimized)
      : text_(std::move(text)),
        key_(std::move(key)),
        program_(std::move(program)),
        optimized_(optimized) {}

  const std::string& text() const { return text_; }        ///< source MAL
  const std::string& cache_key() const { return key_; }    ///< opt::PlanCacheKey
  const mal::Program& program() const { return program_; }  ///< compiled plan
  bool optimized() const { return optimized_; }

 private:
  std::string text_;
  std::string key_;
  mal::Program program_;
  bool optimized_;
};
using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// \brief Opt-in client-side retry of transient failures. Applied by
/// Session::Execute only (Submit hands out one attempt's handle): a query
/// that fails with Unavailable (ring degraded, fragment owner down) or
/// ResourceExhausted (admission backpressure) is resubmitted after a
/// jittered exponential backoff, up to `max_attempts` total attempts.
struct RetryPolicy {
  uint32_t max_attempts = 1;  ///< 1 = retries disabled
  std::chrono::milliseconds initial_backoff{2};
  std::chrono::milliseconds max_backoff{100};
  double multiplier = 2.0;
  /// Backoff jitter fraction: each delay scales by 1 + jitter*U(-1,1).
  double jitter = 0.2;
  /// Seed of the deterministic jitter stream (per Execute call).
  uint64_t seed = 0x5E551017u;

  /// True for the transient failure codes worth another attempt.
  static bool Retryable(StatusCode code) {
    return code == StatusCode::kUnavailable || code == StatusCode::kResourceExhausted;
  }
};

/// \brief Per-submission options.
struct SubmitOptions {
  /// Total budget (queueing + execution); zero = unlimited. An expired query
  /// fails with TimedOut — while queued it never starts, while executing it
  /// stops cooperatively (a blocked pin wakes at the deadline).
  std::chrono::steady_clock::duration timeout{0};
  /// Parameter bindings for prepared plans: variables the plan reads but
  /// never assigns are seeded from here.
  std::unordered_map<std::string, mal::Datum> params;
  /// Dataflow width override; 0 = the cluster's plan_workers option.
  size_t plan_workers = 0;
  /// Transient-failure retry (Session::Execute only).
  RetryPolicy retry;
  /// Read at this commit version instead of the latest (nullopt = latest).
  /// The version must be pinned (RingCluster::PinWriteSnapshot) or be at
  /// most the current version; a version the compactor already folded past
  /// fails with FailedPrecondition (not retryable).
  std::optional<uint64_t> snapshot_version;
};

namespace internal {
/// Shared state of one submitted query (runtime-internal; reachable only
/// through QueryHandle).
struct QueryState {
  core::QueryId id = 0;
  mal::CancelToken cancel;
  /// Installed by the runtime: wakes ring waiters of this query so a Cancel
  /// reliably unblocks a session stuck in datacyclotron.pin.
  std::function<void()> wake_pins;
  std::chrono::steady_clock::time_point submitted_at{};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<QueryResult> outcome{Status(StatusCode::kUnknown, "query still pending")};

  void Finish(Result<QueryResult> r);
};
}  // namespace internal

/// \brief Handle to an asynchronously submitted query. Copyable (all copies
/// address the same execution); thread-safe.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return state_ != nullptr; }
  core::QueryId query_id() const { return state_ != nullptr ? state_->id : 0; }

  /// Blocks until the query reaches a terminal state.
  Result<QueryResult> Wait();
  /// Non-blocking poll: true iff terminal (then *out is filled when given).
  bool TryWait(Result<QueryResult>* out = nullptr);
  /// Bounded wait; true iff the query turned terminal within `d`.
  bool WaitFor(std::chrono::steady_clock::duration d, Result<QueryResult>* out = nullptr);

  /// Cooperative cancellation: a queued query never starts; an executing one
  /// stops between instructions, and a pin() blocked on the ring is woken
  /// immediately. The query then terminates with Aborted. Idempotent.
  void Cancel();

 private:
  friend class RingCluster;
  explicit QueryHandle(std::shared_ptr<internal::QueryState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::QueryState> state_;
};

/// \brief A client session against one node of the cluster: the paper's
/// per-query execution contract (§4.1) behind a prepared/async surface.
/// Lightweight and movable/copyable; concurrent Submit calls are safe.
class Session {
 public:
  core::NodeId node() const { return node_; }

  /// Compile + DcOptimize once via the cluster's shared plan cache. The
  /// text may be MAL or SQL; `options.language` selects (default: detect).
  Result<PreparedQueryPtr> Prepare(const std::string& text,
                                   const PrepareOptions& options = {});
  /// Back-compat shim for the MAL-only signature of the original API.
  Result<PreparedQueryPtr> Prepare(const std::string& text, bool optimize);

  /// Asynchronous submission into this node's admission queue. Fails with
  /// ResourceExhausted when the queue is full (backpressure) and
  /// FailedPrecondition when the cluster is not running.
  Result<QueryHandle> Submit(const PreparedQueryPtr& prepared,
                             const SubmitOptions& options = {});
  /// Prepare (cached, language auto-detected) + Submit.
  Result<QueryHandle> Submit(const std::string& text,
                             const SubmitOptions& options = {},
                             const PrepareOptions& prepare = {});

  /// Submit + Wait, resubmitting transient failures (Unavailable /
  /// ResourceExhausted) per options.retry with jittered exponential
  /// backoff. The default policy (max_attempts = 1) never retries.
  Result<QueryResult> Execute(const PreparedQueryPtr& prepared,
                              const SubmitOptions& options = {});
  Result<QueryResult> Execute(const std::string& text,
                              const SubmitOptions& options = {},
                              const PrepareOptions& prepare = {});

 private:
  friend class RingCluster;
  Session(RingCluster* cluster, core::NodeId node) : cluster_(cluster), node_(node) {}

  RingCluster* cluster_ = nullptr;
  core::NodeId node_ = 0;
};

}  // namespace dcy::runtime
