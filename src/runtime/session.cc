#include "runtime/session.h"

#include <algorithm>
#include <thread>

#include "common/random.h"
#include "runtime/ring_cluster.h"

namespace dcy::runtime {

// ===========================================================================
// ResultSet
// ===========================================================================

ResultSet ResultSet::Build(const mal::ResultSetPtr& exported, mal::Datum last) {
  ResultSet rs;
  rs.scalar_ = std::move(last);
  if (exported == nullptr) return rs;
  rs.descs_.reserve(exported->columns.size());
  rs.bats_.reserve(exported->columns.size());
  for (const auto& col : exported->columns) {
    ColumnDesc desc;
    desc.table = col.table;
    desc.name = col.name;
    desc.decl_type = col.type;
    desc.type = col.values->tail_type();
    rs.descs_.push_back(std::move(desc));
    rs.bats_.push_back(col.values);
  }
  return rs;
}

size_t ResultSet::num_rows() const { return bats_.empty() ? 0 : bats_[0]->size(); }

int ResultSet::FindColumn(std::string_view name) const {
  for (size_t c = 0; c < descs_.size(); ++c) {
    if (descs_[c].name == name || descs_[c].table + "." + descs_[c].name == name) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

const bat::ColumnPtr& ResultSet::values(size_t c) const { return bats_[c]->tail(); }

std::string ResultSet::ToText() const {
  // Byte-identical to the rendering sql.exportResult streams into
  // Context::out — the legacy QueryOutcome::printed contract.
  std::string out;
  if (descs_.empty()) return out;
  for (size_t c = 0; c < descs_.size(); ++c) {
    if (c > 0) out += "\t";
    out += descs_[c].table + "." + descs_[c].name;
  }
  out += "\n";
  const size_t rows = num_rows();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < descs_.size(); ++c) {
      if (c > 0) out += "\t";
      out += bats_[c]->tail()->GetValue(r).ToString();
    }
    out += "\n";
  }
  return out;
}

// ===========================================================================
// QueryState / QueryHandle
// ===========================================================================

namespace internal {

void QueryState::Finish(Result<QueryResult> r) {
  {
    std::lock_guard<std::mutex> lock(mu);
    outcome = std::move(r);
    done = true;
  }
  cv.notify_all();
}

}  // namespace internal

Result<QueryResult> QueryHandle::Wait() {
  if (state_ == nullptr) return Status::InvalidArgument("empty query handle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->outcome;
}

bool QueryHandle::TryWait(Result<QueryResult>* out) {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->done) return false;
  if (out != nullptr) *out = state_->outcome;
  return true;
}

bool QueryHandle::WaitFor(std::chrono::steady_clock::duration d,
                          Result<QueryResult>* out) {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, d, [this] { return state_->done; })) return false;
  if (out != nullptr) *out = state_->outcome;
  return true;
}

void QueryHandle::Cancel() {
  if (state_ == nullptr) return;
  state_->cancel.Cancel();
  // Wake any pin() blocked on the ring *after* the flag is visible, so the
  // woken session observes the cancellation.
  if (state_->wake_pins) state_->wake_pins();
}

// ===========================================================================
// Session — thin forwarding onto the owning cluster.
// ===========================================================================

Result<PreparedQueryPtr> Session::Prepare(const std::string& text,
                                          const PrepareOptions& options) {
  return cluster_->Prepare(text, options);
}

Result<PreparedQueryPtr> Session::Prepare(const std::string& text, bool optimize) {
  PrepareOptions options;
  options.language = Language::kMAL;
  options.optimize = optimize;
  return cluster_->Prepare(text, options);
}

Result<QueryHandle> Session::Submit(const PreparedQueryPtr& prepared,
                                    const SubmitOptions& options) {
  return cluster_->Submit(node_, prepared, options);
}

Result<QueryHandle> Session::Submit(const std::string& text,
                                    const SubmitOptions& options,
                                    const PrepareOptions& prepare) {
  DCY_ASSIGN_OR_RETURN(PreparedQueryPtr prepared, Prepare(text, prepare));
  return Submit(prepared, options);
}

Result<QueryResult> Session::Execute(const PreparedQueryPtr& prepared,
                                     const SubmitOptions& options) {
  const RetryPolicy& retry = options.retry;
  const uint32_t attempts = std::max<uint32_t>(1, retry.max_attempts);
  Rng jitter_rng(retry.seed);
  std::chrono::milliseconds backoff = retry.initial_backoff;
  Result<QueryResult> last{Status(StatusCode::kUnknown, "never attempted")};
  for (uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    auto submitted = Submit(prepared, options);
    last = submitted.ok() ? submitted->Wait() : Result<QueryResult>(submitted.status());
    if (last.ok()) {
      last->attempts = attempt;
      return last;
    }
    if (attempt == attempts || !RetryPolicy::Retryable(last.status().code())) break;
    // Jittered exponential backoff between attempts, so a burst of shed
    // queries does not stampede the recovering ring in lockstep.
    const double scale = 1.0 + retry.jitter * (2.0 * jitter_rng.NextDouble() - 1.0);
    const auto delay = std::chrono::duration_cast<std::chrono::milliseconds>(
        backoff * std::max(0.0, scale));
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    backoff = std::min(
        retry.max_backoff,
        std::chrono::milliseconds(static_cast<int64_t>(
            static_cast<double>(backoff.count()) * std::max(1.0, retry.multiplier))));
  }
  return last;
}

Result<QueryResult> Session::Execute(const std::string& text,
                                     const SubmitOptions& options,
                                     const PrepareOptions& prepare) {
  // Through the prepared-plan overload, so options.retry applies to text
  // submissions too instead of silently taking the single-shot path.
  DCY_ASSIGN_OR_RETURN(PreparedQueryPtr prepared, Prepare(text, prepare));
  return Execute(prepared, options);
}

}  // namespace dcy::runtime
