#include "simdc/experiments.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "workload/dataset.h"

namespace dcy::simdc {

namespace {

ExperimentResult Finish(SimCluster* cluster, std::unique_ptr<ExperimentCollector> collector,
                        bool drained) {
  collector->FinishSampling(&cluster->simulator());
  ExperimentResult r;
  r.registered = cluster->total_registered();
  r.finished = cluster->total_finished();
  r.failed = cluster->total_failed();
  r.last_finish = cluster->last_finish_time();
  r.sim_end = cluster->simulator().Now();
  r.cpu_busy = cluster->total_cpu_busy();
  r.data_drops = cluster->total_data_drops();
  r.drained = drained;
  r.collector = std::move(collector);
  return r;
}

}  // namespace

ExperimentResult RunUniformExperiment(const UniformExperimentOptions& options) {
  const auto scaled = [&](double v) { return v * options.scale; };

  ClusterOptions copts;
  copts.num_nodes = options.num_nodes;
  copts.bat_queue_capacity =
      static_cast<uint64_t>(scaled(static_cast<double>(options.queue_capacity)));
  // Scaling preserves the paper's dimensionless ratios: fewer BATs and a
  // smaller ring, but the same rotation time (capacity/bandwidth) and the
  // same per-BAT touch rate -- so LOI dynamics are unchanged.
  copts.link_gbps = scaled(10.0);
  copts.disk_bytes_per_sec = scaled(400e6);
  copts.adaptive_loit = false;
  copts.static_loit = options.loit;
  copts.node = options.node;
  copts.seed = options.data_seed;

  const uint32_t num_bats = static_cast<uint32_t>(scaled(options.num_bats));
  Rng data_rng(options.data_seed);
  workload::Dataset dataset = workload::MakeUniformDataset(
      num_bats, options.min_bat, options.max_bat, options.num_nodes, &data_rng);

  ExperimentCollector::Options col_opts;
  col_opts.num_bats = num_bats;
  auto collector = std::make_unique<ExperimentCollector>(col_opts);

  SimCluster cluster(copts, collector.get());
  workload::InstallDataset(dataset, &cluster);

  workload::UniformWorkloadOptions wopts;
  wopts.rate_per_node = scaled(options.rate_per_node);
  wopts.duration = options.duration;
  wopts.seed = options.workload_seed;
  auto per_node = workload::GenerateUniformWorkload(wopts, dataset, options.num_nodes);
  for (uint32_t n = 0; n < options.num_nodes; ++n) {
    cluster.driver(n).SubmitWorkload(std::move(per_node[n]));
  }

  cluster.Start();
  collector->StartSampling(&cluster.simulator());
  const bool drained = cluster.RunUntilQueriesDrain(options.deadline);
  return Finish(&cluster, std::move(collector), drained);
}

ExperimentResult RunSkewedExperiment(const SkewedExperimentOptions& options) {
  ClusterOptions copts;
  copts.num_nodes = options.num_nodes;
  copts.bat_queue_capacity = options.queue_capacity;
  copts.adaptive_loit = options.adaptive_loit;  // §5.2: ladder {0.1, 0.6, 1.1}
  copts.static_loit = options.static_loit;
  copts.seed = options.data_seed;

  Rng data_rng(options.data_seed);
  workload::Dataset dataset = workload::MakeUniformDataset(
      options.num_bats, options.min_bat, options.max_bat, options.num_nodes, &data_rng);

  workload::SkewedWorkloadOptions wopts = options.workload;
  for (auto& sw : wopts.subs) sw.total_rate *= options.scale;

  ExperimentCollector::Options col_opts;
  col_opts.num_bats = options.num_bats;
  col_opts.num_tags = 5;  // 0 = shared, 1..4 = DH_1..DH_4
  col_opts.bat_tag = [wopts](core::BatId bat) { return workload::SkewedBatTag(wopts, bat); };
  auto collector = std::make_unique<ExperimentCollector>(col_opts);

  SimCluster cluster(copts, collector.get());
  workload::InstallDataset(dataset, &cluster);

  auto per_node = workload::GenerateSkewedWorkload(wopts, dataset, options.num_nodes);
  for (uint32_t n = 0; n < options.num_nodes; ++n) {
    cluster.driver(n).SubmitWorkload(std::move(per_node[n]));
  }

  cluster.Start();
  collector->StartSampling(&cluster.simulator());
  const bool drained = cluster.RunUntilQueriesDrain(options.deadline);
  return Finish(&cluster, std::move(collector), drained);
}

ExperimentResult RunGaussianExperiment(const GaussianExperimentOptions& options) {
  const auto scaled = [&](double v) { return v * options.scale; };

  ClusterOptions copts;
  copts.num_nodes = options.num_nodes;
  copts.bat_queue_capacity =
      static_cast<uint64_t>(scaled(static_cast<double>(options.queue_capacity)));
  copts.link_gbps = scaled(10.0);
  copts.disk_bytes_per_sec = scaled(400e6);
  copts.adaptive_loit = true;
  copts.seed = options.data_seed;

  const uint32_t num_bats = static_cast<uint32_t>(scaled(options.num_bats));
  Rng data_rng(options.data_seed);
  workload::Dataset dataset = workload::MakeUniformDataset(
      num_bats, options.min_bat, options.max_bat, options.num_nodes, &data_rng);

  ExperimentCollector::Options col_opts;
  col_opts.num_bats = num_bats;
  auto collector = std::make_unique<ExperimentCollector>(col_opts);

  SimCluster cluster(copts, collector.get());
  workload::InstallDataset(dataset, &cluster);

  workload::GaussianWorkloadOptions wopts;
  wopts.rate_per_node = scaled(options.rate_per_node);
  wopts.total_rate = scaled(options.total_rate);
  wopts.duration = options.duration;
  wopts.mean = scaled(options.mean);
  wopts.stddev = scaled(options.stddev);
  wopts.seed = options.workload_seed;
  auto per_node = workload::GenerateGaussianWorkload(wopts, dataset, options.num_nodes);
  for (uint32_t n = 0; n < options.num_nodes; ++n) {
    cluster.driver(n).SubmitWorkload(std::move(per_node[n]));
  }

  cluster.Start();
  collector->StartSampling(&cluster.simulator());
  const bool drained = cluster.RunUntilQueriesDrain(options.deadline);
  return Finish(&cluster, std::move(collector), drained);
}

TpchRow RunTpchExperiment(const TpchExperimentOptions& options) {
  ClusterOptions copts;
  // The protocol needs a ring; a "single node" run is modelled as a ring of
  // one node's workload with all data local (ownership on node 0).
  copts.num_nodes = std::max(options.num_nodes, 2u);
  copts.bat_queue_capacity = options.queue_capacity;
  copts.adaptive_loit = true;
  copts.cores_per_node = options.cores_per_node;
  copts.seed = options.data_seed;

  const bool single = options.num_nodes == 1;
  workload::TpchWorkload wl =
      workload::GenerateTpchWorkload(options.tpch, single ? 1 : options.num_nodes);

  ExperimentCollector::Options col_opts;
  col_opts.num_bats = wl.dataset.num_bats();
  auto collector = std::make_unique<ExperimentCollector>(col_opts);
  SimCluster cluster(copts, collector.get());
  workload::InstallDataset(wl.dataset, &cluster);

  for (uint32_t n = 0; n < (single ? 1u : options.num_nodes); ++n) {
    cluster.driver(n).SubmitWorkload(std::move(wl.queries[n]));
  }

  cluster.Start();
  const bool drained = cluster.RunUntilQueriesDrain(options.deadline);

  TpchRow row;
  row.label = options.tpch.cpu_inflation > 1.0
                  ? "MonetDB"
                  : std::to_string(options.num_nodes);
  row.num_nodes = options.num_nodes;
  row.exec_sec = ToSeconds(cluster.last_finish_time());
  const double total_queries = static_cast<double>(cluster.total_finished());
  row.throughput = row.exec_sec > 0 ? total_queries / row.exec_sec : 0.0;
  row.throughput_per_node = row.throughput / options.num_nodes;
  // CPU% counts only useful work: the MonetDB row's inflation overhead is
  // exactly the paper's thread-management loss.
  const double wall_cores =
      row.exec_sec * options.cores_per_node * (single ? 1.0 : options.num_nodes);
  row.cpu_percent = wall_cores > 0 ? 100.0 * wl.useful_cpu_seconds / wall_cores : 0.0;
  row.drained = drained;
  return row;
}

std::string FormatTpchRow(const TpchRow& row) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-8s %9.1f %12.1f %16.1f %7.1f%s", row.label.c_str(),
                row.exec_sec, row.throughput, row.throughput_per_node, row.cpu_percent,
                row.drained ? "" : "   [NOT DRAINED]");
  return buf;
}

}  // namespace dcy::simdc
