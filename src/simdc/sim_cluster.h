// SimCluster: assembles a complete simulated Data Cyclotron ring — the
// discrete-event kernel, the ring network, one DcNode (protocol instance) +
// QueryDriver per node, the protocol timers, and the experiment collector
// wiring. This is the top-level object every §5 experiment instantiates.
#pragma once

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/dc_node.h"
#include "net/ring_network.h"
#include "sim/simulator.h"
#include "simdc/collector.h"
#include "simdc/query_model.h"

namespace dcy::simdc {

/// \brief Full configuration of a simulated ring (defaults = paper §5 Setup).
struct ClusterOptions {
  uint32_t num_nodes = 10;

  /// Link characteristics (paper: 10 Gb/s duplex, 350 us, DropTail).
  double link_gbps = 10.0;
  SimTime link_delay = FromMicros(350);
  /// Per-node BAT queue (paper: 200 MB -> ring capacity 2 GB at 10 nodes).
  /// This is the *logical* capacity the protocol's admission control and
  /// LOIT adaptation reason about.
  uint64_t bat_queue_capacity = 200 * kMB;
  /// Physical DropTail threshold as a multiple of the logical capacity.
  /// 0 (default) = lossless: an RDMA/TCP fabric applies backpressure rather
  /// than dropping, and the protocol's load admission already bounds
  /// steady-state occupancy at the logical cap — transient bunching of
  /// forwarded BATs above it models bounded flow-control drift. Set to a
  /// positive factor (e.g. 1.0) for strict NS-2-style tail drop; the
  /// resend()/lost-BAT machinery then recovers from the losses.
  double physical_queue_factor = 0.0;
  uint64_t request_queue_capacity = 4 * kMB;
  /// Fault injection on the wire (0 in paper-faithful runs).
  double loss_probability = 0.0;

  /// Cold-storage read bandwidth applied to loads (the paper cites 400 MB/s
  /// RAID as the reference disk speed); 0 disables the disk model.
  double disk_bytes_per_sec = 400e6;

  /// LOIT policy: static sweep value (§5.1) or the adaptive ladder (§5.2).
  bool adaptive_loit = false;
  double static_loit = 0.5;
  core::AdaptiveLoit::Options adaptive_loit_options;

  /// Protocol tunables; node_id/ring_size are filled in per node.
  core::DcNodeOptions node;

  /// CPU cores per node for the query model; 0 = unbounded (§5.1-§5.3).
  uint32_t cores_per_node = 0;

  uint64_t seed = 42;
};

/// \brief A fully wired simulated ring.
class SimCluster {
 public:
  /// `collector` may be null; when given it receives both protocol events
  /// and query completions. It must outlive the cluster.
  explicit SimCluster(ClusterOptions options, ExperimentCollector* collector = nullptr);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Registers a BAT with its owner node (cold on the owner's disk).
  void AddBat(core::BatId bat, uint64_t size, core::NodeId owner);

  /// Starts the protocol timers (loadAll / maintenance / LOIT adaptation),
  /// staggered across nodes to avoid synchronized storms.
  void Start();

  /// Runs the simulation until no events remain or `deadline` passes.
  void RunUntil(SimTime deadline) { sim_.RunUntil(deadline); }
  /// Runs to completion (drains all queries, then goes quiet).
  /// Note: with periodic timers running this never returns; use
  /// RunUntilQuiesced instead once timers are started.
  void RunAll() { sim_.Run(); }

  /// Runs until all submitted queries finished (checked every `poll`), or
  /// `deadline` hits. Returns true if everything finished.
  bool RunUntilQueriesDrain(SimTime deadline, SimTime poll = FromMillis(500));

  sim::Simulator& simulator() { return sim_; }
  net::RingNetwork& network() { return *network_; }
  Rng& rng() { return rng_; }
  uint32_t num_nodes() const { return options_.num_nodes; }
  core::DcNode& node(uint32_t i) { return *nodes_[i].dc; }
  QueryDriver& driver(uint32_t i) { return *nodes_[i].driver; }
  core::LoitPolicy& loit(uint32_t i) { return *nodes_[i].loit; }
  const ClusterOptions& options() const { return options_; }

  uint64_t total_registered() const;
  uint64_t total_finished() const;
  uint64_t total_failed() const;
  uint64_t total_expected() const;
  /// Sum of per-node CPU busy time (Table 4's CPU% numerator).
  SimTime total_cpu_busy() const;
  /// Latest query finish time across nodes (Table 4's exec column).
  SimTime last_finish_time() const;
  /// Count of data-channel DropTail drops across the ring.
  uint64_t total_data_drops() const;

 private:
  class NodeEnv;

  ClusterOptions options_;
  Rng rng_;
  sim::Simulator sim_;
  std::unique_ptr<net::RingNetwork> network_;
  ExperimentCollector* collector_;

  struct NodeRuntime {
    std::unique_ptr<NodeEnv> env;
    std::unique_ptr<core::LoitPolicy> loit;
    std::unique_ptr<core::DcNode> dc;
    std::unique_ptr<QueryDriver> driver;
    std::unique_ptr<sim::PeriodicTimer> load_all_timer;
    std::unique_ptr<sim::PeriodicTimer> maintenance_timer;
    std::unique_ptr<sim::PeriodicTimer> adapt_timer;
  };
  std::vector<NodeRuntime> nodes_;
};

}  // namespace dcy::simdc
