#include "simdc/collector.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/logging.h"

namespace dcy::simdc {

ExperimentCollector::ExperimentCollector(Options options) : options_(std::move(options)) {
  const size_t n = options_.num_bats;
  touches_.assign(n, 0);
  requests_.assign(n, 0);
  dispatches_.assign(n, 0);
  loads_.assign(n, 0);
  max_cycles_.assign(n, 0);
  max_latency_.assign(n, 0.0);
  max_pin_wait_.assign(n, 0.0);
  bat_in_ring_size_.assign(n, 0);
  tag_bytes_.assign(std::max<uint32_t>(options_.num_tags, 1), 0);
  tag_finished_.assign(std::max<uint32_t>(options_.num_tags, 1), 0);
}

void ExperimentCollector::StartSampling(sim::Simulator* sim) {
  Sample(sim->Now());
  sampler_ = std::make_unique<sim::PeriodicTimer>(sim, options_.sample_period,
                                                  [this, sim] { Sample(sim->Now()); });
  sampler_->Start();
}

void ExperimentCollector::FinishSampling(sim::Simulator* sim) {
  // Release the timer while `sim` is still alive: its destructor cancels the
  // pending event, so it must never outlive the simulator it schedules on.
  sampler_.reset();
  Sample(sim->Now());
}

void ExperimentCollector::Sample(SimTime now) {
  const double t = ToSeconds(now);
  ring_series_.Series("total_bytes").Add(t, static_cast<double>(ring_bytes_));
  ring_series_.Series("total_bats").Add(t, static_cast<double>(ring_bats_));
  if (options_.bat_tag) {
    for (uint32_t tag = 0; tag < options_.num_tags; ++tag) {
      ring_series_.Series("tag" + std::to_string(tag) + "_bytes")
          .Add(t, static_cast<double>(tag_bytes_[tag]));
    }
  }
  query_series_.Series("registered").Add(t, static_cast<double>(total_registered_));
  query_series_.Series("finished").Add(t, static_cast<double>(total_finished_));
  if (options_.num_tags > 1) {
    for (uint32_t tag = 0; tag < options_.num_tags; ++tag) {
      query_series_.Series("tag" + std::to_string(tag) + "_finished")
          .Add(t, static_cast<double>(tag_finished_[tag]));
    }
  }
}

void ExperimentCollector::OnRequestDispatched(core::NodeId, core::BatId bat, bool resend) {
  ++total_dispatches_;
  if (resend) ++total_resends_;
  if (bat < dispatches_.size()) ++dispatches_[bat];
}

void ExperimentCollector::OnRequestEntryCreated(core::NodeId, core::BatId bat) {
  if (bat < requests_.size()) ++requests_[bat];
}

void ExperimentCollector::OnBatTouched(core::NodeId, core::BatId bat, uint32_t blocked_pins) {
  if (blocked_pins > 0 && bat < touches_.size()) ++touches_[bat];
}

void ExperimentCollector::OnBatLoaded(core::NodeId, core::BatId bat, uint64_t size) {
  ++total_loads_;
  ring_bytes_ += size;
  ++ring_bats_;
  if (bat < loads_.size()) {
    ++loads_[bat];
    bat_in_ring_size_[bat] = size;
  }
  if (options_.bat_tag) {
    const uint32_t tag = options_.bat_tag(bat);
    if (tag < tag_bytes_.size()) tag_bytes_[tag] += size;
  }
}

void ExperimentCollector::OnBatUnloaded(core::NodeId, core::BatId bat, uint64_t size,
                                        uint32_t cycles, double) {
  ++total_unloads_;
  if (bat < max_cycles_.size()) {
    max_cycles_[bat] = std::max(max_cycles_[bat], cycles);
    // A BAT presumed lost and later re-adopted was already written off the
    // occupancy books; only decrement when the load is still on them.
    if (bat_in_ring_size_[bat] == 0) return;
    bat_in_ring_size_[bat] = 0;
  }
  DCY_DCHECK(ring_bytes_ >= size);
  ring_bytes_ -= size;
  --ring_bats_;
  if (options_.bat_tag) {
    const uint32_t tag = options_.bat_tag(bat);
    if (tag < tag_bytes_.size()) tag_bytes_[tag] -= size;
  }
}

void ExperimentCollector::OnCycleCompleted(core::NodeId, core::BatId bat, uint32_t cycles,
                                           SimTime rotation) {
  if (bat < max_cycles_.size()) max_cycles_[bat] = std::max(max_cycles_[bat], cycles);
  if (rotation > 0 && cycles > 1) rotation_sec_.Add(ToSeconds(rotation));
}

void ExperimentCollector::OnRequestSatisfied(core::NodeId, core::BatId bat, SimTime latency) {
  if (bat < max_latency_.size()) {
    max_latency_[bat] = std::max(max_latency_[bat], ToSeconds(latency));
  }
}

void ExperimentCollector::OnPinSatisfied(core::NodeId, core::QueryId, core::BatId bat,
                                         SimTime wait) {
  if (wait <= 0) return;  // local/cache hits are not ring accesses
  const double w = ToSeconds(wait);
  pin_wait_stat_.Add(w);
  if (bat < max_pin_wait_.size()) max_pin_wait_[bat] = std::max(max_pin_wait_[bat], w);
}

void ExperimentCollector::OnBatPending(core::NodeId, core::BatId) { ++total_pending_; }

void ExperimentCollector::OnBatPresumedLost(core::NodeId, core::BatId bat) {
  ++total_lost_;
  // The owner wrote the BAT off: remove it from the occupancy accounting.
  if (bat < bat_in_ring_size_.size() && bat_in_ring_size_[bat] > 0) {
    const uint64_t size = bat_in_ring_size_[bat];
    bat_in_ring_size_[bat] = 0;
    DCY_DCHECK(ring_bytes_ >= size);
    ring_bytes_ -= size;
    --ring_bats_;
    if (options_.bat_tag) {
      const uint32_t tag = options_.bat_tag(bat);
      if (tag < tag_bytes_.size()) tag_bytes_[tag] -= size;
    }
  }
}

void ExperimentCollector::OnQueryRegistered(core::NodeId, const QuerySpec&) {
  ++total_registered_;
}

void ExperimentCollector::OnQueryFinished(core::NodeId, const QuerySpec& spec, SimTime arrival,
                                          SimTime finish, bool failed) {
  if (failed) {
    ++total_failed_;
    return;
  }
  ++total_finished_;
  const double life = ToSeconds(finish - arrival);
  lifetimes_.push_back(life);
  lifetime_stat_.Add(life);
  if (spec.tag < tag_finished_.size()) ++tag_finished_[spec.tag];
}

}  // namespace dcy::simdc
