// Query lifecycle model used by the simulation experiments (§5).
//
// A simulated query mirrors a DcOptimizer-rewritten MAL plan (paper Table 2):
// all datacyclotron.request() calls fire at registration, then the query
// walks its steps sequentially — pin(BAT), then occupy a CPU core for the
// operator time — and unpins everything when it finishes (as the rewritten
// plan does). §5.1-§5.3 use an unbounded CPU; §5.4 uses 4 cores per node.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "core/dc_node.h"
#include "sim/simulator.h"

namespace dcy::simdc {

/// One sequential step of a simulated query.
struct QueryStep {
  core::BatId bat = core::kInvalidBat;
  /// CPU time consumed after this BAT is pinned (the paper's OpT_x).
  SimTime cpu_after = 0;
};

/// \brief A complete simulated query, produced by the workload generators.
struct QuerySpec {
  core::QueryId id = core::kInvalidQuery;
  SimTime arrival = 0;
  /// CPU time before the first pin (OpT1 runs after registration, §5.4).
  SimTime cpu_before = 0;
  std::vector<QueryStep> steps;
  /// Workload tag for per-hot-set accounting (Fig. 8); 0 when unused.
  uint32_t tag = 0;
};

/// \brief FIFO multi-core CPU model; `cores == 0` means unbounded (the
/// §5.1-§5.3 experiments model processing as pure latency).
class CpuScheduler {
 public:
  CpuScheduler(sim::Simulator* sim, uint32_t cores) : sim_(sim), cores_(cores) {}

  /// Runs `done` after `duration` of CPU time once a core is free.
  void Submit(SimTime duration, std::function<void()> done);

  /// Total core-busy time accumulated (drives the Table 4 CPU% column).
  SimTime busy_time() const { return busy_time_; }
  uint32_t cores() const { return cores_; }
  size_t queued() const { return waiting_.size(); }

 private:
  void RunTask(SimTime duration, std::function<void()> done);

  sim::Simulator* sim_;
  uint32_t cores_;
  uint32_t running_ = 0;
  SimTime busy_time_ = 0;
  std::deque<std::pair<SimTime, std::function<void()>>> waiting_;
};

/// \brief Observer for query completion events (implemented by the
/// experiment collector).
class QueryObserver {
 public:
  virtual ~QueryObserver() = default;
  virtual void OnQueryRegistered(core::NodeId /*node*/, const QuerySpec& /*spec*/) {}
  virtual void OnQueryFinished(core::NodeId /*node*/, const QuerySpec& /*spec*/,
                               SimTime /*arrival*/, SimTime /*finish*/, bool /*failed*/) {}
};

/// \brief Drives all queries submitted to one node: registers requests,
/// walks pin/process steps, reacts to deliveries and failures.
class QueryDriver {
 public:
  QueryDriver(sim::Simulator* sim, core::DcNode* node, uint32_t cores,
              QueryObserver* observer = nullptr);

  /// Schedules every query in `specs` for its arrival time. Must be called
  /// before the simulation starts (or at least before the arrival times).
  void SubmitWorkload(std::vector<QuerySpec> specs);

  /// DcEnv plumbing: a blocked pin for `query` was satisfied.
  void OnDelivered(core::QueryId query, core::BatId bat);
  /// DcEnv plumbing: the BAT does not exist; the query aborts.
  void OnFailed(core::QueryId query, core::BatId bat);

  uint64_t finished() const { return finished_; }
  uint64_t failed() const { return failed_; }
  uint64_t registered() const { return registered_; }
  /// Queries submitted via SubmitWorkload (arrived or not yet).
  uint64_t expected() const { return expected_; }
  uint64_t in_flight() const { return active_.size(); }
  SimTime last_finish_time() const { return last_finish_; }
  const CpuScheduler& cpu() const { return cpu_; }

 private:
  struct ActiveQuery {
    QuerySpec spec;
    size_t next_step = 0;   // step whose pin is due (or in progress)
    bool failed = false;
    /// True while step next_step-1 occupies a core (its unpin is pending).
    bool processing = false;
  };

  void Arrive(QuerySpec spec);
  /// Pins step `aq->next_step` (blocking on the ring if needed).
  void PinCurrentStep(ActiveQuery* aq);
  /// Runs the CPU segment after a satisfied pin, then advances.
  void ProcessCurrentStep(ActiveQuery* aq);
  void Finish(core::QueryId id);

  sim::Simulator* sim_;
  core::DcNode* node_;
  CpuScheduler cpu_;
  QueryObserver* observer_;

  std::unordered_map<core::QueryId, ActiveQuery> active_;
  uint64_t finished_ = 0;
  uint64_t failed_ = 0;
  uint64_t registered_ = 0;
  uint64_t expected_ = 0;
  SimTime last_finish_ = 0;
};

}  // namespace dcy::simdc
