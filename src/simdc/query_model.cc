#include "simdc/query_model.h"

#include "common/logging.h"

namespace dcy::simdc {

void CpuScheduler::Submit(SimTime duration, std::function<void()> done) {
  if (cores_ == 0 || running_ < cores_) {
    RunTask(duration, std::move(done));
  } else {
    waiting_.emplace_back(duration, std::move(done));
  }
}

void CpuScheduler::RunTask(SimTime duration, std::function<void()> done) {
  ++running_;
  busy_time_ += duration;
  sim_->Schedule(duration, [this, done = std::move(done)] {
    --running_;
    if (!waiting_.empty() && (cores_ == 0 || running_ < cores_)) {
      auto [d, cb] = std::move(waiting_.front());
      waiting_.pop_front();
      RunTask(d, std::move(cb));
    }
    done();
  });
}

QueryDriver::QueryDriver(sim::Simulator* sim, core::DcNode* node, uint32_t cores,
                         QueryObserver* observer)
    : sim_(sim), node_(node), cpu_(sim, cores), observer_(observer) {}

void QueryDriver::SubmitWorkload(std::vector<QuerySpec> specs) {
  expected_ += specs.size();
  for (QuerySpec& spec : specs) {
    DCY_CHECK(spec.arrival >= sim_->Now());
    sim_->ScheduleAt(spec.arrival, [this, s = std::move(spec)]() mutable { Arrive(std::move(s)); });
  }
}

void QueryDriver::Arrive(QuerySpec spec) {
  ++registered_;
  if (observer_ != nullptr) observer_->OnQueryRegistered(node_->node_id(), spec);

  const core::QueryId id = spec.id;
  auto [it, inserted] = active_.emplace(id, ActiveQuery{std::move(spec), 0, false});
  DCY_CHECK(inserted) << "duplicate query id " << id;
  ActiveQuery* aq = &it->second;

  // The DcOptimizer hoists every request to the start of the plan (§4.1).
  for (const QueryStep& step : aq->spec.steps) node_->Request(id, step.bat);

  const SimTime pre = aq->spec.cpu_before;
  if (pre > 0) {
    cpu_.Submit(pre, [this, id] {
      auto found = active_.find(id);
      if (found != active_.end()) PinCurrentStep(&found->second);
    });
  } else {
    PinCurrentStep(aq);
  }
}

void QueryDriver::PinCurrentStep(ActiveQuery* aq) {
  if (aq->failed || aq->next_step >= aq->spec.steps.size()) {
    Finish(aq->spec.id);
    return;
  }
  const QueryStep& step = aq->spec.steps[aq->next_step];
  if (node_->Pin(aq->spec.id, step.bat)) {
    ProcessCurrentStep(aq);
  }
  // else: blocked in S3; OnDelivered resumes us.
}

void QueryDriver::ProcessCurrentStep(ActiveQuery* aq) {
  const core::QueryId id = aq->spec.id;
  const core::BatId bat = aq->spec.steps[aq->next_step].bat;
  const SimTime work = aq->spec.steps[aq->next_step].cpu_after;
  ++aq->next_step;
  aq->processing = true;
  cpu_.Submit(work, [this, id, bat] {
    auto found = active_.find(id);
    if (found == active_.end()) return;  // aborted meanwhile; Finish cleaned up
    found->second.processing = false;
    // The DcOptimizer injects unpin() at the *last reference* of a variable
    // (§4.1); in this sequential model that is right after the operator
    // consuming the BAT finishes, releasing the cached copy early.
    node_->Unpin(id, bat);
    PinCurrentStep(&found->second);
  });
}

void QueryDriver::OnDelivered(core::QueryId query, core::BatId bat) {
  auto found = active_.find(query);
  if (found == active_.end()) return;  // finished/aborted meanwhile
  ActiveQuery* aq = &found->second;
  DCY_CHECK(aq->next_step < aq->spec.steps.size());
  DCY_CHECK(aq->spec.steps[aq->next_step].bat == bat)
      << "delivery for BAT " << bat << " but query " << query << " waits on step "
      << aq->next_step;
  ProcessCurrentStep(aq);
}

void QueryDriver::OnFailed(core::QueryId query, core::BatId bat) {
  (void)bat;
  auto found = active_.find(query);
  if (found == active_.end()) return;
  found->second.failed = true;
  Finish(query);
}

void QueryDriver::Finish(core::QueryId id) {
  auto found = active_.find(id);
  DCY_CHECK(found != active_.end());
  ActiveQuery& aq = found->second;

  // Completed steps already unpinned themselves; on failure, release the
  // in-processing step (whose unpin callback will no longer run), the
  // blocked pin, and the never-reached requests so S2 entries can retire.
  const size_t first_held = aq.next_step - (aq.processing ? 1 : 0);
  for (size_t s = first_held; s < aq.spec.steps.size(); ++s) {
    node_->Unpin(id, aq.spec.steps[s].bat);
  }

  if (aq.failed) {
    ++failed_;
  } else {
    ++finished_;
  }
  last_finish_ = sim_->Now();
  if (observer_ != nullptr) {
    observer_->OnQueryFinished(node_->node_id(), aq.spec, aq.spec.arrival, sim_->Now(),
                               aq.failed);
  }
  active_.erase(found);
}

}  // namespace dcy::simdc
