// Experiment runners: one function per paper experiment, each encoding the
// §5 setup exactly once. The bench binaries (bench/) print the resulting
// series/tables; the integration tests run scaled-down versions through the
// same code paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simdc/collector.h"
#include "simdc/sim_cluster.h"
#include "workload/synthetic.h"
#include "workload/tpch.h"

namespace dcy::simdc {

/// Result of one simulated run: the collector (all per-BAT and time-series
/// metrics) plus scalar run facts.
struct ExperimentResult {
  std::unique_ptr<ExperimentCollector> collector;
  uint64_t registered = 0;
  uint64_t finished = 0;
  uint64_t failed = 0;
  SimTime last_finish = 0;
  SimTime sim_end = 0;
  SimTime cpu_busy = 0;
  uint64_t data_drops = 0;
  bool drained = false;
};

/// \brief §5.1 "Limited Ring Capacity" (Figs. 6 & 7): 10 nodes, 1000 BATs
/// 1-10 MB, 200 MB queues, 80 q/s/node for 60 s, static LOIT.
struct UniformExperimentOptions {
  double loit = 0.5;
  uint32_t num_nodes = 10;
  uint32_t num_bats = 1000;
  uint64_t min_bat = 1 * kMB;
  uint64_t max_bat = 10 * kMB;
  uint64_t queue_capacity = 200 * kMB;
  double rate_per_node = 80.0;
  SimTime duration = 60 * kSecond;
  SimTime deadline = 400 * kSecond;  // hard stop for the drain phase
  uint64_t data_seed = 42;
  uint64_t workload_seed = 1;
  /// Protocol tunables (ablation switches live here).
  core::DcNodeOptions node;
  /// Scales the experiment down for tests: multiplies BAT count, rate and
  /// duration by `scale` (1.0 = paper size).
  double scale = 1.0;
};
ExperimentResult RunUniformExperiment(const UniformExperimentOptions& options);

/// \brief §5.2 "Skewed Workloads" (Fig. 8): Table 3 sub-workloads with the
/// adaptive LOIT ladder {0.1, 0.6, 1.1} and 80 %/40 % watermarks.
struct SkewedExperimentOptions {
  uint32_t num_nodes = 10;
  uint32_t num_bats = 1000;
  uint64_t min_bat = 1 * kMB;
  uint64_t max_bat = 10 * kMB;
  uint64_t queue_capacity = 200 * kMB;
  workload::SkewedWorkloadOptions workload;
  /// A1 ablation: false runs the same scenario with a static threshold.
  bool adaptive_loit = true;
  double static_loit = 0.5;
  SimTime deadline = 400 * kSecond;
  uint64_t data_seed = 42;
  double scale = 1.0;  // scales rates only (the time axis is Table 3's)
};
ExperimentResult RunSkewedExperiment(const SkewedExperimentOptions& options);

/// \brief §5.3 Gaussian access (Fig. 9) and the §6.3 pulsating-ring study
/// (Figs. 10 & 11): N(500, 50^2) access; optionally a fixed total rate so
/// the workload stays constant while the ring grows from 5 to 20 nodes.
struct GaussianExperimentOptions {
  uint32_t num_nodes = 10;
  uint32_t num_bats = 1000;
  uint64_t min_bat = 1 * kMB;
  uint64_t max_bat = 10 * kMB;
  uint64_t queue_capacity = 200 * kMB;
  double rate_per_node = 80.0;
  double total_rate = 0.0;  // when > 0: constant system-wide load (§6.3)
  SimTime duration = 60 * kSecond;
  double mean = 500.0;
  double stddev = 50.0;
  SimTime deadline = 400 * kSecond;
  uint64_t data_seed = 42;
  uint64_t workload_seed = 1;
  double scale = 1.0;
};
ExperimentResult RunGaussianExperiment(const GaussianExperimentOptions& options);

/// \brief §5.4 TPC-H (Table 4): one row of the table.
struct TpchExperimentOptions {
  uint32_t num_nodes = 1;
  uint32_t cores_per_node = 4;
  workload::TpchOptions tpch;
  /// TPC-H nodes have "sizable main memories" (§1): the BAT queue is not
  /// the §5.1 stress bottleneck here.
  uint64_t queue_capacity = 2 * kGB;
  SimTime deadline = 4000 * kSecond;
  uint64_t data_seed = 42;
};
struct TpchRow {
  std::string label;
  uint32_t num_nodes = 0;
  double exec_sec = 0.0;
  double throughput = 0.0;
  double throughput_per_node = 0.0;
  double cpu_percent = 0.0;
  bool drained = false;
};
TpchRow RunTpchExperiment(const TpchExperimentOptions& options);

/// Formats a TpchRow like the paper's Table 4.
std::string FormatTpchRow(const TpchRow& row);

}  // namespace dcy::simdc
