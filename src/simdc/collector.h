// Experiment instrumentation: implements the protocol StatsSink and the
// QueryObserver, accumulates exactly the quantities plotted in the paper's
// figures, and samples ring-occupancy time series on a simulator timer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "core/stats_sink.h"
#include "sim/simulator.h"
#include "simdc/query_model.h"

namespace dcy::simdc {

/// \brief Central metrics store for one simulation run.
class ExperimentCollector : public core::StatsSink, public QueryObserver {
 public:
  struct Options {
    uint32_t num_bats = 0;
    /// Sampling period for the ring-load time series (Figs. 7, 8).
    SimTime sample_period = kSecond;
    /// Number of workload tags tracked separately (Fig. 8); tag 0..n-1.
    uint32_t num_tags = 1;
    /// Maps a BAT to a workload tag for per-hot-set byte accounting; null
    /// means "no per-tag byte series".
    std::function<uint32_t(core::BatId)> bat_tag;
  };

  explicit ExperimentCollector(Options options);

  /// Starts the periodic ring-load sampler (records a sample at t=0 too).
  /// Every StartSampling must be paired with FinishSampling before `sim` is
  /// destroyed: the sampler cancels its pending event on teardown. Prefer
  /// ScopedSampling below, which enforces the pairing on every exit path.
  void StartSampling(sim::Simulator* sim);
  /// Records one final sample and releases the sampler (call after the run
  /// completes, while the simulator is still alive).
  void FinishSampling(sim::Simulator* sim);

  // --- StatsSink ---------------------------------------------------------
  void OnRequestDispatched(core::NodeId node, core::BatId bat, bool resend) override;
  void OnRequestEntryCreated(core::NodeId node, core::BatId bat) override;
  void OnBatTouched(core::NodeId node, core::BatId bat, uint32_t blocked_pins) override;
  void OnBatLoaded(core::NodeId owner, core::BatId bat, uint64_t size) override;
  void OnBatUnloaded(core::NodeId owner, core::BatId bat, uint64_t size, uint32_t cycles,
                     double loi) override;
  void OnCycleCompleted(core::NodeId owner, core::BatId bat, uint32_t cycles,
                        SimTime rotation) override;
  void OnRequestSatisfied(core::NodeId node, core::BatId bat, SimTime latency) override;
  void OnPinSatisfied(core::NodeId node, core::QueryId query, core::BatId bat,
                      SimTime wait) override;
  void OnBatPending(core::NodeId owner, core::BatId bat) override;
  void OnBatPresumedLost(core::NodeId owner, core::BatId bat) override;

  // --- QueryObserver ------------------------------------------------------
  void OnQueryRegistered(core::NodeId node, const QuerySpec& spec) override;
  void OnQueryFinished(core::NodeId node, const QuerySpec& spec, SimTime arrival,
                       SimTime finish, bool failed) override;

  // --- results -------------------------------------------------------------

  /// Ring occupancy series: "total_bytes", "total_bats", and per-tag
  /// "tag<i>_bytes" when a bat_tag mapper was provided (Figs. 7a/b, 8a).
  const SeriesTable& ring_series() const { return ring_series_; }

  /// Cumulative completed queries per tag over time (Figs. 6a, 8b) and the
  /// cumulative registered series.
  const SeriesTable& query_series() const { return query_series_; }

  /// Query lifetimes (gross execution time) in seconds (Fig. 6b).
  const std::vector<double>& lifetimes_sec() const { return lifetimes_; }

  // Per-BAT counters (Figs. 9-11).
  const std::vector<uint64_t>& touches() const { return touches_; }       // Fig. 9a
  /// Per-BAT S2 entry creations: the paper's Fig. 9a "number of requests".
  const std::vector<uint64_t>& requests() const { return requests_; }     // Fig. 9a
  /// Per-BAT request *messages* dispatched (first sends + resends).
  const std::vector<uint64_t>& dispatches() const { return dispatches_; }
  const std::vector<uint64_t>& loads() const { return loads_; }           // Fig. 9b
  const std::vector<uint32_t>& max_cycles() const { return max_cycles_; } // Fig. 11
  /// Max registration-to-delivery latency per BAT, seconds.
  const std::vector<double>& max_request_latency_sec() const { return max_latency_; }
  /// Max blocked-pin wait (data-access latency) per BAT, seconds — the
  /// paper's Figure 10 quantity: "the access cost to these BATs is only
  /// affected by the latency of its movement in the ring" (§6.3).
  const std::vector<double>& max_pin_wait_sec() const { return max_pin_wait_; }
  const RunningStat& pin_wait_sec() const { return pin_wait_stat_; }

  uint64_t total_dispatches() const { return total_dispatches_; }
  uint64_t total_resends() const { return total_resends_; }
  uint64_t total_registered() const { return total_registered_; }
  uint64_t total_finished() const { return total_finished_; }
  uint64_t total_failed() const { return total_failed_; }
  uint64_t total_loads() const { return total_loads_; }
  uint64_t total_unloads() const { return total_unloads_; }
  uint64_t total_pending_tags() const { return total_pending_; }
  uint64_t total_presumed_lost() const { return total_lost_; }
  uint64_t current_ring_bytes() const { return ring_bytes_; }
  uint64_t current_ring_bats() const { return ring_bats_; }
  const RunningStat& rotation_sec() const { return rotation_sec_; }
  const RunningStat& lifetime_stat() const { return lifetime_stat_; }

 private:
  void Sample(SimTime now);

  Options options_;
  SeriesTable ring_series_;
  SeriesTable query_series_;

  uint64_t ring_bytes_ = 0;
  uint64_t ring_bats_ = 0;
  std::vector<uint64_t> tag_bytes_;      // per workload tag
  std::vector<uint64_t> tag_finished_;   // per workload tag
  std::vector<uint64_t> bat_in_ring_size_;  // size while hot (for lost accounting)

  std::vector<uint64_t> touches_;
  std::vector<uint64_t> requests_;
  std::vector<uint64_t> dispatches_;
  uint64_t total_dispatches_ = 0;
  uint64_t total_resends_ = 0;
  std::vector<uint64_t> loads_;
  std::vector<uint32_t> max_cycles_;
  std::vector<double> max_latency_;
  std::vector<double> max_pin_wait_;
  RunningStat pin_wait_stat_;
  std::vector<double> lifetimes_;

  uint64_t total_registered_ = 0;
  uint64_t total_finished_ = 0;
  uint64_t total_failed_ = 0;
  uint64_t total_loads_ = 0;
  uint64_t total_unloads_ = 0;
  uint64_t total_pending_ = 0;
  uint64_t total_lost_ = 0;
  RunningStat rotation_sec_;
  RunningStat lifetime_stat_;

  std::unique_ptr<sim::PeriodicTimer> sampler_;
};

/// \brief RAII pairing of StartSampling/FinishSampling. Declare it after the
/// cluster/simulator so it unwinds first: the sampler is then released on
/// every exit path (early returns, failed ASSERTs) while the simulator is
/// still alive, instead of use-after-free-cancelling into a dead one.
class ScopedSampling {
 public:
  ScopedSampling(ExperimentCollector* collector, sim::Simulator* sim)
      : collector_(collector), sim_(sim) {
    collector_->StartSampling(sim_);
  }
  ~ScopedSampling() { collector_->FinishSampling(sim_); }
  ScopedSampling(const ScopedSampling&) = delete;
  ScopedSampling& operator=(const ScopedSampling&) = delete;

 private:
  ExperimentCollector* collector_;
  sim::Simulator* sim_;
};

}  // namespace dcy::simdc
